/**
 * @file
 * nvo_ship — replication driver: ship epoch deltas to a standby
 * replica over a (configurable, lossy) async link and prove the
 * standby could take over.
 *
 *   nvo_ship workload=btree wl.ops=2000                 clean run
 *   nvo_ship repl.drop_rate=0.01 repl.corrupt_rate=0.001 lossy run
 *   nvo_ship crash_cycle=500000                         power cut
 *             mid-ship, then resume-from-cursor and re-verify
 *   nvo_ship crash_point=repl.cursor.persist crash_hit=3
 *             crash at a fault point (needs NVO_FAULT=ON)
 *   nvo_ship crash_campaign=20                          n seeded
 *             crash/resume trials at random cycles
 *   nvo_ship fuzz=10000                                 decoder
 *             fuzz smoke: mutated frame streams must never wedge
 *
 * Every mode exits nonzero when the standby would not serve the
 * primary's recoverable image byte-exact. Any other key=value is a
 * Config override; repl.enabled is forced on (except fuzz mode).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "repl/replicator.hh"
#include "repl/wire.hh"

using namespace nvo;

namespace
{

repl::Replicator &
replicatorOf(System &sys)
{
    auto *scheme = dynamic_cast<NVOverlayScheme *>(&sys.scheme());
    if (!scheme || !scheme->replicator())
        fatal("nvo_ship needs scheme=nvoverlay with repl.enabled");
    return *scheme->replicator();
}

void
printShipStats(const RunStats &st)
{
    std::printf(
        "shipped: %llu epochs, %llu frames (%llu late), %.2f MB "
        "deltas, %.2f MB wire\n"
        "link:    %llu drops, %llu corrupts, %llu retries, %llu "
        "deduped, queue peak %llu\n"
        "decode:  %llu crc errors, %llu resyncs\n"
        "cursor:  durable at epoch %llu (%llu persists), applied "
        "rec-epoch %llu\n",
        static_cast<unsigned long long>(st.repl.epochsShipped),
        static_cast<unsigned long long>(st.repl.framesSent),
        static_cast<unsigned long long>(st.repl.lateShipped),
        st.repl.deltaBytes / 1e6, st.repl.wireBytes / 1e6,
        static_cast<unsigned long long>(st.repl.framesDropped),
        static_cast<unsigned long long>(st.repl.framesCorrupted),
        static_cast<unsigned long long>(st.repl.framesRetried),
        static_cast<unsigned long long>(st.repl.framesDeduped),
        static_cast<unsigned long long>(st.repl.sendQueuePeak),
        static_cast<unsigned long long>(st.repl.decodeCrcErrors),
        static_cast<unsigned long long>(st.repl.decodeResyncs),
        static_cast<unsigned long long>(st.repl.cursorEpoch),
        static_cast<unsigned long long>(st.repl.cursorPersists),
        static_cast<unsigned long long>(st.repl.appliedRecEpoch));
}

int
printVerdict(const repl::Replicator::VerifyReport &rep,
             EpochWide primary_rec)
{
    std::printf("verify:  %llu (line, epoch) reads, %llu "
                "mismatches, %llu in-flight skips, standby at "
                "epoch %llu of %llu -> %s\n",
                static_cast<unsigned long long>(rep.linesChecked),
                static_cast<unsigned long long>(rep.mismatches),
                static_cast<unsigned long long>(rep.inflightSkips),
                static_cast<unsigned long long>(rep.appliedRec),
                static_cast<unsigned long long>(primary_rec),
                rep.consistent() ? "CONSISTENT" : "INCONSISTENT");
    return rep.consistent() ? 0 : 1;
}

/** Total cycles of a completed identical run (for crash points). */
Cycle
probeTotalCycles(Config cfg, const std::string &scheme,
                 const std::string &workload)
{
    System sys(cfg, scheme, workload);
    sys.run();
    return sys.now();
}

/**
 * One crash/resume trial: power-cut at @p cycle (or a fault point),
 * rewind to the durable cursor, re-ship, and check the standby is
 * byte-exact against everything the rebuilt primary recovered.
 */
int
crashTrial(Config cfg, const std::string &scheme,
           const std::string &workload, Cycle cycle,
           const std::string &point, std::uint64_t hit, bool quiet)
{
    cfg.set("sim.track_writes", "true");
    cfg.set("persist.armed", "true");
    System sys(cfg, scheme, workload);
    bool crashed = false;
    if (!point.empty()) {
        if (!fault::enabled)
            fatal("crash_point needs a build with NVO_FAULT=ON");
        fault::FaultPlan fp;
        fp.crashAt(point, hit);
        fault::ScopedPlan armed(std::move(fp));
        try {
            sys.run();
        } catch (const fault::CrashFault &) {
            crashed = true;
        }
    } else {
        crashed = !sys.runUntil(cycle);
    }

    auto &rep = replicatorOf(sys);
    auto &scm = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EpochWide durable_before = rep.shipper().durableCursor();

    rep.onCrash();
    scm.backend().crashReset();
    EpochWide rec = scm.backend().recEpoch();
    std::uint64_t reshipped = rep.resume(sys.now());
    rep.drain(sys.now());
    rep.exportStats();

    if (!quiet) {
        std::printf("crash:   %s at %s, primary rec-epoch %llu\n",
                    crashed ? "crashed" : "completed (plan never "
                                          "fired)",
                    point.empty() ? ("cycle " + std::to_string(cycle))
                                        .c_str()
                                  : point.c_str(),
                    static_cast<unsigned long long>(rec));
        std::printf("resume:  cursor was durable at epoch %llu; "
                    "re-shipped %llu of %llu epochs (generation "
                    "%u)\n",
                    static_cast<unsigned long long>(durable_before),
                    static_cast<unsigned long long>(reshipped),
                    static_cast<unsigned long long>(rec),
                    rep.shipper().generation());
        printShipStats(sys.stats());
    }
    // The resume-from-cursor guarantee: never a full restream once
    // the cursor has advanced.
    if (durable_before > 0 && reshipped >= rec && rec > 0) {
        std::fprintf(stderr,
                     "FAIL: resume restreamed all %llu epochs "
                     "despite a durable cursor at %llu\n",
                     static_cast<unsigned long long>(reshipped),
                     static_cast<unsigned long long>(durable_before));
        return 1;
    }
    auto report = rep.verify(*sys.tracker(), true);
    if (quiet)
        return report.consistent() ? 0 : 1;
    return printVerdict(report, rec);
}

/** Mutated frame streams must decode-or-resync, never wedge. */
int
fuzzSmoke(std::uint64_t rounds, std::uint64_t seed)
{
    Rng rng(seed);
    repl::Decoder dec;
    std::uint64_t fed = 0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        repl::Frame f;
        f.type = (r % 5 == 0) ? repl::FrameType::EpochClose
                              : repl::FrameType::Delta;
        f.generation = static_cast<std::uint32_t>(r / 100 + 1);
        f.epoch = r / 10 + 1;
        f.arg = 0x1000 + 64 * r;
        f.frameId = r + 1;
        for (std::size_t i = 0; i < lineBytes; ++i)
            f.payload.bytes[i] =
                static_cast<std::uint8_t>(rng.next() & 0xFF);
        auto bytes = repl::encode(f);
        switch (rng.next() % 4) {
        case 0:
            bytes[rng.next() % bytes.size()] ^= static_cast<
                std::uint8_t>(1 + rng.next() % 255);
            break;
        case 1:
            bytes.resize(1 + rng.next() % bytes.size());
            break;
        case 2: {
            std::vector<std::uint8_t> junk(rng.next() % 64);
            for (auto &b : junk)
                b = static_cast<std::uint8_t>(rng.next() & 0xFF);
            bytes.insert(bytes.begin(), junk.begin(), junk.end());
            break;
        }
        default:
            break;
        }
        fed += bytes.size();
        dec.feed(bytes);
        while (dec.poll()) {
        }
    }
    // A pristine frame at the end must always decode: whatever the
    // fuzz left buffered cannot wedge the stream.
    repl::Frame probe;
    probe.type = repl::FrameType::EpochClose;
    probe.epoch = 1;
    probe.frameId = ~0ull;
    dec.feed(repl::encode(probe));
    bool alive = false;
    while (auto got = dec.poll())
        alive |= got->frameId == ~0ull;
    std::printf("fuzz:    %llu rounds, %.2f MB fed, %llu decoded, "
                "%llu crc errors, %llu resyncs, %llu discarded -> "
                "%s\n",
                static_cast<unsigned long long>(rounds), fed / 1e6,
                static_cast<unsigned long long>(dec.framesDecoded()),
                static_cast<unsigned long long>(dec.crcErrors()),
                static_cast<unsigned long long>(dec.resyncs()),
                static_cast<unsigned long long>(dec.bytesDiscarded()),
                alive ? "PASS" : "WEDGED");
    return alive ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scheme = "nvoverlay";
    std::string workload = "btree";
    std::string crash_point;
    std::uint64_t crash_hit = 1;
    Cycle crash_cycle = 0;
    unsigned campaign = 0;
    std::uint64_t fuzz_rounds = 0;

    Config cfg = defaultConfig();
    applyOverrides(cfg);

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr, "malformed argument '%s' "
                                 "(want key=value)\n",
                         arg.c_str());
            return 2;
        }
        std::string key = arg.substr(0, eq);
        std::string val = arg.substr(eq + 1);
        if (key == "scheme")
            scheme = val;
        else if (key == "workload")
            workload = val;
        else if (key == "crash_point")
            crash_point = val;
        else if (key == "crash_hit")
            crash_hit = std::strtoull(val.c_str(), nullptr, 0);
        else if (key == "crash_cycle")
            crash_cycle = std::strtoull(val.c_str(), nullptr, 0);
        else if (key == "crash_campaign")
            campaign = static_cast<unsigned>(
                std::strtoull(val.c_str(), nullptr, 0));
        else if (key == "fuzz")
            fuzz_rounds = std::strtoull(val.c_str(), nullptr, 0);
        else
            cfg.set(key, val);
    }

    if (fuzz_rounds > 0)
        return fuzzSmoke(fuzz_rounds, cfg.getU64("rng.seed", 1));

    cfg.set("repl.enabled", "true");
    cfg.set("sim.track_writes", "true");

    if (!crash_point.empty() || crash_cycle > 0)
        return crashTrial(cfg, scheme, workload, crash_cycle,
                          crash_point, crash_hit, false);

    if (campaign > 0) {
        // Seeded power-cut sweep across the run's cycle span; every
        // trial must resume from its durable cursor and converge.
        Cycle total = probeTotalCycles(cfg, scheme, workload);
        Rng rng(cfg.getU64("rng.seed", 1));
        unsigned failures = 0;
        for (unsigned t = 0; t < campaign; ++t) {
            // Land in the meaty middle: early crashes have no
            // durable cursor yet, late ones nothing left to ship.
            Cycle at = total / 5 + rng.next() % (3 * total / 5 + 1);
            int rc = crashTrial(cfg, scheme, workload, at, "", 1,
                                true);
            if (rc != 0)
                ++failures;
            std::printf("trial %2u: crash at cycle %llu -> %s\n", t,
                        static_cast<unsigned long long>(at),
                        rc == 0 ? "consistent" : "FAILED");
        }
        std::printf("crash campaign: %u trials, %u failures -> %s\n",
                    campaign, failures,
                    failures == 0 ? "PASS" : "FAIL");
        return failures == 0 ? 0 : 1;
    }

    // Plain run: ship everything while the workload executes, then
    // verify the standby byte-exact at every epoch.
    System sys(cfg, scheme, workload);
    sys.run();
    auto &rep = replicatorOf(sys);
    auto &scm = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EpochWide rec = scm.backend().recEpoch();
    printShipStats(sys.stats());
    return printVerdict(rep.verify(*sys.tracker(), false), rec);
}
