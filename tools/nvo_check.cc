/**
 * @file
 * Flow-aware structural analyzer for the NVOverlay persist protocol.
 *
 * Where nvo_lint greps tokens, nvo_check builds a per-function
 * statement tree, abstract-interprets every intra-procedural path,
 * and summarizes functions so rules see through calls within a
 * translation unit. Rules (scope: src/nvoverlay/ and src/repl/):
 *
 *  - persist-order:  on every path, a persist-domain write to pool /
 *                    master / cursor state must reach a
 *                    `persist().barrier()` before the rec-epoch word
 *                    or replication cursor is published (an
 *                    assignment to a `durable*_` shadow). This is the
 *                    paper's Sec. V-B fence, the invariant the seeded
 *                    `mnm.test_skip_rec_barrier` bug breaks at run
 *                    time — caught here statically.
 *  - fault-coverage: every durable-mutation site (persist write or
 *                    durable publish) must be dominated by an
 *                    NVO_FAULT_POINT / NVO_FAULT_ERROR hook, so the
 *                    crash campaigns can cut power on its path.
 *  - persist-domain: structural version of the lint rule — a direct
 *                    `<nvm model>.write(...)` bypassing `.persist()`
 *                    is flagged wherever it syntactically hides.
 *  - ledger-hook:    structural version of the lint rule — master
 *                    table insert/erase is legal only inside
 *                    masterInsert (or lambdas defined there), and
 *                    sub-page dropHeader only inside reclaimSubPage;
 *                    a wrapper function does not launder the call.
 *
 * Two frontends feed one IR:
 *  - the built-in structural C++ parser (default; no toolchain
 *    dependency), and
 *  - a clang `-Xclang -ast-dump=json` reader (`--ast-json`), parsed
 *    with tools/json_mini.hh — no libTooling link. Use with
 *    CMAKE_EXPORT_COMPILE_COMMANDS to reproduce compiler view.
 *
 * The analysis tracks, per path, a pair of booleans for each fact
 * ("assuming the caller entered clean" / "assuming the caller
 * entered dirty"), which yields function summaries — may-leave-
 * unfenced, must-clear, must-fault-at-exit, entry-dependent publish
 * or durable site — applied at call sites and iterated to a
 * fixpoint, so a violation whose write and publish live in
 * different functions is still reported (at the call site).
 *
 * Suppression: an allowlist file ("<rule> <path-suffix>[:<function>]"
 * per line, default tools/nvo_check_allow.txt) or an inline
 * "nvo-check: allow(rule)" marker on the offending line.
 *
 * Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
 * `--self-test` runs embedded good/bad cases; `--corpus DIR` runs the
 * committed fixture corpus (see tests/check_corpus/README.md).
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "json_mini.hh"

namespace
{

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    std::string function;
};

struct Token
{
    std::string text;
    int line = 0;
    bool ident = false;
    bool str = false;
};

/** Per-line "nvo-check: allow(rule)" markers, rule "*" allows all. */
using AllowMarkers = std::map<int, std::set<std::string>>;

AllowMarkers
collectMarkers(const std::string &text)
{
    AllowMarkers markers;
    std::istringstream in(text);
    std::string line;
    int num = 0;
    while (std::getline(in, line)) {
        ++num;
        std::size_t pos = line.find("nvo-check: allow(");
        if (pos == std::string::npos)
            continue;
        std::size_t open = line.find('(', pos);
        std::size_t close = line.find(')', open);
        if (close == std::string::npos)
            continue;
        std::string rules = line.substr(open + 1, close - open - 1);
        std::istringstream rs(rules);
        std::string rule;
        while (std::getline(rs, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (!rule.empty())
                markers[num].insert(rule);
        }
    }
    return markers;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** See nvo_lint: the '"' at @p i opens a raw string literal. */
bool
isRawStringStart(const std::string &text, std::size_t i)
{
    if (i == 0 || text[i - 1] != 'R')
        return false;
    std::size_t p = i - 1;
    if (p >= 2 && text[p - 2] == 'u' && text[p - 1] == '8')
        p -= 2;
    else if (p >= 1 && (text[p - 1] == 'u' || text[p - 1] == 'U' ||
                        text[p - 1] == 'L'))
        p -= 1;
    return p == 0 ||
           !(std::isalnum(static_cast<unsigned char>(text[p - 1])) ||
             text[p - 1] == '_');
}

/**
 * Lex C++ into the token stream the structural parser consumes.
 * Comments and preprocessor lines vanish; string literals survive as
 * single tokens (fault-point names live in them); raw strings are
 * delimiter-matched so their quotes cannot derail the scan.
 */
std::vector<Token>
tokenize(const std::string &text)
{
    std::vector<Token> out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto peekc = [&](std::size_t k) {
        return k < n ? text[k] : '\0';
    };
    while (i < n) {
        char c = text[i];
        char nx = peekc(i + 1);
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && nx == '/') {
            while (i < n && text[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && nx == '*') {
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            i = i + 1 < n ? i + 2 : n;
            continue;
        }
        if (c == '#' &&
            (out.empty() || out.back().line != line)) {
            // Preprocessor line (with continuations).
            while (i < n && text[i] != '\n') {
                if (text[i] == '\\' && peekc(i + 1) == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                ++i;
            }
            continue;
        }
        if (c == '"' && isRawStringStart(text, i)) {
            // Already emitted the R/prefix as an ident token; replace
            // it with a single string token.
            if (!out.empty() && out.back().ident)
                out.pop_back();
            std::size_t open = text.find('(', i + 1);
            if (open == std::string::npos) {
                ++i;
                continue;
            }
            std::string delim = text.substr(i + 1, open - i - 1);
            std::string stop = ")" + delim + "\"";
            std::size_t end = text.find(stop, open + 1);
            std::size_t close =
                end == std::string::npos ? n : end + stop.size();
            std::string body = text.substr(i, close - i);
            int start_line = line;
            line += static_cast<int>(
                std::count(body.begin(), body.end(), '\n'));
            out.push_back({body, start_line, false, true});
            i = close;
            continue;
        }
        if (c == '"' || c == '\'') {
            char q = c;
            std::size_t start = i++;
            while (i < n && text[i] != q) {
                if (text[i] == '\\')
                    ++i;
                if (i < n) {
                    if (text[i] == '\n')
                        ++line;
                    ++i;
                }
            }
            if (i < n)
                ++i;   // closing quote
            out.push_back({text.substr(start, i - start), line,
                           false, q == '"'});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < n &&
                   (isIdentChar(text[i]) || text[i] == '.' ||
                    text[i] == '\'' ||
                    ((text[i] == '+' || text[i] == '-') && i > start &&
                     (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                      text[i - 1] == 'p' || text[i - 1] == 'P'))))
                ++i;
            out.push_back({text.substr(start, i - start), line, false,
                           false});
            continue;
        }
        if (isIdentChar(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(text[i]))
                ++i;
            out.push_back(
                {text.substr(start, i - start), line, true, false});
            continue;
        }
        // Multi-char operators the rules depend on ("=" must mean
        // assignment; "." / "->" must be single tokens). ">>"/"<<"
        // deliberately split so template-angle matching stays sane.
        static const char *two[] = {"::", "->", "==", "!=", "<=",
                                    ">=", "&&", "||", "+=", "-=",
                                    "*=", "/=", "%=", "&=", "|=",
                                    "^=", "++", "--"};
        std::string pair{c, nx};
        bool matched = false;
        for (const char *t : two) {
            if (pair == t) {
                out.push_back({pair, line, false, false});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        out.push_back({std::string(1, c), line, false, false});
        ++i;
    }
    return out;
}

// -------------------------------------------------------------------
// IR: one statement tree per function, actions at the leaves.
// -------------------------------------------------------------------

enum class Act
{
    PersistWrite,   // nvm.persist().write(...) or via alias
    RawNvmWrite,    // nvm.write(...) bypassing the domain
    Barrier,        // nvm.persist().barrier()
    Publish,        // durable*_ = ...
    FaultHook,      // NVO_FAULT_POINT / NVO_FAULT_ERROR
    MasterMut,      // master-table insert/erase
    DropHeader,     // sub-page header drop
    Call,           // any other call, by unqualified name
    LambdaDef       // lambda literal defined here
};

struct Action
{
    Act kind = Act::Call;
    std::string name;   // hook name, callee, published member
    int line = 0;
    int lambda = -1;    // index into the TU function list
};

struct Node
{
    enum class K
    {
        Seq,      // kids in order
        Branch,   // kids = {cond, then[, else]}
        Loop,     // kids = {cond, body}; bodyFirst for do-while
        Act,      // act
        Ret       // return / throw: path ends
    };
    K k = K::Seq;
    std::vector<std::unique_ptr<Node>> kids;
    Action act;
    bool bodyFirst = false;
};

using NodePtr = std::unique_ptr<Node>;

NodePtr
mkNode(Node::K k)
{
    auto n = std::make_unique<Node>();
    n->k = k;
    return n;
}

struct Fn
{
    std::string qual;       // MnmBackend::persistRecEpoch
    std::string bare;       // persistRecEpoch
    std::string sanction;   // bare; for lambdas the enclosing bare
    std::string file;
    int line = 0;
    bool lambda = false;
    NodePtr body;

    // Lambda entry seeds, set at the definition site each pass.
    bool defUfF = false, defUfT = true;
    bool defMfF = false, defMfT = true;

    // Summary (clean-entry exit facts + entry dependences).
    bool mayLeaveUnfenced = false;
    bool clearsUnfenced = false;
    bool mustFaultAtExit = false;
    bool pubEntryDep = false;
    bool faultEntryDep = false;
    int pubDepLine = 0;
    int faultDepLine = 0;
    int callers = 0;
};

// -------------------------------------------------------------------
// Structural frontend: token stream -> functions with statement
// trees. Approximate by design — it only has to recognize the
// constructs the rules care about and keep control flow honest.
// -------------------------------------------------------------------

const std::set<std::string> kNvmNames = {"nvm", "nvm_", "nvmModel",
                                         "nvm_model"};
const std::set<std::string> kDomainNames = {"pd", "domain", "domain_",
                                            "persist_"};
const std::set<std::string> kMasterNames = {
    "master", "master_", "mt", "masterTable", "master_table"};
const std::set<std::string> kStmtKeywords = {
    "if",     "while",  "for",    "switch",   "return", "do",
    "else",   "case",   "default","break",    "continue", "try",
    "catch",  "throw",  "goto",   "new",      "delete", "sizeof",
    "alignof","decltype","noexcept","static_assert", "co_return",
    "co_await", "co_yield", "operator", "this"};

struct Tu
{
    std::string display;
    std::vector<std::unique_ptr<Fn>> fns;
};

/** Index of the bracket matching t[i] (same-kind counting). */
std::size_t
matchBracket(const std::vector<Token> &t, std::size_t i)
{
    const std::string &open = t[i].text;
    std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
    int depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (t[j].text == open)
            ++depth;
        else if (t[j].text == close && --depth == 0)
            return j;
    }
    return t.size() - 1;
}

struct Extractor
{
    const std::vector<Token> &t;
    Tu &tu;

    void
    run()
    {
        scanScope(0, t.size(), "");
    }

    /** Skip a `template <...>` preamble; returns index past '>'. */
    std::size_t
    skipTemplate(std::size_t i, std::size_t end)
    {
        ++i;   // 'template'
        if (i >= end || t[i].text != "<")
            return i;
        int depth = 0;
        for (; i < end; ++i) {
            if (t[i].text == "<")
                ++depth;
            else if (t[i].text == ">" && --depth == 0)
                return i + 1;
        }
        return end;
    }

    /**
     * Scan declarations at namespace/class scope; ctx is the class
     * qualifier ("" at namespace scope). Recognizes function bodies
     * and recurses into namespaces and class definitions.
     */
    void
    scanScope(std::size_t i, std::size_t end, const std::string &ctx)
    {
        while (i < end) {
            const std::string &x = t[i].text;
            if (x == "template") {
                i = skipTemplate(i, end);
                continue;
            }
            if (x == "namespace") {
                std::size_t j = i + 1;
                while (j < end &&
                       (t[j].ident || t[j].text == "::"))
                    ++j;
                if (j < end && t[j].text == "{") {
                    std::size_t c = matchBracket(t, j);
                    scanScope(j + 1, c, ctx);
                    i = c + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if ((x == "class" || x == "struct" || x == "union") &&
                (i == 0 || t[i - 1].text != "enum")) {
                std::size_t j = i + 1;
                std::string name;
                while (j < end && t[j].text != "{" &&
                       t[j].text != ";" && t[j].text != ":" &&
                       t[j].text != "=") {
                    if (t[j].text == "(" || t[j].text == "[") {
                        j = matchBracket(t, j) + 1;
                        continue;
                    }
                    if (t[j].ident && t[j].text != "final" &&
                        t[j].text != "alignas")
                        name = t[j].text;
                    ++j;
                }
                if (j < end && t[j].text == ":") {
                    while (j < end && t[j].text != "{" &&
                           t[j].text != ";")
                        ++j;
                }
                if (j < end && t[j].text == "{") {
                    std::size_t c = matchBracket(t, j);
                    std::string sub =
                        ctx.empty() ? name : ctx + "::" + name;
                    scanScope(j + 1, c, name.empty() ? ctx : sub);
                    i = c + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if (x == "enum") {
                std::size_t j = i + 1;
                while (j < end && t[j].text != "{" &&
                       t[j].text != ";")
                    ++j;
                i = (j < end && t[j].text == "{")
                        ? matchBracket(t, j) + 1
                        : j + 1;
                continue;
            }
            if (x == "(") {
                i = tryFunction(i, end, ctx);
                continue;
            }
            ++i;
        }
    }

    /**
     * t[i] is '(' at declaration scope: either a function definition
     * (name precedes, body follows) or a group to skip. Returns the
     * index to resume scanning at.
     */
    std::size_t
    tryFunction(std::size_t i, std::size_t end, const std::string &ctx)
    {
        std::size_t close = matchBracket(t, i);
        std::string qual = nameBefore(i);
        if (qual.empty())
            return close + 1;

        // Walk past trailing qualifiers to find the body (or learn
        // this is just a declaration).
        std::size_t j = close + 1;
        while (j < end) {
            const std::string &y = t[j].text;
            if (y == "{" || y == ";" || y == "," || y == "=" ||
                y == ")" || y == "}")
                break;
            if (y == ":")
                break;   // ctor-init list
            if (y == "(" || y == "[") {
                j = matchBracket(t, j) + 1;
                continue;
            }
            ++j;
        }
        if (j < end && t[j].text == ":") {
            // Ctor-init list: the body '{' directly follows a ')' or
            // '}' that closed the last initializer.
            ++j;
            while (j < end) {
                if (t[j].text == "(" || t[j].text == "[") {
                    j = matchBracket(t, j) + 1;
                    continue;
                }
                if (t[j].text == "{") {
                    const std::string &prev = t[j - 1].text;
                    if (prev == ")" || prev == "}")
                        break;   // body
                    j = matchBracket(t, j) + 1;   // brace init
                    continue;
                }
                if (t[j].text == ";")
                    break;
                ++j;
            }
        }
        if (j >= end || t[j].text != "{")
            return close + 1;

        std::size_t bodyClose = matchBracket(t, j);
        auto fn = std::make_unique<Fn>();
        fn->qual = (ctx.empty() || qual.find("::") != std::string::npos)
                       ? qual
                       : ctx + "::" + qual;
        std::size_t sep = fn->qual.rfind("::");
        fn->bare = sep == std::string::npos
                       ? fn->qual
                       : fn->qual.substr(sep + 2);
        fn->sanction = fn->bare;
        fn->file = tu.display;
        fn->line = t[i].line;
        Fn *raw = fn.get();
        tu.fns.push_back(std::move(fn));
        parseBody(raw, j + 1, bodyClose);
        return bodyClose + 1;
    }

    /** Qualified name ending just before the '(' at i, or "". */
    std::string
    nameBefore(std::size_t i)
    {
        if (i == 0)
            return "";
        std::size_t k = i - 1;
        if (!t[k].ident) {
            // operator==(...) / operator()(...) forms.
            for (std::size_t back = 0; back < 3 && k > back; ++back)
                if (t[k - back].text == "operator")
                    return "operator";
            return "";
        }
        if (kStmtKeywords.count(t[k].text))
            return "";
        std::string name = t[k].text;
        while (k >= 2 && t[k - 1].text == "::" && t[k - 2].ident) {
            name = t[k - 2].text + "::" + name;
            k -= 2;
        }
        if (k >= 1 && t[k - 1].text == "~")
            name = "~" + name;
        // A member access before the name means this is a call
        // expression, not a definition.
        if (k >= 1 &&
            (t[k - 1].text == "." || t[k - 1].text == "->"))
            return "";
        return name;
    }

    void parseBody(Fn *fn, std::size_t i, std::size_t end);
};

/**
 * Parses one function body into the statement IR, registering lambda
 * bodies as separate functions and tracking persist-domain / master
 * aliases declared along the way.
 */
struct StmtParser
{
    const std::vector<Token> &t;
    Extractor &ex;
    Fn *fn;
    std::set<std::string> domainAliases;
    std::set<std::string> masterAliases;

    NodePtr
    parseSeq(std::size_t i, std::size_t end)
    {
        NodePtr seq = mkNode(Node::K::Seq);
        while (i < end)
            i = parseOne(i, end, seq.get());
        return seq;
    }

    /** Parse one statement starting at i; returns the next index. */
    std::size_t
    parseOne(std::size_t i, std::size_t end, Node *seq)
    {
        if (i >= end)
            return end;
        const std::string &x = t[i].text;
        if (x == ";" || x == "else")
            return i + 1;
        if (x == "{") {
            std::size_t c = matchBracket(t, i);
            seq->kids.push_back(parseSeq(i + 1, std::min(c, end)));
            return c + 1;
        }
        if (x == "if") {
            std::size_t open = i + 1;
            if (open < end && t[open].text == "constexpr")
                ++open;
            if (open >= end || t[open].text != "(")
                return i + 1;
            std::size_t close = matchBracket(t, open);
            NodePtr br = mkNode(Node::K::Branch);
            br->kids.push_back(scanRange(open + 1, close));
            NodePtr thenSeq = mkNode(Node::K::Seq);
            std::size_t ni =
                parseOne(close + 1, end, thenSeq.get());
            br->kids.push_back(std::move(thenSeq));
            if (ni < end && t[ni].text == "else") {
                NodePtr elseSeq = mkNode(Node::K::Seq);
                ni = parseOne(ni + 1, end, elseSeq.get());
                br->kids.push_back(std::move(elseSeq));
            }
            seq->kids.push_back(std::move(br));
            return ni;
        }
        if (x == "while") {
            if (i + 1 >= end || t[i + 1].text != "(")
                return i + 1;
            std::size_t close = matchBracket(t, i + 1);
            NodePtr loop = mkNode(Node::K::Loop);
            loop->kids.push_back(scanRange(i + 2, close));
            NodePtr body = mkNode(Node::K::Seq);
            std::size_t ni = parseOne(close + 1, end, body.get());
            loop->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(loop));
            return ni;
        }
        if (x == "do") {
            NodePtr body = mkNode(Node::K::Seq);
            std::size_t ni = parseOne(i + 1, end, body.get());
            NodePtr loop = mkNode(Node::K::Loop);
            loop->bodyFirst = true;
            if (ni < end && t[ni].text == "while" && ni + 1 < end &&
                t[ni + 1].text == "(") {
                std::size_t close = matchBracket(t, ni + 1);
                loop->kids.push_back(scanRange(ni + 2, close));
                ni = close + 1;
                if (ni < end && t[ni].text == ";")
                    ++ni;
            } else {
                loop->kids.push_back(mkNode(Node::K::Seq));
            }
            loop->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(loop));
            return ni;
        }
        if (x == "for") {
            if (i + 1 >= end || t[i + 1].text != "(")
                return i + 1;
            std::size_t close = matchBracket(t, i + 1);
            NodePtr loop = mkNode(Node::K::Loop);
            loop->kids.push_back(scanRange(i + 2, close));
            NodePtr body = mkNode(Node::K::Seq);
            std::size_t ni = parseOne(close + 1, end, body.get());
            loop->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(loop));
            return ni;
        }
        if (x == "switch") {
            if (i + 1 >= end || t[i + 1].text != "(")
                return i + 1;
            std::size_t close = matchBracket(t, i + 1);
            NodePtr br = mkNode(Node::K::Branch);
            br->kids.push_back(scanRange(i + 2, close));
            NodePtr body = mkNode(Node::K::Seq);
            std::size_t ni = parseOne(close + 1, end, body.get());
            // Conservative: the body may or may not run (no else).
            br->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(br));
            return ni;
        }
        if (x == "case") {
            std::size_t j = i + 1;
            while (j < end && t[j].text != ":")
                ++j;
            return j + 1;
        }
        if (x == "default" && i + 1 < end && t[i + 1].text == ":")
            return i + 2;
        if (x == "return" || x == "throw") {
            std::size_t stop = stmtEnd(i + 1, end);
            seq->kids.push_back(scanRange(i + 1, stop));
            seq->kids.push_back(mkNode(Node::K::Ret));
            return stop + 1;
        }
        if (x == "break" || x == "continue" || x == "goto") {
            std::size_t j = i;
            while (j < end && t[j].text != ";")
                ++j;
            return j + 1;
        }
        if (x == "try")
            return i + 1;
        if (x == "catch") {
            // Handler may or may not run: branch without else.
            std::size_t j = i + 1;
            if (j < end && t[j].text == "(")
                j = matchBracket(t, j) + 1;
            NodePtr br = mkNode(Node::K::Branch);
            br->kids.push_back(mkNode(Node::K::Seq));
            NodePtr body = mkNode(Node::K::Seq);
            std::size_t ni = parseOne(j, end, body.get());
            br->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(br));
            return ni;
        }
        // Flat statement.
        std::size_t stop = stmtEnd(i, end);
        registerAliases(i, stop);
        seq->kids.push_back(scanRange(i, stop));
        return stop + 1;
    }

    /** First ';' at bracket depth zero in [i, end). */
    std::size_t
    stmtEnd(std::size_t i, std::size_t end)
    {
        while (i < end) {
            const std::string &x = t[i].text;
            if (x == ";")
                return i;
            if (x == "(" || x == "[" || x == "{") {
                i = matchBracket(t, i) + 1;
                continue;
            }
            if (x == ")" || x == "}")
                return i;   // malformed; stop at enclosing close
            ++i;
        }
        return end;
    }

    /**
     * Alias declarations: `PersistDomain &d = nvm.persist();` makes d
     * a domain alias; a declaration whose initializer mentions the
     * master table makes the declared name a master alias.
     */
    void
    registerAliases(std::size_t i, std::size_t stop)
    {
        std::size_t eq = stop;
        for (std::size_t j = i; j < stop; ++j) {
            const std::string &x = t[j].text;
            if (x == "(" || x == "[" || x == "{") {
                j = matchBracket(t, j);
                continue;
            }
            if (x == "=") {
                eq = j;
                break;
            }
        }
        if (eq == stop || eq == i || !t[eq - 1].ident)
            return;
        const std::string &name = t[eq - 1].text;
        if (stop >= 4 && t[stop - 1].text == ")" &&
            t[stop - 2].text == "(" &&
            t[stop - 3].text == "persist") {
            domainAliases.insert(name);
            return;
        }
        for (std::size_t j = eq + 1; j < stop; ++j)
            if (t[j].ident && kMasterNames.count(t[j].text)) {
                masterAliases.insert(name);
                return;
            }
    }

    /** Scan an expression token range into a Seq of actions. */
    NodePtr
    scanRange(std::size_t i, std::size_t end)
    {
        NodePtr seq = mkNode(Node::K::Seq);
        scanInto(i, end, seq.get());
        return seq;
    }

    void
    addAct(Node *seq, Act kind, const std::string &name, int line,
           int lambda = -1)
    {
        NodePtr n = mkNode(Node::K::Act);
        n->act = {kind, name, line, lambda};
        seq->kids.push_back(std::move(n));
    }

    void
    scanInto(std::size_t i, std::size_t end, Node *seq)
    {
        while (i < end) {
            const Token &tok = t[i];
            const std::string &x = tok.text;
            auto at = [&](std::size_t k) -> const std::string & {
                static const std::string empty;
                return k < end ? t[k].text : empty;
            };

            if (x == "{") {
                std::size_t c = matchBracket(t, i);
                scanInto(i + 1, std::min(c, end), seq);
                i = c + 1;
                continue;
            }
            if (x == "[") {
                if (at(i + 1) == "[") {
                    // [[attribute]]
                    std::size_t c = matchBracket(t, i + 1);
                    i = (c + 1 < end && t[c + 1].text == "]")
                            ? c + 2
                            : c + 1;
                    continue;
                }
                const std::string &prev =
                    i > 0 ? t[i - 1].text : std::string();
                bool subscript =
                    !prev.empty() &&
                    (t[i - 1].ident || prev == "]" || prev == ")");
                if (subscript) {
                    // Scan the index expression, keep going after.
                    std::size_t c = matchBracket(t, i);
                    scanInto(i + 1, std::min(c, end), seq);
                    i = c + 1;
                    continue;
                }
                i = tryLambda(i, end, seq);
                continue;
            }
            if ((x == "NVO_FAULT_POINT" || x == "NVO_FAULT_ERROR") &&
                at(i + 1) == "(" && i + 2 < end && t[i + 2].str) {
                addAct(seq, Act::FaultHook, t[i + 2].text, tok.line);
                i += 3;
                continue;
            }
            if (tok.ident && kNvmNames.count(x)) {
                if (at(i + 1) == "." && at(i + 2) == "persist" &&
                    at(i + 3) == "(" && at(i + 4) == ")" &&
                    at(i + 5) == "." && at(i + 7) == "(") {
                    const std::string &m = at(i + 6);
                    if (m == "write") {
                        addAct(seq, Act::PersistWrite, m,
                               t[i + 6].line);
                        i += 8;
                        continue;
                    }
                    if (m == "barrier") {
                        addAct(seq, Act::Barrier, m, t[i + 6].line);
                        i += 8;
                        continue;
                    }
                }
                if (at(i + 1) == "." && at(i + 2) == "write" &&
                    at(i + 3) == "(") {
                    addAct(seq, Act::RawNvmWrite, x, t[i + 2].line);
                    i += 4;
                    continue;
                }
            }
            if (tok.ident &&
                (kDomainNames.count(x) || domainAliases.count(x)) &&
                (at(i + 1) == "." || at(i + 1) == "->") &&
                at(i + 3) == "(") {
                const std::string &m = at(i + 2);
                if (m == "write") {
                    addAct(seq, Act::PersistWrite, m, t[i + 2].line);
                    i += 4;
                    continue;
                }
                if (m == "barrier") {
                    addAct(seq, Act::Barrier, m, t[i + 2].line);
                    i += 4;
                    continue;
                }
            }
            if (tok.ident && x.rfind("durable", 0) == 0 &&
                x.size() > 7 && x.back() == '_' &&
                at(i + 1) == "=") {
                addAct(seq, Act::Publish, x, tok.line);
                i += 2;
                continue;
            }
            if (tok.ident &&
                (kMasterNames.count(x) || masterAliases.count(x)) &&
                (at(i + 1) == "." || at(i + 1) == "->") &&
                (at(i + 2) == "insert" || at(i + 2) == "erase") &&
                at(i + 3) == "(") {
                addAct(seq, Act::MasterMut, at(i + 2), t[i + 2].line);
                i += 4;
                continue;
            }
            if (x == "dropHeader" && i > 0 &&
                (t[i - 1].text == "." || t[i - 1].text == "->") &&
                at(i + 1) == "(") {
                addAct(seq, Act::DropHeader, x, tok.line);
                i += 2;
                continue;
            }
            if (tok.ident && at(i + 1) == "(" &&
                !kStmtKeywords.count(x)) {
                addAct(seq, Act::Call, x, tok.line);
                i += 2;
                continue;
            }
            ++i;
        }
    }

    /**
     * t[i] is '[' opening a capture list (maybe). On a real lambda,
     * registers the body as a new function (sanctioned under the
     * enclosing one), emits a LambdaDef, and returns the index past
     * the body. Otherwise returns i + 1.
     */
    std::size_t
    tryLambda(std::size_t i, std::size_t end, Node *seq)
    {
        std::size_t close = matchBracket(t, i);
        if (close >= end)
            return i + 1;
        std::size_t j = close + 1;
        if (j < end && t[j].text == "(")
            j = matchBracket(t, j) + 1;
        while (j < end &&
               (t[j].text == "mutable" || t[j].text == "constexpr" ||
                t[j].text == "noexcept" || t[j].text == "->" ||
                t[j].ident || t[j].text == "::" || t[j].text == "*" ||
                t[j].text == "&" || t[j].text == "<" ||
                t[j].text == ">")) {
            if (t[j].text == "noexcept" && j + 1 < end &&
                t[j + 1].text == "(") {
                j = matchBracket(t, j + 1) + 1;
                continue;
            }
            ++j;
        }
        if (j >= end || t[j].text != "{")
            return i + 1;
        std::size_t bodyClose = matchBracket(t, j);

        auto lam = std::make_unique<Fn>();
        lam->qual = fn->qual + "::<lambda:" +
                    std::to_string(t[i].line) + ">";
        lam->bare = lam->qual;
        lam->sanction = fn->sanction;
        lam->file = fn->file;
        lam->line = t[i].line;
        lam->lambda = true;
        Fn *raw = lam.get();
        ex.tu.fns.push_back(std::move(lam));
        int idx = static_cast<int>(ex.tu.fns.size()) - 1;

        StmtParser sub{t, ex, raw, domainAliases, masterAliases};
        raw->body = sub.parseSeq(j + 1, bodyClose);
        addAct(seq, Act::LambdaDef, raw->qual, t[i].line, idx);
        return bodyClose + 1;
    }
};

void
Extractor::parseBody(Fn *fn, std::size_t i, std::size_t end)
{
    StmtParser p{t, *this, fn, {}, {}};
    fn->body = p.parseSeq(i, end);
}

// -------------------------------------------------------------------
// Analysis: abstract interpretation over the statement trees.
//
// Each fact is tracked twice per path — once assuming the function
// was entered "clean" and once assuming "dirty" — which makes entry-
// dependence visible without inter-procedural path enumeration:
//   ufF/ufT: may an unfenced persist write be pending, given a
//            fenced / unfenced entry state;
//   mfF/mfT: has a fault hook definitely fired, given an unhooked /
//            hooked entry state.
// -------------------------------------------------------------------

struct St
{
    bool ufF = false, ufT = true;
    bool mfF = false, mfT = true;
    bool term = false;
};

St
joinSt(const St &a, const St &b)
{
    if (a.term)
        return b;
    if (b.term)
        return a;
    St s;
    s.ufF = a.ufF || b.ufF;
    s.ufT = a.ufT || b.ufT;
    s.mfF = a.mfF && b.mfF;
    s.mfT = a.mfT && b.mfT;
    s.term = false;
    return s;
}

struct Analyzer
{
    Tu &tu;
    std::map<std::string, std::vector<Fn *>> byBare;
    std::vector<Violation> *out = nullptr;   // null = summary pass
    std::set<std::tuple<std::string, int, std::string>> seen;

    Fn *cur = nullptr;
    St exitAcc;
    bool anyExit = false;

    void
    report(int line, const std::string &rule, const std::string &msg)
    {
        if (!out)
            return;
        auto key = std::make_tuple(cur->file, line, rule);
        if (!seen.insert(key).second)
            return;
        out->push_back({cur->file, line, rule, msg, cur->qual});
    }

    /** A durable-mutation site needs a fault hook on its path. */
    void
    faultSite(int line, const std::string &what, const St &s)
    {
        if (s.term)
            return;
        if (!s.mfT) {
            report(line, "fault-coverage",
                   what + " with no NVO_FAULT_POINT on its path: "
                   "crash campaigns cannot cut power before this "
                   "durable mutation");
        } else if (!s.mfF && !cur->faultEntryDep) {
            cur->faultEntryDep = true;
            cur->faultDepLine = line;
        }
    }

    void
    apply(const Action &a, St &s)
    {
        switch (a.kind) {
        case Act::FaultHook:
            s.mfF = s.mfT = true;
            break;
        case Act::Barrier:
            s.ufF = s.ufT = false;
            break;
        case Act::PersistWrite:
            faultSite(a.line, "persist-domain write", s);
            s.ufF = s.ufT = true;
            break;
        case Act::RawNvmWrite:
            report(a.line, "persist-domain",
                   "direct NVM write bypasses the persist boundary "
                   "(use " + a.name + ".persist().write)");
            s.ufF = s.ufT = true;
            break;
        case Act::Publish:
            faultSite(a.line, "durable publish", s);
            if (s.ufF) {
                report(a.line, "persist-order",
                       "publish of " + a.name + " can be reached "
                       "with an unfenced persist write pending; a "
                       "barrier() must order merge writes before the "
                       "recovery word names them (paper Sec. V-B)");
            } else if (s.ufT) {
                if (!cur->pubEntryDep) {
                    cur->pubEntryDep = true;
                    cur->pubDepLine = a.line;
                }
            }
            break;
        case Act::MasterMut:
            if (cur->sanction != "masterInsert") {
                report(a.line, "ledger-hook",
                       "master-table " + a.name + " outside "
                       "MnmBackend::masterInsert (or a lambda defined "
                       "there); the provenance ledger would miss this "
                       "version transition");
            }
            break;
        case Act::DropHeader:
            if (cur->sanction != "reclaimSubPage") {
                report(a.line, "ledger-hook",
                       "sub-page dropHeader outside "
                       "MnmBackend::reclaimSubPage (or a lambda "
                       "defined there); buried versions must exit "
                       "the ledger first");
            }
            break;
        case Act::Call: {
            auto it = byBare.find(a.name);
            if (it == byBare.end())
                break;
            // Merge summaries of same-named functions (overloads):
            // may-facts OR, must-facts AND.
            bool mayLeave = false, clears = true, mustFault = true;
            bool pubDep = false, faultDep = false;
            int pubLine = 0, faultLine = 0;
            for (Fn *callee : it->second) {
                mayLeave = mayLeave || callee->mayLeaveUnfenced;
                clears = clears && callee->clearsUnfenced;
                mustFault = mustFault && callee->mustFaultAtExit;
                if (callee->pubEntryDep) {
                    pubDep = true;
                    pubLine = callee->pubDepLine;
                }
                if (callee->faultEntryDep) {
                    faultDep = true;
                    faultLine = callee->faultDepLine;
                }
            }
            if (pubDep) {
                if (s.ufF) {
                    report(a.line, "persist-order",
                           "call of " + a.name + " (which publishes "
                           "durable state at line " +
                           std::to_string(pubLine) + " without its "
                           "own fence) while an unfenced persist "
                           "write is pending");
                } else if (s.ufT && !cur->pubEntryDep) {
                    cur->pubEntryDep = true;
                    cur->pubDepLine = a.line;
                }
            }
            if (faultDep) {
                if (!s.mfT) {
                    report(a.line, "fault-coverage",
                           "call of " + a.name + " (which mutates "
                           "durable state at line " +
                           std::to_string(faultLine) + " relying on "
                           "a caller-side hook) with no "
                           "NVO_FAULT_POINT on this path");
                } else if (!s.mfF && !cur->faultEntryDep) {
                    cur->faultEntryDep = true;
                    cur->faultDepLine = a.line;
                }
            }
            s.ufF = (s.ufF && !clears) || mayLeave;
            s.ufT = (s.ufT && !clears) || mayLeave;
            s.mfF = s.mfF || mustFault;
            s.mfT = s.mfT || mustFault;
            break;
        }
        case Act::LambdaDef: {
            Fn *lam = tu.fns[static_cast<std::size_t>(a.lambda)].get();
            lam->defUfF = s.ufF;
            lam->defUfT = s.ufT;
            lam->defMfF = s.mfF;
            lam->defMfT = s.mfT;
            break;
        }
        }
    }

    St
    exec(const Node *n, St s)
    {
        switch (n->k) {
        case Node::K::Seq:
            for (const auto &kid : n->kids) {
                if (s.term)
                    break;
                s = exec(kid.get(), s);
            }
            return s;
        case Node::K::Act:
            if (!s.term)
                apply(n->act, s);
            return s;
        case Node::K::Ret:
            if (!s.term) {
                if (anyExit) {
                    exitAcc = joinSt(exitAcc, s);
                } else {
                    exitAcc = s;
                    anyExit = true;
                }
                s.term = true;
            }
            return s;
        case Node::K::Branch: {
            s = exec(n->kids[0].get(), s);
            if (s.term)
                return s;
            St a = exec(n->kids[1].get(), s);
            St b = n->kids.size() > 2 ? exec(n->kids[2].get(), s) : s;
            if (a.term && b.term) {
                s.term = true;
                return s;
            }
            return joinSt(a, b);
        }
        case Node::K::Loop: {
            const Node *condN = n->kids[0].get();
            const Node *bodyN = n->kids[1].get();
            if (n->bodyFirst) {
                St b = exec(bodyN, s);
                if (!b.term)
                    b = exec(condN, b);
                St b2 = b;
                if (!b2.term) {
                    b2 = exec(bodyN, b2);
                    if (!b2.term)
                        b2 = exec(condN, b2);
                }
                if (b.term && b2.term) {
                    s.term = true;
                    return s;
                }
                return joinSt(b, b2);
            }
            St c = exec(condN, s);
            if (c.term)
                return c;
            St exit0 = c;   // zero iterations
            St b1 = exec(bodyN, c);
            if (!b1.term)
                b1 = exec(condN, b1);
            St b2 = b1;
            if (!b2.term) {
                b2 = exec(bodyN, b2);
                if (!b2.term)
                    b2 = exec(condN, b2);
            }
            St r = exit0;
            if (!b1.term)
                r = joinSt(r, b1);
            if (!b2.term)
                r = joinSt(r, b2);
            return r;
        }
        }
        return s;
    }

    /** Walk one function; recompute and install its summary.
     *  Returns true when the summary changed. */
    bool
    walk(Fn *f)
    {
        cur = f;
        exitAcc = St{};
        anyExit = false;
        St entry;
        if (f->lambda) {
            entry.ufF = f->defUfF;
            entry.ufT = f->defUfT;
            entry.mfF = f->defMfF;
            entry.mfT = f->defMfT;
        }
        bool oldPubDep = f->pubEntryDep;
        bool oldFaultDep = f->faultEntryDep;
        f->pubEntryDep = false;
        f->faultEntryDep = false;
        St fin = exec(f->body.get(), entry);
        if (!fin.term) {
            exitAcc = anyExit ? joinSt(exitAcc, fin) : fin;
            anyExit = true;
        }
        bool mayLeave, clears, mustFault;
        if (anyExit) {
            mayLeave = exitAcc.ufF;
            clears = !exitAcc.ufT;
            mustFault = exitAcc.mfF;
        } else {
            // No path returns: callers never resume.
            mayLeave = false;
            clears = true;
            mustFault = true;
        }
        bool changed = mayLeave != f->mayLeaveUnfenced ||
                       clears != f->clearsUnfenced ||
                       mustFault != f->mustFaultAtExit ||
                       oldPubDep != f->pubEntryDep ||
                       oldFaultDep != f->faultEntryDep;
        f->mayLeaveUnfenced = mayLeave;
        f->clearsUnfenced = clears;
        f->mustFaultAtExit = mustFault;
        return changed;
    }

    void
    countCallers(const Node *n)
    {
        if (n->k == Node::K::Act && n->act.kind == Act::Call) {
            auto it = byBare.find(n->act.name);
            if (it != byBare.end())
                for (Fn *callee : it->second)
                    ++callee->callers;
        }
        for (const auto &kid : n->kids)
            countCallers(kid.get());
    }

    void
    run(std::vector<Violation> &violations)
    {
        for (auto &f : tu.fns)
            if (!f->lambda)
                byBare[f->bare].push_back(f.get());
        for (auto &f : tu.fns)
            countCallers(f->body.get());

        // Summary fixpoint: bounded because the TU call graphs are
        // shallow; five passes cover every chain in the tree plus
        // slack for the corpus.
        out = nullptr;
        for (int pass = 0; pass < 5; ++pass) {
            bool changed = false;
            for (auto &f : tu.fns)
                changed = walk(f.get()) || changed;
            if (!changed)
                break;
        }

        out = &violations;
        for (auto &f : tu.fns)
            walk(f.get());

        // An entry-dependent durable site in a function nothing in
        // this TU calls is an uncovered public entry point.
        for (auto &f : tu.fns) {
            if (f->lambda || !f->faultEntryDep || f->callers > 0)
                continue;
            cur = f.get();
            report(f->faultDepLine, "fault-coverage",
                   "durable mutation relies on a caller-side "
                   "NVO_FAULT_POINT, but no caller in this "
                   "translation unit provides one");
        }
    }
};

// -------------------------------------------------------------------
// Clang AST frontend: `clang -Xclang -ast-dump=json` -> the same IR.
// Reads the dump with jsonmini (no libTooling link); locations use
// clang's differential encoding, so file/line are tracked as "last
// seen" during the walk.
// -------------------------------------------------------------------

struct AstReader
{
    Tu &tu;
    bool forceScope = false;
    std::string lastFile;
    int lastLine = 0;

    static const jsonmini::Value *
    kidAt(const jsonmini::Value *v, std::size_t i)
    {
        const jsonmini::Value *inner = v->get("inner");
        if (!inner || !inner->isArray() || i >= inner->arr.size())
            return nullptr;
        return inner->arr[i].get();
    }

    static std::size_t
    kidCount(const jsonmini::Value *v)
    {
        const jsonmini::Value *inner = v->get("inner");
        return inner && inner->isArray() ? inner->arr.size() : 0;
    }

    static std::string
    kindOf(const jsonmini::Value *v)
    {
        const jsonmini::Value *k = v->get("kind");
        return k ? k->asString() : std::string();
    }

    void
    updateLoc(const jsonmini::Value *v)
    {
        static const char *paths[][3] = {
            {"loc", nullptr, nullptr},
            {"loc", "spellingLoc", nullptr},
            {"loc", "expansionLoc", nullptr},
            {"range", "begin", nullptr},
            {"range", "begin", "spellingLoc"},
            {"range", "begin", "expansionLoc"},
        };
        for (const auto &p : paths) {
            const jsonmini::Value *loc = v->get(p[0]);
            if (loc && p[1])
                loc = loc->get(p[1]);
            if (loc && p[2])
                loc = loc->get(p[2]);
            if (!loc)
                continue;
            if (const jsonmini::Value *f = loc->get("file"))
                lastFile = f->asString();
            if (const jsonmini::Value *l = loc->get("line"))
                lastLine = static_cast<int>(l->asInt());
        }
    }

    /** True when the subtree mentions @p cls in any qualType. */
    static bool
    mentionsType(const jsonmini::Value *v, const std::string &cls)
    {
        if (const jsonmini::Value *q = v->get("type", "qualType"))
            if (q->asString().find(cls) != std::string::npos)
                return true;
        const jsonmini::Value *inner = v->get("inner");
        if (inner && inner->isArray())
            for (const auto &kid : inner->arr)
                if (mentionsType(kid.get(), cls))
                    return true;
        return false;
    }

    /** First StringLiteral value in the subtree, unquoted. */
    static std::string
    findString(const jsonmini::Value *v)
    {
        if (kindOf(v) == "StringLiteral") {
            if (const jsonmini::Value *val = v->get("value")) {
                std::string s = val->asString();
                if (s.size() >= 2 && s.front() == '"' &&
                    s.back() == '"')
                    return s.substr(1, s.size() - 2);
                return s;
            }
        }
        const jsonmini::Value *inner = v->get("inner");
        if (inner && inner->isArray())
            for (const auto &kid : inner->arr) {
                std::string s = findString(kid.get());
                if (!s.empty())
                    return s;
            }
        return "";
    }

    /** First decl-reference name in the subtree (DeclRefExpr /
     *  MemberExpr), for assignment targets and callees. */
    static std::string
    findName(const jsonmini::Value *v)
    {
        std::string k = kindOf(v);
        if (k == "MemberExpr") {
            if (const jsonmini::Value *n = v->get("name"))
                return n->asString();
        }
        if (k == "DeclRefExpr") {
            if (const jsonmini::Value *n =
                    v->get("referencedDecl", "name"))
                return n->asString();
        }
        const jsonmini::Value *inner = v->get("inner");
        if (inner && inner->isArray())
            for (const auto &kid : inner->arr) {
                std::string s = findName(kid.get());
                if (!s.empty())
                    return s;
            }
        return "";
    }

    void
    addAct(Node *seq, Act kind, const std::string &name, int line,
           int lambda = -1)
    {
        NodePtr n = mkNode(Node::K::Act);
        n->act = {kind, name, line, lambda};
        seq->kids.push_back(std::move(n));
    }

    /** Convert one statement/expression node into @p seq. */
    void
    convert(const jsonmini::Value *v, Node *seq, Fn *fn)
    {
        if (!v || !v->isObject())
            return;
        updateLoc(v);
        std::string k = kindOf(v);
        int line = lastLine;

        auto convertKids = [&](Node *dst, std::size_t from,
                               std::size_t to) {
            for (std::size_t i = from; i < to; ++i)
                convert(kidAt(v, i), dst, fn);
        };
        std::size_t n = kidCount(v);

        if (k == "IfStmt") {
            bool hasElse = false;
            if (const jsonmini::Value *he = v->get("hasElse"))
                hasElse = he->boolean;
            std::size_t branches = hasElse ? 2 : 1;
            if (n < branches)
                return;
            NodePtr br = mkNode(Node::K::Branch);
            NodePtr cond = mkNode(Node::K::Seq);
            convertKids(cond.get(), 0, n - branches);
            br->kids.push_back(std::move(cond));
            NodePtr thenB = mkNode(Node::K::Seq);
            convert(kidAt(v, n - branches), thenB.get(), fn);
            br->kids.push_back(std::move(thenB));
            if (hasElse) {
                NodePtr elseB = mkNode(Node::K::Seq);
                convert(kidAt(v, n - 1), elseB.get(), fn);
                br->kids.push_back(std::move(elseB));
            }
            seq->kids.push_back(std::move(br));
            return;
        }
        if (k == "WhileStmt" || k == "ForStmt" ||
            k == "CXXForRangeStmt") {
            if (n == 0)
                return;
            NodePtr loop = mkNode(Node::K::Loop);
            NodePtr cond = mkNode(Node::K::Seq);
            convertKids(cond.get(), 0, n - 1);
            loop->kids.push_back(std::move(cond));
            NodePtr body = mkNode(Node::K::Seq);
            convert(kidAt(v, n - 1), body.get(), fn);
            loop->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(loop));
            return;
        }
        if (k == "DoStmt") {
            if (n < 2)
                return;
            NodePtr loop = mkNode(Node::K::Loop);
            loop->bodyFirst = true;
            NodePtr cond = mkNode(Node::K::Seq);
            convert(kidAt(v, n - 1), cond.get(), fn);
            loop->kids.push_back(std::move(cond));
            NodePtr body = mkNode(Node::K::Seq);
            convertKids(body.get(), 0, n - 1);
            loop->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(loop));
            return;
        }
        if (k == "SwitchStmt") {
            if (n == 0)
                return;
            NodePtr br = mkNode(Node::K::Branch);
            NodePtr cond = mkNode(Node::K::Seq);
            convertKids(cond.get(), 0, n - 1);
            br->kids.push_back(std::move(cond));
            NodePtr body = mkNode(Node::K::Seq);
            convert(kidAt(v, n - 1), body.get(), fn);
            br->kids.push_back(std::move(body));
            seq->kids.push_back(std::move(br));
            return;
        }
        if (k == "ReturnStmt" || k == "CXXThrowExpr") {
            convertKids(seq, 0, n);
            seq->kids.push_back(mkNode(Node::K::Ret));
            return;
        }
        if (k == "LambdaExpr") {
            const jsonmini::Value *body = nullptr;
            for (std::size_t i = n; i > 0; --i) {
                const jsonmini::Value *kid = kidAt(v, i - 1);
                if (kid && kindOf(kid) == "CompoundStmt") {
                    body = kid;
                    break;
                }
            }
            if (!body)
                return;
            auto lam = std::make_unique<Fn>();
            lam->qual = fn->qual + "::<lambda:" +
                        std::to_string(line) + ">";
            lam->bare = lam->qual;
            lam->sanction = fn->sanction;
            lam->file = fn->file;
            lam->line = line;
            lam->lambda = true;
            Fn *raw = lam.get();
            tu.fns.push_back(std::move(lam));
            int idx = static_cast<int>(tu.fns.size()) - 1;
            raw->body = mkNode(Node::K::Seq);
            convert(body, raw->body.get(), raw);
            addAct(seq, Act::LambdaDef, raw->qual, line, idx);
            return;
        }
        if (k == "CXXMemberCallExpr") {
            const jsonmini::Value *callee = kidAt(v, 0);
            std::string method =
                callee ? findName(callee) : std::string();
            // Base and arguments still execute: walk them first.
            convertKids(seq, 0, n);
            if (!callee)
                return;
            int mline = lastLine;
            auto on = [&](const char *cls) {
                return mentionsType(callee, cls);
            };
            if (method == "write" && on("PersistDomain"))
                addAct(seq, Act::PersistWrite, method, mline);
            else if (method == "barrier" && on("PersistDomain"))
                addAct(seq, Act::Barrier, method, mline);
            else if (method == "write" && on("NvmModel"))
                addAct(seq, Act::RawNvmWrite, "nvm", mline);
            else if ((method == "insert" || method == "erase") &&
                     on("MasterTable"))
                addAct(seq, Act::MasterMut, method, mline);
            else if (method == "dropHeader")
                addAct(seq, Act::DropHeader, method, mline);
            else if (method == "hitPoint" || method == "errorPoint")
                addAct(seq, Act::FaultHook, findString(v), mline);
            else if (!method.empty())
                addAct(seq, Act::Call, method, mline);
            return;
        }
        if (k == "CallExpr" || k == "CXXOperatorCallExpr") {
            convertKids(seq, 0, n);
            const jsonmini::Value *callee = kidAt(v, 0);
            std::string name =
                callee ? findName(callee) : std::string();
            if (!name.empty())
                addAct(seq, Act::Call, name, lastLine);
            return;
        }
        if (k == "BinaryOperator" || k == "CompoundAssignOperator") {
            std::string opcode;
            if (const jsonmini::Value *op = v->get("opcode"))
                opcode = op->asString();
            convertKids(seq, 0, n);
            if (opcode == "=" && n >= 1) {
                std::string lhs = findName(kidAt(v, 0));
                if (lhs.rfind("durable", 0) == 0 && lhs.size() > 7 &&
                    lhs.back() == '_')
                    addAct(seq, Act::Publish, lhs, line);
            }
            return;
        }
        if (k == "FunctionDecl" || k == "CXXMethodDecl" ||
            k == "CXXConstructorDecl" || k == "CXXDestructorDecl" ||
            k == "CXXConversionDecl") {
            convertFunction(v);
            return;
        }
        // Default: walk children in order.
        convertKids(seq, 0, n);
    }

    void
    convertFunction(const jsonmini::Value *v)
    {
        if (const jsonmini::Value *imp = v->get("isImplicit"))
            if (imp->boolean)
                return;
        updateLoc(v);
        const jsonmini::Value *body = nullptr;
        for (std::size_t i = kidCount(v); i > 0; --i) {
            const jsonmini::Value *kid = kidAt(v, i - 1);
            if (kid && kindOf(kid) == "CompoundStmt") {
                body = kid;
                break;
            }
        }
        if (!body)
            return;
        std::string file = lastFile;
        if (!forceScope && !file.empty() &&
            file.find("nvoverlay/") == std::string::npos &&
            file.find("repl/") == std::string::npos)
            return;
        auto fn = std::make_unique<Fn>();
        if (const jsonmini::Value *nm = v->get("name"))
            fn->qual = nm->asString();
        if (fn->qual.empty())
            fn->qual = "<anonymous>";
        fn->bare = fn->qual;
        fn->sanction = fn->bare;
        fn->file = file.empty() ? tu.display : file;
        fn->line = lastLine;
        Fn *raw = fn.get();
        tu.fns.push_back(std::move(fn));
        raw->body = mkNode(Node::K::Seq);
        convert(body, raw->body.get(), raw);
    }

    /** Top-level walk: find every function with a body. */
    void
    run(const jsonmini::Value *root)
    {
        if (!root || !root->isObject())
            return;
        std::string k = kindOf(root);
        if (k == "FunctionDecl" || k == "CXXMethodDecl" ||
            k == "CXXConstructorDecl" || k == "CXXDestructorDecl" ||
            k == "CXXConversionDecl") {
            convertFunction(root);
            return;
        }
        updateLoc(root);
        const jsonmini::Value *inner = root->get("inner");
        if (inner && inner->isArray())
            for (const auto &kid : inner->arr)
                run(kid.get());
    }
};

// -------------------------------------------------------------------
// Driver: per-file analysis, suppression, corpus, self-test.
// -------------------------------------------------------------------

std::vector<Violation>
checkText(const std::string &display, const std::string &text)
{
    std::vector<Token> toks = tokenize(text);
    Tu tu{display, {}};
    Extractor ex{toks, tu};
    ex.run();
    std::vector<Violation> out;
    Analyzer az{tu, {}, nullptr, {}, nullptr, {}, false};
    az.run(out);

    AllowMarkers markers = collectMarkers(text);
    out.erase(std::remove_if(
                  out.begin(), out.end(),
                  [&markers](const Violation &v) {
                      auto it = markers.find(v.line);
                      if (it == markers.end())
                          return false;
                      return it->second.count(v.rule) != 0 ||
                             it->second.count("*") != 0;
                  }),
              out.end());
    std::sort(out.begin(), out.end(),
              [](const Violation &a, const Violation &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return out;
}

std::vector<Violation>
checkAstText(const std::string &display, const std::string &json,
             bool force_scope)
{
    Tu tu{display, {}};
    std::vector<Violation> out;
    try {
        jsonmini::ValuePtr root = jsonmini::parse(json);
        AstReader rd{tu, force_scope, "", 0};
        rd.run(root.get());
    } catch (const std::exception &e) {
        out.push_back({display, 0, "ast-parse", e.what(), ""});
        return out;
    }
    Analyzer az{tu, {}, nullptr, {}, nullptr, {}, false};
    az.run(out);
    std::sort(out.begin(), out.end(),
              [](const Violation &a, const Violation &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return out;
}

struct AllowEntry
{
    std::string rule;
    std::string pathSuffix;
    std::string function;   // optional ":func" qualifier
};

std::vector<AllowEntry>
loadAllowlist(const std::string &path, bool &ok)
{
    std::vector<AllowEntry> entries;
    std::ifstream in(path);
    ok = in.good();
    std::string line;
    while (std::getline(in, line)) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        AllowEntry e;
        std::string spec;
        if (!(ls >> e.rule >> spec))
            continue;
        std::size_t colon = spec.find(':');
        if (colon != std::string::npos) {
            e.function = spec.substr(colon + 1);
            spec = spec.substr(0, colon);
        }
        e.pathSuffix = spec;
        entries.push_back(std::move(e));
    }
    return entries;
}

bool
suffixMatches(const std::string &path, const std::string &suffix)
{
    if (suffix.size() > path.size())
        return false;
    if (path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    return path.size() == suffix.size() ||
           path[path.size() - suffix.size() - 1] == '/';
}

bool
allowlisted(const Violation &v, const std::vector<AllowEntry> &allow)
{
    for (const auto &e : allow) {
        if (e.rule != v.rule && e.rule != "*")
            continue;
        if (!suffixMatches(v.file, e.pathSuffix))
            continue;
        if (!e.function.empty() &&
            v.function.find(e.function) == std::string::npos)
            continue;
        return true;
    }
    return false;
}

/** Only src/nvoverlay/ and src/repl/ carry the persist protocol. */
bool
inScope(const std::string &path)
{
    return path.find("nvoverlay/") != std::string::npos ||
           path.find("repl/") != std::string::npos;
}

bool
checkable(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

// -------------------------------------------------------------------
// Self-test: each rule demonstrated in both directions, including
// the cross-function cases the token linter cannot see.
// -------------------------------------------------------------------

int
selfTest()
{
    struct Case
    {
        const char *name;
        const char *code;
        const char *expectRule;   // nullptr = expect clean
    };
    const Case cases[] = {
        {"fenced publish is clean",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier();\n"
         "  durableRecEpoch_ = recEpoch_; }\n",
         nullptr},
        {"unfenced publish fires",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  durableRecEpoch_ = recEpoch_; }\n",
         "persist-order"},
        {"branch-skippable barrier fires",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  if (!p.testSkipRecBarrier)\n"
         "      nvm.persist().barrier();\n"
         "  durableRecEpoch_ = recEpoch_; }\n",
         "persist-order"},
        {"barrier on both branches is clean",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  if (fast) { nvm.persist().barrier(); }\n"
         "  else { nvm.persist().barrier(); }\n"
         "  durableRecEpoch_ = recEpoch_; }\n",
         nullptr},
        {"loop carries the unfenced write to the next publish",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  while (more) {\n"
         "    durableCursor_ = c;\n"
         "    nvm.persist().write(a, 8, now, k);\n"
         "  } }\n",
         "persist-order"},
        {"terminated path does not leak into the join",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  if (bail) { nvm.persist().barrier();\n"
         "    durableCursor_ = c; return; }\n"
         "  nvm.persist().barrier();\n"
         "  durableCursor_ = c; }\n",
         nullptr},
        {"callee barrier clears the pending write",
         "void fence() { nvm.persist().barrier(); }\n"
         "void g() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  fence();\n"
         "  durableCursor_ = c; }\n",
         nullptr},
        {"callee write reaches a later publish",
         "void wr() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k); }\n"
         "void g() { NVO_FAULT_POINT(\"y\"); wr();\n"
         "  durableCursor_ = c; }\n",
         "persist-order"},
        {"publish-only callee flagged at the dirty call site",
         "void pub() { NVO_FAULT_POINT(\"p\"); durableCursor_ = c; }\n"
         "void g() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  pub(); }\n",
         "persist-order"},
        {"publish-only callee fine after a fence",
         "void pub() { NVO_FAULT_POINT(\"p\"); durableCursor_ = c; }\n"
         "void g() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier();\n"
         "  pub(); }\n",
         nullptr},
        {"persist-domain alias write without fence fires",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  PersistDomain &d = nvm.persist();\n"
         "  d.write(a, 8, now, k);\n"
         "  durableCursor_ = c; }\n",
         "persist-order"},
        {"persist-domain alias fence is seen",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  PersistDomain &d = nvm.persist();\n"
         "  d.write(a, 8, now, k);\n"
         "  d.barrier();\n"
         "  durableCursor_ = c; }\n",
         nullptr},
        {"unhooked persist write fires",
         "void f() { nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier(); }\n",
         "fault-coverage"},
        {"hook in a retry-loop condition covers the write",
         "void f() { while (NVO_FAULT_ERROR(\"dev\")) { retry(); }\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier(); }\n",
         nullptr},
        {"branch-only hook does not cover the write",
         "void f() { if (slow) NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier(); }\n",
         "fault-coverage"},
        {"hook inherited through a call",
         "void hook() { NVO_FAULT_POINT(\"x\"); }\n"
         "void f() { hook();\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier(); }\n",
         nullptr},
        {"caller-dependent coverage flagged at bare call",
         "void wr2() { nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier(); }\n"
         "void f() { wr2(); }\n",
         "fault-coverage"},
        {"caller provides the hook",
         "void wr2() { nvm.persist().write(a, 8, now, k);\n"
         "  nvm.persist().barrier(); }\n"
         "void f() { NVO_FAULT_POINT(\"x\"); wr2(); }\n",
         nullptr},
        {"raw NVM write fires",
         "void f() { nvm.write(a, 8, now, k); }\n",
         "persist-domain"},
        {"master mutation outside masterInsert fires",
         "void f() { part.master->insert(a, v, e); }\n",
         "ledger-hook"},
        {"master mutation inside masterInsert is sanctioned",
         "void masterInsert() { part.master->insert(a, v, e); }\n",
         nullptr},
        {"undo lambda inside masterInsert is sanctioned",
         "void masterInsert() {\n"
         "  domain.stage(kind, [mt, a, old]{ mt->insert(a, old); });\n"
         "  domain.stage(kind, [mt, a]{ mt->erase(a); }); }\n",
         nullptr},
        {"lambda elsewhere is not sanctioned",
         "void f() { run([&]{ master->erase(a); }); }\n",
         "ledger-hook"},
        {"dropHeader outside reclaimSubPage fires",
         "void f() { pool.dropHeader(a); }\n",
         "ledger-hook"},
        {"dropHeader inside reclaimSubPage is sanctioned",
         "void reclaimSubPage() { part.pool->dropHeader(a); }\n",
         nullptr},
        {"inline allow marker suppresses",
         "void f() { nvm.write(a, 8);"
         "   // nvo-check: allow(persist-domain)\n"
         "}\n",
         nullptr},
        {"comments and raw strings carry no actions",
         "// nvm.persist().write(a); durableCursor_ = c;\n"
         "void f() { const char *s =\n"
         "  R\"(nvm.write(x); master->insert(y);)\"; use(s); }\n",
         nullptr},
        {"switch body may be skipped",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  switch (mode) {\n"
         "  case 0: nvm.persist().barrier(); break;\n"
         "  default: nvm.persist().barrier(); break;\n"
         "  }\n"
         "  durableCursor_ = c; }\n",
         "persist-order"},
        {"do-while body is guaranteed",
         "void f() { NVO_FAULT_POINT(\"x\");\n"
         "  nvm.persist().write(a, 8, now, k);\n"
         "  do { nvm.persist().barrier(); } while (again());\n"
         "  durableCursor_ = c; }\n",
         nullptr},
    };

    int failures = 0;
    for (const Case &c : cases) {
        std::vector<Violation> got =
            checkText("nvoverlay/self_test.cc", c.code);
        bool pass;
        if (c.expectRule == nullptr) {
            pass = got.empty();
        } else {
            pass = false;
            for (const Violation &v : got)
                if (v.rule == c.expectRule)
                    pass = true;
        }
        if (!pass) {
            ++failures;
            std::fprintf(stderr, "self-test FAILED: %s\n", c.name);
            if (got.empty()) {
                std::fprintf(stderr, "  (no violations found, "
                                     "expected %s)\n",
                             c.expectRule);
            }
            for (const Violation &v : got)
                std::fprintf(stderr, "  got %s:%d: [%s] %s\n",
                             v.file.c_str(), v.line, v.rule.c_str(),
                             v.message.c_str());
        }
    }

    // The AST frontend, against hand-written dumps of the same
    // shapes (clang's JSON schema; differential line encoding).
    struct AstCase
    {
        const char *name;
        const char *json;
        const char *expectRule;
    };
    const char *ast_bad =
        "{\"kind\":\"TranslationUnitDecl\",\"inner\":[{"
        "\"kind\":\"FunctionDecl\",\"name\":\"persistRecEpoch\","
        "\"loc\":{\"file\":\"nvoverlay/omc.cc\",\"line\":3},"
        "\"inner\":[{\"kind\":\"CompoundStmt\",\"inner\":["
        "{\"kind\":\"CXXMemberCallExpr\","
        "\"range\":{\"begin\":{\"line\":4}},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"hitPoint\","
        "\"type\":{\"qualType\":\"void\"},"
        "\"inner\":[{\"kind\":\"CallExpr\","
        "\"type\":{\"qualType\":\"nvo::fault::Registry &\"}}]},"
        "{\"kind\":\"StringLiteral\",\"value\":\"\\\"omc.rec\\\"\"}]},"
        "{\"kind\":\"CXXMemberCallExpr\","
        "\"range\":{\"begin\":{\"line\":5}},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"write\","
        "\"inner\":[{\"kind\":\"CXXMemberCallExpr\","
        "\"type\":{\"qualType\":\"nvo::PersistDomain &\"},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"persist\","
        "\"inner\":[{\"kind\":\"DeclRefExpr\","
        "\"type\":{\"qualType\":\"nvo::NvmModel\"}}]}]}]}]},"
        "{\"kind\":\"BinaryOperator\",\"opcode\":\"=\","
        "\"range\":{\"begin\":{\"line\":7}},"
        "\"inner\":[{\"kind\":\"MemberExpr\","
        "\"name\":\"durableRecEpoch_\"},"
        "{\"kind\":\"MemberExpr\",\"name\":\"recEpoch_\"}]}]}]}]}";
    const char *ast_good =
        "{\"kind\":\"TranslationUnitDecl\",\"inner\":[{"
        "\"kind\":\"FunctionDecl\",\"name\":\"persistRecEpoch\","
        "\"loc\":{\"file\":\"nvoverlay/omc.cc\",\"line\":3},"
        "\"inner\":[{\"kind\":\"CompoundStmt\",\"inner\":["
        "{\"kind\":\"CXXMemberCallExpr\","
        "\"range\":{\"begin\":{\"line\":4}},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"hitPoint\","
        "\"type\":{\"qualType\":\"void\"},"
        "\"inner\":[{\"kind\":\"CallExpr\","
        "\"type\":{\"qualType\":\"nvo::fault::Registry &\"}}]},"
        "{\"kind\":\"StringLiteral\",\"value\":\"\\\"omc.rec\\\"\"}]},"
        "{\"kind\":\"CXXMemberCallExpr\","
        "\"range\":{\"begin\":{\"line\":5}},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"write\","
        "\"inner\":[{\"kind\":\"CXXMemberCallExpr\","
        "\"type\":{\"qualType\":\"nvo::PersistDomain &\"},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"persist\","
        "\"inner\":[{\"kind\":\"DeclRefExpr\","
        "\"type\":{\"qualType\":\"nvo::NvmModel\"}}]}]}]}]},"
        "{\"kind\":\"CXXMemberCallExpr\","
        "\"range\":{\"begin\":{\"line\":6}},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"barrier\","
        "\"inner\":[{\"kind\":\"CXXMemberCallExpr\","
        "\"type\":{\"qualType\":\"nvo::PersistDomain &\"},"
        "\"inner\":[{\"kind\":\"MemberExpr\",\"name\":\"persist\","
        "\"inner\":[{\"kind\":\"DeclRefExpr\","
        "\"type\":{\"qualType\":\"nvo::NvmModel\"}}]}]}]}]},"
        "{\"kind\":\"BinaryOperator\",\"opcode\":\"=\","
        "\"range\":{\"begin\":{\"line\":7}},"
        "\"inner\":[{\"kind\":\"MemberExpr\","
        "\"name\":\"durableRecEpoch_\"},"
        "{\"kind\":\"MemberExpr\",\"name\":\"recEpoch_\"}]}]}]}]}";
    const AstCase ast_cases[] = {
        {"ast frontend catches the skipped barrier", ast_bad,
         "persist-order"},
        {"ast frontend accepts the fenced publish", ast_good,
         nullptr},
    };
    for (const AstCase &c : ast_cases) {
        std::vector<Violation> got =
            checkAstText("ast-self-test", c.json, true);
        bool pass;
        if (c.expectRule == nullptr) {
            pass = got.empty();
        } else {
            pass = false;
            for (const Violation &v : got)
                if (v.rule == c.expectRule)
                    pass = true;
        }
        if (!pass) {
            ++failures;
            std::fprintf(stderr, "self-test FAILED: %s\n", c.name);
            for (const Violation &v : got)
                std::fprintf(stderr, "  got %s:%d: [%s] %s\n",
                             v.file.c_str(), v.line, v.rule.c_str(),
                             v.message.c_str());
        }
    }

    int total = static_cast<int>(std::size(cases)) +
                static_cast<int>(std::size(ast_cases));
    if (failures == 0) {
        std::printf("nvo_check self-test: %d cases passed\n", total);
        return 0;
    }
    std::fprintf(stderr, "nvo_check self-test: %d/%d cases FAILED\n",
                 failures, total);
    return 1;
}

/**
 * Corpus mode: every fixture under DIR named
 * `<rule_with_underscores>.<good|bad>[.variant].cc` (structural) or
 * `...ast.json` (AST frontend) must come out clean / flag its rule.
 */
int
runCorpus(const std::string &dir)
{
    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (entry.is_regular_file())
            files.push_back(entry.path());
    if (ec) {
        std::fprintf(stderr, "cannot read corpus dir %s\n",
                     dir.c_str());
        return 2;
    }
    std::sort(files.begin(), files.end());

    int failures = 0, ran = 0;
    for (const fs::path &p : files) {
        std::string name = p.filename().string();
        bool ast = name.size() > 9 &&
                   name.compare(name.size() - 9, 9, ".ast.json") == 0;
        bool cc = p.extension() == ".cc";
        if (!ast && !cc)
            continue;
        std::size_t dot = name.find('.');
        if (dot == std::string::npos)
            continue;
        std::string rule = name.substr(0, dot);
        std::replace(rule.begin(), rule.end(), '_', '-');
        bool expect_bad = name.find(".bad") != std::string::npos;
        bool expect_good = name.find(".good") != std::string::npos;
        if (!expect_bad && !expect_good)
            continue;

        std::ifstream in(p);
        std::stringstream ss;
        ss << in.rdbuf();
        if (!in.good() && !in.eof()) {
            std::fprintf(stderr, "cannot read %s\n",
                         p.string().c_str());
            return 2;
        }
        std::vector<Violation> got =
            ast ? checkAstText(name, ss.str(), true)
                : checkText("nvoverlay/" + name, ss.str());
        ++ran;
        bool pass;
        if (expect_good) {
            pass = got.empty();
        } else {
            pass = false;
            for (const Violation &v : got)
                if (v.rule == rule)
                    pass = true;
        }
        if (!pass) {
            ++failures;
            std::fprintf(stderr, "corpus FAILED: %s (expected %s)\n",
                         name.c_str(),
                         expect_good ? "clean" : rule.c_str());
            for (const Violation &v : got)
                std::fprintf(stderr, "  got %s:%d: [%s] %s\n",
                             v.file.c_str(), v.line, v.rule.c_str(),
                             v.message.c_str());
        }
    }
    if (ran == 0) {
        std::fprintf(stderr,
                     "corpus %s matched no fixture files\n",
                     dir.c_str());
        return 2;
    }
    if (failures == 0) {
        std::printf("nvo_check corpus: %d fixtures passed\n", ran);
        return 0;
    }
    std::fprintf(stderr, "nvo_check corpus: %d/%d fixtures FAILED\n",
                 failures, ran);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string allowlist_path;
    std::string corpus_dir;
    bool no_allowlist = false;
    bool force_scope = false;
    bool ast_mode = false;
    bool self_test = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--corpus") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--corpus needs a directory argument\n");
                return 2;
            }
            corpus_dir = argv[++i];
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--allowlist needs a file argument\n");
                return 2;
            }
            allowlist_path = argv[++i];
        } else if (arg == "--no-allowlist") {
            no_allowlist = true;
        } else if (arg == "--force-scope") {
            force_scope = true;
        } else if (arg == "--ast-json") {
            ast_mode = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(
                stderr,
                "usage: nvo_check [--allowlist FILE | --no-allowlist]"
                " [--force-scope]\n"
                "                 [--ast-json] [--self-test]"
                " [--corpus DIR] [PATH...]\n");
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (self_test)
        return selfTest();
    if (!corpus_dir.empty())
        return runCorpus(corpus_dir);
    if (paths.empty()) {
        std::fprintf(stderr, "usage: nvo_check [options] PATH...\n"
                             "       nvo_check --self-test\n");
        return 2;
    }

    std::vector<AllowEntry> allow;
    if (!no_allowlist) {
        if (allowlist_path.empty() &&
            fs::exists("tools/nvo_check_allow.txt"))
            allowlist_path = "tools/nvo_check_allow.txt";
        if (!allowlist_path.empty()) {
            bool ok = false;
            allow = loadAllowlist(allowlist_path, ok);
            if (!ok) {
                std::fprintf(stderr, "cannot read allowlist %s\n",
                             allowlist_path.c_str());
                return 2;
            }
        }
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(p, ec))
                if (entry.is_regular_file() &&
                    checkable(entry.path()))
                    files.push_back(entry.path());
        } else {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());

    int checked = 0;
    bool bad = false;
    for (const fs::path &file : files) {
        std::string display = file.generic_string();
        if (!ast_mode && !force_scope && !inScope(display))
            continue;
        std::ifstream in(file);
        std::stringstream ss;
        ss << in.rdbuf();
        if (!in.good() && !in.eof()) {
            std::fprintf(stderr, "cannot read %s\n", display.c_str());
            return 2;
        }
        std::vector<Violation> vs =
            ast_mode ? checkAstText(display, ss.str(), force_scope)
                     : checkText(display, ss.str());
        ++checked;
        for (const Violation &v : vs) {
            if (v.rule == "ast-parse") {
                std::fprintf(stderr, "%s: AST parse error: %s\n",
                             v.file.c_str(), v.message.c_str());
                return 2;
            }
            if (allowlisted(v, allow))
                continue;
            bad = true;
            std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                        v.rule.c_str(), v.message.c_str());
        }
    }
    if (!bad)
        std::printf("nvo_check: %d file(s) clean\n", checked);
    return bad ? 1 : 0;
}
