# Script-mode driver for the check.ast_live ctest: only registered
# when a clang is on PATH (find_program in tools/CMakeLists.txt).
# Dumps the real clang AST of the seeded-bug fixture and requires
# nvo_check's --ast-json frontend to flag the persist-order violation,
# proving the hand-written .ast.json corpus stays aligned with what
# clang actually emits.
#
# Inputs: -DNVO_CLANG=<clang> -DNVO_CHECK=<nvo_check> -DSRC_DIR=<repo>

foreach(var NVO_CLANG NVO_CHECK SRC_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "check_ast_live.cmake: -D${var}=... is required")
    endif()
endforeach()

set(fixture "${SRC_DIR}/tests/check_corpus/ast_live_fixture.cc")
set(dump "ast_live_fixture.ast.json")

execute_process(
    COMMAND "${NVO_CLANG}" -x c++ -std=c++17 -fsyntax-only
            -Xclang -ast-dump=json "${fixture}"
    OUTPUT_VARIABLE ast_json
    ERROR_VARIABLE clang_err
    RESULT_VARIABLE clang_rc)
if(NOT clang_rc EQUAL 0)
    message(FATAL_ERROR
        "clang could not dump ${fixture} (rc=${clang_rc}):\n${clang_err}")
endif()
file(WRITE "${dump}" "${ast_json}")

execute_process(
    COMMAND "${NVO_CHECK}" --no-allowlist --force-scope --ast-json "${dump}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "expected nvo_check to exit 1 on the unfenced fixture, got "
        "rc=${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "persist-order")
    message(FATAL_ERROR
        "expected a persist-order violation from the live clang AST, "
        "got:\n${out}")
endif()
message(STATUS
    "check.ast_live: clang AST frontend flagged the unfenced publish")
