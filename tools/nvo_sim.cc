/**
 * @file
 * nvo_sim — command-line driver for the simulator.
 *
 * Run any scheme/workload combination with arbitrary configuration
 * overrides and get the full statistics dump, optionally with a
 * crash-recovery verification pass:
 *
 *   nvo_sim scheme=nvoverlay workload=btree wl.ops=20000
 *   nvo_sim scheme=picl workload=kmeans epoch.stores_global=500000
 *   nvo_sim scheme=nvoverlay workload=vacation crash_at=2000000 verify=1
 *   nvo_sim scheme=nvoverlay workload=btree trace_out=trace.json \
 *           stats_json=stats.json
 *   nvo_sim list
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"
#include "obs/stats_json.hh"
#include "obs/trace.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

using namespace nvo;

namespace
{

void
usage()
{
    std::printf(
        "usage: nvo_sim [key=value ...]\n"
        "  scheme=<none|nvoverlay|swlog|swshadow|hwshadow|picl|"
        "picl-l2>\n"
        "  workload=<%s|...>\n"
        "  crash_at=<cycle>   stop without finalize at this cycle\n"
        "  record=<path>      capture the workload's trace and exit\n"
        "  verify=1           track writes; after a crash, recover "
        "and check the image\n"
        "  trace_out=<path>   write the event trace as Chrome "
        "trace-event JSON\n"
        "                     (implies trace.enabled=1; open in "
        "chrome://tracing or Perfetto)\n"
        "  stats_csv=<path>   write the per-epoch metric series as "
        "CSV\n"
        "  stats_json=<path>  write config + stats + per-epoch "
        "series as JSON\n"
        "  list               print workloads and exit\n"
        "  any other key=value becomes a Config override "
        "(see README)\n",
        paperWorkloads().front().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scheme = "nvoverlay";
    std::string workload = "btree";
    std::string record_path;
    std::string trace_path;
    std::string stats_csv_path;
    std::string stats_json_path;
    Cycle crash_at = 0;
    bool verify = false;

    Config cfg = defaultConfig();
    applyOverrides(cfg);

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "list") {
            for (const auto &w : paperWorkloads())
                std::printf("%s\n", w.c_str());
            return 0;
        }
        if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        }
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            usage();
            return 2;
        }
        std::string key = arg.substr(0, eq);
        std::string val = arg.substr(eq + 1);
        if (key == "scheme")
            scheme = val;
        else if (key == "workload")
            workload = val;
        else if (key == "crash_at")
            crash_at = std::strtoull(val.c_str(), nullptr, 0);
        else if (key == "verify")
            verify = val == "1" || val == "true";
        else if (key == "record")
            record_path = val;
        else if (key == "trace_out")
            trace_path = val;
        else if (key == "stats_csv")
            stats_csv_path = val;
        else if (key == "stats_json")
            stats_json_path = val;
        else
            cfg.set(key, val);
    }
    if (verify)
        cfg.set("sim.track_writes", "true");
    if (!trace_path.empty() && !cfg.has("trace.enabled"))
        cfg.set("trace.enabled", "true");

    if (!record_path.empty()) {
        cfg.set("wl.threads", cfg.getU64("sys.cores", 16));
        auto wl = makeWorkload(workload, cfg);
        std::uint64_t n = captureTrace(*wl, record_path);
        std::printf("recorded %llu references from %s to %s\n",
                    static_cast<unsigned long long>(n),
                    workload.c_str(), record_path.c_str());
        return 0;
    }

    auto host_t0 = std::chrono::steady_clock::now();
    System sys(cfg, scheme, workload);
    bool completed = true;
    if (crash_at > 0)
        completed = sys.runUntil(crash_at);
    else
        sys.run();
    double host_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - host_t0)
            .count();

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace_out file '%s'",
                  trace_path.c_str());
        obs::tracer().exportChrome(out);
        std::printf("trace: %llu events (%llu dropped) -> %s\n",
                    static_cast<unsigned long long>(
                        obs::tracer().size()),
                    static_cast<unsigned long long>(
                        obs::tracer().dropped()),
                    trace_path.c_str());
    }
    if (!stats_csv_path.empty()) {
        std::ofstream out(stats_csv_path);
        if (!out)
            fatal("cannot open stats_csv file '%s'",
                  stats_csv_path.c_str());
        sys.epochSeries().writeCsv(out);
    }
    if (!stats_json_path.empty()) {
        std::ofstream out(stats_json_path);
        if (!out)
            fatal("cannot open stats_json file '%s'",
                  stats_json_path.c_str());
        obs::writeStatsJson(out, scheme, workload, sys.config(),
                            sys.stats(), &sys.epochSeries(),
                            host_seconds);
        std::printf("stats json -> %s\n", stats_json_path.c_str());
    }

    sys.stats().print(std::cout,
                      scheme + " / " + workload +
                          (completed ? "" : " (crashed)"));
    std::printf("evict-reason totals and NVM series recorded; "
                "instructions/cycle = %.3f\n",
                sys.stats().cycles
                    ? static_cast<double>(sys.stats().instructions) /
                          sys.stats().cycles
                    : 0.0);

    if (auto *nvo_scheme =
            dynamic_cast<NVOverlayScheme *>(&sys.scheme())) {
        if (crash_at > 0)
            nvo_scheme->crashFlush(sys.now());
        nvo_scheme->backend().updateStats();
        std::printf(
            "nvoverlay: rec-epoch=%llu master-lines=%llu "
            "master-bytes=%llu pool-pages=%llu\n",
            static_cast<unsigned long long>(
                nvo_scheme->backend().recEpoch()),
            static_cast<unsigned long long>(
                sys.stats().masterMappedLines),
            static_cast<unsigned long long>(
                sys.stats().masterTableBytes),
            static_cast<unsigned long long>(
                sys.stats().poolPagesInUse));

        if (verify) {
            RecoveryManager rm(nvo_scheme->backend());
            auto result = rm.recover();
            unsigned mismatches = 0, checked = 0;
            for (Addr line : sys.tracker()->trackedLines()) {
                auto expect = sys.tracker()->expectedDigest(
                    line, result.recEpoch);
                if (!expect)
                    continue;
                LineData got;
                result.image->readLine(line, got);
                ++checked;
                if (got.digest() != *expect)
                    ++mismatches;
            }
            std::printf("recovery check: %u lines, %u mismatches "
                        "-> %s\n",
                        checked, mismatches,
                        mismatches == 0 ? "CONSISTENT"
                                        : "INCONSISTENT");
            return mismatches == 0 ? 0 : 1;
        }
    }
    return 0;
}
