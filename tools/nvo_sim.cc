/**
 * @file
 * nvo_sim — command-line driver for the simulator.
 *
 * Run any scheme/workload combination with arbitrary configuration
 * overrides and get the full statistics dump, optionally with a
 * crash-recovery verification pass:
 *
 *   nvo_sim scheme=nvoverlay workload=btree wl.ops=20000
 *   nvo_sim scheme=picl workload=kmeans epoch.stores_global=500000
 *   nvo_sim scheme=nvoverlay workload=vacation crash_at=2000000 verify=1
 *   nvo_sim scheme=nvoverlay workload=btree trace_out=trace.json \
 *           stats_json=stats.json
 *   nvo_sim crash_campaign=50 campaign.workloads=btree,kmeans rng.seed=7
 *   nvo_sim workload=btree crash_point=omc.merge.version crash_hit=3
 *   nvo_sim list
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "fault/crash_sim.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"
#include "obs/stats_json.hh"
#include "obs/trace.hh"
#include "par/engine.hh"
#include "policy/engine.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

using namespace nvo;

namespace
{

void
usage()
{
    std::printf(
        "usage: nvo_sim [key=value ...]\n"
        "  scheme=<none|nvoverlay|swlog|swshadow|hwshadow|picl|"
        "picl-l2>\n"
        "  workload=<%s|...>\n"
        "  crash_at=<cycle>   stop without finalize at this cycle\n"
        "  crash_campaign=<n> run n seeded crash-recovery trials\n"
        "                     (campaign.workloads=a,b to sweep "
        "several\n"
        "                     workloads; rng.seed=<s> for the plan "
        "stream;\n"
        "                     exits 1 on any recovery mismatch)\n"
        "  jobs=<n>           fan campaign trials across n worker\n"
        "                     processes (plans are pre-drawn, so "
        "results\n"
        "                     are identical for any job count)\n"
        "  par.shards=<n>     run the simulation on the shared-"
        "nothing\n"
        "                     shard engine (n shards; bit-identical "
        "stats;\n"
        "                     par.threads/par.ring/par.pregen tune "
        "it)\n"
        "  crash_point=<p>    single crash-recovery trial at the\n"
        "  crash_hit=<n>      n-th hit of fault point p (needs a\n"
        "                     build with NVO_FAULT=ON)\n"
        "  crash_cycle=<c>    single power-cut trial at cycle c\n"
        "  record=<path>      capture the workload's trace and exit\n"
        "  verify=1           track writes; after a crash, recover "
        "and check the image\n"
        "  trace_out=<path>   write the event trace as Chrome "
        "trace-event JSON\n"
        "                     (implies trace.enabled=1; open in "
        "chrome://tracing or Perfetto;\n"
        "                     in crash modes, flushed on the crash "
        "path — a failing\n"
        "                     campaign ships the minimized repro's "
        "trace)\n"
        "  stats_csv=<path>   write the per-epoch metric series as "
        "CSV\n"
        "  stats_json=<path>  write config + stats + per-epoch "
        "series as JSON\n"
        "  list               print workloads and exit\n"
        "  any other key=value becomes a Config override "
        "(see README)\n",
        paperWorkloads().front().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scheme = "nvoverlay";
    std::string workload = "btree";
    std::string record_path;
    std::string trace_path;
    std::string stats_csv_path;
    std::string stats_json_path;
    Cycle crash_at = 0;
    bool verify = false;
    unsigned campaign_trials = 0;
    std::string campaign_workloads;
    std::string crash_point;
    std::uint64_t crash_hit = 1;
    Cycle crash_cycle = 0;
    unsigned jobs = 1;

    Config cfg = defaultConfig();
    applyOverrides(cfg);

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "list") {
            for (const auto &w : paperWorkloads())
                std::printf("%s\n", w.c_str());
            return 0;
        }
        if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        }
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            usage();
            return 2;
        }
        std::string key = arg.substr(0, eq);
        std::string val = arg.substr(eq + 1);
        if (key == "scheme")
            scheme = val;
        else if (key == "workload")
            workload = val;
        else if (key == "crash_at")
            crash_at = std::strtoull(val.c_str(), nullptr, 0);
        else if (key == "crash_campaign")
            campaign_trials = static_cast<unsigned>(
                std::strtoull(val.c_str(), nullptr, 0));
        else if (key == "campaign.workloads")
            campaign_workloads = val;
        else if (key == "crash_point")
            crash_point = val;
        else if (key == "crash_hit")
            crash_hit = std::strtoull(val.c_str(), nullptr, 0);
        else if (key == "crash_cycle")
            crash_cycle = std::strtoull(val.c_str(), nullptr, 0);
        else if (key == "jobs")
            jobs = static_cast<unsigned>(
                std::strtoull(val.c_str(), nullptr, 0));
        else if (key == "verify")
            verify = val == "1" || val == "true";
        else if (key == "record")
            record_path = val;
        else if (key == "trace_out")
            trace_path = val;
        else if (key == "stats_csv")
            stats_csv_path = val;
        else if (key == "stats_json")
            stats_json_path = val;
        else
            cfg.set(key, val);
    }
    if (verify)
        cfg.set("sim.track_writes", "true");
    if (!trace_path.empty() && !cfg.has("trace.enabled"))
        cfg.set("trace.enabled", "true");

    if (!record_path.empty()) {
        cfg.set("wl.threads", cfg.getU64("sys.cores", 16));
        auto wl = makeWorkload(workload, cfg);
        std::uint64_t n = captureTrace(*wl, record_path);
        std::printf("recorded %llu references from %s to %s\n",
                    static_cast<unsigned long long>(n),
                    workload.c_str(), record_path.c_str());
        return 0;
    }

    // In crash modes the System lives inside CrashSimulator, so
    // trace_out becomes the crash-path flush target instead of the
    // end-of-run export below.
    if (!trace_path.empty() &&
        (campaign_trials > 0 || !crash_point.empty() ||
         crash_cycle > 0))
        cfg.set("trace.crash_out", trace_path);

    if (campaign_trials > 0) {
        fault::CampaignParams params;
        params.scheme = scheme;
        params.trials = campaign_trials;
        params.seed = cfg.getU64("rng.seed", 1);
        params.jobs = jobs;
        if (campaign_workloads.empty()) {
            params.workloads.push_back(workload);
        } else {
            std::string rest = campaign_workloads;
            while (!rest.empty()) {
                auto comma = rest.find(',');
                params.workloads.push_back(rest.substr(0, comma));
                rest = comma == std::string::npos
                           ? std::string()
                           : rest.substr(comma + 1);
            }
        }
        fault::CampaignResult res = runCrashCampaign(cfg, params);
        std::printf("crash campaign: %u trials (%u crashed), %llu "
                    "lines checked, %llu in-flight skips, %u "
                    "failures -> %s\n",
                    res.trials, res.crashes,
                    static_cast<unsigned long long>(res.linesChecked),
                    static_cast<unsigned long long>(
                        res.inflightSkips),
                    res.failures, res.passed() ? "PASS" : "FAIL");
        if (!res.passed())
            std::printf("first failing plan (minimized): %s\n",
                        res.failingRepro.c_str());
        return res.passed() ? 0 : 1;
    }

    if (!crash_point.empty() || crash_cycle > 0) {
        fault::CrashPlan plan;
        plan.point = crash_point;
        plan.hit = crash_hit;
        plan.cycle = crash_cycle;
        fault::CrashSimulator sim(cfg, scheme, workload);
        fault::CrashReport rep = sim.run(plan);
        std::printf("crash trial: %s at %s:%llu, rec-epoch=%llu, "
                    "%llu lines checked, %llu mismatches, %llu "
                    "in-flight skips%s%s -> %s\n",
                    rep.crashed ? "crashed" : "completed",
                    rep.firedPoint.empty() ? "-"
                                           : rep.firedPoint.c_str(),
                    static_cast<unsigned long long>(rep.firedHit),
                    static_cast<unsigned long long>(rep.recEpoch),
                    static_cast<unsigned long long>(rep.linesChecked),
                    static_cast<unsigned long long>(rep.mismatches),
                    static_cast<unsigned long long>(
                        rep.inflightSkips),
                    rep.error.empty() ? "" : ", recovery error: ",
                    rep.error.c_str(),
                    rep.consistent() ? "CONSISTENT" : "INCONSISTENT");
        return rep.consistent() ? 0 : 1;
    }

    auto host_t0 = std::chrono::steady_clock::now();
    System sys(cfg, scheme, workload);
    bool completed = true;
    if (crash_at > 0)
        completed = sys.runUntil(crash_at);
    else
        sys.run();
    double host_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - host_t0)
            .count();

    // Strict-config check: a key that was explicitly set but never
    // consumed by any getter is a typo or belongs to a different
    // scheme — warn, or fail under cfg.strict=1. Read the flag from
    // the System's config copy, the one that saw every access.
    bool cfg_strict = sys.config().getBool("cfg.strict", false);
    auto unread = sys.config().unreadKeys();
    if (!unread.empty()) {
        for (const auto &key : unread)
            std::fprintf(stderr,
                         "%s: config key '%s' was set but never "
                         "read\n",
                         cfg_strict ? "error" : "warning",
                         key.c_str());
        if (cfg_strict)
            return 1;
    }

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out)
            fatal("cannot open trace_out file '%s'",
                  trace_path.c_str());
        obs::tracer().exportChrome(out);
        std::printf("trace: %llu events (%llu dropped) -> %s\n",
                    static_cast<unsigned long long>(
                        obs::tracer().size()),
                    static_cast<unsigned long long>(
                        obs::tracer().dropped()),
                    trace_path.c_str());
    }
    if (!stats_csv_path.empty()) {
        std::ofstream out(stats_csv_path);
        if (!out)
            fatal("cannot open stats_csv file '%s'",
                  stats_csv_path.c_str());
        sys.epochSeries().writeCsv(out);
    }
    if (!stats_json_path.empty()) {
        std::ofstream out(stats_json_path);
        if (!out)
            fatal("cannot open stats_json file '%s'",
                  stats_json_path.c_str());
        std::function<void(obs::JsonWriter &)> policy_section;
        if (const policy::PolicyEngine *pe = sys.policyEngine())
            policy_section = [pe](obs::JsonWriter &w) {
                pe->writeJson(w);
            };
        obs::writeStatsJson(out, scheme, workload, sys.config(),
                            sys.stats(), &sys.epochSeries(),
                            host_seconds, policy_section);
        std::printf("stats json -> %s\n", stats_json_path.c_str());
    }

    if (par::ShardEngine *eng = sys.parEngine()) {
        // Engine metrics live outside RunStats so the stats dump and
        // JSON stay bit-identical to the sequential engine; report
        // them separately here. stop() joins the workers first.
        eng->stop();
        const par::EngineReport &rep = eng->report();
        std::printf("par: %u shards / %u workers, %llu quanta, "
                    "%llu token hops, pregen %s (%llu batches)\n",
                    rep.shards, rep.threads,
                    static_cast<unsigned long long>(rep.quanta),
                    static_cast<unsigned long long>(rep.tokens),
                    rep.pregen ? "on" : "off",
                    static_cast<unsigned long long>(
                        rep.totalPregen()));
        for (std::size_t s = 0; s < rep.shard.size(); ++s) {
            const par::ShardMetrics &m = rep.shard[s];
            std::printf("par: shard %zu: quanta=%llu cores_run=%llu "
                        "x_sent=%llu x_recv=%llu x_local=%llu "
                        "x_dropped=%llu ring_hw=%llu "
                        "pregen=%llu\n",
                        s,
                        static_cast<unsigned long long>(m.quanta),
                        static_cast<unsigned long long>(m.coresRun),
                        static_cast<unsigned long long>(m.xSent),
                        static_cast<unsigned long long>(m.xReceived),
                        static_cast<unsigned long long>(m.xLocal),
                        static_cast<unsigned long long>(m.xDropped),
                        static_cast<unsigned long long>(
                            m.xRingHighWater),
                        static_cast<unsigned long long>(
                            m.pregenBatches));
        }
    }

    sys.stats().print(std::cout,
                      scheme + " / " + workload +
                          (completed ? "" : " (crashed)"));
    std::printf("evict-reason totals and NVM series recorded; "
                "instructions/cycle = %.3f\n",
                sys.stats().cycles
                    ? static_cast<double>(sys.stats().instructions) /
                          sys.stats().cycles
                    : 0.0);

    if (auto *nvo_scheme =
            dynamic_cast<NVOverlayScheme *>(&sys.scheme())) {
        if (crash_at > 0)
            nvo_scheme->crashFlush(sys.now());
        nvo_scheme->backend().updateStats();
        std::printf(
            "nvoverlay: rec-epoch=%llu master-lines=%llu "
            "master-bytes=%llu pool-pages=%llu\n",
            static_cast<unsigned long long>(
                nvo_scheme->backend().recEpoch()),
            static_cast<unsigned long long>(
                sys.stats().masterMappedLines),
            static_cast<unsigned long long>(
                sys.stats().masterTableBytes),
            static_cast<unsigned long long>(
                sys.stats().poolPagesInUse));

        if (verify) {
            RecoveryManager rm(nvo_scheme->backend());
            auto result = rm.recover();
            unsigned mismatches = 0, checked = 0;
            for (Addr line : sys.tracker()->trackedLines()) {
                auto expect = sys.tracker()->expectedDigest(
                    line, result.recEpoch);
                if (!expect)
                    continue;
                LineData got;
                result.image->readLine(line, got);
                ++checked;
                if (got.digest() != *expect)
                    ++mismatches;
            }
            std::printf("recovery check: %u lines, %u mismatches "
                        "-> %s\n",
                        checked, mismatches,
                        mismatches == 0 ? "CONSISTENT"
                                        : "INCONSISTENT");
            return mismatches == 0 ? 0 : 1;
        }
    }
    return 0;
}
