/**
 * @file
 * Noise-aware comparator for two `nvo-bench-v1` result files — the
 * CI perf-regression gate.
 *
 * Rows are keyed (workload, scheme, metric) and compared
 * baseline → current. All bench metrics in this repo are
 * lower-is-better (cycles, NVM bytes, table bytes), so a current
 * value more than the threshold *above* the baseline is a
 * regression; more than the threshold below is reported as an
 * improvement (informational — refresh the committed baseline to
 * bank it). A row present in the baseline but missing from the
 * current run also fails: silently dropping a measured cell is how
 * perf gates rot.
 *
 * The simulator is deterministic for a fixed seed and fixed wl.ops,
 * so the committed baselines are exact simulated metrics, not
 * wall-clock samples; the threshold exists to absorb intentional
 * protocol changes that move counts a little, not host noise.
 *
 * Usage: nvo_bench_diff [--threshold PCT] baseline.json current.json
 * Exit:  0 no regression, 1 regression/missing rows, 2 bad input.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "json_mini.hh"

namespace
{

using jsonmini::Value;
using Key = std::tuple<std::string, std::string, std::string>;

std::map<Key, double>
loadRows(const std::string &path, std::string &bench_name)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "nvo_bench_diff: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    jsonmini::ValuePtr root;
    try {
        root = jsonmini::parse(ss.str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nvo_bench_diff: %s: %s\n", path.c_str(),
                     e.what());
        std::exit(2);
    }
    const Value *fmt = root->get("format");
    if (!fmt || fmt->asString() != "nvo-bench-v1") {
        std::fprintf(stderr,
                     "nvo_bench_diff: '%s' is not an nvo-bench-v1 "
                     "file\n",
                     path.c_str());
        std::exit(2);
    }
    if (root->get("bench"))
        bench_name = root->get("bench")->asString();
    std::map<Key, double> rows;
    const Value *results = root->get("results");
    if (results) {
        for (const auto &r : results->arr)
            rows[{r->get("workload")->asString(),
                  r->get("scheme")->asString(),
                  r->get("metric")->asString()}] =
                r->get("value")->asDouble();
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold = 5.0;
    std::string base_path, cur_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 &&
            i + 1 < argc) {
            threshold = std::strtod(argv[++i], nullptr);
        } else if (base_path.empty()) {
            base_path = argv[i];
        } else if (cur_path.empty()) {
            cur_path = argv[i];
        } else {
            base_path.clear();
            break;
        }
    }
    if (base_path.empty() || cur_path.empty()) {
        std::fprintf(stderr,
                     "usage: nvo_bench_diff [--threshold PCT] "
                     "baseline.json current.json\n");
        return 2;
    }

    std::string base_bench = "?", cur_bench = "?";
    auto base = loadRows(base_path, base_bench);
    auto cur = loadRows(cur_path, cur_bench);
    if (base_bench != cur_bench)
        std::printf("note: comparing bench '%s' against '%s'\n",
                    base_bench.c_str(), cur_bench.c_str());

    int regressions = 0, improvements = 0, missing = 0, fresh = 0;
    for (const auto &kv : base) {
        const auto &[workload, scheme, metric] = kv.first;
        auto it = cur.find(kv.first);
        if (it == cur.end()) {
            std::printf("MISSING    %s/%s/%s (baseline %.6g)\n",
                        workload.c_str(), scheme.c_str(),
                        metric.c_str(), kv.second);
            ++missing;
            continue;
        }
        double b = kv.second, c = it->second;
        double delta =
            b != 0.0 ? 100.0 * (c - b) / std::fabs(b)
                     : (c == 0.0 ? 0.0 : 100.0);
        const char *tag = "ok        ";
        if (delta > threshold) {
            tag = "REGRESSION";
            ++regressions;
        } else if (delta < -threshold) {
            tag = "improved  ";
            ++improvements;
        }
        std::printf("%s %s/%s/%s: %.6g -> %.6g (%+.2f%%)\n", tag,
                    workload.c_str(), scheme.c_str(), metric.c_str(),
                    b, c, delta);
    }
    for (const auto &kv : cur)
        if (!base.count(kv.first))
            ++fresh;
    if (fresh)
        std::printf("note: %d row(s) in current have no baseline "
                    "yet\n",
                    fresh);

    std::printf("summary: %zu compared, %d regression(s), %d "
                "improvement(s), %d missing (threshold %.1f%%)\n",
                base.size(), regressions, improvements, missing,
                threshold);
    return (regressions > 0 || missing > 0) ? 1 : 0;
}
