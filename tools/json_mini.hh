/**
 * @file
 * Minimal recursive-descent JSON reader for the offline tools.
 *
 * Parses the subset the simulator emits (`nvo-stats-v1`,
 * `nvo-bench-v1`, Chrome trace-event JSON): objects, arrays, strings
 * with the standard escapes, numbers, booleans, null. No streaming,
 * no error recovery — tools read whole files produced by our own
 * writers, so a parse failure is a fatal input error, reported with
 * the byte offset. Header-only so the tools stay standalone (no link
 * against libnvoverlay).
 */

#ifndef NVO_TOOLS_JSON_MINI_HH
#define NVO_TOOLS_JSON_MINI_HH

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsonmini
{

class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    bool numberIsInt = false;
    std::int64_t integer = 0;
    std::string str;
    std::vector<ValuePtr> arr;
    // Insertion order does not matter for any consumer; a sorted map
    // keeps lookups simple.
    std::map<std::string, ValuePtr> obj;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** Object member or nullptr. */
    const Value *
    get(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        auto it = obj.find(key);
        return it == obj.end() ? nullptr : it->second.get();
    }

    /** Nested lookup: get("a", "b") == get("a")->get("b"). */
    template <typename... Rest>
    const Value *
    get(const std::string &key, const Rest &...rest) const
    {
        const Value *v = get(key);
        return v ? v->get(rest...) : nullptr;
    }

    double
    asDouble(double fallback = 0.0) const
    {
        return type == Type::Number ? number : fallback;
    }

    std::int64_t
    asInt(std::int64_t fallback = 0) const
    {
        if (type != Type::Number)
            return fallback;
        return numberIsInt ? integer
                           : static_cast<std::int64_t>(number);
    }

    std::uint64_t
    asU64(std::uint64_t fallback = 0) const
    {
        return static_cast<std::uint64_t>(
            asInt(static_cast<std::int64_t>(fallback)));
    }

    const std::string &
    asString(const std::string &fallback = std::string()) const
    {
        return type == Type::String ? str : fallback;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos != s.size())
            fail("trailing garbage after the JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at byte " +
                                 std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + s[pos] +
                 "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n])
            ++n;
        if (s.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    ValuePtr
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    ValuePtr
    parseObject()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            ValuePtr key = parseString();
            expect(':');
            v->obj[key->str] = parseValue();
            char c = peek();
            ++pos;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    ValuePtr
    parseArray()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v->arr.push_back(parseValue());
            char c = peek();
            ++pos;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::String;
        expect('"');
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v->str += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': v->str += '"'; break;
              case '\\': v->str += '\\'; break;
              case '/': v->str += '/'; break;
              case 'b': v->str += '\b'; break;
              case 'f': v->str += '\f'; break;
              case 'n': v->str += '\n'; break;
              case 'r': v->str += '\r'; break;
              case 't': v->str += '\t'; break;
              case 'u': {
                  if (pos + 4 > s.size())
                      fail("truncated \\u escape");
                  unsigned cp = static_cast<unsigned>(
                      std::strtoul(s.substr(pos, 4).c_str(), nullptr,
                                   16));
                  pos += 4;
                  // Our writers only escape control characters; emit
                  // the code point as UTF-8 without surrogate pairs.
                  if (cp < 0x80) {
                      v->str += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      v->str += static_cast<char>(0xc0 | (cp >> 6));
                      v->str +=
                          static_cast<char>(0x80 | (cp & 0x3f));
                  } else {
                      v->str += static_cast<char>(0xe0 | (cp >> 12));
                      v->str += static_cast<char>(
                          0x80 | ((cp >> 6) & 0x3f));
                      v->str +=
                          static_cast<char>(0x80 | (cp & 0x3f));
                  }
                  break;
              }
              default: fail("unknown escape character");
            }
        }
    }

    ValuePtr
    parseBool()
    {
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Bool;
        skipWs();
        if (consumeLiteral("true"))
            v->boolean = true;
        else if (consumeLiteral("false"))
            v->boolean = false;
        else
            fail("expected 'true' or 'false'");
        return v;
    }

    ValuePtr
    parseNull()
    {
        skipWs();
        if (!consumeLiteral("null"))
            fail("expected 'null'");
        return std::make_shared<Value>();
    }

    ValuePtr
    parseNumber()
    {
        skipWs();
        std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        bool is_int = true;
        while (pos < s.size()) {
            char c = s[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                if (c == '.' || c == 'e' || c == 'E')
                    is_int = false;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start)
            fail("expected a number");
        auto v = std::make_shared<Value>();
        v->type = Value::Type::Number;
        std::string tok = s.substr(start, pos - start);
        v->number = std::strtod(tok.c_str(), nullptr);
        if (is_int) {
            v->numberIsInt = true;
            v->integer = static_cast<std::int64_t>(
                std::strtoll(tok.c_str(), nullptr, 10));
        }
        return v;
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** Parse a whole document; throws std::runtime_error on bad input. */
inline ValuePtr
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace jsonmini

#endif // NVO_TOOLS_JSON_MINI_HH
