/**
 * @file
 * nvo_top: terminal live monitor for a running (or finished)
 * simulation's metric stream.
 *
 * Tails the append-only JSONL file the metric exporter writes
 * (`metrics.jsonl_out`, one `nvo-metrics-v1` snapshot per line; see
 * docs/OBSERVABILITY.md) and renders the newest snapshot as a compact
 * dashboard: counters with rates derived from the previous snapshot,
 * polled gauges, and histogram percentile rows. Standalone like the
 * other offline tools — json_mini.hh only, no simulator library.
 *
 * Usage:
 *   nvo_top [--interval-ms N] [--once] <metrics.jsonl>
 *
 * --once renders the newest snapshot and exits (CI smoke mode);
 * otherwise the screen refreshes every N ms (default 1000) until
 * interrupted. Exit codes: 0 rendered, 1 no valid snapshot found
 * (in --once mode), 2 usage/IO error.
 */

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_mini.hh"

namespace
{

using jsonmini::Value;
using jsonmini::ValuePtr;

struct Snapshot
{
    ValuePtr root;
    std::uint64_t epoch = 0;
    std::uint64_t cycle = 0;
};

/** Parse one JSONL line into a snapshot; nullopt-style via root. */
Snapshot
parseLine(const std::string &line)
{
    Snapshot s;
    ValuePtr v;
    try {
        v = jsonmini::parse(line);
    } catch (const std::exception &) {
        return s;
    }
    const Value *fmt = v->get("format");
    if (!fmt || fmt->asString() != "nvo-metrics-v1")
        return s;
    s.root = v;
    if (const Value *e = v->get("epoch"))
        s.epoch = e->asU64();
    if (const Value *c = v->get("cycle"))
        s.cycle = c->asU64();
    return s;
}

/**
 * Read the newest (and second-newest, for rates) valid snapshot.
 * A fresh read each refresh keeps the tool robust against the
 * exporter appending mid-read: a torn last line simply fails to
 * parse and the previous line is used.
 */
bool
readTail(const std::string &path, Snapshot &latest, Snapshot &prev)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    Snapshot a, b;   // b = newest, a = one before
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Snapshot s = parseLine(line);
        if (!s.root)
            continue;
        a = b;
        b = s;
    }
    latest = b;
    prev = a;
    return static_cast<bool>(latest.root);
}

void
renderCounters(const Snapshot &s, const Snapshot &prev)
{
    const Value *cs = s.root->get("counters");
    if (!cs || cs->obj.empty())
        return;
    const Value *ps = prev.root ? prev.root->get("counters") : nullptr;
    double dcyc = (prev.root && s.cycle > prev.cycle)
                      ? static_cast<double>(s.cycle - prev.cycle)
                      : 0.0;
    std::printf("  %-36s %14s %14s\n", "counter", "total",
                "per-kcycle");
    for (const auto &kv : cs->obj) {
        std::uint64_t cur = kv.second->asU64();
        std::string rate = "-";
        if (dcyc > 0.0) {
            const Value *p = ps ? ps->get(kv.first) : nullptr;
            std::uint64_t old = p ? p->asU64() : 0;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.2f",
                          static_cast<double>(cur - old) * 1000.0 /
                              dcyc);
            rate = buf;
        }
        std::printf("  %-36s %14llu %14s\n", kv.first.c_str(),
                    static_cast<unsigned long long>(cur),
                    rate.c_str());
    }
    std::printf("\n");
}

/**
 * Policy panel: the engine publishes one gauge triple per active
 * controller — `policy.<ctrl>.setpoint/.measured/.output`
 * (docs/POLICY.md) — rendered here as one row per controller so the
 * loop's tracking error is visible at a glance. Gauges under the
 * `policy.` prefix are claimed by this panel and skipped by the
 * generic gauge table. No-op when the run has no policy gauges.
 */
void
renderPolicy(const Snapshot &s)
{
    const Value *gs = s.root->get("gauges");
    if (!gs)
        return;
    // controller -> (setpoint, measured, output); map keeps the
    // panel ordering stable across refreshes.
    std::map<std::string, std::array<std::uint64_t, 3>> ctrls;
    for (const auto &kv : gs->obj) {
        if (kv.first.rfind("policy.", 0) != 0)
            continue;
        std::string rest = kv.first.substr(7);
        std::size_t dot = rest.rfind('.');
        if (dot == std::string::npos)
            continue;
        std::string leaf = rest.substr(dot + 1);
        int slot = leaf == "setpoint" ? 0
                   : leaf == "measured" ? 1
                   : leaf == "output" ? 2
                                      : -1;
        if (slot < 0)
            continue;
        ctrls[rest.substr(0, dot)][static_cast<std::size_t>(slot)] =
            kv.second->asU64();
    }
    if (ctrls.empty())
        return;
    std::printf("  %-16s %14s %14s %14s\n", "controller",
                "setpoint", "measured", "output");
    for (const auto &kv : ctrls)
        std::printf("  %-16s %14llu %14llu %14llu\n",
                    kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second[0]),
                    static_cast<unsigned long long>(kv.second[1]),
                    static_cast<unsigned long long>(kv.second[2]));
    std::printf("\n");
}

void
renderGauges(const Snapshot &s)
{
    const Value *gs = s.root->get("gauges");
    if (!gs)
        return;
    bool any = false;
    for (const auto &kv : gs->obj)
        if (kv.first.rfind("policy.", 0) != 0)
            any = true;
    if (!any)
        return;
    std::printf("  %-36s %14s\n", "gauge", "value");
    for (const auto &kv : gs->obj) {
        if (kv.first.rfind("policy.", 0) == 0)
            continue;   // rendered by the policy panel
        std::printf("  %-36s %14llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(
                        kv.second->asU64()));
    }
    std::printf("\n");
}

void
renderHists(const Snapshot &s)
{
    const Value *hs = s.root->get("hists");
    if (!hs || hs->obj.empty())
        return;
    std::printf("  %-32s %12s %8s %8s %8s %10s\n", "histogram",
                "count", "p50", "p90", "p99", "max");
    for (const auto &kv : hs->obj) {
        const Value &h = *kv.second;
        std::printf(
            "  %-32s %12llu %8llu %8llu %8llu %10llu\n",
            kv.first.c_str(),
            static_cast<unsigned long long>(
                h.get("count") ? h.get("count")->asU64() : 0),
            static_cast<unsigned long long>(
                h.get("p50") ? h.get("p50")->asU64() : 0),
            static_cast<unsigned long long>(
                h.get("p90") ? h.get("p90")->asU64() : 0),
            static_cast<unsigned long long>(
                h.get("p99") ? h.get("p99")->asU64() : 0),
            static_cast<unsigned long long>(
                h.get("max") ? h.get("max")->asU64() : 0));
    }
    std::printf("\n");
}

void
render(const std::string &path, const Snapshot &s, const Snapshot &prev,
       bool clear)
{
    if (clear)
        std::printf("\x1b[H\x1b[2J");   // home + clear screen
    std::printf("nvo_top — %s\n", path.c_str());
    std::printf("epoch %llu   cycle %llu\n\n",
                static_cast<unsigned long long>(s.epoch),
                static_cast<unsigned long long>(s.cycle));
    renderCounters(s, prev);
    renderPolicy(s);
    renderGauges(s);
    renderHists(s);
    std::fflush(stdout);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: nvo_top [--interval-ms N] [--once] <metrics.jsonl>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool once = false;
    long interval_ms = 1000;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--once") {
            once = true;
        } else if (arg == "--interval-ms") {
            if (++i >= argc)
                return usage();
            interval_ms = std::atol(argv[i]);
            if (interval_ms <= 0)
                return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    if (once) {
        Snapshot latest, prev;
        if (!readTail(path, latest, prev)) {
            std::fprintf(stderr,
                         "nvo_top: no valid nvo-metrics-v1 snapshot "
                         "in %s\n",
                         path.c_str());
            return 1;
        }
        render(path, latest, prev, false);
        return 0;
    }

    std::uint64_t shownEpoch = ~0ull;
    std::uint64_t shownCycle = ~0ull;
    for (;;) {
        Snapshot latest, prev;
        if (readTail(path, latest, prev) &&
            (latest.epoch != shownEpoch ||
             latest.cycle != shownCycle)) {
            render(path, latest, prev, true);
            shownEpoch = latest.epoch;
            shownCycle = latest.cycle;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}
