/**
 * @file
 * Repository lint pass for the NVOverlay simulator sources.
 *
 * A token-level checker for rules the compiler cannot enforce:
 *
 *  - epoch-compare:  no raw relational comparison of EpochId values;
 *                    16-bit epoch tags wrap (paper Sec. IV-D) and must
 *                    be compared through epoch::compareNarrow.
 *  - epoch-narrow:   no static_cast<EpochId> outside
 *                    nvoverlay/epoch.hh; epoch::narrow is the one
 *                    sanctioned narrowing point.
 *  - include-guard:  guard macros must be NVO_<PATH>_HH derived from
 *                    the file's path (src/cache/llc.hh ->
 *                    NVO_CACHE_LLC_HH).
 *  - raw-new-delete: no raw new/delete expressions; containers and
 *                    unique_ptr own everything except the two radix
 *                    trees, which are allowlisted.
 *  - raw-io:         no direct console output (printf/std::cout and
 *                    friends) in src/; simulator output must flow
 *                    through common/log, the obs/ exporters, or the
 *                    harness table printer so machine-readable runs
 *                    stay clean. Those three locations are exempt.
 *  - persist-domain: durable structures under src/nvoverlay/ may not
 *                    write NVM behind the persist boundary's back: no
 *                    direct `<nvm model>.write(...)` calls; route
 *                    through nvm.persist().write() so crash-recovery
 *                    campaigns see every durable mutation.
 *  - ledger-hook:    version-lifecycle transitions under
 *                    src/nvoverlay/ must stay visible to the
 *                    provenance ledger (obs/ledger.hh): no direct
 *                    master-table insert/erase (route through
 *                    MnmBackend::masterInsert and unref, which pair
 *                    the mutation with the matching ledger event) and
 *                    no direct sub-page dropHeader (route through
 *                    MnmBackend::reclaimSubPage, which only runs once
 *                    every buried version has exited the ledger).
 *  - asid-key:       multi-tenant tagging under src/nvoverlay/:
 *                    master-table insert/erase must take a tenant key
 *                    (built through tenant::keyOf / tenant::tag, which
 *                    carry the ASID in the tagged address) and
 *                    page-pool allocLines/freeLines must pass the
 *                    owning ASID — a mutation whose argument list
 *                    names nothing key- or asid-like is invisible to
 *                    per-tenant quota and write-amp accounting.
 *  - shard-confinement: code under src/par/ may only drive simulated
 *                    state (core/scheme runUntil, tag-walk and flush
 *                    entry points, the hierarchy handle) from inside
 *                    a lexical ShardGuard scope — the runtime token
 *                    that proves the shard owns that state. Traffic
 *                    that crosses shards must go through the SPSC
 *                    ring API (tryPush/tryPop) instead, which is
 *                    always legal.
 *
 * Suppression: an allowlist file ("<rule> <path-suffix>" per line) or
 * an inline "nvo-lint: allow(rule)" marker on the offending line.
 *
 * Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
 * `--self-test` runs the rules against seeded violations and verifies
 * each one is caught. `--corpus DIR` lints every fixture in DIR,
 * whose names encode the expectation:
 * `<rule_with_underscores>.<good|bad>[.variant].cc` — bad fixtures
 * must produce at least one violation of exactly that rule, good
 * fixtures must lint clean. Fixtures may pin their lint scope with a
 * leading `// lint-path: <path>` line (e.g. `par/fixture.cc` to put
 * the file under the shard-confinement rule's jurisdiction).
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct Token
{
    std::string text;
    int line = 0;
    bool ident = false;
};

/** Per-line "nvo-lint: allow(rule)" markers, rule "*" allows all. */
using AllowMarkers = std::map<int, std::set<std::string>>;

AllowMarkers
collectMarkers(const std::string &text)
{
    AllowMarkers markers;
    std::istringstream in(text);
    std::string line;
    int num = 0;
    while (std::getline(in, line)) {
        ++num;
        std::size_t pos = line.find("nvo-lint: allow(");
        if (pos == std::string::npos)
            continue;
        std::size_t open = line.find('(', pos);
        std::size_t close = line.find(')', open);
        if (close == std::string::npos)
            continue;
        std::string rules = line.substr(open + 1, close - open - 1);
        std::istringstream rs(rules);
        std::string rule;
        while (std::getline(rs, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (!rule.empty())
                markers[num].insert(rule);
        }
    }
    return markers;
}

/**
 * True when the '"' at @p i opens a raw string literal: preceded by
 * an R (optionally with a u8/u/U/L encoding prefix) that is itself
 * the start of the literal, not the tail of an identifier.
 */
bool
isRawStringStart(const std::string &text, std::size_t i)
{
    if (i == 0 || text[i - 1] != 'R')
        return false;
    std::size_t p = i - 1;   // index of the 'R'
    if (p >= 2 && text[p - 2] == 'u' && text[p - 1] == '8')
        p -= 2;
    else if (p >= 1 && (text[p - 1] == 'u' || text[p - 1] == 'U' ||
                        text[p - 1] == 'L'))
        p -= 1;
    return p == 0 ||
           !(std::isalnum(static_cast<unsigned char>(text[p - 1])) ||
             text[p - 1] == '_');
}

/**
 * Replace comments and string/char literal bodies with spaces,
 * preserving line structure so token line numbers stay true. Raw
 * string literals (R"delim(...)delim", with any encoding prefix) are
 * handled before the ordinary string state so their unescaped quotes
 * and parentheses cannot corrupt the rest of the file.
 */
std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class St { Code, Line, Block, Str, Chr };
    St st = St::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out += "  ";
                ++i;
            } else if (c == '"' && isRawStringStart(text, i)) {
                // R"delim( ... )delim": scan the delimiter, then blank
                // the body up to (and including) the matching
                // terminator, preserving newlines.
                std::size_t open = text.find('(', i + 1);
                if (open == std::string::npos) {
                    out += '"';   // malformed; treat as ordinary
                    st = St::Str;
                    break;
                }
                std::string term = ")" +
                                   text.substr(i + 1, open - i - 1) +
                                   "\"";
                std::size_t end = text.find(term, open + 1);
                std::size_t stop = end == std::string::npos
                                       ? text.size()
                                       : end + term.size();
                out += '"';
                for (std::size_t j = i + 1; j + 1 < stop; ++j)
                    out += text[j] == '\n' ? '\n' : ' ';
                if (stop > i + 1)
                    out += '"';
                i = stop - 1;
            } else if (c == '"') {
                st = St::Str;
                out += '"';
            } else if (c == '\'') {
                st = St::Chr;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case St::Line:
            if (c == '\n') {
                st = St::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Str:
        case St::Chr: {
            char quote = st == St::Str ? '"' : '\'';
            if (c == '\\' && n != '\0') {
                out += "  ";
                ++i;
            } else if (c == quote) {
                st = St::Code;
                out += quote;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        }
    }
    return out;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Tokenize stripped code. Preprocessor directives are skipped (the
 * include-guard rule reads the raw lines instead), except that the
 * conditionally-compiled body of the file is still tokenized.
 */
std::vector<Token>
tokenize(const std::string &stripped)
{
    std::vector<Token> toks;
    int line = 1;
    bool at_line_start = true;
    for (std::size_t i = 0; i < stripped.size();) {
        char c = stripped[i];
        if (c == '\n') {
            ++line;
            at_line_start = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#' && at_line_start) {
            // Skip the directive (and continuation lines).
            while (i < stripped.size()) {
                if (stripped[i] == '\\' && i + 1 < stripped.size() &&
                    stripped[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (stripped[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        at_line_start = false;
        if (isIdentChar(c)) {
            std::size_t j = i;
            while (j < stripped.size() && isIdentChar(stripped[j]))
                ++j;
            Token t;
            t.text = stripped.substr(i, j - i);
            t.line = line;
            t.ident = !std::isdigit(static_cast<unsigned char>(c));
            toks.push_back(std::move(t));
            i = j;
            continue;
        }
        // Two-character operators we care about distinguishing.
        static const char *two[] = {"<=", ">=", "<<", ">>", "->",
                                    "==", "!=", "&&", "||", "::"};
        std::string pair = stripped.substr(i, 2);
        bool matched = false;
        for (const char *op : two) {
            if (pair == op) {
                toks.push_back(Token{pair, line, false});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        toks.push_back(Token{std::string(1, c), line, false});
        ++i;
    }
    return toks;
}

/** Normalized path with everything up to a "src/" component removed
 *  (include guards are rooted at src/). */
std::string
guardPathOf(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    if (ec || rel.empty())
        rel = file;
    std::vector<std::string> parts;
    for (const auto &comp : rel) {
        std::string s = comp.string();
        if (s == "." || s == "..")
            continue;
        parts.push_back(s);
    }
    // Drop everything through a "src" component so in-tree and
    // out-of-tree invocations agree on the guard name.
    std::size_t start = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i] == "src") {
            start = i + 1;
            break;
        }
    }
    std::string joined;
    for (std::size_t i = start; i < parts.size(); ++i) {
        if (!joined.empty())
            joined += "/";
        joined += parts[i];
    }
    return joined;
}

std::string
expectedGuard(const std::string &guard_path)
{
    std::string g = "NVO_";
    for (char c : guard_path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            g += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            g += '_';
    }
    return g;
}

void
checkIncludeGuard(const std::string &display, const std::string &text,
                  const std::string &guard_path,
                  std::vector<Violation> &out)
{
    std::istringstream in(text);
    std::string line;
    int num = 0;
    std::string guard;
    int guard_line = 0;
    while (std::getline(in, line)) {
        ++num;
        std::size_t pos = line.find_first_not_of(" \t");
        if (pos == std::string::npos || line[pos] != '#')
            continue;
        std::istringstream ls(line.substr(pos + 1));
        std::string directive, name;
        ls >> directive >> name;
        if (directive == "ifndef") {
            guard = name;
            guard_line = num;
            break;
        }
        if (directive == "pragma")
            continue;
    }
    std::string want = expectedGuard(guard_path);
    if (guard.empty()) {
        out.push_back({display, 1, "include-guard",
                       "missing include guard (expected " + want +
                           ")"});
        return;
    }
    if (guard != want) {
        out.push_back({display, guard_line, "include-guard",
                       "guard " + guard + " does not match path "
                       "(expected " + want + ")"});
    }
}

/** Whether the argument list opening at token @p open (a "(") names
 *  any identifier containing "key" or "asid" — the asid-key rule's
 *  evidence that a persistent-structure mutation is tenant-tagged. */
bool
argsCarryAsid(const std::vector<Token> &toks, std::size_t open)
{
    int pdepth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == "(") {
            ++pdepth;
        } else if (toks[j].text == ")") {
            if (--pdepth == 0)
                break;
        } else if (toks[j].ident) {
            std::string low;
            for (char ch : toks[j].text)
                low += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(ch)));
            if (low.find("key") != std::string::npos ||
                low.find("asid") != std::string::npos)
                return true;
        }
    }
    return false;
}

void
lintTokens(const std::string &display, const std::vector<Token> &toks,
           bool is_epoch_header, bool raw_io_exempt,
           bool persist_scope, bool par_scope, bool metric_scope,
           std::vector<Violation> &out)
{
    // Brace-depth bookkeeping for shard-confinement: a ShardGuard
    // declaration covers the rest of the block it is declared in
    // (destructor releases at the closing brace), so track the depth
    // each live guard was declared at and retire it when its block
    // closes.
    int depth = 0;
    std::vector<int> guard_depths;

    // Pass 1: identifiers declared with type EpochId.
    std::set<std::string> epoch_ids;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text == "EpochId" && toks[i + 1].ident &&
            (i == 0 || toks[i - 1].text != "<"))
            epoch_ids.insert(toks[i + 1].text);
    }

    static const std::set<std::string> relops = {"<", ">", "<=", ">="};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];

        if (t.text == "{") {
            ++depth;
        } else if (t.text == "}") {
            --depth;
            while (!guard_depths.empty() &&
                   guard_depths.back() > depth)
                guard_depths.pop_back();
        }

        if (par_scope) {
            // A declaration "ShardGuard g(cap)" arms the scope.
            if (t.text == "ShardGuard" && i + 1 < toks.size() &&
                toks[i + 1].ident)
                guard_depths.push_back(depth);
            bool guarded = !guard_depths.empty();
            // Simulated-state entry points: stepping a core or
            // scheme, or forcing hierarchy walks/flushes.
            static const std::set<std::string> sim_entry = {
                "runUntil", "tagWalkScan", "flushAll"};
            if (!guarded && t.ident && sim_entry.count(t.text) &&
                i > 0 &&
                (toks[i - 1].text == "." ||
                 toks[i - 1].text == "->")) {
                out.push_back(
                    {display, t.line, "shard-confinement",
                     t.text + "() outside a ShardGuard scope; only "
                     "the token-holding shard may step simulated "
                     "state (cross-shard traffic goes through the "
                     "ring API)"});
            }
            // Touching the cache hierarchy handle directly is the
            // same hazard regardless of which method is called.
            static const std::set<std::string> hier_names = {
                "hier", "hier_", "hierarchy", "hierarchy_"};
            if (!guarded && t.ident && hier_names.count(t.text) &&
                i + 1 < toks.size() &&
                (toks[i + 1].text == "." ||
                 toks[i + 1].text == "->")) {
                out.push_back(
                    {display, t.line, "shard-confinement",
                     "hierarchy access outside a ShardGuard scope; "
                     "shard-owned state may only be touched under "
                     "the shard's capability"});
            }
        }

        if (relops.count(t.text) && i > 0 && i + 1 < toks.size()) {
            const Token &a = toks[i - 1];
            const Token &b = toks[i + 1];
            bool a_epoch = a.ident && epoch_ids.count(a.text);
            bool b_epoch = b.ident && epoch_ids.count(b.text);
            // `EpochId x` followed by a template/declaration angle
            // bracket never has an epoch variable on its left.
            if (a_epoch || b_epoch) {
                out.push_back(
                    {display, t.line, "epoch-compare",
                     "raw relational comparison of EpochId values "
                     "(16-bit tags wrap; use epoch::compareNarrow)"});
            }
        }

        if (t.text == "static_cast" && i + 3 < toks.size() &&
            toks[i + 1].text == "<" &&
            toks[i + 2].text == "EpochId" &&
            toks[i + 3].text == ">" && !is_epoch_header) {
            out.push_back(
                {display, t.line, "epoch-narrow",
                 "static_cast<EpochId> outside nvoverlay/epoch.hh "
                 "(narrow through epoch::narrow)"});
        }

        static const std::set<std::string> raw_io = {
            "printf", "fprintf", "vprintf", "vfprintf",
            "puts",   "fputs",   "putchar", "fputc",
            "putc",   "cout",    "cerr",    "clog"};
        if (!raw_io_exempt && t.ident && raw_io.count(t.text)) {
            out.push_back(
                {display, t.line, "raw-io",
                 "direct console output (" + t.text +
                     "); route through common/log, obs/, or the "
                     "harness table printer"});
        }

        static const std::set<std::string> nvm_names = {
            "nvm", "nvm_", "nvmModel", "nvm_model"};
        if (persist_scope && t.ident && nvm_names.count(t.text) &&
            i + 2 < toks.size() && toks[i + 1].text == "." &&
            toks[i + 2].text == "write") {
            out.push_back(
                {display, t.line, "persist-domain",
                 "direct NVM write bypasses the persist boundary "
                 "(use " + t.text + ".persist().write)"});
        }

        // ledger-hook: the master table and the overlay sub-pages
        // define version lifecycle; mutating them away from the
        // hooked helpers would leave the provenance ledger blind.
        static const std::set<std::string> master_names = {
            "master", "master_", "mt", "masterTable", "master_table"};
        static const std::set<std::string> master_muts = {"insert",
                                                          "erase"};
        if (persist_scope && t.ident && master_names.count(t.text) &&
            i + 2 < toks.size() &&
            (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
            master_muts.count(toks[i + 2].text)) {
            out.push_back(
                {display, t.line, "ledger-hook",
                 "master-table " + toks[i + 2].text + " outside the "
                 "hooked path (route through MnmBackend::masterInsert"
                 " / unref so the version ledger records the "
                 "transition)"});
        }
        // asid-key: the same mutations must also carry tenancy. A
        // master key built away from tenant::keyOf/tag, or a page-
        // pool alloc/free without the owning ASID, silently exits a
        // line from per-tenant quota and write-amp accounting.
        if (persist_scope && t.ident && master_names.count(t.text) &&
            i + 3 < toks.size() &&
            (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
            master_muts.count(toks[i + 2].text) &&
            toks[i + 3].text == "(" &&
            !argsCarryAsid(toks, i + 3)) {
            out.push_back(
                {display, t.line, "asid-key",
                 "master-table " + toks[i + 2].text + " with an "
                 "untagged key (build it with tenant::keyOf / "
                 "tenant::tag so the mutation carries its ASID)"});
        }
        static const std::set<std::string> pool_muts = {"allocLines",
                                                        "freeLines"};
        if (persist_scope && t.ident && pool_muts.count(t.text) &&
            i > 0 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
            i + 1 < toks.size() && toks[i + 1].text == "(" &&
            !argsCarryAsid(toks, i + 1)) {
            out.push_back(
                {display, t.line, "asid-key",
                 t.text + "() without an owning ASID argument "
                 "(page-pool occupancy is accounted per tenant; "
                 "pass the caller's asid)"});
        }

        if (persist_scope && t.text == "dropHeader" && i > 0 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
            out.push_back(
                {display, t.line, "ledger-hook",
                 "sub-page drop outside the hooked path (route "
                 "through MnmBackend::reclaimSubPage so buried "
                 "versions exit the ledger first)"});
        }

        // metric-registry: instrumented subsystems must hold metric
        // *handles* from obs::metricRegistry() (addCounter/addHist),
        // never own a Histogram/Counter by value — a privately owned
        // instrument is invisible to the exporter and breaks the
        // shard-slot merge that keeps parallel runs deterministic.
        // Pointer declarations (`HistMetric *h`) and forward
        // declarations stay clean: the next token is not an ident.
        static const std::set<std::string> metric_types = {
            "Histogram", "HistMetric", "Counter"};
        if (metric_scope && t.ident && metric_types.count(t.text) &&
            i + 1 < toks.size() && toks[i + 1].ident) {
            out.push_back(
                {display, t.line, "metric-registry",
                 "by-value " + t.text + " construction outside the "
                 "registry (hold a handle from obs::metricRegistry()"
                 ".addCounter/addHist so the exporter sees it and "
                 "shard slots merge deterministically)"});
        }

        if (t.text == "new") {
            out.push_back({display, t.line, "raw-new-delete",
                           "raw new expression (own memory with "
                           "containers or unique_ptr)"});
        }
        if (t.text == "delete") {
            // `= delete`d members and `operator delete` are fine.
            bool deleted_member = i > 0 && toks[i - 1].text == "=";
            bool op_decl = i > 0 && toks[i - 1].text == "operator";
            if (!deleted_member && !op_decl)
                out.push_back({display, t.line, "raw-new-delete",
                               "raw delete expression"});
        }
    }
}

/** Lint one in-memory file; guard_path decides the expected include
 *  guard and whether the epoch-narrow exemption applies. */
std::vector<Violation>
lintText(const std::string &display, const std::string &guard_path,
         const std::string &text)
{
    std::vector<Violation> out;
    AllowMarkers markers = collectMarkers(text);
    std::string stripped = stripCommentsAndStrings(text);
    std::vector<Token> toks = tokenize(stripped);

    bool is_header = guard_path.size() > 3 &&
                     guard_path.substr(guard_path.size() - 3) == ".hh";
    bool is_epoch_header = guard_path == "nvoverlay/epoch.hh";
    bool raw_io_exempt =
        guard_path.rfind("obs/", 0) == 0 ||
        guard_path.rfind("common/log", 0) == 0 ||
        guard_path.rfind("harness/table_printer", 0) == 0;
    bool persist_scope = guard_path.rfind("nvoverlay/", 0) == 0;
    bool par_scope = guard_path.rfind("par/", 0) == 0;
    bool metric_scope = persist_scope || par_scope ||
                        guard_path.rfind("repl/", 0) == 0 ||
                        guard_path.rfind("tenant/", 0) == 0;
    if (is_header)
        checkIncludeGuard(display, text, guard_path, out);
    lintTokens(display, toks, is_epoch_header, raw_io_exempt,
               persist_scope, par_scope, metric_scope, out);

    // Drop violations suppressed by an inline marker.
    out.erase(std::remove_if(
                  out.begin(), out.end(),
                  [&markers](const Violation &v) {
                      auto it = markers.find(v.line);
                      if (it == markers.end())
                          return false;
                      return it->second.count(v.rule) != 0 ||
                             it->second.count("*") != 0;
                  }),
              out.end());
    return out;
}

struct AllowEntry
{
    std::string rule;
    std::string pathSuffix;
};

std::vector<AllowEntry>
loadAllowlist(const std::string &path, bool &ok)
{
    std::vector<AllowEntry> entries;
    std::ifstream in(path);
    ok = in.good();
    std::string line;
    while (std::getline(in, line)) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        AllowEntry e;
        if (ls >> e.rule >> e.pathSuffix)
            entries.push_back(std::move(e));
    }
    return entries;
}

bool
suffixMatches(const std::string &path, const std::string &suffix)
{
    if (suffix.size() > path.size())
        return false;
    if (path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    // Require a path-component boundary.
    return path.size() == suffix.size() ||
           path[path.size() - suffix.size() - 1] == '/';
}

bool
allowlisted(const Violation &v, const std::vector<AllowEntry> &allow)
{
    for (const auto &e : allow)
        if ((e.rule == v.rule || e.rule == "*") &&
            suffixMatches(v.file, e.pathSuffix))
            return true;
    return false;
}

int
selfTest()
{
    struct Case
    {
        const char *name;
        const char *guardPath;
        const char *code;
        const char *expectRule;   // nullptr = expect clean
    };
    const Case cases[] = {
        {"epoch compare flagged", "nvoverlay/foo.cc",
         "void f(EpochId a, EpochId b) { if (a < b) {} }\n",
         "epoch-compare"},
        {"epoch compare vs literal flagged", "nvoverlay/foo.cc",
         "bool g(EpochId tag) { return tag >= 5; }\n",
         "epoch-compare"},
        {"compareNarrow is clean", "nvoverlay/foo.cc",
         "bool h(EpochId a, EpochId b)\n"
         "{ return epoch::compareNarrow(a, b) < 0; }\n",
         nullptr},
        {"narrowing cast flagged", "nvoverlay/foo.cc",
         "EpochId n(EpochWide e) { return static_cast<EpochId>(e); }\n",
         "epoch-narrow"},
        {"narrowing cast allowed in epoch.hh", "nvoverlay/epoch.hh",
         "#ifndef NVO_NVOVERLAY_EPOCH_HH\n"
         "#define NVO_NVOVERLAY_EPOCH_HH\n"
         "inline EpochId n(EpochWide e)\n"
         "{ return static_cast<EpochId>(e); }\n"
         "#endif\n",
         nullptr},
        {"wrong include guard flagged", "cache/llc.hh",
         "#ifndef LLC_HH\n#define LLC_HH\n#endif\n",
         "include-guard"},
        {"matching include guard clean", "cache/llc.hh",
         "#ifndef NVO_CACHE_LLC_HH\n#define NVO_CACHE_LLC_HH\n"
         "#endif\n",
         nullptr},
        {"raw new flagged", "common/foo.cc",
         "int *leak() { return new int(7); }\n",
         "raw-new-delete"},
        {"assigned new flagged", "common/foo.cc",
         "void f(int *&p) { p = new int; }\n",
         "raw-new-delete"},
        {"raw delete flagged", "common/foo.cc",
         "void f(int *p) { delete p; }\n",
         "raw-new-delete"},
        {"deleted member is clean", "common/foo.cc",
         "struct A { A(const A &) = delete; };\n",
         nullptr},
        {"comment mentioning new is clean", "common/foo.cc",
         "// a new epoch starts here; delete nothing\n"
         "int x = 0;\n",
         nullptr},
        {"string mentioning delete is clean", "common/foo.cc",
         "const char *s = \"new delete if (a < b)\";\n",
         nullptr},
        {"block comment mentioning new is clean", "common/foo.cc",
         "/* new delete printf */ int x = 0;\n",
         nullptr},
        {"code sharing a line with a block comment fires",
         "common/foo.cc",
         "/* harmless */ int *p = new int;\n",
         "raw-new-delete"},
        {"raw string mentioning violations is clean", "common/foo.cc",
         "const char *s = R\"(new delete printf if (a < b))\";\n",
         nullptr},
        {"delimited raw string with quote is clean", "common/foo.cc",
         "const char *s = uR\"x(quote \" paren ) new)x\";\n"
         "int y = 0;\n",
         nullptr},
        {"code after a raw string on the same line fires",
         "common/foo.cc",
         "const char *s = R\"(x)\"; int *p = new int;\n",
         "raw-new-delete"},
        {"raw string quote does not swallow later code",
         "common/foo.cc",
         "const char *s = R\"(\")\";\n"
         "void f(int *p) { delete p; }\n",
         "raw-new-delete"},
        {"inline allow marker suppresses", "common/foo.cc",
         "int *p = new int;   // nvo-lint: allow(raw-new-delete)\n",
         nullptr},
        {"raw printf flagged", "cache/foo.cc",
         "void f() { printf(\"%d\", 1); }\n",
         "raw-io"},
        {"std::cout flagged", "nvoverlay/foo.cc",
         "void f() { std::cout << 1; }\n",
         "raw-io"},
        {"fprintf to stderr flagged", "mem/foo.cc",
         "void f() { std::fprintf(stderr, \"x\"); }\n",
         "raw-io"},
        {"printf exempt under obs/", "obs/foo.cc",
         "void f() { std::printf(\"%d\", 1); }\n",
         nullptr},
        {"printf exempt in common/log", "common/log.cc",
         "void f() { std::vfprintf(stderr, \"x\", {}); }\n",
         nullptr},
        {"printf exempt in table printer", "harness/table_printer.cc",
         "void f() { std::printf(\"x\"); }\n",
         nullptr},
        {"string mentioning printf is clean", "cache/foo.cc",
         "const char *s = \"printf cout\";\n",
         nullptr},
        {"raw-io allow marker suppresses", "cache/foo.cc",
         "void f() { puts(\"x\"); }  // nvo-lint: allow(raw-io)\n",
         nullptr},
        {"direct nvm write flagged in nvoverlay", "nvoverlay/foo.cc",
         "void f() { nvm.write(a, 64, now, k); }\n",
         "persist-domain"},
        {"member nvm_ write flagged in nvoverlay", "nvoverlay/foo.cc",
         "void f() { nvm_model.write(a, 8, now, k); }\n",
         "persist-domain"},
        {"persist-routed write is clean", "nvoverlay/foo.cc",
         "void f() { nvm.persist().write(a, 64, now, k); }\n",
         nullptr},
        {"nvm read is clean", "nvoverlay/foo.cc",
         "Cycle f() { return nvm.read(a, now); }\n",
         nullptr},
        {"direct nvm write outside nvoverlay is clean",
         "baselines/foo.cc",
         "void f() { nvm.write(a, 64, now, k); }\n",
         nullptr},
        {"persist-domain allow marker suppresses", "nvoverlay/foo.cc",
         "void f() { nvm.write(a, 64, now, k); }"
         "  // nvo-lint: allow(persist-domain)\n",
         nullptr},
        {"master insert flagged in nvoverlay", "nvoverlay/foo.cc",
         "void f() { part.master->insert(key, nvm, e); }\n",
         "ledger-hook"},
        {"master erase flagged in nvoverlay", "nvoverlay/foo.cc",
         "void f() { master.erase(key); }\n",
         "ledger-hook"},
        {"undo-lambda mt insert flagged", "nvoverlay/foo.cc",
         "void f() { d.stage([mt, k] { mt->insert(key, n, e); }); }\n",
         "ledger-hook"},
        {"dropHeader flagged in nvoverlay", "nvoverlay/foo.cc",
         "void f() { part.pool->dropHeader(pe.subPage); }\n",
         "ledger-hook"},
        {"master lookup is clean", "nvoverlay/foo.cc",
         "const Entry *f() { return part.master->lookup(a); }\n",
         nullptr},
        {"routed masterInsert call is clean", "nvoverlay/foo.cc",
         "void f() { auto r = masterInsert(part, a, nvm, e); }\n",
         nullptr},
        {"master insert outside nvoverlay is clean",
         "baselines/foo.cc",
         "void f() { master.insert(a, nvm, e); }\n",
         nullptr},
        {"ledger-hook allow marker suppresses", "nvoverlay/foo.cc",
         "void f() { pool.dropHeader(s); }"
         "  // nvo-lint: allow(ledger-hook)\n",
         nullptr},
        {"untagged master insert flagged", "nvoverlay/foo.cc",
         "void f() { master.insert(a, nvm, e); }"
         "  // nvo-lint: allow(ledger-hook)\n",
         "asid-key"},
        {"keyOf-tagged master insert is clean", "nvoverlay/foo.cc",
         "void f() { master.insert(tenant::keyOf(a), nvm, e); }"
         "  // nvo-lint: allow(ledger-hook)\n",
         nullptr},
        {"asid-named erase argument is clean", "nvoverlay/foo.cc",
         "void f() { mt->erase(asid_line); }"
         "  // nvo-lint: allow(ledger-hook)\n",
         nullptr},
        {"allocLines without asid flagged", "nvoverlay/foo.cc",
         "void f() { pool.allocLines(4); }\n",
         "asid-key"},
        {"allocLines with asid is clean", "nvoverlay/foo.cc",
         "void f() { pool.allocLines(4, asid); }\n",
         nullptr},
        {"freeLines without asid flagged", "nvoverlay/foo.cc",
         "void f() { part.pool->freeLines(addr, n); }\n",
         "asid-key"},
        {"pool mutation outside nvoverlay is clean", "baselines/foo.cc",
         "void f() { pool.allocLines(4); }\n",
         nullptr},
        {"asid-key allow marker suppresses", "nvoverlay/foo.cc",
         "void f() { pool.allocLines(4); }"
         "  // nvo-lint: allow(asid-key)\n",
         nullptr},
        {"unguarded runUntil flagged in par", "par/foo.cc",
         "void f(Core *c) { c->runUntil(end); }\n",
         "shard-confinement"},
        {"unguarded hier access flagged in par", "par/foo.cc",
         "void f() { hier_->flushAll(vd); }\n",
         "shard-confinement"},
        {"guarded runUntil is clean", "par/foo.cc",
         "void f(Core *c) {\n"
         "    ShardGuard guard(slot.cap);\n"
         "    for (unsigned i = 0; i < n; ++i) { c->runUntil(e); }\n"
         "}\n",
         nullptr},
        {"guard scope ends at its closing brace", "par/foo.cc",
         "void f(Core *c) {\n"
         "    { ShardGuard guard(slot.cap); c->runUntil(e); }\n"
         "    c->runUntil(e);\n"
         "}\n",
         "shard-confinement"},
        {"ring traffic needs no guard", "par/foo.cc",
         "void f(XMsg m) { if (!ring.tryPush(m)) { drops++; } }\n",
         nullptr},
        {"runUntil outside par is not this rule's business",
         "harness/foo.cc",
         "void f(Core *c) { c->runUntil(end); }\n",
         nullptr},
        {"shard-confinement allow marker suppresses", "par/foo.cc",
         "void f(Core *c) { c->runUntil(end); }"
         "  // nvo-lint: allow(shard-confinement)\n",
         nullptr},
        {"by-value Histogram flagged in nvoverlay", "nvoverlay/foo.cc",
         "struct S { Histogram walkDepth; };\n",
         "metric-registry"},
        {"by-value Counter flagged in repl", "repl/foo.cc",
         "void f() { Counter retries; }\n",
         "metric-registry"},
        {"by-value HistMetric flagged in tenant", "tenant/foo.cc",
         "struct S { obs::HistMetric stall; };\n",
         "metric-registry"},
        {"registry handle pointer is clean", "par/foo.cc",
         "struct S { obs::HistMetric *hRing = nullptr; };\n",
         nullptr},
        {"metric forward declaration is clean", "nvoverlay/foo.cc",
         "namespace obs { struct HistMetric; struct Counter; }\n",
         nullptr},
        {"by-value Histogram outside the scoped dirs is clean",
         "obs/foo.cc",
         "struct S { Histogram h; };\n",
         nullptr},
        {"metric-registry allow marker suppresses", "nvoverlay/foo.cc",
         "struct S { Histogram h; };"
         "  // nvo-lint: allow(metric-registry)\n",
         nullptr},
    };

    int failures = 0;
    for (const auto &c : cases) {
        std::vector<Violation> vs =
            lintText(c.guardPath, c.guardPath, c.code);
        bool pass;
        if (c.expectRule == nullptr) {
            pass = vs.empty();
        } else {
            pass = !vs.empty() &&
                   std::all_of(vs.begin(), vs.end(),
                               [&c](const Violation &v) {
                                   return v.rule == c.expectRule;
                               });
        }
        if (!pass) {
            ++failures;
            std::fprintf(stderr, "self-test FAILED: %s\n", c.name);
            for (const auto &v : vs)
                std::fprintf(stderr, "  got %s:%d [%s] %s\n",
                             v.file.c_str(), v.line, v.rule.c_str(),
                             v.message.c_str());
        }
    }
    if (failures == 0) {
        std::printf("nvo_lint self-test: %zu cases passed\n",
                    sizeof(cases) / sizeof(cases[0]));
        return 0;
    }
    std::fprintf(stderr, "nvo_lint self-test: %d case(s) failed\n",
                 failures);
    return 1;
}

bool
lintable(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".cc";
}

/**
 * Fixture corpus: every lintable file in @p dir encodes its own
 * expectation in its name, `<rule_with_underscores>.<good|bad>
 * [.variant].cc`. A leading `// lint-path: <path>` line (within the
 * first five lines) pins the guard path the fixture is linted under,
 * so scope-gated rules can be exercised from anywhere on disk.
 */
int
runCorpus(const std::string &dir)
{
    std::error_code ec;
    std::vector<fs::path> fixtures;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); ++it)
        if (it->is_regular_file() && lintable(it->path()))
            fixtures.push_back(it->path());
    if (ec || fixtures.empty()) {
        std::fprintf(stderr, "corpus %s: no lintable fixtures\n",
                     dir.c_str());
        return 2;
    }
    std::sort(fixtures.begin(), fixtures.end());

    int failures = 0;
    for (const fs::path &file : fixtures) {
        std::string stem = file.filename().string();
        std::size_t dot = stem.find('.');
        if (dot == std::string::npos) {
            std::fprintf(stderr, "corpus: unparsable name %s\n",
                         stem.c_str());
            ++failures;
            continue;
        }
        std::string rule = stem.substr(0, dot);
        std::replace(rule.begin(), rule.end(), '_', '-');
        std::size_t dot2 = stem.find('.', dot + 1);
        std::string verdict =
            stem.substr(dot + 1, dot2 == std::string::npos
                                     ? std::string::npos
                                     : dot2 - dot - 1);
        if (verdict != "good" && verdict != "bad") {
            std::fprintf(stderr,
                         "corpus: %s: expected .good or .bad\n",
                         stem.c_str());
            ++failures;
            continue;
        }

        std::ifstream in(file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();

        std::string gpath = stem;
        std::istringstream head(text);
        std::string line;
        for (int n = 0; n < 5 && std::getline(head, line); ++n) {
            std::size_t pos = line.find("lint-path:");
            if (pos == std::string::npos)
                continue;
            std::istringstream ls(line.substr(pos + 10));
            ls >> gpath;
            break;
        }

        std::vector<Violation> vs =
            lintText(file.generic_string(), gpath, text);
        bool pass;
        if (verdict == "good") {
            pass = vs.empty();
        } else {
            pass = !vs.empty() &&
                   std::all_of(vs.begin(), vs.end(),
                               [&rule](const Violation &v) {
                                   return v.rule == rule;
                               });
        }
        if (!pass) {
            ++failures;
            std::fprintf(stderr, "corpus FAILED: %s (expected %s %s)\n",
                         stem.c_str(), verdict.c_str(), rule.c_str());
            for (const auto &v : vs)
                std::fprintf(stderr, "  got %s:%d [%s] %s\n",
                             v.file.c_str(), v.line, v.rule.c_str(),
                             v.message.c_str());
        }
    }
    if (failures == 0) {
        std::printf("nvo_lint corpus: %zu fixture(s) passed\n",
                    fixtures.size());
        return 0;
    }
    std::fprintf(stderr, "nvo_lint corpus: %d fixture(s) failed\n",
                 failures);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string allowlist_path;
    std::string corpus_dir;
    std::vector<std::string> roots;
    bool self_test = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--allowlist needs a file argument\n");
                return 2;
            }
            allowlist_path = argv[++i];
        } else if (arg == "--corpus") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--corpus needs a directory argument\n");
                return 2;
            }
            corpus_dir = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: nvo_lint [--allowlist FILE] [--self-test] "
                "[--corpus DIR] PATH...\n");
            return 0;
        } else {
            roots.push_back(arg);
        }
    }

    if (self_test)
        return selfTest();
    if (!corpus_dir.empty())
        return runCorpus(corpus_dir);

    if (roots.empty()) {
        std::fprintf(stderr, "usage: nvo_lint [--allowlist FILE] "
                             "[--self-test] [--corpus DIR] PATH...\n");
        return 2;
    }

    std::vector<AllowEntry> allow;
    if (allowlist_path.empty()) {
        // Default: tools/nvo_lint_allow.txt relative to the cwd.
        if (fs::exists("tools/nvo_lint_allow.txt"))
            allowlist_path = "tools/nvo_lint_allow.txt";
    }
    if (!allowlist_path.empty()) {
        bool ok = false;
        allow = loadAllowlist(allowlist_path, ok);
        if (!ok) {
            std::fprintf(stderr, "cannot read allowlist %s\n",
                         allowlist_path.c_str());
            return 2;
        }
    }

    std::vector<Violation> all;
    std::size_t files = 0;
    for (const std::string &root : roots) {
        fs::path rp(root);
        std::error_code ec;
        std::vector<fs::path> targets;
        if (fs::is_directory(rp, ec)) {
            for (auto it = fs::recursive_directory_iterator(rp, ec);
                 !ec && it != fs::recursive_directory_iterator();
                 ++it)
                if (it->is_regular_file() && lintable(it->path()))
                    targets.push_back(it->path());
        } else if (fs::is_regular_file(rp, ec)) {
            targets.push_back(rp);
        } else {
            std::fprintf(stderr, "cannot open %s\n", root.c_str());
            return 2;
        }
        std::sort(targets.begin(), targets.end());
        fs::path guard_root = fs::is_directory(rp) ? rp : fs::path(".");
        for (const fs::path &file : targets) {
            std::ifstream in(file, std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n",
                             file.string().c_str());
                return 2;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            ++files;
            std::string display = file.generic_string();
            std::string gpath = guardPathOf(file, guard_root);
            for (auto &v : lintText(display, gpath, buf.str()))
                if (!allowlisted(v, allow))
                    all.push_back(std::move(v));
        }
    }

    for (const auto &v : all)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(),
                     v.line, v.rule.c_str(), v.message.c_str());
    if (!all.empty()) {
        std::fprintf(stderr, "nvo_lint: %zu violation(s) in %zu "
                             "file(s) scanned\n",
                     all.size(), files);
        return 1;
    }
    std::printf("nvo_lint: %zu file(s) clean\n", files);
    return 0;
}
