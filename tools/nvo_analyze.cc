/**
 * @file
 * Offline protocol attribution analyzer.
 *
 * Consumes a `nvo-stats-v1` stats JSON (and optionally the Chrome
 * trace-event JSON from `trace_out`) and reports:
 *
 *   (a) NVM write-amplification attribution by lifecycle cause — the
 *       per-cause byte tallies the provenance ledger recorded at
 *       MnmBackend::deviceWrite, checked to sum *exactly* to the
 *       RunStats data-write total;
 *   (b) the epoch-skew histogram across VDs (Lamport sync lag),
 *       replayed from `epoch_advance` trace events;
 *   (c) mapping-table occupancy and compaction efficiency from the
 *       nvoverlay stats section and the epoch series;
 *   (d) lifecycle leak detection — a version inserted but never
 *       merged, compacted, or dropped is a protocol bug;
 *   (e) per-tenant attribution on multi-tenant runs — per-ASID byte
 *       tallies checked to sum exactly to the device data total and
 *       cross-checked against the tenant manager's own counters.
 *
 * With `--steady` it additionally asserts the run reached steady
 * state (docs/POLICY.md soak recipe): the last quarter of the epoch
 * series must agree with the quarter before it on mean mapping-pool
 * occupancy and on interval write amplification, within 20%. A soak
 * whose pool keeps growing or whose amplification keeps climbing has
 * not converged and the check exits nonzero.
 *
 * Exit status: 0 clean, 1 a lifecycle/attribution violation (leaked
 * versions, or per-cause bytes diverging from the device total) or a
 * failed --steady assertion, 2 bad usage or unreadable input. Run the
 * simulator with `ledger.enabled=1` (and a build with NVO_TRACE=ON)
 * to populate the ledger section; without it the tool reports what it
 * can and exits 0.
 *
 * Usage: nvo_analyze --stats run.json [--trace trace.json] [--steady]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hh"

namespace
{

using jsonmini::Value;

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "nvo_analyze: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

jsonmini::ValuePtr
parseFile(const std::string &path)
{
    try {
        return jsonmini::parse(readFile(path));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nvo_analyze: %s: %s\n", path.c_str(),
                     e.what());
        std::exit(2);
    }
}

std::string
human(double bytes)
{
    char buf[64];
    if (bytes >= 1024.0 * 1024.0)
        std::snprintf(buf, sizeof buf, "%.2f MiB",
                      bytes / (1024.0 * 1024.0));
    else if (bytes >= 1024.0)
        std::snprintf(buf, sizeof buf, "%.2f KiB", bytes / 1024.0);
    else
        std::snprintf(buf, sizeof buf, "%.0f B", bytes);
    return buf;
}

/** (a) + (d): ledger attribution and leak detection. */
int
analyzeLedger(const Value &root)
{
    const Value *stats = root.get("stats");
    const Value *ledger = root.get("ledger");
    std::string workload = root.get("workload")
                               ? root.get("workload")->asString("?")
                               : "?";
    std::string scheme =
        root.get("scheme") ? root.get("scheme")->asString("?") : "?";

    std::printf("== write-amplification attribution (%s / %s) ==\n",
                workload.c_str(), scheme.c_str());

    if (!ledger || !ledger->get("enabled") ||
        !ledger->get("enabled")->boolean) {
        std::printf("  ledger disabled for this run "
                    "(ledger.enabled=1 + NVO_TRACE build); "
                    "attribution and leak checks skipped\n");
        return 0;
    }

    std::uint64_t data_total =
        stats ? stats->get("nvm_write_bytes", "data")->asU64() : 0;
    std::uint64_t ledger_total =
        ledger->get("data_bytes_total")->asU64();
    const Value *by_cause = ledger->get("data_bytes_by_cause");

    std::uint64_t stores =
        stats && stats->get("stores") ? stats->get("stores")->asU64()
                                      : 0;
    // Write amplification as Fig. 12 frames it: NVM data bytes per
    // byte the workload logically stored (one 8 B patch per store in
    // synthetic mode is an approximation; line-granular is what the
    // device sees either way).
    double app_bytes = static_cast<double>(stores) * 8.0;

    int rc = 0;
    if (by_cause) {
        for (const auto &kv : by_cause->obj) {
            std::uint64_t b = kv.second->asU64();
            double share = data_total
                               ? 100.0 * static_cast<double>(b) /
                                     static_cast<double>(data_total)
                               : 0.0;
            std::printf("  %-16s %12llu  (%5.1f%%)\n",
                        kv.first.c_str(),
                        static_cast<unsigned long long>(b), share);
        }
    }
    std::printf("  %-16s %12llu  (%s)\n", "total",
                static_cast<unsigned long long>(ledger_total),
                human(static_cast<double>(ledger_total)).c_str());
    if (app_bytes > 0.0)
        std::printf("  amplification vs stored bytes: %.2fx\n",
                    static_cast<double>(data_total) / app_bytes);

    if (ledger_total != data_total) {
        std::printf("  ATTRIBUTION GAP: ledger accounts %llu B, "
                    "device wrote %llu B of data\n",
                    static_cast<unsigned long long>(ledger_total),
                    static_cast<unsigned long long>(data_total));
        rc = 1;
    } else {
        std::printf("  attribution exact: per-cause bytes sum to the "
                    "device data-write total\n");
    }

    std::printf("\n== lifecycle completeness ==\n");
    std::printf(
        "  sealed %llu  inserted %llu  merged %llu (late %llu)  "
        "compacted %llu  dropped %llu  overwrites %llu\n",
        static_cast<unsigned long long>(
            ledger->get("sealed")->asU64()),
        static_cast<unsigned long long>(
            ledger->get("inserted")->asU64()),
        static_cast<unsigned long long>(
            ledger->get("merged")->asU64()),
        static_cast<unsigned long long>(
            ledger->get("late_merged")->asU64()),
        static_cast<unsigned long long>(
            ledger->get("compacted")->asU64()),
        static_cast<unsigned long long>(
            ledger->get("dropped")->asU64()),
        static_cast<unsigned long long>(
            ledger->get("overwrites")->asU64()));

    std::uint64_t leaked = ledger->get("leaked")->asU64();
    if (leaked != 0) {
        std::printf("  LEAK: %llu version(s) inserted but never "
                    "merged, compacted, or dropped\n",
                    static_cast<unsigned long long>(leaked));
        const Value *samples = ledger->get("leaked_samples");
        if (samples) {
            for (const auto &s : samples->arr)
                std::printf("    addr=0x%llx epoch=%llu prov=%llu "
                            "cause=%s\n",
                            static_cast<unsigned long long>(
                                s->get("addr")->asU64()),
                            static_cast<unsigned long long>(
                                s->get("epoch")->asU64()),
                            static_cast<unsigned long long>(
                                s->get("prov")->asU64()),
                            s->get("cause")->asString("?").c_str());
        }
        rc = 1;
    } else {
        std::printf("  no leaks: every inserted version reached a "
                    "terminal state\n");
    }
    return rc;
}

/**
 * Per-tenant attribution (docs/MULTITENANCY.md): the ledger's
 * by-ASID byte tallies must sum *exactly* to the device data-write
 * total, and each tenant's ledger bytes must agree with the
 * TenantManager's independent counter — two code paths tallying the
 * same deviceWrite stream. Reports per-ASID write amplification.
 * Silently skipped (exit 0) for untenanted runs.
 */
int
analyzeTenants(const Value &root)
{
    const Value *ledger = root.get("ledger");
    const Value *by_asid =
        ledger ? ledger->get("data_bytes_by_asid") : nullptr;
    if (!by_asid)
        return 0;   // untenanted run: section absent by design

    std::printf("\n== per-tenant attribution ==\n");
    std::uint64_t total = ledger->get("data_bytes_total")->asU64();
    const Value *extra = root.get("stats", "extra");
    std::uint64_t sum = 0;
    int rc = 0;
    for (const auto &kv : by_asid->obj) {
        std::uint64_t b = kv.second->asU64();
        sum += b;
        if (kv.first == "0") {
            std::printf("  asid %4s %12llu  (untenanted)\n",
                        kv.first.c_str(),
                        static_cast<unsigned long long>(b));
            continue;
        }
        const std::string prefix = "tenant." + kv.first + ".";
        const Value *sl =
            extra ? extra->get(prefix + "store_lines") : nullptr;
        const Value *mb =
            extra ? extra->get(prefix + "data_bytes") : nullptr;
        std::uint64_t store_lines = sl ? sl->asU64() : 0;
        // Same framing as the global figure: NVM data bytes per byte
        // the tenant logically stored (8 B patch per store).
        double amp = store_lines
                         ? static_cast<double>(b) /
                               (static_cast<double>(store_lines) * 8.0)
                         : 0.0;
        std::printf("  asid %4s %12llu  (%s, amp %.2fx)\n",
                    kv.first.c_str(),
                    static_cast<unsigned long long>(b),
                    human(static_cast<double>(b)).c_str(), amp);
        if (mb && mb->asU64() != b) {
            std::printf("  TENANT LEAK: asid %s ledger says %llu B "
                        "but the tenant manager counted %llu B\n",
                        kv.first.c_str(),
                        static_cast<unsigned long long>(b),
                        static_cast<unsigned long long>(mb->asU64()));
            rc = 1;
        }
    }
    if (sum != total) {
        std::printf("  TENANT ATTRIBUTION GAP: per-ASID bytes sum to "
                    "%llu B, device wrote %llu B of data\n",
                    static_cast<unsigned long long>(sum),
                    static_cast<unsigned long long>(total));
        rc = 1;
    } else {
        std::printf("  attribution exact: per-ASID bytes sum to the "
                    "device data-write total\n");
    }
    return rc;
}

/** (b): epoch-skew histogram from epoch_advance trace events. */
void
analyzeSkew(const Value &trace)
{
    const Value *events = trace.get("traceEvents");
    if (!events || !events->isArray()) {
        std::printf("\n== epoch skew ==\n  no traceEvents in the "
                    "trace file\n");
        return;
    }
    // VD tracks live at tid 16..255; replay advances in ring order
    // and histogram max-min over the VDs seen so far.
    std::map<std::uint64_t, std::uint64_t> epochs;
    std::map<std::uint64_t, std::uint64_t> histogram;
    std::uint64_t samples = 0, peak = 0, lamport = 0;
    for (const auto &ev : events->arr) {
        const Value *name = ev->get("name");
        if (!name || name->str != "epoch_advance")
            continue;
        std::uint64_t tid = ev->get("tid")->asU64();
        if (tid < 16 || tid >= 256)
            continue;
        epochs[tid] = ev->get("args", "epoch")->asU64();
        if (ev->get("args", "lamport") &&
            ev->get("args", "lamport")->asU64() != 0)
            ++lamport;
        std::uint64_t lo = ~0ull, hi = 0;
        for (const auto &kv : epochs) {
            lo = std::min(lo, kv.second);
            hi = std::max(hi, kv.second);
        }
        std::uint64_t skew = hi - lo;
        ++histogram[skew];
        ++samples;
        peak = std::max(peak, skew);
    }
    std::printf("\n== epoch skew across VDs ==\n");
    if (samples == 0) {
        std::printf("  no epoch_advance events in the trace (ring "
                    "overwritten or Cat::Epoch filtered out)\n");
        return;
    }
    std::printf("  %llu advances observed on %zu VDs "
                "(%llu Lamport-forced), peak skew %llu\n",
                static_cast<unsigned long long>(samples),
                epochs.size(),
                static_cast<unsigned long long>(lamport),
                static_cast<unsigned long long>(peak));
    for (const auto &kv : histogram) {
        double share = 100.0 * static_cast<double>(kv.second) /
                       static_cast<double>(samples);
        int bar = static_cast<int>(share / 2.0);
        std::printf("  skew %3llu: %8llu (%5.1f%%) %.*s\n",
                    static_cast<unsigned long long>(kv.first),
                    static_cast<unsigned long long>(kv.second), share,
                    bar,
                    "##################################################");
    }
}

/** (c): mapping-table occupancy and compaction efficiency. */
void
analyzeTables(const Value &root)
{
    const Value *nv = root.get("stats", "nvoverlay");
    std::printf("\n== mapping tables and compaction ==\n");
    if (!nv) {
        std::printf("  no nvoverlay stats section (different "
                    "scheme?)\n");
        return;
    }
    std::uint64_t master_bytes =
        nv->get("master_table_bytes")->asU64();
    std::uint64_t mapped = nv->get("master_mapped_lines")->asU64();
    std::uint64_t table_bytes = nv->get("epoch_table_bytes")->asU64();
    std::uint64_t pool_pages = nv->get("pool_pages_in_use")->asU64();
    std::uint64_t compactions = nv->get("gc_compactions")->asU64();
    std::uint64_t gc_copied = nv->get("gc_bytes_copied")->asU64();

    std::printf("  master table: %s for %llu mapped lines"
                " (%.1f B/line)\n",
                human(static_cast<double>(master_bytes)).c_str(),
                static_cast<unsigned long long>(mapped),
                mapped ? static_cast<double>(master_bytes) /
                             static_cast<double>(mapped)
                       : 0.0);
    std::printf("  per-epoch tables: %s; pool pages in use: %llu\n",
                human(static_cast<double>(table_bytes)).c_str(),
                static_cast<unsigned long long>(pool_pages));

    const Value *data = root.get("stats", "nvm_write_bytes", "data");
    std::uint64_t data_bytes = data ? data->asU64() : 0;
    // Threshold-triggered passes land in gc_compactions; passes the
    // policy engine forces are tallied separately in the extras.
    const Value *pol =
        root.get("stats", "extra", "policy_compactions");
    compactions += pol ? pol->asU64() : 0;
    if (compactions == 0) {
        std::printf("  compaction never triggered\n");
    } else {
        // Efficiency = how little live data each pass had to copy
        // forward to reclaim its source epoch.
        std::printf("  compaction: %llu passes copied %s forward "
                    "(%.2f%% of data writes)\n",
                    static_cast<unsigned long long>(compactions),
                    human(static_cast<double>(gc_copied)).c_str(),
                    data_bytes ? 100.0 *
                                     static_cast<double>(gc_copied) /
                                     static_cast<double>(data_bytes)
                               : 0.0);
    }

    // Occupancy trajectory from the epoch series, when present.
    const Value *series = root.get("epoch_series");
    if (!series)
        return;
    const Value *cols = series->get("columns");
    const Value *rows = series->get("rows");
    if (!cols || !rows || rows->arr.empty())
        return;
    std::ptrdiff_t idx = -1;
    for (std::size_t i = 0; i < cols->arr.size(); ++i)
        if (cols->arr[i]->asString() == "epoch_table_bytes")
            idx = static_cast<std::ptrdiff_t>(i);
    if (idx < 0)
        return;
    std::uint64_t peak = 0;
    for (const auto &row : rows->arr) {
        if (static_cast<std::size_t>(idx) < row->arr.size())
            peak = std::max(
                peak,
                row->arr[static_cast<std::size_t>(idx)]->asU64());
    }
    std::printf("  per-epoch table occupancy peak over the run: %s "
                "(final %s)\n",
                human(static_cast<double>(peak)).c_str(),
                human(static_cast<double>(table_bytes)).c_str());
}

/**
 * --steady: convergence assertion for soak runs (docs/POLICY.md).
 *
 * Splits the epoch series into quarters by row and compares the last
 * quarter (Q4) against the one before it (Q3):
 *
 *   - mean `pool_pages_in_use` (a gauge): a structure still filling
 *     up shows Q4 well above Q3;
 *   - interval write amplification (delta data bytes per delta
 *     stored byte, cumulative columns differenced over the window):
 *     background costs still ramping (walks, compaction churn) show
 *     up here even when occupancy looks flat.
 *
 * Both must agree within 20% relative. Returns 1 on divergence.
 */
int
analyzeSteady(const Value &root)
{
    std::printf("\n== steady-state check ==\n");
    const Value *series = root.get("epoch_series");
    const Value *cols = series ? series->get("columns") : nullptr;
    const Value *rows = series ? series->get("rows") : nullptr;
    if (!cols || !rows || rows->arr.size() < 8) {
        std::printf("  NOT STEADY: epoch series absent or shorter "
                    "than 8 rows; nothing to assert on\n");
        return 1;
    }

    auto colIdx = [&](const char *name) -> std::ptrdiff_t {
        for (std::size_t i = 0; i < cols->arr.size(); ++i)
            if (cols->arr[i]->asString() == name)
                return static_cast<std::ptrdiff_t>(i);
        return -1;
    };
    std::ptrdiff_t c_pool = colIdx("pool_pages_in_use");
    std::ptrdiff_t c_data = colIdx("nvm_write_bytes_data");
    std::ptrdiff_t c_stores = colIdx("stores");
    if (c_pool < 0 || c_data < 0 || c_stores < 0) {
        std::printf("  NOT STEADY: series lacks pool/data/stores "
                    "columns\n");
        return 1;
    }
    auto cell = [&](std::size_t r, std::ptrdiff_t c) {
        return rows->arr[r]->arr[static_cast<std::size_t>(c)]->asU64();
    };

    std::size_t n = rows->arr.size();
    std::size_t q3 = n / 2, q4 = (3 * n) / 4;
    auto poolMean = [&](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        for (std::size_t r = lo; r < hi; ++r)
            sum += static_cast<double>(cell(r, c_pool));
        return sum / static_cast<double>(hi - lo);
    };
    // Interval amplification over [lo, hi): cumulative columns
    // differenced across the window, stores at 8 B each (same
    // framing as the global figure).
    auto ampOver = [&](std::size_t lo, std::size_t hi) {
        double d_data = static_cast<double>(cell(hi - 1, c_data) -
                                            cell(lo, c_data));
        double d_app = 8.0 * static_cast<double>(
                                 cell(hi - 1, c_stores) -
                                 cell(lo, c_stores));
        return d_app > 0.0 ? d_data / d_app : 0.0;
    };

    int rc = 0;
    auto judge = [&](const char *what, double prev, double last) {
        double base = std::max(prev, last);
        double rel = base > 0.0 ? (last > prev ? last - prev
                                               : prev - last) /
                                      base
                                : 0.0;
        bool ok = rel <= 0.20;
        std::printf("  %-22s Q3 %10.2f  Q4 %10.2f  drift %5.1f%% "
                    "%s\n",
                    what, prev, last, 100.0 * rel,
                    ok ? "ok" : "DIVERGING");
        if (!ok)
            rc = 1;
    };
    judge("pool pages in use", poolMean(q3, q4), poolMean(q4, n));
    judge("write amplification", ampOver(q3, q4), ampOver(q4, n));
    if (rc == 0)
        std::printf("  steady: last two quarters agree within 20%%\n");
    return rc;
}

/**
 * (e): telemetry self-consistency (docs/OBSERVABILITY.md). Two
 * invariants the registry must uphold: every histogram's per-bucket
 * occupancies sum exactly to its sample count (the merge path folds
 * shard slots bucket-by-bucket, so any drift means a lost or
 * double-counted sample), and the snapshot carries every registered
 * sim-scope metric (`registered` vs. the sections actually present).
 * Silently skipped (exit 0) for runs without a metrics section.
 */
int
analyzeMetrics(const Value &root)
{
    const Value *metrics = root.get("metrics");
    if (!metrics)
        return 0;   // metrics not armed for this run

    std::printf("\n== telemetry self-consistency ==\n");
    int rc = 0;

    const Value *hists = metrics->get("hists");
    std::size_t checked = 0;
    if (hists) {
        for (const auto &kv : hists->obj) {
            const Value &h = *kv.second;
            std::uint64_t count =
                h.get("count") ? h.get("count")->asU64() : 0;
            const Value *buckets = h.get("buckets");
            std::uint64_t occ = 0;
            if (buckets)
                for (const auto &b : buckets->obj)
                    occ += b.second->asU64();
            ++checked;
            if (occ != count) {
                std::printf("  HISTOGRAM DRIFT: %s buckets hold %llu "
                            "sample(s) but count says %llu\n",
                            kv.first.c_str(),
                            static_cast<unsigned long long>(occ),
                            static_cast<unsigned long long>(count));
                rc = 1;
            }
        }
    }
    if (rc == 0)
        std::printf("  %zu histogram(s): bucket occupancies sum to "
                    "their sample counts\n",
                    checked);

    const Value *registered = metrics->get("registered");
    const Value *counters = metrics->get("counters");
    const Value *gauges = metrics->get("gauges");
    std::size_t present = (counters ? counters->obj.size() : 0) +
                          (gauges ? gauges->obj.size() : 0) +
                          (hists ? hists->obj.size() : 0);
    std::uint64_t expect = registered ? registered->asU64() : 0;
    if (!registered || expect != present) {
        std::printf("  METRIC MISSING: registry registered %llu "
                    "sim-scope metric(s) but the snapshot carries "
                    "%zu\n",
                    static_cast<unsigned long long>(expect), present);
        rc = 1;
    } else {
        std::printf("  snapshot complete: all %llu registered "
                    "metric(s) present\n",
                    static_cast<unsigned long long>(expect));
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string stats_path, trace_path;
    bool steady = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0 && i + 1 < argc) {
            stats_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--steady") == 0) {
            steady = true;
        } else {
            std::fprintf(stderr,
                         "usage: nvo_analyze --stats run.json "
                         "[--trace trace.json] [--steady]\n");
            return 2;
        }
    }
    if (stats_path.empty()) {
        std::fprintf(stderr,
                     "usage: nvo_analyze --stats run.json "
                     "[--trace trace.json] [--steady]\n");
        return 2;
    }

    jsonmini::ValuePtr root = parseFile(stats_path);
    const Value *fmt = root->get("format");
    if (!fmt || fmt->asString() != "nvo-stats-v1") {
        std::fprintf(stderr,
                     "nvo_analyze: '%s' is not an nvo-stats-v1 "
                     "file\n",
                     stats_path.c_str());
        return 2;
    }

    int rc = analyzeLedger(*root);
    rc |= analyzeTenants(*root);
    rc |= analyzeMetrics(*root);
    analyzeTables(*root);
    if (steady)
        rc |= analyzeSteady(*root);
    if (!trace_path.empty())
        analyzeSkew(*parseFile(trace_path));
    return rc;
}
