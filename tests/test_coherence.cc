/**
 * @file
 * Directory-MESI coherence tests against the plain (non-versioned)
 * hierarchy: permission transitions, inclusion, downgrade and
 * invalidation behaviour, plus randomized property tests that hold
 * the structural invariants.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "mem/backing_store.hh"
#include "mem/dram_model.hh"

namespace nvo
{
namespace
{

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest()
        : dram(DramModel::Params{}, &stats)
    {
        Hierarchy::Params p;
        p.numCores = 8;
        p.coresPerVd = 2;
        p.numLlcSlices = 2;
        p.l1.sizeBytes = 4 * 1024;
        p.l2.sizeBytes = 16 * 1024;
        p.llc.sliceBytes = 64 * 1024;
        hier = std::make_unique<Hierarchy>(p, backing, dram, stats);
    }

    RunStats stats;
    BackingStore backing;
    DramModel dram;
    std::unique_ptr<Hierarchy> hier;
    Cycle now = 0;
};

TEST_F(CoherenceTest, LoadFillsAllLevels)
{
    hier->load(0, 0x10000, now);
    const CacheLine *l1 = hier->l1Line(0, 0x10000);
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l1->state, CohState::E);   // sole sharer gets E
    const CacheLine *l2 = hier->l2Line(0, 0x10000);
    ASSERT_NE(l2, nullptr);
    const DirEntry *dir = hier->dirEntry(0x10000);
    ASSERT_NE(dir, nullptr);
    EXPECT_TRUE(dir->isSharer(0));
    EXPECT_EQ(dir->ownerVd, 0);
}

TEST_F(CoherenceTest, SecondVdLoadShares)
{
    hier->load(0, 0x10000, now);
    hier->load(2, 0x10000, now);   // core 2 = VD 1
    const DirEntry *dir = hier->dirEntry(0x10000);
    EXPECT_TRUE(dir->isSharer(0));
    EXPECT_TRUE(dir->isSharer(1));
    EXPECT_EQ(dir->ownerVd, -1);
    EXPECT_EQ(hier->l1Line(0, 0x10000)->state, CohState::S)
        << "remote GETS downgrades the E owner";
    EXPECT_EQ(hier->l1Line(2, 0x10000)->state, CohState::S);
}

TEST_F(CoherenceTest, StoreGainsExclusiveAndDirties)
{
    hier->store(0, 0x10000, nullptr, 8, now);
    const CacheLine *l1 = hier->l1Line(0, 0x10000);
    EXPECT_EQ(l1->state, CohState::M);
    EXPECT_TRUE(l1->dirty);
    const DirEntry *dir = hier->dirEntry(0x10000);
    EXPECT_EQ(dir->ownerVd, 0);
}

TEST_F(CoherenceTest, RemoteStoreInvalidatesSharer)
{
    hier->load(0, 0x10000, now);
    hier->store(2, 0x10000, nullptr, 8, now);
    EXPECT_EQ(hier->l1Line(0, 0x10000), nullptr);
    EXPECT_EQ(hier->l2Line(0, 0x10000), nullptr);
    const DirEntry *dir = hier->dirEntry(0x10000);
    EXPECT_FALSE(dir->isSharer(0));
    EXPECT_EQ(dir->ownerVd, 1);
}

TEST_F(CoherenceTest, RemoteLoadDowngradesOwner)
{
    hier->store(0, 0x10000, nullptr, 8, now);
    hier->load(2, 0x10000, now);
    EXPECT_EQ(hier->l1Line(0, 0x10000)->state, CohState::S);
    EXPECT_FALSE(hier->l1Line(0, 0x10000)->dirty);
    EXPECT_EQ(hier->l1Line(2, 0x10000)->state, CohState::S);
    const DirEntry *dir = hier->dirEntry(0x10000);
    EXPECT_EQ(dir->ownerVd, -1);
    EXPECT_TRUE(dir->isSharer(0));
    EXPECT_TRUE(dir->isSharer(1));
}

TEST_F(CoherenceTest, DirtyTransfersCacheToCacheOnStore)
{
    hier->store(0, 0x10000, nullptr, 8, now);
    SeqNo first_seq = hier->l1Line(0, 0x10000)->seq;
    hier->store(2, 0x10000, nullptr, 8, now);
    const CacheLine *l1 = hier->l1Line(2, 0x10000);
    EXPECT_EQ(l1->state, CohState::M);
    EXPECT_TRUE(l1->dirty);
    EXPECT_GT(l1->seq, first_seq);
}

TEST_F(CoherenceTest, SiblingSharingWithinVd)
{
    hier->store(0, 0x10000, nullptr, 8, now);
    hier->load(1, 0x10000, now);   // sibling core, same VD
    EXPECT_EQ(hier->l1Line(0, 0x10000)->state, CohState::S);
    EXPECT_EQ(hier->l1Line(1, 0x10000)->state, CohState::S);
    const CacheLine *l2 = hier->l2Line(0, 0x10000);
    EXPECT_TRUE(l2->dirty) << "dirty version pulled into the L2";
    const DirEntry *dir = hier->dirEntry(0x10000);
    EXPECT_EQ(dir->ownerVd, 0) << "VD keeps ownership internally";
}

TEST_F(CoherenceTest, SiblingStoreInvalidatesSiblingL1)
{
    hier->load(1, 0x10000, now);
    hier->store(0, 0x10000, nullptr, 8, now);
    EXPECT_EQ(hier->l1Line(1, 0x10000), nullptr);
    EXPECT_EQ(hier->l1Line(0, 0x10000)->state, CohState::M);
}

TEST_F(CoherenceTest, L1HitLatencyIsL1Only)
{
    hier->load(0, 0x10000, now);
    Cycle lat = hier->load(0, 0x10000, now);
    EXPECT_EQ(lat, 4u);
}

TEST_F(CoherenceTest, MissLatencyIncludesLowerLevels)
{
    Cycle lat = hier->load(0, 0x20000, now);
    EXPECT_GE(lat, 4u + 8 + 30);   // L1 + L2 + LLC at least
}

TEST_F(CoherenceTest, StoreCommitUpdatesBackingMeta)
{
    std::uint64_t v = 0x1122334455667788ull;
    hier->store(0, 0x10008, &v, 8, now);
    LineData d;
    backing.readLine(0x10000, d);
    std::uint64_t got;
    std::memcpy(&got, d.bytes.data() + 8, 8);
    EXPECT_EQ(got, v);
    EXPECT_GT(backing.lineSeq(0x10000), 0u);
}

TEST_F(CoherenceTest, SyntheticStoreChangesContent)
{
    hier->store(0, 0x10000, nullptr, 8, now);
    LineData a;
    backing.readLine(0x10000, a);
    hier->store(0, 0x10000, nullptr, 8, now);
    LineData b;
    backing.readLine(0x10000, b);
    EXPECT_NE(a.digest(), b.digest());
}

TEST_F(CoherenceTest, InvariantsAfterDirectedSequence)
{
    for (unsigned c = 0; c < 8; ++c) {
        hier->load(c, 0x30000, now);
        hier->store(c, 0x30000 + c * 64, nullptr, 8, now);
    }
    EXPECT_EQ(hier->checkInvariants(), "");
}

/** Randomized property test parameterized over sharing intensity. */
class CoherenceProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoherenceProperty, RandomTrafficHoldsInvariants)
{
    RunStats stats;
    BackingStore backing;
    DramModel dram(DramModel::Params{}, &stats);
    Hierarchy::Params p;
    p.numCores = 8;
    p.coresPerVd = 2;
    p.numLlcSlices = 2;
    p.l1.sizeBytes = 2 * 1024;
    p.l2.sizeBytes = 8 * 1024;
    p.llc.sliceBytes = 32 * 1024;
    Hierarchy hier(p, backing, dram, stats);

    unsigned addr_space_lines = GetParam();
    Rng rng(addr_space_lines * 7919);
    for (int i = 0; i < 40000; ++i) {
        unsigned core = static_cast<unsigned>(rng.below(8));
        Addr a = 0x100000 + lineAlign(rng.below(addr_space_lines) * 64);
        if (rng.chance(0.4))
            hier.store(core, a, nullptr, 8, 0);
        else
            hier.load(core, a, 0);
        if (i % 8000 == 0) {
            ASSERT_EQ(hier.checkInvariants(), "") << "op " << i;
        }
    }
    EXPECT_EQ(hier.checkInvariants(), "");
    EXPECT_EQ(stats.loads + stats.stores, 0u)
        << "hierarchy does not count refs itself";
    EXPECT_GT(stats.l1Hits + stats.l1Misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sharing, CoherenceProperty,
                         ::testing::Values(8u,      // heavy sharing
                                           256u,    // moderate
                                           16384u   // capacity-driven
                                           ));

} // namespace
} // namespace nvo
