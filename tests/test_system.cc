/**
 * @file
 * Full-system integration tests: stats consistency, crash stops,
 * NVOverlay end-to-end behaviours (walkers, Lamport counts, OMC
 * buffer, bursty epochs), and qualitative cross-scheme ordering.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"

namespace nvo
{
namespace
{

Config
cfgSmall()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    cfg.set("wl.btree.prefill", std::uint64_t(1024));
    cfg.set("wl.hashtable.prefill", std::uint64_t(1024));
    cfg.set("wl.rbtree.prefill", std::uint64_t(1024));
    cfg.set("wl.art.prefill", std::uint64_t(1024));
    return cfg;
}

TEST(SystemTest, StatsAreConsistent)
{
    setQuiet(true);
    System sys(cfgSmall(), "nvoverlay", "btree");
    sys.run();
    const RunStats &st = sys.stats();
    EXPECT_EQ(st.loads + st.stores, st.refs);
    EXPECT_GE(st.instructions, st.refs);
    EXPECT_EQ(st.l1Hits + st.l1Misses, st.refs);
    EXPECT_GT(st.cycles, 0u);
    // Bandwidth series total equals total NVM write bytes.
    std::uint64_t series = 0;
    for (auto b : st.nvmBandwidth.buckets())
        series += b;
    EXPECT_EQ(series, st.totalNvmWriteBytes());
}

TEST(SystemTest, RunUntilStopsEarly)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    cfg.set("wl.ops", std::uint64_t(100000));
    System sys(cfg, "none", "btree");
    bool done = sys.runUntil(50000);
    EXPECT_FALSE(done);
    EXPECT_GE(sys.now(), 50000u);
    EXPECT_LT(sys.now(), 60000u) << "stops within a few quanta";
}

TEST(SystemTest, WorkloadCompletionIsExact)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    System sys(cfg, "none", "hashtable");
    sys.run();
    EXPECT_EQ(sys.workload().opsCompleted(), 400u * 8);
    EXPECT_TRUE(sys.done());
}

TEST(SystemTest, NvoWalkersMakeProgress)
{
    setQuiet(true);
    System sys(cfgSmall(), "nvoverlay", "btree");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_GT(sys.stats().tagWalkWriteBacks, 0u);
    EXPECT_GT(scheme.walker(0).walksCompleted(), 0u);
    EXPECT_GT(scheme.backend().recEpoch(), 0u);
    EXPECT_GT(sys.stats().epochAdvances, 0u);
}

TEST(SystemTest, NvoLamportSyncHappensUnderSharing)
{
    setQuiet(true);
    // The hashtable global lock forces cross-VD version observation.
    System sys(cfgSmall(), "nvoverlay", "hashtable");
    sys.run();
    EXPECT_GT(sys.stats().lamportAdvances, 0u);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_TRUE(scheme.senseTracker().skewWithinBound());
}

TEST(SystemTest, NvoWithoutWalkerStillCorrectButNoRecEpoch)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    cfg.set("nvo.walker_enabled", "false");
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_EQ(sys.stats().tagWalkWriteBacks, 0u);
    EXPECT_EQ(scheme.backend().recEpoch(), 0u)
        << "rec-epoch cannot advance without min-ver certificates";
    EXPECT_EQ(sys.hierarchy().checkInvariants(), "")
        << "protocol correctness does not rely on the walker";
}

TEST(SystemTest, OmcBufferReducesNvmWrites)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    // One long epoch maximizes redundant same-epoch write backs
    // (the Fig. 16 setup).
    cfg.set("epoch.stores_global", std::uint64_t(1) << 40);
    System plain(cfg, "nvoverlay", "kmeans");
    plain.run();

    Config buf_cfg = cfg;
    buf_cfg.set("mnm.use_buffer", "true");
    buf_cfg.set("mnm.buffer_mb", std::uint64_t(4));
    System buffered(buf_cfg, "nvoverlay", "kmeans");
    buffered.run();

    EXPECT_LT(buffered.stats().nvmDataBytes(),
              plain.stats().nvmDataBytes());
    EXPECT_GT(buffered.stats().omcBufferHits, 0u);
}

TEST(SystemTest, BurstyEpochsIncreaseAdvanceCount)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    System sys(cfg, "nvoverlay", "btree");
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    sys.runUntil(200000);
    std::uint64_t before = sys.stats().epochAdvances;
    scheme.setStoresPerEpochVd(50);   // watch-point burst
    sys.runUntil(400000);
    std::uint64_t during = sys.stats().epochAdvances - before;
    EXPECT_GT(during, 10u) << "bursty epochs advance rapidly";
}

TEST(SystemTest, SwSchemesSlowerThanHardware)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    std::uint64_t cycles_none, cycles_swlog, cycles_nvo;
    {
        System sys(cfg, "none", "btree");
        sys.run();
        cycles_none = sys.stats().cycles;
    }
    {
        System sys(cfg, "swlog", "btree");
        sys.run();
        cycles_swlog = sys.stats().cycles;
    }
    {
        System sys(cfg, "nvoverlay", "btree");
        sys.run();
        cycles_nvo = sys.stats().cycles;
    }
    EXPECT_GT(cycles_swlog, 2 * cycles_none)
        << "per-store barriers dominate";
    EXPECT_LT(cycles_nvo, cycles_swlog);
}

TEST(SystemTest, WriteAmpOrderingPiclAboveNvo)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    cfg.set("wl.ops", std::uint64_t(1500));
    cfg.set("wl.rbtree.prefill", std::uint64_t(16384));
    std::uint64_t bytes_nvo, bytes_picl;
    {
        System sys(cfg, "nvoverlay", "rbtree");
        sys.run();
        bytes_nvo = sys.stats().totalNvmWriteBytes();
    }
    {
        System sys(cfg, "picl", "rbtree");
        sys.run();
        bytes_picl = sys.stats().totalNvmWriteBytes();
    }
    EXPECT_GT(bytes_picl, bytes_nvo)
        << "logging writes both log and data (Fig. 12 shape)";
}

TEST(SystemTest, EpochSkewStaysBounded)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    System sys(cfg, "nvoverlay", "vacation");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_TRUE(scheme.senseTracker().skewWithinBound())
        << "inter-VD skew below half the 16-bit epoch space";
}

TEST(SystemTest, InvariantsHoldForEverySchemeOnSharedWorkload)
{
    setQuiet(true);
    for (const char *scheme :
         {"none", "nvoverlay", "swlog", "swshadow", "hwshadow",
          "picl", "picl-l2"}) {
        Config cfg = cfgSmall();
        cfg.set("wl.ops", std::uint64_t(150));
        System sys(cfg, scheme, "vacation");
        sys.run();
        EXPECT_EQ(sys.hierarchy().checkInvariants(), "") << scheme;
    }
}

} // namespace
} // namespace nvo
