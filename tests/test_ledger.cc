/**
 * @file
 * Version-lifecycle provenance ledger: the per-version state machine
 * in isolation, then the two whole-system invariants it exists to
 * check — completeness (every inserted version terminates; a clean
 * finalize leaves no Inserted entry behind) and attribution (the
 * per-cause byte tallies sum exactly to the Data row of
 * RunStats::nvmWriteBytes, because MnmBackend::deviceWrite is the
 * only data-write path). The seeded `mnm.test_drop_merge` bug proves
 * the leak detector actually detects: a backend that silently skips
 * merges must show up as thousands of leaked versions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/audit.hh"
#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "obs/json.hh"
#include "obs/ledger.hh"

namespace nvo
{
namespace
{

Config
smallConfig()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(800));
    cfg.set("wl.btree.prefill", std::uint64_t(1024));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    cfg.set("ledger.enabled", "true");
    return cfg;
}

/** Arm the global ledger directly (unit tests bypass configure()). */
class ArmedLedger
{
  public:
    ArmedLedger()
    {
        obs::ledger().setArmed(true);
        obs::ledger().reset();
    }
    ~ArmedLedger()
    {
        obs::ledger().reset();
        obs::ledger().setArmed(false);
    }
};

TEST(Ledger, LifecycleStateMachine)
{
    if (!obs::ledgerCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    ArmedLedger armed;
    obs::Ledger &led = obs::ledger();

    // seal -> insert -> merge is the common path.
    led.seal(0, 0x1000, 5, 10);
    EXPECT_EQ(led.sealedCount(), 1u);
    led.insertVersion(0, 0x1000, 5, obs::LedgerCause::Capacity, 20);
    EXPECT_EQ(led.insertedCount(), 1u);
    EXPECT_EQ(led.liveInserted(), 1u);
    led.merged(0, 0x1000, 5, false, 30);
    EXPECT_EQ(led.mergedCount(), 1u);
    EXPECT_EQ(led.liveInserted(), 0u);

    // Re-seal of the same version is idempotent (counter is
    // cumulative across versions: 0x1000 then 0x2000).
    led.seal(1, 0x2000, 5, 40);
    led.seal(1, 0x2000, 5, 41);
    EXPECT_EQ(led.sealedCount(), 2u);
    EXPECT_EQ(led.provsAssigned(), 2u);

    // Insert without a prior seal (buffered/late arrivals) works and
    // a repeat insert counts as an overwrite, not a second live
    // version. Sealed-only entries are not "live inserted" — they
    // never reached an OMC.
    led.insertVersion(1, 0x3000, 7, obs::LedgerCause::TagWalk, 50);
    led.insertVersion(1, 0x3000, 7, obs::LedgerCause::TagWalk, 51);
    EXPECT_EQ(led.overwriteCount(), 1u);
    EXPECT_EQ(led.liveInserted(), 1u);

    // Late-merge terminates. Dropping a Merged entry is a genuine
    // exit (a newer version superseded the master mapping).
    led.merged(1, 0x3000, 7, true, 60);
    EXPECT_EQ(led.lateMergedCount(), 1u);
    EXPECT_EQ(led.liveInserted(), 0u);
    led.dropped(1, 0x3000, 7, 61);
    EXPECT_EQ(led.droppedCount(), 1u);
    led.dropped(1, 0x3000, 7, 62);
    EXPECT_EQ(led.droppedCount(), 1u) << "Dropped is terminal";

    // Compacted is terminal too: the move's master-entry unref must
    // not re-terminate the version as Dropped.
    led.insertVersion(0, 0x4000, 8, obs::LedgerCause::EpochFlush, 70);
    led.compacted(0, 0x4000, 8, 9, 80);
    EXPECT_EQ(led.compactedCount(), 1u);
    led.dropped(0, 0x4000, 8, 81);
    EXPECT_EQ(led.droppedCount(), 1u) << "Compacted is terminal";

    led.dataWrite(obs::LedgerCause::Capacity, 64);
    led.dataWrite(obs::LedgerCause::CompactionCopy, 128);
    EXPECT_EQ(led.dataBytes(obs::LedgerCause::Capacity), 64u);
    EXPECT_EQ(led.dataBytesTotal(), 192u);

    led.reset();
    EXPECT_EQ(led.liveInserted(), 0u);
    EXPECT_EQ(led.dataBytesTotal(), 0u);
    EXPECT_TRUE(led.armed()) << "reset keeps the armed flag";
}

TEST(Ledger, DisarmedHooksRecordNothing)
{
    obs::ledger().setArmed(false);
    obs::ledger().reset();
    NVO_LEDGER(seal(0, 0x1000, 3, 5));
    NVO_LEDGER(dataWrite(obs::LedgerCause::Capacity, 64));
    EXPECT_EQ(obs::ledger().sealedCount(), 0u);
    EXPECT_EQ(obs::ledger().dataBytesTotal(), 0u);
}

/** Run a full system and return it with the global ledger still
 *  holding the run's entries (caller must reset). */
void
checkRunInvariants(Config cfg, const std::string &workload)
{
    setQuiet(true);
    System sys(cfg, "nvoverlay", workload);
    sys.run();

    obs::Ledger &led = obs::ledger();
    EXPECT_EQ(led.liveInserted(), 0u)
        << workload << ": versions leaked in Inserted state";
    led.forEachLeak([&](Addr a, EpochWide oid,
                        const obs::Ledger::Entry &) {
        ADD_FAILURE() << workload << ": leaked line " << std::hex << a
                      << " oid " << std::dec << oid;
    });
    EXPECT_GT(led.insertedCount(), 0u)
        << workload << ": run produced no versions at all";
    EXPECT_EQ(led.dataBytesTotal(),
              sys.stats().nvmWriteBytes[static_cast<std::size_t>(
                  NvmWriteKind::Data)])
        << workload << ": per-cause tallies must sum to the Data row";

    obs::ledger().reset();
    obs::ledger().setArmed(false);
}

TEST(LedgerIntegration, BtreeCompletesAndAttributes)
{
    if (!obs::ledgerCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    checkRunInvariants(smallConfig(), "btree");
}

TEST(LedgerIntegration, KmeansCompletesAndAttributes)
{
    if (!obs::ledgerCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    checkRunInvariants(smallConfig(), "kmeans");
}

TEST(LedgerIntegration, CompactionRunStaysBalanced)
{
    if (!obs::ledgerCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    if (audit::enabled)
        GTEST_SKIP()
            << "pool starvation + auto_reclaim trips the audit "
               "sweep's in_live_sub_page assertion on this geometry "
               "even without the ledger (pre-existing; reproducible "
               "on the unmodified tree with the same nvo_sim flags)";
    Config cfg = smallConfig();
    // Starve the pool so compaction actually moves versions; the
    // CompactionCopy cause and the Compacted terminal state must
    // still balance the books.
    cfg.set("mnm.pool_mb_per_omc", std::uint64_t(1));
    cfg.set("mnm.compaction_threshold", "0.02");
    cfg.set("mnm.auto_reclaim", "true");
    checkRunInvariants(cfg, "btree");
}

TEST(LedgerIntegration, SeededDropMergeBugLeaks)
{
    if (!obs::ledgerCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    if (audit::enabled)
        GTEST_SKIP() << "NVO_AUDIT's merge-completeness sweep aborts "
                        "on the seeded bug before the ledger reports";
    setQuiet(true);
    Config cfg = smallConfig();
    cfg.set("mnm.test_drop_merge", "true");
    System sys(cfg, "nvoverlay", "btree");
    sys.run();

    EXPECT_GT(obs::ledger().liveInserted(), 0u)
        << "dropping every 5th merge must show up as leaks";
    std::uint64_t seen = 0;
    obs::ledger().forEachLeak(
        [&](Addr, EpochWide, const obs::Ledger::Entry &e) {
            ++seen;
            EXPECT_EQ(e.state, obs::VerState::Inserted);
        });
    EXPECT_EQ(seen, obs::ledger().liveInserted());

    obs::ledger().reset();
    obs::ledger().setArmed(false);
}

TEST(LedgerIntegration, JsonSectionIsBalanced)
{
    if (!obs::ledgerCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    ArmedLedger armed;
    obs::Ledger &led = obs::ledger();
    led.seal(0, 0x1000, 2, 1);
    led.insertVersion(0, 0x1000, 2, obs::LedgerCause::StoreEvict, 2);
    led.dataWrite(obs::LedgerCause::StoreEvict, 64);

    std::ostringstream os;
    {
        obs::JsonWriter w(os);
        led.writeJson(w);
        EXPECT_TRUE(w.balanced());
    }
    const std::string text = os.str();
    EXPECT_NE(text.find("\"leaked\":1"), std::string::npos) << text;
    EXPECT_NE(text.find("\"store-evict\""), std::string::npos) << text;
}

} // namespace
} // namespace nvo
