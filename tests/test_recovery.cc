/**
 * @file
 * Crash-recovery correctness: the headline property (DESIGN.md
 * Sec. 2). Full-system runs crash at arbitrary points; recovery
 * rebuilds the image from the persistent master table and the result
 * must equal, per line, the last committed store with epoch <=
 * rec-epoch. Parameterized across workloads, seeds, epoch lengths,
 * VD widths, and crash points.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"
#include "nvoverlay/snapshot_reader.hh"

namespace nvo
{
namespace
{

Config
recoveryConfig()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("wl.btree.prefill", std::uint64_t(2048));
    cfg.set("wl.art.prefill", std::uint64_t(2048));
    cfg.set("wl.rbtree.prefill", std::uint64_t(2048));
    cfg.set("wl.hashtable.prefill", std::uint64_t(2048));
    cfg.set("sim.track_writes", "true");
    return cfg;
}

/** Run, optionally crash, recover, and check the theorem. */
void
checkRecovery(Config cfg, const std::string &workload, Cycle crash_at)
{
    setQuiet(true);
    System sys(cfg, "nvoverlay", workload);
    bool completed;
    if (crash_at == 0) {
        sys.run();
        completed = true;
    } else {
        completed = sys.runUntil(crash_at);
    }
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());

    ASSERT_EQ(sys.hierarchy().checkInvariants(), "");
    WriteTracker *tracker = sys.tracker();
    ASSERT_NE(tracker, nullptr);
    ASSERT_TRUE(tracker->epochsMonotonic());

    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    EXPECT_EQ(RecoveryManager::validate(result, scheme.backend()), "");
    if (completed && crash_at == 0) {
        EXPECT_GT(result.recEpoch, 0u)
            << "clean finalize certifies every epoch";
    }

    unsigned mismatches = 0;
    unsigned checked = 0;
    for (Addr line : tracker->trackedLines()) {
        auto expect = tracker->expectedDigest(line, result.recEpoch);
        if (!expect)
            continue;
        ++checked;
        LineData got;
        result.image->readLine(line, got);
        if (got.digest() != *expect)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u)
        << workload << " crash@" << crash_at << " rec="
        << result.recEpoch << " checked=" << checked;
    if (result.recEpoch > 0) {
        EXPECT_GT(checked, 0u);
    }
}

using RecoveryParam = std::tuple<std::string, std::uint64_t>;

class RecoveryAcrossWorkloads
    : public ::testing::TestWithParam<RecoveryParam>
{
};

TEST_P(RecoveryAcrossWorkloads, CleanShutdownRecovers)
{
    auto [wl, seed] = GetParam();
    Config cfg = recoveryConfig();
    cfg.set("wl.seed", seed);
    checkRecovery(cfg, wl, 0);
}

TEST_P(RecoveryAcrossWorkloads, MidRunCrashRecovers)
{
    auto [wl, seed] = GetParam();
    Config cfg = recoveryConfig();
    cfg.set("wl.seed", seed);
    checkRecovery(cfg, wl, 400000 + seed * 137000);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryAcrossWorkloads,
    ::testing::Values(RecoveryParam{"btree", 1},
                      RecoveryParam{"btree", 2},
                      RecoveryParam{"hashtable", 1},
                      RecoveryParam{"rbtree", 3},
                      RecoveryParam{"kmeans", 1},
                      RecoveryParam{"ssca2", 2},
                      RecoveryParam{"vacation", 1}));

class RecoveryEpochSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RecoveryEpochSweep, EpochLengthDoesNotBreakRecovery)
{
    Config cfg = recoveryConfig();
    cfg.set("epoch.stores_global", GetParam());
    checkRecovery(cfg, "btree", 900000);
}

INSTANTIATE_TEST_SUITE_P(EpochSizes, RecoveryEpochSweep,
                         ::testing::Values(1000u, 8000u, 64000u,
                                           1u << 20));

class RecoveryVdSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RecoveryVdSweep, VdWidthDoesNotBreakRecovery)
{
    Config cfg = recoveryConfig();
    cfg.set("sys.cores_per_vd", std::uint64_t(GetParam()));
    checkRecovery(cfg, "hashtable", 700000);
}

INSTANTIATE_TEST_SUITE_P(VdWidths, RecoveryVdSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Recovery, WithOmcBuffer)
{
    Config cfg = recoveryConfig();
    cfg.set("mnm.use_buffer", "true");
    cfg.set("mnm.buffer_mb", std::uint64_t(1));
    checkRecovery(cfg, "btree", 800000);
}

TEST(Recovery, WithDroppedMergedTables)
{
    Config cfg = recoveryConfig();
    cfg.set("mnm.drop_merged_tables", "true");
    checkRecovery(cfg, "btree", 0);
}

TEST(Recovery, ImageMatchesMasterExactly)
{
    setQuiet(true);
    Config cfg = recoveryConfig();
    System sys(cfg, "nvoverlay", "vacation");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    std::uint64_t mapped =
        scheme.backend().masterMappedLinesTotal();
    EXPECT_EQ(result.linesRestored, mapped);
    EXPECT_GT(result.modelCycles, 0u);
}

TEST(TimeTravel, SnapshotReaderMatchesHistory)
{
    setQuiet(true);
    Config cfg = recoveryConfig();
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    SnapshotReader reader(scheme.backend());
    WriteTracker *tracker = sys.tracker();
    EpochWide rec = scheme.backend().recEpoch();
    ASSERT_GT(rec, 2u);

    // Every line, at every epoch up to rec-epoch: the fall-through
    // read equals the last store at or before that epoch.
    unsigned checked = 0, mismatches = 0;
    for (Addr line : tracker->trackedLines()) {
        for (EpochWide e = 1; e <= rec; e += 3) {
            auto expect = tracker->expectedDigest(line, e);
            auto got = reader.readLine(line, e);
            if (!expect) {
                EXPECT_FALSE(got.has_value())
                    << "no store yet at epoch " << e;
                continue;
            }
            ASSERT_TRUE(got.has_value());
            ++checked;
            if (got->data.digest() != *expect)
                ++mismatches;
        }
        if (checked > 4000)
            break;
    }
    EXPECT_EQ(mismatches, 0u);
    EXPECT_GT(checked, 100u);
}

TEST(TimeTravel, TypedReadSpansLines)
{
    setQuiet(true);
    Config cfg = recoveryConfig();
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    SnapshotReader reader(scheme.backend());
    EpochWide rec = scheme.backend().recEpoch();

    Addr probe = invalidAddr;
    scheme.backend().forEachMasterEntry(
        [&](Addr line, const MasterTable::Entry &) {
            if (probe == invalidAddr)
                probe = line;
        });
    ASSERT_NE(probe, invalidAddr);
    auto v = reader.readValue<std::uint64_t>(probe, rec);
    ASSERT_TRUE(v.has_value());
}

} // namespace
} // namespace nvo
