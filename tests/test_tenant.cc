/**
 * @file
 * Multi-tenant snapshotting (docs/MULTITENANCY.md): ASID-tagged
 * version keys, per-tenant recovery, quota/QoS enforcement, and the
 * per-tenant accounting invariants.
 *
 * The headline isolation property: tenant A's snapshot and recovery
 * are byte-identical whether A runs solo or interleaved with any
 * co-tenant activity, and co-tenant misbehaviour surfaces only as
 * that tenant's own stalls/rejections — never as holes or content
 * changes in A's image.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "fault/crash_sim.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "mem/nvm_model.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/recovery.hh"
#include "nvoverlay/snapshot_reader.hh"
#include "tenant/tenant.hh"

namespace nvo
{
namespace
{

LineData
lineOf(std::uint8_t fill)
{
    LineData d;
    d.bytes.fill(fill);
    return d;
}

class TenantBackendTest : public ::testing::Test
{
  protected:
    TenantBackendTest() : nvm(NvmModel::Params{}, &stats)
    {
        params.numOmcs = 2;
        params.numVds = 2;
        params.poolBytesPerOmc = 1ull << 22;
        backend = std::make_unique<MnmBackend>(params, nvm, stats);
    }

    void
    rebuild()
    {
        backend = std::make_unique<MnmBackend>(params, nvm, stats);
    }

    /** Tenant @p asid's deterministic insert schedule: @p epochs
     *  epochs over @p lines lines of its private arena, content a
     *  pure function of (asid, epoch, line). Per-tenant sequence
     *  numbers, so the schedule is identical solo or interleaved. */
    void
    playTenant(tenant::Asid asid, unsigned epochs, unsigned lines)
    {
        SeqNo &seq = seqOf[asid];
        for (unsigned e = 1; e <= epochs; ++e)
            for (unsigned i = 0; i < lines; ++i)
                backend->insertVersion(
                    tenant::tag(asid, 0x10000 + i * 64), e, ++seq,
                    lineOf(static_cast<std::uint8_t>(
                        asid * 32 + e * 8 + (i % 8))),
                    0);
    }

    void
    certify(EpochWide min_ver)
    {
        backend->reportMinVer(0, min_ver, 0);
        backend->reportMinVer(1, min_ver, 0);
    }

    RunStats stats;
    NvmModel nvm;
    MnmBackend::Params params;
    std::unique_ptr<MnmBackend> backend;
    std::map<tenant::Asid, SeqNo> seqOf;
};

TEST_F(TenantBackendTest, CoTenantsShareTablesWithoutCollisions)
{
    // Four tenants write the SAME local addresses; the tag keeps
    // every (asid, line, OID) key distinct in the shared tables.
    for (tenant::Asid a = 1; a <= 4; ++a)
        playTenant(a, 2, 8);
    certify(3);
    for (tenant::Asid a = 1; a <= 4; ++a) {
        LineData out;
        ASSERT_TRUE(
            backend->readMaster(tenant::tag(a, 0x10000), out));
        EXPECT_EQ(out, lineOf(static_cast<std::uint8_t>(a * 32 + 16)))
            << "tenant " << a << " reads its own newest version";
    }
}

TEST_F(TenantBackendTest, TenantRecoveryIgnoresCoTenantActivity)
{
    // Solo run of tenant 1.
    playTenant(1, 3, 16);
    certify(4);
    RecoveryManager solo_rm(*backend);
    auto solo = solo_rm.recoverTenant(1);
    EXPECT_EQ(RecoveryManager::validateTenant(solo, *backend, 1), "");
    ASSERT_EQ(solo.linesRestored, 16u);

    // Same tenant-1 schedule interleaved with three noisy co-tenants
    // hammering the same local address range.
    seqOf.clear();
    rebuild();
    for (unsigned e = 1; e <= 3; ++e) {
        for (tenant::Asid a = 1; a <= 4; ++a) {
            SeqNo &seq = seqOf[a];
            for (unsigned i = 0; i < (a == 1 ? 16u : 24u); ++i)
                backend->insertVersion(
                    tenant::tag(a, 0x10000 + i * 64), e, ++seq,
                    lineOf(static_cast<std::uint8_t>(
                        a * 32 + e * 8 + (i % 8))),
                    0);
        }
    }
    certify(4);
    RecoveryManager rm(*backend);
    auto mixed = rm.recoverTenant(1);
    EXPECT_EQ(RecoveryManager::validateTenant(mixed, *backend, 1), "");

    // Byte-identical isolation: same rec-epoch, same line count, and
    // the same content at every line of tenant 1's image.
    EXPECT_EQ(mixed.recEpoch, solo.recEpoch);
    EXPECT_EQ(mixed.linesRestored, solo.linesRestored);
    for (unsigned i = 0; i < 16; ++i) {
        Addr line = tenant::tag(1, 0x10000 + i * 64);
        LineData a, b;
        solo.image->readLine(line, a);
        mixed.image->readLine(line, b);
        EXPECT_EQ(a, b) << "line " << i;
    }
}

TEST_F(TenantBackendTest, TenantRecoveriesPartitionFullRecovery)
{
    playTenant(1, 2, 8);
    playTenant(2, 2, 12);
    playTenant(3, 1, 4);
    backend->insertVersion(0x50000, 1, 1, lineOf(9), 0);   // asid 0
    certify(3);

    RecoveryManager rm(*backend);
    auto full = rm.recover();
    EXPECT_EQ(RecoveryManager::validate(full, *backend), "");

    std::uint64_t sum = 0;
    for (tenant::Asid a = 0; a <= 3; ++a) {
        auto r = rm.recoverTenant(a);
        EXPECT_EQ(RecoveryManager::validateTenant(r, *backend, a), "")
            << "asid " << a;
        sum += r.linesRestored;
    }
    EXPECT_EQ(sum, full.linesRestored)
        << "per-tenant images partition the full image";
}

TEST_F(TenantBackendTest, TenantRecoverySurvivesCrashRebuild)
{
    for (tenant::Asid a = 1; a <= 3; ++a)
        playTenant(a, 3, 8);
    certify(4);
    // Crash: volatile per-epoch tables drop, then rebuild from the
    // persistent sub-page headers — tenant subtrees must reassemble.
    backend->dropVolatileTables();
    backend->rebuildTables();

    RecoveryManager rm(*backend);
    for (tenant::Asid a = 1; a <= 3; ++a) {
        auto r = rm.recoverTenant(a);
        EXPECT_EQ(RecoveryManager::validateTenant(r, *backend, a), "")
            << "asid " << a;
        EXPECT_EQ(r.linesRestored, 8u);
        LineData out;
        r.image->readLine(tenant::tag(a, 0x10000), out);
        EXPECT_EQ(out,
                  lineOf(static_cast<std::uint8_t>(a * 32 + 24)));
    }
}

TEST_F(TenantBackendTest, QuotaHardCapThrottlesButNeverDrops)
{
    tenant::TenantManager::Params qp;
    qp.quotaLines = 8;
    qp.quotaPenaltyBytes = 4096;
    tenant::TenantManager tm(qp, stats);
    tm.setOccupancyFn(
        [this](tenant::Asid a) { return backend->poolLinesOf(a); });
    backend->setTenantManager(&tm);

    playTenant(1, 1, 64);   // 8x over the hard cap
    const auto *t = tm.tenant(1);
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->quotaRejections, 0u) << "over-cap inserts priced";
    EXPECT_GT(tm.throttleStall(1, 0), 0u)
        << "penalty debt back-pressures the offender";
    EXPECT_EQ(tm.throttleStall(2, 0), 0u)
        << "co-tenants absorb none of the penalty";

    // Never silently dropped: every line is still in the snapshot.
    certify(2);
    unsigned present = 0;
    LineData out;
    for (unsigned i = 0; i < 64; ++i)
        if (backend->readMaster(tenant::tag(1, 0x10000 + i * 64),
                                out))
            ++present;
    EXPECT_EQ(present, 64u);
    backend->setTenantManager(nullptr);
}

TEST_F(TenantBackendTest, PerTenantDataBytesSumExactly)
{
    tenant::TenantManager tm({}, stats);
    backend->setTenantManager(&tm);
    playTenant(1, 2, 16);
    playTenant(2, 1, 32);
    playTenant(7, 3, 4);
    tm.exportStats();
    std::uint64_t sum = 0;
    for (tenant::Asid a : {1, 2, 7})
        sum += stats.extra["tenant." + std::to_string(a) +
                           ".data_bytes"];
    EXPECT_EQ(sum, stats.nvmDataBytes())
        << "all-tagged traffic: per-tenant tallies are exhaustive";
    backend->setTenantManager(nullptr);
}

TEST(TenantQos, TokenBucketConvertsDebtToStalls)
{
    RunStats stats;
    tenant::TenantManager::Params qp;
    qp.qosBytesPerKCycle = 64;
    qp.qosBurstBytes = 128;
    tenant::TenantManager tm(qp, stats);

    // Burn through the burst at cycle 0: debt accrues.
    for (int i = 0; i < 8; ++i)
        tm.onInsert(1, 64, 0);
    Cycle stall = tm.throttleStall(1, 0);
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(tm.tenant(1)->throttleStallCycles, stall);
    // The stall repaid the debt; an idle stretch earns tokens back
    // and the next store passes free.
    tm.onInsert(1, 64, stall + 100000);
    EXPECT_EQ(tm.throttleStall(1, stall + 100000), 0u);
    // An untouched tenant never stalls.
    EXPECT_EQ(tm.throttleStall(2, 0), 0u);
    // ASID 0 (untenanted) is never managed.
    tm.onInsert(0, 1 << 20, 0);
    EXPECT_EQ(tm.throttleStall(0, 0), 0u);
    EXPECT_EQ(tm.tenant(0), nullptr);
}

TEST(TenantCompaction, OrderServesOccupiedTenantsFirst)
{
    RunStats stats;
    tenant::TenantManager tm({}, stats);
    tm.setOccupancyFn([](tenant::Asid a) {
        return a == 2 ? 100u : 10u;   // tenant 2 dominates the pool
    });
    std::vector<Addr> lines = {
        tenant::tag(1, 0x1000), tenant::tag(2, 0x2000),
        tenant::tag(1, 0x1040), tenant::tag(3, 0x3000),
        tenant::tag(2, 0x2040)};
    tm.orderForCompaction(lines);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(tenant::asidOf(lines[0]), 2u);
    EXPECT_EQ(tenant::asidOf(lines[1]), 2u)
        << "heaviest occupant compacted first";
}

/** Full-system multi-tenant runs over the KV-service workload. */
Config
tenantSystemConfig(unsigned tenants)
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(300));
    cfg.set("tenant.enabled", std::uint64_t(1));
    cfg.set("wl.kv.tenants", std::uint64_t(tenants));
    cfg.set("wl.kv.keys", std::uint64_t(512));
    return cfg;
}

TEST(TenantSystem, KvServiceRunsAreDeterministic)
{
    setQuiet(true);
    auto run = [] {
        System sys(tenantSystemConfig(4), "nvoverlay", "kv_service");
        sys.run();
        RunStats st = sys.stats();
        // Host wall-clock timings are the one legitimately
        // nondeterministic stat; everything simulated must reproduce.
        for (auto it = st.extra.begin(); it != st.extra.end();)
            it = it->first.rfind("host_", 0) == 0 ? st.extra.erase(it)
                                                  : std::next(it);
        return st;
    };
    RunStats a = run();
    RunStats b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nvmDataBytes(), b.nvmDataBytes());
    EXPECT_EQ(a.extra, b.extra) << "per-tenant tallies reproduce";
}

TEST(TenantSystem, EveryTenantRecoversWhileOthersLive)
{
    setQuiet(true);
    constexpr unsigned tenants = 4;
    System sys(tenantSystemConfig(tenants), "nvoverlay",
               "kv_service");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());

    RecoveryManager rm(scheme.backend());
    auto full = rm.recover();
    EXPECT_EQ(RecoveryManager::validate(full, scheme.backend()), "");
    ASSERT_GT(full.recEpoch, 0u);

    // Each tenant recovers independently — the co-tenants' state is
    // untouched, and the per-tenant images partition the full image
    // line-for-line, content included.
    std::uint64_t sum = 0;
    for (tenant::Asid a = 0; a <= tenants; ++a) {
        auto r = rm.recoverTenant(a);
        EXPECT_EQ(RecoveryManager::validateTenant(
                      r, scheme.backend(), a),
                  "")
            << "asid " << a;
        EXPECT_EQ(r.recEpoch, full.recEpoch);
        sum += r.linesRestored;
        if (a == 0)
            continue;
        EXPECT_GT(r.linesRestored, 0u) << "tenant " << a << " wrote";
        unsigned mismatches = 0;
        scheme.backend().forEachMasterEntry(
            [&](Addr line, const MasterTable::Entry &) {
                if (tenant::asidOf(line) != a)
                    return;
                LineData mine, whole;
                r.image->readLine(line, mine);
                full.image->readLine(line, whole);
                if (!(mine == whole))
                    ++mismatches;
            });
        EXPECT_EQ(mismatches, 0u) << "asid " << a;
    }
    EXPECT_EQ(sum, full.linesRestored);
}

TEST(TenantSystem, SnapshotReaderResolvesTenantLocalAddresses)
{
    setQuiet(true);
    System sys(tenantSystemConfig(2), "nvoverlay", "kv_service");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    SnapshotReader reader(scheme.backend());
    EpochWide rec = scheme.backend().recEpoch();
    ASSERT_GT(rec, 0u);

    // readTenantLine(asid, local) is readLine(tag(asid, local)).
    Addr probe = invalidAddr;
    scheme.backend().forEachMasterEntry(
        [&](Addr line, const MasterTable::Entry &) {
            if (probe == invalidAddr && tenant::asidOf(line) == 1)
                probe = line;
        });
    ASSERT_NE(probe, invalidAddr);
    auto direct = reader.readLine(probe, rec);
    auto local = reader.readTenantLine(1, tenant::untag(probe), rec);
    ASSERT_TRUE(direct.has_value());
    ASSERT_TRUE(local.has_value());
    EXPECT_EQ(direct->data, local->data);
    EXPECT_EQ(direct->epoch, local->epoch);
}

TEST(TenantSystem, CrashCampaignHoldsUnderMultiTenancy)
{
    // The "crash anywhere" theorem with four tenants sharing the
    // backend: seeded power cuts across the KV-service run must
    // always recover a consistent image (tagged lines included).
    Config cfg = tenantSystemConfig(4);
    // Short epochs so crash points land beyond the first certified
    // rec-epoch and the campaign verifies restored lines.
    cfg.set("wl.ops", std::uint64_t(600));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    fault::CampaignParams params;
    params.workloads = {"kv_service"};
    params.trials = 6;
    params.seed = 7;
    fault::CampaignResult res = runCrashCampaign(cfg, params);
    EXPECT_EQ(res.trials, 6u);
    EXPECT_TRUE(res.passed()) << res.failingRepro;
    EXPECT_GT(res.linesChecked, 0u);
}

TEST(TenantSystem, QuotaPressureIsolatedToOffender)
{
    setQuiet(true);
    // Tight quota + QoS: stalls and rejections must appear, and only
    // ever against tenants, never against the untenanted stream.
    Config cfg = tenantSystemConfig(4);
    cfg.set("tenant.quota_lines", std::uint64_t(300));
    cfg.set("tenant.qos_bytes_per_kcycle", std::uint64_t(8));
    cfg.set("tenant.qos_burst_bytes", std::uint64_t(2048));
    System sys(cfg, "nvoverlay", "kv_service");
    sys.run();
    const RunStats &st = sys.stats();
    auto extra = [&](const std::string &k) {
        auto it = st.extra.find(k);
        return it == st.extra.end() ? 0ull : it->second;
    };
    EXPECT_GT(extra("tenant_quota_rejections"), 0u);
    std::uint64_t per_tenant_stalls = 0;
    for (tenant::Asid a = 1; a <= 4; ++a)
        per_tenant_stalls += extra(
            "tenant." + std::to_string(a) + ".throttle_stalls");
    EXPECT_EQ(per_tenant_stalls, extra("tenant_throttle_stalls"))
        << "every stall cycle is attributed to exactly one tenant";
}

} // namespace
} // namespace nvo
