/**
 * @file
 * Per-epoch overlay table and master mapping table tests
 * (paper Sec. V-C, Fig. 10).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "nvoverlay/epoch_table.hh"
#include "nvoverlay/master_table.hh"
#include "nvoverlay/page_pool.hh"

namespace nvo
{
namespace
{

constexpr Addr poolBase = 1ull << 40;

LineData
lineOf(std::uint8_t fill)
{
    LineData d;
    d.bytes.fill(fill);
    return d;
}

class EpochTableTest : public ::testing::Test
{
  protected:
    EpochTableTest() : pool(poolBase, 256 * pageBytes)
    {
        EpochTable::Params p;
        p.initLines = 4;
        p.growthFactor = 4;
        table = std::make_unique<EpochTable>(7, pool, p);
        sinks.data = [this](Addr, std::uint32_t b) { dataBytes += b; };
        sinks.reloc = [this](Addr, std::uint32_t b) {
            relocBytes += b;
        };
        sinks.meta = [this](std::uint32_t b) { metaBytes += b; };
    }

    PagePool pool;
    std::unique_ptr<EpochTable> table;
    EpochTable::Sinks sinks;
    std::uint64_t dataBytes = 0, relocBytes = 0, metaBytes = 0;
};

TEST_F(EpochTableTest, InsertLookupRoundTrip)
{
    ASSERT_TRUE(table->insert(0x1000, 1, lineOf(0xaa), sinks));
    LineData out;
    ASSERT_TRUE(table->readVersion(0x1000, out));
    EXPECT_EQ(out, lineOf(0xaa));
    EXPECT_FALSE(table->readVersion(0x1040, out));
    EXPECT_EQ(table->versionCount(), 1u);
    EXPECT_EQ(dataBytes, 64u);
}

TEST_F(EpochTableTest, SparsePageStartsSmall)
{
    table->insert(0x1000, 1, lineOf(1), sinks);
    EXPECT_EQ(pool.bytesAllocated(), 4u * lineBytes)
        << "initial sub-page is 4 lines, not a full page";
}

TEST_F(EpochTableTest, GrowthRelocatesCompactly)
{
    // Fill 5 lines of one page: 4-line sub-page grows to 16.
    for (unsigned i = 0; i < 5; ++i)
        table->insert(0x2000 + i * 64, i, lineOf(i + 1), sinks);
    EXPECT_EQ(relocBytes, 4u * lineBytes) << "4 lines relocated";
    EXPECT_EQ(pool.bytesAllocated(), 16u * lineBytes);
    for (unsigned i = 0; i < 5; ++i) {
        LineData out;
        ASSERT_TRUE(table->readVersion(0x2000 + i * 64, out));
        EXPECT_EQ(out, lineOf(i + 1)) << "line " << i;
    }
}

TEST_F(EpochTableTest, SameEpochOverwriteKeepsNewest)
{
    table->insert(0x1000, 10, lineOf(1), sinks);
    table->insert(0x1000, 20, lineOf(2), sinks);
    LineData out;
    table->readVersion(0x1000, out);
    EXPECT_EQ(out, lineOf(2));
    // A stale (lower-seq) write costs a device write but does not
    // clobber newer content.
    table->insert(0x1000, 15, lineOf(3), sinks);
    table->readVersion(0x1000, out);
    EXPECT_EQ(out, lineOf(2));
    EXPECT_EQ(table->versionCount(), 1u);
    EXPECT_EQ(dataBytes, 3u * 64);
}

TEST_F(EpochTableTest, HeaderDescribesSubPage)
{
    table->insert(0x3000, 1, lineOf(9), sinks);
    table->insert(0x3040, 2, lineOf(8), sinks);
    const auto *pe = table->pageEntry(0x3000);
    ASSERT_NE(pe, nullptr);
    const auto *hdr = pool.header(pe->subPage);
    ASSERT_NE(hdr, nullptr);
    EXPECT_EQ(hdr->srcPage, 0x3000u);
    EXPECT_EQ(hdr->epoch, 7u);
    EXPECT_EQ(hdr->usedLines, 2u);
    EXPECT_EQ(hdr->slotLine[0], lineInPage(0x3000));
    EXPECT_EQ(hdr->slotLine[1], lineInPage(0x3040));
    EXPECT_GT(metaBytes, 0u);
}

TEST_F(EpochTableTest, ForEachVersionVisitsAll)
{
    std::map<Addr, bool> want;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Addr a = lineAlign(rng.below(1 << 20));
        table->insert(a, i, lineOf(1), sinks);
        want[a] = true;
    }
    std::map<Addr, bool> got;
    table->forEachVersion(
        [&](Addr line, Addr nvm) {
            got[line] = true;
            EXPECT_NE(nvm, invalidAddr);
        });
    EXPECT_EQ(got, want);
    EXPECT_EQ(table->versionCount(), want.size());
}

TEST_F(EpochTableTest, PoolExhaustionReturnsFalse)
{
    PagePool tiny(poolBase + (1ull << 30), pageBytes);
    EpochTable::Params p;
    p.initLines = 64;
    EpochTable t(1, tiny, p);
    EXPECT_TRUE(t.insert(0x0, 1, lineOf(1), sinks));
    EXPECT_FALSE(t.insert(0x1000, 2, lineOf(2), sinks))
        << "second full page does not fit";
}

TEST_F(EpochTableTest, TableBytesGrowWithFootprint)
{
    std::uint64_t empty = table->tableBytes();
    table->insert(0x1000, 1, lineOf(1), sinks);
    std::uint64_t one = table->tableBytes();
    EXPECT_GT(one, empty);
    // A second insert in a distant region adds radix nodes.
    table->insert(0x1000000000, 2, lineOf(1), sinks);
    EXPECT_GT(table->tableBytes(), one);
}

TEST(MasterTable, InsertLookupReplace)
{
    MasterTable mt;
    EXPECT_EQ(mt.lookup(0x1000), nullptr);
    auto replaced = mt.insert(tenant::keyOf(0x1000), poolBase, 3);
    EXPECT_FALSE(replaced.has_value());
    const auto *e = mt.lookup(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->nvmAddr, poolBase);
    EXPECT_EQ(e->epoch, 3u);

    auto old = mt.insert(tenant::keyOf(0x1000), poolBase + 64, 5);
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(old->epoch, 3u);
    EXPECT_EQ(mt.lookup(0x1000)->epoch, 5u);
    EXPECT_EQ(mt.mappedLines(), 1u);
}

TEST(MasterTable, MetaWritesPerInsert)
{
    std::uint64_t bytes = 0;
    MasterTable mt([&](std::uint32_t b) { bytes += b; });
    mt.insert(tenant::keyOf(0x1000), poolBase, 1);
    // First insert creates 3 inner pointers + leaf pointer + entry.
    EXPECT_EQ(bytes, 5u * 8);
    bytes = 0;
    mt.insert(tenant::keyOf(0x1040), poolBase + 64, 1);   // same leaf
    EXPECT_EQ(bytes, 8u);
}

TEST(MasterTable, NodeBytesMatchStructure)
{
    MasterTable mt;
    std::uint64_t root_only = mt.nodeBytes();
    EXPECT_EQ(root_only, 512u * 8);
    mt.insert(tenant::keyOf(0x1000), poolBase, 1);
    // +3 inner nodes +1 leaf node (64 entries x 8 B).
    EXPECT_EQ(mt.nodeBytes(), root_only + 3 * 512 * 8 + 64 * 8);
    // Fig. 13 lower bound: one full page of lines maps at 12.5 %.
    for (unsigned i = 0; i < 64; ++i)
        mt.insert(tenant::keyOf(0x1000 + i * 64), poolBase + i * 64, 1);
    double ratio = static_cast<double>(64 * 8) / (64 * 64);
    EXPECT_DOUBLE_EQ(ratio, 0.125);
}

TEST(MasterTable, ForEachEnumeratesMappings)
{
    MasterTable mt;
    Rng rng(17);
    std::map<Addr, EpochWide> want;
    for (int i = 0; i < 500; ++i) {
        Addr a = lineAlign(rng.below(1ull << 30));
        EpochWide e = 1 + rng.below(9);
        mt.insert(tenant::keyOf(a), poolBase + i * 64, e);
        want[a] = e;
    }
    std::map<Addr, EpochWide> got;
    mt.forEach([&](Addr a, const MasterTable::Entry &e) {
        got[a] = e.epoch;
    });
    EXPECT_EQ(got, want);
    EXPECT_EQ(mt.mappedLines(), want.size());
}

} // namespace
} // namespace nvo
