/**
 * @file
 * Edge-case coverage: recovery validation failure paths, stats
 * printing, snapshot-reader boundaries, buffer bypass semantics, and
 * directory behaviour under eviction pressure.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "mem/dram_model.hh"
#include "mem/nvm_model.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/recovery.hh"
#include "nvoverlay/snapshot_reader.hh"

namespace nvo
{
namespace
{

LineData
lineOf(std::uint8_t fill)
{
    LineData d;
    d.bytes.fill(fill);
    return d;
}

TEST(RecoveryValidate, DetectsCorruptedImage)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 1;
    params.numVds = 1;
    MnmBackend backend(params, nvm, stats);
    backend.insertVersion(0x1000, 1, 1, lineOf(7), 0);
    backend.reportMinVer(0, 2, 0);

    RecoveryManager rm(backend);
    auto result = rm.recover();
    EXPECT_EQ(RecoveryManager::validate(result, backend), "");

    // Corrupt one recovered line: validation must notice.
    result.image->writeLine(0x1000, lineOf(8));
    EXPECT_NE(RecoveryManager::validate(result, backend), "");
}

TEST(RecoveryValidate, DetectsMissingLines)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 1;
    params.numVds = 1;
    MnmBackend backend(params, nvm, stats);
    backend.insertVersion(0x1000, 1, 1, lineOf(7), 0);

    RecoveryManager rm(backend);
    auto result = rm.recover();   // before any merge: empty master
    EXPECT_EQ(result.linesRestored, 0u);
    backend.reportMinVer(0, 2, 0);   // now the master maps the line
    EXPECT_NE(RecoveryManager::validate(result, backend), "")
        << "image restored fewer lines than the master maps";
}

TEST(SnapshotReaderEdge, EpochZeroAndUnknownLines)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 1;
    params.numVds = 1;
    MnmBackend backend(params, nvm, stats);
    backend.insertVersion(0x1000, 3, 1, lineOf(9), 0);

    SnapshotReader reader(backend);
    EXPECT_FALSE(reader.readLine(0x1000, 0).has_value());
    EXPECT_FALSE(reader.readLine(0x1000, 2).has_value());
    EXPECT_TRUE(reader.readLine(0x1000, 3).has_value());
    EXPECT_FALSE(reader.readLine(0x9999000, 100).has_value());
    // Unaligned byte address resolves to its line.
    EXPECT_TRUE(reader.readLine(0x1017, 3).has_value());
}

TEST(SnapshotReaderEdge, MultiLineReadFailsOnGaps)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 1;
    params.numVds = 1;
    MnmBackend backend(params, nvm, stats);
    backend.insertVersion(0x1000, 1, 1, lineOf(1), 0);
    // 0x1040 never snapshotted.
    SnapshotReader reader(backend);
    std::uint8_t buf[96];
    EXPECT_FALSE(reader.read(0x1020, buf, sizeof(buf), 1))
        << "read spanning an unmapped line must fail";
    EXPECT_TRUE(reader.read(0x1000, buf, 64, 1));
}

TEST(BufferBypass, FinalizeStopsBuffering)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 1;
    params.numVds = 1;
    params.useBuffer = true;
    MnmBackend backend(params, nvm, stats);
    backend.insertVersion(0x1000, 1, 1, lineOf(1), 0);
    EXPECT_EQ(stats.nvmDataBytes(), 0u) << "buffered";
    backend.finalize(0);
    backend.insertVersion(0x1040, 1, 2, lineOf(2), 0);
    EXPECT_GE(stats.nvmDataBytes(), 128u)
        << "post-finalize inserts write through";
}

TEST(StatsPrint, ContainsKeyFields)
{
    RunStats st;
    st.cycles = 123;
    st.refs = 45;
    st.addNvmWrite(NvmWriteKind::Data, 64, 0);
    std::ostringstream os;
    st.print(os, "unit");
    std::string text = os.str();
    EXPECT_NE(text.find("=== unit ==="), std::string::npos);
    EXPECT_NE(text.find("cycles 123"), std::string::npos);
    EXPECT_NE(text.find("data=64"), std::string::npos);
    EXPECT_NE(text.find("tag-walk=0"), std::string::npos);
}

TEST(DirectoryEdge, EvictionReleasesPresence)
{
    RunStats stats;
    BackingStore backing;
    DramModel dram(DramModel::Params{}, &stats);
    Hierarchy::Params p;
    p.numCores = 2;
    p.coresPerVd = 2;
    p.numLlcSlices = 1;
    p.l1.sizeBytes = 512;   // 8 lines
    p.l1.ways = 2;
    p.l2.sizeBytes = 1024;  // 16 lines
    p.l2.ways = 2;
    p.llc.sliceBytes = 16 * 1024;
    Hierarchy hier(p, backing, dram, stats);

    // Touch far more lines than the L2 holds: directory entries for
    // evicted lines must drop this VD.
    for (Addr a = 0; a < 64; ++a)
        hier.store(0, 0x100000 + a * 4096, nullptr, 8, 0);
    unsigned resident = 0;
    for (Addr a = 0; a < 64; ++a) {
        const DirEntry *e = hier.dirEntry(0x100000 + a * 4096);
        if (e && e->isSharer(0))
            ++resident;
    }
    EXPECT_LE(resident, 16u) << "at most the L2 capacity stays listed";
    EXPECT_EQ(hier.checkInvariants(), "");
}

TEST(LlcEdge, DirtyVictimsReachDram)
{
    RunStats stats;
    BackingStore backing;
    DramModel dram(DramModel::Params{}, &stats);
    Hierarchy::Params p;
    p.numCores = 2;
    p.coresPerVd = 2;
    p.numLlcSlices = 1;
    p.l1.sizeBytes = 512;
    p.l1.ways = 2;
    p.l2.sizeBytes = 1024;
    p.l2.ways = 2;
    p.llc.sliceBytes = 2048;   // 32 lines
    p.llc.ways = 2;
    Hierarchy hier(p, backing, dram, stats);

    for (Addr a = 0; a < 512; ++a)
        hier.store(0, 0x200000 + a * 4096, nullptr, 8, 0);
    EXPECT_GT(stats.dramWriteBytes, 0u)
        << "LLC capacity victims write back to DRAM";
}

} // namespace
} // namespace nvo
