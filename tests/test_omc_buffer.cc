/**
 * @file
 * Battery-backed OMC buffer tests (paper Sec. IV-E, Fig. 16).
 */

#include <gtest/gtest.h>

#include "nvoverlay/omc_buffer.hh"

namespace nvo
{
namespace
{

OmcBuffer::Params
smallBuffer()
{
    OmcBuffer::Params p;
    p.sizeBytes = 4 * 64;   // one set, 4 ways
    p.ways = 4;
    return p;
}

TEST(OmcBuffer, AbsorbsSameEpochRewrites)
{
    OmcBuffer buf(smallBuffer());
    auto r1 = buf.insert(0x1000, 5);
    EXPECT_FALSE(r1.hit);
    EXPECT_FALSE(r1.evicted.has_value());
    auto r2 = buf.insert(0x1000, 5);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_EQ(buf.misses(), 1u);
    EXPECT_EQ(buf.occupancy(), 1u);
}

TEST(OmcBuffer, DifferentEpochForcesWriteThrough)
{
    OmcBuffer buf(smallBuffer());
    buf.insert(0x1000, 5);
    auto r = buf.insert(0x1000, 6);
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.evicted.has_value());
    EXPECT_EQ(r.evicted->addr, 0x1000u);
    EXPECT_EQ(r.evicted->epoch, 5u)
        << "the old snapshot's version must reach NVM";
}

TEST(OmcBuffer, CapacityEvictionReturnsVictim)
{
    OmcBuffer buf(smallBuffer());
    // All map to the single set.
    for (Addr a = 0; a < 4; ++a)
        EXPECT_FALSE(buf.insert(a * 64, 1).evicted.has_value());
    auto r = buf.insert(4 * 64, 1);
    ASSERT_TRUE(r.evicted.has_value());
    EXPECT_EQ(r.evicted->addr, 0u) << "LRU victim";
}

TEST(OmcBuffer, LruUpdatedOnHit)
{
    OmcBuffer buf(smallBuffer());
    for (Addr a = 0; a < 4; ++a)
        buf.insert(a * 64, 1);
    buf.insert(0, 1);   // hit: 0 becomes MRU
    auto r = buf.insert(4 * 64, 1);
    ASSERT_TRUE(r.evicted.has_value());
    EXPECT_EQ(r.evicted->addr, 64u);
}

TEST(OmcBuffer, DrainReturnsEverythingOnce)
{
    OmcBuffer buf(smallBuffer());
    buf.insert(0x1000, 1);
    buf.insert(0x2040, 2);
    auto drained = buf.drainAll();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(buf.occupancy(), 0u);
    EXPECT_TRUE(buf.drainAll().empty());
}

} // namespace
} // namespace nvo
