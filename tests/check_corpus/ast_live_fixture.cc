// Self-contained TU for the clang-gated check.ast_live smoke test.
// Unlike the structural fixtures this one must *compile* — clang
// dumps its real AST JSON and nvo_check's AST frontend must flag the
// unfenced publish below. No .good/.bad tag: the corpus runner skips
// this file (it goes through tools/check_ast_live.cmake instead).
//
// The stubs mirror the names nvo_check keys on: a PersistDomain
// reached via NvmModel::persist(), a fault registry with hitPoint,
// and a durable*_ shadow word.

using Addr = unsigned long long;
using Cycle = unsigned long long;
using EpochWide = unsigned long long;

enum class NvmWriteKind { Data, Mapping };

struct PersistDomain {
    void write(Addr, int, Cycle, NvmWriteKind) {}
    void barrier() {}
};

struct NvmModel {
    PersistDomain &persist() { return pd; }
    PersistDomain pd;
};

namespace fault {

struct Registry {
    void hitPoint(const char *) {}
};

Registry &registry();

} // namespace fault

struct Backend {
    void persistRecEpoch(Cycle now);
    NvmModel nvm;
    EpochWide recEpoch_ = 0;
    EpochWide durableRecEpoch_ = 0;
};

void
Backend::persistRecEpoch(Cycle now)
{
    fault::registry().hitPoint("omc.rec_epoch.persist");
    nvm.persist().write(0x1000, 8, now, NvmWriteKind::Mapping);
    // barrier() intentionally missing: the rec-epoch word below names
    // an unfenced write, so nvo_check must report persist-order here.
    durableRecEpoch_ = recEpoch_;
}
