// Same cross-function shape as the bad twin, with the fence restored
// between the dirtying callee and the publishing callee.
void
writeMeta(Cycle now)
{
    NVO_FAULT_POINT("omc.meta.flush");
    nvm.persist().write(addr, 64, now, NvmWriteKind::Mapping);
}

void
publishCursor()
{
    NVO_FAULT_POINT("repl.cursor.persist");
    durableCursor_ = cursor_;
}

void
advance(Cycle now)
{
    NVO_FAULT_POINT("omc.rec_epoch.advance");
    writeMeta(now);
    nvm.persist().barrier();
    publishCursor();
}
