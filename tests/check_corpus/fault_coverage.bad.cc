// A durable mutation no crash campaign can cut power in front of:
// the only fault hook is behind a branch, so the write's path is not
// guaranteed to pass one.
void
flushMeta(Cycle now)
{
    if (verbose)
        NVO_FAULT_POINT("omc.meta.flush");
    nvm.persist().write(addr, 64, now, NvmWriteKind::Mapping);
    nvm.persist().barrier();
}
