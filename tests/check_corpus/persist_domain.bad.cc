// A raw device write bypassing the persist boundary: invisible to
// crash unwind and to the durable/in-flight split.
void
dumpContext(Cycle now)
{
    nvm.write(scratch, 64, now, NvmWriteKind::Data);
}
