// The correct shape: every path fences the persist write before the
// rec-epoch word names it recoverable.
void
persistRecEpoch(Cycle now)
{
    NVO_FAULT_POINT("omc.rec_epoch.persist");
    nvm.persist().write(addr, 8, now, NvmWriteKind::Mapping);
    nvm.persist().barrier();
    durableRecEpoch_ = recEpoch_;
}
