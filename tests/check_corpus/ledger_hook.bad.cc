// A wrapper does not launder a master mutation: insert/erase stay
// legal only inside masterInsert itself (and lambdas defined there).
void
laundered(Addr line_addr, Addr nvm_addr, EpochWide e)
{
    part.master->insert(line_addr, nvm_addr, e);
}

void
dropsWithoutReclaim(Addr sub_page)
{
    pool.dropHeader(sub_page);
}
