// The sanctioned path: through the persist domain, with the fence,
// covered by a hook — including via a named domain alias, which the
// token rule could not follow.
void
writeThrough(Cycle now)
{
    NVO_FAULT_POINT("pool.alloc");
    PersistDomain &domain = nvm.persist();
    domain.write(addr, 64, now, NvmWriteKind::Data);
    domain.barrier();
}
