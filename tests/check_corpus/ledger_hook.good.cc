// The sanctioned sites: masterInsert mutates the master (its staged
// undo lambdas inherit the sanction), reclaimSubPage drops headers.
void
masterInsert(Addr line_addr, Addr nvm_addr, EpochWide e)
{
    auto replaced = part.master->insert(line_addr, nvm_addr, e);
    MasterTable *mt = part.master.get();
    domain.stage(Kind::Master, [mt, line_addr] {
        mt->erase(line_addr);
    });
}

void
reclaimSubPage(EpochTable::PageEntry &pe)
{
    part.pool->dropHeader(pe.subPage);
    part.pool->freeLines(pe.subPage, pe.capacity);
}
