// Covered both ways the tree uses: a hook dominating the write
// directly, and a hook inherited through a helper call.
void
hookOnly()
{
    NVO_FAULT_POINT("omc.meta.flush");
}

void
flushMeta(Cycle now)
{
    hookOnly();
    nvm.persist().write(addr, 64, now, NvmWriteKind::Mapping);
    nvm.persist().barrier();
}

void
retryLoop(Cycle now)
{
    while (NVO_FAULT_ERROR("omc.device_write")) {
        backoff();
    }
    nvm.persist().write(addr, 64, now, NvmWriteKind::Data);
    nvm.persist().barrier();
}
