// The write and the publish live in different functions: the token
// linter cannot see this at all; nvo_check's function summaries
// report it at the call site of the publishing helper.
void
writeMeta(Cycle now)
{
    NVO_FAULT_POINT("omc.meta.flush");
    nvm.persist().write(addr, 64, now, NvmWriteKind::Mapping);
}

void
publishCursor()
{
    NVO_FAULT_POINT("repl.cursor.persist");
    durableCursor_ = cursor_;
}

void
advance(Cycle now)
{
    NVO_FAULT_POINT("omc.rec_epoch.advance");
    writeMeta(now);
    publishCursor();   // unfenced: writeMeta left a write pending
}
