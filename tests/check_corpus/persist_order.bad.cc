// The seeded mnm.test_skip_rec_barrier shape: the barrier between the
// merge writes and the rec-epoch publish sits behind a skippable
// branch, so one path publishes an unfenced write (paper Sec. V-B).
void
persistRecEpoch(Cycle now)
{
    NVO_FAULT_POINT("omc.rec_epoch.persist");
    nvm.persist().write(addr, 8, now, NvmWriteKind::Mapping);
    if (!p.testSkipRecBarrier)
        nvm.persist().barrier();
    durableRecEpoch_ = recEpoch_;
}
