/**
 * @file
 * NVOverlay version access protocol tests (paper Sec. IV, Figs. 4-8)
 * driven through a mock VersionCtrl so every epoch transition and
 * every version leaving a VD can be asserted precisely.
 */

#include <gtest/gtest.h>

#include <map>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "mem/backing_store.hh"
#include "mem/dram_model.hh"
#include "mem/write_tracker.hh"

namespace nvo
{
namespace
{

struct MockCtrl : VersionCtrl
{
    explicit MockCtrl(unsigned num_vds) : epochs(num_vds, 1) {}

    struct Accepted
    {
        Addr addr;
        EpochWide oid;
        SeqNo seq;
        std::uint64_t digest;
        EvictReason why;
    };

    EpochWide
    vdEpoch(unsigned vd) const override
    {
        return epochs[vd];
    }

    Cycle
    observeRemoteVersion(unsigned vd, EpochWide rv, Cycle) override
    {
        if (rv > epochs[vd]) {
            epochs[vd] = rv;
            ++lamportCount;
        }
        return 0;
    }

    Cycle
    acceptVersion(unsigned, Addr addr, EpochWide oid, SeqNo seq,
                  const LineData &content, EvictReason why,
                  Cycle) override
    {
        accepted.push_back(
            Accepted{addr, oid, seq, content.digest(), why});
        return 0;
    }

    std::vector<EpochWide> epochs;
    std::vector<Accepted> accepted;
    std::uint64_t lamportCount = 0;
};

class VersionProtocolTest : public ::testing::Test
{
  protected:
    VersionProtocolTest() : dram(DramModel::Params{}, &stats), ctrl(4)
    {
        Hierarchy::Params p;
        p.numCores = 8;
        p.coresPerVd = 2;
        p.numLlcSlices = 2;
        p.l1.sizeBytes = 4 * 1024;
        p.l2.sizeBytes = 16 * 1024;
        p.llc.sliceBytes = 64 * 1024;
        hier = std::make_unique<Hierarchy>(p, backing, dram, stats);
        hier->setVersionCtrl(&ctrl);
        hier->setWriteTracker(&tracker);
    }

    std::uint64_t
    currentDigest(Addr line)
    {
        LineData d;
        backing.readLine(lineAlign(line), d);
        return d.digest();
    }

    RunStats stats;
    BackingStore backing;
    DramModel dram;
    MockCtrl ctrl;
    WriteTracker tracker;
    std::unique_ptr<Hierarchy> hier;
    static constexpr Addr X = 0x10000;
};

TEST_F(VersionProtocolTest, FirstStoreTagsCurrentEpoch)
{
    hier->store(0, X, nullptr, 8, 0);
    const CacheLine *l1 = hier->l1Line(0, X);
    EXPECT_EQ(l1->oid, 1u);
    EXPECT_TRUE(l1->dirty);
    EXPECT_EQ(ctrl.accepted.size(), 0u);
}

TEST_F(VersionProtocolTest, StoreEvictionSealsOldVersion)
{
    hier->store(0, X, nullptr, 8, 0);
    std::uint64_t v1_digest = currentDigest(X);
    ctrl.epochs[0] = 2;   // epoch advance

    hier->store(0, X, nullptr, 8, 0);
    const CacheLine *l1 = hier->l1Line(0, X);
    EXPECT_EQ(l1->oid, 2u) << "store completes under the new epoch";
    const CacheLine *l2 = hier->l2Line(0, X);
    ASSERT_NE(l2, nullptr);
    EXPECT_TRUE(l2->dirty);
    EXPECT_EQ(l2->oid, 1u) << "immutable version pushed to the L2";
    ASSERT_TRUE(l2->sealed());
    EXPECT_EQ(l2->sealedData->digest(), v1_digest)
        << "sealed content is the pre-store (epoch 1) image";
    EXPECT_EQ(ctrl.accepted.size(), 0u)
        << "version buffered in L2, not yet at the OMC";
}

TEST_F(VersionProtocolTest, SecondStoreEvictionDisplacesL2Version)
{
    hier->store(0, X, nullptr, 8, 0);
    std::uint64_t v1_digest = currentDigest(X);
    ctrl.epochs[0] = 2;
    hier->store(0, X, nullptr, 8, 0);
    ctrl.epochs[0] = 3;
    hier->store(0, X, nullptr, 8, 0);

    ASSERT_EQ(ctrl.accepted.size(), 1u);
    EXPECT_EQ(ctrl.accepted[0].addr, X);
    EXPECT_EQ(ctrl.accepted[0].oid, 1u);
    EXPECT_EQ(ctrl.accepted[0].digest, v1_digest);
    const CacheLine *l2 = hier->l2Line(0, X);
    EXPECT_EQ(l2->oid, 2u);
    EXPECT_TRUE(l2->sealed());
    EXPECT_EQ(hier->l1Line(0, X)->oid, 3u);
    // OMC writes displaced by store-evictions carry that reason
    // (the paper's Fig. 15 / kmeans decomposition accounting).
    EXPECT_EQ(stats.evictReason[static_cast<int>(
                  EvictReason::StoreEvict)],
              1u);
}

TEST_F(VersionProtocolTest, SameEpochStoresNeedNoEviction)
{
    for (int i = 0; i < 5; ++i)
        hier->store(0, X, nullptr, 8, 0);
    EXPECT_EQ(ctrl.accepted.size(), 0u);
    EXPECT_EQ(stats.evictReason[static_cast<int>(
                  EvictReason::StoreEvict)],
              0u);
}

TEST_F(VersionProtocolTest, ExternalDowngradeWritesBackNewest)
{
    hier->store(0, X, nullptr, 8, 0);
    std::uint64_t v1_digest = currentDigest(X);
    hier->load(2, X, 0);   // VD 1 reads

    ASSERT_EQ(ctrl.accepted.size(), 1u);
    EXPECT_EQ(ctrl.accepted[0].oid, 1u);
    EXPECT_EQ(ctrl.accepted[0].digest, v1_digest);
    EXPECT_EQ(ctrl.accepted[0].why, EvictReason::Coherence);
    EXPECT_EQ(hier->l1Line(0, X)->state, CohState::S);
    EXPECT_EQ(hier->l1Line(2, X)->state, CohState::S);
    EXPECT_EQ(hier->l1Line(2, X)->oid, 1u)
        << "response carries the version (RV)";
}

TEST_F(VersionProtocolTest, DowngradeWithTwoVersions)
{
    // Build L1 v2 / sealed L2 v1 in VD0 (Fig. 5 with opt. 1).
    hier->store(0, X, nullptr, 8, 0);
    std::uint64_t v1_digest = currentDigest(X);
    ctrl.epochs[0] = 2;
    hier->store(0, X, nullptr, 8, 0);
    std::uint64_t v2_digest = currentDigest(X);

    hier->load(2, X, 0);
    ASSERT_EQ(ctrl.accepted.size(), 2u);
    // Old sealed version goes to the OMC only; newest goes to
    // LLC + OMC as the current image.
    EXPECT_EQ(ctrl.accepted[0].oid, 1u);
    EXPECT_EQ(ctrl.accepted[0].digest, v1_digest);
    EXPECT_EQ(ctrl.accepted[1].oid, 2u);
    EXPECT_EQ(ctrl.accepted[1].digest, v2_digest);
    EXPECT_EQ(hier->l1Line(2, X)->oid, 2u);
}

TEST_F(VersionProtocolTest, InvalidationTransfersNewestCacheToCache)
{
    // Fig. 6 optimization 2: the newest dirty version moves to the
    // requestor without an OMC write.
    hier->store(0, X, nullptr, 8, 0);
    hier->store(2, X, nullptr, 8, 0);   // VD 1, same epoch
    EXPECT_EQ(ctrl.accepted.size(), 0u);
    const CacheLine *l1 = hier->l1Line(2, X);
    EXPECT_EQ(l1->state, CohState::M);
    EXPECT_TRUE(l1->dirty);
    EXPECT_EQ(hier->l1Line(0, X), nullptr);
    EXPECT_EQ(hier->l2Line(0, X), nullptr);
}

TEST_F(VersionProtocolTest, InvalidationWithOldL2Version)
{
    hier->store(0, X, nullptr, 8, 0);
    std::uint64_t v1_digest = currentDigest(X);
    ctrl.epochs[0] = 2;
    hier->store(0, X, nullptr, 8, 0);   // sealed v1 now in VD0's L2

    hier->store(2, X, nullptr, 8, 0);   // VD1 invalidates VD0
    // Old sealed version persisted; newest transferred c2c, then
    // sealed in VD1 by its own store-eviction (Lamport moved VD1 to
    // epoch 2, matching the incoming version).
    ASSERT_EQ(ctrl.accepted.size(), 1u);
    EXPECT_EQ(ctrl.accepted[0].oid, 1u);
    EXPECT_EQ(ctrl.accepted[0].digest, v1_digest);
    EXPECT_EQ(ctrl.epochs[1], 2u) << "Lamport sync to the version";
    EXPECT_EQ(hier->l1Line(2, X)->oid, 2u);
}

TEST_F(VersionProtocolTest, LamportAdvanceOnRead)
{
    ctrl.epochs[0] = 7;
    hier->store(0, X, nullptr, 8, 0);
    EXPECT_EQ(ctrl.epochs[1], 1u);
    hier->load(2, X, 0);
    EXPECT_EQ(ctrl.epochs[1], 7u);
    EXPECT_GE(ctrl.lamportCount, 1u);
}

TEST_F(VersionProtocolTest, LamportAdvanceThroughMemory)
{
    // The OID survives eviction to LLC/DRAM (Sec. IV-A4): a later
    // reader must still observe it.
    ctrl.epochs[0] = 9;
    hier->store(0, X, nullptr, 8, 0);
    // Evict everything from VD0 by flushing.
    hier->flushAll(0);
    hier->load(2, X, 0);
    EXPECT_EQ(ctrl.epochs[1], 9u);
}

TEST_F(VersionProtocolTest, TagWalkCollectsOldVersions)
{
    hier->store(0, X, nullptr, 8, 0);
    hier->store(0, X + 64, nullptr, 8, 0);
    std::uint64_t d0 = currentDigest(X);
    std::uint64_t d1 = currentDigest(X + 64);
    ctrl.epochs[0] = 2;

    auto scan = hier->tagWalkScan(0);
    EXPECT_EQ(scan.minVer, 1u);
    ASSERT_EQ(scan.versions.size(), 2u);
    std::map<Addr, std::uint64_t> got;
    for (const auto &v : scan.versions) {
        EXPECT_EQ(v.oid, 1u);
        got[v.addr] = v.content.digest();
    }
    EXPECT_EQ(got[X], d0);
    EXPECT_EQ(got[X + 64], d1);

    // Lines downgraded to clean; a second walk finds nothing.
    auto again = hier->tagWalkScan(0);
    EXPECT_EQ(again.versions.size(), 0u);
    EXPECT_EQ(again.minVer, 2u);
}

TEST_F(VersionProtocolTest, TagWalkSkipsCurrentEpochVersions)
{
    hier->store(0, X, nullptr, 8, 0);
    auto scan = hier->tagWalkScan(0);
    EXPECT_EQ(scan.versions.size(), 0u);
    EXPECT_EQ(scan.minVer, 1u);
    EXPECT_TRUE(hier->l1Line(0, X)->dirty) << "current epoch untouched";
}

TEST_F(VersionProtocolTest, WalkedLineKeepsNamingItsEpoch)
{
    // After a walk cleans a line, later write backs must still carry
    // the newest OID outward (the stale-RV regression test).
    ctrl.epochs[0] = 6;
    hier->store(0, X, nullptr, 8, 0);
    ctrl.epochs[0] = 7;
    hier->tagWalkScan(0);
    hier->flushAll(0);
    hier->load(2, X, 0);
    EXPECT_EQ(ctrl.epochs[1], 6u)
        << "reader observes the line's last-write epoch";
}

TEST_F(VersionProtocolTest, FlushAllEmitsEveryDirtyVersion)
{
    hier->store(0, X, nullptr, 8, 0);
    ctrl.epochs[0] = 2;
    hier->store(0, X, nullptr, 8, 0);
    hier->store(2, X + 4096, nullptr, 8, 0);
    hier->flushAll(0);
    // v1 + v2 from VD0 and v1 from VD1.
    EXPECT_EQ(ctrl.accepted.size(), 3u);
    EXPECT_EQ(hier->checkInvariants(), "");
    // Everything clean now: a second flush emits nothing.
    auto before = ctrl.accepted.size();
    hier->flushAll(0);
    EXPECT_EQ(ctrl.accepted.size(), before);
}

/**
 * The protocol correctness property (DESIGN.md Sec. 2): under random
 * traffic with random epoch advances, (a) structural invariants hold,
 * (b) per-line committed epochs are non-decreasing, and (c) after a
 * full flush, the newest accepted version of every (line, epoch)
 * matches the tracker's digest for that epoch.
 */
class VersionProtocolProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(VersionProtocolProperty, RandomTrafficCorrectness)
{
    RunStats stats;
    BackingStore backing;
    DramModel dram(DramModel::Params{}, &stats);
    MockCtrl ctrl(4);
    WriteTracker tracker;
    Hierarchy::Params p;
    p.numCores = 8;
    p.coresPerVd = 2;
    p.numLlcSlices = 2;
    p.l1.sizeBytes = 2 * 1024;
    p.l2.sizeBytes = 8 * 1024;
    p.llc.sliceBytes = 32 * 1024;
    Hierarchy hier(p, backing, dram, stats);
    hier.setVersionCtrl(&ctrl);
    hier.setWriteTracker(&tracker);

    Rng rng(GetParam() * 16127 + 3);
    for (int i = 0; i < 30000; ++i) {
        unsigned core = static_cast<unsigned>(rng.below(8));
        unsigned vd = core / 2;
        Addr a = 0x200000 + lineAlign(rng.below(600) * 64);
        if (rng.chance(0.01))
            ctrl.epochs[vd] += 1 + rng.below(3);
        if (rng.chance(0.02)) {
            // Drive the walker path: scanned versions drain to the
            // controller exactly as TagWalker does.
            unsigned wvd = static_cast<unsigned>(rng.below(4));
            auto scan = hier.tagWalkScan(wvd);
            for (const auto &v : scan.versions)
                ctrl.acceptVersion(wvd, v.addr, v.oid, v.seq,
                                   v.content, EvictReason::TagWalk, 0);
        }
        if (rng.chance(0.45))
            hier.store(core, a, nullptr, 8, 0);
        else
            hier.load(core, a, 0);
        if (i % 10000 == 0) {
            ASSERT_EQ(hier.checkInvariants(), "") << "op " << i;
        }
    }
    hier.flushAll(0);
    ASSERT_EQ(hier.checkInvariants(), "");
    EXPECT_TRUE(tracker.epochsMonotonic());

    // Newest accepted version per (line, epoch) must match the last
    // store of that epoch.
    std::map<std::pair<Addr, EpochWide>, MockCtrl::Accepted> newest;
    for (const auto &v : ctrl.accepted) {
        auto key = std::make_pair(v.addr, v.oid);
        auto it = newest.find(key);
        if (it == newest.end() || v.seq >= it->second.seq)
            newest[key] = v;
    }
    unsigned mismatches = 0;
    for (const auto &kv : newest) {
        auto expect =
            tracker.expectedDigest(kv.first.first, kv.first.second);
        ASSERT_TRUE(expect.has_value());
        if (*expect != kv.second.digest)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
    EXPECT_GT(newest.size(), 100u) << "test exercised real traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionProtocolProperty,
                         ::testing::Range(1, 6));

} // namespace
} // namespace nvo
