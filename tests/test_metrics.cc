/**
 * @file
 * Telemetry plane (src/obs: hist, registry, exporter formats).
 *
 * The load-bearing contracts: bucket math keeps every quantile
 * within 1/16 relative error of the rank-selected sample; shard-slot
 * recording followed by mergeShards() is indistinguishable from
 * sequential recording; the metrics section of the stats JSON is
 * byte-identical for par.shards ∈ {0, 1, 2, 8}; the Prometheus text
 * round-trips the registry's totals; and a disarmed registry (or an
 * NVO_METRIC=OFF build) records nothing while everything still
 * compiles and runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "obs/hist.hh"
#include "obs/json.hh"
#include "obs/registry.hh"

namespace nvo
{
namespace
{

using obs::Histogram;

// --- Bucket math ----------------------------------------------------

TEST(Histogram, ValuesBelowSixteenAreExact)
{
    for (std::uint64_t v = 0; v < Histogram::subCount; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLow(static_cast<unsigned>(v)), v);
    }
}

TEST(Histogram, OctaveBoundaries)
{
    // The first octave group starts exactly at 16 and is still exact
    // (stride 1); the second group (32..63) has stride 2.
    EXPECT_EQ(Histogram::bucketIndex(15), 15u);
    EXPECT_EQ(Histogram::bucketIndex(16), 16u);
    EXPECT_EQ(Histogram::bucketIndex(17), 17u);
    EXPECT_EQ(Histogram::bucketIndex(31), 31u);
    EXPECT_EQ(Histogram::bucketIndex(32), 32u);
    EXPECT_EQ(Histogram::bucketIndex(33), 32u);   // stride 2 begins
    EXPECT_EQ(Histogram::bucketIndex(34), 33u);
    // Every uint64 maps into the fixed array, including the extremes.
    EXPECT_LT(Histogram::bucketIndex(std::uint64_t(1) << 63),
              Histogram::numBuckets);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t(0)),
              Histogram::numBuckets - 1);
}

TEST(Histogram, BucketLowIsTightLowerBound)
{
    std::mt19937_64 rng(0xb10c5);
    for (int i = 0; i < 20000; ++i) {
        // Spread samples across all magnitudes.
        std::uint64_t v = rng() >> (rng() % 64);
        unsigned idx = Histogram::bucketIndex(v);
        std::uint64_t low = Histogram::bucketLow(idx);
        EXPECT_LE(low, v);
        if (idx + 1 < Histogram::numBuckets) {
            EXPECT_LT(v, Histogram::bucketLow(idx + 1));
        }
        // Bucket width <= low / 16: the 1/16 relative-error bound.
        EXPECT_LE(v - low, low / Histogram::subCount);
    }
}

TEST(Histogram, PercentilesMatchSortedOracle)
{
    std::mt19937_64 rng(42);
    Histogram h;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 10000; ++i) {
        // Log-uniform-ish: walk depths, scan distances, and stall
        // cycles all span several octaves.
        std::uint64_t v = rng() >> (rng() % 60);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {50.0, 90.0, 99.0}) {
        std::size_t rank = static_cast<std::size_t>(
            std::max(1.0, std::ceil(p / 100.0 *
                                    static_cast<double>(
                                        samples.size()))));
        std::uint64_t oracle = samples[rank - 1];
        std::uint64_t got = h.percentile(p);
        EXPECT_LE(got, oracle) << "p" << p;
        EXPECT_LE(oracle - got, got / Histogram::subCount)
            << "p" << p << " outside the 1/16 error bound";
    }
    EXPECT_EQ(h.min(), samples.front());
    EXPECT_EQ(h.max(), samples.back());
    EXPECT_EQ(h.bucketOccupancySum(), h.count());
}

TEST(Histogram, MergeEqualsCombinedRecording)
{
    std::mt19937_64 rng(7);
    Histogram a, b, combined;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng() >> (rng() % 50);
        (i % 2 ? a : b).record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        ASSERT_EQ(a.bucket(i), combined.bucket(i)) << "bucket " << i;
}

// --- Registry -------------------------------------------------------

Config
armedConfig()
{
    Config cfg;
    cfg.set("metrics.enabled", "true");
    return cfg;
}

TEST(MetricRegistry, RegistrationDedupsByName)
{
    auto &reg = obs::metricRegistry();
    reg.configure(armedConfig());
    obs::HistMetric *h1 = reg.addHist("test.dedup_hist");
    obs::HistMetric *h2 = reg.addHist("test.dedup_hist");
    EXPECT_EQ(h1, h2);
    obs::Counter *c1 = reg.addCounter("test.dedup_ctr");
    obs::Counter *c2 = reg.addCounter("test.dedup_ctr");
    EXPECT_EQ(c1, c2);
}

TEST(MetricRegistry, ShardSlotsMergeToSequentialResult)
{
    auto &reg = obs::metricRegistry();
    reg.configure(armedConfig());
    reg.setShards(3);
    obs::HistMetric *h = reg.addHist("test.shard_merge");
    obs::Counter *c = reg.addCounter("test.shard_merge_ctr");

    // The same sample stream a sequential run would record, split
    // round-robin across shard slots (as runShard's MetricSlotScope
    // does), must fold back into an identical histogram.
    std::mt19937_64 rng(11);
    Histogram oracle;
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t v = rng() >> (rng() % 40);
        oracle.record(v);
        obs::MetricSlotScope slot(static_cast<unsigned>(i % 3));
        reg.record(h, v);
        reg.inc(c, 1);
    }
    reg.mergeShards();
    EXPECT_EQ(h->slots[0].count(), oracle.count());
    EXPECT_EQ(h->slots[0].sum(), oracle.sum());
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        ASSERT_EQ(h->slots[0].bucket(i), oracle.bucket(i));
    for (std::size_t s = 1; s < h->slots.size(); ++s)
        EXPECT_EQ(h->slots[s].count(), 0u) << "slot " << s;
    EXPECT_EQ(reg.total(c), 3000u);
}

TEST(MetricRegistry, HostScopeStaysOutOfStatsJson)
{
    auto &reg = obs::metricRegistry();
    reg.configure(armedConfig());
    reg.addCounter("test.sim_visible");
    reg.addCounter("test.host_hidden", obs::MetricScope::Host);
    std::ostringstream os;
    obs::JsonWriter w(os);
    reg.writeJson(w);
    std::string text = os.str();
    EXPECT_NE(text.find("test.sim_visible"), std::string::npos);
    EXPECT_EQ(text.find("test.host_hidden"), std::string::npos);
}

TEST(MetricRegistry, PrometheusRoundTrip)
{
    auto &reg = obs::metricRegistry();
    reg.configure(armedConfig());
    obs::Counter *c = reg.addCounter("test.rt_ops");
    obs::HistMetric *h = reg.addHist("test.rt_lat");
    reg.inc(c, 42);
    for (std::uint64_t v : {1, 2, 3, 100, 1000})
        reg.record(h, v);

    std::ostringstream os;
    reg.writePrometheus(os);

    // Parse the text format back: `name{labels} value` per line.
    std::map<std::string, std::string> vals;
    std::istringstream in(os.str());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        vals[line.substr(0, sp)] = line.substr(sp + 1);
    }
    EXPECT_EQ(vals.at("nvo_test_rt_ops_total"), "42");
    EXPECT_EQ(vals.at("nvo_test_rt_lat_count"), "5");
    EXPECT_EQ(vals.at("nvo_test_rt_lat_sum"), "1106");
    EXPECT_EQ(vals.at("nvo_test_rt_lat_max"), "1000");
    // Quantile samples must equal the registry's own percentiles.
    EXPECT_EQ(vals.at("nvo_test_rt_lat{quantile=\"0.5\"}"),
              std::to_string(reg.merged(h).percentile(50.0)));
    EXPECT_EQ(vals.at("nvo_test_rt_lat{quantile=\"0.99\"}"),
              std::to_string(reg.merged(h).percentile(99.0)));
}

TEST(MetricRegistry, DisarmedMacroRecordsNothing)
{
    auto &reg = obs::metricRegistry();
    reg.configure(Config());   // metrics.enabled unset: disarmed
    EXPECT_FALSE(reg.armed());
    obs::HistMetric *h = reg.addHist("test.disarmed");
    obs::Counter *c = reg.addCounter("test.disarmed_ctr");
    NVO_METRIC(record(h, 7));
    NVO_METRIC(inc(c, 1));
    EXPECT_EQ(reg.merged(h).count(), 0u);
    EXPECT_EQ(reg.total(c), 0u);
    // Under NVO_METRIC=OFF even an armed-looking config must stay
    // disarmed: the macro body is never evaluated.
    reg.configure(armedConfig());
    EXPECT_EQ(reg.armed(), obs::metricCompiled);
    NVO_METRIC(record(h, 7));
    EXPECT_EQ(reg.merged(h).count(),
              obs::metricCompiled ? 1u : 0u);
}

// --- End-to-end determinism across shard counts ---------------------

Config
smallConfig(const char *workload)
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(16));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(150));
    cfg.set("epoch.stores_global", std::uint64_t(60000));
    cfg.set("wl.seed", std::uint64_t(3));
    cfg.set("metrics.enabled", "true");
    (void)workload;
    return cfg;
}

/** Run to completion and serialize the registry exactly as the stats
 *  JSON embeds it (sim scope only). */
std::string
metricsJsonAfterRun(const Config &cfg, const std::string &workload)
{
    System sys(cfg, "nvoverlay", workload);
    sys.run();
    std::ostringstream os;
    obs::JsonWriter w(os);
    obs::metricRegistry().writeJson(w);
    return os.str();
}

class MetricsDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MetricsDeterminism, SnapshotByteIdenticalAcrossShardCounts)
{
    const std::string workload = GetParam();
    std::string oracle =
        metricsJsonAfterRun(smallConfig(GetParam()), workload);
    ASSERT_FALSE(oracle.empty());
    if (obs::metricCompiled) {
        // The sequential oracle must carry real samples, not an
        // all-zero shell.
        EXPECT_NE(oracle.find("mnm.insert_walk_depth"),
                  std::string::npos);
        EXPECT_NE(oracle.find("\"enabled\":true"),
                  std::string::npos);
    }
    for (std::uint64_t shards : {1, 2, 8}) {
        Config cfg = smallConfig(GetParam());
        cfg.set("par.shards", shards);
        std::string got = metricsJsonAfterRun(cfg, workload);
        EXPECT_EQ(got, oracle)
            << workload << " metrics diverged at par.shards="
            << shards;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, MetricsDeterminism,
                         ::testing::Values("kmeans", "btree"));

} // namespace
} // namespace nvo
