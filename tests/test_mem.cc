/**
 * @file
 * Unit tests for the simulated memory layer: BackingStore content and
 * metadata, WriteTracker semantics, DRAM/NVM timing models.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/dram_model.hh"
#include "mem/nvm_model.hh"
#include "mem/write_tracker.hh"

namespace nvo
{
namespace
{

TEST(BackingStore, UntouchedLinesReadZero)
{
    BackingStore bs;
    LineData d;
    bs.readLine(0x1000, d);
    for (auto b : d.bytes)
        EXPECT_EQ(b, 0);
}

TEST(BackingStore, WriteReadRoundTrip)
{
    BackingStore bs;
    LineData in;
    for (unsigned i = 0; i < lineBytes; ++i)
        in.bytes[i] = static_cast<std::uint8_t>(i * 3);
    bs.writeLine(0x40, in);
    LineData out;
    bs.readLine(0x40, out);
    EXPECT_EQ(in, out);
}

TEST(BackingStore, PatchWithinLine)
{
    BackingStore bs;
    std::uint64_t v = 0xdeadbeefcafef00dull;
    bs.applyPatch(0x1008, &v, 8);
    LineData out;
    bs.readLine(0x1000, out);
    std::uint64_t got;
    std::memcpy(&got, out.bytes.data() + 8, 8);
    EXPECT_EQ(got, v);
    EXPECT_EQ(out.bytes[0], 0);
}

TEST(BackingStore, LineMetaRoundTrip)
{
    BackingStore bs;
    EXPECT_EQ(bs.lineOid(0x2000), 0u);
    bs.setLineMeta(0x2000, 42, 1234);
    EXPECT_EQ(bs.lineOid(0x2000), 42u);
    EXPECT_EQ(bs.lineSeq(0x2000), 1234u);
    // Other lines on the same page unaffected.
    EXPECT_EQ(bs.lineOid(0x2040), 0u);
}

TEST(BackingStore, SparsePagesMaterializeOnDemand)
{
    BackingStore bs;
    EXPECT_EQ(bs.numPages(), 0u);
    LineData d;
    bs.readLine(0x5000, d);
    EXPECT_EQ(bs.numPages(), 0u);   // reads do not materialize
    bs.writeLine(0x5000, d);
    bs.writeLine(0x5040, d);
    EXPECT_EQ(bs.numPages(), 1u);   // same page
    bs.writeLine(0x9000, d);
    EXPECT_EQ(bs.numPages(), 2u);
}

TEST(BackingStore, ClearDropsEverything)
{
    BackingStore bs;
    LineData d;
    d.bytes[0] = 7;
    bs.writeLine(0x100, d);
    bs.clear();
    LineData out;
    bs.readLine(0x100, out);
    EXPECT_EQ(out.bytes[0], 0);
    EXPECT_EQ(bs.numPages(), 0u);
}

TEST(LineData, DigestDistinguishesContent)
{
    LineData a, b;
    EXPECT_EQ(a.digest(), b.digest());
    b.bytes[63] = 1;
    EXPECT_NE(a.digest(), b.digest());
}

TEST(WriteTracker, ExpectedDigestPicksLastAtOrBeforeEpoch)
{
    WriteTracker wt;
    wt.record(0x40, 1, 5, 111);
    wt.record(0x40, 2, 5, 222);
    wt.record(0x40, 3, 8, 333);
    EXPECT_EQ(wt.expectedDigest(0x40, 4), std::nullopt);
    EXPECT_EQ(wt.expectedDigest(0x40, 5).value(), 222u);
    EXPECT_EQ(wt.expectedDigest(0x40, 7).value(), 222u);
    EXPECT_EQ(wt.expectedDigest(0x40, 8).value(), 333u);
    EXPECT_EQ(wt.expectedDigest(0x80, 8), std::nullopt);
}

TEST(WriteTracker, MonotonicityCheck)
{
    WriteTracker wt;
    wt.record(0x40, 1, 5, 1);
    wt.record(0x40, 2, 7, 2);
    EXPECT_TRUE(wt.epochsMonotonic());
    wt.record(0x40, 3, 6, 3);
    EXPECT_FALSE(wt.epochsMonotonic());
}

TEST(NvmModel, BurstsAbsorbedByBuffer)
{
    NvmModel::Params p;
    p.bufferBytes = 1 << 20;
    NvmModel nvm(p, nullptr);
    // A burst far smaller than the buffer must not stall.
    Cycle total_stall = 0;
    for (int i = 0; i < 1000; ++i)
        total_stall += nvm.write(i * 64, 64, 100, NvmWriteKind::Data)
                           .stall;
    EXPECT_EQ(total_stall, 0u);
}

TEST(NvmModel, SustainedOversubscriptionStalls)
{
    NvmModel::Params p;
    p.banks = 4;
    p.writeOccupancy = 400;
    p.bufferBytes = 4096;   // tiny buffer
    NvmModel nvm(p, nullptr);
    // Demand far above 4*64/400 bytes/cycle at a fixed time.
    Cycle total_stall = 0;
    for (int i = 0; i < 10000; ++i)
        total_stall += nvm.write(i * 64, 64, 0, NvmWriteKind::Data)
                           .stall;
    EXPECT_GT(total_stall, 0u);
}

TEST(NvmModel, CompletionReflectsBankOccupancy)
{
    NvmModel::Params p;
    p.banks = 1;
    p.writeOccupancy = 400;
    NvmModel nvm(p, nullptr);
    auto first = nvm.write(0, 64, 0, NvmWriteKind::Data);
    auto second = nvm.write(0, 64, 0, NvmWriteKind::Data);
    EXPECT_EQ(first.completion, 400u);
    EXPECT_EQ(second.completion, 800u);   // serialized on the bank
}

TEST(NvmModel, BanksServeInParallel)
{
    NvmModel::Params p;
    p.banks = 16;
    p.writeOccupancy = 400;
    NvmModel nvm(p, nullptr);
    Cycle worst = 0;
    for (int i = 0; i < 16; ++i)
        worst = std::max(worst,
                         nvm.write(i * 64, 64, 0, NvmWriteKind::Data)
                             .completion);
    EXPECT_EQ(worst, 400u);   // all in distinct banks
}

TEST(NvmModel, StatsRecorded)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    nvm.write(0, 64, 0, NvmWriteKind::Log);
    nvm.read(0, 64, 0);
    EXPECT_EQ(st.nvmWriteBytes[static_cast<int>(NvmWriteKind::Log)],
              64u);
    EXPECT_EQ(st.nvmReadBytes, 64u);
    EXPECT_EQ(nvm.totalWriteBytes(), 64u);
}

TEST(NvmModel, BytesPerCycleMatchesGeometry)
{
    NvmModel::Params p;
    p.banks = 64;
    p.writeOccupancy = 400;
    NvmModel nvm(p, nullptr);
    EXPECT_NEAR(nvm.bytesPerCycle(), 64.0 * 64 / 400, 1e-9);
}

TEST(DramModel, LatencyAndChannelContention)
{
    DramModel::Params p;
    p.channels = 1;
    p.accessLatency = 150;
    p.occupancyPer64B = 18;
    DramModel dram(p, nullptr);
    EXPECT_EQ(dram.read(0, 64, 0), 150u);
    // Second access at the same instant queues behind the first.
    EXPECT_GT(dram.read(64, 64, 0), 150u);
}

TEST(DramModel, StatsRecorded)
{
    RunStats st;
    DramModel dram(DramModel::Params{}, &st);
    dram.read(0, 64, 0);
    dram.write(0, 128, 0);
    EXPECT_EQ(st.dramReadBytes, 64u);
    EXPECT_EQ(st.dramWriteBytes, 128u);
}

} // namespace
} // namespace nvo
