/**
 * @file
 * MNM backend tests: version insertion, the min-ver / recoverable
 * epoch protocol, background merging, time-travel reads, the OMC
 * buffer integration, and garbage collection (paper Sec. V).
 */

#include <gtest/gtest.h>

#include "mem/nvm_model.hh"
#include "nvoverlay/omc.hh"

namespace nvo
{
namespace
{

LineData
lineOf(std::uint8_t fill)
{
    LineData d;
    d.bytes.fill(fill);
    return d;
}

class MnmTest : public ::testing::Test
{
  protected:
    MnmTest() : nvm(NvmModel::Params{}, &stats)
    {
        params.numOmcs = 2;
        params.numVds = 2;
        params.poolBytesPerOmc = 1ull << 22;
        backend = std::make_unique<MnmBackend>(params, nvm, stats);
    }

    void
    rebuild()
    {
        backend = std::make_unique<MnmBackend>(params, nvm, stats);
    }

    RunStats stats;
    NvmModel nvm;
    MnmBackend::Params params;
    std::unique_ptr<MnmBackend> backend;
    SeqNo seq = 0;
};

TEST_F(MnmTest, VersionsLandInPerEpochTables)
{
    backend->insertVersion(0x1000, 3, ++seq, lineOf(1), 0);
    unsigned omc = backend->omcOf(0x1000);
    EpochTable *t = backend->epochTable(omc, 3);
    ASSERT_NE(t, nullptr);
    LineData out;
    EXPECT_TRUE(t->readVersion(0x1000, out));
    EXPECT_EQ(out, lineOf(1));
    EXPECT_GT(stats.nvmDataBytes(), 0u);
}

TEST_F(MnmTest, AddressPartitioningAcrossOmcs)
{
    EXPECT_NE(backend->omcOf(0x1000), backend->omcOf(0x1040));
    EXPECT_EQ(backend->omcOf(0x1000), backend->omcOf(0x1080));
}

TEST_F(MnmTest, RecEpochWaitsForAllVds)
{
    backend->insertVersion(0x1000, 1, ++seq, lineOf(1), 0);
    backend->reportMinVer(0, 5, 0);
    EXPECT_EQ(backend->recEpoch(), 0u)
        << "VD 1 has not certified anything";
    backend->reportMinVer(1, 3, 0);
    EXPECT_EQ(backend->recEpoch(), 2u)
        << "rec-epoch = min(min-vers) - 1";
    backend->reportMinVer(1, 9, 0);
    EXPECT_EQ(backend->recEpoch(), 4u);
}

TEST_F(MnmTest, MinVerNeverRegresses)
{
    backend->reportMinVer(0, 8, 0);
    backend->reportMinVer(1, 8, 0);
    EXPECT_EQ(backend->recEpoch(), 7u);
    backend->reportMinVer(0, 2, 0);   // stale report ignored
    EXPECT_EQ(backend->recEpoch(), 7u);
}

TEST_F(MnmTest, MergePopulatesMaster)
{
    backend->insertVersion(0x1000, 1, ++seq, lineOf(1), 0);
    backend->insertVersion(0x1000, 2, ++seq, lineOf(2), 0);
    backend->insertVersion(0x2040, 2, ++seq, lineOf(3), 0);

    backend->reportMinVer(0, 3, 0);
    backend->reportMinVer(1, 3, 0);
    EXPECT_EQ(backend->recEpoch(), 2u);

    LineData out;
    ASSERT_TRUE(backend->readMaster(0x1000, out));
    EXPECT_EQ(out, lineOf(2)) << "master maps the newest merged epoch";
    ASSERT_TRUE(backend->readMaster(0x2040, out));
    EXPECT_EQ(out, lineOf(3));
    EXPECT_GE(backend->mergesDone(), 2u);
}

TEST_F(MnmTest, MergeMovesNoData)
{
    backend->insertVersion(0x1000, 1, ++seq, lineOf(1), 0);
    unsigned omc = backend->omcOf(0x1000);
    Addr before = backend->epochTable(omc, 1)->lookupNvm(0x1000);
    std::uint64_t data_before = stats.nvmDataBytes();

    backend->reportMinVer(0, 2, 0);
    backend->reportMinVer(1, 2, 0);

    const auto *entry = backend->master(omc).lookup(0x1000);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->nvmAddr, before)
        << "merge copies table entries only (Sec. II-E)";
    EXPECT_EQ(stats.nvmDataBytes(), data_before);
    EXPECT_GT(stats.nvmWriteBytes[static_cast<int>(
                  NvmWriteKind::Mapping)],
              0u);
}

TEST_F(MnmTest, LateVersionBehindRecEpochReachesMaster)
{
    backend->insertVersion(0x1000, 5, ++seq, lineOf(7), 0);
    backend->reportMinVer(0, 6, 0);
    backend->reportMinVer(1, 6, 0);
    ASSERT_EQ(backend->recEpoch(), 5u);

    // A dirty line can migrate between VDs cache-to-cache (Fig. 6
    // optimization 2) and outlive its source VD's certified min-ver,
    // so its write-back can arrive after its epoch's merge pass
    // already ran; it must still become visible to recovery.
    backend->insertVersion(0x2000, 3, ++seq, lineOf(4), 0);
    LineData out;
    ASSERT_TRUE(backend->readMaster(0x2000, out))
        << "late version never merged: silent snapshot hole";
    EXPECT_EQ(out, lineOf(4));

    // ...but a late arrival must never displace a newer mapping.
    backend->insertVersion(0x1000, 2, ++seq, lineOf(9), 0);
    ASSERT_TRUE(backend->readMaster(0x1000, out));
    EXPECT_EQ(out, lineOf(7));

    backend->audit();
}

TEST_F(MnmTest, SnapshotFallThroughSemantics)
{
    backend->insertVersion(0x1000, 2, ++seq, lineOf(2), 0);
    backend->insertVersion(0x1000, 5, ++seq, lineOf(5), 0);

    LineData out;
    EpochWide found;
    EXPECT_FALSE(backend->readSnapshot(0x1000, 1, out, &found));
    ASSERT_TRUE(backend->readSnapshot(0x1000, 2, out, &found));
    EXPECT_EQ(found, 2u);
    EXPECT_EQ(out, lineOf(2));
    ASSERT_TRUE(backend->readSnapshot(0x1000, 4, out, &found));
    EXPECT_EQ(found, 2u) << "largest E' <= 4 mapping the line";
    ASSERT_TRUE(backend->readSnapshot(0x1000, 9, out, &found));
    EXPECT_EQ(found, 5u);
}

TEST_F(MnmTest, BufferAbsorbsRedundantWrites)
{
    params.useBuffer = true;
    params.buffer.sizeBytes = 64 * 1024;
    rebuild();
    for (int i = 0; i < 10; ++i)
        backend->insertVersion(0x1000, 1, ++seq, lineOf(i), 0);
    EXPECT_EQ(stats.omcBufferHits, 9u);
    EXPECT_EQ(stats.omcBufferMisses, 1u);
    EXPECT_EQ(stats.nvmDataBytes(), 0u)
        << "writes deferred while buffered";
    backend->drainBuffers(0);
    EXPECT_EQ(stats.nvmDataBytes(), 64u) << "one write on drain";
    LineData out;
    unsigned omc = backend->omcOf(0x1000);
    backend->epochTable(omc, 1)->readVersion(0x1000, out);
    EXPECT_EQ(out, lineOf(9)) << "content is the newest absorbed";
}

TEST_F(MnmTest, BufferEpochConflictWritesThrough)
{
    params.useBuffer = true;
    rebuild();
    backend->insertVersion(0x1000, 1, ++seq, lineOf(1), 0);
    backend->insertVersion(0x1000, 2, ++seq, lineOf(2), 0);
    EXPECT_EQ(stats.nvmDataBytes(), 64u)
        << "epoch-1 version forced out to the device";
}

TEST_F(MnmTest, FinalizeFlushesMetadataAndRecEpoch)
{
    backend->insertVersion(0x1000, 1, ++seq, lineOf(1), 0);
    backend->reportMinVer(0, 2, 0);
    backend->reportMinVer(1, 2, 0);
    std::uint64_t map_before = stats.nvmWriteBytes[static_cast<int>(
        NvmWriteKind::Mapping)];
    backend->finalize(0);
    EXPECT_GE(stats.nvmWriteBytes[static_cast<int>(
                  NvmWriteKind::Mapping)],
              map_before + 8);   // at least the rec-epoch word
}

TEST_F(MnmTest, UpdateStatsAggregates)
{
    backend->insertVersion(0x1000, 1, ++seq, lineOf(1), 0);
    backend->reportMinVer(0, 2, 0);
    backend->reportMinVer(1, 2, 0);
    backend->updateStats();
    EXPECT_GT(stats.masterTableBytes, 0u);
    EXPECT_EQ(stats.masterMappedLines, 1u);
    EXPECT_GT(stats.epochTableBytes, 0u);
    EXPECT_GT(stats.poolPagesInUse, 0u);
}

TEST_F(MnmTest, CompactionReclaimsStaleEpochs)
{
    params.compactionThreshold = 0.5;
    rebuild();
    // Epoch 1 writes lines; epoch 2 overwrites all of them, making
    // epoch 1 fully stale after both merge.
    for (unsigned i = 0; i < 64; ++i)
        backend->insertVersion(0x10000 + i * 64, 1, ++seq, lineOf(1),
                               0);
    for (unsigned i = 0; i < 64; ++i)
        backend->insertVersion(0x10000 + i * 64, 2, ++seq, lineOf(2),
                               0);
    backend->reportMinVer(0, 3, 0);
    backend->reportMinVer(1, 3, 0);

    unsigned omc0 = backend->omcOf(0x10000);
    std::uint64_t bytes_before = backend->pool(omc0).bytesAllocated();
    backend->compact(0);
    EXPECT_LT(backend->pool(omc0).bytesAllocated(), bytes_before)
        << "fully-stale epoch-1 sub-pages reclaimed";
    // The current image is intact.
    LineData out;
    ASSERT_TRUE(backend->readMaster(0x10000, out));
    EXPECT_EQ(out, lineOf(2));
}

TEST_F(MnmTest, CompactionCopiesLiveVersionsForward)
{
    params.compactionThreshold = 0.5;
    rebuild();
    // Epoch 1: two pages of versions. Epoch 2 overwrites only one of
    // them, so epoch 1 keeps live versions that must be copied
    // forward when compaction runs.
    for (unsigned i = 0; i < 8; ++i)
        backend->insertVersion(0x20000 + i * 64, 1, ++seq,
                               lineOf(10 + i), 0);
    for (unsigned i = 0; i < 8; ++i)
        backend->insertVersion(0x30000 + i * 64, 1, ++seq,
                               lineOf(20 + i), 0);
    for (unsigned i = 0; i < 8; ++i)
        backend->insertVersion(0x30000 + i * 64, 2, ++seq,
                               lineOf(30 + i), 0);
    backend->reportMinVer(0, 3, 0);
    backend->reportMinVer(1, 3, 0);

    backend->compact(0);
    EXPECT_GT(stats.gcBytesCopied, 0u);
    // Live epoch-1 versions still readable through the master.
    for (unsigned i = 0; i < 8; ++i) {
        LineData out;
        ASSERT_TRUE(backend->readMaster(0x20000 + i * 64, out));
        EXPECT_EQ(out, lineOf(10 + i)) << "line " << i;
        ASSERT_TRUE(backend->readMaster(0x30000 + i * 64, out));
        EXPECT_EQ(out, lineOf(30 + i));
    }
}

TEST_F(MnmTest, PoolAutoExtendsWhenFull)
{
    params.poolBytesPerOmc = pageBytes;   // one page per OMC
    params.extendPages = 4;
    rebuild();
    // Insert more than a page of versions into one partition.
    for (unsigned i = 0; i < 128; ++i)
        backend->insertVersion(0x40000 + i * 128, 1, ++seq, lineOf(1),
                               0);
    EXPECT_GT(stats.extra["pool_extensions"], 0u);
}

} // namespace
} // namespace nvo
