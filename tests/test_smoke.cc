/**
 * @file
 * End-to-end smoke tests: small full-system runs per scheme, and the
 * headline recovery-correctness property for NVOverlay.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"

namespace nvo
{
namespace
{

Config
smallConfig()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(300));
    cfg.set("epoch.stores_global", std::uint64_t(4000));
    cfg.set("wl.btree.prefill", std::uint64_t(2048));
    cfg.set("wl.art.prefill", std::uint64_t(2048));
    cfg.set("wl.rbtree.prefill", std::uint64_t(2048));
    cfg.set("wl.hashtable.prefill", std::uint64_t(2048));
    return cfg;
}

TEST(Smoke, NoneSchemeRuns)
{
    setQuiet(true);
    Config cfg = smallConfig();
    System sys(cfg, "none", "btree");
    sys.run();
    EXPECT_GT(sys.stats().cycles, 0u);
    EXPECT_GT(sys.stats().stores, 0u);
    EXPECT_EQ(sys.hierarchy().checkInvariants(), "");
}

TEST(Smoke, NVOverlayRunsAndRecovers)
{
    setQuiet(true);
    Config cfg = smallConfig();
    cfg.set("sim.track_writes", "true");
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    EXPECT_EQ(sys.hierarchy().checkInvariants(), "");

    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_GT(scheme.backend().recEpoch(), 0u);

    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    EXPECT_GT(result.linesRestored, 0u);
    EXPECT_EQ(RecoveryManager::validate(result, scheme.backend()), "");

    // The correctness theorem: every recovered line matches the last
    // committed store with epoch <= rec-epoch.
    WriteTracker *tracker = sys.tracker();
    ASSERT_NE(tracker, nullptr);
    EXPECT_TRUE(tracker->epochsMonotonic());
    unsigned mismatches = 0;
    for (Addr line : tracker->trackedLines()) {
        auto expect =
            tracker->expectedDigest(line, result.recEpoch);
        if (!expect)
            continue;
        LineData got;
        ASSERT_TRUE(result.image != nullptr);
        result.image->readLine(line, got);
        if (got.digest() != *expect)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(Smoke, AllSchemesRunBTree)
{
    setQuiet(true);
    for (const char *scheme :
         {"swlog", "swshadow", "hwshadow", "picl", "picl-l2"}) {
        Config cfg = smallConfig();
        cfg.set("wl.ops", std::uint64_t(100));
        System sys(cfg, scheme, "btree");
        sys.run();
        EXPECT_GT(sys.stats().cycles, 0u) << scheme;
        EXPECT_EQ(sys.hierarchy().checkInvariants(), "") << scheme;
    }
}

TEST(Smoke, AllWorkloadsRunNone)
{
    setQuiet(true);
    for (const auto &wl : paperWorkloads()) {
        Config cfg = smallConfig();
        cfg.set("wl.ops", std::uint64_t(60));
        System sys(cfg, "none", wl);
        sys.run();
        EXPECT_GT(sys.stats().refs, 0u) << wl;
        EXPECT_EQ(sys.hierarchy().checkInvariants(), "") << wl;
    }
}

} // namespace
} // namespace nvo
