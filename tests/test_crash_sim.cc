/**
 * @file
 * Crash-campaign driver: seeded crash points, recovery verification
 * against the shadow tracker, and detection of a deliberately seeded
 * missing-barrier durability bug (paper Sec. V-E, "crash anywhere").
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "fault/crash_sim.hh"
#include "fault/fault.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"

namespace nvo
{
namespace
{

Config
smallConfig()
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("epoch.stores_global", std::uint64_t(30000));
    return cfg;
}

TEST(CrashSim, PowerCutAtCycleRecoversConsistently)
{
    Config cfg = smallConfig();
    fault::CrashSimulator sim(cfg, "nvoverlay", "btree");
    for (Cycle cut : {200000ull, 600000ull, 1200000ull}) {
        fault::CrashPlan plan;
        plan.cycle = cut;
        fault::CrashReport rep = sim.run(plan);
        EXPECT_TRUE(rep.crashed);
        EXPECT_TRUE(rep.consistent())
            << "cut at " << cut << ": " << rep.mismatches
            << " mismatches, error '" << rep.error << "'";
    }
}

TEST(CrashSim, CampaignPassesOnHealthyProtocol)
{
    Config cfg = smallConfig();
    fault::CampaignParams params;
    params.workloads = {"btree", "kmeans"};
    params.trials = 8;
    params.seed = 42;
    fault::CampaignResult res = runCrashCampaign(cfg, params);
    EXPECT_EQ(res.trials, 8u);
    EXPECT_TRUE(res.passed()) << res.failingRepro;
    EXPECT_GT(res.linesChecked, 0u);
}

#ifdef NVO_FAULT_ENABLED

TEST(CrashSim, PointCrashUnwindsMidOperation)
{
    Config cfg = smallConfig();
    fault::CrashSimulator sim(cfg, "nvoverlay", "btree");
    fault::CrashPlan plan;
    plan.point = "omc.merge.version";
    plan.hit = 7;
    fault::CrashReport rep = sim.run(plan);
    EXPECT_TRUE(rep.crashed);
    EXPECT_EQ(rep.firedPoint, "omc.merge.version");
    EXPECT_EQ(rep.firedHit, 7u);
    EXPECT_TRUE(rep.consistent())
        << rep.mismatches << " mismatches, error '" << rep.error
        << "'";
}

TEST(CrashSim, PlanThatNeverFiresVerifiesFinalImage)
{
    Config cfg = smallConfig();
    fault::CrashSimulator sim(cfg, "nvoverlay", "btree");
    fault::CrashPlan plan;
    plan.point = "omc.insert";
    plan.hit = 1ull << 40;   // far beyond any real hit count
    fault::CrashReport rep = sim.run(plan);
    EXPECT_FALSE(rep.crashed);
    EXPECT_TRUE(rep.consistent());
    EXPECT_GT(rep.linesChecked, 0u);
}

TEST(CrashSim, TransientNvmErrorsAreRetried)
{
    // Three consecutive device-write errors on the OMC drain path:
    // the retry/backoff loop must absorb them (no crash, consistent
    // final image) and account each retry.
    Config cfg = smallConfig();
    cfg.set("sim.track_writes", "true");
    fault::FaultPlan fp;
    fp.nvmErrorAt("omc.device_write", 5, 3);
    fault::ScopedPlan armed(std::move(fp));
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    auto it = sys.stats().extra.find("nvm_write_retries");
    ASSERT_NE(it, sys.stats().extra.end());
    EXPECT_EQ(it->second, 3u);
}

TEST(CrashSim, SeededMissingBarrierBugIsCaught)
{
    // mnm.test_skip_rec_barrier persists the rec-epoch word without
    // fencing the merge writes before it — the campaign must see
    // recovery mismatches for crashes that land after a rec-epoch
    // advance.
    Config cfg = smallConfig();
    cfg.set("mnm.test_skip_rec_barrier", "true");
    fault::CampaignParams params;
    params.workloads = {"btree"};
    params.trials = 10;
    params.seed = 7;
    fault::CampaignResult res = runCrashCampaign(cfg, params);
    EXPECT_FALSE(res.passed())
        << "a missing persist barrier must not survive the campaign";
    EXPECT_FALSE(res.failingRepro.empty());
}

#endif // NVO_FAULT_ENABLED

} // namespace
} // namespace nvo
