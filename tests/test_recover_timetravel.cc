/**
 * @file
 * Time travel after crash recovery. The paper's Sec. V-E debugger
 * workflow is: crash, rebuild the current image with the
 * RecoveryManager, then step *backwards* through history with the
 * SnapshotReader. That only works if the rebuild is a pure reader —
 * it must not consume or merge the per-epoch tables it walks. These
 * tests run the full sequence and check both views stay correct and
 * mutually consistent.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"
#include "nvoverlay/snapshot_reader.hh"

namespace nvo
{
namespace
{

Config
timeTravelConfig()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("wl.btree.prefill", std::uint64_t(2048));
    cfg.set("wl.hashtable.prefill", std::uint64_t(2048));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    cfg.set("sim.track_writes", "true");
    return cfg;
}

/**
 * Crash at @p crash_at (0 = clean shutdown), recover, then time
 * travel: every historical epoch read through the SnapshotReader
 * must still match the write tracker after the rebuild.
 */
void
checkTimeTravelAfterRecovery(Config cfg, const std::string &workload,
                             Cycle crash_at)
{
    setQuiet(true);
    System sys(cfg, "nvoverlay", workload);
    if (crash_at == 0)
        sys.run();
    else
        sys.runUntil(crash_at);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());

    WriteTracker *tracker = sys.tracker();
    ASSERT_NE(tracker, nullptr);

    // Rebuild the current image first...
    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    ASSERT_EQ(RecoveryManager::validate(result, scheme.backend()), "");
    EpochWide rec = result.recEpoch;
    ASSERT_GT(rec, 1u) << "need history to travel through";

    // ...then read history through the SnapshotReader.
    SnapshotReader reader(scheme.backend());
    unsigned checked = 0, mismatches = 0;
    for (Addr line : tracker->trackedLines()) {
        for (EpochWide e = 1; e <= rec; e += 2) {
            auto expect = tracker->expectedDigest(line, e);
            auto got = reader.readLine(line, e);
            if (!expect) {
                EXPECT_FALSE(got.has_value())
                    << "line " << std::hex << line << std::dec
                    << " had no store at epoch " << e;
                continue;
            }
            ASSERT_TRUE(got.has_value())
                << "line " << std::hex << line << std::dec
                << " lost at epoch " << e << " after rebuild";
            EXPECT_LE(got->epoch, e);
            ++checked;
            if (got->data.digest() != *expect)
                ++mismatches;
        }
        if (checked > 6000)
            break;
    }
    EXPECT_EQ(mismatches, 0u)
        << workload << " crash@" << crash_at << " rec=" << rec;
    EXPECT_GT(checked, 100u);

    // The two views agree at rec-epoch: the rebuilt image and the
    // snapshot at rec must read identically for every tracked line
    // the tracker has history for.
    unsigned agree_checked = 0;
    for (Addr line : tracker->trackedLines()) {
        auto expect = tracker->expectedDigest(line, rec);
        if (!expect)
            continue;
        auto snap = reader.readLine(line, rec);
        ASSERT_TRUE(snap.has_value());
        LineData img;
        result.image->readLine(line, img);
        EXPECT_EQ(snap->data.digest(), img.digest())
            << "image and snapshot diverge at rec-epoch";
        if (++agree_checked > 2000)
            break;
    }
    EXPECT_GT(agree_checked, 0u);
}

TEST(TimeTravelAfterRecovery, CleanShutdownBtree)
{
    checkTimeTravelAfterRecovery(timeTravelConfig(), "btree", 0);
}

TEST(TimeTravelAfterRecovery, MidRunCrashBtree)
{
    checkTimeTravelAfterRecovery(timeTravelConfig(), "btree", 900000);
}

TEST(TimeTravelAfterRecovery, MidRunCrashHashtable)
{
    checkTimeTravelAfterRecovery(timeTravelConfig(), "hashtable",
                                 700000);
}

TEST(TimeTravelAfterRecovery, RecoverTwiceIsIdempotent)
{
    setQuiet(true);
    Config cfg = timeTravelConfig();
    System sys(cfg, "nvoverlay", "btree");
    sys.runUntil(800000);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());

    RecoveryManager rm1(scheme.backend());
    auto first = rm1.recover();
    RecoveryManager rm2(scheme.backend());
    auto second = rm2.recover();
    EXPECT_EQ(first.recEpoch, second.recEpoch);
    EXPECT_EQ(first.linesRestored, second.linesRestored);

    unsigned compared = 0;
    WriteTracker *tracker = sys.tracker();
    ASSERT_NE(tracker, nullptr);
    for (Addr line : tracker->trackedLines()) {
        LineData a, b;
        first.image->readLine(line, a);
        second.image->readLine(line, b);
        EXPECT_EQ(a.digest(), b.digest());
        if (++compared > 2000)
            break;
    }
    EXPECT_GT(compared, 0u);
}

} // namespace
} // namespace nvo
