/**
 * @file
 * Adaptive policy engine (src/policy, docs/POLICY.md).
 *
 * Controller oracles reproduce the integer arithmetic by hand so any
 * drift in the PI/hysteresis step is a test diff, not a tuning
 * surprise. System-level tests pin the two load-bearing contracts:
 * the engine's decisions are byte-identical across shard engines
 * (stats JSON compare, the test_par.cc pattern), and the epoch pacer
 * demonstrably reacts to `nvm.write_bw_budget` — a run with the
 * budget set must steer the epoch length away from the same run
 * without it. Satellite coverage: NVM wear accounting, the phased
 * workload wrapper, and the epoch-series row cap.
 */

#include <gtest/gtest.h>

#include <regex>
#include <sstream>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats_json.hh"
#include "policy/controller.hh"
#include "policy/engine.hh"
#include "workload/phase_shift.hh"

namespace nvo
{
namespace
{

// --- PI controller oracles ------------------------------------------

TEST(PidController, PureProportionalTracksScaledError)
{
    policy::PidParams p;
    p.setpoint = 1000;
    p.kpNum = 64;   // gain 1.0 over kGainDen=64
    policy::PidController pid(p);
    EXPECT_EQ(pid.step(900), 100);    // err = +100
    EXPECT_EQ(pid.step(1100), -100);  // err = -100
    EXPECT_EQ(pid.step(1000), 0);
}

TEST(PidController, IntegralAccumulatesPersistentError)
{
    policy::PidParams p;
    p.setpoint = 100;
    p.kiNum = 64;   // integral-only, gain 1.0
    policy::PidController pid(p);
    // Constant err = +10: the integrator ramps 10, 20, 30...
    EXPECT_EQ(pid.step(90), 10);
    EXPECT_EQ(pid.step(90), 20);
    EXPECT_EQ(pid.step(90), 30);
    EXPECT_EQ(pid.integrator(), 30);
}

TEST(PidController, DivisionTruncatesTowardZeroBothSigns)
{
    // kp=1/64: out = err/64 with C++ truncation — -63/64 is 0, not
    // -1. The engine's arithmetic depends on this exact rounding.
    policy::PidParams p;
    p.kpNum = 1;
    policy::PidController pid(p);
    EXPECT_EQ(pid.step(-63), 0);    // err = +63  -> 63/64  = 0
    EXPECT_EQ(pid.step(63), 0);     // err = -63  -> -63/64 = 0
    pid.reset();
    EXPECT_EQ(pid.step(-65), 1);    // err = +65  -> 65/64  = 1
    pid.reset();
    EXPECT_EQ(pid.step(65), -1);
}

TEST(PidController, OutputClampAndAntiWindup)
{
    policy::PidParams p;
    p.setpoint = 0;
    p.kiNum = 64;
    p.outMin = -50;
    p.outMax = 50;
    p.integMin = -80;
    p.integMax = 80;
    policy::PidController pid(p);
    // err = +100 each step: the integrator saturates at 80 (not
    // 100/200/...), and the output pins at the clamp.
    EXPECT_EQ(pid.step(-100), 50);
    EXPECT_EQ(pid.integrator(), 80);
    EXPECT_EQ(pid.step(-100), 50);
    EXPECT_EQ(pid.integrator(), 80);
    // One opposite-sign error immediately unwinds from the clamp —
    // the windup bound is what keeps recovery prompt.
    EXPECT_EQ(pid.step(100), -20);   // integ 80-100 = -20
    EXPECT_EQ(pid.integrator(), -20);
}

TEST(PidController, SetpointRetargetKeepsHistory)
{
    policy::PidParams p;
    p.setpoint = 10;
    p.kiNum = 64;
    policy::PidController pid(p);
    pid.step(0);   // integ = 10
    pid.setSetpoint(20);
    EXPECT_EQ(pid.step(0), 30);   // integ = 10 + 20
    EXPECT_EQ(pid.lastError(), 20);
}

// --- Hysteresis oracles ---------------------------------------------

TEST(HysteresisController, DeadBandPreventsFlapping)
{
    policy::HysteresisParams p;
    p.hi = 100;
    p.lo = 50;
    policy::HysteresisController hys(p);
    EXPECT_FALSE(hys.step(99));    // below hi: stays off
    EXPECT_TRUE(hys.step(100));    // engages at hi
    EXPECT_TRUE(hys.step(60));     // inside the band: stays on
    EXPECT_TRUE(hys.step(51));
    EXPECT_FALSE(hys.step(50));    // releases at lo
    EXPECT_FALSE(hys.step(99));    // below hi again: stays off
    EXPECT_EQ(hys.transitions(), 2u);
}

TEST(HysteresisController, InitialStateAndReset)
{
    policy::HysteresisParams p;
    p.hi = 10;
    p.lo = 5;
    p.initial = true;
    policy::HysteresisController hys(p);
    EXPECT_TRUE(hys.engaged());
    EXPECT_FALSE(hys.step(5));
    EXPECT_EQ(hys.transitions(), 1u);
    hys.reset();
    EXPECT_TRUE(hys.engaged());
    EXPECT_EQ(hys.transitions(), 0u);
}

// --- Phased workload wrapper ----------------------------------------

TEST(PhaseShift, ParseSpecSplitsNamesAndOps)
{
    auto spec =
        PhaseShiftWorkload::parseSpec("btree:2048,kmeans:100");
    ASSERT_EQ(spec.size(), 2u);
    EXPECT_EQ(spec[0].first, "btree");
    EXPECT_EQ(spec[0].second, 2048u);
    EXPECT_EQ(spec[1].first, "kmeans");
    EXPECT_EQ(spec[1].second, 100u);
}

TEST(PhaseShiftDeath, MalformedSpecsAreFatal)
{
    EXPECT_DEATH(PhaseShiftWorkload::parseSpec(""), "wl.phases");
    EXPECT_DEATH(PhaseShiftWorkload::parseSpec("btree"), "wl.phases");
    EXPECT_DEATH(PhaseShiftWorkload::parseSpec("btree:0"),
                 "wl.phases");
}

TEST(PhaseShift, ThreadsAdvanceThroughEveryPhase)
{
    Config cfg = defaultConfig();
    cfg.set("wl.threads", std::uint64_t(2));
    cfg.set("wl.phases", "hashtable:20,btree:30");
    WorkloadBase::Params p;
    p.numThreads = 2;
    p.seed = 1;
    PhaseShiftWorkload wl(p, cfg);
    ASSERT_EQ(wl.numPhases(), 2u);
    EXPECT_EQ(wl.phaseName(0), "hashtable");
    EXPECT_EQ(wl.phaseOps(1), 30u);
    EXPECT_EQ(wl.minPhase(), 0u);

    // Walk thread 0 into phase 1 and on to its very last op; thread
    // 1 stays in phase 0, so the run-level phase (the slowest
    // thread's) must not move. The outer quota (sum of phase ops)
    // stops generation before the final phase reports exhaustion, so
    // a drained thread still reads as "in" the last phase.
    std::vector<MemRef> refs;
    for (int i = 0; i < 21; ++i) {
        refs.clear();
        ASSERT_TRUE(wl.nextOp(0, refs));
        EXPECT_FALSE(refs.empty());
    }
    EXPECT_EQ(wl.phaseOf(0), 1u);
    for (int i = 21; i < 50; ++i) {
        refs.clear();
        ASSERT_TRUE(wl.nextOp(0, refs));
    }
    EXPECT_EQ(wl.phaseOf(0), 1u);
    EXPECT_EQ(wl.phaseOf(1), 0u);
    EXPECT_EQ(wl.minPhase(), 0u);
    refs.clear();
    EXPECT_FALSE(wl.nextOp(0, refs));   // quota = sum of phases
}

TEST(PhaseShift, PerPhaseOverridesRewriteOntoInnerConfig)
{
    // Identical phases except the phase-1 override: the generated
    // streams must differ, proving wl.phase1.* reached the inner
    // workload.
    Config a = defaultConfig();
    a.set("wl.threads", std::uint64_t(1));
    a.set("wl.phases", "kmeans:8,kmeans:8");
    Config b = a;
    b.set("wl.phase1.kmeans.points", std::uint64_t(64));

    WorkloadBase::Params p;
    p.numThreads = 1;
    p.seed = 5;
    PhaseShiftWorkload wa(p, a), wb(p, b);
    bool diverged = false;
    std::vector<MemRef> ra, rb;
    for (int i = 0; i < 16; ++i) {
        ra.clear();
        rb.clear();
        ASSERT_TRUE(wa.nextOp(0, ra));
        ASSERT_TRUE(wb.nextOp(0, rb));
        if (ra.size() != rb.size()) {
            diverged = true;
            break;
        }
        for (std::size_t j = 0; j < ra.size(); ++j)
            if (ra[j].addr != rb[j].addr)
                diverged = true;
    }
    EXPECT_TRUE(diverged);
}

// --- Epoch-series row cap -------------------------------------------

TEST(EpochSeries, RowCapDecimatesAndBoundsMemory)
{
    obs::EpochSeries series;
    std::uint64_t v = 0;
    series.addProbe("v", [&] { return v; });
    series.setMaxRows(8);
    for (std::uint64_t i = 1; i <= 1000; ++i) {
        v = i;
        series.sample(i, i * 10);
    }
    // Memory stays bounded no matter how long the run gets...
    EXPECT_LE(series.numSamples(), 8u);
    EXPECT_GE(series.numSamples(), 4u);
    // ...the decimation factor reports the row spacing...
    EXPECT_GE(series.decimation(), 1000u / 8u);
    // ...and the kept rows are genuine samples in order.
    for (std::size_t r = 1; r < series.numSamples(); ++r)
        EXPECT_LT(series.value(r - 1, 0), series.value(r, 0));

    // The closing row always lands, even mid-decimation-skip.
    v = 5000;
    series.sampleForced(1001, 10010);
    EXPECT_EQ(series.value(series.numSamples() - 1, 2), 5000u);
}

// --- System-level: NVM wear accounting ------------------------------

Config
tinyConfig(std::uint64_t ops)
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(16));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", ops);
    return cfg;
}

TEST(NvmWear, StatsExportedOnlyWhenEnabled)
{
    Config off = tinyConfig(120);
    System soff(off, "nvoverlay", "hashtable");
    soff.run();
    EXPECT_EQ(soff.stats().extra.count("nvm_wear_regions"), 0u);

    Config on = tinyConfig(120);
    on.set("nvm.wear.enabled", std::uint64_t(1));
    System son(on, "nvoverlay", "hashtable");
    son.run();
    const auto &ex = son.stats().extra;
    ASSERT_EQ(ex.count("nvm_wear_regions"), 1u);
    EXPECT_GT(ex.at("nvm_wear_regions"), 0u);
    EXPECT_GT(ex.at("nvm_wear_line_writes"), 0u);
    // max >= mean by construction; ratio is x1000-scaled max/mean.
    EXPECT_GE(ex.at("nvm_wear_max_writes") * 1000,
              ex.at("nvm_wear_mean_writes_x1000"));
    EXPECT_GE(ex.at("nvm_wear_ratio_x1000"), 1000u);
    // The wear model only observes; the simulated outcome must be
    // identical with it on or off.
    EXPECT_EQ(son.stats().cycles, soff.stats().cycles);
    EXPECT_EQ(son.stats().totalNvmWriteBytes(),
              soff.stats().totalNvmWriteBytes());
}

// --- System-level: the pacer reacts to the budget -------------------

TEST(PolicyEngineSystem, EpochPacerSteersLengthTowardBudget)
{
    // Seeded must-fail: without the budget the epoch length never
    // moves off its configured value; with it the pacer must actuate
    // and leave the length somewhere else. A regression that silently
    // disconnects the controller from the knob fails the inequality.
    Config base = tinyConfig(600);
    base.set("epoch.stores_global", std::uint64_t(8000));

    System plain(base, "nvoverlay", "hashtable");
    plain.run();
    EXPECT_EQ(plain.stats().extra.count("policy_evals"), 0u);

    Config paced = base;
    paced.set("policy.enabled", std::uint64_t(1));
    paced.set("nvm.write_bw_budget", std::uint64_t(1800));
    System sys(paced, "nvoverlay", "hashtable");
    sys.run();
    const auto &ex = sys.stats().extra;
    ASSERT_EQ(ex.count("policy_evals"), 1u);
    EXPECT_GT(ex.at("policy_evals"), 0u);
    EXPECT_GT(ex.at("policy_epoch_sets"), 0u);
    // Initial per-VD length = stores_global / uops_per_ref / 8 VDs.
    std::uint64_t initial = 8000 / 16 / 8;
    EXPECT_NE(ex.at("policy_epoch_len"), initial);
}

TEST(PolicyEngineSystem, DisabledPolicyLeavesStatsByteUnchanged)
{
    // policy.enabled=0 must not merely skip actuation — the stats
    // JSON (resolved config included) has to be byte-identical to a
    // run that never mentioned the policy keys, modulo the keys
    // themselves.
    auto statsJson = [](const Config &cfg) {
        System sys(cfg, "nvoverlay", "hashtable");
        sys.run();
        std::ostringstream os;
        obs::writeStatsJson(os, "nvoverlay", "hashtable",
                            sys.config(), sys.stats(),
                            &sys.epochSeries(), 0.0);
        // Host wall-clock extras are the one legitimately
        // nondeterministic field.
        return std::regex_replace(
            os.str(),
            std::regex(",\"host_(run|finalize)_us\":[0-9]+"), "");
    };
    std::string pristine = statsJson(tinyConfig(150));
    Config off = tinyConfig(150);
    off.set("policy.enabled", std::uint64_t(0));
    std::string disabled = std::regex_replace(
        statsJson(off),
        std::regex("\"policy\\.enabled\":\"0\",?"), "");
    EXPECT_EQ(disabled, pristine);
}

// --- System-level: shard-count byte-identity with the policy on -----

std::string
normalizedStatsJson(const Config &cfg)
{
    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();
    std::ostringstream os;
    std::function<void(obs::JsonWriter &)> policy_section;
    if (const policy::PolicyEngine *pe = sys.policyEngine())
        policy_section = [pe](obs::JsonWriter &w) {
            pe->writeJson(w);
        };
    obs::writeStatsJson(os, "nvoverlay", "hashtable", sys.config(),
                        sys.stats(), &sys.epochSeries(), 0.0,
                        policy_section);
    std::string text = os.str();
    text = std::regex_replace(
        text, std::regex("\"par\\.[a-z_]+\":\"[^\"]*\","), "");
    text = std::regex_replace(
        text, std::regex(",\"host_(run|finalize)_us\":[0-9]+"), "");
    return text;
}

TEST(PolicyEngineSystem, DecisionsByteIdenticalAcrossShardCounts)
{
    Config base = tinyConfig(300);
    base.set("epoch.stores_global", std::uint64_t(8000));
    base.set("policy.enabled", std::uint64_t(1));
    base.set("nvm.write_bw_budget", std::uint64_t(1800));
    base.set("policy.walker.hi", std::uint64_t(4));
    base.set("policy.compact.hi", std::uint64_t(200));
    base.set("policy.compact.lo", std::uint64_t(100));

    std::string oracle = normalizedStatsJson(base);
    ASSERT_FALSE(oracle.empty());
    // The oracle run actually exercised the engine.
    EXPECT_NE(oracle.find("\"policy\""), std::string::npos);
    EXPECT_NE(oracle.find("\"policy_evals\""), std::string::npos);
    for (std::uint64_t shards : {1, 2, 8}) {
        Config cfg = base;
        cfg.set("par.shards", shards);
        EXPECT_EQ(normalizedStatsJson(cfg), oracle)
            << "policy decisions diverged at par.shards=" << shards;
    }
}

} // namespace
} // namespace nvo
