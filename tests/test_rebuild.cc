/**
 * @file
 * Post-crash rebuild of volatile OMC structures from the persistent,
 * self-describing sub-page headers (paper Sec. V-E: "Volatile OMC
 * data structures are also rebuilt during the recovery"), plus the
 * super-block OID tracking option (Sec. V-F).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "mem/nvm_model.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/recovery.hh"
#include "nvoverlay/snapshot_reader.hh"

namespace nvo
{
namespace
{

LineData
lineOf(std::uint8_t fill)
{
    LineData d;
    d.bytes.fill(fill);
    return d;
}

TEST(Rebuild, TablesRecoverFromHeaders)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 2;
    params.numVds = 2;
    MnmBackend backend(params, nvm, stats);

    SeqNo seq = 0;
    std::map<std::pair<Addr, EpochWide>, LineData> truth;
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        Addr a = lineAlign(rng.below(1 << 20));
        EpochWide e = 1 + rng.below(4);
        LineData d = lineOf(static_cast<std::uint8_t>(rng.below(250)));
        backend.insertVersion(a, e, ++seq, d, 0);
        truth[{a, e}] = d;
    }
    backend.reportMinVer(0, 5, 0);
    backend.reportMinVer(1, 5, 0);

    // Crash: volatile tables lost; persistent pool + master survive.
    backend.dropVolatileTables();
    LineData out;
    for (unsigned omc = 0; omc < 2; ++omc)
        for (EpochWide e = 1; e <= 4; ++e)
            EXPECT_EQ(backend.epochTable(omc, e), nullptr);
    // Master reads still work (it is persistent).
    EXPECT_TRUE(backend.readMaster(truth.begin()->first.first, out));

    backend.rebuildTables();
    // Every version is addressable again per epoch.
    unsigned mismatches = 0;
    for (const auto &kv : truth) {
        EpochWide found;
        ASSERT_TRUE(backend.readSnapshot(kv.first.first,
                                         kv.first.second, out,
                                         &found));
        if (found == kv.first.second && !(out == kv.second))
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(Rebuild, TimeTravelWorksAfterCrash)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    cfg.set("wl.btree.prefill", std::uint64_t(2048));
    cfg.set("sim.track_writes", "true");

    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    auto &backend = scheme.backend();
    EpochWide rec = backend.recEpoch();
    ASSERT_GT(rec, 2u);

    backend.dropVolatileTables();
    backend.rebuildTables();

    SnapshotReader reader(backend);
    unsigned checked = 0, mismatches = 0;
    for (Addr line : sys.tracker()->trackedLines()) {
        for (EpochWide e = 1; e <= rec; e += 2) {
            auto expect = sys.tracker()->expectedDigest(line, e);
            if (!expect)
                continue;
            auto got = reader.readLine(line, e);
            ASSERT_TRUE(got.has_value());
            ++checked;
            if (got->data.digest() != *expect)
                ++mismatches;
        }
        if (checked > 2000)
            break;
    }
    EXPECT_EQ(mismatches, 0u);
    EXPECT_GT(checked, 50u);
}

TEST(Rebuild, IntermediateRecEpochWithUnmergedLaterTables)
{
    // Crash-rebuild at an intermediate rec-epoch: epochs 1..4 are
    // merged into the master, while epochs 6..8 still sit unmerged in
    // their per-epoch tables. Recovery must return exactly the
    // rec-epoch-4 image — later unmerged versions may not leak in —
    // and the rebuilt tables must still time-travel into them.
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 2;
    params.numVds = 2;
    MnmBackend backend(params, nvm, stats);

    SeqNo seq = 0;
    std::map<Addr, std::map<EpochWide, LineData>> truth;
    Rng rng(23);
    auto put = [&](Addr a, EpochWide e) {
        LineData d = lineOf(static_cast<std::uint8_t>(rng.below(250)));
        backend.insertVersion(a, e, ++seq, d, 0);
        truth[a][e] = d;
    };
    std::vector<Addr> addrs;
    for (int i = 0; i < 200; ++i)
        addrs.push_back(lineAlign(rng.below(1 << 20)));
    for (Addr a : addrs)
        for (EpochWide e = 1; e <= 4; ++e)
            if (rng.chance(0.6))
                put(a, e);
    backend.reportMinVer(0, 5, 0);
    backend.reportMinVer(1, 5, 0);
    ASSERT_EQ(backend.recEpoch(), 4u);
    for (Addr a : addrs)
        for (EpochWide e = 6; e <= 8; ++e)
            if (rng.chance(0.5))
                put(a, e);

    backend.dropVolatileTables();
    backend.rebuildTables();

    RecoveryManager rm(backend);
    auto result = rm.recover();
    EXPECT_EQ(result.recEpoch, 4u);
    EXPECT_EQ(RecoveryManager::validate(result, backend), "");

    unsigned checked = 0, mismatches = 0;
    for (const auto &kv : truth) {
        const LineData *want = nullptr;
        for (const auto &ve : kv.second)
            if (ve.first <= 4)
                want = &ve.second;
        if (!want)
            continue;
        LineData got;
        result.image->readLine(kv.first, got);
        ++checked;
        if (!(got == *want))
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
    EXPECT_GT(checked, 50u);

    // The unmerged epochs survived the rebuild as tables too.
    SnapshotReader reader(backend);
    for (const auto &kv : truth) {
        for (const auto &ve : kv.second) {
            auto got = reader.readLine(kv.first, ve.first);
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(got->data.digest(), ve.second.digest());
        }
    }
}

TEST(Rebuild, RecoveryAfterCompactionKeepsSurvivingEpochs)
{
    // Compaction rewrites still-live versions into the newest merged
    // epoch and reclaims stale sub-pages. A crash right after must
    // rebuild to exactly the post-compaction state: every surviving
    // (line, epoch) snapshot reads back unchanged.
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 2;
    params.numVds = 2;
    MnmBackend backend(params, nvm, stats);

    SeqNo seq = 0;
    Rng rng(31);
    std::vector<Addr> addrs;
    for (int i = 0; i < 150; ++i)
        addrs.push_back(lineAlign(rng.below(1 << 18)));
    for (EpochWide e = 1; e <= 6; ++e)
        for (Addr a : addrs)
            if (rng.chance(0.7))
                backend.insertVersion(
                    a, e, ++seq,
                    lineOf(static_cast<std::uint8_t>(rng.below(250))),
                    0);
    backend.reportMinVer(0, 7, 0);
    backend.reportMinVer(1, 7, 0);
    ASSERT_EQ(backend.recEpoch(), 6u);

    backend.compact(0);

    // Post-compaction ground truth: the full time-travel surface.
    struct Snap
    {
        bool ok;
        EpochWide found;
        std::uint64_t digest;
    };
    std::map<std::pair<Addr, EpochWide>, Snap> before;
    LineData out;
    for (Addr a : addrs) {
        for (EpochWide e = 1; e <= 6; ++e) {
            EpochWide found = 0;
            bool ok = backend.readSnapshot(a, e, out, &found);
            before[{a, e}] = Snap{ok, found,
                                  ok ? out.digest() : 0};
        }
    }

    backend.dropVolatileTables();
    backend.rebuildTables();

    RecoveryManager rm(backend);
    auto result = rm.recover();
    EXPECT_EQ(result.recEpoch, 6u);
    EXPECT_EQ(RecoveryManager::validate(result, backend), "");

    unsigned mismatches = 0;
    for (const auto &kv : before) {
        EpochWide found = 0;
        bool ok =
            backend.readSnapshot(kv.first.first, kv.first.second, out,
                                 &found);
        if (ok != kv.second.ok ||
            (ok && (found != kv.second.found ||
                    out.digest() != kv.second.digest)))
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u)
        << "rebuild after compaction changed the snapshot surface";
}

TEST(OidGranularity, SuperBlockTagIsMaxOfLines)
{
    BackingStore bs;
    bs.setOidGranularity(4);
    bs.setLineMeta(0x1000, 5, 1);
    bs.setLineMeta(0x1040, 3, 2);   // same super block, older epoch
    EXPECT_EQ(bs.lineOid(0x1000), 5u);
    EXPECT_EQ(bs.lineOid(0x1040), 5u) << "shared tag = block max";
    EXPECT_EQ(bs.lineOid(0x1100), 0u) << "next super block untouched";
    bs.setLineMeta(0x1080, 9, 3);
    EXPECT_EQ(bs.lineOid(0x1000), 9u);
    // Per-line seqnos stay exact regardless of granularity.
    EXPECT_EQ(bs.lineSeq(0x1040), 2u);
}

TEST(OidGranularity, RecoveryTheoremHoldsAtCoarseGranularity)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(300));
    cfg.set("epoch.stores_global", std::uint64_t(6000));
    cfg.set("wl.hashtable.prefill", std::uint64_t(1024));
    cfg.set("sim.track_writes", "true");
    cfg.set("sim.oid_granularity", std::uint64_t(16));

    System sys(cfg, "nvoverlay", "hashtable");
    sys.runUntil(800000);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());
    ASSERT_TRUE(sys.tracker()->epochsMonotonic())
        << "coarser tags only inflate observed epochs";

    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    unsigned mismatches = 0;
    for (Addr line : sys.tracker()->trackedLines()) {
        auto expect =
            sys.tracker()->expectedDigest(line, result.recEpoch);
        if (!expect)
            continue;
        LineData got;
        result.image->readLine(line, got);
        if (got.digest() != *expect)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
}

} // namespace
} // namespace nvo
