/**
 * @file
 * Epoch narrow/wide encoding and the two-group wrap-around scheme
 * (paper Sec. IV-D).
 */

#include <gtest/gtest.h>

#include "nvoverlay/epoch.hh"

namespace nvo
{
namespace
{

TEST(EpochNarrow, RoundTripNearReference)
{
    for (EpochWide ref : {0ull, 1000ull, 65530ull, 1000000ull}) {
        for (std::int64_t d = -1000; d <= 1000; d += 37) {
            if (static_cast<std::int64_t>(ref) + d < 0)
                continue;
            EpochWide truth = ref + d;
            EpochId n = epoch::narrow(truth);
            EXPECT_EQ(epoch::widen(n, ref), truth)
                << "ref=" << ref << " d=" << d;
        }
    }
}

TEST(EpochNarrow, CompareWrapAware)
{
    EXPECT_LT(epoch::compareNarrow(5, 10), 0);
    EXPECT_GT(epoch::compareNarrow(10, 5), 0);
    EXPECT_EQ(epoch::compareNarrow(7, 7), 0);
    // Across the wrap boundary: 65535 < 3 in wrapped order.
    EXPECT_LT(epoch::compareNarrow(65535, 3), 0);
    EXPECT_GT(epoch::compareNarrow(3, 65535), 0);
}

TEST(EpochNarrow, CompareMatchesWideWithinHalfSpace)
{
    for (EpochWide base = 60000; base < 60000 + 200000; base += 997) {
        EpochWide a = base;
        EpochWide b = base + 12345;   // < half space apart
        EXPECT_LT(epoch::compareNarrow(epoch::narrow(a),
                                       epoch::narrow(b)),
                  0);
    }
}

TEST(EpochNarrow, RoundTripAcrossTheWrapBoundary)
{
    // References straddling the 16-bit boundary: the wide epoch must
    // reconstruct exactly even when (truth, ref) sit on opposite
    // sides of a multiple of 2^16.
    for (EpochWide ref = 65532; ref <= 65540; ++ref) {
        for (std::int64_t d = -8; d <= 8; ++d) {
            EpochWide truth = ref + d;
            EXPECT_EQ(epoch::widen(epoch::narrow(truth), ref), truth)
                << "ref=" << ref << " d=" << d;
        }
    }
    // Several laps later the same property still holds.
    EpochWide lap = 5 * 65536ull;
    EXPECT_EQ(epoch::widen(epoch::narrow(lap + 2), lap - 3), lap + 2);
    EXPECT_EQ(epoch::widen(epoch::narrow(lap - 3), lap + 2), lap - 3);
}

TEST(EpochNarrow, CompareAtExactlyHalfSpaceSkew)
{
    // The comparison contract (Sec. IV-D) only holds for distances
    // strictly below halfSpace. One below the bound must order
    // correctly in both directions, wrapped or not.
    EpochId a = 0;
    EpochId b = epoch::narrow(epoch::halfSpace - 1);
    EXPECT_LT(epoch::compareNarrow(a, b), 0);
    EXPECT_GT(epoch::compareNarrow(b, a), 0);

    // Same distance placed across the wrap boundary.
    EpochId c = epoch::narrow(65530);
    EpochId d = epoch::narrow(65530 + epoch::halfSpace - 1);
    EXPECT_LT(epoch::compareNarrow(c, d), 0);
    EXPECT_GT(epoch::compareNarrow(d, c), 0);

    // At exactly halfSpace the encoding is saturated: the difference
    // is its own negation (INT16_MIN), so the comparison collapses to
    // "less" from both sides — the documented ambiguity the
    // epoch-sense scheme exists to exclude.
    EpochId e = 0;
    EpochId f = epoch::narrow(epoch::halfSpace);
    EXPECT_LT(epoch::compareNarrow(e, f), 0);
    EXPECT_LT(epoch::compareNarrow(f, e), 0);
}

TEST(EpochNarrow, WidenAtExactlyHalfSpaceMapsBackward)
{
    // widen() is only contracted for |truth - ref| < halfSpace; at
    // exactly halfSpace the delta saturates negative, so the
    // reconstruction lands halfSpace *behind* the reference. Pin the
    // behaviour so nobody "fixes" it silently.
    EpochWide ref = 10 * 65536ull;
    EXPECT_EQ(epoch::widen(epoch::narrow(ref + epoch::halfSpace), ref),
              ref - epoch::halfSpace);
    // One inside the bound reconstructs exactly.
    EXPECT_EQ(
        epoch::widen(epoch::narrow(ref + epoch::halfSpace - 1), ref),
        ref + epoch::halfSpace - 1);
}

TEST(EpochNarrow, GroupAssignment)
{
    EXPECT_EQ(epoch::group(0), 0u);
    EXPECT_EQ(epoch::group(32767), 0u);
    EXPECT_EQ(epoch::group(32768), 1u);
    EXPECT_EQ(epoch::group(65535), 1u);
}

TEST(EpochSense, FlipsOnGroupCrossing)
{
    EpochSenseTracker tracker(2);
    EXPECT_FALSE(tracker.senseBit());
    EXPECT_FALSE(tracker.onAdvance(0, 100));
    EXPECT_FALSE(tracker.onAdvance(1, 200));
    // First VD crossing into group U flips the sense bit.
    EXPECT_TRUE(tracker.onAdvance(0, epoch::halfSpace + 5));
    EXPECT_TRUE(tracker.senseBit());
    // Second VD following into U does not flip again.
    EXPECT_FALSE(tracker.onAdvance(1, epoch::halfSpace + 9));
    EXPECT_EQ(tracker.flips(), 1u);
    // Crossing back into L (wrap) flips again.
    EXPECT_TRUE(tracker.onAdvance(0, 2 * epoch::halfSpace + 1));
    EXPECT_FALSE(tracker.senseBit());
    EXPECT_EQ(tracker.flips(), 2u);
}

TEST(EpochSense, TracksSkew)
{
    EpochSenseTracker tracker(3);
    tracker.onAdvance(0, 5000);
    tracker.onAdvance(1, 100);
    tracker.onAdvance(2, 2000);
    // VDs that have not advanced yet count from epoch 0, so the
    // largest observed skew is against them.
    EXPECT_EQ(tracker.maxSkew(), 5000u);
    EXPECT_TRUE(tracker.skewWithinBound());
    tracker.onAdvance(0, 100 + epoch::halfSpace);
    EXPECT_FALSE(tracker.skewWithinBound());
}

TEST(EpochSense, ManyWrapAroundsStayConsistent)
{
    EpochSenseTracker tracker(4);
    EpochWide e[4] = {1, 1, 1, 1};
    std::uint64_t crossings = 0;
    for (int step = 0; step < 100000; ++step) {
        unsigned vd = step % 4;
        unsigned before = epoch::group(epoch::narrow(e[vd]));
        e[vd] += 1 + (step % 7);
        unsigned after = epoch::group(epoch::narrow(e[vd]));
        tracker.onAdvance(vd, e[vd]);
        if (before != after)
            ++crossings;
    }
    EXPECT_TRUE(tracker.skewWithinBound());
    EXPECT_GT(tracker.flips(), 0u);
    EXPECT_LE(tracker.flips(), crossings);
}

} // namespace
} // namespace nvo
