/**
 * @file
 * SnapshotReader::read across a sub-page relocation boundary.
 *
 * Compaction (paper Sec. V-D) copies live versions out of
 * mostly-stale sub-pages into fresh ones and reclaims the originals,
 * so after a compaction pass a multi-line read can span lines whose
 * backing versions live in *different* generations of the pool: one
 * relocated (copied forward from a reclaimed sub-page), its
 * neighbour still in its original home. The reader must stitch the
 * bytes seamlessly — a regression here corrupts exactly the reads
 * that cross the relocation boundary, which per-line tests never
 * notice.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/nvm_model.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/snapshot_reader.hh"

namespace nvo
{
namespace
{

/** Position-dependent fill so any mis-stitched offset is visible. */
LineData
patterned(std::uint8_t tag)
{
    LineData d;
    for (std::size_t i = 0; i < lineBytes; ++i)
        d.bytes[i] = static_cast<std::uint8_t>(tag ^ (i * 7));
    return d;
}

class SnapshotBoundaryTest : public ::testing::Test
{
  protected:
    SnapshotBoundaryTest() : nvm(NvmModel::Params{}, &stats)
    {
        params.numOmcs = 1;   // keep neighbouring lines in one pool
        params.numVds = 1;
        params.poolBytesPerOmc = 1ull << 22;
        params.compactionThreshold = 0.5;
        params.dropMergedTables = false;   // keep time travel alive
        backend =
            std::make_unique<MnmBackend>(params, nvm, stats);
    }

    RunStats stats;
    NvmModel nvm;
    MnmBackend::Params params;
    std::unique_ptr<MnmBackend> backend;
    SeqNo seq = 0;
};

TEST_F(SnapshotBoundaryTest, ReadSpansRelocatedSubPage)
{
    const Addr a = 0x20000;        // survives epoch 1, relocated
    const Addr b = a + lineBytes;  // overwritten in epoch 2

    // Epoch 1 writes both lines, plus enough stale-by-epoch-2 lines
    // to make their shared sub-page worth compacting.
    backend->insertVersion(a, 1, ++seq, patterned(0x11), 0);
    backend->insertVersion(b, 1, ++seq, patterned(0x22), 0);
    for (unsigned i = 2; i < 64; ++i)
        backend->insertVersion(a + i * lineBytes, 1, ++seq,
                               patterned(0x33), 0);
    // Epoch 2 overwrites everything except line a.
    backend->insertVersion(b, 2, ++seq, patterned(0x44), 0);
    for (unsigned i = 2; i < 64; ++i)
        backend->insertVersion(a + i * lineBytes, 2, ++seq,
                               patterned(0x55), 0);
    backend->reportMinVer(0, 3, 0);

    // Compact: line a's epoch-1 version is the lone survivor of its
    // sub-pages and gets copied forward; the originals are
    // reclaimed.
    std::uint64_t before = backend->pool(0).bytesAllocated();
    backend->compact(0);
    ASSERT_LT(backend->pool(0).bytesAllocated(), before)
        << "compaction reclaimed nothing; the scenario no longer "
           "exercises relocation";
    ASSERT_GT(stats.gcBytesCopied, 0u)
        << "no live version was copied forward";

    SnapshotReader reader(*backend);

    // Spot-check the per-line views first: a's snapshot is its
    // epoch-1 *content*, relocated into the newest merged epoch's
    // table by the copy-forward (so it reports the target epoch);
    // b's is the untouched in-place epoch-2 version.
    auto va = reader.readLine(a, 2);
    auto vb = reader.readLine(b, 2);
    ASSERT_TRUE(va.has_value());
    ASSERT_TRUE(vb.has_value());
    EXPECT_EQ(va->epoch, 2u) << "relocated version re-homes at the "
                                "compaction target epoch";
    EXPECT_EQ(vb->epoch, 2u);
    EXPECT_EQ(va->data, patterned(0x11));
    EXPECT_EQ(vb->data, patterned(0x44));

    // The boundary-spanning read: 64 bytes centred on the line
    // break, half from the relocated sub-page, half from the
    // original one.
    std::uint8_t got[lineBytes];
    ASSERT_TRUE(
        reader.read(a + lineBytes / 2, got, lineBytes, 2));
    LineData ea = patterned(0x11), eb = patterned(0x44);
    EXPECT_EQ(std::memcmp(got, ea.bytes.data() + lineBytes / 2,
                          lineBytes / 2),
              0)
        << "bytes from the relocated half are wrong";
    EXPECT_EQ(std::memcmp(got + lineBytes / 2, eb.bytes.data(),
                          lineBytes / 2),
              0)
        << "bytes from the in-place half are wrong";

    // A typed read straddling the exact boundary (4 bytes either
    // side) must agree byte for byte.
    auto word = reader.readValue<std::uint64_t>(b - 4, 2);
    ASSERT_TRUE(word.has_value());
    std::uint8_t expect[8];
    std::memcpy(expect, ea.bytes.data() + lineBytes - 4, 4);
    std::memcpy(expect + 4, eb.bytes.data(), 4);
    std::uint64_t expect_word;
    std::memcpy(&expect_word, expect, 8);
    EXPECT_EQ(*word, expect_word);

    // And a span touching an unmapped neighbour fails as a whole —
    // no partial stitch.
    EXPECT_FALSE(reader.read(a - lineBytes / 2, got, lineBytes, 2));
}

} // namespace
} // namespace nvo
