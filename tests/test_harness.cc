/**
 * @file
 * Harness-level tests: the experiment driver, environment overrides,
 * the table printer, and the default (Table II) configuration.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"

namespace nvo
{
namespace
{

TEST(DefaultConfig, MatchesTableII)
{
    Config cfg = defaultConfig();
    EXPECT_EQ(cfg.getU64("sys.cores", 0), 16u);
    EXPECT_EQ(cfg.getU64("sys.cores_per_vd", 0), 2u);
    EXPECT_EQ(cfg.getU64("l1.kb", 0), 32u);
    EXPECT_EQ(cfg.getU64("l2.kb", 0), 256u);
    EXPECT_EQ(cfg.getU64("llc.mb", 0), 32u);
    EXPECT_EQ(cfg.getU64("nvm.write_occupancy", 0), 400u);
    EXPECT_EQ(cfg.getU64("epoch.stores_global", 0), 1u << 20);
}

TEST(ApplyOverrides, EnvAndArgs)
{
    setenv("NVO_OPS", "1234", 1);
    setenv("NVO_SEED", "77", 1);
    Config cfg = defaultConfig();
    applyOverrides(cfg, {"l2.kb=512"});
    EXPECT_EQ(cfg.getU64("wl.ops", 0), 1234u);
    // NVO_SEED feeds the experiment-wide rng.seed, which wl.seed
    // falls back to unless overridden explicitly.
    EXPECT_EQ(cfg.getU64("rng.seed", 0), 77u);
    EXPECT_EQ(cfg.getU64("wl.seed", cfg.getU64("rng.seed", 1)), 77u);
    EXPECT_EQ(cfg.getU64("l2.kb", 0), 512u);
    unsetenv("NVO_OPS");
    unsetenv("NVO_SEED");
}

TEST(RunExperiment, ProducesStatsAndTiming)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(4));
    cfg.set("wl.ops", std::uint64_t(50));
    cfg.set("wl.hashtable.prefill", std::uint64_t(128));
    auto r = runExperiment(cfg, "none", "hashtable");
    EXPECT_EQ(r.scheme, "none");
    EXPECT_EQ(r.workload, "hashtable");
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_GT(r.hostSeconds, 0.0);
}

TEST(TablePrinterTest, AlignedOutput)
{
    TablePrinter table({"a", "b"}, 6);
    std::ostringstream os;
    table.printHeader(os);
    table.printRow({"x", "1.50"}, os);
    EXPECT_EQ(os.str(), "     a     b\n------------\n     x  1.50\n");
}

TEST(TablePrinterTest, NumFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.234, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(1.235, 1), "1.2");
    EXPECT_EQ(TablePrinter::num(10, 0), "10");
}

} // namespace
} // namespace nvo
