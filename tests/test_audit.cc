/**
 * @file
 * Protocol invariant auditor: the Auditor registry, the NVO_AUDIT
 * macro's build gating, clean sweeps over healthy systems, and (in
 * NVO_AUDIT builds) death tests proving seeded corruption is caught.
 */

#include <gtest/gtest.h>

#include "common/audit.hh"
#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "mem/nvm_model.hh"
#include "nvoverlay/epoch_table.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/page_pool.hh"

namespace nvo
{
namespace
{

Config
cfgSmall()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    cfg.set("wl.btree.prefill", std::uint64_t(1024));
    return cfg;
}

TEST(AuditorRegistry, RunsSweepsInRegistrationOrder)
{
    Auditor a;
    std::vector<int> order;
    a.add("first", [&order] { order.push_back(1); });
    a.add("second", [&order] { order.push_back(2); });
    EXPECT_EQ(a.numChecks(), 2u);
    a.runAll();
    a.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
    EXPECT_EQ(a.sweeps(), 2u);
    EXPECT_EQ(a.sweepsExecuted(), 4u);
    EXPECT_EQ(a.currentSweep(), "");
}

TEST(AuditorRegistry, LightPassSkipsFullSweeps)
{
    Auditor a;
    std::vector<std::string> ran;
    a.add("cheap", [&ran] { ran.push_back("cheap"); },
          Auditor::Tier::Light);
    a.add("heavy", [&ran] { ran.push_back("heavy"); });
    a.runLight();
    EXPECT_EQ(ran, (std::vector<std::string>{"cheap"}));
    a.runAll();
    EXPECT_EQ(ran,
              (std::vector<std::string>{"cheap", "cheap", "heavy"}));
}

TEST(AuditorRegistry, CurrentSweepNamesTheRunningCheck)
{
    Auditor a;
    std::string seen;
    a.add("named-sweep", [&a, &seen] { seen = a.currentSweep(); });
    a.runAll();
    EXPECT_EQ(seen, "named-sweep");
}

TEST(AuditMacro, PassingCheckNeverFires)
{
    // Healthy both when audits are compiled in and when they are
    // compiled out (operands must still type-check either way).
    int evaluations = 0;
    auto count = [&evaluations] {
        ++evaluations;
        return true;
    };
    NVO_AUDIT(count(), "never shown");
    EXPECT_EQ(evaluations, audit::enabled ? 1 : 0);
}

TEST(AuditMacro, MessageOnlyEvaluatedOnFailure)
{
    int message_builds = 0;
    auto expensive = [&message_builds] {
        ++message_builds;
        return std::string("diagnostic");
    };
    NVO_AUDIT(true, expensive());
    EXPECT_EQ(message_builds, 0)
        << "msg must not be evaluated for passing checks";
}

TEST(AuditMacro, CountsExecutedChecks)
{
    std::uint64_t before = audit::checksExecuted();
    NVO_AUDIT(1 + 1 == 2, "arithmetic");
    NVO_AUDIT(true, "trivial");
    std::uint64_t after = audit::checksExecuted();
    EXPECT_EQ(after - before, audit::enabled ? 2u : 0u);
}

TEST(AuditSweeps, HealthySystemPassesAllSweeps)
{
    setQuiet(true);
    System sys(cfgSmall(), "nvoverlay", "btree");
    sys.run();
    // run() already audited at epoch boundaries and after finalize;
    // one more explicit pass must also be clean.
    sys.auditNow();
    if (audit::enabled) {
        EXPECT_GE(sys.auditor().numChecks(), 4u)
            << "hierarchy + scheme sweeps should be registered";
        EXPECT_GT(sys.auditor().sweeps(), 0u);
        EXPECT_GT(audit::checksExecuted(), 0u);
    } else {
        EXPECT_EQ(sys.auditor().numChecks(), 0u);
    }
}

TEST(AuditSweeps, BaselineSchemesRegisterHierarchySweep)
{
    setQuiet(true);
    System sys(cfgSmall(), "swlog", "btree");
    sys.run();
    sys.auditNow();
    if (audit::enabled) {
        EXPECT_EQ(sys.auditor().numChecks(), 1u)
            << "baselines audit the hierarchy only";
    }
}

TEST(AuditSweeps, BufferedBackendPassesSweeps)
{
    setQuiet(true);
    Config cfg = cfgSmall();
    cfg.set("mnm.use_buffer", "true");
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    sys.auditNow();
    SUCCEED();
}

#ifdef NVO_AUDIT_ENABLED

using AuditDeath = ::testing::Test;

TEST(AuditDeath, MacroPanicsWithConditionAndMessage)
{
    EXPECT_DEATH(NVO_AUDIT(2 + 2 == 5, "seeded failure"),
                 "audit failure.*2 \\+ 2 == 5.*seeded failure");
}

TEST(AuditDeath, PoolDoubleFreeIsCaught)
{
    PagePool pool(1ull << 40, 1ull << 20);
    Addr a = pool.allocLines(4);
    ASSERT_NE(a, invalidAddr);
    pool.freeLines(a, 4);
    pool.freeLines(a, 4);   // seeded corruption: double free
    EXPECT_DEATH(pool.audit(), "audit failure");
}

TEST(AuditDeath, HeaderEpochCorruptionIsCaught)
{
    PagePool pool(1ull << 40, 1ull << 20);
    EpochTable::Params tp;
    EpochTable table(3, pool, tp);
    EpochTable::Sinks sinks;
    LineData d;
    d.bytes.fill(0xab);
    ASSERT_TRUE(table.insert(0x1000, 1, d, sinks));
    Addr sub = table.lookupNvm(0x1000);
    ASSERT_NE(sub, invalidAddr);
    // Seeded corruption: the persistent header claims another epoch.
    // (The first insert lands in slot 0, so lookupNvm returns the
    // sub-page base the header is keyed by.)
    PagePool::SubPageHeader *hdr = pool.header(sub);
    ASSERT_NE(hdr, nullptr);
    hdr->epoch = 99;
    EXPECT_DEATH(table.audit(), "header epoch");
}

TEST(AuditDeath, BackendCorruptPoolIsCaught)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    MnmBackend::Params params;
    params.numOmcs = 2;
    params.numVds = 2;
    params.poolBytesPerOmc = 1ull << 22;
    MnmBackend backend(params, nvm, stats);
    LineData d;
    d.bytes.fill(1);
    backend.insertVersion(0x1000, 1, 1, d, 0);
    backend.audit();   // healthy so far
    unsigned omc = backend.omcOf(0x1000);
    Addr sub = backend.epochTable(omc, 1)->lookupNvm(0x1000);
    // Seeded corruption: free storage the table still maps (slot 0,
    // so `sub` is the block base the allocator handed out).
    backend.pool(omc).freeLines(sub, 4);
    EXPECT_DEATH(backend.audit(), "audit failure");
}

#else // !NVO_AUDIT_ENABLED

TEST(AuditDeath, SkippedWhenAuditsCompiledOut)
{
    GTEST_SKIP() << "build compiled without NVO_AUDIT";
}

#endif

} // namespace
} // namespace nvo
