/**
 * @file
 * Tag walker unit tests: scan scheduling, budgeted draining, min-ver
 * reporting, opportunistic delay, and the disabled mode
 * (paper Sec. IV-C, V-B).
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "mem/backing_store.hh"
#include "mem/dram_model.hh"
#include "mem/nvm_model.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/tag_walker.hh"

namespace nvo
{
namespace
{

/** Fixed-epoch controller so the hierarchy's versioned mode works. */
struct FixedCtrl : VersionCtrl
{
    EpochWide vdEpoch(unsigned) const override { return cur; }
    Cycle observeRemoteVersion(unsigned, EpochWide, Cycle) override
    {
        return 0;
    }
    Cycle
    acceptVersion(unsigned, Addr, EpochWide, SeqNo, const LineData &,
                  EvictReason, Cycle) override
    {
        return 0;
    }
    EpochWide cur = 1;
};

class TagWalkerTest : public ::testing::Test
{
  protected:
    TagWalkerTest()
        : dram(DramModel::Params{}, &stats),
          nvm(NvmModel::Params{}, &stats)
    {
        Hierarchy::Params p;
        p.numCores = 4;
        p.coresPerVd = 2;
        p.numLlcSlices = 1;
        p.l1.sizeBytes = 4 * 1024;
        p.l2.sizeBytes = 16 * 1024;
        p.llc.sliceBytes = 64 * 1024;
        hier = std::make_unique<Hierarchy>(p, backing, dram, stats);
        hier->setVersionCtrl(&ctrl);

        MnmBackend::Params mp;
        mp.numOmcs = 1;
        mp.numVds = 2;
        backend = std::make_unique<MnmBackend>(mp, nvm, stats);

        TagWalker::Params wp;
        wp.vd = 0;
        wp.linesPerTick = 4;
        walker = std::make_unique<TagWalker>(wp, *hier, *backend,
                                             stats);
    }

    RunStats stats;
    BackingStore backing;
    DramModel dram;
    NvmModel nvm;
    FixedCtrl ctrl;
    std::unique_ptr<Hierarchy> hier;
    std::unique_ptr<MnmBackend> backend;
    std::unique_ptr<TagWalker> walker;
};

TEST_F(TagWalkerTest, IdleWithoutRequest)
{
    EXPECT_TRUE(walker->idle());
    walker->tick(0);
    EXPECT_EQ(stats.tagWalkWriteBacks, 0u);
}

TEST_F(TagWalkerTest, BudgetedDrainAndMinVerReport)
{
    for (unsigned i = 0; i < 10; ++i)
        hier->store(0, 0x10000 + i * 64, nullptr, 8, 0);
    ctrl.cur = 2;
    walker->requestWalk();
    EXPECT_FALSE(walker->idle());

    walker->tick(0);   // scan + 4 drains
    EXPECT_EQ(stats.tagWalkWriteBacks, 4u);
    EXPECT_EQ(backend->minVerOf(0), 0u) << "report only after drain";
    walker->tick(0);
    walker->tick(0);   // 10 total
    EXPECT_EQ(stats.tagWalkWriteBacks, 10u);
    EXPECT_EQ(backend->minVerOf(0), 1u)
        << "min-ver = smallest dirty OID encountered";
    EXPECT_TRUE(walker->idle());
    EXPECT_EQ(walker->walksCompleted(), 1u);
}

TEST_F(TagWalkerTest, OpportunisticDelayHonored)
{
    hier->store(0, 0x10000, nullptr, 8, 0);
    ctrl.cur = 2;
    walker->requestWalk();
    walker->tick(0, /*allow_scan=*/false);
    EXPECT_EQ(stats.tagWalkWriteBacks, 0u) << "scan deferred";
    EXPECT_FALSE(walker->idle());
    walker->tick(0, true);
    EXPECT_EQ(stats.tagWalkWriteBacks, 1u);
}

TEST_F(TagWalkerTest, VersionsReachTheBackend)
{
    hier->store(0, 0x10000, nullptr, 8, 0);
    LineData expect;
    backing.readLine(0x10000, expect);
    ctrl.cur = 5;
    walker->requestWalk();
    walker->drainFully(0);

    EpochTable *t = backend->epochTable(0, 1);
    ASSERT_NE(t, nullptr);
    LineData got;
    ASSERT_TRUE(t->readVersion(0x10000, got));
    EXPECT_EQ(got, expect);
    EXPECT_EQ(backend->minVerOf(0), 1u);
}

TEST_F(TagWalkerTest, DisabledWalkerDoesNothing)
{
    TagWalker::Params wp;
    wp.vd = 0;
    wp.enabled = false;
    TagWalker off(wp, *hier, *backend, stats);
    hier->store(0, 0x10000, nullptr, 8, 0);
    ctrl.cur = 2;
    off.requestWalk();
    off.tick(0);
    EXPECT_TRUE(off.idle());
    EXPECT_EQ(stats.tagWalkWriteBacks, 0u);
    EXPECT_TRUE(hier->l1Line(0, 0x10000)->dirty)
        << "versions stay in the hierarchy";
}

TEST_F(TagWalkerTest, RepeatedWalksAdvanceCertificates)
{
    for (EpochWide e = 2; e <= 5; ++e) {
        hier->store(0, 0x20000 + e * 64, nullptr, 8, 0);
        ctrl.cur = e;
        walker->requestWalk();
        walker->drainFully(0);
        EXPECT_EQ(backend->minVerOf(0), e - 1);
    }
    EXPECT_EQ(walker->walksCompleted(), 4u);
}

} // namespace
} // namespace nvo
