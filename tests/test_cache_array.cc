/**
 * @file
 * Unit and property tests for the set-associative CacheArray,
 * parameterized over geometry.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "cache/cache_array.hh"
#include "common/rng.hh"

namespace nvo
{
namespace
{

TEST(CacheArray, GeometryDerivation)
{
    CacheArray arr(32 * 1024, 8);
    EXPECT_EQ(arr.numWays(), 8u);
    EXPECT_EQ(arr.numSets(), 32u * 1024 / 8 / 64);
    EXPECT_EQ(arr.sizeBytes(), 32u * 1024);
}

TEST(CacheArray, LookupMissThenHit)
{
    CacheArray arr(4096, 4);
    EXPECT_EQ(arr.lookup(0x1000), nullptr);
    CacheLine *slot = arr.allocSlot(0x1000);
    ASSERT_NE(slot, nullptr);
    EXPECT_FALSE(slot->valid());
    slot->addr = 0x1000;
    slot->state = CohState::E;
    EXPECT_EQ(arr.lookup(0x1000), slot);
    EXPECT_EQ(arr.numValid(), 1u);
}

TEST(CacheArray, LruVictimSelection)
{
    CacheArray arr(4 * 64, 4);   // one set, 4 ways
    for (Addr a = 0; a < 4; ++a) {
        CacheLine *slot = arr.allocSlot(a * 64 * arr.numSets());
        slot->addr = a * 64 * arr.numSets();
        slot->state = CohState::S;
        arr.lookup(slot->addr);
    }
    // Touch line 0 so line 1 becomes LRU.
    arr.lookup(0);
    CacheLine *victim = arr.allocSlot(4 * 64 * arr.numSets());
    EXPECT_EQ(victim->addr, 1u * 64 * arr.numSets());
}

TEST(CacheArray, InvalidSlotPreferredOverVictim)
{
    CacheArray arr(4 * 64, 4);
    CacheLine *a = arr.allocSlot(0);
    a->addr = 0;
    a->state = CohState::S;
    CacheLine *b = arr.allocSlot(64 * arr.numSets());
    EXPECT_FALSE(b->valid());
    EXPECT_NE(a, b);
}

TEST(CacheArray, InvalidateResets)
{
    CacheArray arr(4096, 4);
    CacheLine *slot = arr.allocSlot(0x40 * arr.numSets() * 2);
    slot->addr = 0x40 * arr.numSets() * 2;
    slot->state = CohState::M;
    slot->dirty = true;
    arr.invalidate(slot);
    EXPECT_FALSE(slot->valid());
    EXPECT_EQ(arr.numValid(), 0u);
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray arr(8192, 8);
    std::unordered_set<Addr> inserted;
    for (unsigned i = 0; i < 20; ++i) {
        Addr a = i * 64;
        CacheLine *slot = arr.allocSlot(a);
        if (slot->valid())
            continue;
        slot->addr = a;
        slot->state = CohState::S;
        inserted.insert(a);
    }
    std::unordered_set<Addr> seen;
    arr.forEachValid([&](CacheLine &line) { seen.insert(line.addr); });
    EXPECT_EQ(seen, inserted);
}

/** Property sweep: random fill never exceeds capacity, set mapping
 *  stays stable, hits return the inserted line. */
class CacheArrayGeom
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CacheArrayGeom, RandomFillProperties)
{
    auto [size_kb, ways] = GetParam();
    CacheArray arr(size_kb * 1024ull, ways);
    Rng rng(size_kb * 131 + ways);
    std::unordered_set<Addr> present;

    for (int i = 0; i < 20000; ++i) {
        Addr a = lineAlign(rng.below(1 << 22));
        CacheLine *line = arr.lookup(a);
        if (line) {
            EXPECT_EQ(line->addr, a);
            EXPECT_TRUE(present.count(a));
            continue;
        }
        CacheLine *slot = arr.allocSlot(a);
        if (slot->valid())
            present.erase(slot->addr);
        slot->reset();
        slot->addr = a;
        slot->state = CohState::S;
        present.insert(a);
        EXPECT_LE(arr.numValid(), arr.numSets() * arr.numWays());
    }
    EXPECT_EQ(arr.numValid(), present.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayGeom,
    ::testing::Values(std::make_pair(4u, 1u), std::make_pair(4u, 4u),
                      std::make_pair(32u, 8u),
                      std::make_pair(256u, 16u)));

} // namespace
} // namespace nvo
