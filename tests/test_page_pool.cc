/**
 * @file
 * NVM page pool tests: buddy sub-page allocation, headers, content,
 * exhaustion, and extension (paper Sec. V-C/V-D).
 */

#include <gtest/gtest.h>

#include <set>

#include "nvoverlay/page_pool.hh"

namespace nvo
{
namespace
{

constexpr Addr base = 1ull << 40;

TEST(PagePool, RoundLinesToPow2)
{
    EXPECT_EQ(PagePool::roundLines(1), 1u);
    EXPECT_EQ(PagePool::roundLines(3), 4u);
    EXPECT_EQ(PagePool::roundLines(4), 4u);
    EXPECT_EQ(PagePool::roundLines(33), 64u);
    EXPECT_EQ(PagePool::roundLines(64), 64u);
}

TEST(PagePool, FullPageAllocation)
{
    PagePool pool(base, 4 * pageBytes);
    std::set<Addr> seen;
    for (int i = 0; i < 4; ++i) {
        Addr a = pool.allocLines(64, 0);
        ASSERT_NE(a, invalidAddr);
        EXPECT_EQ(pageAlign(a), a);
        EXPECT_TRUE(seen.insert(a).second);
    }
    EXPECT_EQ(pool.allocLines(64, 0), invalidAddr) << "pool exhausted";
    EXPECT_EQ(pool.pagesInUse(), 4u);
}

TEST(PagePool, SubPageSplitting)
{
    PagePool pool(base, pageBytes);
    // 16 sub-pages of 4 lines fit in one page.
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i) {
        Addr a = pool.allocLines(4, 0);
        ASSERT_NE(a, invalidAddr);
        EXPECT_TRUE(seen.insert(a).second);
    }
    EXPECT_EQ(pool.pagesInUse(), 1u);
    EXPECT_EQ(pool.bytesAllocated(), pageBytes);
    EXPECT_EQ(pool.allocLines(1, 0), invalidAddr);
}

TEST(PagePool, SubPagesDoNotOverlap)
{
    PagePool pool(base, 8 * pageBytes);
    std::vector<std::pair<Addr, unsigned>> allocs;
    for (unsigned lines : {1u, 2u, 4u, 1u, 8u, 16u, 4u, 32u, 64u, 2u}) {
        Addr a = pool.allocLines(lines, 0);
        ASSERT_NE(a, invalidAddr);
        allocs.emplace_back(a, PagePool::roundLines(lines));
    }
    for (unsigned i = 0; i < allocs.size(); ++i) {
        for (unsigned j = i + 1; j < allocs.size(); ++j) {
            Addr ai = allocs[i].first;
            Addr ae = ai + allocs[i].second * lineBytes;
            Addr bi = allocs[j].first;
            Addr be = bi + allocs[j].second * lineBytes;
            EXPECT_TRUE(ae <= bi || be <= ai)
                << "overlap between " << i << " and " << j;
        }
    }
}

TEST(PagePool, FreeAndReuse)
{
    PagePool pool(base, pageBytes);
    Addr a = pool.allocLines(64, 0);
    pool.freeLines(a, 64, 0);
    Addr b = pool.allocLines(64, 0);
    EXPECT_EQ(a, b) << "freed block reused";
}

TEST(PagePool, ExtendGrowsCapacity)
{
    PagePool pool(base, pageBytes);
    ASSERT_NE(pool.allocLines(64, 0), invalidAddr);
    EXPECT_EQ(pool.allocLines(64, 0), invalidAddr);
    pool.extend(2);
    EXPECT_NE(pool.allocLines(64, 0), invalidAddr);
    EXPECT_EQ(pool.totalPages(), 3u);
}

TEST(PagePool, ContentRoundTrip)
{
    PagePool pool(base, pageBytes);
    Addr a = pool.allocLines(4, 0);
    LineData in;
    in.bytes[0] = 0xab;
    in.bytes[63] = 0xcd;
    pool.writeLine(a + 2 * lineBytes, in);
    LineData out;
    pool.readLine(a + 2 * lineBytes, out);
    EXPECT_EQ(in, out);
}

TEST(PagePool, HeaderLifecycle)
{
    PagePool pool(base, pageBytes);
    Addr a = pool.allocLines(8, 0);
    EXPECT_EQ(pool.header(a), nullptr);
    PagePool::SubPageHeader hdr;
    hdr.srcPage = 0x123000;
    hdr.epoch = 42;
    hdr.capacityLines = 8;
    pool.setHeader(a, hdr);
    ASSERT_NE(pool.header(a), nullptr);
    EXPECT_EQ(pool.header(a)->srcPage, 0x123000u);
    EXPECT_EQ(pool.header(a)->epoch, 42u);

    unsigned count = 0;
    pool.forEachHeader([&](Addr at, const PagePool::SubPageHeader &h) {
        ++count;
        EXPECT_EQ(at, a);
        EXPECT_EQ(h.epoch, 42u);
    });
    EXPECT_EQ(count, 1u);
    pool.dropHeader(a);
    EXPECT_EQ(pool.header(a), nullptr);
}

TEST(PagePool, UtilizationTracksPages)
{
    PagePool pool(base, 10 * pageBytes);
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.0);
    pool.allocLines(64, 0);
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.1);
    for (int i = 0; i < 16; ++i)
        pool.allocLines(4, 0);   // one more page split into sub-pages
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.2);
}

} // namespace
} // namespace nvo
