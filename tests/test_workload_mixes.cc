/**
 * @file
 * Lookup-mix and Zipf-sampler tests for the workload extensions.
 */

#include <gtest/gtest.h>

#include "workload/workloads.hh"

namespace nvo
{
namespace
{

std::pair<std::uint64_t, std::uint64_t>
mixOf(WorkloadBase &wl)
{
    std::uint64_t loads = 0, stores = 0;
    std::vector<MemRef> batch;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned t = 0; t < wl.params().numThreads; ++t) {
            if (wl.nextOp(t, batch)) {
                progress = true;
                for (const auto &r : batch)
                    (r.isStore ? stores : loads) += 1;
            }
        }
    }
    return {loads, stores};
}

TEST(LookupMix, BTreeLookupsShiftReadRatio)
{
    WorkloadBase::Params p;
    p.numThreads = 4;
    p.opsPerThread = 800;
    Config insert_cfg;
    insert_cfg.set("wl.btree.prefill", std::uint64_t(4096));
    BTreeWorkload inserts(p, insert_cfg);
    auto [l0, s0] = mixOf(inserts);

    Config mixed_cfg = insert_cfg;
    mixed_cfg.set("wl.btree.lookup_pct", 0.8);
    BTreeWorkload mixed(p, mixed_cfg);
    auto [l1, s1] = mixOf(mixed);

    double write_ratio0 = static_cast<double>(s0) / (l0 + s0);
    double write_ratio1 = static_cast<double>(s1) / (l1 + s1);
    EXPECT_LT(write_ratio1, write_ratio0 / 2)
        << "80% lookups must slash the store fraction";
    EXPECT_GT(s1, 0u) << "remaining 20% still insert";
}

TEST(LookupMix, BTreeStaysValidUnderMixedOps)
{
    WorkloadBase::Params p;
    p.numThreads = 2;
    p.opsPerThread = 1500;
    Config cfg;
    cfg.set("wl.btree.prefill", std::uint64_t(1024));
    cfg.set("wl.btree.lookup_pct", 0.5);
    BTreeWorkload wl(p, cfg);
    mixOf(wl);
    EXPECT_TRUE(wl.selfCheck());
}

TEST(LookupMix, HashTableLookupsAreLockFree)
{
    WorkloadBase::Params p;
    p.numThreads = 2;
    p.opsPerThread = 400;
    Config cfg;
    cfg.set("wl.hashtable.prefill", std::uint64_t(512));
    cfg.set("wl.hashtable.lookup_pct", 1.0);   // all probes
    HashTableWorkload wl(p, cfg);
    auto [loads, stores] = mixOf(wl);
    EXPECT_GT(loads, 0u);
    EXPECT_EQ(stores, 0u) << "probes take no lock and write nothing";
}

TEST(Zipf, SkewsTowardLowRanks)
{
    Rng rng(42);
    ZipfSampler zipf(10000, 2.0);
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        if (zipf.sample(rng) < 1000)   // lowest 10% of ranks
            ++low;
    // rank = n*u^2: P(rank < 0.1n) = sqrt(0.1) ~ 31.6%, vs 10%
    // under a uniform distribution.
    EXPECT_GT(low, total / 4);
    EXPECT_LT(low, total * 2 / 5);
}

TEST(Zipf, ThetaControlsSkew)
{
    Rng a(7), b(7);
    ZipfSampler mild(10000, 1.0), heavy(10000, 3.0);
    std::uint64_t mild_low = 0, heavy_low = 0;
    for (int i = 0; i < 20000; ++i) {
        if (mild.sample(a) < 1000)
            ++mild_low;
        if (heavy.sample(b) < 1000)
            ++heavy_low;
    }
    EXPECT_GT(heavy_low, mild_low);
}

TEST(Zipf, StaysInRange)
{
    Rng rng(3);
    ZipfSampler zipf(17, 1.5);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf.sample(rng), 17u);
}

} // namespace
} // namespace nvo
