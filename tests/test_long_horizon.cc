/**
 * @file
 * Long-horizon integration tests: epoch counts crossing the 16-bit
 * group boundary under live traffic (Sec. IV-D wrap-around scheme),
 * version compaction triggered by real pool pressure, and recovery
 * correctness in both regimes.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/epoch.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"

namespace nvo
{
namespace
{

Config
horizonConfig()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.hashtable.prefill", std::uint64_t(512));
    cfg.set("wl.vacation.rows", std::uint64_t(4096));
    cfg.set("sim.track_writes", "true");
    return cfg;
}

void
checkTheorem(System &sys, NVOverlayScheme &scheme)
{
    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    unsigned mismatches = 0, checked = 0;
    for (Addr line : sys.tracker()->trackedLines()) {
        auto expect =
            sys.tracker()->expectedDigest(line, result.recEpoch);
        if (!expect)
            continue;
        ++checked;
        LineData got;
        result.image->readLine(line, got);
        if (got.digest() != *expect)
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
    EXPECT_GT(checked, 0u);
}

TEST(LongHorizon, EpochsCrossTheGroupBoundary)
{
    setQuiet(true);
    Config cfg = horizonConfig();
    // One epoch per store per VD: epochs race far past the 16-bit
    // half-space boundary within a modest run.
    cfg.set("nvo.stores_per_epoch_vd", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(4200));

    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());

    EXPECT_GT(scheme.globalEpoch(), epoch::halfSpace)
        << "the run must actually cross the group boundary";
    EXPECT_GE(scheme.senseTracker().flips(), 1u)
        << "the epoch-sense bit flipped on the crossing";
    EXPECT_TRUE(scheme.senseTracker().skewWithinBound())
        << "inter-VD skew stayed below half the space";
    EXPECT_TRUE(sys.tracker()->epochsMonotonic());
    EXPECT_EQ(sys.hierarchy().checkInvariants(), "");
    checkTheorem(sys, scheme);
}

TEST(LongHorizon, NarrowTagsStayDecodableAcrossTheRun)
{
    setQuiet(true);
    Config cfg = horizonConfig();
    cfg.set("nvo.stores_per_epoch_vd", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(3000));

    System sys(cfg, "nvoverlay", "vacation");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());

    // Every VD's wide epoch must round-trip through the 16-bit tag
    // against every other VD's epoch as reference — exactly the
    // decode hardware performs under bounded skew.
    for (unsigned a = 0; a < sys.hierarchy().numVds(); ++a) {
        EpochWide ea = scheme.domain(a).epoch();
        for (unsigned b = 0; b < sys.hierarchy().numVds(); ++b) {
            EpochWide eb = scheme.domain(b).epoch();
            EXPECT_EQ(epoch::widen(epoch::narrow(ea), eb), ea)
                << "VD " << a << " tag undecodable from VD " << b;
        }
    }
}

TEST(LongHorizon, CompactionUnderLivePressure)
{
    setQuiet(true);
    Config cfg = horizonConfig();
    cfg.set("wl.ops", std::uint64_t(2500));
    cfg.set("epoch.stores_global", std::uint64_t(30000));
    cfg.set("sys.llc_slices", std::uint64_t(1));   // one 1 MB pool
    // A small pool with an aggressive quota forces real compactions.
    cfg.set("mnm.pool_mb_per_omc", std::uint64_t(1));
    cfg.set("mnm.compaction_threshold", 0.7);

    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_GT(sys.stats().gcCompactions, 0u)
        << "the quota must have triggered version compaction";
    // The consistent image survives compaction.
    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    EXPECT_EQ(RecoveryManager::validate(result, scheme.backend()), "");
    checkTheorem(sys, scheme);
}

TEST(LongHorizon, AutoReclaimKeepsPoolBounded)
{
    setQuiet(true);
    Config cfg = horizonConfig();
    cfg.set("wl.ops", std::uint64_t(800));
    cfg.set("epoch.stores_global", std::uint64_t(20000));
    // Note: dropping merged tables would also drop the GC refcounts,
    // so eager reclamation keeps the tables and frees sub-pages.
    cfg.set("mnm.auto_reclaim", "true");

    System keep(cfg, "nvoverlay", "vacation");
    keep.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(keep.scheme());
    std::uint64_t reclaimed_bytes = 0;
    for (unsigned o = 0; o < scheme.backend().numOmcs(); ++o)
        reclaimed_bytes += scheme.backend().pool(o).bytesAllocated();

    Config retain = cfg;
    retain.set("mnm.auto_reclaim", "false");
    System full(retain, "nvoverlay", "vacation");
    full.run();
    auto &fscheme = dynamic_cast<NVOverlayScheme &>(full.scheme());
    std::uint64_t retained_bytes = 0;
    for (unsigned o = 0; o < fscheme.backend().numOmcs(); ++o)
        retained_bytes += fscheme.backend().pool(o).bytesAllocated();

    EXPECT_LT(reclaimed_bytes, retained_bytes)
        << "reclaiming stale sub-pages must shrink the pool";
    checkTheorem(keep, scheme);
}

} // namespace
} // namespace nvo
