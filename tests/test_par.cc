/**
 * @file
 * Shard execution engine (src/par): ring semantics, shard topology,
 * and — the load-bearing contract — bit-identical results against
 * the sequential engine. The determinism tests export the full stats
 * JSON of a run under par.shards ∈ {1, 2, 8} and require it to be
 * byte-identical to the sequential engine's for the same seed, on a
 * pregen-eligible workload (kmeans) and a generation-serial one
 * (btree), across two seeds. Engine-side metrics are checked
 * separately (they live outside RunStats by design).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "obs/stats_json.hh"
#include "par/engine.hh"
#include "par/procpool.hh"
#include "par/ring.hh"
#include "par/shard.hh"
#include "workload/workload.hh"

namespace nvo
{
namespace
{

// --- SPSC ring ------------------------------------------------------

TEST(SpscRing, PushPopFifoOrder)
{
    par::SpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_EQ(ring.size(), 5u);
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    par::SpscRing<int> ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, FullRingRejectsAndCounts)
{
    par::SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.fullRejects(), 2u);
    EXPECT_EQ(ring.highWater(), 4u);
    int v = -1;
    EXPECT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ring.tryPush(42));
    EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRing, TwoThreadStressPreservesSequence)
{
    // Real producer/consumer pair: every pushed value arrives exactly
    // once, in order, across the release/acquire pair. Run under the
    // TSan matrix entry this is also a data-race check on the ring.
    constexpr std::uint64_t count = 20000;
    par::SpscRing<std::uint64_t> ring(64);
    std::atomic<bool> fail{false};

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < count;) {
            if (ring.tryPush(i))
                ++i;
            else
                std::this_thread::yield();
        }
    });
    std::uint64_t expect = 0;
    while (expect < count) {
        std::uint64_t v = 0;
        if (!ring.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        if (v != expect) {
            fail = true;
            break;
        }
        ++expect;
    }
    producer.join();
    EXPECT_FALSE(fail.load());
    EXPECT_EQ(expect, count);
    EXPECT_LE(ring.highWater(), ring.capacity());
}

// --- Shard topology -------------------------------------------------

TEST(ShardMap, ContiguousBalancedPartition)
{
    for (unsigned vds : {1u, 2u, 4u, 8u, 12u}) {
        for (unsigned shards = 1; shards <= vds; ++shards) {
            par::ShardMap map(shards, vds, 4, 2);
            // Every VD belongs to exactly the shard whose block
            // contains it, blocks are contiguous and ascending, and
            // sizes differ by at most one.
            unsigned prev = 0;
            std::vector<unsigned> sizes(shards, 0);
            for (unsigned vd = 0; vd < vds; ++vd) {
                unsigned s = map.shardOfVd(vd);
                ASSERT_LT(s, shards);
                ASSERT_GE(s, prev) << "non-monotone shard blocks";
                ASSERT_GE(vd, map.firstVd(s));
                if (s + 1 < shards) {
                    ASSERT_LT(vd, map.firstVd(s + 1));
                }
                ++sizes[s];
                prev = s;
            }
            unsigned lo = vds, hi = 0;
            for (unsigned n : sizes) {
                ASSERT_GE(n, 1u) << "empty shard";
                lo = std::min(lo, n);
                hi = std::max(hi, n);
            }
            EXPECT_LE(hi - lo, 1u);
        }
    }
}

TEST(ShardMap, CoresOfWalksSequentialOrder)
{
    par::ShardMap map(3, 8, 4, 2);
    std::vector<unsigned> walked;
    for (unsigned s = 0; s < map.numShards(); ++s)
        for (unsigned c : map.coresOf(s))
            walked.push_back(c);
    ASSERT_EQ(walked.size(), map.numCores());
    for (unsigned c = 0; c < map.numCores(); ++c) {
        EXPECT_EQ(walked[c], c)
            << "shard walk must reproduce core-major order";
        EXPECT_EQ(map.shardOfCore(c), map.shardOfVd(c / 2));
    }
}

TEST(ShardMap, DomainIdsCoverVdsAndSlices)
{
    par::ShardMap map(4, 8, 4, 2);
    for (unsigned vd = 0; vd < 8; ++vd)
        EXPECT_EQ(map.shardOfDomain(map.domainOfVd(vd)),
                  map.shardOfVd(vd));
    for (unsigned sl = 0; sl < 4; ++sl) {
        unsigned s = map.shardOfDomain(map.domainOfSlice(sl));
        EXPECT_EQ(s, map.shardOfSlice(sl));
        EXPECT_LT(s, 4u);
    }
}

// --- forkMap --------------------------------------------------------

TEST(ForkMap, InlineAndForkedAgree)
{
    auto fn = [](unsigned t) {
        return "task" + std::to_string(t * t);
    };
    auto inline_res = par::forkMap(7, 1, fn);
    auto forked_res = par::forkMap(7, 3, fn);
    EXPECT_EQ(inline_res, forked_res);
    ASSERT_EQ(forked_res.size(), 7u);
    EXPECT_EQ(forked_res[3], "task9");
}

TEST(ForkMap, LargePayloadsSurviveThePipe)
{
    // Bigger than a pipe buffer, so partial reads/writes are hit.
    auto fn = [](unsigned t) {
        return std::string(300000 + t, static_cast<char>('a' + t));
    };
    auto res = par::forkMap(3, 2, fn);
    for (unsigned t = 0; t < 3; ++t) {
        ASSERT_EQ(res[t].size(), 300000u + t);
        EXPECT_EQ(res[t].back(), static_cast<char>('a' + t));
    }
}

// --- Determinism vs the sequential oracle ---------------------------

Config
smallConfig(std::uint64_t seed)
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(16));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(150));
    cfg.set("epoch.stores_global", std::uint64_t(60000));
    cfg.set("wl.seed", seed);
    return cfg;
}

/**
 * Run to completion and export the stats JSON with the engine-choice
 * artifacts scrubbed: the par.* config keys (present only when the
 * engine is selected), the host wall-clock extras, and host_seconds
 * (pinned to 0). Everything else — every counter, every series row,
 * the ledger, the config — must be byte-identical across engines.
 */
std::string
normalizedStatsJson(const Config &cfg, const std::string &workload)
{
    System sys(cfg, "nvoverlay", workload);
    sys.run();
    std::ostringstream os;
    obs::writeStatsJson(os, "nvoverlay", workload, sys.config(),
                        sys.stats(), &sys.epochSeries(), 0.0);
    std::string text = os.str();
    text = std::regex_replace(
        text, std::regex("\"par\\.[a-z_]+\":\"[^\"]*\","), "");
    text = std::regex_replace(
        text, std::regex(",\"host_(run|finalize)_us\":[0-9]+"), "");
    return text;
}

class ParDeterminism
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::uint64_t>>
{
};

TEST_P(ParDeterminism, StatsJsonByteIdenticalToSequential)
{
    const char *workload = std::get<0>(GetParam());
    std::uint64_t seed = std::get<1>(GetParam());
    std::string oracle =
        normalizedStatsJson(smallConfig(seed), workload);
    ASSERT_FALSE(oracle.empty());
    for (std::uint64_t shards : {1, 2, 8}) {
        Config cfg = smallConfig(seed);
        cfg.set("par.shards", shards);
        std::string got = normalizedStatsJson(cfg, workload);
        EXPECT_EQ(got, oracle)
            << workload << " seed=" << seed
            << " diverged at par.shards=" << shards;
    }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndSeeds, ParDeterminism,
    ::testing::Values(
        std::make_tuple("kmeans", std::uint64_t(1)),
        std::make_tuple("kmeans", std::uint64_t(7)),
        std::make_tuple("btree", std::uint64_t(1)),
        std::make_tuple("btree", std::uint64_t(7))));

TEST(ParEngineSystem, RunUntilMatchesSequentialMidRun)
{
    // The crash path stops mid-run via runUntil; the engine must be
    // cycle-exact there too, not only at completion.
    Config seq_cfg = smallConfig(3);
    System seq(seq_cfg, "nvoverlay", "kmeans");
    bool seq_done = seq.runUntil(400000);

    Config par_cfg = smallConfig(3);
    par_cfg.set("par.shards", std::uint64_t(4));
    System par_sys(par_cfg, "nvoverlay", "kmeans");
    bool par_done = par_sys.runUntil(400000);

    EXPECT_EQ(seq_done, par_done);
    EXPECT_EQ(seq.stats().cycles, par_sys.stats().cycles);
    EXPECT_EQ(seq.stats().stores, par_sys.stats().stores);
    EXPECT_EQ(seq.stats().instructions, par_sys.stats().instructions);
    EXPECT_EQ(seq.stats().totalNvmWriteBytes(),
              par_sys.stats().totalNvmWriteBytes());
}

TEST(ParEngineSystem, ReportAccountsTokensAndPregen)
{
    Config cfg = smallConfig(1);
    cfg.set("par.shards", std::uint64_t(4));
    System sys(cfg, "nvoverlay", "kmeans");
    sys.run();
    par::ShardEngine *eng = sys.parEngine();
    ASSERT_NE(eng, nullptr);
    eng->stop();
    const par::EngineReport &rep = eng->report();
    EXPECT_EQ(rep.shards, 4u);
    EXPECT_TRUE(rep.pregen) << "kmeans generation is "
                               "confinement-certified";
    EXPECT_GT(rep.quanta, 0u);
    EXPECT_EQ(rep.tokens, rep.quanta * rep.shards);
    ASSERT_EQ(rep.shard.size(), 4u);
    std::uint64_t cores_run = 0;
    for (const auto &m : rep.shard) {
        EXPECT_EQ(m.quanta, rep.quanta);
        EXPECT_EQ(m.xDropped, 0u);
        cores_run += m.coresRun;
    }
    EXPECT_EQ(cores_run, rep.quanta * 16);
    EXPECT_GT(rep.totalPregen(), 0u);
    // kmeans scatters across shared arenas, so some traffic must
    // have crossed a shard boundary.
    EXPECT_GT(rep.totalCross() + rep.totalLocal(), 0u);
}

TEST(ParEngineSystem, SerialGeneratorDisablesPregen)
{
    Config cfg = smallConfig(1);
    cfg.set("par.shards", std::uint64_t(2));
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    par::ShardEngine *eng = sys.parEngine();
    ASSERT_NE(eng, nullptr);
    eng->stop();
    EXPECT_FALSE(eng->report().pregen)
        << "btree's generator mutates shared host structures";
    EXPECT_EQ(eng->report().totalPregen(), 0u);
}

TEST(ParEngineSystem, ShardsClampToVdCountAndThreadsConfigurable)
{
    Config cfg = smallConfig(1);
    cfg.set("par.shards", std::uint64_t(64)); // > numVds (8): clamped
    cfg.set("par.threads", std::uint64_t(2)); // 2 workers, 8 shards
    System sys(cfg, "nvoverlay", "kmeans");
    sys.run();
    par::ShardEngine *eng = sys.parEngine();
    ASSERT_NE(eng, nullptr);
    eng->stop();
    EXPECT_EQ(eng->report().shards, 8u);
    EXPECT_EQ(eng->report().threads, 2u);
    EXPECT_GT(sys.stats().stores, 0u);
}

// --- Exception (poisoned-token) propagation -------------------------

/** Emits trivial stores, then throws on one thread mid-run — the
 *  stand-in for a fault injected inside a core's token turn. */
class ThrowingWorkload : public WorkloadBase
{
  public:
    ThrowingWorkload(const Params &params, unsigned throw_thread,
                     std::uint64_t throw_op)
        : WorkloadBase(params), thrower(throw_thread),
          throwOp(throw_op)
    {
    }

    const char *name() const override { return "throwing"; }

    void
    genOp(unsigned thread, std::vector<MemRef> &out) override
    {
        if (thread == thrower && opsDone[thread] >= throwOp)
            throw std::runtime_error("planned mid-run failure");
        st(out, 0x100000 + thread * 0x10000 +
                    (opsDone[thread] % 64) * 64);
    }

  private:
    unsigned thrower;
    std::uint64_t throwOp;
};

TEST(ParEngineSystem, WorkerExceptionReachesTheCoordinator)
{
    WorkloadBase::Params wp;
    wp.numThreads = 16;
    wp.opsPerThread = 500;

    auto run_one = [&](std::uint64_t shards) {
        Config cfg = smallConfig(1);
        if (shards > 0)
            cfg.set("par.shards", shards);
        System sys(cfg, "none",
                   std::make_unique<ThrowingWorkload>(wp, 5, 120));
        std::string what;
        try {
            sys.run();
        } catch (const std::runtime_error &e) {
            what = e.what();
        }
        return std::make_pair(what, sys.stats().stores);
    };

    auto seq = run_one(0);
    EXPECT_EQ(seq.first, "planned mid-run failure");
    for (std::uint64_t shards : {1, 4, 8}) {
        auto par_res = run_one(shards);
        EXPECT_EQ(par_res.first, seq.first)
            << "shards=" << shards;
        EXPECT_EQ(par_res.second, seq.second)
            << "stores diverged before the throw at shards="
            << shards;
    }
}

} // namespace
} // namespace nvo
