/**
 * @file
 * Strict-config accounting: every getter marks its key consumed,
 * setDerived marks harness-computed keys consumed at the point they
 * are written, and unreadKeys() reports exactly the explicitly-set
 * keys nothing ever read (the nvo_sim warning / `cfg.strict=1`
 * error).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/config.hh"
#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"

namespace nvo
{
namespace
{

TEST(ConfigStrict, GettersMarkKeysConsumed)
{
    Config cfg;
    cfg.set("a.u64", std::uint64_t(7));
    cfg.set("a.f64", "0.5");
    cfg.set("a.bool", "true");
    cfg.set("a.str", "hello");
    cfg.set("a.never", "unused");
    EXPECT_EQ(cfg.unreadKeys().size(), 5u);

    EXPECT_EQ(cfg.getU64("a.u64", 0), 7u);
    EXPECT_DOUBLE_EQ(cfg.getF64("a.f64", 0.0), 0.5);
    EXPECT_TRUE(cfg.getBool("a.bool", false));
    EXPECT_EQ(cfg.getStr("a.str", ""), "hello");

    auto unread = cfg.unreadKeys();
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_EQ(unread[0], "a.never");
}

TEST(ConfigStrict, DefaultedReadsDoNotInventUnreadKeys)
{
    Config cfg;
    // Reading an absent key records the default into the resolved
    // view but must not make unreadKeys() report it: only explicitly
    // set keys can be "set but never read".
    EXPECT_EQ(cfg.getU64("missing.key", 3), 3u);
    EXPECT_TRUE(cfg.unreadKeys().empty());
}

TEST(ConfigStrict, HasDoesNotMarkConsumed)
{
    Config cfg;
    cfg.set("probe.only", "1");
    // has() is an existence probe, not a consumption: code that
    // checks has() and then ignores the value should still be
    // flagged.
    EXPECT_TRUE(cfg.has("probe.only"));
    ASSERT_EQ(cfg.unreadKeys().size(), 1u);
    EXPECT_EQ(cfg.unreadKeys()[0], "probe.only");
}

TEST(ConfigStrict, SetDerivedCountsAsConsumed)
{
    Config cfg;
    cfg.setDerived("derived.key", std::uint64_t(42));
    EXPECT_TRUE(cfg.unreadKeys().empty());
    // And it really is set.
    EXPECT_EQ(cfg.getU64("derived.key", 0), 42u);
}

TEST(ConfigStrict, FullRunConsumesEveryDefaultKey)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(200));
    cfg.set("wl.hashtable.prefill", std::uint64_t(64));
    cfg.set("nvo.typo_key", std::uint64_t(1));   // nothing reads this
    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();
    auto unread = sys.config().unreadKeys();
    // The seeded typo is flagged...
    EXPECT_NE(std::find(unread.begin(), unread.end(),
                        "nvo.typo_key"),
              unread.end());
    // ...and it is the only unread key: every legitimate knob the
    // test set was consumed by the harness or the scheme.
    EXPECT_EQ(unread.size(), 1u)
        << "unexpected unread keys beyond the seeded typo";
}

} // namespace
} // namespace nvo
