/**
 * @file
 * Baseline scheme tests: write-amplification accounting, barrier
 * stall behaviour, epoch bookkeeping, and the scheme factory.
 */

#include <gtest/gtest.h>

#include "baselines/hw_shadow.hh"
#include "baselines/picl.hh"
#include "baselines/scheme.hh"
#include "baselines/sw_log.hh"
#include "baselines/sw_shadow.hh"
#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"

namespace nvo
{
namespace
{

Config
tinyCfg()
{
    Config cfg;
    cfg.set("epoch.stores_refs", std::uint64_t(100));
    return cfg;
}

TEST(SchemeFactory, BuildsEveryScheme)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    Config cfg;
    for (const char *name : {"none", "nvoverlay", "swlog", "swshadow",
                             "hwshadow", "picl", "picl-l2"}) {
        auto scheme = makeScheme(name, cfg, nvm, st);
        ASSERT_NE(scheme, nullptr) << name;
        EXPECT_STREQ(scheme->name(), name);
    }
}

TEST(SwLog, BarrierPerStore)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    SwLogScheme scheme(tinyCfg(), nvm, st);
    Cycle s1 = scheme.onStore(0, 0, 0x1000, 0);
    EXPECT_GT(s1, 0u) << "undo log persist stalls the pipeline";
    EXPECT_EQ(st.nvmWriteBytes[static_cast<int>(NvmWriteKind::Log)],
              72u);
}

TEST(SwLog, EpochFlushWritesWriteSetOnce)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    SwLogScheme scheme(tinyCfg(), nvm, st);
    // 100 stores to 10 distinct lines trigger one epoch flush.
    for (int i = 0; i < 100; ++i)
        scheme.onStore(0, 0, 0x1000 + (i % 10) * 64, 0);
    EXPECT_EQ(st.nvmDataBytes(), 10u * 64)
        << "write set flushed per line, not per store";
    EXPECT_EQ(scheme.globalEpoch(), 2u);
    EXPECT_EQ(st.nvmWriteBytes[static_cast<int>(NvmWriteKind::Log)],
              100u * 72);
}

TEST(SwShadow, TxnFlushWritesDataOncePlusMapping)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    Config cfg = tinyCfg();
    cfg.set("sw.txn_stores", std::uint64_t(16));
    SwShadowScheme scheme(cfg, nvm, st);
    Cycle total_stall = 0;
    for (int i = 0; i < 16; ++i)
        total_stall += scheme.onStore(0, 0, 0x1000 + i * 64, 0);
    EXPECT_GT(total_stall, 0u) << "txn boundary barrier";
    EXPECT_EQ(st.nvmDataBytes(), 16u * 64);
    EXPECT_GT(st.nvmWriteBytes[static_cast<int>(
                  NvmWriteKind::Mapping)],
              0u);
    EXPECT_EQ(st.nvmWriteBytes[static_cast<int>(NvmWriteKind::Log)],
              0u)
        << "shadow paging writes no log";
}

TEST(HwShadow, OverlapsPersistButStallsOnMapping)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    HwShadowScheme scheme(tinyCfg(), nvm, st);
    for (int i = 0; i < 99; ++i)
        EXPECT_EQ(scheme.onStore(0, 0, 0x1000 + i * 64, 0), 0u)
            << "no per-store overhead";
    scheme.onStore(0, 0, 0x40000, 0);   // crosses the epoch boundary
    EXPECT_GT(scheme.takeGlobalStall(), 0u)
        << "synchronous mapping-table update stalls all cores";
    EXPECT_EQ(st.nvmDataBytes(), 100u * 64);
    EXPECT_EQ(scheme.epochsCompleted(), 1u);
}

TEST(Picl, LogsFirstStorePerEpochPerLine)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    Config cfg = tinyCfg();
    PiclScheme scheme(cfg, nvm, st, false);
    scheme.onStore(0, 0, 0x1000, 0);
    scheme.onStore(0, 0, 0x1000, 0);
    scheme.onStore(0, 0, 0x1040, 0);
    EXPECT_EQ(st.nvmWriteBytes[static_cast<int>(NvmWriteKind::Log)],
              2u * 72)
        << "one undo entry per line per epoch";
}

TEST(Picl, TagWalkEvictsPreviousEpoch)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    PiclScheme scheme(tinyCfg(), nvm, st, false);
    for (int i = 0; i < 100; ++i)
        scheme.onStore(0, 0, 0x1000 + (i % 20) * 64, 0);
    EXPECT_EQ(scheme.drainBacklog(), 20u)
        << "ACS collected the dirty lines of the closed epoch";
    scheme.tick(0);
    EXPECT_EQ(scheme.drainBacklog(), 0u);
    EXPECT_EQ(st.nvmDataBytes(), 20u * 64);
    EXPECT_EQ(st.tagWalkWriteBacks, 20u);
}

TEST(Picl, ApproximatelyDoubleWriteAmplification)
{
    RunStats st;
    NvmModel nvm(NvmModel::Params{}, &st);
    PiclScheme scheme(tinyCfg(), nvm, st, false);
    // Unique lines, several epochs.
    for (int i = 0; i < 500; ++i)
        scheme.onStore(0, 0, 0x10000 + i * 64, 0);
    Cycle fin = scheme.finalize(0);
    (void)fin;
    std::uint64_t data = st.nvmDataBytes();
    std::uint64_t log =
        st.nvmWriteBytes[static_cast<int>(NvmWriteKind::Log)];
    EXPECT_EQ(data, 500u * 64);
    EXPECT_EQ(log, 500u * 72);
    EXPECT_NEAR(static_cast<double>(data + log) / data, 2.125, 0.01);
}

TEST(PiclL2, SmallerTagsEvictMore)
{
    RunStats st_llc, st_l2;
    NvmModel nvm1(NvmModel::Params{}, &st_llc);
    NvmModel nvm2(NvmModel::Params{}, &st_l2);
    Config cfg;
    cfg.set("epoch.stores_refs", std::uint64_t(1) << 30);
    cfg.set("picl.tag_bytes", std::uint64_t(64 * 1024));
    cfg.set("picl.l2_tag_bytes", std::uint64_t(4 * 1024));
    PiclScheme big(cfg, nvm1, st_llc, false);
    PiclScheme small(cfg, nvm2, st_l2, true);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        Addr a = lineAlign(rng.below(32 * 1024) * 64);
        big.onStore(0, 0, a, 0);
        small.onStore(0, 0, a, 0);
    }
    EXPECT_GT(st_l2.nvmDataBytes(), st_llc.nvmDataBytes())
        << "capacity evictions from the smaller tag structure";
}

TEST(SchemeIntegration, GlobalStallReachesAllCores)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(4));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("wl.ops", std::uint64_t(200));
    cfg.set("wl.hashtable.prefill", std::uint64_t(256));
    cfg.set("epoch.stores_global", std::uint64_t(4000));

    System base(cfg, "none", "hashtable");
    base.run();
    System slow(cfg, "hwshadow", "hashtable");
    slow.run();
    EXPECT_GT(slow.stats().cycles, base.stats().cycles);
    EXPECT_GT(slow.stats().barrierStallCycles, 0u);
}

TEST(SchemeIntegration, EpochAdvanceCountsMatch)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(4));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("wl.ops", std::uint64_t(400));
    cfg.set("wl.hashtable.prefill", std::uint64_t(256));
    cfg.set("epoch.stores_global", std::uint64_t(8000));

    System sys(cfg, "picl", "hashtable");
    sys.run();
    EXPECT_EQ(sys.stats().epochAdvances,
              sys.scheme().epochsCompleted() - 1)
        << "finalize closes one extra epoch";
    EXPECT_GT(sys.stats().epochAdvances, 1u);
}

} // namespace
} // namespace nvo
