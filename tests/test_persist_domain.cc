/**
 * @file
 * Persistence-domain model: the undo journal that gives the simulator
 * a real durable/volatile boundary (barrier commits, crash truncates).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "mem/nvm_model.hh"
#include "mem/persist_domain.hh"
#include "nvoverlay/master_table.hh"
#include "nvoverlay/page_pool.hh"

namespace nvo
{
namespace
{

LineData
lineOf(std::uint8_t fill)
{
    LineData d;
    d.bytes.fill(fill);
    return d;
}

TEST(PersistDomain, DisarmedStagesNothing)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    PersistDomain &pd = nvm.persist();
    ASSERT_FALSE(pd.armed());
    pd.stage(PersistDomain::Kind::Master, [] { FAIL(); });
    EXPECT_EQ(pd.inFlight(), 0u);
    EXPECT_EQ(pd.stagedTotal(), 0u);
    pd.truncateToDurable();   // must not run the dropped undo
}

TEST(PersistDomain, TruncateUnwindsNewestFirst)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    PersistDomain &pd = nvm.persist();
    pd.arm();
    std::vector<int> order;
    pd.stage(PersistDomain::Kind::PoolData,
             [&order] { order.push_back(1); });
    pd.stage(PersistDomain::Kind::Master,
             [&order] { order.push_back(2); });
    pd.stage(PersistDomain::Kind::RecEpoch,
             [&order] { order.push_back(3); });
    EXPECT_EQ(pd.inFlight(), 3u);
    EXPECT_EQ(pd.stagedByKind(PersistDomain::Kind::Master), 1u);
    pd.truncateToDurable();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}))
        << "each undo must see the state as of just after its own "
           "mutation";
    EXPECT_EQ(pd.inFlight(), 0u);
    EXPECT_EQ(pd.truncatedTotal(), 3u);
}

TEST(PersistDomain, BarrierMakesRecordsDurable)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    PersistDomain &pd = nvm.persist();
    pd.arm();
    bool undone = false;
    pd.stage(PersistDomain::Kind::PoolBitmap,
             [&undone] { undone = true; });
    pd.barrier();
    EXPECT_EQ(pd.inFlight(), 0u);
    EXPECT_EQ(pd.durableTotal(), 1u);
    EXPECT_EQ(pd.barriers(), 1u);
    pd.truncateToDurable();
    EXPECT_FALSE(undone) << "fenced records must survive the crash";
}

TEST(PersistDomain, PagePoolCrashRestoresDurablePrefix)
{
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    PersistDomain &pd = nvm.persist();
    constexpr Addr base = 1ull << 40;
    PagePool pool(base, 1ull << 20);
    pool.attachPersist(&pd);
    pd.arm();

    // Durable prefix: one sub-page with known content and header.
    Addr sp = pool.allocLines(4, 0);
    ASSERT_NE(sp, invalidAddr);
    pool.writeLine(sp, lineOf(0xAA));
    PagePool::SubPageHeader hdr;
    hdr.srcPage = 0x1000;
    hdr.capacityLines = 4;
    hdr.usedLines = 1;
    pool.setHeader(sp, hdr);
    pd.barrier();
    std::uint64_t durable_bytes = pool.bytesAllocated();
    std::uint64_t durable_pages = pool.pagesInUse();

    // In-flight suffix: overwrite, grow the header, allocate more,
    // free the original block.
    pool.writeLine(sp, lineOf(0xBB));
    pool.header(sp)->usedLines = 3;
    Addr sp2 = pool.allocLines(8, 0);
    ASSERT_NE(sp2, invalidAddr);
    pool.writeLine(sp2, lineOf(0xCC));
    pool.freeLines(sp, 4, 0);
    pool.dropHeader(sp);
    ASSERT_GT(pd.inFlight(), 0u);

    pd.truncateToDurable();

    LineData out;
    pool.readLine(sp, out);
    EXPECT_EQ(out, lineOf(0xAA));
    const PagePool::SubPageHeader *h =
        static_cast<const PagePool &>(pool).header(sp);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->srcPage, 0x1000u);
    EXPECT_EQ(h->usedLines, 1);
    EXPECT_EQ(pool.bytesAllocated(), durable_bytes);
    EXPECT_EQ(pool.pagesInUse(), durable_pages);
    pool.audit();
}

TEST(PersistDomain, PagePoolAllocReuseUnwindsCleanly)
{
    // free + realloc of the same block in the in-flight suffix: the
    // reverse unwind must first return the block (undoing the alloc)
    // and then reclaim it (undoing the free), landing back on the
    // durable allocation.
    RunStats stats;
    NvmModel nvm(NvmModel::Params{}, &stats);
    PersistDomain &pd = nvm.persist();
    PagePool pool(1ull << 40, 1ull << 20);
    pool.attachPersist(&pd);
    pd.arm();

    Addr sp = pool.allocLines(4, 0);
    pool.writeLine(sp, lineOf(0x11));
    pd.barrier();
    std::uint64_t durable_bytes = pool.bytesAllocated();

    pool.freeLines(sp, 4, 0);
    Addr again = pool.allocLines(4, 0);
    EXPECT_EQ(again, sp) << "buddy free list should hand back the "
                            "just-freed block";
    pool.writeLine(again, lineOf(0x22));

    pd.truncateToDurable();
    LineData out;
    pool.readLine(sp, out);
    EXPECT_EQ(out, lineOf(0x11));
    EXPECT_EQ(pool.bytesAllocated(), durable_bytes);
    pool.audit();

    // The block is still allocated: a fresh alloc must not alias it.
    Addr other = pool.allocLines(4, 0);
    EXPECT_NE(other, sp);
}

TEST(MasterTableErase, RemovesOnlyTheTargetLine)
{
    MasterTable mt;
    mt.insert(tenant::keyOf(0x40), 0xF000, 3);
    mt.insert(tenant::keyOf(0x80), 0xF040, 4);
    EXPECT_EQ(mt.mappedLines(), 2u);
    mt.erase(tenant::keyOf(0x40));
    EXPECT_EQ(mt.lookup(0x40), nullptr);
    ASSERT_NE(mt.lookup(0x80), nullptr);
    EXPECT_EQ(mt.lookup(0x80)->epoch, 4u);
    EXPECT_EQ(mt.mappedLines(), 1u);
    mt.erase(tenant::keyOf(0x4000));   // unmapped: no-op
    EXPECT_EQ(mt.mappedLines(), 1u);
}

} // namespace
} // namespace nvo
