/**
 * @file
 * Unit tests for common utilities: Config, Rng, bit utilities,
 * Histogram/TimeSeries statistics.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace nvo
{
namespace
{

TEST(Config, SetAndGetString)
{
    Config cfg;
    cfg.set("a.b", "hello");
    EXPECT_EQ(cfg.getStr("a.b", "x"), "hello");
    EXPECT_EQ(cfg.getStr("missing", "dflt"), "dflt");
}

TEST(Config, IntegerParsing)
{
    Config cfg;
    cfg.set("n", std::uint64_t(42));
    EXPECT_EQ(cfg.getU64("n", 0), 42u);
    cfg.set("hex", "0x10");
    EXPECT_EQ(cfg.getU64("hex", 0), 16u);
    EXPECT_EQ(cfg.getU64("absent", 7), 7u);
}

TEST(Config, FloatAndBool)
{
    Config cfg;
    cfg.set("f", 0.5);
    EXPECT_DOUBLE_EQ(cfg.getF64("f", 0), 0.5);
    cfg.set("t", "true");
    cfg.set("one", "1");
    cfg.set("no", "no");
    EXPECT_TRUE(cfg.getBool("t", false));
    EXPECT_TRUE(cfg.getBool("one", false));
    EXPECT_FALSE(cfg.getBool("no", true));
    EXPECT_TRUE(cfg.getBool("absent", true));
}

TEST(Config, ParseArg)
{
    Config cfg;
    cfg.parseArg("l2.kb=512");
    EXPECT_EQ(cfg.getU64("l2.kb", 0), 512u);
}

TEST(Config, HasReflectsExplicitKeysOnly)
{
    Config cfg;
    EXPECT_FALSE(cfg.has("k"));
    cfg.getU64("k", 3);   // access with default does not set
    EXPECT_FALSE(cfg.has("k"));
    cfg.set("k", std::uint64_t(1));
    EXPECT_TRUE(cfg.has("k"));
}

TEST(Config, DumpIncludesAccessedDefaults)
{
    Config cfg;
    cfg.getU64("some.default", 99);
    auto dump = cfg.dump();
    EXPECT_EQ(dump.at("some.default"), "99");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(123), c2(124);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.05);
}

TEST(BitUtil, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(24));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(64), 6u);
    EXPECT_EQ(log2Floor(100), 6u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(BitUtil, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xabcd, 3, 0), 0xdu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(lineAlign(0x12345), Addr(0x12340));
    EXPECT_EQ(pageAlign(0x12345), Addr(0x12000));
    EXPECT_EQ(lineInPage(0x12345), (0x345u >> 6));
    EXPECT_EQ(roundUpPow2(65, 64), 128u);
    EXPECT_EQ(roundUpPow2(64, 64), 64u);
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h(10, 5);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(1000);   // clamps to last bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.total(), 1019u);
    EXPECT_EQ(h.maxSample(), 1000u);
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[4], 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 1019.0 / 4);
}

TEST(TimeSeries, BinningAndPeak)
{
    TimeSeries ts(100);
    ts.add(0, 64);
    ts.add(99, 64);
    ts.add(100, 64);
    ts.add(1000, 640);
    EXPECT_EQ(ts.buckets()[0], 128u);
    EXPECT_EQ(ts.buckets()[1], 64u);
    EXPECT_EQ(ts.buckets()[10], 640u);
    EXPECT_EQ(ts.peakBytes(), 640u);
}

TEST(TimeSeries, GbPerSecond)
{
    TimeSeries ts(3'000'000'000ull);   // 1 s @ 3 GHz per bucket
    ts.add(0, 1'000'000'000ull);       // 1 GB in the first second
    EXPECT_NEAR(ts.gbPerSec(0, 3e9), 1.0, 1e-9);
}

TEST(RunStats, NvmWriteAggregation)
{
    RunStats st;
    st.addNvmWrite(NvmWriteKind::Data, 64, 0);
    st.addNvmWrite(NvmWriteKind::Log, 72, 10);
    st.addNvmWrite(NvmWriteKind::Mapping, 8, 20);
    EXPECT_EQ(st.totalNvmWriteBytes(), 144u);
    EXPECT_EQ(st.nvmDataBytes(), 64u);
    EXPECT_EQ(st.nvmWriteOps, 3u);
    EXPECT_DOUBLE_EQ(st.writeAmp(72), 2.0);
    EXPECT_DOUBLE_EQ(st.writeAmp(0), 0.0);
}

TEST(RunStats, EnumNames)
{
    EXPECT_STREQ(toString(NvmWriteKind::Data), "data");
    EXPECT_STREQ(toString(EvictReason::TagWalk), "tag-walk");
    EXPECT_STREQ(toString(EvictReason::StoreEvict), "store-evict");
}

} // namespace
} // namespace nvo
