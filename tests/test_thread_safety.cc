/**
 * @file
 * ShardCap / ShardGuard: the capability anchor the thread-safety
 * annotations hang off. Disarmed builds get empty inlines, so the
 * tests here check the API shape everywhere and the NVO_AUDIT
 * single-owner runtime enforcement (plus death tests for the traps)
 * only when it is compiled in. The two-shard exercise at the bottom
 * is the shared-nothing shape ROADMAP item 1 will scale up, and is
 * what the TSan CI build orders through the acquire/release edges.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_safety.hh"

namespace nvo
{
namespace
{

TEST(ShardCap, UnownedAssertHeldIsTheSingleThreadedDefault)
{
    ShardCap cap;
    // The single simulation thread holds every capability implicitly:
    // assertHeld on a never-acquired capability must be a no-op.
    cap.assertHeld();
    cap.assertHeld();
}

TEST(ShardCap, AcquireReleaseCyclesFromOneThread)
{
    ShardCap cap;
    for (int i = 0; i < 3; ++i) {
        cap.acquire();
        cap.assertHeld();
        cap.release();
    }
    cap.assertHeld();
}

TEST(ShardGuard, RaiiAcquiresForTheScopeAndReleasesAfter)
{
    ShardCap cap;
    {
        ShardGuard g(cap);
        cap.assertHeld();
    }
    // Released: a fresh guard (and a fresh acquire) must succeed.
    {
        ShardGuard g(cap);
        cap.assertHeld();
    }
    cap.acquire();
    cap.release();
}

#ifdef NVO_AUDIT_ENABLED

TEST(ShardCapDeath, SecondThreadCannotAcquireAHeldCapability)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardCap cap;
            cap.acquire();
            std::thread t([&cap] { cap.acquire(); });
            t.join();
        },
        "another thread");
}

TEST(ShardCapDeath, ForeignThreadTouchingOwnedStateTraps)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardCap cap;
            cap.acquire();
            std::thread t([&cap] { cap.assertHeld(); });
            t.join();
        },
        "does not");
}

TEST(ShardCapDeath, ReleaseWithoutOwnershipTraps)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardCap cap;
            cap.release();
        },
        "does not hold");
}

#endif // NVO_AUDIT_ENABLED

/** A miniature shard: a capability plus the state it confines. */
struct Shard
{
    ShardCap cap;
    std::uint64_t counter NVO_GUARDED_BY(cap) = 0;

    void
    bump(int n)
    {
        ShardGuard g(cap);
        for (int i = 0; i < n; ++i)
            ++counter;
    }

    std::uint64_t
    value()
    {
        ShardGuard g(cap);
        return counter;
    }
};

TEST(ShardCap, SharedNothingShardsRunConcurrently)
{
    // The ROADMAP item 1 shape: one worker per shard, no worker ever
    // touching the other shard's state. Under NVO_AUDIT the owner CAS
    // enforces that; under TSan the acquire/release pair is the
    // happens-before edge ordering each shard's handoff to the
    // checking thread below.
    constexpr int kShards = 4;
    constexpr int kBumps = 10000;
    std::vector<Shard> shards(kShards);
    std::vector<std::thread> workers;
    workers.reserve(kShards);
    for (int s = 0; s < kShards; ++s)
        workers.emplace_back([&shards, s] { shards[s].bump(kBumps); });
    for (std::thread &t : workers)
        t.join();
    for (Shard &sh : shards)
        EXPECT_EQ(sh.value(), static_cast<std::uint64_t>(kBumps));
}

} // namespace
} // namespace nvo
