/**
 * @file
 * Replication subsystem: wire format round-trips and survives
 * truncation/corruption/garbage, the lossy async link eventually
 * delivers everything inside its retry budget, and the full
 * primary -> standby pipeline converges byte-exact — including
 * across a primary crash, where resume must re-ship only from the
 * durable cursor, and a seeded premature-cursor bug must be caught
 * by the convergence check.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "repl/link.hh"
#include "repl/replicator.hh"
#include "repl/wire.hh"

namespace nvo
{
namespace repl
{
namespace
{

Frame
deltaFrame(std::uint64_t id, EpochWide e, Addr line,
           std::uint8_t fill)
{
    Frame f;
    f.type = FrameType::Delta;
    f.generation = 1;
    f.epoch = e;
    f.arg = line;
    f.frameId = id;
    for (std::size_t i = 0; i < lineBytes; ++i)
        f.payload.bytes[i] =
            static_cast<std::uint8_t>(fill + i);
    return f;
}

// ---------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------

TEST(ReplWire, Crc32KnownVector)
{
    // The IEEE 802.3 check value for the ASCII digits "123456789".
    const char *s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(s), 9),
              0xCBF43926u);
}

TEST(ReplWire, DeltaRoundTrip)
{
    Frame f = deltaFrame(7, 42, 0x1040, 0xA0);
    auto bytes = encode(f);
    ASSERT_EQ(bytes.size(), deltaFrameBytes);

    Decoder dec;
    dec.feed(bytes);
    auto got = dec.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, FrameType::Delta);
    EXPECT_EQ(got->generation, 1u);
    EXPECT_EQ(got->epoch, 42u);
    EXPECT_EQ(got->arg, 0x1040u);
    EXPECT_EQ(got->frameId, 7u);
    EXPECT_EQ(std::memcmp(got->payload.bytes.data(),
                          f.payload.bytes.data(), lineBytes),
              0);
    EXPECT_FALSE(dec.poll().has_value());
    EXPECT_EQ(dec.framesDecoded(), 1u);
    EXPECT_EQ(dec.crcErrors(), 0u);
}

TEST(ReplWire, EpochCloseRoundTrip)
{
    Frame f;
    f.type = FrameType::EpochClose;
    f.generation = 3;
    f.epoch = 9;
    f.arg = 17;   // delta count
    f.frameId = 55;
    auto bytes = encode(f);
    ASSERT_EQ(bytes.size(), closeFrameBytes);

    Decoder dec;
    dec.feed(bytes);
    auto got = dec.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, FrameType::EpochClose);
    EXPECT_EQ(got->arg, 17u);
    EXPECT_FALSE(got->hasPayload());
}

TEST(ReplWire, TruncationWaitsForMoreBytes)
{
    Frame f = deltaFrame(1, 5, 0x2000, 0x11);
    auto bytes = encode(f);
    Decoder dec;
    // Drip-feed: no prefix may yield a frame, the full buffer must.
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        dec.feed(bytes.data() + cut - 1, 1);
        EXPECT_FALSE(dec.poll().has_value()) << "cut=" << cut;
    }
    dec.feed(bytes.data() + bytes.size() - 1, 1);
    auto got = dec.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frameId, 1u);
    EXPECT_EQ(dec.bytesDiscarded(), 0u);
}

TEST(ReplWire, CorruptPayloadResyncsToNextFrame)
{
    auto a = encode(deltaFrame(1, 5, 0x2000, 0x11));
    auto b = encode(deltaFrame(2, 5, 0x2040, 0x22));
    a[40] ^= 0xFF;   // payload corruption -> CRC failure
    Decoder dec;
    dec.feed(a);
    dec.feed(b);
    auto got = dec.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frameId, 2u);
    EXPECT_FALSE(dec.poll().has_value());
    EXPECT_EQ(dec.framesDecoded(), 1u);
    EXPECT_GE(dec.crcErrors(), 1u);
    EXPECT_GE(dec.resyncs(), 1u);
    EXPECT_GT(dec.bytesDiscarded(), 0u);
}

TEST(ReplWire, UnknownVersionIsSkippedNotTrusted)
{
    auto a = encode(deltaFrame(1, 5, 0x2000, 0x11));
    a[2] = wireVersion + 1;   // future wire version
    auto b = encode(deltaFrame(2, 6, 0x2040, 0x22));
    Decoder dec;
    dec.feed(a);
    dec.feed(b);
    auto got = dec.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frameId, 2u);
    EXPECT_GE(dec.badVersions(), 1u);
}

TEST(ReplWire, GarbagePrefixIsDiscarded)
{
    std::vector<std::uint8_t> garbage(300);
    Rng rng(11);
    for (auto &byte : garbage)
        byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
    garbage[0] = wireMagic0;   // tease a false sync at offset 0
    auto good = encode(deltaFrame(9, 3, 0x4080, 0x33));

    Decoder dec;
    dec.feed(garbage);
    dec.feed(good);
    std::uint64_t seen = 0;
    while (auto f = dec.poll())
        if (f->frameId == 9)
            ++seen;
    EXPECT_EQ(seen, 1u);
    EXPECT_GT(dec.bytesDiscarded(), 0u);
}

TEST(ReplWire, FuzzedStreamNeverDesynchronizesPermanently)
{
    Rng rng(1234);
    Decoder dec;
    std::uint64_t cleanSent = 0, cleanSeen = 0;
    for (unsigned round = 0; round < 400; ++round) {
        Frame f = deltaFrame(round + 1, round / 7 + 1,
                             0x1000 + 64 * round,
                             static_cast<std::uint8_t>(round));
        auto bytes = encode(f);
        unsigned roll = static_cast<unsigned>(rng.next() % 10);
        if (roll < 2) {
            // Corrupt 1-3 bytes anywhere in the frame.
            unsigned n = 1 + static_cast<unsigned>(rng.next() % 3);
            for (unsigned i = 0; i < n; ++i)
                bytes[rng.next() % bytes.size()] ^=
                    static_cast<std::uint8_t>(1 + rng.next() % 255);
        } else if (roll == 2) {
            // Truncate: the tail never arrives.
            bytes.resize(1 + rng.next() % (bytes.size() - 1));
        } else if (roll == 3) {
            // Inject pure garbage between frames.
            std::vector<std::uint8_t> junk(rng.next() % 200);
            for (auto &byte : junk)
                byte = static_cast<std::uint8_t>(rng.next() & 0xFF);
            dec.feed(junk);
        } else {
            ++cleanSent;
        }
        dec.feed(bytes);
        while (auto got = dec.poll()) {
            // Whatever survives must be internally consistent.
            EXPECT_EQ(got->arg, 0x1000u + 64 * (got->frameId - 1));
            if (got->type == FrameType::Delta)
                ++cleanSeen;
        }
    }
    // Every untouched frame fed after the last disturbance must be
    // recoverable; corrupted neighbours may take clean ones down
    // with them only when truncation glued two frames together.
    EXPECT_GE(cleanSeen, cleanSent / 2);
    // And a pristine frame at the end always decodes.
    auto tail = encode(deltaFrame(10001, 99, 0x9000, 0x77));
    dec.feed(tail);
    bool sawTail = false;
    while (auto got = dec.poll())
        sawTail |= got->frameId == 10001;
    EXPECT_TRUE(sawTail);
}

// ---------------------------------------------------------------
// Async link
// ---------------------------------------------------------------

struct LinkHarness
{
    AsyncLink link;
    Decoder dec;
    std::set<std::uint64_t> delivered;

    explicit LinkHarness(const AsyncLink::Params &p) : link(p)
    {
        link.setDeliver([this](const std::vector<std::uint8_t> &b,
                               Cycle now) {
            dec.feed(b);
            while (auto f = dec.poll()) {
                delivered.insert(f->frameId);
                link.ack(f->frameId, now);
            }
        });
    }

    Cycle
    pump(Cycle now, Cycle quantum = 500)
    {
        while (!link.idle()) {
            now += quantum;
            link.tick(now);
        }
        return now;
    }
};

TEST(ReplLink, LosslessDeliversEverythingWithoutRetries)
{
    AsyncLink::Params p;
    p.seed = 5;
    LinkHarness h(p);
    Cycle now = 0;
    for (std::uint64_t id = 1; id <= 64; ++id)
        h.link.send(id, encode(deltaFrame(id, 1, 0x1000 + 64 * id,
                                          0x10)),
                    now);
    h.pump(now);
    EXPECT_EQ(h.delivered.size(), 64u);
    EXPECT_EQ(h.link.stats().acked, 64u);
    EXPECT_EQ(h.link.stats().retries, 0u);
    EXPECT_EQ(h.link.stats().drops, 0u);
}

TEST(ReplLink, LossyLinkEventuallyDeliversEverything)
{
    AsyncLink::Params p;
    p.dropRate = 0.25;
    p.corruptRate = 0.10;
    p.retryTimeout = 12000;
    p.seed = 7;
    LinkHarness h(p);
    Cycle now = 0;
    for (std::uint64_t id = 1; id <= 200; ++id) {
        h.link.send(id, encode(deltaFrame(id, 1 + id / 50,
                                          0x1000 + 64 * id, 0x20)),
                    now);
        now += 100;
        h.link.tick(now);
    }
    h.pump(now);
    EXPECT_EQ(h.delivered.size(), 200u);
    EXPECT_GT(h.link.stats().drops, 0u);
    EXPECT_GT(h.link.stats().corrupts, 0u);
    EXPECT_GT(h.link.stats().retries, 0u);
    EXPECT_GE(h.dec.crcErrors() + h.dec.resyncs(), 1u);
}

TEST(ReplLink, HighWaterRaisesCongestionUntilDrained)
{
    AsyncLink::Params p;
    p.window = 4;
    p.highWater = 16;
    p.bytesPerCycle = 4;
    p.seed = 3;
    LinkHarness h(p);
    Cycle now = 0;
    for (std::uint64_t id = 1; id <= 64; ++id)
        h.link.send(id, encode(deltaFrame(id, 1, 0x1000 + 64 * id,
                                          0x30)),
                    now);
    EXPECT_TRUE(h.link.congested());
    EXPECT_GE(h.link.stats().queuePeak, 16u);
    h.pump(now);
    EXPECT_FALSE(h.link.congested());
    EXPECT_EQ(h.delivered.size(), 64u);
}

// ---------------------------------------------------------------
// End-to-end: primary System -> standby replica
// ---------------------------------------------------------------

Config
cfgRepl(const char *workload)
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(600));
    cfg.set("epoch.stores_global", std::uint64_t(6000));
    cfg.set(std::string("wl.") + workload + ".prefill",
            std::uint64_t(512));
    cfg.set("sim.track_writes", "true");
    cfg.set("repl.enabled", "true");
    return cfg;
}

repl::Replicator &
replicatorOf(System &sys)
{
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_NE(scheme.replicator(), nullptr);
    return *scheme.replicator();
}

TEST(ReplSystem, CleanLinkConvergesByteExact)
{
    setQuiet(true);
    System sys(cfgRepl("btree"), "nvoverlay", "btree");
    sys.run();
    auto &rep = replicatorOf(sys);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());

    EpochWide rec = scheme.backend().recEpoch();
    ASSERT_GT(rec, 2u);   // the run must span several epochs
    EXPECT_EQ(rep.replica().appliedRecEpoch(), rec);
    EXPECT_EQ(rep.shipper().cursor(), rec);
    EXPECT_EQ(rep.shipper().durableCursor(), rec);

    auto report = rep.verify(*sys.tracker(), false);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.mismatches, 0u);
    EXPECT_GT(report.linesChecked, 0u);

    const RunStats &st = sys.stats();
    EXPECT_EQ(st.repl.epochsShipped, rec);
    EXPECT_EQ(st.repl.epochsApplied, rec);
    EXPECT_EQ(st.repl.appliedRecEpoch, rec);
    EXPECT_EQ(st.repl.cursorEpoch, rec);
    EXPECT_GT(st.repl.framesSent, rec);   // deltas + closes
    EXPECT_EQ(st.repl.framesDropped, 0u);
    EXPECT_GT(st.repl.wireBytes, st.repl.deltaBytes);
    EXPECT_GT(st.repl.cursorPersists, 0u);
}

TEST(ReplSystem, LossyLinkStillConvergesByteExact)
{
    setQuiet(true);
    Config cfg = cfgRepl("hashtable");
    cfg.set("repl.drop_rate", 0.02);
    cfg.set("repl.corrupt_rate", 0.005);
    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();
    auto &rep = replicatorOf(sys);

    auto report = rep.verify(*sys.tracker(), false);
    EXPECT_TRUE(report.consistent())
        << report.mismatches << " mismatches, applied "
        << report.appliedRec;
    const RunStats &st = sys.stats();
    EXPECT_GT(st.repl.framesDropped + st.repl.framesCorrupted, 0u)
        << "lossy run exercised no loss; raise the rates";
    EXPECT_GT(st.repl.framesRetried, 0u);
}

/** Total cycles of an identical run, for picking crash points. */
Cycle
probeTotalCycles(const Config &cfg, const char *workload)
{
    System sys(cfg, "nvoverlay", workload);
    sys.run();
    return sys.now();
}

TEST(ReplSystem, CrashResumeReshipsOnlyFromDurableCursor)
{
    setQuiet(true);
    Config cfg = cfgRepl("btree");
    cfg.set("persist.armed", "true");
    Cycle total = probeTotalCycles(cfg, "btree");
    ASSERT_GT(total, 100u);

    System sys(cfg, "nvoverlay", "btree");
    ASSERT_FALSE(sys.runUntil(total / 2));   // power cut mid-run
    auto &rep = replicatorOf(sys);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());

    rep.onCrash();
    scheme.backend().crashReset();
    EpochWide rec = scheme.backend().recEpoch();
    EpochWide durable = rep.shipper().durableCursor();
    ASSERT_GT(rec, 0u);
    ASSERT_GT(durable, 0u)
        << "crash landed before any epoch was acked; move the "
           "crash point";

    std::uint64_t reshipped = rep.resume(sys.now());
    Cycle done = rep.drain(sys.now());

    // The resume-from-cursor proof: only (durableCursor, rec] went
    // over the wire again — not the whole history.
    EXPECT_EQ(reshipped, rec - durable);
    EXPECT_LT(reshipped, rec);
    EXPECT_EQ(rep.replica().appliedRecEpoch(), rec);
    EXPECT_GT(rep.shipper().generation(), 1u);

    auto report = rep.verify(*sys.tracker(), true);
    EXPECT_TRUE(report.consistent())
        << report.mismatches << " mismatches at applied epoch "
        << report.appliedRec << " (drained at " << done << ")";
}

TEST(ReplSystem, PrematureCursorBugIsCaughtByConvergenceCheck)
{
    setQuiet(true);
    Config cfg = cfgRepl("btree");
    cfg.set("persist.armed", "true");
    // A slow, high-latency link keeps shipped frames unacked for a
    // long time, so the crash reliably lands while the buggy cursor
    // is ahead of the acked prefix.
    cfg.set("repl.bw_bytes_per_cycle", std::uint64_t(2));
    cfg.set("repl.latency", std::uint64_t(400000));
    cfg.set("repl.ack_latency", std::uint64_t(400000));
    cfg.set("repl.test_cursor_bug", "true");
    Cycle total = probeTotalCycles(cfg, "btree");

    System sys(cfg, "nvoverlay", "btree");
    ASSERT_FALSE(sys.runUntil(total / 2));
    auto &rep = replicatorOf(sys);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());

    rep.onCrash();
    scheme.backend().crashReset();
    EpochWide rec = scheme.backend().recEpoch();
    EpochWide durable = rep.shipper().durableCursor();
    ASSERT_GT(durable, rep.replica().appliedRecEpoch())
        << "bug did not manifest: every shipped epoch was already "
           "applied; slow the link down further";

    rep.resume(sys.now());
    rep.drain(sys.now());

    // The buggy cursor told resume those epochs were safe on the
    // standby; they never arrived, so the stream must NOT converge.
    auto report = rep.verify(*sys.tracker(), true);
    EXPECT_FALSE(report.converged);
    EXPECT_LT(rep.replica().appliedRecEpoch(), rec);
}

TEST(ReplSystem, DisabledByDefaultCostsNothing)
{
    setQuiet(true);
    Config cfg = cfgRepl("btree");
    cfg.set("repl.enabled", "false");
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_EQ(scheme.replicator(), nullptr);
    EXPECT_EQ(sys.stats().repl.framesSent, 0u);
    EXPECT_EQ(sys.stats().repl.epochsShipped, 0u);
}

} // namespace
} // namespace repl
} // namespace nvo
