/**
 * @file
 * Trace capture / replay round trips: record format fidelity,
 * deterministic replay, and full-system equivalence of a replayed
 * trace.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

namespace nvo
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return std::string("/tmp/nvo_trace_test_") + tag + ".nvot";
}

TEST(Trace, RoundTripPreservesRefs)
{
    WorkloadBase::Params p;
    p.numThreads = 4;
    p.opsPerThread = 50;
    Config cfg;
    cfg.set("wl.btree.prefill", std::uint64_t(256));
    BTreeWorkload original(p, cfg);

    // Reference copy of the stream.
    BTreeWorkload copy(p, cfg);
    std::vector<std::vector<MemRef>> expect(p.numThreads);
    std::vector<MemRef> batch;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned t = 0; t < p.numThreads; ++t)
            if (copy.nextOp(t, batch)) {
                progress = true;
                expect[t].insert(expect[t].end(), batch.begin(),
                                 batch.end());
            }
    }

    std::string path = tmpPath("roundtrip");
    std::uint64_t written = captureTrace(original, path);
    std::uint64_t total = 0;
    for (const auto &v : expect)
        total += v.size();
    EXPECT_EQ(written, total);

    TraceWorkload replay(p, path);
    EXPECT_EQ(replay.traceThreads(), 4u);
    for (unsigned t = 0; t < p.numThreads; ++t) {
        std::vector<MemRef> got;
        while (replay.nextOp(t, batch))
            got.insert(got.end(), batch.begin(), batch.end());
        ASSERT_EQ(got.size(), expect[t].size()) << "thread " << t;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].addr, expect[t][i].addr);
            EXPECT_EQ(got[i].isStore, expect[t][i].isStore);
            EXPECT_EQ(got[i].size, expect[t][i].size);
            EXPECT_EQ(got[i].gapInstrs, expect[t][i].gapInstrs);
        }
    }
    std::remove(path.c_str());
}

TEST(Trace, ReplayDrivesFullSystemIdentically)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(200));
    cfg.set("wl.hashtable.prefill", std::uint64_t(512));
    cfg.set("epoch.stores_global", std::uint64_t(8000));

    // Capture the hashtable stream.
    std::string path = tmpPath("system");
    {
        Config wcfg = cfg;
        wcfg.set("wl.threads", std::uint64_t(8));
        auto wl = makeWorkload("hashtable", wcfg);
        captureTrace(*wl, path);
    }

    // The generator's stream depends on the interleaving of nextOp
    // calls (shared structures mutate at generation time), so a live
    // run is only aggregate-equivalent to the capture; the replay
    // itself must be fully deterministic.
    System live(cfg, "nvoverlay", "hashtable");
    live.run();

    Config rcfg = cfg;
    rcfg.set("wl.trace.path", path);
    System replay_a(rcfg, "nvoverlay", "trace");
    replay_a.run();
    System replay_b(rcfg, "nvoverlay", "trace");
    replay_b.run();

    EXPECT_EQ(replay_a.stats().refs, live.stats().refs);
    EXPECT_EQ(replay_a.stats().stores, live.stats().stores);
    EXPECT_EQ(replay_a.stats().cycles, replay_b.stats().cycles);
    EXPECT_EQ(replay_a.stats().totalNvmWriteBytes(),
              replay_b.stats().totalNvmWriteBytes());
    EXPECT_EQ(replay_a.stats().l1Misses, replay_b.stats().l1Misses);
    std::remove(path.c_str());
}

TEST(Trace, RejectsGarbageFiles)
{
    std::string path = tmpPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("nope", 1, 4, f);
    std::fclose(f);
    WorkloadBase::Params p;
    p.numThreads = 1;
    EXPECT_EXIT(TraceWorkload(p, path),
                ::testing::ExitedWithCode(1), "not an NVOT trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace nvo
