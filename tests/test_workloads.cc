/**
 * @file
 * Workload tests: determinism, reference-stream validity, data
 * structure self-checks (sorted B+Tree, balanced red-black tree, ART
 * membership), and factory coverage of all twelve paper workloads.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "workload/workloads.hh"

namespace nvo
{
namespace
{

Config
smallCfg()
{
    Config cfg;
    cfg.set("wl.threads", std::uint64_t(4));
    cfg.set("wl.ops", std::uint64_t(300));
    cfg.set("wl.btree.prefill", std::uint64_t(512));
    cfg.set("wl.art.prefill", std::uint64_t(512));
    cfg.set("wl.rbtree.prefill", std::uint64_t(512));
    cfg.set("wl.hashtable.prefill", std::uint64_t(512));
    return cfg;
}

/** Drain a workload fully, returning all refs per thread. */
std::vector<std::vector<MemRef>>
drain(WorkloadBase &wl)
{
    std::vector<std::vector<MemRef>> all(wl.params().numThreads);
    std::vector<MemRef> batch;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned t = 0; t < wl.params().numThreads; ++t) {
            if (wl.nextOp(t, batch)) {
                progress = true;
                all[t].insert(all[t].end(), batch.begin(),
                              batch.end());
            }
        }
    }
    return all;
}

class AllWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllWorkloads, FactoryBuildsAndGenerates)
{
    Config cfg = smallCfg();
    auto wl = makeWorkload(GetParam(), cfg);
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), GetParam());
    auto refs = drain(*wl);
    std::uint64_t total = 0;
    for (const auto &per_thread : refs)
        total += per_thread.size();
    EXPECT_GT(total, 300u * 4 / 2) << "each op emits refs";
    EXPECT_EQ(wl->opsCompleted(), 300u * 4);
}

TEST_P(AllWorkloads, RefsAreWellFormed)
{
    Config cfg = smallCfg();
    auto wl = makeWorkload(GetParam(), cfg);
    for (const auto &per_thread : drain(*wl)) {
        for (const auto &r : per_thread) {
            EXPECT_GT(r.size, 0u);
            EXPECT_LE(r.size, 64u);
            // No reference crosses a cache line.
            EXPECT_EQ(lineAlign(r.addr),
                      lineAlign(r.addr + r.size - 1));
            EXPECT_GE(r.addr, 1ull << 32) << "sim-heap range";
        }
    }
}

TEST_P(AllWorkloads, DeterministicForSeed)
{
    Config cfg = smallCfg();
    cfg.set("wl.ops", std::uint64_t(80));
    auto a = makeWorkload(GetParam(), cfg);
    auto b = makeWorkload(GetParam(), cfg);
    auto ra = drain(*a);
    auto rb = drain(*b);
    ASSERT_EQ(ra.size(), rb.size());
    for (unsigned t = 0; t < ra.size(); ++t) {
        ASSERT_EQ(ra[t].size(), rb[t].size()) << "thread " << t;
        for (unsigned i = 0; i < ra[t].size(); ++i) {
            EXPECT_EQ(ra[t][i].addr, rb[t][i].addr);
            EXPECT_EQ(ra[t][i].isStore, rb[t][i].isStore);
        }
    }
}

TEST_P(AllWorkloads, MixContainsLoadsAndStores)
{
    Config cfg = smallCfg();
    auto wl = makeWorkload(GetParam(), cfg);
    std::uint64_t loads = 0, stores = 0;
    for (const auto &per_thread : drain(*wl))
        for (const auto &r : per_thread)
            (r.isStore ? stores : loads) += 1;
    EXPECT_GT(loads, 0u);
    EXPECT_GT(stores, 0u);
}

INSTANTIATE_TEST_SUITE_P(Paper, AllWorkloads,
                         ::testing::ValuesIn(paperWorkloads()));

TEST(BTree, SelfCheckAfterBulkInsert)
{
    WorkloadBase::Params p;
    p.numThreads = 4;
    p.opsPerThread = 2000;
    Config cfg;
    cfg.set("wl.btree.prefill", std::uint64_t(1000));
    BTreeWorkload wl(p, cfg);
    drain(wl);
    EXPECT_TRUE(wl.selfCheck()) << "sorted order + uniform depth";
    EXPECT_GT(wl.entries(), 7000u);
    EXPECT_GE(wl.height(), 2u);
}

TEST(BTree, SplitsPropagate)
{
    WorkloadBase::Params p;
    p.numThreads = 1;
    p.opsPerThread = 20000;
    Config cfg;
    cfg.set("wl.btree.prefill", std::uint64_t(0));
    cfg.set("wl.btree.fanout", std::uint64_t(8));
    BTreeWorkload wl(p, cfg);
    drain(wl);
    EXPECT_TRUE(wl.selfCheck());
    EXPECT_GE(wl.height(), 4u) << "small fanout forces deep tree";
}

TEST(RbTree, InvariantsAfterBulkInsert)
{
    WorkloadBase::Params p;
    p.numThreads = 4;
    p.opsPerThread = 2500;
    Config cfg;
    cfg.set("wl.rbtree.prefill", std::uint64_t(1000));
    RbTreeWorkload wl(p, cfg);
    drain(wl);
    EXPECT_TRUE(wl.selfCheck())
        << "no red-red edges, equal black heights, sorted";
    EXPECT_GT(wl.entries(), 9000u);
}

TEST(Art, ContainsEverythingInserted)
{
    WorkloadBase::Params p;
    p.numThreads = 2;
    p.opsPerThread = 1500;
    p.seed = 5;
    Config cfg;
    cfg.set("wl.art.prefill", std::uint64_t(0));
    ArtWorkload wl(p, cfg);
    drain(wl);
    EXPECT_GT(wl.entries(), 2900u);
    // Re-generate the same keys and verify membership.
    Rng r0(5 * 1000003 + 0), r1(5 * 1000003 + 1);
    for (int i = 0; i < 1500; ++i) {
        EXPECT_TRUE(wl.contains(r0.next()));
        EXPECT_TRUE(wl.contains(r1.next()));
    }
    EXPECT_FALSE(wl.contains(0xdeadbeefull));
}

TEST(HashTable, EntriesGrowWithInserts)
{
    WorkloadBase::Params p;
    p.numThreads = 2;
    p.opsPerThread = 500;
    Config cfg;
    cfg.set("wl.hashtable.prefill", std::uint64_t(100));
    HashTableWorkload wl(p, cfg);
    EXPECT_EQ(wl.entries(), 100u);
    drain(wl);
    EXPECT_GT(wl.entries(), 1000u);
}

TEST(SimHeapTest, ArenaIsolation)
{
    SimHeap heap(3, 1ull << 32, 1ull << 20);
    Addr a0 = heap.alloc(0, 100);
    Addr a1 = heap.alloc(1, 100);
    Addr a2 = heap.alloc(2, 100);
    EXPECT_LT(a0 + 100, a1);
    EXPECT_LT(a1 + 100, a2);
    EXPECT_EQ(heap.allocatedBytes(0), 100u);
}

TEST(SimHeapTest, AlignmentHonored)
{
    SimHeap heap(1);
    heap.alloc(0, 3);
    Addr aligned = heap.alloc(0, 64, 64);
    EXPECT_EQ(aligned % 64, 0u);
    Addr page = heap.alloc(0, 8, pageBytes);
    EXPECT_EQ(pageAlign(page), page);
}

TEST(SimHashSetTest, InsertAndProbeEmitRefs)
{
    SimHeap heap(2);
    SimHashSet set(heap, 0, 256, 4);
    std::vector<MemRef> refs;
    EXPECT_TRUE(set.insert(42, refs));
    EXPECT_GE(refs.size(), 3u);
    refs.clear();
    EXPECT_FALSE(set.insert(42, refs)) << "duplicate";
    refs.clear();
    EXPECT_TRUE(set.contains(42, refs));
    EXPECT_FALSE(set.contains(43, refs));
    EXPECT_EQ(set.size(), 1u);
}

} // namespace
} // namespace nvo
