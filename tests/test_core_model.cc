/**
 * @file
 * Core timing-model tests: gap charging at the issue width, quantum
 * bounds, completion semantics, and scheme stall plumbing.
 */

#include <gtest/gtest.h>

#include "baselines/scheme.hh"
#include "cpu/core.hh"
#include "mem/backing_store.hh"
#include "mem/dram_model.hh"

namespace nvo
{
namespace
{

/** Scripted RefSource: fixed list of ops per thread. */
struct ScriptedSource : RefSource
{
    std::vector<std::vector<MemRef>> script;
    std::size_t next = 0;

    bool
    nextOp(unsigned, std::vector<MemRef> &out) override
    {
        if (next >= script.size())
            return false;
        out = script[next++];
        return true;
    }
};

/** Scheme that charges a fixed stall per store. */
struct StallScheme : Scheme
{
    const char *name() const override { return "stall"; }
    Cycle
    onStore(unsigned, unsigned, Addr, Cycle) override
    {
        ++storeCalls;
        return stallPerStore;
    }
    Cycle stallPerStore = 0;
    std::uint64_t storeCalls = 0;
};

class CoreModelTest : public ::testing::Test
{
  protected:
    CoreModelTest() : dram(DramModel::Params{}, &stats)
    {
        Hierarchy::Params p;
        p.numCores = 2;
        p.coresPerVd = 2;
        p.numLlcSlices = 1;
        p.l1.sizeBytes = 4 * 1024;
        p.l2.sizeBytes = 16 * 1024;
        p.llc.sliceBytes = 64 * 1024;
        hier = std::make_unique<Hierarchy>(p, backing, dram, stats);
    }

    RunStats stats;
    BackingStore backing;
    DramModel dram;
    std::unique_ptr<Hierarchy> hier;
    ScriptedSource src;
    StallScheme scheme;
};

TEST_F(CoreModelTest, GapChargedAtIssueWidth)
{
    // Two identical L1-hitting loads, gaps 40 and 0: the second op's
    // latency isolates the hit cost; the gap adds 40/4 cycles.
    src.script = {{MemRef::ld(0x1000, 0)},
                  {MemRef::ld(0x1000, 40)},
                  {MemRef::ld(0x1000, 0)}};
    Core::Params cp;
    cp.issueWidth = 4;
    Core core(cp, 0, *hier, src, scheme, stats);
    core.runUntil(1000000);
    ASSERT_TRUE(core.done());
    // Cold miss + (40/4 + hit) + hit.
    Cycle cold = core.cycle() - (40 / 4 + 4) - 4;
    EXPECT_GT(cold, 4u);
    EXPECT_EQ(stats.instructions, 1u + 41 + 1);
    EXPECT_EQ(stats.refs, 3u);
}

TEST_F(CoreModelTest, QuantumBoundsProgress)
{
    for (int i = 0; i < 1000; ++i)
        src.script.push_back({MemRef::ld(0x1000, 400)});
    Core core(Core::Params{}, 0, *hier, src, scheme, stats);
    core.runUntil(500);
    EXPECT_FALSE(core.done());
    EXPECT_GE(core.cycle(), 500u);
    EXPECT_LT(core.cycle(), 1500u) << "stops soon after the quantum";
}

TEST_F(CoreModelTest, SchemeStallChargedOnStores)
{
    src.script = {{MemRef::st(0x2000)}, {MemRef::st(0x2000)}};
    scheme.stallPerStore = 500;
    Core core(Core::Params{}, 0, *hier, src, scheme, stats);
    core.runUntil(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(scheme.storeCalls, 2u);
    EXPECT_EQ(stats.barrierStallCycles, 1000u);
    EXPECT_GE(core.cycle(), 1000u);
}

TEST_F(CoreModelTest, EmptyOpIdlesBriefly)
{
    src.script = {{}, {MemRef::ld(0x1000)}};
    Core core(Core::Params{}, 0, *hier, src, scheme, stats);
    core.runUntil(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_GE(core.cycle(), 64u) << "blocked op idles the core";
}

TEST_F(CoreModelTest, AddStallPushesClock)
{
    src.script = {{MemRef::ld(0x1000)}};
    Core core(Core::Params{}, 0, *hier, src, scheme, stats);
    core.runUntil(1000000);
    Cycle before = core.cycle();
    core.addStall(777);
    EXPECT_EQ(core.cycle(), before + 777);
}

} // namespace
} // namespace nvo
