/**
 * @file
 * Observability subsystem: the event tracer (ring semantics, category
 * filtering, Chrome trace-event export), the per-epoch metric series,
 * and the machine-readable stats report. Exported JSON is checked
 * with a small in-test parser so a malformed escape or unbalanced
 * brace fails here rather than in chrome://tracing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats_json.hh"
#include "obs/trace.hh"

namespace nvo
{
namespace
{

/**
 * Minimal recursive-descent JSON validator: accepts exactly the RFC
 * 8259 grammar (objects, arrays, strings with escapes, numbers,
 * true/false/null) and rejects trailing garbage.
 */
class JsonCheck
{
  public:
    explicit JsonCheck(std::string text) : s(std::move(text)) {}

    bool
    valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return pos == s.size();
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos;   // '{'
        ws();
        if (eat('}'))
            return true;
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (!eat(':'))
                return false;
            ws();
            if (!value())
                return false;
            ws();
            if (eat('}'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool
    array()
    {
        ++pos;   // '['
        ws();
        if (eat(']'))
            return true;
        while (true) {
            ws();
            if (!value())
                return false;
            ws();
            if (eat(']'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (pos < s.size()) {
            char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;   // raw control character
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
                char e = s[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s[pos])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos;
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = pos;
        eat('-');
        if (!digits())
            return false;
        if (eat('.') && !digits())
            return false;
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (!digits())
                return false;
        }
        return pos > start;
    }

    bool
    digits()
    {
        std::size_t start = pos;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        return pos > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    eat(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    ws()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    std::string s;
    std::size_t pos = 0;
};

TEST(JsonWriter, EscapesAndBalances)
{
    std::ostringstream os;
    {
        obs::JsonWriter w(os);
        w.beginObject();
        w.kv("quote\"back\\slash", std::string("tab\there\n"));
        w.key("nested");
        w.beginArray();
        w.value(std::uint64_t(42));
        w.value(-7);
        w.value(1.5);
        w.value(true);
        w.null();
        w.endArray();
        w.endObject();
        EXPECT_TRUE(w.balanced());
    }
    EXPECT_TRUE(JsonCheck(os.str()).valid()) << os.str();
    EXPECT_NE(os.str().find("\\\"back\\\\slash"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginArray();
    w.value(0.0 / 0.0);
    w.value(1e308 * 10);
    w.endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(Tracer, RingWrapKeepsNewestRecords)
{
    obs::Tracer t;
    t.setRingCapacity(8);
    t.setMask(obs::allCats);
    for (std::uint64_t i = 0; i < 20; ++i)
        t.record(obs::Ev::EpochAdvance, obs::trackVd(0), i * 10, i, 0);

    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.recorded(), 20u);
    EXPECT_EQ(t.dropped(), 12u);

    // Oldest-first iteration yields exactly records 12..19.
    std::uint64_t expect = 12;
    t.forEach([&](const obs::Tracer::Rec &r) {
        EXPECT_EQ(r.a0, expect);
        EXPECT_EQ(r.cycle, expect * 10);
        ++expect;
    });
    EXPECT_EQ(expect, 20u);

    t.reset();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
}

TEST(Tracer, CategoryMaskGatesWants)
{
    obs::Tracer t;
    t.setMask(static_cast<std::uint32_t>(obs::Cat::Epoch) |
              static_cast<std::uint32_t>(obs::Cat::Nvm));
    EXPECT_TRUE(t.wants(obs::Cat::Epoch));
    EXPECT_TRUE(t.wants(obs::Cat::Nvm));
    EXPECT_FALSE(t.wants(obs::Cat::Omc));
    EXPECT_FALSE(t.wants(obs::Cat::Pool));
}

TEST(Tracer, ParseCats)
{
    EXPECT_EQ(obs::parseCats("all"), obs::allCats);
    EXPECT_EQ(obs::parseCats("none"), 0u);
    EXPECT_EQ(obs::parseCats("epoch,omc"),
              static_cast<std::uint32_t>(obs::Cat::Epoch) |
                  static_cast<std::uint32_t>(obs::Cat::Omc));
    EXPECT_EQ(obs::parseCats("walker"),
              static_cast<std::uint32_t>(obs::Cat::Walker));
}

TEST(Tracer, MacroRespectsMaskAndCompileSwitch)
{
    obs::Tracer &t = obs::tracer();
    t.setRingCapacity(64);
    t.reset();
    t.setMask(static_cast<std::uint32_t>(obs::Cat::Epoch));

    NVO_TRACE(Epoch, EpochAdvance, obs::trackVd(0), 100, 1, 0);
    NVO_TRACE(Omc, OmcInsert, obs::trackOmc(0), 100, 2, 0);

    if (obs::traceCompiled) {
        // Only the enabled category records.
        EXPECT_EQ(t.recorded(), 1u);
        t.forEach([](const obs::Tracer::Rec &r) {
            EXPECT_EQ(r.ev, obs::Ev::EpochAdvance);
        });
    } else {
        EXPECT_EQ(t.recorded(), 0u);
    }
    t.setMask(0);
    t.reset();
}

TEST(Tracer, ChromeExportIsValidJson)
{
    obs::Tracer t;
    t.setRingCapacity(32);
    t.setMask(obs::allCats);
    t.record(obs::Ev::EpochAdvance, obs::trackVd(0), 100, 5, 1);
    t.record(obs::Ev::OmcInsert, obs::trackOmc(1), 200, 0xdead, 7);
    t.record(obs::Ev::PoolPages, obs::trackOmc(1), 300, 12, 0);
    t.record(obs::Ev::NvmStall, obs::trackNvm, 400, 50, 80);

    std::ostringstream os;
    t.exportChrome(os);
    std::string text = os.str();
    EXPECT_TRUE(JsonCheck(text).valid()) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    // Instants and counters both present.
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("epoch_advance"), std::string::npos);
}

TEST(Tracer, EveryEventHasMetadata)
{
    for (unsigned e = 0;
         e < static_cast<unsigned>(obs::Ev::NumEvents); ++e) {
        const obs::EvInfo &i = obs::info(static_cast<obs::Ev>(e));
        EXPECT_NE(i.name, nullptr);
        EXPECT_NE(obs::toString(i.cat), nullptr);
    }
}

TEST(EpochSeries, SamplesAndExports)
{
    obs::EpochSeries series;
    std::uint64_t stores = 0, evicts = 0;
    series.addProbe("stores", [&] { return stores; });
    series.addProbe("evictions", [&] { return evicts; });

    stores = 10;
    evicts = 1;
    series.sample(1, 1000);
    stores = 25;
    evicts = 4;
    series.sample(2, 2000);

    ASSERT_EQ(series.numSamples(), 2u);
    auto cols = series.columns();
    ASSERT_EQ(cols.size(), 4u);
    EXPECT_EQ(cols[0], "epoch");
    EXPECT_EQ(cols[1], "cycle");
    EXPECT_EQ(cols[2], "stores");
    EXPECT_EQ(series.value(0, 2), 10u);
    EXPECT_EQ(series.value(1, 2), 25u);
    EXPECT_EQ(series.value(1, 3), 4u);

    std::ostringstream csv;
    series.writeCsv(csv);
    EXPECT_NE(csv.str().find("epoch,cycle,stores,evictions"),
              std::string::npos);
    EXPECT_NE(csv.str().find("2,2000,25,4"), std::string::npos);

    std::ostringstream js;
    {
        obs::JsonWriter w(js);
        series.writeJson(w);
        EXPECT_TRUE(w.balanced());
    }
    EXPECT_TRUE(JsonCheck(js.str()).valid()) << js.str();
}

Config
smallConfig()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(300));
    cfg.set("wl.btree.prefill", std::uint64_t(1024));
    cfg.set("epoch.stores_global", std::uint64_t(8000));
    return cfg;
}

TEST(StatsJson, FullRunReportIsValidJson)
{
    setQuiet(true);
    Config cfg = smallConfig();
    System sys(cfg, "nvoverlay", "btree");
    sys.run();

    std::ostringstream os;
    obs::writeStatsJson(os, "nvoverlay", "btree", sys.config(),
                        sys.stats(), &sys.epochSeries(), 0.25);
    std::string text = os.str();
    EXPECT_TRUE(JsonCheck(text).valid()) << text.substr(0, 400);
    EXPECT_NE(text.find("\"format\":\"nvo-stats-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"epoch_series\""), std::string::npos);
    EXPECT_NE(text.find("\"nvm_write_bytes\""), std::string::npos);

    // The harness sampled at every epoch boundary plus finalize.
    ASSERT_GE(sys.epochSeries().numSamples(), 2u);
    for (std::size_t r = 1; r < sys.epochSeries().numSamples(); ++r) {
        EXPECT_GE(sys.epochSeries().value(r, 0),
                  sys.epochSeries().value(r - 1, 0))
            << "epoch column must be monotonic";
        EXPECT_GE(sys.epochSeries().value(r, 1),
                  sys.epochSeries().value(r - 1, 1))
            << "cycle column must be monotonic";
    }
}

TEST(TraceIntegration, RunCoversMultipleSubsystems)
{
    if (!obs::traceCompiled)
        GTEST_SKIP() << "built with NVO_TRACE=OFF";
    setQuiet(true);
    Config cfg = smallConfig();
    cfg.set("trace.enabled", "true");
    cfg.set("trace.ring", std::uint64_t(1) << 18);
    System sys(cfg, "nvoverlay", "btree");
    sys.run();

    obs::Tracer &t = obs::tracer();
    EXPECT_GT(t.recorded(), 0u);
    std::uint32_t cats_seen = 0;
    t.forEach([&](const obs::Tracer::Rec &r) {
        cats_seen |=
            static_cast<std::uint32_t>(obs::info(r.ev).cat);
    });
    unsigned distinct = 0;
    for (unsigned bit = 0; bit < 8; ++bit)
        distinct += (cats_seen >> bit) & 1u;
    EXPECT_GE(distinct, 4u)
        << "trace should span >= 4 subsystems, mask=" << cats_seen;

    std::ostringstream os;
    t.exportChrome(os);
    EXPECT_TRUE(JsonCheck(os.str()).valid());

    // Leave the global tracer disabled for later tests.
    t.setMask(0);
    t.reset();
}

TEST(TraceIntegration, DisabledByDefault)
{
    setQuiet(true);
    Config cfg = smallConfig();
    System sys(cfg, "nvoverlay", "btree");
    sys.run();
    EXPECT_EQ(obs::tracer().recorded(), 0u)
        << "tracing must be off unless trace.enabled is set";
}

} // namespace
} // namespace nvo
