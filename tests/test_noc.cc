/**
 * @file
 * Mesh NoC model tests: geometry, hop math, placement, and the
 * hop-based latency path through the hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/noc.hh"
#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"

namespace nvo
{
namespace
{

TEST(MeshNocTest, GeometryIsApproximatelySquare)
{
    MeshNoc noc4(MeshNoc::Params{4, 2, 3, 2});
    EXPECT_EQ(noc4.width(), 2u);
    EXPECT_EQ(noc4.height(), 2u);
    MeshNoc noc8(MeshNoc::Params{8, 4, 3, 2});
    EXPECT_EQ(noc8.width(), 3u);
    EXPECT_EQ(noc8.height(), 3u);
}

TEST(MeshNocTest, HopCountIsManhattan)
{
    MeshNoc noc(MeshNoc::Params{16, 4, 3, 2});
    EXPECT_EQ(noc.hops(0, 0, 0, 0), 0u);
    EXPECT_EQ(noc.hops(0, 0, 3, 0), 3u);
    EXPECT_EQ(noc.hops(1, 2, 3, 0), 4u);
    EXPECT_EQ(noc.hops(3, 0, 1, 2), 4u) << "symmetric";
}

TEST(MeshNocTest, TilePlacementCoversMesh)
{
    MeshNoc::Params p{16, 4, 3, 2};
    MeshNoc noc(p);
    for (unsigned vd = 0; vd < p.numVds; ++vd) {
        unsigned x, y;
        noc.vdTile(vd, x, y);
        EXPECT_LT(x, noc.width());
        EXPECT_LT(y, noc.height());
    }
    for (unsigned s = 0; s < p.numSlices; ++s) {
        unsigned x, y;
        noc.sliceTile(s, x, y);
        EXPECT_LT(x, noc.width());
        EXPECT_LT(y, noc.height());
    }
}

TEST(MeshNocTest, LatencyScalesWithDistance)
{
    MeshNoc noc(MeshNoc::Params{16, 4, 3, 2});
    // Slice 0 sits at tile 0: VD 0 is local, VD 15 is far.
    Cycle near = noc.vdToSlice(0, 0);
    Cycle far = noc.vdToSlice(15, 0);
    EXPECT_EQ(near, 2u) << "zero hops: port latency only";
    EXPECT_GT(far, near);
    EXPECT_LE(far, noc.diameterLatency());
    EXPECT_EQ(noc.vdToSlice(15, 0), noc.sliceToVd(0, 15));
}

TEST(MeshNocTest, SystemRunsWithNocEnabled)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(200));
    cfg.set("wl.hashtable.prefill", std::uint64_t(512));

    System flat(cfg, "nvoverlay", "hashtable");
    flat.run();
    EXPECT_EQ(flat.hierarchy().checkInvariants(), "");

    Config ncfg = cfg;
    ncfg.set("sys.noc", "true");
    ncfg.set("noc.hop_lat", std::uint64_t(12));   // slow mesh
    System meshy(ncfg, "nvoverlay", "hashtable");
    meshy.run();
    EXPECT_EQ(meshy.hierarchy().checkInvariants(), "");
    EXPECT_EQ(meshy.stats().refs, flat.stats().refs);
    EXPECT_GT(meshy.stats().cycles, flat.stats().cycles)
        << "a slow mesh must cost more than the flat constants";
}

} // namespace
} // namespace nvo
