// lint-path: nvoverlay/fixture.cc
// An untagged master-table mutation: nothing in the argument list
// carries the tenant's ASID, so the line would be invisible to
// per-tenant quota and write-amp accounting.

void
stageVersion(Partition &part, Addr line, NvmModel &nvm, EpochWide e)
{
    part.master->insert(line, nvm, e);  // nvo-lint: allow(ledger-hook)
}
