// lint-path: nvoverlay/fixture.cc
// Page-pool alloc/free without the owning ASID: the pool cannot
// charge the lines to a tenant's quota.

Addr
grabLines(PagePool &pool, std::uint64_t n)
{
    Addr base = pool.allocLines(n);
    pool.freeLines(base, n);
    return base;
}
