// lint-path: nvoverlay/fixture.cc
// The sanctioned shapes: master keys built through tenant::keyOf /
// tenant::tag, and pool mutations that pass the owning ASID.

void
stageVersion(Partition &part, Addr line, NvmModel &nvm, EpochWide e,
             tenant::Asid asid)
{
    part.master->insert(tenant::keyOf(line), nvm, e);  // nvo-lint: allow(ledger-hook)
    Addr base = part.pool->allocLines(4, asid);
    part.pool->freeLines(base, 4, asid);
}
