// lint-path: par/fixture.cc
// Cross-shard traffic through the SPSC ring API needs no guard: the
// ring's release/acquire pair is the sanctioned crossing point.

void
forwardTraffic(SpscRing<XMsg> &ring, XMsg msg, Metrics &m)
{
    if (ring.tryPush(msg)) {
        m.xSent++;
    } else {
        m.xDropped++;
    }
    XMsg in;
    while (ring.tryPop(in)) {
        m.xReceived++;
    }
}
