// lint-path: nvoverlay/fixture.cc
// The hooked shape: hold registry-owned handles (pointers), register
// by name in the constructor, record through NVO_METRIC. Forward
// declarations of the metric types are also fine.

namespace obs
{
struct HistMetric;
struct Counter;
} // namespace obs

struct Instrumented
{
    obs::HistMetric *hWalk_ = nullptr;
    obs::Counter *cInserts_ = nullptr;

    Instrumented()
        : hWalk_(obs::metricRegistry().addHist("mnm.walk_depth")),
          cInserts_(obs::metricRegistry().addCounter("mnm.inserts"))
    {
    }

    void
    walk(unsigned depth)
    {
        NVO_METRIC(record(hWalk_, depth));
        NVO_METRIC(inc(cInserts_, 1));
    }
};
