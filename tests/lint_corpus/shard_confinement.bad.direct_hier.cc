// lint-path: par/fixture.cc
// Reaching for the cache hierarchy handle (here to force a flush)
// outside any ShardGuard scope. Also checks that a guard armed in an
// inner block does not cover code after its closing brace.

void
flushBehindTheTokensBack(unsigned vd)
{
    {
        ShardGuard guard(slot.cap);
        hier_->tagWalkScan(vd);   // fine: guard held
    }
    hier_->flushAll(vd);          // guard already released
}
