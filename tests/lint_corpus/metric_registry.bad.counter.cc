// lint-path: repl/fixture.cc
// A by-value counter in the replication layer: retransmit tallies
// kept here never reach the Prometheus/JSONL exporter.

struct LinkStats
{
    Counter retransmits;
    obs::Counter shipped;
};
