// lint-path: par/fixture.cc
// The token-holding shard steps its own cores under ShardGuard —
// exactly the shape of ShardEngine::runShard.

void
runShard(Slot &slot, Cycle quantum_end)
{
    ShardGuard guard(slot.cap);
    for (Core *core : slot.cores) {
        core->runUntil(quantum_end);
    }
    hier_->tagWalkScan(slot.firstVd);
}
