// lint-path: nvoverlay/fixture.cc
// A privately owned histogram: invisible to the exporter and outside
// the registry's shard-slot merge, so parallel runs would diverge.

struct BufferStats
{
    Histogram occupancy;
    Histogram stallCycles;
};

void
recordOccupancy(BufferStats &s, std::uint64_t occ)
{
    s.occupancy.record(occ);
}
