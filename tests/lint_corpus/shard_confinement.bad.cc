// lint-path: par/fixture.cc
// Stepping a core without holding the shard's capability: the
// canonical shard-confinement violation.

void
stepWithoutToken(Core *core, Cycle quantum_end)
{
    core->runUntil(quantum_end);
}
