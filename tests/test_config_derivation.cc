/**
 * @file
 * Derived-configuration tests: the store-uop -> line-reference epoch
 * scaling, the per-VD epoch split, and the PiCL tag-geometry
 * defaults the System computes from the cache configuration.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"

namespace nvo
{
namespace
{

Config
tinySys()
{
    Config cfg = defaultConfig();
    cfg.set("sys.cores", std::uint64_t(8));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("l1.kb", std::uint64_t(4));
    cfg.set("l2.kb", std::uint64_t(16));
    cfg.set("llc.mb", std::uint64_t(1));
    cfg.set("wl.ops", std::uint64_t(5));
    cfg.set("wl.hashtable.prefill", std::uint64_t(64));
    return cfg;
}

TEST(ConfigDerivation, EpochUopScalingAndVdSplit)
{
    setQuiet(true);
    Config cfg = tinySys();
    cfg.set("epoch.stores_global", std::uint64_t(1) << 20);
    cfg.set("epoch.uops_per_ref", std::uint64_t(16));
    System sys(cfg, "nvoverlay", "hashtable");
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    // 1M uops / 16 uops-per-ref / 4 VDs = 16384 refs per VD epoch.
    EXPECT_EQ(scheme.storesPerEpochVdValue(), (1u << 20) / 16 / 4);
}

TEST(ConfigDerivation, ExplicitPerVdOverrideWins)
{
    setQuiet(true);
    Config cfg = tinySys();
    cfg.set("nvo.stores_per_epoch_vd", std::uint64_t(777));
    System sys(cfg, "nvoverlay", "hashtable");
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_EQ(scheme.storesPerEpochVdValue(), 777u);
}

TEST(ConfigDerivation, PiclTagsMirrorCacheGeometry)
{
    setQuiet(true);
    Config cfg = tinySys();
    System sys(cfg, "picl", "hashtable");
    // The derived keys are recorded on the System's config copy.
    EXPECT_EQ(sys.config().getU64("picl.tag_bytes", 0),
              1ull * 1024 * 1024);
    EXPECT_EQ(sys.config().getU64("picl.l2_tag_bytes", 0),
              16ull * 1024 * 4);   // 4 VDs x 16 KB
}

TEST(ConfigDerivation, OmcCountFollowsLlcSlices)
{
    setQuiet(true);
    Config cfg = tinySys();
    cfg.set("sys.llc_slices", std::uint64_t(2));
    System sys(cfg, "nvoverlay", "hashtable");
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    EXPECT_EQ(scheme.backend().numOmcs(), 2u);
}

} // namespace
} // namespace nvo
