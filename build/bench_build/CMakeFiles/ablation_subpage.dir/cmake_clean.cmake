file(REMOVE_RECURSE
  "../bench/ablation_subpage"
  "../bench/ablation_subpage.pdb"
  "CMakeFiles/ablation_subpage.dir/ablation_subpage.cc.o"
  "CMakeFiles/ablation_subpage.dir/ablation_subpage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
