file(REMOVE_RECURSE
  "../bench/table2_config"
  "../bench/table2_config.pdb"
  "CMakeFiles/table2_config.dir/table2_config.cc.o"
  "CMakeFiles/table2_config.dir/table2_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
