# Empty dependencies file for fig13_metadata.
# This may be replaced when dependencies are built.
