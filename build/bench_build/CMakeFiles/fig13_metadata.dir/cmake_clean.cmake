file(REMOVE_RECURSE
  "../bench/fig13_metadata"
  "../bench/fig13_metadata.pdb"
  "CMakeFiles/fig13_metadata.dir/fig13_metadata.cc.o"
  "CMakeFiles/fig13_metadata.dir/fig13_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
