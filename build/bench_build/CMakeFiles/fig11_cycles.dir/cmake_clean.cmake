file(REMOVE_RECURSE
  "../bench/fig11_cycles"
  "../bench/fig11_cycles.pdb"
  "CMakeFiles/fig11_cycles.dir/fig11_cycles.cc.o"
  "CMakeFiles/fig11_cycles.dir/fig11_cycles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
