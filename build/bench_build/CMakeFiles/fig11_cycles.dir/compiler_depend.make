# Empty compiler generated dependencies file for fig11_cycles.
# This may be replaced when dependencies are built.
