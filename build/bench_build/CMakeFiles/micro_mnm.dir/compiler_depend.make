# Empty compiler generated dependencies file for micro_mnm.
# This may be replaced when dependencies are built.
