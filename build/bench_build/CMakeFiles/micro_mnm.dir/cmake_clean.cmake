file(REMOVE_RECURSE
  "../bench/micro_mnm"
  "../bench/micro_mnm.pdb"
  "CMakeFiles/micro_mnm.dir/micro_mnm.cc.o"
  "CMakeFiles/micro_mnm.dir/micro_mnm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mnm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
