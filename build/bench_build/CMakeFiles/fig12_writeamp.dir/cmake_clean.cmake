file(REMOVE_RECURSE
  "../bench/fig12_writeamp"
  "../bench/fig12_writeamp.pdb"
  "CMakeFiles/fig12_writeamp.dir/fig12_writeamp.cc.o"
  "CMakeFiles/fig12_writeamp.dir/fig12_writeamp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_writeamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
