# Empty compiler generated dependencies file for fig12_writeamp.
# This may be replaced when dependencies are built.
