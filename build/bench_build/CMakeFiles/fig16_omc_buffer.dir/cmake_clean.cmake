file(REMOVE_RECURSE
  "../bench/fig16_omc_buffer"
  "../bench/fig16_omc_buffer.pdb"
  "CMakeFiles/fig16_omc_buffer.dir/fig16_omc_buffer.cc.o"
  "CMakeFiles/fig16_omc_buffer.dir/fig16_omc_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_omc_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
