# Empty compiler generated dependencies file for fig16_omc_buffer.
# This may be replaced when dependencies are built.
