# Empty dependencies file for fig14_epoch_sweep.
# This may be replaced when dependencies are built.
