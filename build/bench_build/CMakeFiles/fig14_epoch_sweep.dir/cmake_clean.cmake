file(REMOVE_RECURSE
  "../bench/fig14_epoch_sweep"
  "../bench/fig14_epoch_sweep.pdb"
  "CMakeFiles/fig14_epoch_sweep.dir/fig14_epoch_sweep.cc.o"
  "CMakeFiles/fig14_epoch_sweep.dir/fig14_epoch_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_epoch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
