# Empty compiler generated dependencies file for ablation_vd_size.
# This may be replaced when dependencies are built.
