file(REMOVE_RECURSE
  "../bench/ablation_vd_size"
  "../bench/ablation_vd_size.pdb"
  "CMakeFiles/ablation_vd_size.dir/ablation_vd_size.cc.o"
  "CMakeFiles/ablation_vd_size.dir/ablation_vd_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vd_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
