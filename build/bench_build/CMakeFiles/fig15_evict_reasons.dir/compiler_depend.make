# Empty compiler generated dependencies file for fig15_evict_reasons.
# This may be replaced when dependencies are built.
