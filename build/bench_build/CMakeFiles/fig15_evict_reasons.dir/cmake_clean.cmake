file(REMOVE_RECURSE
  "../bench/fig15_evict_reasons"
  "../bench/fig15_evict_reasons.pdb"
  "CMakeFiles/fig15_evict_reasons.dir/fig15_evict_reasons.cc.o"
  "CMakeFiles/fig15_evict_reasons.dir/fig15_evict_reasons.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_evict_reasons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
