# Empty compiler generated dependencies file for ablation_oid_granularity.
# This may be replaced when dependencies are built.
