file(REMOVE_RECURSE
  "../bench/ablation_oid_granularity"
  "../bench/ablation_oid_granularity.pdb"
  "CMakeFiles/ablation_oid_granularity.dir/ablation_oid_granularity.cc.o"
  "CMakeFiles/ablation_oid_granularity.dir/ablation_oid_granularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oid_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
