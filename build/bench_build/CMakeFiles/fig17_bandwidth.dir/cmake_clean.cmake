file(REMOVE_RECURSE
  "../bench/fig17_bandwidth"
  "../bench/fig17_bandwidth.pdb"
  "CMakeFiles/fig17_bandwidth.dir/fig17_bandwidth.cc.o"
  "CMakeFiles/fig17_bandwidth.dir/fig17_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
