file(REMOVE_RECURSE
  "../tools/nvo_sim"
  "../tools/nvo_sim.pdb"
  "CMakeFiles/nvo_sim.dir/nvo_sim.cc.o"
  "CMakeFiles/nvo_sim.dir/nvo_sim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
