
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hw_shadow.cc" "src/CMakeFiles/nvoverlay.dir/baselines/hw_shadow.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/baselines/hw_shadow.cc.o.d"
  "/root/repo/src/baselines/picl.cc" "src/CMakeFiles/nvoverlay.dir/baselines/picl.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/baselines/picl.cc.o.d"
  "/root/repo/src/baselines/scheme.cc" "src/CMakeFiles/nvoverlay.dir/baselines/scheme.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/baselines/scheme.cc.o.d"
  "/root/repo/src/baselines/sw_log.cc" "src/CMakeFiles/nvoverlay.dir/baselines/sw_log.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/baselines/sw_log.cc.o.d"
  "/root/repo/src/baselines/sw_shadow.cc" "src/CMakeFiles/nvoverlay.dir/baselines/sw_shadow.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/baselines/sw_shadow.cc.o.d"
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/nvoverlay.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/nvoverlay.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/l1_cache.cc" "src/CMakeFiles/nvoverlay.dir/cache/l1_cache.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cache/l1_cache.cc.o.d"
  "/root/repo/src/cache/l2_cache.cc" "src/CMakeFiles/nvoverlay.dir/cache/l2_cache.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cache/l2_cache.cc.o.d"
  "/root/repo/src/cache/llc.cc" "src/CMakeFiles/nvoverlay.dir/cache/llc.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cache/llc.cc.o.d"
  "/root/repo/src/cache/noc.cc" "src/CMakeFiles/nvoverlay.dir/cache/noc.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cache/noc.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/nvoverlay.dir/common/config.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/nvoverlay.dir/common/log.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/nvoverlay.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/common/stats.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/nvoverlay.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/cpu/core.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/nvoverlay.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/system.cc" "src/CMakeFiles/nvoverlay.dir/harness/system.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/harness/system.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/nvoverlay.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/nvoverlay.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/dram_model.cc" "src/CMakeFiles/nvoverlay.dir/mem/dram_model.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/mem/dram_model.cc.o.d"
  "/root/repo/src/mem/nvm_model.cc" "src/CMakeFiles/nvoverlay.dir/mem/nvm_model.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/mem/nvm_model.cc.o.d"
  "/root/repo/src/mem/write_tracker.cc" "src/CMakeFiles/nvoverlay.dir/mem/write_tracker.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/mem/write_tracker.cc.o.d"
  "/root/repo/src/nvoverlay/epoch.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/epoch.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/epoch.cc.o.d"
  "/root/repo/src/nvoverlay/epoch_table.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/epoch_table.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/epoch_table.cc.o.d"
  "/root/repo/src/nvoverlay/master_table.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/master_table.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/master_table.cc.o.d"
  "/root/repo/src/nvoverlay/nvoverlay_scheme.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/nvoverlay_scheme.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/nvoverlay_scheme.cc.o.d"
  "/root/repo/src/nvoverlay/omc.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/omc.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/omc.cc.o.d"
  "/root/repo/src/nvoverlay/omc_buffer.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/omc_buffer.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/omc_buffer.cc.o.d"
  "/root/repo/src/nvoverlay/page_pool.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/page_pool.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/page_pool.cc.o.d"
  "/root/repo/src/nvoverlay/recovery.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/recovery.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/recovery.cc.o.d"
  "/root/repo/src/nvoverlay/snapshot_reader.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/snapshot_reader.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/snapshot_reader.cc.o.d"
  "/root/repo/src/nvoverlay/tag_walker.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/tag_walker.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/tag_walker.cc.o.d"
  "/root/repo/src/nvoverlay/versioned_domain.cc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/versioned_domain.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/nvoverlay/versioned_domain.cc.o.d"
  "/root/repo/src/workload/art.cc" "src/CMakeFiles/nvoverlay.dir/workload/art.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/art.cc.o.d"
  "/root/repo/src/workload/bayes.cc" "src/CMakeFiles/nvoverlay.dir/workload/bayes.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/bayes.cc.o.d"
  "/root/repo/src/workload/btree.cc" "src/CMakeFiles/nvoverlay.dir/workload/btree.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/btree.cc.o.d"
  "/root/repo/src/workload/genome.cc" "src/CMakeFiles/nvoverlay.dir/workload/genome.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/genome.cc.o.d"
  "/root/repo/src/workload/hash_table.cc" "src/CMakeFiles/nvoverlay.dir/workload/hash_table.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/hash_table.cc.o.d"
  "/root/repo/src/workload/intruder.cc" "src/CMakeFiles/nvoverlay.dir/workload/intruder.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/intruder.cc.o.d"
  "/root/repo/src/workload/kmeans.cc" "src/CMakeFiles/nvoverlay.dir/workload/kmeans.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/kmeans.cc.o.d"
  "/root/repo/src/workload/labyrinth.cc" "src/CMakeFiles/nvoverlay.dir/workload/labyrinth.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/labyrinth.cc.o.d"
  "/root/repo/src/workload/rbtree.cc" "src/CMakeFiles/nvoverlay.dir/workload/rbtree.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/rbtree.cc.o.d"
  "/root/repo/src/workload/sim_heap.cc" "src/CMakeFiles/nvoverlay.dir/workload/sim_heap.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/sim_heap.cc.o.d"
  "/root/repo/src/workload/ssca2.cc" "src/CMakeFiles/nvoverlay.dir/workload/ssca2.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/ssca2.cc.o.d"
  "/root/repo/src/workload/stamp_common.cc" "src/CMakeFiles/nvoverlay.dir/workload/stamp_common.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/stamp_common.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/nvoverlay.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/vacation.cc" "src/CMakeFiles/nvoverlay.dir/workload/vacation.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/vacation.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/nvoverlay.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/workload.cc.o.d"
  "/root/repo/src/workload/yada.cc" "src/CMakeFiles/nvoverlay.dir/workload/yada.cc.o" "gcc" "src/CMakeFiles/nvoverlay.dir/workload/yada.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
