# Empty dependencies file for nvoverlay.
# This may be replaced when dependencies are built.
