file(REMOVE_RECURSE
  "libnvoverlay.a"
)
