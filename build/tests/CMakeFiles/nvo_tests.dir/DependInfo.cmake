
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_array.cc" "tests/CMakeFiles/nvo_tests.dir/test_cache_array.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_cache_array.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/nvo_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/nvo_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_config_derivation.cc" "tests/CMakeFiles/nvo_tests.dir/test_config_derivation.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_config_derivation.cc.o.d"
  "/root/repo/tests/test_core_model.cc" "tests/CMakeFiles/nvo_tests.dir/test_core_model.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_core_model.cc.o.d"
  "/root/repo/tests/test_epoch.cc" "tests/CMakeFiles/nvo_tests.dir/test_epoch.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_epoch.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/nvo_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_long_horizon.cc" "tests/CMakeFiles/nvo_tests.dir/test_long_horizon.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_long_horizon.cc.o.d"
  "/root/repo/tests/test_mapping_tables.cc" "tests/CMakeFiles/nvo_tests.dir/test_mapping_tables.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_mapping_tables.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/nvo_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_misc_edges.cc" "tests/CMakeFiles/nvo_tests.dir/test_misc_edges.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_misc_edges.cc.o.d"
  "/root/repo/tests/test_mnm_backend.cc" "tests/CMakeFiles/nvo_tests.dir/test_mnm_backend.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_mnm_backend.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/nvo_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_omc_buffer.cc" "tests/CMakeFiles/nvo_tests.dir/test_omc_buffer.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_omc_buffer.cc.o.d"
  "/root/repo/tests/test_page_pool.cc" "tests/CMakeFiles/nvo_tests.dir/test_page_pool.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_page_pool.cc.o.d"
  "/root/repo/tests/test_rebuild.cc" "tests/CMakeFiles/nvo_tests.dir/test_rebuild.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_rebuild.cc.o.d"
  "/root/repo/tests/test_recovery.cc" "tests/CMakeFiles/nvo_tests.dir/test_recovery.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_recovery.cc.o.d"
  "/root/repo/tests/test_schemes.cc" "tests/CMakeFiles/nvo_tests.dir/test_schemes.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_schemes.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/nvo_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/nvo_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_tag_walker.cc" "tests/CMakeFiles/nvo_tests.dir/test_tag_walker.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_tag_walker.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/nvo_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_version_protocol.cc" "tests/CMakeFiles/nvo_tests.dir/test_version_protocol.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_version_protocol.cc.o.d"
  "/root/repo/tests/test_workload_mixes.cc" "tests/CMakeFiles/nvo_tests.dir/test_workload_mixes.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_workload_mixes.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/nvo_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/nvo_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvoverlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
