# Empty dependencies file for nvo_tests.
# This may be replaced when dependencies are built.
