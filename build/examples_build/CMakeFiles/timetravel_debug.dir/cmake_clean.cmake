file(REMOVE_RECURSE
  "../examples/timetravel_debug"
  "../examples/timetravel_debug.pdb"
  "CMakeFiles/timetravel_debug.dir/timetravel_debug.cpp.o"
  "CMakeFiles/timetravel_debug.dir/timetravel_debug.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timetravel_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
