# Empty dependencies file for timetravel_debug.
# This may be replaced when dependencies are built.
