file(REMOVE_RECURSE
  "../examples/remote_replication"
  "../examples/remote_replication.pdb"
  "CMakeFiles/remote_replication.dir/remote_replication.cpp.o"
  "CMakeFiles/remote_replication.dir/remote_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
