# Empty dependencies file for remote_replication.
# This may be replaced when dependencies are built.
