/**
 * @file
 * Low-latency crash recovery (paper usage model #4, Sec. V-E).
 *
 * Runs a 16-core OLTP-style workload (vacation) under NVOverlay,
 * kills the machine at a random point, and rebuilds the consistent
 * image from the persistent master table. The example then verifies
 * the recovery theorem against the recorded write history and prints
 * the modelled recovery latency (proportional to the working set, as
 * the paper states).
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    Cycle crash_at = argc > 1
                         ? static_cast<Cycle>(std::atoll(argv[1]))
                         : 2'500'000;

    Config cfg = defaultConfig();
    cfg.set("wl.ops", std::uint64_t(4000));
    cfg.set("epoch.stores_global", std::uint64_t(200000));
    cfg.set("sim.track_writes", "true");

    System sys(cfg, "nvoverlay", "vacation");
    bool finished = sys.runUntil(crash_at);
    std::printf("power failure at cycle %llu (%s)\n",
                static_cast<unsigned long long>(sys.now()),
                finished ? "workload had finished" : "mid-flight");

    // The battery-backed buffer flushes itself; everything else
    // volatile — caches, DRAM, per-epoch tables — is gone.
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());
    sys.memory().clear();   // DRAM contents lost

    RecoveryManager rm(scheme.backend());
    auto result = rm.recover();
    std::printf("rec-epoch %llu: restored %llu lines (%.2f MB) in "
                "~%.2f ms of modelled NVM reads\n",
                static_cast<unsigned long long>(result.recEpoch),
                static_cast<unsigned long long>(result.linesRestored),
                result.linesRestored * 64.0 / 1e6,
                result.modelCycles / 3e6);

    std::string err =
        RecoveryManager::validate(result, scheme.backend());
    if (!err.empty()) {
        std::printf("validation FAILED: %s\n", err.c_str());
        return 1;
    }

    // The theorem: every line equals the last store <= rec-epoch.
    unsigned checked = 0, bad = 0;
    for (Addr line : sys.tracker()->trackedLines()) {
        auto expect =
            sys.tracker()->expectedDigest(line, result.recEpoch);
        if (!expect)
            continue;
        LineData got;
        result.image->readLine(line, got);
        ++checked;
        if (got.digest() != *expect)
            ++bad;
    }
    std::printf("verified %u lines against the write history: %s "
                "(%u mismatches)\n",
                checked, bad == 0 ? "CONSISTENT" : "INCONSISTENT",
                bad);
    return bad == 0 ? 0 : 1;
}
