/**
 * @file
 * Quickstart: run a small parallel workload under NVOverlay, crash in
 * the middle, recover the consistent image, and time-travel through
 * the snapshots.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"
#include "nvoverlay/snapshot_reader.hh"

using namespace nvo;

int
main()
{
    // 1. Configure a 16-core system (Table II defaults) with frequent
    //    snapshots and run a B+Tree bulk-insert workload on it.
    Config cfg = defaultConfig();
    cfg.set("wl.ops", std::uint64_t(2000));
    cfg.set("epoch.stores_global", std::uint64_t(50000));
    cfg.set("sim.track_writes", "true");

    System sys(cfg, "nvoverlay", "btree");

    // 2. Crash the machine mid-run: everything volatile is lost; only
    //    the NVM image (master table, rec-epoch, overlay pages)
    //    survives. The battery-backed OMC buffer flushes itself.
    bool finished = sys.runUntil(3'000'000);
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    scheme.crashFlush(sys.now());

    std::printf("simulated %llu cycles, %llu stores, crash=%s\n",
                static_cast<unsigned long long>(sys.stats().cycles),
                static_cast<unsigned long long>(sys.stats().stores),
                finished ? "after-completion" : "mid-run");

    // 3. Recover: scan the master mapping table, rebuild the image.
    RecoveryManager rm(scheme.backend());
    auto recovered = rm.recover();
    std::printf("recovered epoch %llu: %llu lines restored "
                "(model: %.2f ms of NVM reads)\n",
                static_cast<unsigned long long>(recovered.recEpoch),
                static_cast<unsigned long long>(
                    recovered.linesRestored),
                recovered.modelCycles / 3e6);

    std::string err = RecoveryManager::validate(recovered,
                                                scheme.backend());
    std::printf("recovery validation: %s\n",
                err.empty() ? "OK" : err.c_str());

    // 4. Time travel: read one snapshotted line across epochs.
    SnapshotReader reader(scheme.backend());
    if (recovered.linesRestored > 0) {
        Addr probe = invalidAddr;
        scheme.backend().forEachMasterEntry(
            [&](Addr line, const MasterTable::Entry &) {
                if (probe == invalidAddr)
                    probe = line;
            });
        for (EpochWide e = 1; e <= recovered.recEpoch; ++e) {
            auto v = reader.readLine(probe, e);
            if (v)
                std::printf("  line 0x%llx @ epoch %llu -> version "
                            "from epoch %llu (digest %016llx)\n",
                            static_cast<unsigned long long>(probe),
                            static_cast<unsigned long long>(e),
                            static_cast<unsigned long long>(v->epoch),
                            static_cast<unsigned long long>(
                                v->data.digest()));
        }
    }
    return err.empty() ? 0 : 1;
}
