/**
 * @file
 * Fine-grained backup / remote replication (paper usage models #2-3,
 * Sec. V-E "Remote Replication").
 *
 * Per-epoch snapshots are incremental deltas; a backup machine can
 * replay them as redo logs or archive them. This example runs a
 * workload under NVOverlay, then "ships" each recoverable epoch's
 * delta to a simulated replica, replays the deltas in epoch order,
 * and verifies the replica converges to the primary's consistent
 * image. It also prints the per-epoch delta sizes — the incremental
 * traffic a real replication pipeline would put on the wire.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"

using namespace nvo;

int
main()
{
    Config cfg = defaultConfig();
    cfg.set("wl.ops", std::uint64_t(2500));
    cfg.set("epoch.stores_global", std::uint64_t(150000));

    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    auto &backend = scheme.backend();
    EpochWide rec = backend.recEpoch();
    std::printf("primary finished: %llu recoverable epochs\n",
                static_cast<unsigned long long>(rec));

    // Ship every epoch delta: for each epoch e, the set of (line,
    // content) pairs in its per-epoch tables.
    BackingStore replica;
    std::uint64_t total_delta = 0;
    std::printf("\n%8s %14s %14s\n", "epoch", "delta-lines",
                "delta-KB");
    for (EpochWide e = 1; e <= rec; ++e) {
        std::uint64_t lines = 0;
        for (unsigned omc = 0; omc < backend.numOmcs(); ++omc) {
            EpochTable *t = backend.epochTable(omc, e);
            if (!t)
                continue;
            t->forEachVersion([&](Addr line, Addr) {
                LineData content;
                if (!t->readVersion(line, content))
                    return;
                // Replay as a redo record on the replica.
                replica.writeLine(line, content);
                replica.setLineMeta(line, e, 0);
                ++lines;
            });
        }
        total_delta += lines * lineBytes;
        if (lines > 0)
            std::printf("%8llu %14llu %14.1f\n",
                        static_cast<unsigned long long>(e),
                        static_cast<unsigned long long>(lines),
                        lines * 64.0 / 1024);
    }
    std::printf("total shipped: %.2f MB (vs %.2f MB full image)\n",
                total_delta / 1e6,
                backend.masterMappedLinesTotal() * 64.0 / 1e6);

    // The replica must equal the primary's consistent image.
    RecoveryManager rm(backend);
    auto primary = rm.recover();
    std::uint64_t mismatch = 0, compared = 0;
    backend.forEachMasterEntry(
        [&](Addr line, const MasterTable::Entry &) {
            LineData a, b;
            primary.image->readLine(line, a);
            replica.readLine(line, b);
            ++compared;
            if (!(a == b))
                ++mismatch;
        });
    std::printf("replica check: %llu lines compared, %llu "
                "mismatches -> %s\n",
                static_cast<unsigned long long>(compared),
                static_cast<unsigned long long>(mismatch),
                mismatch == 0 ? "REPLICA CONSISTENT"
                              : "REPLICA DIVERGED");
    return mismatch == 0 ? 0 : 1;
}
