/**
 * @file
 * Fine-grained backup / remote replication (paper usage models #2-3,
 * Sec. V-E "Remote Replication"), on the live replication subsystem.
 *
 * Unlike a post-hoc export, the src/repl pipeline ships each epoch's
 * delta *while the run progresses*: the moment the recoverable epoch
 * advances, the shipper drains that epoch's per-epoch tables into
 * framed wire records and sends them over a lossy, latency-bound
 * async link; the standby replica decodes, deduplicates, and applies
 * them in epoch order through its own MnmBackend. This example runs
 * a workload with replication enabled over a deliberately bad link
 * (1% drop, 0.2% corruption), then proves failover would work: every
 * tracked line must read back byte-exact from the standby at every
 * applied epoch.
 *
 * Every check here fails loudly. If the standby cannot serve an
 * epoch it claims to have applied, that is a replication bug, not a
 * condition to skip over.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "repl/replicator.hh"

using namespace nvo;

int
main()
{
    Config cfg = defaultConfig();
    cfg.set("wl.ops", std::uint64_t(2500));
    cfg.set("epoch.stores_global", std::uint64_t(150000));
    cfg.set("sim.track_writes", "true");
    cfg.set("repl.enabled", "true");
    cfg.set("repl.drop_rate", 0.01);
    cfg.set("repl.corrupt_rate", 0.002);

    System sys(cfg, "nvoverlay", "hashtable");
    sys.run();

    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
    repl::Replicator *rep = scheme.replicator();
    if (!rep) {
        std::fprintf(stderr, "replication was not enabled\n");
        return 1;
    }

    const RunStats &stats = sys.stats();
    EpochWide rec = scheme.backend().recEpoch();
    std::printf("primary finished: %llu recoverable epochs\n",
                static_cast<unsigned long long>(rec));
    std::printf("shipped %llu epochs (%llu late amendments), "
                "%.2f MB of deltas over %.2f MB of wire traffic\n",
                static_cast<unsigned long long>(
                    stats.repl.epochsShipped),
                static_cast<unsigned long long>(
                    stats.repl.lateShipped),
                stats.repl.deltaBytes / 1e6,
                stats.repl.wireBytes / 1e6);
    std::printf("lossy link: %llu drops, %llu corruptions, %llu "
                "retries, %llu decoder resyncs\n",
                static_cast<unsigned long long>(
                    stats.repl.framesDropped),
                static_cast<unsigned long long>(
                    stats.repl.framesCorrupted),
                static_cast<unsigned long long>(
                    stats.repl.framesRetried),
                static_cast<unsigned long long>(
                    stats.repl.decodeResyncs));

    // The standby must have caught up: every epoch the primary
    // certified, applied in order. An unavailable epoch delta is a
    // hard failure, not something to skip.
    EpochWide applied = rep->replica().appliedRecEpoch();
    if (applied != rec) {
        std::fprintf(stderr,
                     "FATAL: standby applied only epoch %llu of "
                     "%llu — the stream did not converge\n",
                     static_cast<unsigned long long>(applied),
                     static_cast<unsigned long long>(rec));
        return 1;
    }

    // Failover proof: byte-exact at every epoch up to applied-rec.
    auto report = rep->verify(*sys.tracker(), false);
    std::printf("failover check: %llu (line, epoch) reads, %llu "
                "mismatches -> %s\n",
                static_cast<unsigned long long>(report.linesChecked),
                static_cast<unsigned long long>(report.mismatches),
                report.consistent() ? "REPLICA CONSISTENT"
                                    : "REPLICA DIVERGED");
    if (!report.consistent())
        return 1;

    // Spot-check the standby's time-travel path the way a failover
    // tool would: the snapshot of each tracked line at the final
    // epoch must exist on the standby.
    const MnmBackend &standby = rep->replica().backend();
    for (Addr line : sys.tracker()->trackedLines()) {
        if (!sys.tracker()->expectedDigest(line, applied))
            continue;
        LineData content;
        if (!standby.readSnapshot(line, applied, content)) {
            std::fprintf(stderr,
                         "FATAL: standby has no snapshot of line "
                         "%#llx at applied epoch %llu\n",
                         static_cast<unsigned long long>(line),
                         static_cast<unsigned long long>(applied));
            return 1;
        }
    }
    std::printf("standby serves every tracked line at epoch %llu\n",
                static_cast<unsigned long long>(applied));
    return 0;
}
