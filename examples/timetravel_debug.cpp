/**
 * @file
 * Time-travel debugging (paper usage model #1 and Sec. V-E).
 *
 * A 16-core run inserts into a shared B+Tree under NVOverlay with
 * small, frequent epochs — as a record-and-replay debugger would
 * configure around a watch point. Afterwards we pick a hot line and
 * walk its history backwards across snapshots with the fall-through
 * reader, then demonstrate a bursty watch-point window that forces
 * very fine-grained snapshots.
 */

#include <cstdio>
#include <map>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/snapshot_reader.hh"

using namespace nvo;

int
main()
{
    Config cfg = defaultConfig();
    cfg.set("wl.ops", std::uint64_t(1500));
    cfg.set("epoch.stores_global", std::uint64_t(100000));
    cfg.set("wl.btree.prefill", std::uint64_t(16384));

    System sys(cfg, "nvoverlay", "btree");
    auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());

    // Phase 1: normal execution.
    sys.runUntil(2'000'000);

    // Phase 2: the debugger hits a watch point — snapshot rapidly
    // around the suspicious window (paper Fig. 17b usage).
    std::uint64_t normal = scheme.storesPerEpochVdValue();
    scheme.setStoresPerEpochVd(64);
    sys.runUntil(sys.now() + 400'000);
    scheme.setStoresPerEpochVd(normal);

    // Phase 3: run to completion.
    sys.run();

    EpochWide rec = scheme.backend().recEpoch();
    std::printf("run complete: %llu epochs recoverable, "
                "%llu epoch advances (%llu coherence-driven)\n",
                static_cast<unsigned long long>(rec),
                static_cast<unsigned long long>(
                    sys.stats().epochAdvances),
                static_cast<unsigned long long>(
                    sys.stats().lamportAdvances));

    // Find the line with the most distinct snapshot versions.
    SnapshotReader reader(scheme.backend());
    Addr hottest = invalidAddr;
    unsigned best = 0;
    std::map<Addr, unsigned> counts;
    scheme.backend().forEachMasterEntry(
        [&](Addr line, const MasterTable::Entry &) {
            unsigned n = 0;
            EpochWide last = 0;
            for (EpochWide e = 1; e <= rec; ++e) {
                auto v = reader.readLine(line, e);
                if (v && v->epoch != last) {
                    ++n;
                    last = v->epoch;
                }
            }
            counts[line] = n;
            if (n > best) {
                best = n;
                hottest = line;
            }
        });
    if (hottest == invalidAddr) {
        std::printf("no snapshots recorded\n");
        return 1;
    }

    std::printf("\nhottest line 0x%llx has %u distinct versions; "
                "time-traveling:\n",
                static_cast<unsigned long long>(hottest), best);
    EpochWide last = 0;
    for (EpochWide e = 1; e <= rec; ++e) {
        auto v = reader.readLine(hottest, e);
        if (!v || v->epoch == last)
            continue;
        last = v->epoch;
        std::uint64_t first_word;
        std::memcpy(&first_word, v->data.bytes.data(), 8);
        std::printf("  as of epoch %5llu -> version from epoch %5llu"
                    "  word[0]=%016llx\n",
                    static_cast<unsigned long long>(e),
                    static_cast<unsigned long long>(v->epoch),
                    static_cast<unsigned long long>(first_word));
    }
    return 0;
}
