/**
 * @file
 * Memory reference descriptors produced by workloads and consumed by
 * the core timing model.
 */

#ifndef NVO_CPU_MEMREF_HH
#define NVO_CPU_MEMREF_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.hh"

namespace nvo
{

/** One memory operation plus the non-memory work preceding it. */
struct MemRef
{
    Addr addr = 0;
    /** Non-memory instructions executed before this reference. */
    std::uint32_t gapInstrs = 0;
    std::uint8_t size = 8;
    bool isStore = false;
    bool hasData = false;
    std::uint8_t data[8] = {};

    /** Keep an access inside its first cache line (split accesses
     *  are modelled as one reference to the leading line). */
    static Addr
    clampToLine(Addr a, std::uint8_t sz)
    {
        Addr line = a & ~static_cast<Addr>(lineBytes - 1);
        if (a + sz > line + lineBytes)
            return line + lineBytes - sz;
        return a;
    }

    static MemRef
    ld(Addr a, std::uint32_t gap = 0, std::uint8_t sz = 8)
    {
        MemRef r;
        r.addr = clampToLine(a, sz);
        r.gapInstrs = gap;
        r.size = sz;
        return r;
    }

    static MemRef
    st(Addr a, std::uint32_t gap = 0, std::uint8_t sz = 8)
    {
        MemRef r;
        r.addr = clampToLine(a, sz);
        r.gapInstrs = gap;
        r.size = sz;
        r.isStore = true;
        return r;
    }

    /** Store carrying real bytes (at most 8). */
    template <typename T>
    static MemRef
    stVal(Addr a, const T &value, std::uint32_t gap = 0)
    {
        static_assert(sizeof(T) <= 8);
        MemRef r = st(a, gap, sizeof(T));
        r.hasData = true;
        std::memcpy(r.data, &value, sizeof(T));
        return r;
    }
};

/**
 * Source of memory references for one hardware thread. Workloads
 * implement this: each call generates one logical operation (e.g.,
 * one B+Tree insert) as a batch of references.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce the next operation's references for thread @p thread
     * into @p out (cleared by the callee). Returns false when the
     * thread has finished its work.
     */
    virtual bool nextOp(unsigned thread, std::vector<MemRef> &out) = 0;
};

} // namespace nvo

#endif // NVO_CPU_MEMREF_HH
