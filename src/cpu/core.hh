/**
 * @file
 * Simple core timing model: 4-wide in-order issue approximation. Each
 * core consumes references from its thread's RefSource, charging gap
 * cycles for non-memory instructions plus hierarchy latency for each
 * reference, and invokes the active snapshot scheme on every store.
 */

#ifndef NVO_CPU_CORE_HH
#define NVO_CPU_CORE_HH

#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/memref.hh"

namespace nvo
{

class Scheme;

class Core
{
  public:
    struct Params
    {
        unsigned issueWidth = 4;
    };

    Core(const Params &params, unsigned core_id, Hierarchy &hierarchy,
         RefSource &source, Scheme &scheme, RunStats &run_stats);

    /** Advance until the local clock reaches @p quantum_end or the
     *  thread finishes. */
    void runUntil(Cycle quantum_end);

    bool done() const { return finished && pos >= queue.size(); }
    Cycle cycle() const { return localCycle; }
    unsigned id() const { return coreId; }

    /** External stall (e.g., epoch-advance pipeline drain). */
    void addStall(Cycle c) { localCycle += c; }

  private:
    Params p;
    unsigned coreId;
    Hierarchy &hier;
    RefSource &src;
    Scheme &scheme;
    RunStats &stats;

    Cycle localCycle = 0;
    bool finished = false;
    std::vector<MemRef> queue;
    std::size_t pos = 0;
};

} // namespace nvo

#endif // NVO_CPU_CORE_HH
