#include "cpu/core.hh"

#include "baselines/scheme.hh"
#include "common/log.hh"

namespace nvo
{

Core::Core(const Params &params, unsigned core_id, Hierarchy &hierarchy,
           RefSource &source, Scheme &scheme_, RunStats &run_stats)
    : p(params), coreId(core_id), hier(hierarchy), src(source),
      scheme(scheme_), stats(run_stats)
{
    nvo_assert(p.issueWidth > 0);
}

void
Core::runUntil(Cycle quantum_end)
{
    unsigned vd = hier.vdOfCore(coreId);
    while (localCycle < quantum_end) {
        if (pos >= queue.size()) {
            if (finished)
                return;
            queue.clear();
            pos = 0;
            if (!src.nextOp(coreId, queue)) {
                finished = true;
                return;
            }
            if (queue.empty()) {
                // The workload is momentarily blocked (e.g., lock
                // contention modelled without spin refs): idle a bit.
                localCycle += 64;
                continue;
            }
        }
        const MemRef &ref = queue[pos++];
        // Non-memory work retires at the issue width.
        localCycle += ref.gapInstrs / p.issueWidth;
        stats.instructions += ref.gapInstrs + 1;
        ++stats.refs;
        if (ref.isStore) {
            ++stats.stores;
            Cycle stall = scheme.onStore(coreId, vd,
                                         lineAlign(ref.addr),
                                         localCycle);
            stats.barrierStallCycles += stall;
            localCycle += stall;
            Cycle slat = hier.store(coreId, ref.addr,
                                    ref.hasData ? ref.data : nullptr,
                                    ref.size, localCycle);
            stats.extra["lat_store"] += slat;
            localCycle += slat;
        } else {
            ++stats.loads;
            Cycle llat = hier.load(coreId, ref.addr, localCycle);
            stats.extra["lat_load"] += llat;
            localCycle += llat;
        }
    }
}

} // namespace nvo
