/**
 * @file
 * Message types carried on the shard engine's SPSC rings.
 *
 * Two traffic classes flow between shards:
 *
 *  - the execution token (Grant): one per shard per quantum, passed
 *    shard 0 -> 1 -> ... -> N-1 -> coordinator. The grant's journey
 *    through the rings is the engine's entire synchronization — its
 *    release/acquire hops order every touch of shared simulator
 *    state (see docs/PARALLELISM.md);
 *  - cross-shard traffic notes (XMsg): one per coherence snoop,
 *    eviction, or snapshot emission that crosses a shard boundary,
 *    posted by the token holder into the destination shard's ring
 *    and drained by the coordinator at the quantum barrier in fixed
 *    shard order. Notes feed the EngineReport only; simulation state
 *    never depends on them, so a full ring drops the note and counts
 *    the overflow instead of blocking.
 */

#ifndef NVO_PAR_MSG_HH
#define NVO_PAR_MSG_HH

#include <cstdint>

#include "common/types.hh"

namespace nvo
{
namespace par
{

/** Cross-shard traffic classes (mirrors Hierarchy::XTraffic). */
enum class XKind : std::uint8_t
{
    Coherence = 0,   ///< remote snoop (invalidate / downgrade)
    Eviction,        ///< capacity write back into an LLC/OMC domain
    Snapshot,        ///< version emission (store-evict, walk, flush)
    NumKinds
};

constexpr unsigned numXKinds =
    static_cast<unsigned>(XKind::NumKinds);

/** One cross-shard traffic note. */
struct XMsg
{
    std::uint32_t fromShard = 0;
    std::uint32_t toShard = 0;
    XKind kind = XKind::Coherence;
};

/** Worker commands (the grant ring element). */
struct Grant
{
    enum class Op : std::uint8_t
    {
        Run,    ///< execute `shard`'s cores up to `quantumEnd`
        Stop,   ///< shut the worker down
    };

    Op op = Op::Run;
    std::uint32_t shard = 0;
    Cycle quantumEnd = 0;
    /** Token sequence number (== quanta started; for tracing). */
    std::uint64_t seq = 0;
    /** An earlier shard threw (e.g. an injected CrashFault): skip
     *  execution, keep forwarding — exactly the cores the sequential
     *  engine would also never have run this quantum. */
    bool poisoned = false;
};

/** Barrier completion notice (last shard -> coordinator). */
struct Done
{
    std::uint64_t seq = 0;
    bool poisoned = false;
};

} // namespace par
} // namespace nvo

#endif // NVO_PAR_MSG_HH
