/**
 * @file
 * Bounded single-producer / single-consumer ring (the only channel
 * shards may use to exchange data; see docs/PARALLELISM.md).
 *
 * Classic Lamport queue over a power-of-two slot array: the producer
 * owns `tail`, the consumer owns `head`, and each side reads the
 * other's index with acquire ordering and publishes its own with
 * release ordering. A successful tryPop therefore happens-after the
 * tryPush that wrote the slot — this release/acquire edge is what
 * carries *all* cross-thread ordering in the shard engine (the
 * execution token travels as a ring element), which is why the engine
 * needs no mutex around simulator state and why TSan sees every
 * handoff.
 *
 * "Single producer" is a serialization contract, not a single-thread
 * requirement: different threads may push as long as every push
 * happens-after the previous one (the token chain provides exactly
 * that — a worker only pushes a grant after popping the preceding
 * one). The same holds for the consumer side.
 *
 * Capacity is fixed at construction and rounded up to a power of two;
 * a full ring rejects the push (callers count the rejection — the
 * engine never blocks on a data ring). `highWater()` records the
 * deepest producer-observed occupancy for the per-shard backpressure
 * metrics.
 */

#ifndef NVO_PAR_RING_HH
#define NVO_PAR_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nvo
{
namespace par
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots.resize(cap);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Producer side. Returns false (and counts the reject) when the
     *  ring is full; the element is untouched in that case. */
    bool
    tryPush(T &&v)
    {
        std::uint64_t t = tail.load(std::memory_order_relaxed);
        std::uint64_t h = head.load(std::memory_order_acquire);
        std::uint64_t depth = t - h;
        if (depth == slots.size()) {
            rejects.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots[t & (slots.size() - 1)] = std::move(v);
        tail.store(t + 1, std::memory_order_release);
        if (depth + 1 > water.load(std::memory_order_relaxed))
            water.store(depth + 1, std::memory_order_relaxed);
        return true;
    }

    bool
    tryPush(const T &v)
    {
        T copy = v;
        return tryPush(std::move(copy));
    }

    /** Consumer side. Returns false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::uint64_t h = head.load(std::memory_order_relaxed);
        std::uint64_t t = tail.load(std::memory_order_acquire);
        if (h == t)
            return false;
        out = std::move(slots[h & (slots.size() - 1)]);
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Approximate occupancy (exact from either owning side). */
    std::size_t
    size() const
    {
        std::uint64_t t = tail.load(std::memory_order_acquire);
        std::uint64_t h = head.load(std::memory_order_acquire);
        return static_cast<std::size_t>(t - h);
    }

    bool empty() const { return size() == 0; }
    std::size_t capacity() const { return slots.size(); }

    /** Deepest occupancy the producer has observed. */
    std::uint64_t
    highWater() const
    {
        return water.load(std::memory_order_relaxed);
    }

    /** Pushes refused because the ring was full. */
    std::uint64_t
    fullRejects() const
    {
        return rejects.load(std::memory_order_relaxed);
    }

  private:
    std::vector<T> slots;
    /** Producer and consumer indices live on separate cache lines so
     *  the two sides never false-share. */
    alignas(64) std::atomic<std::uint64_t> tail{0};
    alignas(64) std::atomic<std::uint64_t> head{0};
    alignas(64) std::atomic<std::uint64_t> water{0};
    std::atomic<std::uint64_t> rejects{0};
};

} // namespace par
} // namespace nvo

#endif // NVO_PAR_RING_HH
