/**
 * @file
 * Off-critical-path workload pre-generation for the shard engine.
 *
 * A StagedSource sits between one core and the shared workload. While
 * a worker waits for its execution token it stages upcoming batches
 * for its own cores into a bounded ring; during the token turn the
 * core pops staged batches instead of calling into the workload
 * generator. The staged stream replays the per-thread generation
 * sequence exactly (same calls, same order, same RNG draws), so
 * simulation results are bit-identical with staging on or off.
 *
 * Staging is only legal for workloads whose generator is provably
 * thread-confined (WorkloadBase::independentGen(): genOp touches
 * nothing but that thread's RNG/cursor/arena — e.g. kmeans). For all
 * other workloads the StagedSource degrades to a plain forwarder and
 * generation happens inline during the token turn, i.e. in exact
 * sequential order.
 *
 * Threading contract: prefill() and nextOp() both run on the worker
 * thread that owns the core (prefill while idle, nextOp while holding
 * the shard's token), so the ring never actually crosses threads —
 * the SpscRing is used for its bounded-queue semantics and metrics.
 * What *is* concurrent is this worker's prefill against other shards'
 * token turns, which is safe precisely because of the
 * independentGen() confinement contract.
 */

#ifndef NVO_PAR_PREGEN_HH
#define NVO_PAR_PREGEN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "cpu/memref.hh"
#include "par/ring.hh"
#include "workload/workload.hh"

namespace nvo
{
namespace par
{

class StagedSource final : public RefSource
{
  public:
    StagedSource(WorkloadBase &workload, unsigned thread,
                 std::size_t ring_batches, bool staged)
        : wl(workload), thread_(thread), staged_(staged),
          ring(ring_batches)
    {
    }

    /**
     * Stage one upcoming batch (worker idle work). Returns false when
     * there is nothing left to stage (thread finished or ring full)
     * so the caller can move on.
     */
    bool
    prefill()
    {
        if (!staged_ || exhausted || ring.size() == ring.capacity())
            return false;
        Batch b;
        b.more = wl.nextOp(thread_, b.refs);
        if (!b.more)
            exhausted = true;
        bool pushed = ring.tryPush(std::move(b));
        ++staged;
        return pushed && !exhausted;
    }

    bool
    nextOp(unsigned thread, std::vector<MemRef> &out) override
    {
        (void)thread;
        Batch b;
        if (staged_ && ring.tryPop(b)) {
            out.swap(b.refs);
            return b.more;
        }
        return wl.nextOp(thread_, out);
    }

    bool stagingEnabled() const { return staged_; }
    std::uint64_t stagedBatches() const { return staged; }
    std::uint64_t highWater() const { return ring.highWater(); }

  private:
    struct Batch
    {
        std::vector<MemRef> refs;
        bool more = true;
    };

    WorkloadBase &wl;
    unsigned thread_;
    bool staged_;
    bool exhausted = false;
    std::uint64_t staged = 0;
    SpscRing<Batch> ring;
};

} // namespace par
} // namespace nvo

#endif // NVO_PAR_PREGEN_HH
