#include "par/engine.hh"

#include <chrono>
#include <utility>

#include "common/log.hh"
#include "cpu/core.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "workload/workload.hh"

namespace nvo
{
namespace par
{

namespace
{

/** Idle probes between condvar parks. Small: the engine must behave
 *  on oversubscribed hosts (CI runners), where spinning a worker
 *  starves the token holder. */
constexpr unsigned spinLimit = 64;

constexpr std::chrono::microseconds parkTimeout{200};

} // namespace

ShardEngine::ShardEngine(const Params &params, WorkloadBase &workload,
                         unsigned num_vds, unsigned num_slices,
                         unsigned cores_per_vd)
    : p(params),
      map_(params.shards, num_vds, num_slices, cores_per_vd),
      slots(params.shards), doneRing(8)
{
    hRingDrained_ = obs::metricRegistry().addHist(
        "par.ring_drained", obs::MetricScope::Host);
    hRingHighWater_ = obs::metricRegistry().addHist(
        "par.ring_high_water", obs::MetricScope::Host);
    cTokenWait_ = obs::metricRegistry().addCounter(
        "par.token_wait_spins", obs::MetricScope::Host);

    rep.shards = p.shards;
    rep.pregen = p.pregen && workload.independentGen();

    unsigned threads = p.threads == 0 ? p.shards : p.threads;
    if (threads > p.shards)
        threads = p.shards;
    rep.threads = threads;

    for (unsigned c = 0; c < map_.numCores(); ++c)
        sources.push_back(std::make_unique<StagedSource>(
            workload, c, p.pregenRing, rep.pregen));

    for (unsigned s = 0; s < p.shards; ++s) {
        slots[s].xring =
            std::make_unique<SpscRing<XMsg>>(p.trafficRing);
        for (unsigned c : map_.coresOf(s))
            slots[s].staged.push_back(sources[c].get());
    }

    for (unsigned w = 0; w < threads; ++w)
        grantRings.push_back(std::make_unique<SpscRing<Grant>>(8));
}

ShardEngine::~ShardEngine() { stopWorkers(); }

RefSource &
ShardEngine::sourceFor(unsigned core)
{
    nvo_assert(core < sources.size());
    return *sources[core];
}

void
ShardEngine::start(const std::vector<Core *> &cores)
{
    nvo_assert(!started, "ShardEngine started twice");
    nvo_assert(cores.size() == map_.numCores(),
               "core count does not match the shard map");
    for (unsigned s = 0; s < p.shards; ++s)
        for (unsigned c : map_.coresOf(s))
            slots[s].cores.push_back(cores[c]);
    started = true;
    for (unsigned w = 0; w < rep.threads; ++w)
        workers.emplace_back([this, w] { workerMain(w); });
}

void
ShardEngine::pushGrant(unsigned worker, Grant g)
{
    // Serialized producer: at most one token circulates, and Stop
    // grants are only posted once it has been retired.
    bool ok = grantRings[worker]->tryPush(g);
    nvo_assert(ok, "grant ring overflow");
    {
        // Empty critical section: pairs the push with the receiver's
        // checked wait so a park between its probe and its wait
        // cannot miss this grant.
        std::lock_guard<std::mutex> lk(wakeMutex);
    }
    wakeCv.notify_all();
}

void
ShardEngine::note(unsigned from_domain, unsigned to_domain,
                  Hierarchy::XTraffic kind)
{
    unsigned from = map_.shardOfDomain(from_domain);
    unsigned to = map_.shardOfDomain(to_domain);
    if (from == to) {
        ++slots[from].metrics.xLocal;
        return;
    }
    XMsg m;
    m.fromShard = from;
    m.toShard = to;
    m.kind = kind == Hierarchy::XTraffic::Coherence
                 ? XKind::Coherence
                 : (kind == Hierarchy::XTraffic::Eviction
                        ? XKind::Eviction
                        : XKind::Snapshot);
    // Only the token holder reaches this path (the hierarchy runs
    // under the token), so pushes into any destination ring are
    // serialized even though senders alternate across threads.
    if (slots[to].xring->tryPush(m))
        ++slots[from].metrics.xSent;
    else
        ++slots[from].metrics.xDropped;
}

bool
ShardEngine::idleWork(unsigned worker)
{
    // Pre-generate upcoming batches for the cores of the shards this
    // worker owns, round-robin so no single core's ring hogs the idle
    // time. Legal only under the independentGen() confinement
    // contract (see par/pregen.hh); otherwise every source reports
    // staging disabled and this is a cheap no-op scan.
    bool did = false;
    for (unsigned s = worker; s < p.shards; s += rep.threads) {
        Slot &slot = slots[s];
        if (slot.staged.empty())
            continue;
        for (std::size_t i = 0; i < slot.staged.size(); ++i) {
            unsigned idx = slot.pregenCursor++ %
                           static_cast<unsigned>(slot.staged.size());
            StagedSource *src = slot.staged[idx];
            if (src->prefill()) {
                ++slot.metrics.pregenBatches;
                did = true;
                break;
            }
        }
    }
    return did;
}

void
ShardEngine::workerMain(unsigned worker)
{
    unsigned first = worker; // lowest shard this worker owns
    for (;;) {
        Grant g;
        unsigned spins = 0;
        while (!grantRings[worker]->tryPop(g)) {
            ++slots[first].metrics.grantWaitSpins;
            if (idleWork(worker)) {
                spins = 0;
                continue;
            }
            if (++spins >= spinLimit) {
                std::unique_lock<std::mutex> lk(wakeMutex);
                if (grantRings[worker]->empty())
                    wakeCv.wait_for(lk, parkTimeout);
                spins = 0;
            }
        }
        if (g.op == Grant::Op::Stop)
            return;
        runShard(g);
    }
}

void
ShardEngine::runShard(const Grant &g)
{
    Slot &slot = slots[g.shard];
    bool poisoned = g.poisoned;
    if (!poisoned) {
        // Token turn: this thread owns the shard's state for the
        // duration of the guard. The capability's acquire/release
        // double as the runtime-audit and TSan-visible handoff.
        ShardGuard guard(slot.cap);
        // Sim-scope metrics recorded during this turn land in the
        // shard's private registry slot; the coordinator folds the
        // slots in shard order at the barrier, so the merged totals
        // match the sequential engine exactly.
        obs::MetricSlotScope mslot(g.shard);
        ++slot.metrics.quanta;
        try {
            for (Core *core : slot.cores) {
                core->runUntil(g.quantumEnd);
                ++slot.metrics.coresRun;
            }
        } catch (...) {
            // Match the sequential engine: cores after the throwing
            // one do not run this quantum. Park the exception for the
            // coordinator and poison the rest of the round.
            slot.error = std::current_exception();
            poisoned = true;
        }
    }
    forwardToken(g, poisoned);
}

void
ShardEngine::forwardToken(const Grant &g, bool poisoned)
{
    if (g.shard + 1 < p.shards) {
        Grant next = g;
        next.shard = g.shard + 1;
        next.poisoned = poisoned;
        pushGrant(next.shard % rep.threads, next);
        return;
    }
    Done d;
    d.seq = g.seq;
    d.poisoned = poisoned;
    bool ok = doneRing.tryPush(d);
    nvo_assert(ok, "done ring overflow");
    {
        std::lock_guard<std::mutex> lk(wakeMutex);
    }
    wakeCv.notify_all();
}

void
ShardEngine::runQuantum(Cycle quantum_end)
{
    nvo_assert(started && !stopped,
               "runQuantum outside the engine's lifetime");
    Grant g;
    g.op = Grant::Op::Run;
    g.shard = 0;
    g.quantumEnd = quantum_end;
    g.seq = ++seq;
    g.poisoned = false;
    pushGrant(0, g);

    Done d;
    unsigned spins = 0;
    std::uint64_t waited = 0;
    while (!doneRing.tryPop(d)) {
        ++waited;
        if (++spins >= spinLimit) {
            std::unique_lock<std::mutex> lk(wakeMutex);
            if (doneRing.empty())
                wakeCv.wait_for(lk, parkTimeout);
            spins = 0;
        }
    }
    NVO_METRIC(inc(cTokenWait_, waited));
    nvo_assert(d.seq == g.seq, "token barrier out of sequence");
    ++rep.quanta;
    rep.tokens += p.shards;
    NVO_TRACE(Par, ParToken, obs::trackShard(p.shards - 1),
              quantum_end, d.seq, d.poisoned ? 1 : 0);

    // Barrier drain: no token is in flight, so the coordinator owns
    // every ring. Fixed shard order keeps the accounting (and any
    // trace it emits) deterministic.
    for (unsigned s = 0; s < p.shards; ++s) {
        Slot &slot = slots[s];
        XMsg m;
        std::uint64_t drained = 0;
        std::uint64_t hw = slot.xring->highWater();
        while (slot.xring->tryPop(m)) {
            ++slot.metrics.xReceived;
            ++slot.metrics.xByKind[static_cast<unsigned>(m.kind)];
            ++drained;
        }
        if (hw > slot.metrics.xRingHighWater)
            slot.metrics.xRingHighWater = hw;
        if (drained)
            NVO_TRACE(Par, ParXDrain, obs::trackShard(s), quantum_end,
                      drained, hw);
        NVO_METRIC(record(hRingDrained_, drained));
        NVO_METRIC(record(hRingHighWater_, hw));
    }

    for (unsigned s = 0; s < p.shards; ++s) {
        if (slots[s].error) {
            std::exception_ptr e = slots[s].error;
            slots[s].error = nullptr;
            std::rethrow_exception(e);
        }
    }
}

void
ShardEngine::stopWorkers()
{
    if (!started || stopped)
        return;
    stopped = true;
    for (unsigned w = 0; w < rep.threads; ++w) {
        Grant g;
        g.op = Grant::Op::Stop;
        g.shard = 0;
        g.quantumEnd = 0;
        g.seq = ++seq;
        g.poisoned = false;
        pushGrant(w, g);
    }
    for (auto &t : workers)
        t.join();
    workers.clear();

    // Joined workers = full synchronization; fold the staging
    // counters into the per-shard rows and publish the report.
    for (unsigned s = 0; s < p.shards; ++s) {
        for (StagedSource *src : slots[s].staged) {
            if (src->highWater() > slots[s].metrics.pregenHighWater)
                slots[s].metrics.pregenHighWater = src->highWater();
        }
    }
    rep.shard.clear();
    for (unsigned s = 0; s < p.shards; ++s)
        rep.shard.push_back(slots[s].metrics);
}

} // namespace par
} // namespace nvo
