/**
 * @file
 * Shard topology: how the simulated machine's domains map onto the
 * engine's shared-nothing shards.
 *
 * Two domain families exist (ISSUE/ROADMAP item 1):
 *
 *  - per-VD domains: a VD's cores plus their L1s and the VD's L2.
 *    VDs are assigned to shards in contiguous ascending blocks so
 *    that walking shards 0..N-1 and, inside each shard, its VDs and
 *    cores in ascending order reproduces the sequential engine's
 *    core-major order exactly;
 *  - LLC-slice + OMC domains: slice s and OMC partition s (the MNM
 *    geometry ties them 1:1) are assigned to shards by the same
 *    block rule, so cross-shard traffic accounting can attribute a
 *    version emission to "VD domain -> slice domain" and decide
 *    whether it crossed a shard boundary.
 *
 * Domain ids are flat: 0..numVds-1 name the VDs, numVds..numVds+
 * numSlices-1 name the slice/OMC domains (matching the id scheme of
 * Hierarchy::TrafficSink).
 */

#ifndef NVO_PAR_SHARD_HH
#define NVO_PAR_SHARD_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace nvo
{
namespace par
{

class ShardMap
{
  public:
    ShardMap() = default;

    ShardMap(unsigned num_shards, unsigned num_vds,
             unsigned num_slices, unsigned cores_per_vd)
        : shards(num_shards), vds(num_vds), slices(num_slices),
          coresPerVd_(cores_per_vd)
    {
        nvo_assert(shards >= 1 && shards <= vds,
                   "par.shards must be in [1, numVds]");
    }

    unsigned numShards() const { return shards; }
    unsigned numVds() const { return vds; }
    unsigned numSlices() const { return slices; }
    unsigned coresPerVd() const { return coresPerVd_; }
    unsigned numCores() const { return vds * coresPerVd_; }

    /** Balanced contiguous block partition: shard s owns VDs
     *  [firstVd(s), firstVd(s+1)). */
    unsigned
    firstVd(unsigned shard) const
    {
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(shard) * vds) / shards);
    }

    unsigned
    shardOfVd(unsigned vd) const
    {
        nvo_assert(vd < vds);
        // Inverse of the block rule above.
        unsigned s = static_cast<unsigned>(
            (static_cast<std::uint64_t>(vd) * shards + shards - 1) /
            vds);
        while (s < shards - 1 && vd >= firstVd(s + 1))
            ++s;
        while (s > 0 && vd < firstVd(s))
            --s;
        return s;
    }

    unsigned
    shardOfSlice(unsigned slice) const
    {
        nvo_assert(slice < slices);
        // Same block rule over the slice/OMC domains.
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(slice) * shards) / slices);
    }

    unsigned
    shardOfCore(unsigned core) const
    {
        return shardOfVd(core / coresPerVd_);
    }

    /** Flat domain ids (TrafficSink encoding). */
    unsigned domainOfVd(unsigned vd) const { return vd; }
    unsigned
    domainOfSlice(unsigned slice) const
    {
        return vds + slice;
    }

    unsigned
    shardOfDomain(unsigned domain) const
    {
        return domain < vds ? shardOfVd(domain)
                            : shardOfSlice(domain - vds);
    }

    /** Cores of @p shard, ascending (== sequential engine order). */
    std::vector<unsigned>
    coresOf(unsigned shard) const
    {
        std::vector<unsigned> out;
        unsigned lo = firstVd(shard) * coresPerVd_;
        unsigned hi = (shard + 1 == shards ? vds : firstVd(shard + 1)) *
                      coresPerVd_;
        for (unsigned c = lo; c < hi; ++c)
            out.push_back(c);
        return out;
    }

  private:
    unsigned shards = 1;
    unsigned vds = 1;
    unsigned slices = 1;
    unsigned coresPerVd_ = 1;
};

/** Per-shard engine metrics (EngineReport rows; never mixed into
 *  RunStats so stats JSON stays bit-identical to the sequential
 *  engine). */
struct ShardMetrics
{
    std::uint64_t quanta = 0;          ///< token turns taken
    std::uint64_t coresRun = 0;        ///< core->runUntil calls
    std::uint64_t grantWaitSpins = 0;  ///< idle probes before a grant
    std::uint64_t pregenBatches = 0;   ///< batches staged while idle
    std::uint64_t pregenHighWater = 0; ///< deepest staged-ring depth
    std::uint64_t xSent = 0;           ///< cross-shard notes posted
    std::uint64_t xReceived = 0;       ///< notes drained at barriers
    std::uint64_t xDropped = 0;        ///< notes lost to a full ring
    std::uint64_t xLocal = 0;          ///< intra-shard traffic
    std::uint64_t xRingHighWater = 0;  ///< deepest inbound ring depth
    std::uint64_t xByKind[3] = {0, 0, 0}; ///< received, by XKind
};

} // namespace par
} // namespace nvo

#endif // NVO_PAR_SHARD_HH
