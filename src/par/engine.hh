/**
 * @file
 * Shared-nothing shard execution engine (ROADMAP item 1).
 *
 * Partitions the System step loop into shards — contiguous VD blocks
 * (cores + L1/L2) plus their LLC-slice/OMC domains — each owned by
 * one worker thread holding the shard's ShardCap for the duration of
 * its turn. Shards exchange everything (the execution token,
 * cross-shard traffic notes) through bounded SPSC rings; the quantum
 * barrier drains the rings in fixed shard order, so the engine's
 * externally visible results are bit-identical to the sequential
 * engine for the same seed (tests/test_par.cc proves it byte-wise on
 * exported stats JSON).
 *
 * Determinism argument (docs/PARALLELISM.md in full): the simulated
 * machine is globally coherent — cores share LLC slices (replacement
 * order is visible), the directory snoops across VDs, and a single
 * SeqNo stream orders stores — so any schedule that reorders two
 * cores' hierarchy accesses can change simulated state. The engine
 * therefore serializes *simulated* work on an execution token passed
 * shard 0 -> 1 -> ... -> N-1 each quantum (exactly the sequential
 * core-major order) and extracts host parallelism from everything
 * off that critical path: workload pre-generation for generation-
 * independent workloads (par/pregen.hh) runs on idle workers
 * concurrently with other shards' token turns, and whole independent
 * simulations fan out process-level (par/procpool.hh, `jobs=N`).
 *
 * The token's ring hops are release/acquire edges, so every touch of
 * shared simulator state is ordered without a single mutex — which
 * is also what makes the engine clean under ThreadSanitizer and the
 * ShardCap owner audit.
 */

#ifndef NVO_PAR_ENGINE_HH
#define NVO_PAR_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/thread_safety.hh"
#include "common/types.hh"
#include "par/msg.hh"
#include "par/pregen.hh"
#include "par/ring.hh"
#include "par/shard.hh"

namespace nvo
{

class Core;
class WorkloadBase;

namespace obs
{
struct Counter;
struct HistMetric;
} // namespace obs

namespace par
{

/** Engine-side metrics, kept out of RunStats on purpose: the stats
 *  JSON of a par run must stay byte-identical to the sequential
 *  engine's (the determinism contract). */
struct EngineReport
{
    unsigned shards = 0;
    unsigned threads = 0;
    bool pregen = false;
    std::uint64_t quanta = 0;    ///< barriers completed
    std::uint64_t tokens = 0;    ///< grant hops (== quanta * shards)
    std::vector<ShardMetrics> shard;

    std::uint64_t
    totalCross() const
    {
        std::uint64_t n = 0;
        for (const auto &m : shard)
            n += m.xReceived + m.xDropped;
        return n;
    }

    std::uint64_t
    totalLocal() const
    {
        std::uint64_t n = 0;
        for (const auto &m : shard)
            n += m.xLocal;
        return n;
    }

    std::uint64_t
    totalPregen() const
    {
        std::uint64_t n = 0;
        for (const auto &m : shard)
            n += m.pregenBatches;
        return n;
    }
};

class ShardEngine : public Hierarchy::TrafficSink
{
  public:
    struct Params
    {
        /** Shards (clamped to numVds by the System). */
        unsigned shards = 1;
        /** Worker threads; 0 = one per shard. */
        unsigned threads = 0;
        /** Capacity of each shard's inbound traffic ring. */
        std::size_t trafficRing = 1024;
        /** Staged batches per core (pre-generation depth). */
        std::size_t pregenRing = 64;
        /** Enable pre-generation for independentGen() workloads. */
        bool pregen = true;
    };

    ShardEngine(const Params &params, WorkloadBase &workload,
                unsigned num_vds, unsigned num_slices,
                unsigned cores_per_vd);
    ~ShardEngine() override;

    ShardEngine(const ShardEngine &) = delete;
    ShardEngine &operator=(const ShardEngine &) = delete;

    /** RefSource the System must hand core @p core (staged when the
     *  workload's generator is confinement-certified, else a plain
     *  forwarder to the workload). */
    RefSource &sourceFor(unsigned core);

    /** Bind the built cores and start the workers (call once, after
     *  core construction). */
    void start(const std::vector<Core *> &cores);

    /**
     * Run every core to @p quantum_end by circulating the execution
     * token through the shards, then drain the traffic rings in shard
     * order. Rethrows (on this thread) the first exception a shard's
     * core raised — e.g. an injected CrashFault — after the token has
     * completed its round, so crash campaigns behave exactly as under
     * the sequential engine.
     */
    void runQuantum(Cycle quantum_end);

    /** Join the workers and publish the final per-shard metric rows
     *  (idempotent; implied by destruction). No runQuantum after. */
    void stop() { stopWorkers(); }

    const EngineReport &report() const { return rep; }
    const ShardMap &map() const { return map_; }

    /** Hierarchy::TrafficSink: called by the token holder. */
    void note(unsigned from_domain, unsigned to_domain,
              Hierarchy::XTraffic kind) override;

  private:
    struct Slot
    {
        ShardCap cap;
        std::vector<Core *> cores;
        std::vector<StagedSource *> staged;
        std::unique_ptr<SpscRing<XMsg>> xring;
        ShardMetrics metrics;
        std::exception_ptr error;
        unsigned pregenCursor = 0;
    };

    void workerMain(unsigned worker);
    void runShard(const Grant &g);
    void forwardToken(const Grant &g, bool poisoned);
    /** One unit of idle work; returns true when something was done. */
    bool idleWork(unsigned worker);
    void pushGrant(unsigned worker, Grant g);
    void stopWorkers();

    Params p;
    ShardMap map_;
    std::vector<Slot> slots;
    std::vector<std::unique_ptr<StagedSource>> sources;
    std::vector<std::thread> workers;
    std::vector<std::unique_ptr<SpscRing<Grant>>> grantRings;
    SpscRing<Done> doneRing;

    /** Parking lot for idle workers and the waiting coordinator; the
     *  rings carry the data, the condvar only wakes sleepers. */
    std::mutex wakeMutex;
    std::condition_variable wakeCv;

    /** Host-scope telemetry (obs/registry.hh): engine-side behaviour
     *  that varies with the host schedule, so it is exported to
     *  Prometheus/JSONL but — like EngineReport — never enters the
     *  stats JSON (the determinism contract). Recorded only by the
     *  coordinator at the quantum barrier. */
    obs::HistMetric *hRingDrained_ = nullptr;
    obs::HistMetric *hRingHighWater_ = nullptr;
    obs::Counter *cTokenWait_ = nullptr;

    EngineReport rep;
    std::uint64_t seq = 0;
    bool started = false;
    bool stopped = false;
};

} // namespace par
} // namespace nvo

#endif // NVO_PAR_ENGINE_HH
