/**
 * @file
 * Process-level fan-out for independent simulations.
 *
 * The shard engine parallelizes *inside* one simulation while keeping
 * its results bit-identical, which caps its speedup at what the token
 * chain leaves off the critical path. Campaign-style drivers (crash
 * campaigns, figure sweeps) have a far better lever: their runs are
 * completely independent, so forkMap() fans the task list across
 * forked worker processes — each child a full copy-on-write image of
 * the parent, no shared simulator state at all — and ships each
 * task's result back over a pipe as an opaque byte payload.
 *
 * Determinism: tasks are assigned round-robin (task t -> worker
 * t % jobs) and results are returned indexed by task, so the caller
 * sees the same result vector regardless of the job count; callers
 * keep their RNG draws in the parent (e.g. the campaign pre-draws
 * every trial plan) so child scheduling cannot perturb seeded
 * streams.
 *
 * jobs <= 1 (or a single task) runs everything inline in the calling
 * process — identical behavior, no fork.
 */

#ifndef NVO_PAR_PROCPOOL_HH
#define NVO_PAR_PROCPOOL_HH

#include <functional>
#include <string>
#include <vector>

namespace nvo
{
namespace par
{

/**
 * Run tasks 0..@p num_tasks-1 through @p fn across @p jobs forked
 * workers and return the payloads in task order.
 *
 * @p child_init, when set, runs once in each child before its first
 * task (e.g. to silence per-trial log lines that would interleave
 * between processes). It never runs in the inline path.
 *
 * A worker that exits abnormally or drops a task payload is fatal:
 * campaign results must be complete to be meaningful.
 */
std::vector<std::string>
forkMap(unsigned num_tasks, unsigned jobs,
        const std::function<std::string(unsigned task)> &fn,
        const std::function<void(unsigned worker)> &child_init = {});

} // namespace par
} // namespace nvo

#endif // NVO_PAR_PROCPOOL_HH
