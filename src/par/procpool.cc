#include "par/procpool.hh"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"

namespace nvo
{
namespace par
{

namespace
{

/** Write exactly @p len bytes (pipes may take partial writes). */
void
writeAll(int fd, const void *buf, std::size_t len)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // Dying quietly here would lose the payload; the parent
            // notices the missing task and reports it fatally.
            ::_exit(3);
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

/** Read exactly @p len bytes; false on clean EOF at a frame start. */
bool
readAll(int fd, void *buf, std::size_t len, bool *eof_at_start)
{
    char *p = static_cast<char *>(buf);
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, p + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0) {
            if (eof_at_start)
                *eof_at_start = got == 0;
            return false;
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::vector<std::string>
forkMap(unsigned num_tasks, unsigned jobs,
        const std::function<std::string(unsigned)> &fn,
        const std::function<void(unsigned)> &child_init)
{
    std::vector<std::string> results(num_tasks);
    if (num_tasks == 0)
        return results;
    if (jobs > num_tasks)
        jobs = num_tasks;
    if (jobs <= 1) {
        for (unsigned t = 0; t < num_tasks; ++t)
            results[t] = fn(t);
        return results;
    }

    struct Worker
    {
        pid_t pid;
        int fd;
    };
    std::vector<Worker> workers;

    for (unsigned w = 0; w < jobs; ++w) {
        int fds[2];
        if (::pipe(fds) != 0)
            fatal("forkMap: pipe failed: %s", std::strerror(errno));
        // Stdio buffers are duplicated into the child by fork; flush
        // them first so buffered output is not emitted twice.
        std::fflush(nullptr);
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("forkMap: fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            ::close(fds[0]);
            if (child_init)
                child_init(w);
            for (unsigned t = w; t < num_tasks; t += jobs) {
                std::string payload = fn(t);
                std::uint32_t hdr[2] = {
                    t, static_cast<std::uint32_t>(payload.size())};
                writeAll(fds[1], hdr, sizeof(hdr));
                writeAll(fds[1], payload.data(), payload.size());
            }
            ::close(fds[1]);
            std::fflush(nullptr);
            ::_exit(0);
        }
        ::close(fds[1]);
        workers.push_back({pid, fds[0]});
    }

    // Children are independent, so draining them one at a time cannot
    // deadlock: a child blocked on a full pipe simply waits until its
    // turn to be drained.
    std::vector<bool> have(num_tasks, false);
    for (const Worker &worker : workers) {
        for (;;) {
            std::uint32_t hdr[2];
            bool eof = false;
            if (!readAll(worker.fd, hdr, sizeof(hdr), &eof)) {
                if (!eof)
                    fatal("forkMap: truncated result frame from "
                          "worker pid %d",
                          static_cast<int>(worker.pid));
                break;
            }
            if (hdr[0] >= num_tasks)
                fatal("forkMap: bogus task id %u in result frame",
                      static_cast<unsigned>(hdr[0]));
            std::string payload(hdr[1], '\0');
            if (hdr[1] > 0 &&
                !readAll(worker.fd, &payload[0], hdr[1], nullptr))
                fatal("forkMap: truncated payload for task %u",
                      static_cast<unsigned>(hdr[0]));
            results[hdr[0]] = std::move(payload);
            have[hdr[0]] = true;
        }
        ::close(worker.fd);
    }

    for (const Worker &worker : workers) {
        int status = 0;
        if (::waitpid(worker.pid, &status, 0) < 0)
            fatal("forkMap: waitpid failed: %s",
                  std::strerror(errno));
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            fatal("forkMap: worker pid %d exited abnormally "
                  "(status 0x%x)",
                  static_cast<int>(worker.pid), status);
    }

    for (unsigned t = 0; t < num_tasks; ++t)
        if (!have[t])
            fatal("forkMap: no result for task %u", t);
    return results;
}

} // namespace par
} // namespace nvo
