/**
 * @file
 * Software undo logging baseline (paper Sec. VI-B, "SW Logging").
 *
 * Before the first write to a cache line in an epoch, the library
 * synchronously writes a 72-byte undo entry (64 B old data + 8 B tag)
 * to NVM behind a persist barrier — the storing core stalls for the
 * full device write. At every epoch boundary the tracked write set is
 * flushed synchronously. Write amplification: log + data.
 */

#ifndef NVO_BASELINES_SW_LOG_HH
#define NVO_BASELINES_SW_LOG_HH

#include <unordered_set>

#include "baselines/scheme.hh"
#include "mem/nvm_model.hh"

namespace nvo
{

class SwLogScheme : public Scheme
{
  public:
    SwLogScheme(const Config &cfg, NvmModel &nvm_model,
                RunStats &run_stats);

    const char *name() const override { return "swlog"; }
    Cycle onStore(unsigned core, unsigned vd, Addr line_addr,
                  Cycle now) override;
    Cycle finalize(Cycle now) override;
    EpochWide globalEpoch() const override { return epoch_; }
    std::uint64_t epochsCompleted() const override
    {
        return epoch_ - 1;
    }

  private:
    /** Synchronous epoch-boundary flush of the write set. */
    Cycle flushEpoch(Cycle now);

    NvmModel &nvm;
    RunStats &stats;
    std::uint64_t storesPerEpoch;
    std::uint64_t storesThisEpoch = 0;
    EpochWide epoch_ = 1;
    Addr logCursor;
    std::unordered_set<Addr> loggedLines;
};

} // namespace nvo

#endif // NVO_BASELINES_SW_LOG_HH
