/**
 * @file
 * Snapshot-scheme interface. A Scheme models how dirty data becomes
 * persistent on NVM: NVOverlay (CST + MNM), the logging and shadowing
 * baselines of Sec. VI-B, or the no-snapshotting baseline.
 */

#ifndef NVO_BASELINES_SCHEME_HH
#define NVO_BASELINES_SCHEME_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace nvo
{

class Auditor;
class Hierarchy;
class NvmModel;

class Scheme
{
  public:
    virtual ~Scheme() = default;

    virtual const char *name() const = 0;

    /** Bind the hierarchy once the System has built it. */
    virtual void attach(Hierarchy &hierarchy) { hier = &hierarchy; }

    /**
     * Called before every store commits. Implementations track write
     * sets, emit log entries, and advance epochs. Returns stall
     * cycles charged to the storing core (persist barriers).
     */
    virtual Cycle onStore(unsigned core, unsigned vd, Addr line_addr,
                          Cycle now) = 0;

    /** Background processing once per quantum (walkers, merges). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Clean end of run: flush outstanding state so the final epoch
     * becomes persistent. Returns the cycle at which everything is
     * durable.
     */
    virtual Cycle finalize(Cycle now) { return now; }

    /** Scheme's notion of the current (global) epoch. */
    virtual EpochWide globalEpoch() const { return 0; }

    /** Epochs completed so far (for experiment bookkeeping). */
    virtual std::uint64_t epochsCompleted() const { return 0; }

    /**
     * Refresh derived RunStats aggregates (table sizes, pool usage)
     * from live structures. The harness calls this before sampling
     * the per-epoch metric series and before printing final stats;
     * schemes without derived aggregates need nothing.
     */
    virtual void updateStats() {}

    /**
     * Register this scheme's invariant sweeps (NVO_AUDIT) with the
     * System's auditor. The default registers nothing; schemes with
     * protocol state (NVOverlay) add their own sweeps.
     */
    virtual void registerAudits(Auditor &auditor) { (void)auditor; }

    /**
     * Drain the pending system-wide stall (epoch-boundary flushes
     * stall every core, not just the one whose store crossed the
     * boundary). The System applies it to all cores each quantum.
     */
    Cycle
    takeGlobalStall()
    {
        Cycle s = globalStallPending;
        globalStallPending = 0;
        return s;
    }

  protected:
    void addGlobalStall(Cycle s) { globalStallPending += s; }

    Hierarchy *hier = nullptr;
    Cycle globalStallPending = 0;
};

/**
 * Factory: build a scheme by name. Valid names: "none", "nvoverlay",
 * "swlog", "swshadow", "hwshadow", "picl", "picl-l2".
 */
std::unique_ptr<Scheme> makeScheme(const std::string &name,
                                   const Config &cfg, NvmModel &nvm,
                                   RunStats &stats);

/** The no-snapshotting baseline (ideal NVM system of Fig. 11). */
class NullScheme : public Scheme
{
  public:
    const char *name() const override { return "none"; }

    Cycle
    onStore(unsigned, unsigned, Addr, Cycle) override
    {
        return 0;
    }
};

} // namespace nvo

#endif // NVO_BASELINES_SCHEME_HH
