#include "baselines/sw_shadow.hh"

namespace nvo
{

namespace
{
constexpr Addr shadowBaseA = 1ull << 43;
constexpr Addr shadowBaseB = 1ull << 44;
constexpr Addr mapBase = 1ull << 45;
} // namespace

SwShadowScheme::SwShadowScheme(const Config &cfg, NvmModel &nvm_model,
                               RunStats &run_stats)
    : nvm(nvm_model), stats(run_stats)
{
    storesPerEpoch = cfg.getU64("epoch.stores_refs", 1u << 17);
    txnStores = cfg.getU64("sw.txn_stores", 16);
}

Cycle
SwShadowScheme::onStore(unsigned core, unsigned vd, Addr line_addr,
                        Cycle now)
{
    (void)core;
    (void)vd;
    Cycle stall = 0;
    txnDirty.insert(line_addr);

    // Romulus-style shadowing: the next transaction starts only after
    // the working set of the previous one is persistent, so every
    // txnStores stores the thread flushes its transaction write set
    // and the mapping update behind a barrier.
    if (++storesThisTxn >= txnStores) {
        storesThisTxn = 0;
        stall += flushTxn(now);
    }

    if (++storesThisEpoch >= storesPerEpoch) {
        storesThisEpoch = 0;
        shadowSide = !shadowSide;
        ++epoch_;
        ++stats.epochAdvances;
    }
    return stall;
}

Cycle
SwShadowScheme::flushTxn(Cycle now)
{
    Addr base = shadowSide ? shadowBaseB : shadowBaseA;
    Cycle done = now;
    for (Addr line : txnDirty) {
        auto issue = nvm.write(base + line, lineBytes, now,
                               NvmWriteKind::Data);
        done = std::max(done, issue.completion);
        ++stats.evictReason[static_cast<std::size_t>(
            EvictReason::EpochFlush)];
    }
    // Persistent mapping-table update ordered after the data flush.
    std::uint64_t map_bytes = 8 * txnDirty.size();
    auto issue = nvm.write(mapBase + (mapCursor % (1ull << 26)),
                           static_cast<std::uint32_t>(
                               std::max<std::uint64_t>(map_bytes, 8)),
                           done, NvmWriteKind::Mapping);
    mapCursor += map_bytes;
    done = issue.completion;
    txnDirty.clear();
    return done - now;
}

Cycle
SwShadowScheme::finalize(Cycle now)
{
    Cycle stall = flushTxn(now);
    ++epoch_;
    return now + stall;
}

} // namespace nvo
