/**
 * @file
 * Software shadow paging baseline (paper Sec. VI-B, "SW Shadow").
 *
 * Romulus-style: software tracks the transaction write set, flushes
 * dirty lines to shadow locations and synchronously updates a
 * persistent mapping table behind a barrier at every transaction
 * boundary — the next transaction cannot start before the previous
 * one is durable. No log: data is written once, plus mapping
 * metadata.
 */

#ifndef NVO_BASELINES_SW_SHADOW_HH
#define NVO_BASELINES_SW_SHADOW_HH

#include <unordered_set>

#include "baselines/scheme.hh"
#include "mem/nvm_model.hh"

namespace nvo
{

class SwShadowScheme : public Scheme
{
  public:
    SwShadowScheme(const Config &cfg, NvmModel &nvm_model,
                   RunStats &run_stats);

    const char *name() const override { return "swshadow"; }
    Cycle onStore(unsigned core, unsigned vd, Addr line_addr,
                  Cycle now) override;
    Cycle finalize(Cycle now) override;
    EpochWide globalEpoch() const override { return epoch_; }
    std::uint64_t epochsCompleted() const override
    {
        return epoch_ - 1;
    }

  private:
    /** Synchronous transaction-boundary flush. */
    Cycle flushTxn(Cycle now);

    NvmModel &nvm;
    RunStats &stats;
    std::uint64_t storesPerEpoch;
    std::uint64_t txnStores;
    std::uint64_t storesThisEpoch = 0;
    std::uint64_t storesThisTxn = 0;
    EpochWide epoch_ = 1;
    bool shadowSide = false;   ///< ping-pong shadow region
    Addr mapCursor = 0;
    std::unordered_set<Addr> txnDirty;
};

} // namespace nvo

#endif // NVO_BASELINES_SW_SHADOW_HH
