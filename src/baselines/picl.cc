#include "baselines/picl.hh"

namespace nvo
{

namespace
{
constexpr std::uint32_t logEntryBytes = 72;
constexpr Addr logRegionBase = 1ull << 42;
constexpr Addr dataRegionBase = 1ull << 43;
} // namespace

PiclScheme::PiclScheme(const Config &cfg, NvmModel &nvm_model,
                       RunStats &run_stats, bool l2_level)
    : nvm(nvm_model), stats(run_stats), l2Level(l2_level),
      tags(l2_level
               ? cfg.getU64("picl.l2_tag_bytes", 8ull * 256 * 1024)
               : cfg.getU64("picl.tag_bytes", 32ull * 1024 * 1024),
           l2_level
               ? static_cast<unsigned>(cfg.getU64("picl.l2_ways", 8))
               : static_cast<unsigned>(cfg.getU64("picl.ways", 16)))
{
    storesPerEpoch = cfg.getU64("epoch.stores_refs", 1u << 17);
    walkerEnabled = cfg.getBool("picl.walker_enabled", true);
    drainPerTick = static_cast<unsigned>(
        cfg.getU64("picl.drain_per_tick", 256));
}

Cycle
PiclScheme::writeLog(Cycle now)
{
    auto issue = nvm.write(logRegionBase + (logCursor % (1ull << 28)),
                           logEntryBytes, now, NvmWriteKind::Log);
    logCursor += logEntryBytes;
    ++stats.evictReason[static_cast<std::size_t>(
        EvictReason::Coherence)];
    return issue.stall;
}

Cycle
PiclScheme::writeData(Addr line_addr, Cycle now, EvictReason why)
{
    auto issue = nvm.write(dataRegionBase + line_addr, lineBytes, now,
                           NvmWriteKind::Data);
    ++stats.evictReason[static_cast<std::size_t>(why)];
    return issue.stall;
}

void
PiclScheme::scheduleWalk()
{
    if (!walkerEnabled)
        return;
    // ACS: collect dirty lines from completed epochs; drain them to
    // NVM over the following ticks (this is the epoch-boundary
    // bandwidth surge of Fig. 17).
    tags.forEachValid([&](CacheLine &line) {
        if (line.dirty && line.oid < epoch_) {
            drainQueue.push_back(line.addr);
            line.dirty = false;
        }
    });
}

Cycle
PiclScheme::onStore(unsigned core, unsigned vd, Addr line_addr,
                    Cycle now)
{
    (void)core;
    (void)vd;
    Cycle stall = 0;

    CacheLine *line = tags.lookup(line_addr);
    if (line) {
        if (line->seq != epoch_) {
            // First store to this line in the current epoch: emit an
            // undo log entry (background).
            stall += writeLog(now);
            line->seq = epoch_;
        }
        if (line->dirty && line->oid < epoch_) {
            // The previous epoch's version must be persisted before
            // it is overwritten (same role as NVOverlay's
            // store-eviction, but a direct NVM write here).
            stall += writeData(line_addr, now, EvictReason::StoreEvict);
        }
        line->dirty = true;
        line->oid = epoch_;
    } else {
        line = tags.allocSlot(line_addr);
        if (line->valid() && line->dirty) {
            // A dirty line falling out of the on-chip version
            // tracking structure must be persisted now.
            stall += writeData(line->addr, now, EvictReason::Capacity);
        }
        line->reset();
        line->addr = line_addr;
        line->dirty = true;
        line->oid = epoch_;
        line->seq = epoch_;
        tags.lookup(line_addr);
        stall += writeLog(now);
    }

    if (++storesThisEpoch >= storesPerEpoch) {
        storesThisEpoch = 0;
        ++epoch_;
        ++stats.epochAdvances;
        scheduleWalk();
    }
    return stall;
}

void
PiclScheme::tick(Cycle now)
{
    unsigned budget = drainPerTick;
    while (budget > 0 && !drainQueue.empty()) {
        writeData(drainQueue.front(), now, EvictReason::TagWalk);
        ++stats.tagWalkWriteBacks;
        drainQueue.pop_front();
        --budget;
    }
}

Cycle
PiclScheme::finalize(Cycle now)
{
    ++epoch_;
    scheduleWalk();
    while (!drainQueue.empty())
        tick(now);
    if (!walkerEnabled) {
        // Without the walker, finalize still flushes dirty state —
        // as a shutdown flush, not as walk traffic.
        tags.forEachValid([&](CacheLine &line) {
            if (line.dirty) {
                writeData(line.addr, now, EvictReason::EpochFlush);
                line.dirty = false;
            }
        });
    }
    return std::max(now, nvm.drainCompletion());
}

} // namespace nvo
