#include "baselines/scheme.hh"

#include "baselines/hw_shadow.hh"
#include "baselines/picl.hh"
#include "baselines/sw_log.hh"
#include "baselines/sw_shadow.hh"
#include "common/log.hh"
#include "nvoverlay/nvoverlay_scheme.hh"

namespace nvo
{

std::unique_ptr<Scheme>
makeScheme(const std::string &name, const Config &cfg, NvmModel &nvm,
           RunStats &stats)
{
    if (name == "none")
        return std::make_unique<NullScheme>();
    if (name == "nvoverlay")
        return std::make_unique<NVOverlayScheme>(cfg, nvm, stats);
    if (name == "swlog")
        return std::make_unique<SwLogScheme>(cfg, nvm, stats);
    if (name == "swshadow")
        return std::make_unique<SwShadowScheme>(cfg, nvm, stats);
    if (name == "hwshadow")
        return std::make_unique<HwShadowScheme>(cfg, nvm, stats);
    if (name == "picl")
        return std::make_unique<PiclScheme>(cfg, nvm, stats, false);
    if (name == "picl-l2")
        return std::make_unique<PiclScheme>(cfg, nvm, stats, true);
    fatal("unknown scheme '%s' (want none, nvoverlay, swlog, swshadow,"
          " hwshadow, picl, picl-l2)",
          name.c_str());
}

} // namespace nvo
