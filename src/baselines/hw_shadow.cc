#include "baselines/hw_shadow.hh"

namespace nvo
{

namespace
{
constexpr Addr shadowBase = 1ull << 43;
constexpr Addr shadowStride = 1ull << 40;   // three version regions
constexpr Addr mapBase = 1ull << 45;
} // namespace

HwShadowScheme::HwShadowScheme(const Config &cfg, NvmModel &nvm_model,
                               RunStats &run_stats)
    : nvm(nvm_model), stats(run_stats)
{
    storesPerEpoch = cfg.getU64("epoch.stores_refs", 1u << 17);
}

Cycle
HwShadowScheme::onStore(unsigned core, unsigned vd, Addr line_addr,
                        Cycle now)
{
    (void)core;
    (void)vd;
    dirtyLines.insert(line_addr);
    if (++storesThisEpoch >= storesPerEpoch) {
        storesThisEpoch = 0;
        addGlobalStall(epochBoundary(now));
        ++epoch_;
        ++stats.epochAdvances;
    }
    return 0;
}

Cycle
HwShadowScheme::epochBoundary(Cycle now)
{
    Cycle stall = 0;

    // Rule 1: the previous epoch's background persist must have
    // finished before this boundary can proceed.
    if (prevPersistDone > now) {
        stall += prevPersistDone - now;
        now = prevPersistDone;
    }

    // Background data persist of this epoch's write set (overlapped
    // with the next epoch's execution).
    Addr base = shadowBase + static_cast<Addr>(shadowSlot) *
                                 shadowStride;
    shadowSlot = (shadowSlot + 1) % 3;
    Cycle persist_done = now;
    for (Addr line : dirtyLines) {
        auto issue = nvm.write(base + line, lineBytes, now,
                               NvmWriteKind::Data);
        persist_done = std::max(persist_done, issue.completion);
        ++stats.evictReason[static_cast<std::size_t>(
            EvictReason::EpochFlush)];
    }
    prevPersistDone = persist_done;

    // Rule 2: the centralized mapping-table update is synchronous
    // (non-overlappable, Sec. II-C): 8 B per dirty line, written as
    // a serialized stream of 64 B chunks.
    std::uint64_t map_bytes = 8 * dirtyLines.size();
    Cycle done = now;
    while (map_bytes > 0) {
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(map_bytes, lineBytes));
        auto issue = nvm.write(mapBase + (mapCursor % (1ull << 26)),
                               chunk, done, NvmWriteKind::Mapping);
        done = issue.completion;
        mapCursor += chunk;
        map_bytes -= chunk;
    }
    stall += done - now;

    dirtyLines.clear();
    return stall;
}

Cycle
HwShadowScheme::finalize(Cycle now)
{
    Cycle stall = epochBoundary(now);
    ++epoch_;
    Cycle done = std::max(now + stall, prevPersistDone);
    return done;
}

} // namespace nvo
