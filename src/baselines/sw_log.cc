#include "baselines/sw_log.hh"

namespace nvo
{

namespace
{
constexpr std::uint32_t logEntryBytes = 72;   // 64 B data + 8 B tag
constexpr Addr logRegionBase = 1ull << 42;
constexpr Addr dataRegionBase = 1ull << 43;
} // namespace

SwLogScheme::SwLogScheme(const Config &cfg, NvmModel &nvm_model,
                         RunStats &run_stats)
    : nvm(nvm_model), stats(run_stats), logCursor(logRegionBase)
{
    storesPerEpoch = cfg.getU64("epoch.stores_refs", 1u << 17);
}

Cycle
SwLogScheme::onStore(unsigned core, unsigned vd, Addr line_addr,
                     Cycle now)
{
    (void)core;
    (void)vd;
    Cycle stall = 0;

    // Undo logging persists the old value behind a barrier before
    // every write (Table I: per-write persistence barrier): the
    // pipeline stalls until the log entry is durable.
    auto issue = nvm.write(logCursor, logEntryBytes, now,
                           NvmWriteKind::Log);
    logCursor += logEntryBytes;
    if (logCursor >= dataRegionBase)
        logCursor = logRegionBase;   // circular log region
    stall += (issue.completion - now) + issue.stall;
    ++stats.evictReason[static_cast<std::size_t>(
        EvictReason::Coherence)];
    loggedLines.insert(line_addr);

    if (++storesThisEpoch >= storesPerEpoch) {
        storesThisEpoch = 0;
        addGlobalStall(flushEpoch(now + stall));
        ++epoch_;
        ++stats.epochAdvances;
    }
    return stall;
}

Cycle
SwLogScheme::flushEpoch(Cycle now)
{
    // clwb each dirty line, then sfence: the thread waits for all of
    // them to complete before the next epoch starts.
    Cycle done = now;
    for (Addr line : loggedLines) {
        auto issue = nvm.write(dataRegionBase + line, lineBytes, now,
                               NvmWriteKind::Data);
        done = std::max(done, issue.completion);
        ++stats.evictReason[static_cast<std::size_t>(
            EvictReason::EpochFlush)];
    }
    loggedLines.clear();
    return done - now;
}

Cycle
SwLogScheme::finalize(Cycle now)
{
    Cycle stall = flushEpoch(now);
    ++epoch_;
    return now + stall;
}

} // namespace nvo
