/**
 * @file
 * PiCL baseline (Nguyen & Wentzlaff, MICRO'18), plus the PiCL-L2
 * variant (paper Sec. VI-B).
 *
 * Hardware undo logging: an OID-tagged inclusive cache detects the
 * first store to a line in each epoch and emits a 72-byte undo log
 * entry to NVM in the background; after an epoch ends, a tag walker
 * (ACS) writes the previous epoch's dirty lines back to NVM. Both
 * log and data reach the device, giving ~2x write amplification.
 * PiCL needs an inclusive monolithic LLC for its tags; PiCL-L2 runs
 * the same mechanism at the (much smaller) combined L2 level,
 * modelling large multicores without an inclusive LLC — a smaller
 * on-chip version working set means more evictions and log writes.
 *
 * Epochs are globally synchronized; as in the paper's methodology,
 * the cost of reaching that consensus is ignored and only the data
 * path is modelled.
 */

#ifndef NVO_BASELINES_PICL_HH
#define NVO_BASELINES_PICL_HH

#include <deque>

#include "baselines/scheme.hh"
#include "cache/cache_array.hh"
#include "mem/nvm_model.hh"

namespace nvo
{

class PiclScheme : public Scheme
{
  public:
    PiclScheme(const Config &cfg, NvmModel &nvm_model,
               RunStats &run_stats, bool l2_level);

    const char *name() const override
    {
        return l2Level ? "picl-l2" : "picl";
    }
    Cycle onStore(unsigned core, unsigned vd, Addr line_addr,
                  Cycle now) override;
    void tick(Cycle now) override;
    Cycle finalize(Cycle now) override;
    EpochWide globalEpoch() const override { return epoch_; }
    std::uint64_t epochsCompleted() const override
    {
        return epoch_ - 1;
    }

    /** Change the epoch length mid-run (bursty-epoch experiment). */
    void setStoresPerEpoch(std::uint64_t stores)
    {
        storesPerEpoch = stores;
    }

    std::uint64_t drainBacklog() const { return drainQueue.size(); }

  private:
    /** Emit one undo log entry (background). */
    Cycle writeLog(Cycle now);

    /** Write one line of snapshot data back to NVM (background). */
    Cycle writeData(Addr line_addr, Cycle now, EvictReason why);

    /** Schedule the ACS tag walk after an epoch ends. */
    void scheduleWalk();

    NvmModel &nvm;
    RunStats &stats;
    bool l2Level;
    bool walkerEnabled;
    unsigned drainPerTick;
    std::uint64_t storesPerEpoch;
    std::uint64_t storesThisEpoch = 0;
    EpochWide epoch_ = 1;
    Addr logCursor = 0;
    CacheArray tags;
    std::deque<Addr> drainQueue;
};

} // namespace nvo

#endif // NVO_BASELINES_PICL_HH
