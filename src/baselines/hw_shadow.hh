/**
 * @file
 * Hardware shadow paging baseline, ThyNVM-like (paper Sec. VI-B,
 * "HW Shadow").
 *
 * Three-version cache-line-granularity shadowing: persistence of the
 * previous epoch's write set overlaps with execution of the current
 * epoch (background NVM writes), but the centralized mapping table is
 * updated synchronously at every epoch boundary, and a boundary
 * cannot start until the previous epoch's persist completed — these
 * two serializations are what make it slower than NVOverlay while
 * writing slightly fewer bytes (each dirty line exactly once per
 * epoch).
 */

#ifndef NVO_BASELINES_HW_SHADOW_HH
#define NVO_BASELINES_HW_SHADOW_HH

#include <unordered_set>

#include "baselines/scheme.hh"
#include "mem/nvm_model.hh"

namespace nvo
{

class HwShadowScheme : public Scheme
{
  public:
    HwShadowScheme(const Config &cfg, NvmModel &nvm_model,
                   RunStats &run_stats);

    const char *name() const override { return "hwshadow"; }
    Cycle onStore(unsigned core, unsigned vd, Addr line_addr,
                  Cycle now) override;
    Cycle finalize(Cycle now) override;
    EpochWide globalEpoch() const override { return epoch_; }
    std::uint64_t epochsCompleted() const override
    {
        return epoch_ - 1;
    }

  private:
    Cycle epochBoundary(Cycle now);

    NvmModel &nvm;
    RunStats &stats;
    std::uint64_t storesPerEpoch;
    std::uint64_t storesThisEpoch = 0;
    EpochWide epoch_ = 1;
    unsigned shadowSlot = 0;   ///< rotates over three versions
    Cycle prevPersistDone = 0;
    Addr mapCursor = 0;
    std::unordered_set<Addr> dirtyLines;
};

} // namespace nvo

#endif // NVO_BASELINES_HW_SHADOW_HH
