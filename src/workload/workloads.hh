/**
 * @file
 * The twelve evaluation workloads (paper Sec. VI-C).
 *
 * Data-structure benchmarks run an insert-only workload with random
 * keys to mimic bulk insertion into a database index; STAMP kernels
 * are re-implemented as access-pattern-faithful C++ against the
 * sim-heap (same data-structure shapes, read/write mixes, sharing
 * patterns, and working-set sizes; see DESIGN.md substitutions).
 */

#ifndef NVO_WORKLOAD_WORKLOADS_HH
#define NVO_WORKLOAD_WORKLOADS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "tenant/asid.hh"
#include "workload/stamp_common.hh"
#include "workload/workload.hh"

namespace nvo
{

/** std::unordered_map-style chained hash table, global lock. */
class HashTableWorkload : public WorkloadBase
{
  public:
    HashTableWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "hashtable"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    std::uint64_t entries() const { return set.size(); }

  private:
    SimHashSet set;
    double lookupPct;
    Addr lockAddr;
};

/** B+Tree with OLC-style synchronization (no global lock). */
class BTreeWorkload : public WorkloadBase
{
  public:
    BTreeWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "btree"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    /** Validate sorted order and balanced height. */
    bool selfCheck() const;
    std::uint64_t entries() const { return keyCount; }
    unsigned height() const;

  private:
    struct Node
    {
        bool leaf = true;
        Addr simAddr = 0;
        std::vector<std::uint64_t> keys;
        std::vector<std::uint64_t> values;   // leaves
        std::vector<int> children;           // inner nodes
    };

    int allocNode(bool leaf);
    void insert(std::uint64_t key, std::vector<MemRef> &out);
    /** Emit the reference stream of a point lookup. */
    void lookup(std::uint64_t key, std::vector<MemRef> &out) const;
    /** Split child c of parent node pi (refs emitted). */
    void splitChild(int pi, unsigned ci, std::vector<MemRef> &out);
    bool checkNode(int ni, std::uint64_t lo, std::uint64_t hi,
                   unsigned depth, unsigned leaf_depth) const;

    unsigned fanout;
    double lookupPct;
    int root;
    std::uint64_t keyCount = 0;
    std::vector<Node> nodes;
};

/** Adaptive Radix Tree (Node4/16/48/256 with growth). */
class ArtWorkload : public WorkloadBase
{
  public:
    ArtWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "art"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    std::uint64_t entries() const { return keyCount; }
    bool contains(std::uint64_t key) const;

  private:
    enum class NodeType : std::uint8_t { N4, N16, N48, N256, Leaf };

    struct Node
    {
        NodeType type = NodeType::N4;
        Addr simAddr = 0;
        std::uint64_t leafKey = 0;           // Leaf only
        std::vector<std::uint8_t> keys;      // N4/N16
        std::array<std::int16_t, 256> index; // N48/N256 child index
        std::vector<int> children;

        Node() { index.fill(-1); }
    };

    static std::uint64_t nodeBytes(NodeType t);
    int allocNode(NodeType t);
    int findChild(const Node &n, std::uint8_t byte) const;
    /** Add a child, growing the node type if needed; emits refs.
     *  Returns the (possibly new) node index. */
    int addChild(int ni, std::uint8_t byte, int child,
                 std::vector<MemRef> &out);
    void insert(std::uint64_t key, std::vector<MemRef> &out);

    int root;
    std::uint64_t keyCount = 0;
    std::vector<Node> nodes;
};

/** Red-black tree (std::map shape), global lock. */
class RbTreeWorkload : public WorkloadBase
{
  public:
    RbTreeWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "rbtree"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    std::uint64_t entries() const { return keyCount; }
    /** Validate RB invariants (root black, no red-red, equal black
     *  height). */
    bool selfCheck() const;

  private:
    struct Node
    {
        std::uint64_t key = 0;
        Addr simAddr = 0;
        int left = -1, right = -1, parent = -1;
        bool red = true;
    };

    int allocNode(std::uint64_t key);
    void rotateLeft(int x, std::vector<MemRef> &out);
    void rotateRight(int x, std::vector<MemRef> &out);
    void insert(std::uint64_t key, std::vector<MemRef> &out);
    int checkNode(int ni, std::uint64_t lo, std::uint64_t hi,
                  bool parent_red) const;

    int root = -1;
    std::uint64_t keyCount = 0;
    std::vector<Node> nodes;
    Addr lockAddr;
};

/** Grid path router: long read expansions + bursty path commits. */
class LabyrinthWorkload : public WorkloadBase
{
  public:
    LabyrinthWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "labyrinth"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;
    /** Routes derive from rng[thread] + constant grid geometry. */
    bool independentGen() const override { return true; }

  private:
    Addr cellAddr(std::uint64_t x, std::uint64_t y) const;

    std::uint64_t width, height;
    Addr gridBase;
    Addr lockAddr;
};

/** Bayesian structure learning: ad-tree queries, rare graph edits. */
class BayesWorkload : public WorkloadBase
{
  public:
    BayesWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "bayes"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

  private:
    std::uint64_t adtreeBytes;
    std::uint64_t graphNodes;
    Addr adtreeBase, graphBase, lockAddr;
};

/** Delaunay refinement: cavity reads, triangle allocation writes. */
class YadaWorkload : public WorkloadBase
{
  public:
    YadaWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "yada"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

  private:
    struct Tri
    {
        Addr simAddr;
        std::array<std::uint32_t, 3> nbr;
        bool dead = false;
    };

    std::uint32_t allocTri(unsigned thread, Rng &r);

    std::vector<Tri> tris;
    Addr lockAddr;
};

/** Packet reassembly: stream reads + shared fragment-map inserts. */
class IntruderWorkload : public WorkloadBase
{
  public:
    IntruderWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "intruder"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

  private:
    SimHashSet fragments;
    std::uint64_t streamBytes, dictBytes;
    Addr streamBase, dictBase, lockAddr;
    std::vector<std::uint64_t> cursor;   ///< per-thread stream offset
};

/** Travel-reservation OLTP: multi-table read/update transactions. */
class VacationWorkload : public WorkloadBase
{
  public:
    VacationWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "vacation"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

  private:
    static constexpr unsigned numTables = 4;
    std::uint64_t rowsPerTable;
    std::array<Addr, numTables> tableBase;
    std::array<Addr, numTables> tableLock;
};

/** K-means: streaming point scans, membership writes, reductions. */
class KmeansWorkload : public WorkloadBase
{
  public:
    KmeansWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "kmeans"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;
    /** Touches only cursor[thread], rng[thread], const bases. */
    bool independentGen() const override { return true; }

  private:
    std::uint64_t numPoints, numClusters, chunk;
    Addr pointsBase, membershipBase, centroidsBase, lockAddr;
    std::vector<Addr> accumBase;          ///< per-thread accumulators
    std::vector<std::uint64_t> cursor;    ///< per-thread point index
};

/** Gene sequencing: segment dedup phase then overlap matching. */
class GenomeWorkload : public WorkloadBase
{
  public:
    GenomeWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "genome"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

  private:
    SimHashSet segments;
    std::uint64_t segmentBytes;
    Addr segmentBase, resultBase, lockAddr;
    std::vector<std::uint64_t> matched;
};

/**
 * Multi-tenant KV service: N tenants, each with its own ASID-tagged
 * direct-addressed value region, zipfian get/put mixes, and
 * per-tenant skew/footprint variation. The front end for the tenant
 * subsystem (docs/MULTITENANCY.md): every reference a tenant emits is
 * tagged with its ASID, so isolation, quotas, and per-tenant
 * snapshots are exercised end to end.
 *
 * Tenant determinism contract: tenant A's operation stream is a pure
 * function of (wl.seed, A, per-tenant op index) — co-tenant count and
 * activity never perturb it. Tests rely on this to compare tenant A
 * solo vs. with B..N active.
 */
class KvServiceWorkload : public WorkloadBase
{
  public:
    KvServiceWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "kv_service"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    unsigned tenants() const
    {
        return static_cast<unsigned>(perTenant.size());
    }

  private:
    struct Tenant
    {
        tenant::Asid asid;
        Addr base;                   ///< untagged region base
        std::uint64_t keys;          ///< footprint (keys)
        ZipfSampler zipf;            ///< key-rank sampler
        Rng rng;                     ///< tenant-private stream
        std::uint64_t ops = 0;
    };

    std::vector<Tenant> perTenant;   ///< active tenants, asid order
    std::vector<std::uint64_t> rr;   ///< per-thread round-robin cursor
    std::uint64_t valueBytes;
    std::uint64_t stride;            ///< line-rounded value slot size
    double getPct;
};

/** SSCA2 graph kernel: CSR neighbor scans, scattered writes. */
class Ssca2Workload : public WorkloadBase
{
  public:
    Ssca2Workload(const Params &params, const Config &cfg);
    const char *name() const override { return "ssca2"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;
    /** CSR arrays are immutable after construction. */
    bool independentGen() const override { return true; }

  private:
    std::uint64_t numNodes, avgDegree;
    std::vector<std::uint32_t> adjIndex;
    std::vector<std::uint32_t> adjList;
    Addr adjIndexBase, adjListBase, parentBase;
};

} // namespace nvo

#endif // NVO_WORKLOAD_WORKLOADS_HH
