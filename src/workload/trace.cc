#include "workload/trace.hh"

#include <cstring>

#include "common/log.hh"

namespace nvo
{

namespace
{

constexpr char traceMagic[4] = {'N', 'V', 'O', 'T'};
constexpr std::uint32_t traceVersion = 1;

struct Record
{
    std::uint8_t thread;
    std::uint8_t flags;   // bit0 = store, bit1 = op end
    std::uint8_t size;
    std::uint8_t pad;
    std::uint32_t gap;
    std::uint64_t addr;
};
static_assert(sizeof(Record) == 16);

} // namespace

TraceWriter::TraceWriter(const std::string &path, unsigned num_threads)
    : threads(num_threads)
{
    nvo_assert(num_threads > 0 && num_threads <= 255);
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    std::fwrite(traceMagic, 1, 4, file);
    std::uint32_t version = traceVersion;
    std::fwrite(&version, 4, 1, file);
    std::uint32_t nt = num_threads;
    std::fwrite(&nt, 4, 1, file);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

void
TraceWriter::writeOp(unsigned thread, const std::vector<MemRef> &refs)
{
    nvo_assert(file != nullptr, "trace already closed");
    nvo_assert(thread < threads);
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const MemRef &r = refs[i];
        Record rec{};
        rec.thread = static_cast<std::uint8_t>(thread);
        rec.flags = static_cast<std::uint8_t>(
            (r.isStore ? 1 : 0) |
            (i + 1 == refs.size() ? 2 : 0));
        rec.size = r.size;
        rec.gap = r.gapInstrs;
        rec.addr = r.addr;
        std::fwrite(&rec, sizeof(rec), 1, file);
        ++records;
    }
}

TraceWorkload::TraceWorkload(const Params &params,
                             const std::string &path)
    : WorkloadBase(params)
{
    loadFile(path);
    cursor.assign(p.numThreads, 0);
    // Replay runs until each stream is exhausted, regardless of the
    // nominal ops setting.
    std::uint64_t max_ops = 0;
    for (const auto &per_thread : ops)
        max_ops = std::max<std::uint64_t>(max_ops, per_thread.size());
    p.opsPerThread = max_ops;
}

void
TraceWorkload::loadFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[4];
    std::uint32_t version = 0, nt = 0;
    if (std::fread(magic, 1, 4, file) != 4 ||
        std::memcmp(magic, traceMagic, 4) != 0)
        fatal("'%s' is not an NVOT trace", path.c_str());
    if (std::fread(&version, 4, 1, file) != 1 ||
        version != traceVersion)
        fatal("unsupported trace version in '%s'", path.c_str());
    if (std::fread(&nt, 4, 1, file) != 1 || nt == 0)
        fatal("corrupt trace header in '%s'", path.c_str());
    fileThreads = nt;

    ops.assign(p.numThreads, {});
    std::vector<std::vector<MemRef>> open_op(nt);
    Record rec;
    while (std::fread(&rec, sizeof(rec), 1, file) == 1) {
        MemRef r;
        r.addr = rec.addr;
        r.gapInstrs = rec.gap;
        r.size = rec.size;
        r.isStore = rec.flags & 1;
        // Trace threads fold onto the configured thread count.
        unsigned t = rec.thread % p.numThreads;
        open_op[rec.thread].push_back(r);
        if (rec.flags & 2) {
            ops[t].push_back(std::move(open_op[rec.thread]));
            open_op[rec.thread].clear();
        }
    }
    std::fclose(file);
}

void
TraceWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    // nextOp() bounds calls by opsPerThread; shorter streams emit
    // empty ops (the core idles briefly).
    if (cursor[thread] < ops[thread].size())
        out = ops[thread][cursor[thread]++];
}

std::uint64_t
captureTrace(WorkloadBase &workload, const std::string &path)
{
    TraceWriter writer(path, workload.params().numThreads);
    std::vector<MemRef> batch;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned t = 0; t < workload.params().numThreads; ++t) {
            if (workload.nextOp(t, batch)) {
                progress = true;
                if (!batch.empty())
                    writer.writeOp(t, batch);
            }
        }
    }
    writer.close();
    return writer.recordsWritten();
}

} // namespace nvo
