/**
 * @file
 * Adaptive Radix Tree bulk insert (ARTOLC-style, no global lock).
 * Implements the four adaptive node types (Node4/16/48/256) with
 * growth on overflow; byte-wise descent over 8-byte random keys. The
 * growth copies (allocating a larger node and re-writing it) produce
 * the write behaviour that makes ART the paper's bandwidth-sensitive
 * workload (Sec. IX).
 */

#include "workload/workloads.hh"

#include "common/log.hh"

namespace nvo
{

std::uint64_t
ArtWorkload::nodeBytes(NodeType t)
{
    switch (t) {
      case NodeType::N4: return 16 + 4 * 1 + 4 * 8;       // 52
      case NodeType::N16: return 16 + 16 * 1 + 16 * 8;    // 160
      case NodeType::N48: return 16 + 256 * 1 + 48 * 8;   // 656
      case NodeType::N256: return 16 + 256 * 8;           // 2064
      case NodeType::Leaf: return 24;
      default: return 24;
    }
}

ArtWorkload::ArtWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    root = allocNode(NodeType::N256);   // fanned-out root

    std::uint64_t prefill = cfg.getU64("wl.art.prefill", 262144);
    Rng warm(params.seed ^ 0xa47);
    std::vector<MemRef> scratch;
    for (std::uint64_t i = 0; i < prefill; ++i) {
        insert(warm.next(), scratch);
        scratch.clear();
    }
    keyCount = 0;
}

int
ArtWorkload::allocNode(NodeType t)
{
    Node node;
    node.type = t;
    node.simAddr = heap.alloc(sharedArena, nodeBytes(t), 8);
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
}

int
ArtWorkload::findChild(const Node &n, std::uint8_t byte) const
{
    switch (n.type) {
      case NodeType::N4:
      case NodeType::N16:
        for (unsigned i = 0; i < n.keys.size(); ++i)
            if (n.keys[i] == byte)
                return n.children[i];
        return -1;
      case NodeType::N48:
      case NodeType::N256: {
        std::int16_t idx = n.index[byte];
        return idx < 0 ? -1 : n.children[idx];
      }
      default:
        return -1;
    }
}

int
ArtWorkload::addChild(int ni, std::uint8_t byte, int child,
                      std::vector<MemRef> &out)
{
    Node &n = nodes[ni];
    bool full = false;
    switch (n.type) {
      case NodeType::N4:
        full = n.keys.size() >= 4;
        break;
      case NodeType::N16:
        full = n.keys.size() >= 16;
        break;
      case NodeType::N48:
        full = n.children.size() >= 48;
        break;
      case NodeType::N256:
        full = false;
        break;
      default:
        panic("addChild on a leaf");
    }

    if (full) {
        // Grow: allocate the next node type, copy all children, and
        // write the whole new node out.
        NodeType next = n.type == NodeType::N4
                            ? NodeType::N16
                            : (n.type == NodeType::N16 ? NodeType::N48
                                                       : NodeType::N256);
        int gi = allocNode(next);
        Node &g = nodes[gi];
        Node &old = nodes[ni];
        if (old.type == NodeType::N4 || old.type == NodeType::N16) {
            for (unsigned i = 0; i < old.keys.size(); ++i) {
                if (next == NodeType::N48) {
                    g.index[old.keys[i]] =
                        static_cast<std::int16_t>(g.children.size());
                    g.children.push_back(old.children[i]);
                } else {
                    g.keys.push_back(old.keys[i]);
                    g.children.push_back(old.children[i]);
                }
            }
        } else {   // N48 -> N256
            for (unsigned b = 0; b < 256; ++b) {
                if (old.index[b] >= 0) {
                    g.index[b] =
                        static_cast<std::int16_t>(g.children.size());
                    g.children.push_back(old.children[old.index[b]]);
                }
            }
        }
        ldRange(out, old.simAddr, nodeBytes(old.type));
        stRange(out, g.simAddr, nodeBytes(next));
        // The old node's slot is reused in place in the host index;
        // the parent pointer update is one store.
        st(out, g.simAddr);
        nodes[ni] = std::move(nodes[gi]);
        nodes.pop_back();
    }

    Node &target = nodes[ni];
    switch (target.type) {
      case NodeType::N4:
      case NodeType::N16:
        target.keys.push_back(byte);
        target.children.push_back(child);
        st(out, target.simAddr + 16 + target.keys.size());
        st(out, target.simAddr + 16 + 16 +
                    (target.children.size() - 1) * 8);
        break;
      case NodeType::N48:
        target.index[byte] =
            static_cast<std::int16_t>(target.children.size());
        target.children.push_back(child);
        st(out, target.simAddr + 16 + byte);
        st(out, target.simAddr + 16 + 256 +
                    (target.children.size() - 1) * 8);
        break;
      case NodeType::N256:
        target.index[byte] =
            static_cast<std::int16_t>(target.children.size());
        target.children.push_back(child);
        st(out, target.simAddr + 16 + byte * 8);
        break;
      default:
        panic("addChild on a leaf");
    }
    return ni;
}

void
ArtWorkload::insert(std::uint64_t key, std::vector<MemRef> &out)
{
    int ni = root;
    for (unsigned depth = 0; depth < 8; ++depth) {
        auto byte = static_cast<std::uint8_t>(
            (key >> (56 - depth * 8)) & 0xff);
        Node &n = nodes[ni];
        ld(out, n.simAddr);
        if (n.type == NodeType::N48 || n.type == NodeType::N256)
            ld(out, n.simAddr + 16 + byte);

        int child = findChild(n, byte);
        if (child < 0) {
            // New leaf under this byte.
            int leaf = allocNode(NodeType::Leaf);
            nodes[leaf].leafKey = key;
            out.push_back(
                MemRef::stVal(nodes[leaf].simAddr, key, p.gap));
            addChild(ni, byte, leaf, out);
            ++keyCount;
            return;
        }
        if (nodes[child].type == NodeType::Leaf) {
            Node &lf = nodes[child];
            ld(out, lf.simAddr);
            if (lf.leafKey == key)
                return;   // duplicate
            // Split the leaf: replace with an N4 holding both.
            std::uint64_t other = lf.leafKey;
            unsigned d = depth + 1;
            int inner = allocNode(NodeType::N4);
            stRange(out, nodes[inner].simAddr,
                    nodeBytes(NodeType::N4));
            // Hang the inner node where the leaf was.
            Node &parent = nodes[ni];
            for (auto &c : parent.children)
                if (c == child)
                    c = inner;
            st(out, parent.simAddr);
            int cur = inner;
            while (d < 8) {
                auto kb = static_cast<std::uint8_t>(
                    (key >> (56 - d * 8)) & 0xff);
                auto ob = static_cast<std::uint8_t>(
                    (other >> (56 - d * 8)) & 0xff);
                if (kb != ob) {
                    int leaf_new = allocNode(NodeType::Leaf);
                    nodes[leaf_new].leafKey = key;
                    out.push_back(MemRef::stVal(
                        nodes[leaf_new].simAddr, key, p.gap));
                    cur = addChild(cur, kb, leaf_new, out);
                    addChild(cur, ob, child, out);
                    ++keyCount;
                    return;
                }
                int deeper = allocNode(NodeType::N4);
                stRange(out, nodes[deeper].simAddr,
                        nodeBytes(NodeType::N4));
                cur = addChild(cur, kb, deeper, out);
                cur = deeper;
                ++d;
            }
            return;   // identical 8-byte prefix: duplicate
        }
        ni = child;
    }
}

bool
ArtWorkload::contains(std::uint64_t key) const
{
    int ni = root;
    for (unsigned depth = 0; depth < 8; ++depth) {
        auto byte = static_cast<std::uint8_t>(
            (key >> (56 - depth * 8)) & 0xff);
        int child = findChild(nodes[ni], byte);
        if (child < 0)
            return false;
        if (nodes[child].type == NodeType::Leaf)
            return nodes[child].leafKey == key;
        ni = child;
    }
    return false;
}

void
ArtWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    insert(rng[thread].next(), out);
}

} // namespace nvo
