/**
 * @file
 * SSCA2 graph kernel. A CSR graph is generated at startup; each
 * operation expands a random node's neighborhood, reading the
 * adjacency arrays and scattering writes into the shared parent
 * array — the irregular scattered-write pattern SSCA2 is known for.
 */

#include "workload/workloads.hh"

namespace nvo
{

Ssca2Workload::Ssca2Workload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    numNodes = cfg.getU64("wl.ssca2.nodes", 1u << 21);
    avgDegree = cfg.getU64("wl.ssca2.degree", 8);

    // Build a random multigraph in CSR form (deterministic).
    Rng graph_rng(p.seed ^ 0x55ca2);
    adjIndex.resize(numNodes + 1);
    adjIndex[0] = 0;
    for (std::uint64_t n = 0; n < numNodes; ++n) {
        std::uint64_t deg = 1 + graph_rng.below(2 * avgDegree);
        adjIndex[n + 1] =
            adjIndex[n] + static_cast<std::uint32_t>(deg);
    }
    adjList.resize(adjIndex[numNodes]);
    for (auto &e : adjList)
        e = static_cast<std::uint32_t>(graph_rng.below(numNodes));

    adjIndexBase =
        heap.alloc(sharedArena, (numNodes + 1) * 4, lineBytes);
    adjListBase =
        heap.alloc(sharedArena, adjList.size() * 4, lineBytes);
    parentBase = heap.alloc(sharedArena, numNodes * 4, lineBytes);
}

void
Ssca2Workload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    std::uint64_t n = rng[thread].below(numNodes);
    ld(out, adjIndexBase + n * 4);
    std::uint32_t begin = adjIndex[n];
    std::uint32_t end = adjIndex[n + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
        ld(out, adjListBase + static_cast<Addr>(e) * 4);
        std::uint32_t nbr = adjList[e];
        // Tentative parent update (scatter write).
        ld(out, parentBase + static_cast<Addr>(nbr) * 4);
        st(out, parentBase + static_cast<Addr>(nbr) * 4);
    }
}

} // namespace nvo
