/**
 * @file
 * Hash-table bulk insert: random keys into one shared chained hash
 * table protected by a global lock (std::unordered_map + lock in the
 * paper's setup). The lock line ping-pongs between VDs, exercising
 * the coherence-driven part of the version protocol.
 */

#include "workload/workloads.hh"

namespace nvo
{

HashTableWorkload::HashTableWorkload(const Params &params,
                                     const Config &cfg)
    : WorkloadBase(params),
      set(heap, sharedArena, cfg.getU64("wl.hashtable.buckets", 1 << 18),
          params.gap)
{
    lookupPct = cfg.getF64("wl.hashtable.lookup_pct", 0.0);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);

    std::uint64_t prefill = cfg.getU64("wl.hashtable.prefill", 262144);
    Rng warm(params.seed ^ 0x8a5);
    std::vector<MemRef> scratch;
    for (std::uint64_t i = 0; i < prefill; ++i) {
        set.insert(warm.next(), scratch);
        scratch.clear();
    }
}

void
HashTableWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    std::uint64_t key = rng[thread].next();
    if (lookupPct > 0 && rng[thread].chance(lookupPct)) {
        // Probes are lock-free reads (the paper's index usage).
        set.contains(key, out);
        return;
    }
    lockRefs(out, lockAddr);
    set.insert(key, out);
    unlockRefs(out, lockAddr);
}

} // namespace nvo
