/**
 * @file
 * Workload framework (paper Sec. VI-C).
 *
 * Twelve workloads drive the evaluation: four data-structure bulk
 * inserts (hash table, B+Tree, ART, red-black tree) and eight
 * STAMP-style kernels (labyrinth, bayes, yada, intruder, vacation,
 * kmeans, genome, ssca2). Each is a RefSource: the harness asks a
 * thread for its next logical operation, which it emits as a batch of
 * memory references over simulated addresses. Real data-structure
 * logic runs in host memory so the reference streams have authentic
 * shape (descents, shifts, splits, chains, rebalances).
 */

#ifndef NVO_WORKLOAD_WORKLOAD_HH
#define NVO_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/memref.hh"
#include "workload/sim_heap.hh"

namespace nvo
{

/** Common base: per-thread op counting, RNG, heap, ref emission. */
class WorkloadBase : public RefSource
{
  public:
    struct Params
    {
        unsigned numThreads = 16;
        std::uint64_t opsPerThread = 4096;
        std::uint64_t seed = 1;
        /** Default non-memory instruction gap per reference. */
        std::uint32_t gap = 32;
    };

    WorkloadBase(const Params &params);

    bool nextOp(unsigned thread, std::vector<MemRef> &out) final;

    virtual const char *name() const = 0;

    /** Per-thread operation generator. */
    virtual void genOp(unsigned thread, std::vector<MemRef> &out) = 0;

    /**
     * True when genOp(thread, ...) touches nothing but that thread's
     * own state (its Rng, cursor, arena) and constant members — the
     * confinement contract that lets the shard engine pre-generate a
     * thread's batches concurrently with other shards' execution
     * (src/par/pregen.hh). Workloads whose generator reads or writes
     * shared host structures (the B+Tree nodes, a hash set, ...) must
     * leave this false: their generation order is globally visible.
     */
    virtual bool independentGen() const { return false; }

    std::uint64_t opsCompleted() const;
    const Params &params() const { return p; }
    SimHeap &heapRef() { return heap; }

  protected:
    /** Shared arena id. */
    static constexpr unsigned sharedArena = 0;
    /** Arena for @p thread's private allocations. */
    unsigned
    arenaOf(unsigned thread) const
    {
        return thread + 1;
    }

    void
    ld(std::vector<MemRef> &out, Addr a) const
    {
        out.push_back(MemRef::ld(a, p.gap));
    }

    void
    st(std::vector<MemRef> &out, Addr a) const
    {
        out.push_back(MemRef::st(a, p.gap));
    }

    /** Touch @p bytes starting at @p a, one reference per line. */
    void ldRange(std::vector<MemRef> &out, Addr a,
                 std::uint64_t bytes) const;
    void stRange(std::vector<MemRef> &out, Addr a,
                 std::uint64_t bytes) const;

    /** Emit lock-acquire / release references (shared lock word). */
    void lockRefs(std::vector<MemRef> &out, Addr lock_addr) const;
    void unlockRefs(std::vector<MemRef> &out, Addr lock_addr) const;

    Params p;
    SimHeap heap;
    std::vector<Rng> rng;            ///< one per thread
    std::vector<std::uint64_t> opsDone;
};

/**
 * Factory. Valid names: hashtable, btree, art, rbtree, labyrinth,
 * bayes, yada, intruder, vacation, kmeans, genome, ssca2,
 * kv_service, phased (phase-shift wrapper, workload/phase_shift.hh).
 * Reads sizing knobs from @p cfg ("wl.threads", "wl.ops", "wl.seed",
 * plus per-workload keys documented in each implementation).
 */
std::unique_ptr<WorkloadBase> makeWorkload(const std::string &name,
                                           const Config &cfg);

/** The twelve paper workloads in Fig. 11 order. */
const std::vector<std::string> &paperWorkloads();

} // namespace nvo

#endif // NVO_WORKLOAD_WORKLOAD_HH
