#include "workload/stamp_common.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace nvo
{

SimHashSet::SimHashSet(SimHeap &heap_, unsigned arena_,
                       std::uint64_t num_buckets, std::uint32_t gap_)
    : heap(heap_), arena(arena_), gap(gap_)
{
    nvo_assert(isPow2(num_buckets));
    mask = num_buckets - 1;
    buckets.assign(num_buckets, -1);
    bucketsBase = heap.alloc(arena, num_buckets * 8, lineBytes);
}

std::uint64_t
SimHashSet::hash(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

bool
SimHashSet::insert(std::uint64_t key, std::vector<MemRef> &out)
{
    std::uint64_t b = hash(key) & mask;
    out.push_back(MemRef::ld(bucketsBase + b * 8, gap));
    std::int32_t cur = buckets[b];
    while (cur >= 0) {
        out.push_back(MemRef::ld(nodes[cur].addr, gap));
        if (nodes[cur].key == key)
            return false;
        cur = nodes[cur].next;
    }
    Node node;
    node.key = key;
    node.addr = heap.alloc(arena, 24, 8);
    node.next = buckets[b];
    buckets[b] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(node);
    // Initialize the node, then link it into the bucket head.
    out.push_back(MemRef::stVal(node.addr, key, gap));
    out.push_back(MemRef::st(node.addr + 8, gap));
    out.push_back(MemRef::st(bucketsBase + b * 8, gap));
    return true;
}

bool
SimHashSet::contains(std::uint64_t key, std::vector<MemRef> &out) const
{
    std::uint64_t b = hash(key) & mask;
    out.push_back(MemRef::ld(bucketsBase + b * 8, gap));
    std::int32_t cur = buckets[b];
    while (cur >= 0) {
        out.push_back(MemRef::ld(nodes[cur].addr, gap));
        if (nodes[cur].key == key)
            return true;
        cur = nodes[cur].next;
    }
    return false;
}

} // namespace nvo
