/**
 * @file
 * B+Tree bulk insert (BTreeOLC-style: optimistic lock coupling means
 * no global lock references). A real B+Tree runs in host memory; each
 * insert emits the descent reads, the leaf-shift write burst the
 * paper calls out ("shifting existing elements after locating a
 * B+Tree leaf node"), and split write-outs.
 */

#include "workload/workloads.hh"

#include <algorithm>

#include "common/log.hh"

namespace nvo
{

namespace
{
constexpr std::uint64_t entryBytes = 16;   // key + value/child
} // namespace

BTreeWorkload::BTreeWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    fanout = static_cast<unsigned>(cfg.getU64("wl.btree.fanout", 64));
    lookupPct = cfg.getF64("wl.btree.lookup_pct", 0.0);
    nvo_assert(fanout >= 4);
    root = allocNode(true);

    // Prefill: grow the index to a realistic size before measurement
    // (bulk inserts into an already-large tree, as in the paper's
    // database-index scenario). No references are emitted.
    std::uint64_t prefill = cfg.getU64("wl.btree.prefill", 262144);
    Rng warm(params.seed ^ 0xb7ee);
    std::vector<MemRef> scratch;
    for (std::uint64_t i = 0; i < prefill; ++i) {
        insert(warm.next(), scratch);
        scratch.clear();
    }
    keyCount = 0;
}

int
BTreeWorkload::allocNode(bool leaf)
{
    Node node;
    node.leaf = leaf;
    node.simAddr = heap.alloc(sharedArena,
                              16 + fanout * entryBytes, lineBytes);
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
}

void
BTreeWorkload::splitChild(int pi, unsigned ci, std::vector<MemRef> &out)
{
    Node &parent = nodes[pi];
    int child_idx = parent.children[ci];
    int fresh = allocNode(nodes[child_idx].leaf);
    Node &child = nodes[child_idx];
    Node &nn = nodes[fresh];

    unsigned mid = static_cast<unsigned>(child.keys.size()) / 2;
    std::uint64_t up_key;

    if (child.leaf) {
        // B+Tree leaf split: the separator is copied up; the new
        // node keeps keys[mid..].
        nn.keys.assign(child.keys.begin() + mid, child.keys.end());
        nn.values.assign(child.values.begin() + mid,
                         child.values.end());
        child.keys.resize(mid);
        child.values.resize(mid);
        up_key = nn.keys.front();
    } else {
        // Inner split: the middle key moves up; the new node gets
        // keys[mid+1..] and children[mid+1..].
        up_key = child.keys[mid];
        nn.keys.assign(child.keys.begin() + mid + 1,
                       child.keys.end());
        nn.children.assign(child.children.begin() + mid + 1,
                           child.children.end());
        child.keys.resize(mid);
        child.children.resize(mid + 1);
    }

    // Write out the new node and the tail half move.
    stRange(out, nn.simAddr, 16 + nn.keys.size() * entryBytes);
    // Parent gains a separator + child pointer: shift its tail.
    Node &p2 = nodes[pi];
    auto it = p2.keys.begin() + ci;
    p2.keys.insert(it, up_key);
    p2.children.insert(p2.children.begin() + ci + 1, fresh);
    stRange(out,
            p2.simAddr + 16 + ci * entryBytes,
            (p2.keys.size() - ci) * entryBytes);
}

void
BTreeWorkload::insert(std::uint64_t key, std::vector<MemRef> &out)
{
    // Grow the root if full.
    if (nodes[root].keys.size() >= fanout - 1) {
        int new_root = allocNode(false);
        nodes[new_root].children.push_back(root);
        root = new_root;
        splitChild(root, 0, out);
        stRange(out, nodes[root].simAddr, 2 * entryBytes);
    }

    int ni = root;
    while (true) {
        Node &n = nodes[ni];
        // Descent read: header plus the binary-search probe lines.
        ld(out, n.simAddr);
        if (!n.keys.empty()) {
            std::uint64_t probe =
                (n.keys.size() / 2) * entryBytes;
            ld(out, n.simAddr + 16 + probe);
        }

        auto it = std::upper_bound(n.keys.begin(), n.keys.end(), key);
        unsigned pos = static_cast<unsigned>(it - n.keys.begin());

        if (n.leaf) {
            // Shift the tail to make room: the write burst.
            n.keys.insert(it, key);
            n.values.insert(n.values.begin() + pos, key ^ 0x5a5a);
            stRange(out, n.simAddr + 16 + pos * entryBytes,
                    (n.keys.size() - pos) * entryBytes);
            ++keyCount;
            return;
        }

        unsigned ci = pos;
        int child = n.children[ci];
        if (nodes[child].keys.size() >= fanout - 1) {
            splitChild(ni, ci, out);
            // Re-route after the split.
            if (key > nodes[ni].keys[ci])
                ++ci;
            child = nodes[ni].children[ci];
        }
        ni = child;
    }
}

void
BTreeWorkload::lookup(std::uint64_t key, std::vector<MemRef> &out) const
{
    int ni = root;
    while (true) {
        const Node &n = nodes[ni];
        ld(out, n.simAddr);
        if (!n.keys.empty())
            ld(out, n.simAddr + 16 +
                        (n.keys.size() / 2) * entryBytes);
        auto it = std::upper_bound(n.keys.begin(), n.keys.end(), key);
        if (n.leaf) {
            if (it != n.keys.begin())
                ld(out, n.simAddr + 16 +
                            (it - n.keys.begin() - 1) * entryBytes);
            return;
        }
        ni = n.children[it - n.keys.begin()];
    }
}

void
BTreeWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    // Paper default is insert-only bulk load; wl.btree.lookup_pct
    // mixes in point lookups for read/write-ratio studies.
    if (lookupPct > 0 && rng[thread].chance(lookupPct))
        lookup(rng[thread].next(), out);
    else
        insert(rng[thread].next(), out);
}

unsigned
BTreeWorkload::height() const
{
    unsigned h = 1;
    int ni = root;
    while (!nodes[ni].leaf) {
        ni = nodes[ni].children[0];
        ++h;
    }
    return h;
}

bool
BTreeWorkload::checkNode(int ni, std::uint64_t lo, std::uint64_t hi,
                         unsigned depth, unsigned leaf_depth) const
{
    const Node &n = nodes[ni];
    std::uint64_t prev = lo;
    for (std::uint64_t k : n.keys) {
        if (k < prev || k > hi)
            return false;
        prev = k;
    }
    if (n.leaf)
        return depth == leaf_depth;
    if (n.children.size() != n.keys.size() + 1)
        return false;
    for (unsigned i = 0; i < n.children.size(); ++i) {
        std::uint64_t clo = i == 0 ? lo : n.keys[i - 1];
        std::uint64_t chi = i == n.keys.size() ? hi : n.keys[i];
        if (!checkNode(n.children[i], clo, chi, depth + 1, leaf_depth))
            return false;
    }
    return true;
}

bool
BTreeWorkload::selfCheck() const
{
    return checkNode(root, 0, ~0ull, 1, height());
}

} // namespace nvo
