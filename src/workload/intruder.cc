/**
 * @file
 * Intruder (network intrusion detection). Threads consume packet
 * fragments from a shared stream (sequential reads), insert them into
 * a shared reassembly map under a lock, and occasionally run a
 * detector pass over the signature dictionary — STAMP intruder's
 * capture/reassembly/detection pipeline.
 */

#include "workload/workloads.hh"

#include "common/bitutil.hh"

namespace nvo
{

IntruderWorkload::IntruderWorkload(const Params &params,
                                   const Config &cfg)
    : WorkloadBase(params),
      fragments(heap, sharedArena,
                cfg.getU64("wl.intruder.buckets", 1 << 17), params.gap)
{
    streamBytes =
        cfg.getU64("wl.intruder.stream_mb", 4) * 1024 * 1024;
    dictBytes = cfg.getU64("wl.intruder.dict_kb", 512) * 1024;
    streamBase = heap.alloc(sharedArena, streamBytes, lineBytes);
    dictBase = heap.alloc(sharedArena, dictBytes, lineBytes);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
    cursor.resize(p.numThreads, 0);
}

void
IntruderWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    Rng &r = rng[thread];

    // Capture: read the next few fragment lines from the stream.
    std::uint64_t slice = streamBytes / p.numThreads;
    Addr base = streamBase + thread * slice;
    for (unsigned i = 0; i < 4; ++i) {
        ld(out, base + (cursor[thread] % slice));
        cursor[thread] += lineBytes;
    }

    // Reassembly: insert the fragment into the shared flow map.
    std::uint64_t flow = r.below(1 << 18);
    std::uint64_t frag_id = (flow << 16) | r.below(64);
    lockRefs(out, lockAddr);
    fragments.insert(frag_id, out);
    unlockRefs(out, lockAddr);

    // Detection: occasionally scan a signature window.
    if (r.chance(0.125)) {
        Addr at = dictBase + lineAlign(r.below(dictBytes - 2048));
        ldRange(out, at, 1024);
    }
}

} // namespace nvo
