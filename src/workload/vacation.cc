/**
 * @file
 * Vacation (travel-reservation OLTP). Each operation is a transaction
 * touching the four reservation tables: a handful of random row
 * reads, a few row updates, under per-table locks — STAMP vacation's
 * mixed read/update transaction profile.
 */

#include "workload/workloads.hh"

namespace nvo
{

VacationWorkload::VacationWorkload(const Params &params,
                                   const Config &cfg)
    : WorkloadBase(params)
{
    rowsPerTable = cfg.getU64("wl.vacation.rows", 1u << 15);
    for (unsigned t = 0; t < numTables; ++t) {
        tableBase[t] = heap.alloc(sharedArena,
                                  rowsPerTable * lineBytes, lineBytes);
        tableLock[t] = heap.alloc(sharedArena, lineBytes, lineBytes);
    }
}

void
VacationWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    Rng &r = rng[thread];
    unsigned queries = 6 + static_cast<unsigned>(r.below(6));
    for (unsigned q = 0; q < queries; ++q) {
        unsigned table = static_cast<unsigned>(r.below(numTables));
        std::uint64_t row = r.below(rowsPerTable);
        ld(out, tableBase[table] + row * lineBytes);
    }
    // Make the reservation: update 2-4 rows.
    unsigned updates = 2 + static_cast<unsigned>(r.below(3));
    for (unsigned u = 0; u < updates; ++u) {
        unsigned table = static_cast<unsigned>(r.below(numTables));
        std::uint64_t row = r.below(rowsPerTable);
        lockRefs(out, tableLock[table]);
        ld(out, tableBase[table] + row * lineBytes);
        st(out, tableBase[table] + row * lineBytes);
        unlockRefs(out, tableLock[table]);
    }
}

} // namespace nvo
