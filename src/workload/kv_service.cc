/**
 * @file
 * Multi-tenant KV service (docs/MULTITENANCY.md).
 *
 * Each tenant owns a direct-addressed value region tagged with its
 * ASID (tenant/asid.hh): key k of tenant a lives at
 * tag(a, base_a + k * stride). Gets walk the value slot read-only;
 * puts rewrite it. Keys are drawn from a per-tenant Zipfian sampler,
 * so each tenant has a hot set; per-tenant skew and footprint vary
 * with the ASID (wl.kv.mix) to model heterogeneous co-tenants.
 *
 * Determinism: a tenant's key choices come from its own Rng seeded by
 * (wl.seed, asid) and advance only when that tenant executes an op,
 * so tenant A's i-th operation is identical no matter how many
 * co-tenants are configured or active. Threads serve active tenants
 * round-robin; with `t` threads and `a` active tenants every tenant
 * receives threads*ops/a operations (spread across threads).
 */

#include "common/log.hh"
#include "workload/workloads.hh"

namespace nvo
{

KvServiceWorkload::KvServiceWorkload(const Params &params,
                                     const Config &cfg)
    : WorkloadBase(params)
{
    const auto num_tenants =
        static_cast<unsigned>(cfg.getU64("wl.kv.tenants", 4));
    const std::uint64_t base_keys = cfg.getU64("wl.kv.keys", 8192);
    const double skew = cfg.getF64("wl.kv.skew", 0.8);
    const bool mix = cfg.getU64("wl.kv.mix", 1) != 0;
    getPct = cfg.getF64("wl.kv.get_pct", 0.5);
    valueBytes = cfg.getU64("wl.kv.value_bytes", 128);

    nvo_assert(num_tenants >= 1 &&
                   num_tenants <= tenant::maxAsid,
               "wl.kv.tenants out of ASID range");
    nvo_assert(valueBytes >= 8);
    stride = (valueBytes + lineBytes - 1) & ~(lineBytes - 1ull);

    // Allocate tenant regions in ascending ASID order so tenant a's
    // base is independent of how many tenants follow it.
    perTenant.reserve(num_tenants);
    for (unsigned i = 0; i < num_tenants; ++i) {
        const auto asid = static_cast<tenant::Asid>(i + 1);
        // Heterogeneous co-tenants: footprint shrinks by up to 4x and
        // skew sharpens with the ASID, so big/cold and small/hot
        // tenants coexist on the same backend.
        std::uint64_t keys =
            mix ? std::max<std::uint64_t>(base_keys >> (i % 3), 64)
                : base_keys;
        double theta = mix ? skew + 0.2 * (i % 4) : skew;
        perTenant.push_back(Tenant{
            asid,
            heap.alloc(sharedArena, keys * stride, lineBytes),
            keys,
            ZipfSampler(keys, theta),
            Rng(p.seed * 0x85ebca77ull + asid),
        });
    }
    rr.resize(p.numThreads, 0);
}

void
KvServiceWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    // Serve active tenants round-robin per thread: thread t's k-th op
    // goes to tenant (t + k) mod active.
    Tenant &ten =
        perTenant[(thread + rr[thread]++) % perTenant.size()];
    ++ten.ops;

    const std::uint64_t key = ten.zipf.sample(ten.rng);
    const Addr slot =
        tenant::tag(ten.asid, ten.base + key * stride);
    if (ten.rng.chance(getPct)) {
        ldRange(out, slot, valueBytes);
    } else {
        stRange(out, slot, valueBytes);
    }
}

} // namespace nvo
