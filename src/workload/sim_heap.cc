#include "workload/sim_heap.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace nvo
{

SimHeap::SimHeap(unsigned num_arenas, Addr base,
                 std::uint64_t arena_bytes)
    : base_(base), arenaBytes(arena_bytes)
{
    nvo_assert(num_arenas > 0);
    cursors.resize(num_arenas);
    for (unsigned i = 0; i < num_arenas; ++i)
        cursors[i] = base_ + static_cast<Addr>(i) * arenaBytes;
}

Addr
SimHeap::alloc(unsigned arena, std::uint64_t size, std::uint64_t align)
{
    nvo_assert(arena < cursors.size());
    nvo_assert(isPow2(align));
    Addr addr = roundUpPow2(cursors[arena], align);
    cursors[arena] = addr + size;
    Addr limit = base_ + (static_cast<Addr>(arena) + 1) * arenaBytes;
    nvo_assert(cursors[arena] <= limit, "arena exhausted");
    return addr;
}

std::uint64_t
SimHeap::allocatedBytes(unsigned arena) const
{
    nvo_assert(arena < cursors.size());
    Addr start = base_ + static_cast<Addr>(arena) * arenaBytes;
    return cursors[arena] - start;
}

std::uint64_t
SimHeap::totalAllocated() const
{
    std::uint64_t total = 0;
    for (unsigned i = 0; i < cursors.size(); ++i)
        total += allocatedBytes(i);
    return total;
}

} // namespace nvo
