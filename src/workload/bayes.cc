/**
 * @file
 * Bayesian network structure learning. Dominated by ad-tree queries
 * (scattered reads over a large static table) with occasional graph
 * edits (a few shared-line stores under a lock) — the read-heavy
 * profile of STAMP's bayes.
 */

#include "workload/workloads.hh"

#include "common/bitutil.hh"

namespace nvo
{

BayesWorkload::BayesWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    adtreeBytes = cfg.getU64("wl.bayes.adtree_mb", 8) * 1024 * 1024;
    graphNodes = cfg.getU64("wl.bayes.graph_nodes", 1u << 16);
    adtreeBase = heap.alloc(sharedArena, adtreeBytes, lineBytes);
    graphBase =
        heap.alloc(sharedArena, graphNodes * lineBytes, lineBytes);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
}

void
BayesWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    Rng &r = rng[thread];
    // Score a candidate edge: a burst of ad-tree lookups.
    unsigned queries = 32 + static_cast<unsigned>(r.below(32));
    for (unsigned i = 0; i < queries; ++i)
        ld(out, adtreeBase + lineAlign(r.below(adtreeBytes)));

    // Occasionally commit the best edge found.
    if (r.chance(0.25)) {
        lockRefs(out, lockAddr);
        std::uint64_t a = r.below(graphNodes);
        std::uint64_t b = r.below(graphNodes);
        ld(out, graphBase + a * lineBytes);
        st(out, graphBase + a * lineBytes);
        ld(out, graphBase + b * lineBytes);
        st(out, graphBase + b * lineBytes);
        unlockRefs(out, lockAddr);
    }
}

} // namespace nvo
