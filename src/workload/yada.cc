/**
 * @file
 * Yada (Delaunay mesh refinement). Each operation retriangulates a
 * cavity: pointer-chase reads over a cluster of triangle records,
 * allocation and initialization of new triangles, and link updates —
 * STAMP yada's allocate-and-relink write pattern.
 */

#include "workload/workloads.hh"

namespace nvo
{

YadaWorkload::YadaWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    std::uint64_t initial = cfg.getU64("wl.yada.triangles", 1u << 15);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
    Rng mesh_rng(p.seed ^ 0xada);
    for (std::uint64_t i = 0; i < initial; ++i) {
        Tri tri;
        tri.simAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
        for (auto &n : tri.nbr)
            n = static_cast<std::uint32_t>(mesh_rng.below(initial));
        tris.push_back(tri);
    }
}

std::uint32_t
YadaWorkload::allocTri(unsigned thread, Rng &r)
{
    Tri tri;
    tri.simAddr = heap.alloc(arenaOf(thread), lineBytes, lineBytes);
    for (auto &n : tri.nbr)
        n = static_cast<std::uint32_t>(r.below(tris.size()));
    tris.push_back(tri);
    return static_cast<std::uint32_t>(tris.size() - 1);
}

void
YadaWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    Rng &r = rng[thread];
    // Expand the cavity: chase neighbor links.
    std::uint32_t cur =
        static_cast<std::uint32_t>(r.below(tris.size()));
    std::vector<std::uint32_t> cavity;
    for (unsigned depth = 0; depth < 8; ++depth) {
        ld(out, tris[cur].simAddr);
        cavity.push_back(cur);
        cur = tris[cur].nbr[r.below(3)];
    }

    // Retriangulate: allocate new triangles and relink the cavity
    // border under the mesh lock.
    lockRefs(out, lockAddr);
    unsigned fresh = 2 + static_cast<unsigned>(r.below(2));
    std::vector<std::uint32_t> created;
    for (unsigned i = 0; i < fresh; ++i) {
        std::uint32_t t = allocTri(thread, r);
        created.push_back(t);
        st(out, tris[t].simAddr);
    }
    for (unsigned i = 0; i < cavity.size() && i < 4; ++i) {
        Tri &border = tris[cavity[i]];
        border.nbr[i % 3] = created[i % created.size()];
        st(out, border.simAddr);
    }
    unlockRefs(out, lockAddr);
}

} // namespace nvo
