/**
 * @file
 * Labyrinth grid router. Each operation routes one path: a long
 * read-mostly expansion phase over the shared grid followed by a
 * bursty path commit (a run of stores) under the global grid lock —
 * the read-expand/write-commit structure of STAMP's labyrinth.
 */

#include "workload/workloads.hh"

#include <algorithm>

namespace nvo
{

LabyrinthWorkload::LabyrinthWorkload(const Params &params,
                                     const Config &cfg)
    : WorkloadBase(params)
{
    width = cfg.getU64("wl.labyrinth.width", 1024);
    height = cfg.getU64("wl.labyrinth.height", 1024);
    gridBase =
        heap.alloc(sharedArena, width * height * 4, lineBytes);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
}

Addr
LabyrinthWorkload::cellAddr(std::uint64_t x, std::uint64_t y) const
{
    return gridBase + (y * width + x) * 4;
}

void
LabyrinthWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    Rng &r = rng[thread];
    std::uint64_t sx = r.below(width), sy = r.below(height);
    std::uint64_t dx = r.below(width), dy = r.below(height);

    // Expansion: breadth-first-ish wavefront reads around the
    // source-destination bounding box.
    std::uint64_t x0 = std::min(sx, dx), x1 = std::max(sx, dx);
    std::uint64_t y0 = std::min(sy, dy), y1 = std::max(sy, dy);
    unsigned reads = 0;
    for (std::uint64_t y = y0; y <= y1 && reads < 160; ++y) {
        for (std::uint64_t x = x0; x <= x1 && reads < 160;
             x += 1 + r.below(3)) {
            ld(out, cellAddr(x, y));
            ++reads;
        }
    }

    // Commit: walk an L-shaped path and claim its cells.
    lockRefs(out, lockAddr);
    std::uint64_t x = sx, y = sy;
    while (x != dx) {
        st(out, cellAddr(x, y));
        x += x < dx ? 1 : -1;
    }
    while (y != dy) {
        st(out, cellAddr(x, y));
        y += y < dy ? 1 : -1;
    }
    st(out, cellAddr(x, y));
    unlockRefs(out, lockAddr);
}

} // namespace nvo
