/**
 * @file
 * K-means clustering kernel. Threads stream over disjoint slices of a
 * large point array (one 64 B point per line), write each point's
 * cluster membership, accumulate into thread-private centroid
 * accumulators, and periodically merge into the shared centroids
 * under a lock. The streaming write set far exceeds the L2, which is
 * exactly the L2-thrashing behaviour Sec. VII-B analyzes for kmeans
 * (repeated capacity write backs of the same lines within an epoch).
 */

#include "workload/workloads.hh"

namespace nvo
{

KmeansWorkload::KmeansWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    numPoints = cfg.getU64("wl.kmeans.points", 1u << 17);
    numClusters = cfg.getU64("wl.kmeans.clusters", 64);
    chunk = cfg.getU64("wl.kmeans.chunk", 32);

    pointsBase =
        heap.alloc(sharedArena, numPoints * lineBytes, lineBytes);
    membershipBase =
        heap.alloc(sharedArena, numPoints * 8, lineBytes);
    centroidsBase =
        heap.alloc(sharedArena, numClusters * lineBytes, lineBytes);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
    for (unsigned t = 0; t < p.numThreads; ++t) {
        accumBase.push_back(heap.alloc(
            arenaOf(t), numClusters * lineBytes, lineBytes));
        cursor.push_back(0);
    }
}

void
KmeansWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    std::uint64_t slice = numPoints / p.numThreads;
    std::uint64_t base_idx = thread * slice;

    for (std::uint64_t i = 0; i < chunk; ++i) {
        std::uint64_t idx =
            base_idx + (cursor[thread] + i) % slice;
        // Read the point, pick a cluster, write membership and the
        // private accumulator.
        ld(out, pointsBase + idx * lineBytes);
        std::uint64_t c = rng[thread].below(numClusters);
        ld(out, membershipBase + idx * 8);
        st(out, membershipBase + idx * 8);
        st(out, accumBase[thread] + c * lineBytes);
    }
    cursor[thread] += chunk;

    // Periodic reduction into the shared centroids.
    if ((cursor[thread] / chunk) % 64 == 0) {
        lockRefs(out, lockAddr);
        for (std::uint64_t c = 0; c < numClusters; ++c) {
            ld(out, centroidsBase + c * lineBytes);
            st(out, centroidsBase + c * lineBytes);
        }
        unlockRefs(out, lockAddr);
    }
}

} // namespace nvo
