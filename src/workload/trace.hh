/**
 * @file
 * Reference-trace capture and replay.
 *
 * TraceWriter records every reference a workload generates into a
 * compact binary file (per-thread streams); TraceWorkload replays
 * such a file as a RefSource. This decouples workload generation
 * from simulation — a captured trace can be re-run under every
 * scheme with identical reference streams, shared with others, or
 * inspected offline.
 *
 * File layout (little-endian):
 *   header:  magic "NVOT", u32 version, u32 numThreads
 *   records: u8 thread | u8 flags(bit0=store, bit1=opEnd)
 *            u8 size | u8 pad | u32 gap | u64 addr
 */

#ifndef NVO_WORKLOAD_TRACE_HH
#define NVO_WORKLOAD_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "cpu/memref.hh"
#include "workload/workload.hh"

namespace nvo
{

class TraceWriter
{
  public:
    /** Open @p path for writing a trace of @p num_threads streams. */
    TraceWriter(const std::string &path, unsigned num_threads);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one operation's references for @p thread. */
    void writeOp(unsigned thread, const std::vector<MemRef> &refs);

    void close();
    std::uint64_t recordsWritten() const { return records; }

  private:
    std::FILE *file;
    unsigned threads;
    std::uint64_t records = 0;
};

/**
 * RefSource replaying a recorded trace. Also usable through the
 * factory via workload name "trace" with config key "wl.trace.path".
 */
class TraceWorkload : public WorkloadBase
{
  public:
    TraceWorkload(const Params &params, const std::string &path);

    const char *name() const override { return "trace"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    unsigned traceThreads() const { return fileThreads; }

  private:
    void loadFile(const std::string &path);

    unsigned fileThreads = 0;
    /** Per-thread operation lists (each op = a batch of refs). */
    std::vector<std::vector<std::vector<MemRef>>> ops;
    std::vector<std::size_t> cursor;
};

/**
 * Capture @p workload's full reference stream to @p path. Returns the
 * number of records written.
 */
std::uint64_t captureTrace(WorkloadBase &workload,
                           const std::string &path);

} // namespace nvo

#endif // NVO_WORKLOAD_TRACE_HH
