/**
 * @file
 * Shared building blocks for the workload suite: a chained hash set
 * over simulated addresses (used by hashtable, intruder, genome) that
 * emits realistic bucket-probe and node-append reference streams.
 */

#ifndef NVO_WORKLOAD_STAMP_COMMON_HH
#define NVO_WORKLOAD_STAMP_COMMON_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/memref.hh"
#include "workload/sim_heap.hh"

namespace nvo
{

/** Chained hash set whose buckets and nodes live at sim addresses. */
class SimHashSet
{
  public:
    SimHashSet(SimHeap &heap, unsigned arena, std::uint64_t num_buckets,
               std::uint32_t gap);

    /**
     * Insert @p key, emitting the probe/append references into
     * @p out. Returns true when the key was new.
     */
    bool insert(std::uint64_t key, std::vector<MemRef> &out);

    /** Probe for @p key, emitting chain-walk references. */
    bool contains(std::uint64_t key, std::vector<MemRef> &out) const;

    std::uint64_t size() const { return nodes.size(); }

  private:
    struct Node
    {
        std::uint64_t key;
        Addr addr;
        std::int32_t next;
    };

    static std::uint64_t hash(std::uint64_t key);

    SimHeap &heap;
    unsigned arena;
    std::uint32_t gap;
    std::uint64_t mask;
    Addr bucketsBase;
    std::vector<std::int32_t> buckets;
    std::vector<Node> nodes;
};

/**
 * Approximate Zipfian sampler over [0, n) using the rejection-free
 * power-of-two-choices approximation: rank = n * u^theta picks low
 * ranks preferentially (theta in (0, ~4]; larger = more skew).
 * Deterministic given the caller's Rng.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta)
        : n_(n), theta_(theta)
    {
    }

    std::uint64_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        double r = 1.0;
        for (double t = theta_; t >= 1.0; t -= 1.0)
            r *= u;
        // Fractional part of theta via one extra multiply.
        double frac = theta_ - static_cast<std::uint64_t>(theta_);
        if (frac > 0)
            r *= 1.0 - frac * (1.0 - u);
        auto idx = static_cast<std::uint64_t>(r * n_);
        return idx >= n_ ? n_ - 1 : idx;
    }

    std::uint64_t population() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
};

} // namespace nvo

#endif // NVO_WORKLOAD_STAMP_COMMON_HH
