/**
 * @file
 * PhaseShiftWorkload ("phased"): a sequencing wrapper that chains
 * inner workloads into phases, so adaptive-policy experiments
 * (docs/POLICY.md, bench fig_adaptive) can shift the offered load
 * mid-run and watch the controllers re-converge.
 *
 * `wl.phases=btree:2000,kmeans:4000` runs 2000 B+Tree ops per thread,
 * then 4000 k-means ops per thread. Each phase's inner workload is
 * built from a copy of the run config with `wl.ops` set to the phase
 * length and any `wl.phase<i>.<key>` overrides rewritten to
 * `wl.<key>`, so per-phase sizing (`wl.phase1.kmeans.points=...`)
 * composes with the global keys. Threads advance through phases
 * independently (each exhausts its per-thread quota of phase i before
 * starting phase i+1), which keeps generation deterministic and
 * engine-agnostic — no cross-thread barrier exists in the reference
 * stream.
 */

#ifndef NVO_WORKLOAD_PHASE_SHIFT_HH
#define NVO_WORKLOAD_PHASE_SHIFT_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workload/workload.hh"

namespace nvo
{

class PhaseShiftWorkload : public WorkloadBase
{
  public:
    PhaseShiftWorkload(const Params &params, const Config &cfg);
    const char *name() const override { return "phased"; }
    void genOp(unsigned thread, std::vector<MemRef> &out) override;

    std::size_t numPhases() const { return phases.size(); }
    const std::string &
    phaseName(std::size_t i) const
    {
        return phases[i].name;
    }
    std::uint64_t
    phaseOps(std::size_t i) const
    {
        return phases[i].ops;
    }

    /** Phase @p thread is currently generating (== numPhases() once
     *  the thread has drained every phase). */
    std::size_t
    phaseOf(unsigned thread) const
    {
        return phaseIdx[thread];
    }

    /** Phase of the slowest thread — the run is "in" this phase. */
    std::size_t minPhase() const;

    /**
     * Parse a `wl.phases` spec ("name:ops,name:ops,..."); malformed
     * input is a user error (fatal). Exposed for the driver/tests.
     */
    static std::vector<std::pair<std::string, std::uint64_t>>
    parseSpec(const std::string &spec);

  private:
    struct Phase
    {
        std::string name;
        std::uint64_t ops;
        std::unique_ptr<WorkloadBase> wl;
    };

    /** Outer quota = sum of phase lengths, so nextOp()'s counting
     *  finishes exactly when the last phase drains. */
    static Params withTotalOps(Params p, const Config &cfg);

    std::vector<Phase> phases;
    std::vector<std::size_t> phaseIdx;   ///< per-thread current phase
};

} // namespace nvo

#endif // NVO_WORKLOAD_PHASE_SHIFT_HH
