/**
 * @file
 * Simulated-address-space allocator.
 *
 * Workload data structures live in host memory, but every node also
 * has a *simulated physical address* so the reference stream fed to
 * the cache hierarchy has realistic layout and locality. SimHeap is a
 * simple per-arena bump allocator; giving each thread its own arena
 * keeps private allocations on private pages (no accidental false
 * sharing), while shared structures allocate from a common arena.
 */

#ifndef NVO_WORKLOAD_SIM_HEAP_HH
#define NVO_WORKLOAD_SIM_HEAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace nvo
{

class SimHeap
{
  public:
    /** Arena 0 is the shared arena; 1..n are per-thread arenas. */
    SimHeap(unsigned num_arenas = 17,
            Addr base = 1ull << 32,
            std::uint64_t arena_bytes = 1ull << 28);

    /** Allocate @p size bytes (aligned to @p align) in @p arena. */
    Addr alloc(unsigned arena, std::uint64_t size,
               std::uint64_t align = 8);

    /** Allocate cache-line aligned. */
    Addr
    allocLines(unsigned arena, std::uint64_t lines)
    {
        return alloc(arena, lines * lineBytes, lineBytes);
    }

    std::uint64_t allocatedBytes(unsigned arena) const;
    std::uint64_t totalAllocated() const;
    unsigned numArenas() const
    {
        return static_cast<unsigned>(cursors.size());
    }

  private:
    Addr base_;
    std::uint64_t arenaBytes;
    std::vector<Addr> cursors;
};

} // namespace nvo

#endif // NVO_WORKLOAD_SIM_HEAP_HH
