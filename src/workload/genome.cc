/**
 * @file
 * Genome (gene sequencing). Phase 1 deduplicates DNA segments into a
 * shared hash set (insert-heavy); phase 2 matches segment overlaps
 * (sequential reads with small result writes) — STAMP genome's
 * two-phase structure, switched per thread by operation progress.
 */

#include "workload/workloads.hh"

#include "common/bitutil.hh"

namespace nvo
{

GenomeWorkload::GenomeWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params),
      segments(heap, sharedArena,
               cfg.getU64("wl.genome.buckets", 1 << 17), params.gap)
{
    segmentBytes =
        cfg.getU64("wl.genome.segments_mb", 4) * 1024 * 1024;
    segmentBase = heap.alloc(sharedArena, segmentBytes, lineBytes);
    resultBase = heap.alloc(sharedArena,
                            p.numThreads * 64 * lineBytes, lineBytes);
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);
    matched.resize(p.numThreads, 0);
}

void
GenomeWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    Rng &r = rng[thread];
    bool dedup_phase = opsDone[thread] < (p.opsPerThread * 3) / 5;

    if (dedup_phase) {
        // Read a segment window, hash it, insert into the set.
        Addr seg = segmentBase + lineAlign(r.below(segmentBytes - 256));
        ldRange(out, seg, 128);
        lockRefs(out, lockAddr);
        segments.insert(r.next(), out);
        unlockRefs(out, lockAddr);
    } else {
        // Overlap matching: scan candidate segments, record matches
        // into the thread's result buffer.
        Addr seg = segmentBase + lineAlign(r.below(segmentBytes - 1024));
        ldRange(out, seg, 512);
        if (r.chance(0.5)) {
            Addr slot = resultBase +
                        (thread * 64 + (matched[thread] % 64)) *
                            lineBytes;
            st(out, slot);
            ++matched[thread];
        }
    }
}

} // namespace nvo
