#include "workload/phase_shift.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"

namespace nvo
{

std::vector<std::pair<std::string, std::uint64_t>>
PhaseShiftWorkload::parseSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        std::size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0)
            fatal("wl.phases: malformed phase '%s' "
                  "(want name:ops[,name:ops...])",
                  item.c_str());
        char *end = nullptr;
        std::uint64_t ops =
            std::strtoull(item.c_str() + colon + 1, &end, 0);
        if (end == item.c_str() + colon + 1 || *end != '\0' ||
            ops == 0)
            fatal("wl.phases: phase '%s' needs a positive op count",
                  item.c_str());
        out.emplace_back(item.substr(0, colon), ops);
        pos = comma + 1;
    }
    if (out.empty())
        fatal("wl.phases: no phases given");
    return out;
}

WorkloadBase::Params
PhaseShiftWorkload::withTotalOps(Params p, const Config &cfg)
{
    std::uint64_t total = 0;
    for (const auto &ph :
         parseSpec(cfg.getStr("wl.phases", "btree:2048,kmeans:2048")))
        total += ph.second;
    p.opsPerThread = total;
    return p;
}

PhaseShiftWorkload::PhaseShiftWorkload(const Params &params,
                                       const Config &cfg)
    : WorkloadBase(withTotalOps(params, cfg))
{
    auto spec =
        parseSpec(cfg.getStr("wl.phases", "btree:2048,kmeans:2048"));
    for (std::size_t i = 0; i < spec.size(); ++i) {
        if (spec[i].first == "phased")
            fatal("wl.phases: phases cannot nest");
        // Phase config: the run config with the phase length and a
        // phase-distinct default seed, then any wl.phase<i>.* keys
        // rewritten onto wl.*, and finally the thread count pinned
        // back (every phase must drive the same cores).
        Config pc = cfg;
        pc.set("wl.ops", spec[i].second);
        pc.set("wl.seed", p.seed + 7919 * (i + 1));
        std::string prefix = "wl.phase" + std::to_string(i) + ".";
        for (const auto &key : cfg.keysWithPrefix(prefix))
            pc.set("wl." + key.substr(prefix.size()),
                   cfg.getStr(key, ""));
        pc.set("wl.threads", static_cast<std::uint64_t>(p.numThreads));
        phases.push_back(
            {spec[i].first, spec[i].second,
             makeWorkload(spec[i].first, pc)});
    }
    // The wrapper consumes wl.* wholesale: inner workloads read their
    // sizing keys from the config copies above, which the run
    // config's strict-check accounting cannot see.
    cfg.keysWithPrefix("wl.");
    phaseIdx.resize(p.numThreads, 0);
}

void
PhaseShiftWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    while (phaseIdx[thread] < phases.size()) {
        if (phases[phaseIdx[thread]].wl->nextOp(thread, out))
            return;
        ++phaseIdx[thread];
    }
    // Unreachable: the outer quota equals the sum of phase quotas.
    nvo_assert(false, "phased workload ran past its final phase");
}

std::size_t
PhaseShiftWorkload::minPhase() const
{
    return *std::min_element(phaseIdx.begin(), phaseIdx.end());
}

} // namespace nvo
