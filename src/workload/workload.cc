#include "workload/workload.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "workload/phase_shift.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

namespace nvo
{

WorkloadBase::WorkloadBase(const Params &params)
    : p(params), heap(params.numThreads + 1)
{
    nvo_assert(p.numThreads > 0);
    for (unsigned t = 0; t < p.numThreads; ++t)
        rng.emplace_back(p.seed * 1000003 + t);
    opsDone.resize(p.numThreads, 0);
}

bool
WorkloadBase::nextOp(unsigned thread, std::vector<MemRef> &out)
{
    nvo_assert(thread < p.numThreads);
    if (opsDone[thread] >= p.opsPerThread)
        return false;
    out.clear();
    genOp(thread, out);
    ++opsDone[thread];
    return true;
}

std::uint64_t
WorkloadBase::opsCompleted() const
{
    std::uint64_t total = 0;
    for (auto n : opsDone)
        total += n;
    return total;
}

void
WorkloadBase::ldRange(std::vector<MemRef> &out, Addr a,
                      std::uint64_t bytes) const
{
    for (Addr cur = lineAlign(a); cur < a + bytes; cur += lineBytes)
        ld(out, cur);
}

void
WorkloadBase::stRange(std::vector<MemRef> &out, Addr a,
                      std::uint64_t bytes) const
{
    for (Addr cur = lineAlign(a); cur < a + bytes; cur += lineBytes)
        st(out, cur);
}

void
WorkloadBase::lockRefs(std::vector<MemRef> &out, Addr lock_addr) const
{
    // CAS acquire: an atomic RMW issues a single exclusive request
    // (GETX) for the lock word — no separate read that would force a
    // writer downgrade first.
    st(out, lock_addr);
}

void
WorkloadBase::unlockRefs(std::vector<MemRef> &out, Addr lock_addr) const
{
    st(out, lock_addr);
}

const std::vector<std::string> &
paperWorkloads()
{
    static const std::vector<std::string> names = {
        "hashtable", "btree",    "art",      "rbtree",
        "labyrinth", "bayes",    "yada",     "intruder",
        "vacation",  "kmeans",   "genome",   "ssca2",
    };
    return names;
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name, const Config &cfg)
{
    WorkloadBase::Params p;
    p.numThreads =
        static_cast<unsigned>(cfg.getU64("wl.threads", 16));
    p.opsPerThread = cfg.getU64("wl.ops", 4096);
    // Single experiment-wide seed: rng.seed steers every randomized
    // component (workloads today, crash campaigns, future samplers);
    // wl.seed remains as a workload-local override.
    p.seed = cfg.getU64("wl.seed", cfg.getU64("rng.seed", 1));
    p.gap = static_cast<std::uint32_t>(cfg.getU64("wl.gap", 32));

    if (name == "hashtable")
        return std::make_unique<HashTableWorkload>(p, cfg);
    if (name == "btree")
        return std::make_unique<BTreeWorkload>(p, cfg);
    if (name == "art")
        return std::make_unique<ArtWorkload>(p, cfg);
    if (name == "rbtree")
        return std::make_unique<RbTreeWorkload>(p, cfg);
    if (name == "labyrinth")
        return std::make_unique<LabyrinthWorkload>(p, cfg);
    if (name == "bayes")
        return std::make_unique<BayesWorkload>(p, cfg);
    if (name == "yada")
        return std::make_unique<YadaWorkload>(p, cfg);
    if (name == "intruder")
        return std::make_unique<IntruderWorkload>(p, cfg);
    if (name == "vacation")
        return std::make_unique<VacationWorkload>(p, cfg);
    if (name == "kmeans")
        return std::make_unique<KmeansWorkload>(p, cfg);
    if (name == "genome")
        return std::make_unique<GenomeWorkload>(p, cfg);
    if (name == "ssca2")
        return std::make_unique<Ssca2Workload>(p, cfg);
    if (name == "kv_service")
        return std::make_unique<KvServiceWorkload>(p, cfg);
    if (name == "phased")
        return std::make_unique<PhaseShiftWorkload>(p, cfg);
    if (name == "trace")
        return std::make_unique<TraceWorkload>(
            p, cfg.getStr("wl.trace.path", "trace.nvot"));
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace nvo
