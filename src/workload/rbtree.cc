/**
 * @file
 * Red-black tree bulk insert (std::map shape) under a global lock.
 * Classic insert with recolor/rotation fixup; every touched node
 * contributes references, so deep descents and fixup chains produce
 * the pointer-chasing read stream and small scattered write set that
 * characterize std::map.
 */

#include "workload/workloads.hh"

#include "common/log.hh"

namespace nvo
{

RbTreeWorkload::RbTreeWorkload(const Params &params, const Config &cfg)
    : WorkloadBase(params)
{
    lockAddr = heap.alloc(sharedArena, lineBytes, lineBytes);

    std::uint64_t prefill = cfg.getU64("wl.rbtree.prefill", 262144);
    Rng warm(params.seed ^ 0x4b7);
    std::vector<MemRef> scratch;
    for (std::uint64_t i = 0; i < prefill; ++i) {
        insert(warm.next(), scratch);
        scratch.clear();
    }
    keyCount = 0;
}

int
RbTreeWorkload::allocNode(std::uint64_t key)
{
    Node node;
    node.key = key;
    node.simAddr = heap.alloc(sharedArena, 48, 8);
    nodes.push_back(node);
    return static_cast<int>(nodes.size()) - 1;
}

void
RbTreeWorkload::rotateLeft(int x, std::vector<MemRef> &out)
{
    int y = nodes[x].right;
    nodes[x].right = nodes[y].left;
    if (nodes[y].left >= 0)
        nodes[nodes[y].left].parent = x;
    nodes[y].parent = nodes[x].parent;
    if (nodes[x].parent < 0)
        root = y;
    else if (nodes[nodes[x].parent].left == x)
        nodes[nodes[x].parent].left = y;
    else
        nodes[nodes[x].parent].right = y;
    nodes[y].left = x;
    nodes[x].parent = y;
    st(out, nodes[x].simAddr);
    st(out, nodes[y].simAddr);
    if (nodes[y].parent >= 0)
        st(out, nodes[nodes[y].parent].simAddr);
}

void
RbTreeWorkload::rotateRight(int x, std::vector<MemRef> &out)
{
    int y = nodes[x].left;
    nodes[x].left = nodes[y].right;
    if (nodes[y].right >= 0)
        nodes[nodes[y].right].parent = x;
    nodes[y].parent = nodes[x].parent;
    if (nodes[x].parent < 0)
        root = y;
    else if (nodes[nodes[x].parent].left == x)
        nodes[nodes[x].parent].left = y;
    else
        nodes[nodes[x].parent].right = y;
    nodes[y].right = x;
    nodes[x].parent = y;
    st(out, nodes[x].simAddr);
    st(out, nodes[y].simAddr);
    if (nodes[y].parent >= 0)
        st(out, nodes[nodes[y].parent].simAddr);
}

void
RbTreeWorkload::insert(std::uint64_t key, std::vector<MemRef> &out)
{
    // BST descent.
    int parent = -1;
    int cur = root;
    while (cur >= 0) {
        ld(out, nodes[cur].simAddr);
        parent = cur;
        if (key == nodes[cur].key)
            return;   // duplicate
        cur = key < nodes[cur].key ? nodes[cur].left
                                   : nodes[cur].right;
    }

    int z = allocNode(key);
    nodes[z].parent = parent;
    st(out, nodes[z].simAddr);
    if (parent < 0) {
        root = z;
    } else {
        if (key < nodes[parent].key)
            nodes[parent].left = z;
        else
            nodes[parent].right = z;
        st(out, nodes[parent].simAddr);
    }
    ++keyCount;

    // Fixup.
    while (nodes[z].parent >= 0 && nodes[nodes[z].parent].red) {
        int zp = nodes[z].parent;
        int zpp = nodes[zp].parent;
        if (zpp < 0)
            break;
        ld(out, nodes[zpp].simAddr);
        if (zp == nodes[zpp].left) {
            int uncle = nodes[zpp].right;
            if (uncle >= 0 && nodes[uncle].red) {
                nodes[zp].red = false;
                nodes[uncle].red = false;
                nodes[zpp].red = true;
                st(out, nodes[zp].simAddr);
                st(out, nodes[uncle].simAddr);
                st(out, nodes[zpp].simAddr);
                z = zpp;
            } else {
                if (z == nodes[zp].right) {
                    z = zp;
                    rotateLeft(z, out);
                    zp = nodes[z].parent;
                    zpp = nodes[zp].parent;
                }
                nodes[zp].red = false;
                nodes[zpp].red = true;
                st(out, nodes[zp].simAddr);
                st(out, nodes[zpp].simAddr);
                rotateRight(zpp, out);
            }
        } else {
            int uncle = nodes[zpp].left;
            if (uncle >= 0 && nodes[uncle].red) {
                nodes[zp].red = false;
                nodes[uncle].red = false;
                nodes[zpp].red = true;
                st(out, nodes[zp].simAddr);
                st(out, nodes[uncle].simAddr);
                st(out, nodes[zpp].simAddr);
                z = zpp;
            } else {
                if (z == nodes[zp].left) {
                    z = zp;
                    rotateRight(z, out);
                    zp = nodes[z].parent;
                    zpp = nodes[zp].parent;
                }
                nodes[zp].red = false;
                nodes[zpp].red = true;
                st(out, nodes[zp].simAddr);
                st(out, nodes[zpp].simAddr);
                rotateLeft(zpp, out);
            }
        }
    }
    if (nodes[root].red) {
        nodes[root].red = false;
        st(out, nodes[root].simAddr);
    }
}

void
RbTreeWorkload::genOp(unsigned thread, std::vector<MemRef> &out)
{
    lockRefs(out, lockAddr);
    insert(rng[thread].next(), out);
    unlockRefs(out, lockAddr);
}

int
RbTreeWorkload::checkNode(int ni, std::uint64_t lo, std::uint64_t hi,
                          bool parent_red) const
{
    if (ni < 0)
        return 1;   // nil nodes are black, height 1
    const Node &n = nodes[ni];
    if (n.key < lo || n.key > hi)
        return -1;
    if (parent_red && n.red)
        return -1;   // red-red violation
    int lh = checkNode(n.left, lo, n.key, n.red);
    int rh = checkNode(n.right, n.key, hi, n.red);
    if (lh < 0 || rh < 0 || lh != rh)
        return -1;
    return lh + (n.red ? 0 : 1);
}

bool
RbTreeWorkload::selfCheck() const
{
    if (root < 0)
        return true;
    if (nodes[root].red)
        return false;
    return checkNode(root, 0, ~0ull, false) >= 0;
}

} // namespace nvo
