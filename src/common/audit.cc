#include "common/audit.hh"

#include "common/log.hh"

namespace nvo
{
namespace audit
{
namespace detail
{

namespace
{
std::uint64_t checkCounter = 0;
}

void
onCheck()
{
    ++checkCounter;
}

void
fail(const char *file, int line, const char *cond_str,
     const std::string &msg)
{
    panic("audit failure at %s:%d: '%s'%s%s", file, line, cond_str,
          msg.empty() ? "" : " — ", msg.c_str());
}

} // namespace detail

std::uint64_t
checksExecuted()
{
    return detail::checkCounter;
}

} // namespace audit

void
Auditor::add(std::string name, std::function<void()> fn, Tier tier)
{
    nvo_assert(fn != nullptr, "audit sweep needs a callable");
    checks.push_back({std::move(name), std::move(fn), tier});
}

void
Auditor::runTier(bool light_only)
{
    for (const auto &check : checks) {
        if (light_only && check.tier != Tier::Light)
            continue;
        current = check.name;
        check.fn();
        ++runCount;
    }
    current.clear();
    ++sweepCount;
}

void
Auditor::runAll()
{
    runTier(false);
}

void
Auditor::runLight()
{
    runTier(true);
}

} // namespace nvo
