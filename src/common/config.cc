#include "common/config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace nvo
{

void
Config::set(const std::string &key, const std::string &value)
{
    values[key] = value;
    resolved[key] = value;
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    set(key, std::to_string(value));
}

void
Config::set(const std::string &key, double value)
{
    set(key, std::to_string(value));
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t dflt) const
{
    accessed.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        resolved[key] = std::to_string(dflt);
        return dflt;
    }
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

double
Config::getF64(const std::string &key, double dflt) const
{
    accessed.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        resolved[key] = std::to_string(dflt);
        return dflt;
    }
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    accessed.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        resolved[key] = dflt ? "true" : "false";
        return dflt;
    }
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes")
        return true;
    if (s == "false" || s == "0" || s == "no")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(), s.c_str());
}

std::string
Config::getStr(const std::string &key, const std::string &dflt) const
{
    accessed.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        resolved[key] = dflt;
        return dflt;
    }
    return it->second;
}

void
Config::parseArg(const std::string &arg)
{
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("malformed config argument '%s' (want key=value)",
              arg.c_str());
    set(arg.substr(0, eq), arg.substr(eq + 1));
}

std::map<std::string, std::string>
Config::dump() const
{
    std::map<std::string, std::string> out = resolved;
    for (const auto &kv : values)
        out[kv.first] = kv.second;
    return out;
}

void
Config::setDerived(const std::string &key, const std::string &value)
{
    set(key, value);
    accessed.insert(key);
}

void
Config::setDerived(const std::string &key, std::uint64_t value)
{
    setDerived(key, std::to_string(value));
}

std::vector<std::string>
Config::keysWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (auto it = values.lower_bound(prefix);
         it != values.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
        accessed.insert(it->first);
        out.push_back(it->first);
    }
    return out;
}

std::vector<std::string>
Config::unreadKeys() const
{
    std::vector<std::string> out;
    for (const auto &kv : values)
        if (accessed.count(kv.first) == 0)
            out.push_back(kv.first);
    return out;
}

} // namespace nvo
