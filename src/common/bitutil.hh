/**
 * @file
 * Small bit-manipulation helpers used by caches and mapping tables.
 */

#ifndef NVO_COMMON_BITUTIL_HH
#define NVO_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace nvo
{

/** Number of set bits in @p v. */
constexpr unsigned
popcount64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be nonzero. */
constexpr unsigned
log2Floor(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** log2 of a power of two. */
inline unsigned
log2Exact(std::uint64_t v)
{
    nvo_assert(isPow2(v));
    return log2Floor(v);
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo == 63) ? ~0ull
                                        : ((1ull << (hi - lo + 1)) - 1));
}

/** Align an address down to the containing cache line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Align an address down to the containing page. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(pageBytes - 1);
}

/** Line index within its page (0..63). */
constexpr unsigned
lineInPage(Addr a)
{
    return static_cast<unsigned>(bits(a, pageBytesLog2 - 1, lineBytesLog2));
}

/** Round @p v up to the next multiple of @p align (power of two). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace nvo

#endif // NVO_COMMON_BITUTIL_HH
