/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef NVO_COMMON_TYPES_HH
#define NVO_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace nvo
{

/** Simulated physical address (48 bits used). */
using Addr = std::uint64_t;

/** Simulated cycle count (3 GHz nominal clock). */
using Cycle = std::uint64_t;

/** Epoch / overlay identifier, 16 bits in hardware (paper Sec. IV). */
using EpochId = std::uint16_t;

/** Wide epoch used where wrap-around has already been resolved. */
using EpochWide = std::uint64_t;

/** Monotonic per-line store sequence number (verification aid). */
using SeqNo = std::uint64_t;

/** Cache line geometry: 64-byte lines throughout (Table II). */
constexpr unsigned lineBytesLog2 = 6;
constexpr unsigned lineBytes = 1u << lineBytesLog2;

/** Page geometry: 4 KB pages (MNM overlay pages). */
constexpr unsigned pageBytesLog2 = 12;
constexpr unsigned pageBytes = 1u << pageBytesLog2;
constexpr unsigned linesPerPage = pageBytes / lineBytes;

/** An invalid / null simulated address. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace nvo

#endif // NVO_COMMON_TYPES_HH
