#include "common/stats.hh"

#include "common/log.hh"

namespace nvo
{

const char *
toString(NvmWriteKind kind)
{
    switch (kind) {
      case NvmWriteKind::Data: return "data";
      case NvmWriteKind::Log: return "log";
      case NvmWriteKind::Mapping: return "mapping";
      case NvmWriteKind::Context: return "context";
      default: return "?";
    }
}

const char *
toString(EvictReason reason)
{
    switch (reason) {
      case EvictReason::Capacity: return "capacity";
      case EvictReason::Coherence: return "coherence";
      case EvictReason::TagWalk: return "tag-walk";
      case EvictReason::StoreEvict: return "store-evict";
      case EvictReason::EpochFlush: return "epoch-flush";
      default: return "?";
    }
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width(bucket_width), buckets(num_buckets, 0)
{
    nvo_assert(bucket_width > 0);
    nvo_assert(num_buckets > 0);
}

void
Histogram::add(std::uint64_t sample)
{
    std::size_t idx = sample / width;
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    ++buckets[idx];
    ++samples;
    sum += sample;
    if (sample > maxSeen)
        maxSeen = sample;
}

double
Histogram::mean() const
{
    return samples ? static_cast<double>(sum) / samples : 0.0;
}

TimeSeries::TimeSeries(Cycle bucket_cycles) : width(bucket_cycles)
{
    nvo_assert(bucket_cycles > 0);
}

void
TimeSeries::add(Cycle when, std::uint64_t bytes)
{
    std::size_t idx = when / width;
    if (idx >= bins.size())
        bins.resize(idx + 1, 0);
    bins[idx] += bytes;
}

double
TimeSeries::gbPerSec(std::size_t i, double cycles_per_sec) const
{
    if (i >= bins.size())
        return 0.0;
    double seconds = width / cycles_per_sec;
    return bins[i] / seconds / 1e9;
}

std::uint64_t
TimeSeries::peakBytes() const
{
    std::uint64_t peak = 0;
    for (auto b : bins)
        if (b > peak)
            peak = b;
    return peak;
}

double
TimeSeries::meanBytes() const
{
    if (bins.empty())
        return 0.0;
    std::size_t last = bins.size();
    while (last > 0 && bins[last - 1] == 0)
        --last;
    if (last == 0)
        return 0.0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < last; ++i)
        total += bins[i];
    return static_cast<double>(total) / last;
}

void
RunStats::addNvmWrite(NvmWriteKind kind, std::uint64_t bytes, Cycle when)
{
    nvmWriteBytes[static_cast<std::size_t>(kind)] += bytes;
    ++nvmWriteOps;
    nvmBandwidth.add(when, bytes);
}

std::uint64_t
RunStats::totalNvmWriteBytes() const
{
    std::uint64_t total = 0;
    for (auto b : nvmWriteBytes)
        total += b;
    return total;
}

std::uint64_t
RunStats::nvmDataBytes() const
{
    return nvmWriteBytes[static_cast<std::size_t>(NvmWriteKind::Data)];
}

double
RunStats::writeAmp(std::uint64_t base_bytes) const
{
    if (base_bytes == 0)
        return 0.0;
    return static_cast<double>(totalNvmWriteBytes()) / base_bytes;
}

void
RunStats::print(std::ostream &os, const std::string &label) const
{
    os << "=== " << label << " ===\n";
    os << "cycles " << cycles << " instrs " << instructions << " refs "
       << refs << " (ld " << loads << " st " << stores << ")\n";
    os << "L1 " << l1Hits << "/" << (l1Hits + l1Misses) << "  L2 "
       << l2Hits << "/" << (l2Hits + l2Misses) << "  LLC " << llcHits
       << "/" << (llcHits + llcMisses) << "\n";
    os << "nvm-writes:";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(NvmWriteKind::NumKinds); ++i) {
        os << " " << toString(static_cast<NvmWriteKind>(i)) << "="
           << nvmWriteBytes[i];
    }
    os << " total=" << totalNvmWriteBytes() << "\n";
    os << "evictions:";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(EvictReason::NumReasons); ++i) {
        os << " " << toString(static_cast<EvictReason>(i)) << "="
           << evictReason[i];
    }
    os << "\n";
    os << "epochs: advances=" << epochAdvances << " lamport="
       << lamportAdvances << " barrier-stall=" << barrierStallCycles
       << "\n";
}

} // namespace nvo
