/**
 * @file
 * Protocol invariant auditor.
 *
 * The paper's correctness story rests on invariants the simulator
 * otherwise only hopes are true: sealed versions are immutable, dirty
 * OIDs never run ahead of their VD's epoch, inter-VD skew stays under
 * half the 16-bit OID space (Sec. IV-D), min-ver / rec-epoch advance
 * monotonically, and the MNM page pool never double-maps a sub-page.
 * Checkpointing bugs are silent-corruption bugs — a recovered snapshot
 * "works" until it is diffed against ground truth — so this module
 * makes them loud instead.
 *
 * Two pieces:
 *
 *  - `NVO_AUDIT(cond, msg)`: an assert-like check compiled in only
 *    when the build defines NVO_AUDIT_ENABLED (CMake option
 *    `NVO_AUDIT`, default ON for Debug). A failed check panics with
 *    file/line, the condition text, and @p msg; @p msg is evaluated
 *    only on failure, so call sites may build expensive diagnostics.
 *
 *  - `Auditor`: a registry of named sweeps (the `audit()` methods of
 *    CacheArray, Hierarchy, PagePool, EpochTable, MasterTable,
 *    MnmBackend, TagWalker, ...). Sweeps come in two tiers: Light
 *    sweeps are O(#VDs)-cheap epoch-scoped checks (skew bound,
 *    min-ver vs VD epoch) the System runs unconditionally at every
 *    epoch boundary; Full sweeps walk whole structures and run at a
 *    configurable quantum stride and at the end of the run. Tests
 *    invoke the registry directly.
 *
 * Every audited invariant is catalogued in docs/INVARIANTS.md with
 * its paper section.
 */

#ifndef NVO_COMMON_AUDIT_HH
#define NVO_COMMON_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace nvo
{
namespace audit
{

/** True when the build compiles invariant checks in. */
#ifdef NVO_AUDIT_ENABLED
constexpr bool enabled = true;
#else
constexpr bool enabled = false;
#endif

namespace detail
{

/** Count one executed check (global, single-threaded simulator). */
void onCheck();

/** Report a failed check and abort. */
[[noreturn]] void fail(const char *file, int line, const char *cond_str,
                       const std::string &msg);

} // namespace detail

/** Total NVO_AUDIT checks executed since process start. */
std::uint64_t checksExecuted();

} // namespace audit
} // namespace nvo

#ifdef NVO_AUDIT_ENABLED
#define NVO_AUDIT(cond, msg)                                           \
    do {                                                               \
        ::nvo::audit::detail::onCheck();                               \
        if (!(cond))                                                   \
            ::nvo::audit::detail::fail(__FILE__, __LINE__, #cond,      \
                                       (msg));                         \
    } while (0)
#else
/* Compiled out: operands stay type-checked but are never evaluated. */
#define NVO_AUDIT(cond, msg)                                           \
    do {                                                               \
        if (false) {                                                   \
            static_cast<void>(cond);                                   \
            static_cast<void>(msg);                                    \
        }                                                              \
    } while (0)
#endif

namespace nvo
{

/**
 * Registry of named audit sweeps. Components register a closure that
 * walks their structures running NVO_AUDIT checks; `runAll()` invokes
 * every registered sweep once. Registration order is preserved so
 * failures in foundational structures (pools, tables) surface before
 * failures in the layers built on them.
 */
class Auditor
{
  public:
    /**
     * Sweep cost tier. Light sweeps must be cheap enough to run at
     * every epoch boundary (epochs can advance every quantum); Full
     * sweeps may walk entire caches and mapping tables.
     */
    enum class Tier
    {
        Light,
        Full,
    };

    /** Register sweep @p fn under @p name (diagnostics only). */
    void add(std::string name, std::function<void()> fn,
             Tier tier = Tier::Full);

    /** Run every registered sweep once. */
    void runAll();

    /** Run only the Light-tier sweeps (epoch-boundary pass). */
    void runLight();

    std::size_t numChecks() const { return checks.size(); }

    /** Completed runAll() passes. */
    std::uint64_t sweeps() const { return sweepCount; }

    /** Individual sweep invocations across all passes. */
    std::uint64_t sweepsExecuted() const { return runCount; }

    /** Name of the sweep currently executing ("" outside runAll). */
    const std::string &currentSweep() const { return current; }

  private:
    struct Check
    {
        std::string name;
        std::function<void()> fn;
        Tier tier;
    };

    void runTier(bool light_only);

    std::vector<Check> checks;
    std::string current;
    std::uint64_t sweepCount = 0;
    std::uint64_t runCount = 0;
};

} // namespace nvo

#endif // NVO_COMMON_AUDIT_HH
