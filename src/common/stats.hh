/**
 * @file
 * Run statistics: hot counters as plain fields, plus a histogram and a
 * bandwidth time series. Every experiment harness consumes a RunStats.
 */

#ifndef NVO_COMMON_STATS_HH
#define NVO_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nvo
{

/** Where NVM write bytes came from; drives write-amplification plots. */
enum class NvmWriteKind : unsigned
{
    Data = 0,    ///< snapshot / working data lines
    Log,         ///< undo/redo log entries (logging schemes)
    Mapping,     ///< persistent mapping-table metadata (shadow schemes)
    Context,     ///< per-core context dumps at epoch ends
    NumKinds
};

const char *toString(NvmWriteKind kind);

/** Why a line left a cache; drives the Fig. 15 decomposition. */
enum class EvictReason : unsigned
{
    Capacity = 0,   ///< replacement on a fill
    Coherence,      ///< external invalidation / downgrade (incl. logs)
    TagWalk,        ///< background tag walker write back
    StoreEvict,     ///< NVOverlay store-eviction of an immutable version
    EpochFlush,     ///< synchronous flush at an epoch boundary
    NumReasons
};

const char *toString(EvictReason reason);

/** Fixed-width bucketed histogram over uint64 samples. */
class Histogram
{
  public:
    explicit Histogram(std::uint64_t bucket_width = 1,
                       std::size_t num_buckets = 64);

    void add(std::uint64_t sample);
    std::uint64_t count() const { return samples; }
    std::uint64_t total() const { return sum; }
    double mean() const;
    std::uint64_t maxSample() const { return maxSeen; }
    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return buckets;
    }

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    std::uint64_t maxSeen = 0;
};

/**
 * Bytes binned by cycle bucket; used for the Fig. 17 NVM bandwidth
 * time series. Buckets extend on demand.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Cycle bucket_cycles = 100000);

    void add(Cycle when, std::uint64_t bytes);
    Cycle bucketCycles() const { return width; }
    const std::vector<std::uint64_t> &buckets() const { return bins; }

    /** Bandwidth in GB/s for bucket @p i at @p cycles_per_sec. */
    double gbPerSec(std::size_t i, double cycles_per_sec) const;

    /** Peak bucket value in bytes. */
    std::uint64_t peakBytes() const;

    /** Mean bytes over non-empty prefix [0, last non-zero bucket]. */
    double meanBytes() const;

  private:
    Cycle width;
    std::vector<std::uint64_t> bins;
};

/** All statistics produced by one simulation run. */
struct RunStats
{
    // Execution.
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t barrierStallCycles = 0;

    // Cache behaviour.
    std::uint64_t l1Hits = 0, l1Misses = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0;
    std::uint64_t llcHits = 0, llcMisses = 0;

    // Epochs.
    std::uint64_t epochAdvances = 0;        ///< store-count triggered
    std::uint64_t lamportAdvances = 0;      ///< coherence-driven
    std::uint64_t contextDumps = 0;

    // NVM / DRAM traffic.
    std::array<std::uint64_t,
               static_cast<std::size_t>(NvmWriteKind::NumKinds)>
        nvmWriteBytes{};
    std::uint64_t nvmWriteOps = 0;
    std::uint64_t nvmReadBytes = 0;
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;

    // Evictions by reason (counts of line write backs).
    std::array<std::uint64_t,
               static_cast<std::size_t>(EvictReason::NumReasons)>
        evictReason{};

    // NVOverlay backend.
    std::uint64_t omcBufferHits = 0;
    std::uint64_t omcBufferMisses = 0;
    std::uint64_t masterTableBytes = 0;
    std::uint64_t masterMappedLines = 0;
    std::uint64_t epochTableBytes = 0;
    std::uint64_t poolPagesInUse = 0;
    std::uint64_t gcCompactions = 0;
    std::uint64_t gcBytesCopied = 0;
    std::uint64_t tagWalkLinesScanned = 0;
    std::uint64_t tagWalkWriteBacks = 0;

    /** Snapshot replication (src/repl); all zero when disabled. */
    struct ReplStats
    {
        std::uint64_t framesSent = 0;      ///< first transmissions
        std::uint64_t framesRetried = 0;
        std::uint64_t framesDropped = 0;
        std::uint64_t framesCorrupted = 0;
        std::uint64_t framesAcked = 0;
        std::uint64_t framesDeduped = 0;   ///< duplicate deliveries
        std::uint64_t wireBytes = 0;       ///< incl. retransmissions
        std::uint64_t deltaBytes = 0;      ///< payload bytes shipped
        std::uint64_t epochsShipped = 0;
        std::uint64_t epochsApplied = 0;
        std::uint64_t lateShipped = 0;
        std::uint64_t decodeResyncs = 0;
        std::uint64_t decodeCrcErrors = 0;
        std::uint64_t backpressureStalls = 0;
        std::uint64_t cursorPersists = 0;
        std::uint64_t resumes = 0;
        std::uint64_t reshippedEpochs = 0;
        std::uint64_t sendQueuePeak = 0;
        std::uint64_t appliedRecEpoch = 0; ///< standby's rec-epoch
        std::uint64_t cursorEpoch = 0;     ///< durable cursor at end
    } repl;

    /** NVM write bandwidth series (all kinds combined). */
    TimeSeries nvmBandwidth{100000};

    /** Cold extension counters keyed by name. */
    std::map<std::string, std::uint64_t> extra;

    void addNvmWrite(NvmWriteKind kind, std::uint64_t bytes, Cycle when);

    std::uint64_t totalNvmWriteBytes() const;
    std::uint64_t nvmDataBytes() const;

    /**
     * Write amplification relative to @p base_bytes of application
     * dirty data; returns 0 when base is 0.
     */
    double writeAmp(std::uint64_t base_bytes) const;

    void print(std::ostream &os, const std::string &label) const;
};

} // namespace nvo

#endif // NVO_COMMON_STATS_HH
