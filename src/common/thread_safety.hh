/**
 * @file
 * Clang thread-safety capability annotations + the shard capability.
 *
 * The simulator is single-threaded today, but ROADMAP item 1 (host-
 * parallel shared-nothing shards) is about to change that. These
 * macros let the state that refactor will shard — the MNM/CST tables,
 * the page pool, the OMC buffers, the per-epoch metric series, the
 * replication cursor — carry machine-checked statements about which
 * capability guards it *before* any std::thread exists, so the
 * parallel refactor starts from an audited baseline instead of a
 * guess.
 *
 * The macros wrap clang's thread-safety attributes and expand to
 * nothing elsewhere (gcc would reject the attribute spellings), so
 * they cost nothing until a `-Wthread-safety` clang build checks them
 * (CI runs one with -Werror=thread-safety).
 *
 * Idiom for the single-threaded present:
 *
 *  - each shardable aggregate owns a `ShardCap` and marks the members
 *    the future refactor must confine with NVO_GUARDED_BY(cap_);
 *  - every method touching guarded members opens with
 *    `cap_.assertHeld()`, which tells the static analysis the
 *    capability is held for the rest of the scope *without* imposing
 *    lock obligations on callers (the single simulation thread holds
 *    every capability implicitly);
 *  - private helpers only ever entered from asserting methods may
 *    instead declare NVO_REQUIRES(cap_), which makes the analysis
 *    verify the call sites.
 *
 * When the shards arrive, the per-shard worker takes the capability
 * for real through ShardGuard (acquire/release are annotated and,
 * under NVO_AUDIT, enforce single-owner semantics at runtime — which
 * also gives ThreadSanitizer real lock events to order).
 */

#ifndef NVO_COMMON_THREAD_SAFETY_HH
#define NVO_COMMON_THREAD_SAFETY_HH

#ifdef NVO_AUDIT_ENABLED
#include <atomic>
#include <thread>

#include "common/log.hh"
#endif

#if defined(__clang__)
#define NVO_TS_ATTR(x) __attribute__((x))
#else
#define NVO_TS_ATTR(x)
#endif

/** Class attribute: instances are capabilities ("shard", "mutex"). */
#define NVO_CAPABILITY(name) NVO_TS_ATTR(capability(name))

/** Member attribute: reads/writes require holding @p cap. */
#define NVO_GUARDED_BY(cap) NVO_TS_ATTR(guarded_by(cap))

/** Pointer member: the pointee is guarded by @p cap. */
#define NVO_PT_GUARDED_BY(cap) NVO_TS_ATTR(pt_guarded_by(cap))

/** Function attribute: callers must hold the capabilities. */
#define NVO_REQUIRES(...) NVO_TS_ATTR(requires_capability(__VA_ARGS__))

/** Function attribute: acquires the capabilities (not released). */
#define NVO_ACQUIRE(...) NVO_TS_ATTR(acquire_capability(__VA_ARGS__))

/** Function attribute: releases the capabilities. */
#define NVO_RELEASE(...) NVO_TS_ATTR(release_capability(__VA_ARGS__))

/** Function attribute: asserts the capability is already held —
 *  checked fact, no caller obligation (clang assert_capability). */
#define NVO_ASSERT_CAPABILITY(...) \
    NVO_TS_ATTR(assert_capability(__VA_ARGS__))

/** Class attribute for RAII guards (scoped_lockable). */
#define NVO_SCOPED_CAPABILITY NVO_TS_ATTR(scoped_lockable)

/** Escape hatch; use only with a justifying comment. */
#define NVO_NO_THREAD_SAFETY_ANALYSIS \
    NVO_TS_ATTR(no_thread_safety_analysis)

namespace nvo
{

/**
 * The capability guarding one shard's worth of simulator state.
 *
 * Disarmed (release builds) every operation is an empty inline and
 * the class exists purely as an annotation anchor. Under NVO_AUDIT,
 * acquire/release enforce single-owner handoff and assertHeld traps
 * a foreign thread touching state some other thread explicitly owns
 * — the runtime shadow of the static analysis, and the hook TSan
 * needs to see happens-before edges once shards are real.
 */
class NVO_CAPABILITY("shard") ShardCap
{
  public:
    ShardCap() = default;
    ShardCap(const ShardCap &) = delete;
    ShardCap &operator=(const ShardCap &) = delete;

    /**
     * A container relocating a shardable aggregate (e.g. the
     * VersionedDomain vector growing) moves the anchor, not
     * ownership: the moved-to capability starts unowned, and under
     * NVO_AUDIT only unowned capabilities may relocate at all —
     * growth happens before any worker takes a shard.
     */
    ShardCap(ShardCap &&other) noexcept
    {
#ifdef NVO_AUDIT_ENABLED
        nvo_assert(other.owner.load(std::memory_order_relaxed) ==
                       std::thread::id(),
                   "ShardCap moved while a thread owns it");
#else
        (void)other;
#endif
    }

    ShardCap &
    operator=(ShardCap &&other) noexcept
    {
#ifdef NVO_AUDIT_ENABLED
        nvo_assert(other.owner.load(std::memory_order_relaxed) ==
                           std::thread::id() &&
                       owner.load(std::memory_order_relaxed) ==
                           std::thread::id(),
                   "ShardCap move-assigned while a thread owns it");
#else
        (void)other;
#endif
        return *this;
    }

#ifdef NVO_AUDIT_ENABLED
    void
    acquire() NVO_ACQUIRE()
    {
        std::thread::id none;
        std::thread::id self = std::this_thread::get_id();
        std::thread::id prev = none;
        bool ok = owner.compare_exchange_strong(
            prev, self, std::memory_order_acquire);
        nvo_assert(ok, "ShardCap acquired while another thread "
                       "holds it");
    }

    void
    release() NVO_RELEASE()
    {
        std::thread::id self = std::this_thread::get_id();
        std::thread::id prev = self;
        bool ok = owner.compare_exchange_strong(
            prev, std::thread::id(), std::memory_order_release);
        nvo_assert(ok, "ShardCap released by a thread that does not "
                       "hold it");
    }

    void
    assertHeld() const NVO_ASSERT_CAPABILITY()
    {
        // Unowned = the single simulation thread holds every shard
        // implicitly; owned = only the owner may touch the state.
        std::thread::id cur = owner.load(std::memory_order_relaxed);
        nvo_assert(cur == std::thread::id() ||
                       cur == std::this_thread::get_id(),
                   "shard state touched by a thread that does not "
                   "hold its capability");
    }

  private:
    mutable std::atomic<std::thread::id> owner{};
#else
    void acquire() NVO_ACQUIRE() {}
    void release() NVO_RELEASE() {}
    void assertHeld() const NVO_ASSERT_CAPABILITY() {}
#endif
};

/** RAII shard ownership for the future per-shard workers. */
class NVO_SCOPED_CAPABILITY ShardGuard
{
  public:
    explicit ShardGuard(ShardCap &c) NVO_ACQUIRE(c) : cap(c)
    {
        cap.acquire();
    }

    ~ShardGuard() NVO_RELEASE() { cap.release(); }

    ShardGuard(const ShardGuard &) = delete;
    ShardGuard &operator=(const ShardGuard &) = delete;

  private:
    ShardCap &cap;
};

} // namespace nvo

#endif // NVO_COMMON_THREAD_SAFETY_HH
