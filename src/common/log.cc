#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace nvo
{

namespace
{
bool quietMode = false;

void
vreport(const char *level, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", level);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace nvo
