/**
 * @file
 * Status and error reporting in the gem5 tradition: panic() for
 * simulator bugs (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform() for advisory messages.
 */

#ifndef NVO_COMMON_LOG_HH
#define NVO_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace nvo
{

/** Print an error for a simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error the user caused and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Advisory: something may be modelled imperfectly. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Advisory: normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (tests use this). */
void setQuiet(bool quiet);

/**
 * Assert-like check active in all build types.
 * Use for simulator invariants whose violation means a bug.
 */
#define nvo_assert(cond, ...)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::nvo::panic("assertion '%s' failed at %s:%d %s", #cond,   \
                         __FILE__, __LINE__,                           \
                         ::nvo::detail::firstArgOrEmpty(__VA_ARGS__)); \
        }                                                              \
    } while (0)

namespace detail
{
inline const char *firstArgOrEmpty() { return ""; }
inline const char *firstArgOrEmpty(const char *msg) { return msg; }
inline const char *firstArgOrEmpty(const std::string &msg)
{
    return msg.c_str();
}
} // namespace detail

} // namespace nvo

#endif // NVO_COMMON_LOG_HH
