/**
 * @file
 * Flat key-value configuration store with typed accessors.
 *
 * Keys use dotted paths ("l2.size_kb"). Values are stored as strings
 * and parsed on access; unknown keys fall back to the caller-supplied
 * default so every parameter has exactly one authoritative default at
 * its point of use. Accessed keys are recorded so table2_config can
 * print the full resolved configuration.
 */

#ifndef NVO_COMMON_CONFIG_HH
#define NVO_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nvo
{

class Config
{
  public:
    Config() = default;

    /** Set (or override) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, double value);

    /** True iff the key was explicitly set. */
    bool has(const std::string &key) const;

    /**
     * Typed getters. The default is recorded as the resolved value when
     * the key is absent, so dump() reflects the effective config.
     */
    std::uint64_t getU64(const std::string &key, std::uint64_t dflt) const;
    double getF64(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::string getStr(const std::string &key,
                       const std::string &dflt) const;

    /**
     * Parse "key=value" pairs, e.g., from command-line arguments.
     * Malformed input is a user error (fatal).
     */
    void parseArg(const std::string &arg);

    /** All keys that were set or accessed, with resolved values. */
    std::map<std::string, std::string> dump() const;

    /**
     * Set a key the harness derived from other keys (not user input)
     * and mark it consumed, so strict-config checking does not flag
     * it as an unread user key.
     */
    void setDerived(const std::string &key, const std::string &value);
    void setDerived(const std::string &key, std::uint64_t value);

    /**
     * Explicitly set keys that no getter ever read — typos or keys
     * for a different scheme. Strict mode (`cfg.strict=1`) turns a
     * non-empty answer into an error at the driver level.
     */
    std::vector<std::string> unreadKeys() const;

    /**
     * Explicitly set keys starting with @p prefix, in sorted order,
     * marked as accessed (the caller is consuming them wholesale —
     * e.g., the phased workload forwarding `wl.phase<i>.*` overrides
     * into an inner workload's config).
     */
    std::vector<std::string>
    keysWithPrefix(const std::string &prefix) const;

  private:
    std::map<std::string, std::string> values;
    /** Resolved view, including defaults observed on access. */
    mutable std::map<std::string, std::string> resolved;
    /** Keys some getter consumed (strict-config accounting). */
    mutable std::set<std::string> accessed;
};

} // namespace nvo

#endif // NVO_COMMON_CONFIG_HH
