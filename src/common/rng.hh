/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Workloads and tests require run-to-run reproducibility given a seed,
 * so we avoid std::mt19937's implementation-defined seeding helpers and
 * keep the generator fully self-contained.
 */

#ifndef NVO_COMMON_RNG_HH
#define NVO_COMMON_RNG_HH

#include <cstdint>

namespace nvo
{

/** xoshiro256** by Blackman & Vigna; public-domain algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the authors.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace nvo

#endif // NVO_COMMON_RNG_HH
