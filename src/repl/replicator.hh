/**
 * @file
 * Replication bundle: shipper + link + decoder + replica, wired
 * end-to-end and driven from the scheme's tick.
 *
 * Data path per frame: DeltaShipper encodes and link.send()s it; the
 * link's deliver callback feeds raw (possibly corrupted) bytes into
 * the streaming Decoder; every intact frame goes to the
 * ReplicaApplier and is acked back over the link; the ack completes
 * in the shipper, which advances (and persists) the replication
 * cursor once an epoch is fully acked with no unacked predecessor.
 *
 * Failover verification (verify()) walks every tracked line at every
 * applied epoch and compares the standby's time-travel read against
 * the primary's WriteTracker digest — byte-exact, per epoch, up to
 * the standby's applied rec-epoch.
 */

#ifndef NVO_REPL_REPLICATOR_HH
#define NVO_REPL_REPLICATOR_HH

#include <memory>

#include "common/config.hh"
#include "mem/write_tracker.hh"
#include "repl/link.hh"
#include "repl/replica.hh"
#include "repl/shipper.hh"
#include "repl/wire.hh"

namespace nvo
{
namespace repl
{

class Replicator
{
  public:
    struct Params
    {
        AsyncLink::Params link;
        /** Epoch-advance stall per congested check (backpressure). */
        Cycle stallCycles = 200;
        bool testCursorBug = false;
        /** NVM address of the shipper's durable cursor record. */
        Addr cursorAddr = 0;
    };

    /** Read `repl.*` keys; cursorAddr is filled by the caller. */
    static Params paramsFrom(const Config &cfg);

    Replicator(const Params &params, MnmBackend &backend,
               NvmModel &nvm_model, RunStats &run_stats);
    ~Replicator();

    /** Advance the link (and therefore deliveries, acks, retries). */
    void tick(Cycle now);

    /**
     * Pump the link until it is idle and the replica has applied
     * everything the primary certified. Returns the cycle at which
     * the stream drained.
     */
    Cycle drain(Cycle now);

    /** Epoch advance should stall: the send queue hit high water. */
    bool congested(Cycle now);

    Cycle stallCycles() const { return p.stallCycles; }

    /** Primary crash: everything in flight is lost. */
    void onCrash();

    /** Primary recovered (backend.crashReset() done): re-ship from
     *  the durable cursor. Returns epochs re-shipped. */
    std::uint64_t resume(Cycle now);

    struct VerifyReport
    {
        std::uint64_t linesChecked = 0;
        std::uint64_t mismatches = 0;
        /** Versions the primary backend never acked before a crash
         *  (legitimately lost in the late-merge window). */
        std::uint64_t inflightSkips = 0;
        EpochWide appliedRec = 0;
        bool converged = false;   ///< replica caught up to primary

        bool
        consistent() const
        {
            return mismatches == 0 && converged;
        }
    };

    /**
     * Byte-exact failover check: for every epoch 1..appliedRec and
     * every tracked line, the standby's snapshot read must match the
     * tracker's expected digest. @p tolerate_inflight skips versions
     * the primary never acked (post-crash verification).
     */
    VerifyReport verify(const WriteTracker &tracker,
                        bool tolerate_inflight) const;

    /** Fill stats.repl from link/decoder/shipper/replica counters. */
    void exportStats();

    DeltaShipper &shipper() { return *shipper_; }
    AsyncLink &link() { return *link_; }
    ReplicaApplier &replica() { return *replica_; }
    const ReplicaApplier &replica() const { return *replica_; }
    const Decoder &decoder() const { return decoder_; }

  private:
    Params p;
    MnmBackend &backend;
    RunStats &stats;
    std::unique_ptr<AsyncLink> link_;
    std::unique_ptr<ReplicaApplier> replica_;
    std::unique_ptr<DeltaShipper> shipper_;
    Decoder decoder_;
};

} // namespace repl
} // namespace nvo

#endif // NVO_REPL_REPLICATOR_HH
