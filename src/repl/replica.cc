#include "repl/replica.hh"

#include "common/log.hh"
#include "fault/fault.hh"
#include "obs/ledger.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace nvo
{
namespace repl
{

namespace
{

/**
 * Quiesce the global observability/fault singletons for the scope of
 * a standby apply: the replica reuses the primary's backend code, and
 * its inserts must not show up in the primary's trace, be accounted
 * as primary version lifecycles, or consume the primary's fault plan.
 */
class Quiesce
{
  public:
    Quiesce()
        : savedMask(obs::tracer().mask()),
          ledgerWasArmed(obs::ledger().armed()),
          metricsWereArmed(obs::metricRegistry().armed())
    {
        obs::tracer().setMask(0);
        if (ledgerWasArmed)
            obs::ledger().setArmed(false);
        // The standby's MnmBackend shares registered metric handles
        // with the primary's (same names); disarm so standby applies
        // do not pollute the primary's distributions.
        if (metricsWereArmed)
            obs::metricRegistry().setArmed(false);
    }

    ~Quiesce()
    {
        obs::tracer().setMask(savedMask);
        if (ledgerWasArmed)
            obs::ledger().setArmed(true);
        if (metricsWereArmed)
            obs::metricRegistry().setArmed(true);
    }

    Quiesce(const Quiesce &) = delete;
    Quiesce &operator=(const Quiesce &) = delete;

  private:
    std::uint32_t savedMask;
    bool ledgerWasArmed;
    bool metricsWereArmed;
    fault::ScopedPause pause;
};

} // namespace

ReplicaApplier::ReplicaApplier(const Params &params) : p(params)
{
    nvm = std::make_unique<NvmModel>(NvmModel::Params{},
                                     &standbyStats);
    MnmBackend::Params bp;
    bp.numOmcs = p.numOmcs;
    bp.numVds = 1;   // the stream is already one serialized timeline
    bp.poolBase = p.poolBase;
    bp.poolBytesPerOmc = p.poolBytesPerOmc;
    // Keep merged tables: failover verification time-travels into
    // every applied epoch.
    bp.dropMergedTables = false;
    Quiesce q;
    standby = std::make_unique<MnmBackend>(bp, *nvm, standbyStats);
}

void
ReplicaApplier::onFrame(const Frame &f, Cycle now)
{
    if (f.generation > generation) {
        // The primary resumed from its durable cursor: whatever was
        // pending is from the dead stream; the resumed stream
        // re-ships those epochs whole.
        generation = f.generation;
        pending.clear();
    }
    if (!seenFrames.insert(f.frameId).second) {
        ++deduped;
        return;   // retransmission of a frame that already arrived
    }

    switch (f.type) {
      case FrameType::Delta:
        pending[f.epoch].deltas[static_cast<Addr>(f.arg)] = {
            f.payload, f.frameId};
        break;
      case FrameType::EpochClose: {
        PendingEpoch &pe = pending[f.epoch];
        pe.closed = true;
        pe.expected = f.arg;
        break;
      }
      case FrameType::LateDelta:
        if (f.epoch <= appliedRec) {
            // Amendment to an epoch the standby already applied:
            // replay the primary's late-merge path right away.
            Quiesce q;
            standby->insertVersion(static_cast<Addr>(f.arg), f.epoch,
                                   f.frameId, f.payload, now);
            ++latesApplied_;
        } else {
            // The amended epoch has not applied here yet; its content
            // is (or will be) part of the epoch's own delta once the
            // close arrives, so fold the amendment in as a delta.
            pending[f.epoch].lates.push_back(
                {static_cast<Addr>(f.arg), f.payload, f.frameId});
        }
        break;
    }
    tryApply(now);
}

void
ReplicaApplier::tryApply(Cycle now)
{
    for (;;) {
        auto it = pending.find(appliedRec + 1);
        if (it == pending.end())
            return;
        PendingEpoch &pe = it->second;
        if (!pe.closed || pe.deltas.size() < pe.expected)
            return;   // waiting for retransmissions to fill the gap
        nvo_assert(pe.deltas.size() == pe.expected,
                   "replica holds more deltas for an epoch than the "
                   "primary shipped");
        EpochWide e = it->first;
        {
            Quiesce q;
            for (const auto &kv : pe.deltas)
                standby->insertVersion(kv.first, e, kv.second.second,
                                       kv.second.first, now);
            // Certify the epoch: the standby's own rec-epoch advances
            // and its tables merge exactly like a primary's.
            standby->reportMinVer(0, e + 1, now);
            for (const auto &late : pe.lates) {
                standby->insertVersion(late.line, e, late.frameId,
                                       late.content, now);
                ++latesApplied_;
            }
        }
        nvo_assert(standby->recEpoch() == e,
                   "standby rec-epoch did not follow the applied "
                   "epoch");
        std::uint64_t count = pe.expected;
        pending.erase(it);
        appliedRec = e;
        ++applied;
        NVO_TRACE(Repl, ReplEpochApplied, obs::trackRepl, now, e,
                  count);
    }
}

} // namespace repl
} // namespace nvo
