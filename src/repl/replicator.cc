#include "repl/replicator.hh"

#include "common/log.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace nvo
{
namespace repl
{

Replicator::Params
Replicator::paramsFrom(const Config &cfg)
{
    Params p;
    p.link.bytesPerCycle = cfg.getU64("repl.bw_bytes_per_cycle", 16);
    p.link.latency = cfg.getU64("repl.latency", 5000);
    p.link.ackLatency = cfg.getU64("repl.ack_latency", 2500);
    p.link.dropRate = cfg.getF64("repl.drop_rate", 0.0);
    p.link.corruptRate = cfg.getF64("repl.corrupt_rate", 0.0);
    p.link.window =
        static_cast<unsigned>(cfg.getU64("repl.window", 64));
    p.link.highWater = static_cast<std::size_t>(
        cfg.getU64("repl.highwater", 4096));
    p.link.retryTimeout = cfg.getU64("repl.retry_timeout", 40000);
    p.link.maxRetries =
        static_cast<unsigned>(cfg.getU64("repl.max_retries", 64));
    // Decorrelate from the workload's reference stream while staying
    // deterministic per seed.
    p.link.seed = cfg.getU64("rng.seed", 1) + 0x9e3779b9u;
    p.stallCycles = cfg.getU64("repl.stall_cycles", 200);
    p.testCursorBug = cfg.getBool("repl.test_cursor_bug", false);
    return p;
}

Replicator::Replicator(const Params &params, MnmBackend &backend_ref,
                       NvmModel &nvm_model, RunStats &run_stats)
    : p(params), backend(backend_ref), stats(run_stats)
{
    link_ = std::make_unique<AsyncLink>(p.link);

    ReplicaApplier::Params rp;
    rp.numOmcs = backend.numOmcs();
    replica_ = std::make_unique<ReplicaApplier>(rp);

    DeltaShipper::Params sp;
    sp.cursorAddr = p.cursorAddr;
    sp.testCursorBug = p.testCursorBug;
    shipper_ = std::make_unique<DeltaShipper>(backend, nvm_model,
                                              *link_, stats, sp);

    link_->setDeliver(
        [this](const std::vector<std::uint8_t> &bytes, Cycle cycle) {
            decoder_.feed(bytes);
            while (auto f = decoder_.poll()) {
                replica_->onFrame(*f, cycle);
                link_->ack(f->frameId, cycle);
            }
        });
    link_->setOnAck([this](std::uint64_t frame_id, Cycle cycle) {
        shipper_->onFrameAcked(frame_id, cycle);
    });

    backend.setReplSink(shipper_.get());

    // Live replication health, polled at snapshot time. Both values
    // are simulated-link state (seeded RNG), so they stay Sim scope
    // and deterministic per seed.
    obs::metricRegistry().addGauge("repl.retransmits", [this] {
        return link_->stats().retries;
    });
    obs::metricRegistry().addGauge("repl.lag_epochs", [this] {
        std::uint64_t shipped = stats.repl.epochsShipped;
        std::uint64_t applied = replica_->epochsApplied();
        return shipped > applied ? shipped - applied : 0;
    });
}

Replicator::~Replicator()
{
    backend.setReplSink(nullptr);
}

void
Replicator::tick(Cycle now)
{
    link_->tick(now);
}

Cycle
Replicator::drain(Cycle now)
{
    // Generous bound: a dead link trips the per-frame retry budget
    // long before this does.
    constexpr std::uint64_t maxIters = 1u << 24;
    constexpr Cycle quantum = 1000;
    for (std::uint64_t i = 0; i < maxIters; ++i) {
        // Idle means every frame was delivered and acked: the replica
        // has received everything it will ever receive. If it still
        // has not caught up the stream is permanently short (e.g. a
        // cursor bug skipped an epoch on resume) — return and let
        // verify() report the non-convergence instead of spinning.
        if (link_->idle())
            return now;
        now += quantum;
        link_->tick(now);
    }
    nvo_assert(false, "replication stream failed to drain");
    return now;
}

bool
Replicator::congested(Cycle now)
{
    if (!link_->congested())
        return false;
    ++stats.repl.backpressureStalls;
    NVO_TRACE(Repl, ReplBackpressure, obs::trackRepl, now,
              link_->queueDepth(), 0);
    return true;
}

void
Replicator::onCrash()
{
    link_->reset();
    shipper_->onCrash();
}

std::uint64_t
Replicator::resume(Cycle now)
{
    return shipper_->resume(now);
}

Replicator::VerifyReport
Replicator::verify(const WriteTracker &tracker,
                   bool tolerate_inflight) const
{
    VerifyReport rep;
    rep.appliedRec = replica_->appliedRecEpoch();
    rep.converged = rep.appliedRec >= backend.recEpoch();
    const MnmBackend &standby = replica_->backend();
    for (Addr line : tracker.trackedLines()) {
        for (EpochWide e = 1; e <= rep.appliedRec; ++e) {
            auto expect = tracker.expectedEntry(line, e);
            if (!expect)
                continue;
            if (tolerate_inflight &&
                backend.ackedEpoch(line) < expect->epoch) {
                // The primary itself never processed this version
                // before the crash (late-merge window); the replica
                // cannot have it either.
                ++rep.inflightSkips;
                continue;
            }
            ++rep.linesChecked;
            LineData got;
            if (!standby.readSnapshot(line, e, got) ||
                got.digest() != expect->digest)
                ++rep.mismatches;
        }
    }
    return rep;
}

void
Replicator::exportStats()
{
    const AsyncLink::LinkStats &ls = link_->stats();
    stats.repl.framesSent = ls.framesSent;
    stats.repl.framesRetried = ls.retries;
    stats.repl.framesDropped = ls.drops;
    stats.repl.framesCorrupted = ls.corrupts;
    stats.repl.framesAcked = ls.acked;
    stats.repl.wireBytes = ls.wireBytes;
    stats.repl.sendQueuePeak = ls.queuePeak;
    stats.repl.framesDeduped = replica_->framesDeduped();
    stats.repl.epochsApplied = replica_->epochsApplied();
    stats.repl.appliedRecEpoch = replica_->appliedRecEpoch();
    stats.repl.cursorEpoch = shipper_->durableCursor();
    stats.repl.decodeResyncs = decoder_.resyncs();
    stats.repl.decodeCrcErrors = decoder_.crcErrors();
}

} // namespace repl
} // namespace nvo
