#include "repl/shipper.hh"

#include "common/log.hh"
#include "fault/fault.hh"
#include "mem/persist_domain.hh"
#include "obs/trace.hh"

namespace nvo
{
namespace repl
{

DeltaShipper::DeltaShipper(MnmBackend &backend_ref, NvmModel &nvm_model,
                           AsyncLink &link_ref, RunStats &run_stats,
                           const Params &params)
    : backend(backend_ref), nvm(nvm_model), link(link_ref),
      stats(run_stats), p(params)
{
    nvo_assert(p.cursorAddr != 0, "shipper needs a cursor address");
}

void
DeltaShipper::sendFrame(FrameType type, EpochWide epoch,
                        std::uint64_t arg, const LineData *payload,
                        Cycle now)
{
    cap_.assertHeld();
    Frame f;
    f.type = type;
    f.generation = generation_;
    f.epoch = epoch;
    f.arg = arg;
    f.frameId = nextFrameId++;
    if (payload)
        f.payload = *payload;
    NVO_FAULT_POINT("repl.ship.frame");
    if (type == FrameType::LateDelta) {
        lateLog.push_back({static_cast<Addr>(arg), epoch, f.frameId,
                           false});
        // The durable late log: one small append per amendment so a
        // crashed primary knows which amendments may still be
        // un-acked (the content itself survives in the pool image).
        nvm.persist().write(p.cursorAddr + lineBytes, 16, now,
                            NvmWriteKind::Mapping);
        NVO_TRACE(Repl, ReplShipLate, obs::trackRepl, now, arg,
                  epoch);
    } else {
        outstanding[epoch] += 1;
        frameEpoch[f.frameId] = epoch;
        if (type == FrameType::Delta)
            NVO_TRACE(Repl, ReplShipDelta, obs::trackRepl, now, arg,
                      epoch);
        else
            NVO_TRACE(Repl, ReplShipClose, obs::trackRepl, now, arg,
                      epoch);
    }
    std::vector<std::uint8_t> bytes = encode(f);
    if (payload)
        stats.repl.deltaBytes += lineBytes;
    link.send(f.frameId, std::move(bytes), now);
}

void
DeltaShipper::shipEpoch(EpochWide e, Cycle now)
{
    NVO_FAULT_POINT("repl.ship.epoch");
    if (p.testCursorBug && e > durableCursor_) {
        // Seeded bug: certify the epoch shipped before a single frame
        // is acked. A crash while its frames are in flight makes
        // resume skip them for good.
        nvm.persist().write(p.cursorAddr, 16, now,
                            NvmWriteKind::Mapping);
        nvm.persist().barrier();
        durableCursor_ = e;
        ++stats.repl.cursorPersists;
    }
    std::uint64_t count = 0;
    for (unsigned omc = 0; omc < backend.numOmcs(); ++omc) {
        EpochTable *table = backend.epochTable(omc, e);
        if (!table)
            continue;   // this partition saw no writes in epoch e
        table->forEachVersion([&](Addr line_addr, Addr) {
            LineData content;
            bool ok = table->readVersion(line_addr, content);
            nvo_assert(ok, "epoch-table version unreadable while "
                           "extracting its delta");
            sendFrame(FrameType::Delta, e, line_addr, &content, now);
            ++count;
        });
    }
    // Always close the epoch — an empty close keeps the replica's
    // in-order apply chain gapless.
    sendFrame(FrameType::EpochClose, e, count, nullptr, now);
    shippedUpTo_ = e;
    ++stats.repl.epochsShipped;
}

void
DeltaShipper::onEpochsRecoverable(EpochWide from, EpochWide upto,
                                  Cycle now)
{
    cap_.assertHeld();
    for (EpochWide e = from + 1; e <= upto; ++e)
        shipEpoch(e, now);
}

void
DeltaShipper::onLateVersion(Addr line_addr, EpochWide oid,
                            const LineData &content, Cycle now)
{
    cap_.assertHeld();
    sendFrame(FrameType::LateDelta, oid, line_addr, &content, now);
    ++stats.repl.lateShipped;
}

void
DeltaShipper::onFrameAcked(std::uint64_t frame_id, Cycle now)
{
    cap_.assertHeld();
    auto it = frameEpoch.find(frame_id);
    if (it != frameEpoch.end()) {
        EpochWide e = it->second;
        frameEpoch.erase(it);
        auto out = outstanding.find(e);
        nvo_assert(out != outstanding.end() && out->second > 0);
        if (--out->second == 0) {
            outstanding.erase(out);
            maybeAdvanceCursor(now);
        }
        return;
    }
    for (auto &rec : lateLog)
        if (rec.frameId == frame_id)
            rec.acked = true;
}

void
DeltaShipper::maybeAdvanceCursor(Cycle now)
{
    EpochWide before = cursor_;
    while (cursor_ < shippedUpTo_ &&
           outstanding.find(cursor_ + 1) == outstanding.end())
        ++cursor_;
    if (cursor_ > before && cursor_ > durableCursor_ &&
        !p.testCursorBug)
        persistCursor(now);
}

void
DeltaShipper::persistCursor(Cycle now)
{
    NVO_FAULT_POINT("repl.cursor.persist");
    // One small record: {cursor epoch, generation}; the fence orders
    // it behind everything the cursor claims was delivered.
    nvm.persist().write(p.cursorAddr, 16, now, NvmWriteKind::Mapping);
    nvm.persist().barrier();
    durableCursor_ = cursor_;
    // The same record durably trims late amendments acked by now.
    std::size_t kept = 0;
    for (auto &rec : lateLog)
        if (!rec.acked)
            lateLog[kept++] = rec;
    lateLog.resize(kept);
    ++stats.repl.cursorPersists;
    NVO_TRACE(Repl, ReplCursorPersist, obs::trackRepl, now, cursor_,
              generation_);
}

void
DeltaShipper::onCrash()
{
    cap_.assertHeld();
    outstanding.clear();
    frameEpoch.clear();
    cursor_ = durableCursor_;
    shippedUpTo_ = durableCursor_;
}

std::uint64_t
DeltaShipper::resume(Cycle now)
{
    cap_.assertHeld();
    NVO_FAULT_POINT("repl.resume");
    ++generation_;
    onCrash();
    ++stats.repl.resumes;
    EpochWide rec = backend.recEpoch();
    NVO_TRACE(Repl, ReplResume, obs::trackRepl, now, durableCursor_,
              rec);

    std::uint64_t reshipped = 0;
    for (EpochWide e = durableCursor_ + 1; e <= rec; ++e) {
        shipEpoch(e, now);
        ++reshipped;
    }

    // Un-trimmed late amendments may have been lost in flight;
    // re-ship them from the current recoverable image (idempotent on
    // the replica). Every surviving entry counts as un-acked again —
    // the pre-crash acks died with the link.
    std::vector<LateRec> pending;
    pending.swap(lateLog);
    for (const auto &rec_entry : pending) {
        LineData content;
        EpochWide found = 0;
        if (!backend.readSnapshot(rec_entry.line, rec, content,
                                  &found))
            continue;   // line no longer recoverable at all
        sendFrame(FrameType::LateDelta, found, rec_entry.line,
                  &content, now);
        ++stats.repl.lateShipped;
    }
    stats.repl.reshippedEpochs += reshipped;
    return reshipped;
}

} // namespace repl
} // namespace nvo
