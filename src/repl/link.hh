/**
 * @file
 * Asynchronous lossy link model between the primary and the standby.
 *
 * Modeled like a queued I/O channel: frames enter a send queue, a
 * bounded in-flight window paces transmission over a serializing
 * bandwidth model, and each transmission independently rolls seeded
 * drop/corrupt outcomes. The receiver acks decoded frames by frame
 * id after an ack latency; unacked frames retransmit on a timeout
 * with exponential backoff. The sender exposes a high-water
 * congestion signal the scheme uses to stall epoch advance
 * (backpressure) instead of letting the queue grow without bound.
 *
 * Everything is driven from tick(now) at the harness quantum
 * granularity; all randomness comes from one seeded Rng so runs are
 * reproducible.
 */

#ifndef NVO_REPL_LINK_HH
#define NVO_REPL_LINK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace nvo
{
namespace repl
{

class AsyncLink
{
  public:
    struct Params
    {
        /** Serialization bandwidth, bytes per cycle. */
        std::uint64_t bytesPerCycle = 16;
        /** One-way propagation latency, cycles. */
        Cycle latency = 5000;
        /** Receiver-to-sender ack latency, cycles. */
        Cycle ackLatency = 2500;
        /** Probability a transmission is lost entirely. */
        double dropRate = 0.0;
        /** Probability a delivered transmission arrives corrupted. */
        double corruptRate = 0.0;
        /** Max unacked frames in flight before sends queue up. */
        unsigned window = 64;
        /** Send-queue depth that raises the congestion signal. */
        std::size_t highWater = 4096;
        /** Cycles without an ack before the first retransmission. */
        Cycle retryTimeout = 40000;
        /** Retry budget per frame; exceeding it is a dead link. */
        unsigned maxRetries = 64;
        std::uint64_t seed = 1;
    };

    struct LinkStats
    {
        std::uint64_t framesSent = 0;   ///< first transmissions
        std::uint64_t retries = 0;
        std::uint64_t drops = 0;
        std::uint64_t corrupts = 0;
        std::uint64_t acked = 0;
        std::uint64_t wireBytes = 0;    ///< incl. retransmissions
        std::uint64_t queuePeak = 0;
    };

    /** Receiver byte sink: (frame bytes as transmitted, arrival). */
    using DeliverFn =
        std::function<void(const std::vector<std::uint8_t> &, Cycle)>;
    /** Sender-side completion: frame id was acked at cycle. */
    using AckFn = std::function<void(std::uint64_t, Cycle)>;

    explicit AsyncLink(const Params &params);

    void setDeliver(DeliverFn fn) { deliver = std::move(fn); }
    void setOnAck(AckFn fn) { onAck = std::move(fn); }

    /** Enqueue one frame for transmission. */
    void send(std::uint64_t frame_id,
              std::vector<std::uint8_t> bytes, Cycle now);

    /** Receiver acks a decoded frame (called from the deliver fn). */
    void ack(std::uint64_t frame_id, Cycle now);

    /** Advance the link: transmit, deliver, ack, retry. */
    void tick(Cycle now);

    bool idle() const { return sendQueue.empty() && inFlight.empty(); }
    std::size_t queueDepth() const
    {
        return sendQueue.size() + inFlight.size();
    }
    bool congested() const
    {
        return sendQueue.size() >= p.highWater;
    }

    /** Crash on either end: everything queued or in flight is lost. */
    void reset();

    const LinkStats &stats() const { return stats_; }
    const Params &params() const { return p; }

  private:
    struct Queued
    {
        std::uint64_t frameId;
        std::vector<std::uint8_t> bytes;
    };

    struct Flight
    {
        std::vector<std::uint8_t> bytes;
        Cycle deliverAt = 0;    ///< 0 = this transmission was dropped
        bool delivered = false;
        bool corrupted = false;
        Cycle nextRetryAt = 0;
        unsigned retries = 0;
    };

    /** Roll loss/corruption and schedule one transmission. */
    void transmit(std::uint64_t frame_id, Flight &fl, Cycle now);

    Params p;
    Rng rng;
    DeliverFn deliver;
    AckFn onAck;
    std::deque<Queued> sendQueue;
    std::map<std::uint64_t, Flight> inFlight;
    /** (ackArrivesAt, frameId) pending receiver acks. */
    std::vector<std::pair<Cycle, std::uint64_t>> pendingAcks;
    Cycle txBusyUntil = 0;
    LinkStats stats_;
};

} // namespace repl
} // namespace nvo

#endif // NVO_REPL_LINK_HH
