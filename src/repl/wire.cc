#include "repl/wire.hh"

#include <array>

#include "common/log.hh"

namespace nvo
{
namespace repl
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::vector<std::uint8_t>
encode(const Frame &f)
{
    std::vector<std::uint8_t> out;
    out.reserve(f.wireBytes());
    out.push_back(wireMagic0);
    out.push_back(wireMagic1);
    out.push_back(wireVersion);
    out.push_back(static_cast<std::uint8_t>(f.type));
    putU32(out, f.generation);
    putU64(out, f.epoch);
    putU64(out, f.arg);
    putU64(out, f.frameId);
    if (f.hasPayload())
        out.insert(out.end(), f.payload.bytes.begin(),
                   f.payload.bytes.end());
    putU32(out, crc32(out.data(), out.size()));
    nvo_assert(out.size() == f.wireBytes());
    return out;
}

void
Decoder::feed(const std::uint8_t *data, std::size_t n)
{
    // Compact the consumed prefix before growing; poll() only ever
    // advances pos, so this keeps the buffer bounded by one frame
    // plus whatever garbage precedes the next magic.
    if (pos > 0) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(pos));
        pos = 0;
    }
    buf.insert(buf.end(), data, data + n);
}

void
Decoder::skipByte()
{
    if (!scanning) {
        scanning = true;
        ++resyncCount;
    }
    ++pos;
    ++discarded;
}

std::optional<Frame>
Decoder::poll()
{
    while (buf.size() - pos >= headerBytes) {
        const std::uint8_t *p = buf.data() + pos;
        if (p[0] != wireMagic0 || p[1] != wireMagic1) {
            skipByte();
            continue;
        }
        if (p[2] != wireVersion) {
            ++badVersion;
            skipByte();
            continue;
        }
        std::uint8_t t = p[3];
        if (t != static_cast<std::uint8_t>(FrameType::Delta) &&
            t != static_cast<std::uint8_t>(FrameType::EpochClose) &&
            t != static_cast<std::uint8_t>(FrameType::LateDelta)) {
            skipByte();
            continue;
        }
        Frame f;
        f.type = static_cast<FrameType>(t);
        std::size_t need = f.wireBytes();
        if (buf.size() - pos < need)
            return std::nullopt;   // truncated: wait for more bytes
        std::uint32_t want = getU32(p + need - crcBytes);
        if (crc32(p, need - crcBytes) != want) {
            ++badCrc;
            skipByte();
            continue;
        }
        f.generation = getU32(p + 4);
        f.epoch = getU64(p + 8);
        f.arg = getU64(p + 16);
        f.frameId = getU64(p + 24);
        if (f.hasPayload())
            for (unsigned i = 0; i < lineBytes; ++i)
                f.payload.bytes[i] = p[headerBytes + i];
        pos += need;
        scanning = false;
        ++decoded;
        return f;
    }
    return std::nullopt;
}

} // namespace repl
} // namespace nvo
