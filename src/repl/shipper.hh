/**
 * @file
 * Delta extractor + persistent replication cursor (primary side).
 *
 * The shipper implements the backend's ReplSink: when reportMinVer
 * advances the recoverable epoch, onEpochsRecoverable fires *before*
 * mergeUpTo retires the per-epoch tables, so every epoch's (line,
 * content) delta is drained into wire frames while the tables still
 * exist — nothing is lost to the merge. Each epoch ships as a run of
 * Delta frames followed by exactly one EpochClose carrying the delta
 * count (even for empty epochs, so the replica's in-order chain has
 * no gaps). Versions that land behind the recoverable epoch (the
 * late-merge path) ship as LateDelta amendments.
 *
 * Durability: the replication cursor is the highest epoch whose
 * frames are all acked with no unacked predecessor. It persists as a
 * small NVM record (Mapping write + fence) whenever it advances, and
 * pending late amendments keep a tiny durable log alongside it. On a
 * primary crash, resume() rewinds to the durable cursor, bumps the
 * stream generation, and re-extracts only (durableCursor, durableRec]
 * from the rebuilt tables — never a full restream.
 */

#ifndef NVO_REPL_SHIPPER_HH
#define NVO_REPL_SHIPPER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/thread_safety.hh"
#include "nvoverlay/omc.hh"
#include "repl/link.hh"
#include "repl/wire.hh"

namespace nvo
{
namespace repl
{

class DeltaShipper : public ReplSink
{
  public:
    struct Params
    {
        /** NVM address of the durable cursor record. */
        Addr cursorAddr = 0;
        /**
         * TEST ONLY: persist the cursor when an epoch is *shipped*
         * rather than when it is *acked* — a premature-durable-cursor
         * bug. A crash with that epoch's frames still in flight makes
         * resume skip re-extracting them, leaving the replica short
         * forever; the convergence check must catch it.
         */
        bool testCursorBug = false;
    };

    DeltaShipper(MnmBackend &backend, NvmModel &nvm_model,
                 AsyncLink &link_ref, RunStats &run_stats,
                 const Params &params);

    // --- ReplSink (called by MnmBackend) ---
    void onEpochsRecoverable(EpochWide from, EpochWide upto,
                             Cycle now) override;
    void onLateVersion(Addr line_addr, EpochWide oid,
                       const LineData &content, Cycle now) override;

    /** Link completion: the receiver acked @p frame_id. */
    void onFrameAcked(std::uint64_t frame_id, Cycle now);

    /**
     * Primary crash: volatile shipping state dies (the link was
     * reset); rewind to the durable cursor.
     */
    void onCrash();

    /**
     * After MnmBackend::crashReset() rebuilt the tables: bump the
     * stream generation and re-extract (durableCursor, durableRec]
     * plus any un-trimmed late amendments. Returns the number of
     * epochs re-shipped (the resume-from-cursor proof: strictly less
     * than durableRec when the cursor had advanced).
     */
    std::uint64_t resume(Cycle now);

    EpochWide
    cursor() const
    {
        cap_.assertHeld();
        return cursor_;
    }
    EpochWide
    durableCursor() const
    {
        cap_.assertHeld();
        return durableCursor_;
    }
    EpochWide
    shippedUpTo() const
    {
        cap_.assertHeld();
        return shippedUpTo_;
    }
    std::uint32_t
    generation() const
    {
        cap_.assertHeld();
        return generation_;
    }
    std::uint64_t
    framesShipped() const
    {
        cap_.assertHeld();
        return nextFrameId - 1;
    }

  private:
    void shipEpoch(EpochWide e, Cycle now) NVO_REQUIRES(cap_);
    /** No NVO_REQUIRES: also called from extraction lambdas, which
     *  the thread-safety analysis checks as separate functions. It
     *  asserts the capability instead. */
    void sendFrame(FrameType type, EpochWide epoch, std::uint64_t arg,
                   const LineData *payload, Cycle now);
    void maybeAdvanceCursor(Cycle now) NVO_REQUIRES(cap_);
    void persistCursor(Cycle now) NVO_REQUIRES(cap_);

    MnmBackend &backend;
    NvmModel &nvm;
    AsyncLink &link;
    RunStats &stats;
    Params p;

    /** Replication state is single-owner: the shipping thread of the
     *  future sharded simulator (ROADMAP item 1). */
    ShardCap cap_;
    std::uint32_t generation_ NVO_GUARDED_BY(cap_) = 1;
    std::uint64_t nextFrameId NVO_GUARDED_BY(cap_) = 1;
    EpochWide shippedUpTo_ NVO_GUARDED_BY(cap_) = 0;
    EpochWide cursor_ NVO_GUARDED_BY(cap_) = 0;
    EpochWide durableCursor_ NVO_GUARDED_BY(cap_) = 0;

    /** Per-epoch unacked frame counts (regular frames only). */
    std::map<EpochWide, std::uint64_t> outstanding
        NVO_GUARDED_BY(cap_);
    /** frame id -> epoch for regular in-flight frames. */
    std::map<std::uint64_t, EpochWide> frameEpoch
        NVO_GUARDED_BY(cap_);

    /** Durable late-amendment log: un-trimmed entries re-ship on
     *  resume (their content survives in the NVM pool image). */
    struct LateRec
    {
        Addr line;
        EpochWide epoch;
        std::uint64_t frameId;
        bool acked = false;
    };
    std::vector<LateRec> lateLog NVO_GUARDED_BY(cap_);
};

} // namespace repl
} // namespace nvo

#endif // NVO_REPL_SHIPPER_HH
