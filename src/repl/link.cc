#include "repl/link.hh"

#include <algorithm>

#include "common/log.hh"
#include "fault/fault.hh"
#include "obs/trace.hh"

namespace nvo
{
namespace repl
{

AsyncLink::AsyncLink(const Params &params) : p(params), rng(params.seed)
{
    nvo_assert(p.bytesPerCycle > 0, "link needs nonzero bandwidth");
    nvo_assert(p.window > 0, "link needs a nonzero window");
    // A retry timeout shorter than the round trip would retransmit
    // every frame even on a clean link; clamp it to the RTT.
    p.retryTimeout =
        std::max(p.retryTimeout, p.latency + p.ackLatency + 1);
}

void
AsyncLink::transmit(std::uint64_t frame_id, Flight &fl, Cycle now)
{
    Cycle tx_cycles = std::max<Cycle>(
        1, static_cast<Cycle>(fl.bytes.size()) / p.bytesPerCycle);
    txBusyUntil = std::max(txBusyUntil, now) + tx_cycles;
    stats_.wireBytes += fl.bytes.size();

    fl.delivered = false;
    fl.corrupted = false;
    if (rng.chance(p.dropRate)) {
        ++stats_.drops;
        fl.deliverAt = 0;
        NVO_TRACE(Repl, ReplFrameDrop, obs::trackRepl, now, frame_id,
                  fl.retries);
    } else {
        fl.deliverAt = txBusyUntil + p.latency;
        if (rng.chance(p.corruptRate)) {
            ++stats_.corrupts;
            fl.corrupted = true;
            NVO_TRACE(Repl, ReplFrameCorrupt, obs::trackRepl, now,
                      frame_id, fl.retries);
        }
    }
    // Exponential backoff: each retry doubles the patience (capped so
    // the shift stays sane).
    Cycle backoff = p.retryTimeout
                    << std::min<unsigned>(fl.retries, 16);
    fl.nextRetryAt = txBusyUntil + backoff;
}

void
AsyncLink::send(std::uint64_t frame_id,
                std::vector<std::uint8_t> bytes, Cycle now)
{
    (void)now;
    sendQueue.push_back({frame_id, std::move(bytes)});
    stats_.queuePeak =
        std::max<std::uint64_t>(stats_.queuePeak, sendQueue.size());
}

void
AsyncLink::ack(std::uint64_t frame_id, Cycle now)
{
    pendingAcks.emplace_back(now + p.ackLatency, frame_id);
}

void
AsyncLink::tick(Cycle now)
{
    // 1. Admit queued frames into the in-flight window.
    while (!sendQueue.empty() && inFlight.size() < p.window) {
        Queued q = std::move(sendQueue.front());
        sendQueue.pop_front();
        Flight fl;
        fl.bytes = std::move(q.bytes);
        transmit(q.frameId, fl, now);
        ++stats_.framesSent;
        inFlight.emplace(q.frameId, std::move(fl));
    }

    // 2. Deliver transmissions that have arrived.
    for (auto &kv : inFlight) {
        Flight &fl = kv.second;
        if (fl.delivered || fl.deliverAt == 0 || fl.deliverAt > now)
            continue;
        fl.delivered = true;
        if (fl.corrupted) {
            // Flip a few bytes; the decoder's CRC must reject it and
            // the retry path must recover.
            std::vector<std::uint8_t> mangled = fl.bytes;
            unsigned flips =
                1 + static_cast<unsigned>(rng.below(3));
            for (unsigned i = 0; i < flips; ++i) {
                std::size_t at = static_cast<std::size_t>(
                    rng.below(mangled.size()));
                mangled[at] ^= static_cast<std::uint8_t>(
                    1 + rng.below(255));
            }
            if (deliver)
                deliver(mangled, fl.deliverAt);
        } else {
            if (deliver)
                deliver(fl.bytes, fl.deliverAt);
        }
    }

    // 3. Complete acks that have propagated back.
    std::size_t kept = 0;
    for (auto &pa : pendingAcks) {
        if (pa.first > now) {
            pendingAcks[kept++] = pa;
            continue;
        }
        auto it = inFlight.find(pa.second);
        if (it != inFlight.end()) {
            inFlight.erase(it);
            ++stats_.acked;
            NVO_TRACE(Repl, ReplFrameAck, obs::trackRepl, pa.first,
                      pa.second, 0);
            if (onAck)
                onAck(pa.second, pa.first);
        }
        // else: a duplicate ack for an already-completed frame.
    }
    pendingAcks.resize(kept);

    // 4. Retransmit frames whose ack never came.
    for (auto &kv : inFlight) {
        Flight &fl = kv.second;
        if (fl.nextRetryAt > now)
            continue;
        nvo_assert(fl.retries < p.maxRetries,
                   "replication frame exceeded its retry budget "
                   "(dead link?)");
        ++fl.retries;
        ++stats_.retries;
        NVO_TRACE(Repl, ReplFrameRetry, obs::trackRepl, now, kv.first,
                  fl.retries);
        transmit(kv.first, fl, now);
    }
}

void
AsyncLink::reset()
{
    sendQueue.clear();
    inFlight.clear();
    pendingAcks.clear();
    txBusyUntil = 0;
}

} // namespace repl
} // namespace nvo
