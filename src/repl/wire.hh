/**
 * @file
 * Versioned replication wire format (framed records).
 *
 * Every record shipped to the standby is a self-delimiting frame:
 *
 *   [0]      'N'           magic
 *   [1]      'R'
 *   [2]      version       (wireVersion)
 *   [3]      type          (FrameType)
 *   [4..7]   generation    u32 LE — bumped on every primary resume
 *   [8..15]  epoch         u64 LE
 *   [16..23] arg           u64 LE — line addr (Delta/LateDelta) or
 *                          the epoch's delta count (EpochClose)
 *   [24..31] frame id      u64 LE — retransmit/ack identity
 *   [32..95] payload       64 B line content (Delta/LateDelta only)
 *   [..+4]   CRC32         over all preceding bytes, LE
 *
 * The decoder is a streaming byte sink: it tolerates truncation (a
 * partial frame waits for more bytes) and corruption (a bad magic or
 * CRC triggers a byte-by-byte resync scan for the next magic), so a
 * lossy link can hand it arbitrary garbage without desynchronizing
 * the frames that survive.
 */

#ifndef NVO_REPL_WIRE_HH
#define NVO_REPL_WIRE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/backing_store.hh"

namespace nvo
{
namespace repl
{

constexpr std::uint8_t wireMagic0 = 'N';
constexpr std::uint8_t wireMagic1 = 'R';
constexpr std::uint8_t wireVersion = 1;

enum class FrameType : std::uint8_t
{
    Delta = 1,      ///< one (line, content) pair of an epoch's delta
    EpochClose = 2, ///< end of an epoch's delta; arg = delta count
    LateDelta = 3,  ///< amendment to an already-shipped epoch
};

constexpr std::size_t headerBytes = 32;
constexpr std::size_t crcBytes = 4;
constexpr std::size_t closeFrameBytes = headerBytes + crcBytes;
constexpr std::size_t deltaFrameBytes =
    headerBytes + lineBytes + crcBytes;

struct Frame
{
    FrameType type = FrameType::Delta;
    std::uint32_t generation = 0;
    EpochWide epoch = 0;
    /** Line address (Delta/LateDelta) or delta count (EpochClose). */
    std::uint64_t arg = 0;
    std::uint64_t frameId = 0;
    LineData payload{};

    bool
    hasPayload() const
    {
        return type != FrameType::EpochClose;
    }

    std::size_t
    wireBytes() const
    {
        return hasPayload() ? deltaFrameBytes : closeFrameBytes;
    }
};

/** CRC-32 (IEEE 802.3, reflected), table-driven. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t n,
                    std::uint32_t seed = 0);

/** Serialize @p f into its wire representation. */
std::vector<std::uint8_t> encode(const Frame &f);

/**
 * Streaming frame decoder. feed() appends raw bytes; poll() yields
 * the next intact frame or nullopt when the buffer holds no complete
 * valid frame (call until nullopt after each feed).
 */
class Decoder
{
  public:
    void feed(const std::uint8_t *data, std::size_t n);

    void
    feed(const std::vector<std::uint8_t> &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    std::optional<Frame> poll();

    std::uint64_t framesDecoded() const { return decoded; }
    std::uint64_t crcErrors() const { return badCrc; }
    std::uint64_t badVersions() const { return badVersion; }
    /** Scan restarts after garbage (one per corrupt/garbage run). */
    std::uint64_t resyncs() const { return resyncCount; }
    std::uint64_t bytesDiscarded() const { return discarded; }
    /** Bytes buffered awaiting a complete frame. */
    std::size_t pendingBytes() const { return buf.size() - pos; }

  private:
    /** Drop one buffered byte while scanning for the next magic. */
    void skipByte();

    std::vector<std::uint8_t> buf;
    std::size_t pos = 0;
    bool scanning = false;
    std::uint64_t decoded = 0;
    std::uint64_t badCrc = 0;
    std::uint64_t badVersion = 0;
    std::uint64_t resyncCount = 0;
    std::uint64_t discarded = 0;
};

} // namespace repl
} // namespace nvo

#endif // NVO_REPL_WIRE_HH
