/**
 * @file
 * Standby replica applier.
 *
 * The replica owns its own NVM model, page pool, and MnmBackend (one
 * VD: the stream is already serialized into epochs) and rebuilds the
 * primary's recoverable image from decoded frames. Delta frames
 * accumulate per epoch until the epoch's EpochClose arrives with the
 * expected count; complete epochs then apply strictly in epoch order
 * through the standby backend's normal insertVersion + reportMinVer
 * path, so the standby's own recoverable epoch ("applied rec-epoch")
 * advances exactly like a primary's would. LateDelta amendments to
 * already-applied epochs replay the late-merge path immediately.
 *
 * Duplicate deliveries (retransmissions whose original made it) are
 * deduped by frame id; a generation bump (primary resumed from its
 * durable cursor) drops incomplete pending epochs — the resumed
 * stream re-ships them whole.
 *
 * Applies run with the global tracer, ledger, and fault registry
 * quiesced: the standby shares those singletons with the primary and
 * must not pollute its observability or consume its fault schedule.
 */

#ifndef NVO_REPL_REPLICA_HH
#define NVO_REPL_REPLICA_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/stats.hh"
#include "nvoverlay/omc.hh"
#include "repl/wire.hh"

namespace nvo
{
namespace repl
{

class ReplicaApplier
{
  public:
    struct Params
    {
        unsigned numOmcs = 4;
        Addr poolBase = 1ull << 40;
        std::uint64_t poolBytesPerOmc = 64ull * 1024 * 1024;
    };

    explicit ReplicaApplier(const Params &params);

    /** A decoded frame arrived (call link.ack(frame.frameId) after). */
    void onFrame(const Frame &f, Cycle now);

    /** Highest epoch fully applied (the standby's rec-epoch). */
    EpochWide appliedRecEpoch() const { return appliedRec; }

    /** Epochs buffered but not yet applicable (gap or unclosed). */
    std::size_t pendingEpochs() const { return pending.size(); }

    std::uint64_t framesDeduped() const { return deduped; }
    std::uint64_t epochsApplied() const { return applied; }
    std::uint64_t latesApplied() const { return latesApplied_; }

    /** Standby image reads (failover verification). */
    const MnmBackend &backend() const { return *standby; }

  private:
    struct PendingEpoch
    {
        /** line -> (content, newest frame id that carried it). */
        std::map<Addr, std::pair<LineData, std::uint64_t>> deltas;
        /** Amendments that overtook the epoch's own close frame;
         *  applied after the regular deltas. */
        struct Late
        {
            Addr line;
            LineData content;
            std::uint64_t frameId;
        };
        std::vector<Late> lates;
        bool closed = false;
        std::uint64_t expected = 0;
    };

    /** Apply every complete epoch at appliedRec + 1. */
    void tryApply(Cycle now);

    Params p;
    RunStats standbyStats;          ///< standby-side counters (own)
    std::unique_ptr<NvmModel> nvm;
    std::unique_ptr<MnmBackend> standby;

    EpochWide appliedRec = 0;
    std::uint32_t generation = 0;
    std::map<EpochWide, PendingEpoch> pending;
    std::set<std::uint64_t> seenFrames;
    std::uint64_t deduped = 0;
    std::uint64_t applied = 0;
    std::uint64_t latesApplied_ = 0;
};

} // namespace repl
} // namespace nvo

#endif // NVO_REPL_REPLICA_HH
