#include "nvoverlay/epoch.hh"

#include "common/log.hh"

namespace nvo
{

EpochSenseTracker::EpochSenseTracker(unsigned num_vds)
    : vdEpochs(num_vds, 0)
{
    nvo_assert(num_vds > 0);
}

bool
EpochSenseTracker::onAdvance(unsigned vd, EpochWide new_epoch)
{
    nvo_assert(vd < vdEpochs.size());
    nvo_assert(new_epoch >= vdEpochs[vd], "epochs must not go back");
    vdEpochs[vd] = new_epoch;

    // Track skew.
    EpochWide lo = vdEpochs[0], hi = vdEpochs[0];
    for (EpochWide e : vdEpochs) {
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    maxSkew_ = std::max(maxSkew_, hi - lo);

    // Flip the sense bit the first time any VD enters the other
    // group, recycling the numbers of the now-trailing group.
    unsigned g = epoch::group(epoch::narrow(new_epoch));
    if (g != leadGroup) {
        leadGroup = g;
        sense = !sense;
        ++flipCount;
        return true;
    }
    return false;
}

} // namespace nvo
