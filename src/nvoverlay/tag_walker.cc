#include "nvoverlay/tag_walker.hh"

namespace nvo
{

TagWalker::TagWalker(const Params &params, Hierarchy &hierarchy,
                     MnmBackend &backend_, RunStats &run_stats)
    : p(params), hier(hierarchy), backend(backend_), stats(run_stats)
{
}

void
TagWalker::requestWalk()
{
    if (!p.enabled)
        return;
    scanPending = true;
}

Cycle
TagWalker::tick(Cycle now, bool allow_scan)
{
    if (!p.enabled)
        return 0;

    Cycle stall = 0;
    if (scanPending && allow_scan) {
        // The scan itself is a fast tag-only pass; version payloads
        // are captured at downgrade time and drained below.
        Hierarchy::WalkScan scan = hier.tagWalkScan(p.vd);
        pendingMinVer = scan.minVer;
        for (auto &v : scan.versions)
            drainQueue.push_back(std::move(v));
        scanPending = false;
        reportPending = true;
    }

    unsigned budget = p.linesPerTick;
    while (budget > 0 && !drainQueue.empty()) {
        const auto &v = drainQueue.front();
        ++stats.evictReason[static_cast<std::size_t>(
            EvictReason::TagWalk)];
        ++stats.tagWalkWriteBacks;
        stall += backend.insertVersion(v.addr, v.oid, v.seq, v.content,
                                       now);
        drainQueue.pop_front();
        --budget;
    }

    if (reportPending && drainQueue.empty() && !scanPending) {
        backend.reportMinVer(p.vd, pendingMinVer, now);
        reportPending = false;
        ++walks;
    }
    return stall;
}

void
TagWalker::drainFully(Cycle now)
{
    while (!idle() || reportPending) {
        tick(now, true);
        if (drainQueue.empty() && !scanPending && !reportPending)
            break;
    }
}

} // namespace nvo
