#include "nvoverlay/tag_walker.hh"

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "obs/trace.hh"

namespace nvo
{

TagWalker::TagWalker(const Params &params, Hierarchy &hierarchy,
                     MnmBackend &backend_, RunStats &run_stats)
    : p(params), hier(hierarchy), backend(backend_), stats(run_stats)
{
}

void
TagWalker::requestWalk()
{
    if (!p.enabled)
        return;
    scanPending = true;
}

Cycle
TagWalker::tick(Cycle now, bool allow_scan)
{
    if (!p.enabled)
        return 0;

    Cycle stall = 0;
    if (scanPending && allow_scan) {
        // The scan itself is a fast tag-only pass; version payloads
        // are captured at downgrade time and drained below.
        Hierarchy::WalkScan scan = hier.tagWalkScan(p.vd);
        NVO_TRACE(Walker, WalkScan, obs::trackVd(p.vd), now,
                  scan.linesScanned, scan.versions.size());
        pendingMinVer = scan.minVer;
        for (auto &v : scan.versions)
            drainQueue.push_back(std::move(v));
        scanPending = false;
        reportPending = true;
    }

    unsigned budget = p.linesPerTick;
    unsigned drained = 0;
    while (budget > 0 && !drainQueue.empty()) {
        const auto &v = drainQueue.front();
        ++stats.evictReason[static_cast<std::size_t>(
            EvictReason::TagWalk)];
        ++stats.tagWalkWriteBacks;
        stall += backend.insertVersion(v.addr, v.oid, v.seq, v.content,
                                       now, EvictReason::TagWalk);
        drainQueue.pop_front();
        --budget;
        ++drained;
    }
    if (drained > 0)
        NVO_TRACE(Walker, WalkDrain, obs::trackVd(p.vd), now, drained,
                  0);

    if (reportPending && drainQueue.empty() && !scanPending) {
        NVO_TRACE(Walker, MinVerReport, obs::trackVd(p.vd), now,
                  pendingMinVer, 0);
        backend.reportMinVer(p.vd, pendingMinVer, now);
        // The raw scan min-ver may regress (a dirty line written in
        // an old epoch can migrate here from a lagging VD), but the
        // backend's *certified* min-ver must only ever advance
        // (Sec. V-B) — a regression there would let rec-epoch expose
        // an epoch whose versions are still volatile.
        NVO_AUDIT(backend.minVerOf(p.vd) >= lastReported,
                  "certified min-ver regressed at the backend");
        lastReported = backend.minVerOf(p.vd);
        reportPending = false;
        ++walks;
    }
    return stall;
}

void
TagWalker::audit(EpochWide vd_epoch) const
{
    if (!audit::enabled)
        return;
    if (!p.enabled) {
        NVO_AUDIT(!scanPending && !reportPending && drainQueue.empty(),
                  "disabled walker holds work");
        return;
    }
    for (const auto &v : drainQueue) {
        NVO_AUDIT(lineAlign(v.addr) == v.addr,
                  "queued version for an unaligned address");
        NVO_AUDIT(v.oid < vd_epoch,
                  "queued version not older than the VD epoch");
    }
    if (reportPending) {
        NVO_AUDIT(pendingMinVer <= vd_epoch,
                  "pending min-ver runs ahead of the VD epoch");
    }
    NVO_AUDIT(backend.minVerOf(p.vd) >= lastReported,
              "certified min-ver regressed at the backend");
}

void
TagWalker::drainFully(Cycle now)
{
    while (!idle() || reportPending) {
        tick(now, true);
        if (drainQueue.empty() && !scanPending && !reportPending)
            break;
    }
}

} // namespace nvo
