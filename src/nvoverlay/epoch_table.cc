#include "nvoverlay/epoch_table.hh"

#include <utility>

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"
#include "obs/registry.hh"

namespace nvo
{

EpochTable::EpochTable(EpochWide e, PagePool &page_pool,
                       const Params &params)
    : epoch_(e), pool(page_pool), p(params),
      hWalk_(obs::metricRegistry().addHist("mnm.insert_walk_depth")),
      root(new Node)
{
    nvo_assert(isPow2(p.initLines) && p.initLines >= 1 &&
               p.initLines <= linesPerPage);
    nvo_assert(p.growthFactor >= 2);
}

EpochTable::~EpochTable()
{
    destroy(root, 0);
}

void
EpochTable::destroy(Node *node, unsigned level)
{
    if (level < 3) {
        for (void *c : node->child)
            if (c)
                destroy(static_cast<Node *>(c), level + 1);
    }
    // Level-3 children are PageEntry pointers owned by `entries`.
    delete node;
}

unsigned
EpochTable::idxAt(Addr page_addr, unsigned level)
{
    // Levels 0..3 consume bits 47..39, 38..30, 29..21, 20..12.
    unsigned shift = 39 - level * 9;
    return static_cast<unsigned>((page_addr >> shift) & 0x1ff);
}

EpochTable::PageEntry *
EpochTable::findEntry(Addr page_addr) const
{
    cap_.assertHeld();
    const Node *node = root;
    for (unsigned level = 0; level < 3; ++level) {
        const void *c = node->child[idxAt(page_addr, level)];
        if (!c)
            return nullptr;
        node = static_cast<const Node *>(c);
    }
    return static_cast<PageEntry *>(
        const_cast<void *>(node->child[idxAt(page_addr, 3)]));
}

EpochTable::PageEntry *
EpochTable::findOrCreateEntry(Addr page_addr)
{
    cap_.assertHeld();
    Node *node = root;
    unsigned allocated = 0;
    for (unsigned level = 0; level < 3; ++level) {
        void *&c = node->child[idxAt(page_addr, level)];
        if (!c) {
            c = new Node;
            ++nodeCount;
            ++allocated;
        }
        node = static_cast<Node *>(c);
    }
    void *&leaf = node->child[idxAt(page_addr, 3)];
    if (!leaf) {
        entries.push_back(std::make_unique<PageEntry>());
        entries.back()->pageAddr = page_addr;
        leaf = entries.back().get();
        ++allocated;
    }
    // Fixed-depth radix: 4 nodes visited, plus one "cost" unit per
    // node/leaf allocated on the way down.
    NVO_METRIC(record(hWalk_, 4 + allocated));
    return static_cast<PageEntry *>(leaf);
}

bool
EpochTable::grow(PageEntry &pe, const Sinks &sinks)
{
    cap_.assertHeld();
    unsigned new_cap = pe.capacity == 0
                           ? p.initLines
                           : std::min<unsigned>(
                                 pe.capacity * p.growthFactor,
                                 linesPerPage);
    // The overlay page's tag names the tenant whose quota this
    // sub-page counts against.
    const tenant::Asid asid = tenant::asidOf(pe.pageAddr);
    Addr fresh = pool.allocLines(new_cap, asid);
    if (fresh == invalidAddr)
        return false;

    // Relocate existing slots compactly into the new sub-page.
    for (unsigned slot = 0; slot < pe.used; ++slot) {
        LineData tmp;
        pool.readLine(pe.subPage + static_cast<Addr>(slot) * lineBytes,
                      tmp);
        Addr dst = fresh + static_cast<Addr>(slot) * lineBytes;
        pool.writeLine(dst, tmp);
        if (sinks.reloc)
            sinks.reloc(dst, lineBytes);
        else if (sinks.data)
            sinks.data(dst, lineBytes);
        relocBytes += lineBytes;
    }

    PagePool::SubPageHeader hdr;
    if (pe.subPage != invalidAddr) {
        // Read through the const overload: the mutable one stages a
        // persist-domain undo, which the dropHeader below already
        // covers.
        if (const auto *old = std::as_const(pool).header(pe.subPage))
            hdr = *old;
        pool.dropHeader(pe.subPage);
        pool.freeLines(pe.subPage, pe.capacity, asid);
    }
    hdr.srcPage = pe.pageAddr;
    hdr.epoch = epoch_;
    hdr.capacityLines = static_cast<std::uint8_t>(new_cap);
    hdr.usedLines = pe.used;
    pool.setHeader(fresh, hdr);
    if (sinks.meta)
        sinks.meta(16);   // header create/update

    pe.subPage = fresh;
    pe.capacity = static_cast<std::uint8_t>(new_cap);
    return true;
}

bool
EpochTable::insert(Addr line_addr, SeqNo seq, const LineData &content,
                   const Sinks &sinks)
{
    cap_.assertHeld();
    nvo_assert(lineAlign(line_addr) == line_addr);
    Addr page_addr = pageAlign(line_addr);
    unsigned li = lineInPage(line_addr);
    PageEntry *pe = findOrCreateEntry(page_addr);
    nvo_assert(!pe->reclaimed, "insert into a reclaimed overlay page");

    unsigned slot;
    bool fresh_line = !((pe->bitmap >> li) & 1ull);
    if (fresh_line) {
        if (pe->used == pe->capacity) {
            if (!grow(*pe, sinks))
                return false;
        }
        slot = pe->used++;
        pe->bitmap |= 1ull << li;
        pe->lineSlot[li] = static_cast<std::uint8_t>(slot);
        ++versions;
        if (auto *hdr = pool.header(pe->subPage)) {
            hdr->usedLines = pe->used;
            hdr->slotLine[slot] = static_cast<std::uint8_t>(li);
        }
    } else {
        // Same-epoch overwrite: the newest store wins in place. A
        // stale write (e.g., a walker draining content captured
        // before a concurrent same-epoch store) still costs a device
        // write but must not clobber newer content.
        slot = pe->lineSlot[li];
        if (seq < pe->slotSeq[slot]) {
            Addr nvm_addr =
                pe->subPage + static_cast<Addr>(slot) * lineBytes;
            if (sinks.data)
                sinks.data(nvm_addr, lineBytes);
            return true;
        }
    }

    pe->slotSeq[slot] = seq;
    Addr nvm_addr = pe->subPage + static_cast<Addr>(slot) * lineBytes;
    pool.writeLine(nvm_addr, content);
    if (sinks.data)
        sinks.data(nvm_addr, lineBytes);
    return true;
}

void
EpochTable::adoptSubPage(Addr sub_page,
                         const PagePool::SubPageHeader &header)
{
    cap_.assertHeld();
    nvo_assert(header.epoch == epoch_,
               "sub-page belongs to a different epoch");
    PageEntry *pe = findOrCreateEntry(header.srcPage);
    nvo_assert(pe->subPage == invalidAddr,
               "overlay page already populated");
    pe->subPage = sub_page;
    pe->capacity = header.capacityLines;
    pe->used = header.usedLines;
    for (unsigned slot = 0; slot < header.usedLines; ++slot) {
        unsigned li = header.slotLine[slot];
        pe->bitmap |= 1ull << li;
        pe->lineSlot[li] = static_cast<std::uint8_t>(slot);
        ++versions;
    }
}

Addr
EpochTable::lookupNvm(Addr line_addr) const
{
    const PageEntry *pe = findEntry(pageAlign(line_addr));
    if (!pe || pe->reclaimed)
        return invalidAddr;
    unsigned li = lineInPage(line_addr);
    if (!((pe->bitmap >> li) & 1ull))
        return invalidAddr;
    return pe->subPage +
           static_cast<Addr>(pe->lineSlot[li]) * lineBytes;
}

bool
EpochTable::readVersion(Addr line_addr, LineData &out) const
{
    Addr nvm = lookupNvm(line_addr);
    if (nvm == invalidAddr)
        return false;
    pool.readLine(nvm, out);
    return true;
}

void
EpochTable::forEachVersion(
    const std::function<void(Addr, Addr)> &fn) const
{
    cap_.assertHeld();
    for (const auto &pe : entries) {
        if (pe->reclaimed)
            continue;
        for (unsigned li = 0; li < linesPerPage; ++li) {
            if (!((pe->bitmap >> li) & 1ull))
                continue;
            fn(pe->pageAddr + static_cast<Addr>(li) * lineBytes,
               pe->subPage +
                   static_cast<Addr>(pe->lineSlot[li]) * lineBytes);
        }
    }
}

void
EpochTable::forEachPage(const std::function<void(PageEntry &)> &fn)
{
    cap_.assertHeld();
    for (auto &pe : entries)
        fn(*pe);
}

EpochTable::PageEntry *
EpochTable::pageEntry(Addr page_addr)
{
    return findEntry(page_addr);
}

const EpochTable::PageEntry *
EpochTable::pageEntry(Addr page_addr) const
{
    return findEntry(page_addr);
}

void
EpochTable::audit() const
{
    cap_.assertHeld();
    if (!audit::enabled)
        return;
    for (const auto &pe : entries) {
        NVO_AUDIT(pageAlign(pe->pageAddr) == pe->pageAddr,
                  "overlay page entry for an unaligned page");
        if (pe->reclaimed)
            continue;
        NVO_AUDIT(popcount64(pe->bitmap) == pe->used,
                  "line bitmap population diverged from slot count");
        NVO_AUDIT(pe->used <= pe->capacity,
                  "overlay page uses more slots than its capacity");
        NVO_AUDIT(pe->liveMaster <= pe->used,
                  "GC refcount exceeds stored versions");
        if (pe->used == 0)
            continue;
        NVO_AUDIT(pe->subPage != invalidAddr,
                  "versioned overlay page without NVM storage");
        NVO_AUDIT(pool.pageAllocated(pe->subPage),
                  "overlay page maps into an unallocated pool page");

        // line -> slot must be injective within capacity, and the
        // persistent header must tell the same story (it is what
        // recovery rebuilds the table from, Sec. V-E).
        std::uint64_t slots_taken = 0;
        for (unsigned li = 0; li < linesPerPage; ++li) {
            if (!((pe->bitmap >> li) & 1ull))
                continue;
            unsigned slot = pe->lineSlot[li];
            NVO_AUDIT(slot < pe->capacity,
                      "line slot outside the sub-page capacity");
            NVO_AUDIT(!((slots_taken >> slot) & 1ull),
                      "two lines share one sub-page slot");
            slots_taken |= 1ull << slot;
        }

        const PagePool::SubPageHeader *hdr =
            std::as_const(pool).header(pe->subPage);
        NVO_AUDIT(hdr != nullptr,
                  "live overlay page without a persistent header");
        if (!hdr)
            continue;
        NVO_AUDIT(hdr->srcPage == pe->pageAddr,
                  "header source page diverged from the entry");
        NVO_AUDIT(hdr->epoch == epoch_,
                  "header epoch diverged from the table epoch");
        NVO_AUDIT(hdr->capacityLines == pe->capacity,
                  "header capacity diverged from the entry");
        NVO_AUDIT(hdr->usedLines == pe->used,
                  "header fill diverged from the entry");
        for (unsigned slot = 0; slot < pe->used; ++slot) {
            unsigned li = hdr->slotLine[slot];
            NVO_AUDIT(li < linesPerPage &&
                          ((pe->bitmap >> li) & 1ull) &&
                          pe->lineSlot[li] == slot,
                      "header slot map diverged from the entry");
        }
    }
}

std::uint64_t
EpochTable::tableBytes() const
{
    cap_.assertHeld();
    // Inner nodes are 512 x 8 B; leaf descriptors modelled at 16 B
    // (bitmap + sub-page pointer), as in the hardware table.
    return nodeCount * 4096 + entries.size() * 16;
}

} // namespace nvo
