/**
 * @file
 * Crash recovery (paper Sec. V-E, "Crash Recovery").
 *
 * After a (simulated) crash, everything volatile is gone: caches,
 * DRAM, per-epoch tables. What survives on NVM: the master table,
 * rec-epoch, the overlay data pages with their self-describing
 * sub-page headers, and the battery-flushed OMC buffer contents.
 * RecoveryManager rebuilds the consistent memory image by scanning
 * the master table and loading every version into a fresh backing
 * store, and can additionally rebuild per-epoch tables from sub-page
 * headers so time travel keeps working after recovery.
 */

#ifndef NVO_NVOVERLAY_RECOVERY_HH
#define NVO_NVOVERLAY_RECOVERY_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "mem/backing_store.hh"
#include "nvoverlay/omc.hh"

namespace nvo
{

class RecoveryManager
{
  public:
    struct Result
    {
        /** Epoch the image corresponds to. */
        EpochWide recEpoch = 0;
        /** Rebuilt consistent memory image. */
        std::unique_ptr<BackingStore> image;
        std::uint64_t linesRestored = 0;
        /**
         * Modelled recovery cost: one NVM line read per restored
         * line plus table-scan overhead, in cycles (sequential).
         */
        Cycle modelCycles = 0;
    };

    explicit RecoveryManager(const MnmBackend &backend_)
        : backend(backend_)
    {
    }

    /**
     * Rebuild the consistent image at the persisted rec-epoch by
     * scanning the master table (paper: "loads the consistent image
     * from the NVM by scanning Mmaster").
     */
    Result recover() const;

    /**
     * Per-tenant recovery: rebuild only tenant @p asid's address
     * space (the master-table subtree its tag selects), leaving every
     * co-tenant untouched and still live. The image is keyed by the
     * tagged addresses, so it is byte-comparable against a full
     * recovery or a solo run of the same tenant.
     */
    Result recoverTenant(tenant::Asid asid) const;

    /**
     * Verify that the rebuilt image is self-consistent with the
     * master table (every mapped line restored, epochs <= rec-epoch).
     * Returns an empty string on success.
     */
    static std::string validate(const Result &result,
                                const MnmBackend &backend);

    /** validate() restricted to tenant @p asid's lines. */
    static std::string validateTenant(const Result &result,
                                      const MnmBackend &backend,
                                      tenant::Asid asid);

  private:
    Result recoverFiltered(bool tenant_only, tenant::Asid asid) const;
    static std::string validateFiltered(const Result &result,
                                        const MnmBackend &backend,
                                        bool tenant_only,
                                        tenant::Asid asid);

    const MnmBackend &backend;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_RECOVERY_HH
