/**
 * @file
 * Multi-snapshot NVM Mapping backend (paper Sec. V).
 *
 * MnmBackend models the set of Overlay Memory Controllers. The NVM
 * address space is partitioned across OMCs (line-interleaved); each
 * partition owns a page pool, its per-epoch mapping tables, a master
 * table shard, and optionally a battery-backed write buffer. One OMC
 * acts as the master: it maintains the per-VD min-ver array, computes
 * the recoverable epoch, persists `rec-epoch`, and drives table
 * merging when the recoverable epoch advances.
 */

#ifndef NVO_NVOVERLAY_OMC_HH
#define NVO_NVOVERLAY_OMC_HH

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/thread_safety.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "mem/nvm_model.hh"
#include "nvoverlay/epoch_table.hh"
#include "nvoverlay/master_table.hh"
#include "nvoverlay/omc_buffer.hh"
#include "nvoverlay/page_pool.hh"
#include "obs/ledger.hh"
#include "tenant/asid.hh"

namespace nvo
{

namespace tenant
{
class TenantManager;
}

/**
 * Observer for epoch-delta replication (src/repl). The backend calls
 * onEpochsRecoverable when reportMinVer advances the recoverable
 * epoch — *before* mergeUpTo retires the per-epoch tables, so the
 * sink can still drain each epoch's versions — and onLateVersion when
 * a version lands behind the recoverable epoch via the late-merge
 * path (the already-shipped epoch needs an amendment).
 */
class ReplSink
{
  public:
    virtual ~ReplSink() = default;
    virtual void onEpochsRecoverable(EpochWide from, EpochWide upto,
                                     Cycle now) = 0;
    virtual void onLateVersion(Addr line_addr, EpochWide oid,
                               const LineData &content, Cycle now) = 0;
};

class MnmBackend
{
  public:
    struct Params
    {
        unsigned numOmcs = 4;
        unsigned numVds = 8;
        Addr poolBase = 1ull << 40;
        std::uint64_t poolBytesPerOmc = 64ull * 1024 * 1024;
        EpochTable::Params table;
        bool useBuffer = false;
        OmcBuffer::Params buffer;
        /**
         * Pool utilization that triggers version compaction; >= 1.0
         * disables compaction (the pool auto-extends instead, i.e.,
         * the OS keeps granting pages).
         */
        double compactionThreshold = 1.0;
        std::uint64_t extendPages = 16384;
        /** Free per-epoch tables once merged (disables time travel
         *  into merged epochs unless the master still maps them). */
        bool dropMergedTables = false;
        /** Reclaim sub-pages whose versions all became stale. */
        bool autoReclaim = false;
        /** Transient NVM write errors tolerated per device write
         *  before the drain path gives up (fault injection). */
        unsigned maxDeviceRetries = 8;
        /**
         * TEST ONLY: advance the durable rec-epoch *without* the
         * persist fence ordering merge writes before the rec-epoch
         * word — a classic missing-barrier durability bug. Crash
         * campaigns must detect the resulting recovery mismatch.
         */
        bool testSkipRecBarrier = false;
        /**
         * TEST ONLY: silently skip every Nth version when merging a
         * table into the master — a drop-the-merge protocol bug that
         * leaves versions certified recoverable but unreachable. The
         * provenance ledger must report them as leaks (and NVO_AUDIT
         * builds trip the merge-completeness sweep).
         */
        bool testDropMerge = false;
    };

    MnmBackend(const Params &params, NvmModel &nvm_model,
               RunStats &run_stats);

    /** OMC partition serving @p line_addr. */
    unsigned omcOf(Addr line_addr) const;

    /**
     * A version arrived from the CST frontend. Inserts it into the
     * partition's per-epoch table (writing the content into the NVM
     * pool) and issues/absorbs the device write; @p why names the
     * lifecycle cause that pushed the version out of the hierarchy
     * (provenance ledger + write-amplification attribution). Returns
     * issuer stall cycles from NVM back-pressure.
     */
    Cycle insertVersion(Addr line_addr, EpochWide oid, SeqNo seq,
                        const LineData &content, Cycle now,
                        EvictReason why = EvictReason::EpochFlush);

    /**
     * A tag walker finished draining: VD @p vd certifies that all its
     * dirty versions older than @p min_ver are persistent. May
     * advance the recoverable epoch and merge tables into the master.
     */
    void reportMinVer(unsigned vd, EpochWide min_ver, Cycle now);

    /** Current recoverable epoch (0 = nothing recoverable yet). */
    EpochWide
    recEpoch() const
    {
        cap_.assertHeld();
        return recEpoch_;
    }

    /** Rec-epoch whose persist fence completed (crash target). */
    EpochWide
    durableRecEpoch() const
    {
        cap_.assertHeld();
        return durableRecEpoch_;
    }

    /** Flush all buffered writes to the device (battery flush). */
    void drainBuffers(Cycle now);

    /** Stop buffering new versions (used around finalize). */
    void setBufferBypass(bool bypass) { bufferBypass = bypass; }

    /** Attach (or detach with nullptr) the replication sink. */
    void setReplSink(ReplSink *sink) { replSink = sink; }

    /** Attach the per-tenant quota/QoS/fairness policy (nullptr =
     *  untenanted operation, zero policy overhead). */
    void setTenantManager(tenant::TenantManager *tm) { tm_ = tm; }

    /** Pool lines held by tenant @p asid, summed across partitions. */
    std::uint64_t poolLinesOf(tenant::Asid asid) const;

    /** Clean shutdown: drain buffers and flush pending metadata. */
    Cycle finalize(Cycle now);

    /** Run one compaction pass on every partition (paper Sec. V-D). */
    void compact(Cycle now);

    /**
     * Simulated crash support: drop everything volatile (the
     * per-epoch DRAM tables), then rebuild them from the persistent,
     * self-describing sub-page headers on NVM and re-derive the GC
     * refcounts from the master table (paper Sec. V-E).
     */
    void dropVolatileTables();
    void rebuildTables();

    /**
     * Simulated power failure: discard all volatile state (buffered
     * pendings, per-epoch DRAM tables, unflushed metadata), truncate
     * the persist domain's in-flight suffix back to the durable
     * prefix, rewind rec-epoch to the last fenced value, and rebuild
     * the tables from the surviving NVM image (paper Sec. V-E).
     */
    void crashReset();

    /**
     * Newest version epoch fully processed for @p line_addr, or 0.
     * Campaign bookkeeping, recorded only while the persist domain is
     * armed: a crash may legitimately lose versions the frontend
     * committed but never handed to the backend (the late-merge
     * window), and verification needs to tell those from real
     * durability bugs.
     */
    EpochWide ackedEpoch(Addr line_addr) const;

    // --- Persistent-state reads (recovery, time travel) ---

    /** Read the current consistent image of @p line_addr. */
    bool readMaster(Addr line_addr, LineData &out) const;

    /** Visit every master-mapped line across partitions. */
    void forEachMasterEntry(
        const std::function<void(Addr, const MasterTable::Entry &)>
            &fn) const;

    /**
     * Time-travel read: the snapshot value of @p line_addr at epoch
     * @p e — the version from the largest epoch E' <= e that mapped
     * the address (paper Sec. V-E). Returns the found epoch through
     * @p found_epoch when non-null.
     */
    bool readSnapshot(Addr line_addr, EpochWide e, LineData &out,
                      EpochWide *found_epoch = nullptr) const;

    /** Refresh the RunStats aggregates (table sizes, pool usage). */
    void updateStats();

    /**
     * Invariant sweep (NVO_AUDIT), paper Sec. V: rec-epoch equals
     * min(min-vers) - 1 once every VD certified something; every
     * version of a merged epoch (table epoch <= rec-epoch) is
     * reachable through the master, which never regresses to an older
     * epoch; master entries resolve into live, allocated pool
     * sub-pages and never map past the recoverable epoch; buffered
     * pending writes still resolve through their epoch tables. Also
     * recurses into the per-part pool, master, table, and buffer
     * audits.
     */
    void audit() const;

    // --- Introspection (tests) ---
    const MasterTable &master(unsigned omc) const;
    PagePool &pool(unsigned omc);
    EpochTable *epochTable(unsigned omc, EpochWide e);
    unsigned
    numOmcs() const
    {
        cap_.assertHeld();
        return static_cast<unsigned>(parts.size());
    }
    EpochWide
    minVerOf(unsigned vd) const
    {
        cap_.assertHeld();
        return minVers[vd];
    }
    std::uint64_t
    mergesDone() const
    {
        cap_.assertHeld();
        return mergeCount;
    }

    std::uint64_t masterNodeBytesTotal() const;
    std::uint64_t masterMappedLinesTotal() const;
    std::uint64_t epochTableBytesTotal() const;
    std::uint64_t poolPagesInUseTotal() const;
    std::uint64_t poolPagesTotal() const;
    /** Buffered pending writes across partitions (0 when the OMC
     *  write buffer is disabled). */
    std::uint64_t bufferOccupancyTotal() const;

  private:
    struct Part
    {
        std::unique_ptr<PagePool> pool;
        std::unique_ptr<MasterTable> master;
        std::map<EpochWide, std::unique_ptr<EpochTable>> tables;
        std::unique_ptr<OmcBuffer> buffer;
        std::uint64_t pendingMetaBytes = 0;
        Addr metaCursor = 0;
    };

    EpochTable &getTable(Part &part, EpochWide e);

    /** Issue a 64 B version write to the device, attributed to the
     *  lifecycle cause that produced it and to the tenant whose
     *  tagged line produced it. */
    Cycle deviceWrite(Addr nvm_addr, Cycle now, obs::LedgerCause cause,
                      tenant::Asid asid);

    /** Write a pending buffered version out to the device. */
    Cycle flushPending(Part &part, const OmcBuffer::Pending &pending,
                       Cycle now);

    /** Merge all tables in (from, upto] into the master. */
    void mergeUpTo(EpochWide from, EpochWide upto, Cycle now)
        NVO_REQUIRES(cap_);

    /** Master insert that journals its undo in the persist domain. */
    std::optional<MasterTable::Entry>
    masterInsert(Part &part, Addr line_addr, Addr nvm_addr,
                 EpochWide e);

    /** Unreference a replaced master entry (GC refcount); records the
     *  superseded version's drop in the provenance ledger. */
    void unref(unsigned oidx, Part &part, Addr line_addr,
               const MasterTable::Entry &old_entry, Cycle now);

    /** Reclaim one sub-page's NVM storage (header + lines). The only
     *  sanctioned drop site; every version it buries was already
     *  terminated in the ledger (unref / stale arrival / move). */
    void reclaimSubPage(Part &part, EpochTable::PageEntry &pe);

    /** Flush accumulated metadata bytes as 64 B device writes. */
    void flushMeta(Part &part, Cycle now) NVO_REQUIRES(cap_);

    /** Persist the rec-epoch word. */
    void persistRecEpoch(Cycle now) NVO_REQUIRES(cap_);

    Params p;
    NvmModel &nvm;
    RunStats &stats;
    /** Hot-path telemetry (obs/registry.hh): insert stall cycles,
     *  versions merged per retired table, buffer occupancy after each
     *  buffered insert. */
    obs::HistMetric *hInsertStall_ = nullptr;
    obs::HistMetric *hMergeRun_ = nullptr;
    obs::HistMetric *hBufOcc_ = nullptr;
    /** The capability ROADMAP item 1's per-partition workers will
     *  take for real; today the single simulation thread holds it
     *  implicitly (see common/thread_safety.hh). */
    ShardCap cap_;
    std::vector<Part> parts NVO_GUARDED_BY(cap_);
    std::vector<EpochWide> minVers NVO_GUARDED_BY(cap_);
    EpochWide recEpoch_ NVO_GUARDED_BY(cap_) = 0;
    EpochWide durableRecEpoch_ NVO_GUARDED_BY(cap_) = 0;
    ReplSink *replSink = nullptr;
    tenant::TenantManager *tm_ = nullptr;
    bool bufferBypass = false;
    std::uint64_t mergeCount NVO_GUARDED_BY(cap_) = 0;
    /** Version counter driving the testDropMerge seeded bug. */
    std::uint64_t dropMergeTick = 0;
    /** Per-line newest acked version epoch (armed campaigns only). */
    std::unordered_map<Addr, EpochWide> acked NVO_GUARDED_BY(cap_);
};

} // namespace nvo

#endif // NVO_NVOVERLAY_OMC_HH
