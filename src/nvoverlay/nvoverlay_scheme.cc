#include "nvoverlay/nvoverlay_scheme.hh"

#include <algorithm>

#include "cache/hierarchy.hh"
#include "common/audit.hh"
#include "common/log.hh"
#include "obs/trace.hh"

namespace nvo
{

NVOverlayScheme::NVOverlayScheme(const Config &cfg, NvmModel &nvm_model,
                                 RunStats &run_stats)
    : nvm(nvm_model), stats(run_stats)
{
    storesPerEpochVd = cfg.getU64("nvo.stores_per_epoch_vd", 65536);
    advanceStallCycles = cfg.getU64("nvo.advance_stall", 100);
    contextBytesPerCore = static_cast<std::uint32_t>(
        cfg.getU64("nvo.context_bytes_per_core", 512));
    walkerEnabled = cfg.getBool("nvo.walker_enabled", true);
    walkerLinesPerTick = static_cast<unsigned>(
        cfg.getU64("nvo.walker_lines_per_tick", 64));

    mnmParams.numOmcs =
        static_cast<unsigned>(cfg.getU64("mnm.num_omcs", 4));
    mnmParams.poolBytesPerOmc =
        cfg.getU64("mnm.pool_mb_per_omc", 64) * 1024 * 1024;
    mnmParams.table.initLines = static_cast<unsigned>(
        cfg.getU64("mnm.subpage_init_lines", 4));
    mnmParams.table.growthFactor = static_cast<unsigned>(
        cfg.getU64("mnm.subpage_growth", 4));
    mnmParams.useBuffer = cfg.getBool("mnm.use_buffer", false);
    mnmParams.buffer.sizeBytes =
        cfg.getU64("mnm.buffer_mb", 32) * 1024 * 1024;
    mnmParams.buffer.ways =
        static_cast<unsigned>(cfg.getU64("mnm.buffer_ways", 16));
    mnmParams.compactionThreshold =
        cfg.getF64("mnm.compaction_threshold", 1.0);
    mnmParams.dropMergedTables =
        cfg.getBool("mnm.drop_merged_tables", false);
    mnmParams.autoReclaim = cfg.getBool("mnm.auto_reclaim", false);
    mnmParams.maxDeviceRetries = static_cast<unsigned>(
        cfg.getU64("mnm.max_device_retries", 8));
    mnmParams.testSkipRecBarrier =
        cfg.getBool("mnm.test_skip_rec_barrier", false);
    mnmParams.testDropMerge =
        cfg.getBool("mnm.test_drop_merge", false);

    replEnabled = cfg.getBool("repl.enabled", false);
    if (replEnabled)
        replParams = repl::Replicator::paramsFrom(cfg);

    // has()-gated like par.shards: an untenanted config registers no
    // tenant.* defaults, keeping the resolved-config dump (and so
    // every stats/bench JSON) byte-identical to the pre-tenant code.
    if (cfg.has("tenant.enabled")) {
        tenantEnabled = cfg.getBool("tenant.enabled", false);
        if (tenantEnabled)
            tenantParams = tenant::TenantManager::paramsFrom(cfg);
    }
}

NVOverlayScheme::~NVOverlayScheme() = default;

void
NVOverlayScheme::attach(Hierarchy &hierarchy)
{
    Scheme::attach(hierarchy);
    unsigned num_vds = hierarchy.numVds();
    coresPerVd = hierarchy.numCores() / num_vds;

    mnmParams.numVds = num_vds;
    backend_ = std::make_unique<MnmBackend>(mnmParams, nvm, stats);
    sense = std::make_unique<EpochSenseTracker>(num_vds);

    if (tenantEnabled) {
        tm_ = std::make_unique<tenant::TenantManager>(tenantParams,
                                                      stats);
        tm_->setOccupancyFn([this](tenant::Asid asid) {
            return backend_->poolLinesOf(asid);
        });
        backend_->setTenantManager(tm_.get());
    }

    if (replEnabled) {
        // Reserved words below the pool: rec-epoch lives at
        // poolBase - lineBytes, so the replication cursor and late
        // log take the next two lines down.
        replParams.cursorAddr = mnmParams.poolBase - 4 * lineBytes;
        repl_ = std::make_unique<repl::Replicator>(
            replParams, *backend_, nvm, stats);
    }

    vds.clear();
    walkers.clear();
    for (unsigned v = 0; v < num_vds; ++v) {
        vds.emplace_back(v, /*initial_epoch=*/1);
        TagWalker::Params wp;
        wp.vd = v;
        wp.linesPerTick = walkerLinesPerTick;
        wp.enabled = walkerEnabled;
        walkers.push_back(std::make_unique<TagWalker>(
            wp, hierarchy, *backend_, stats));
    }
    hierarchy.setVersionCtrl(this);
}

EpochWide
NVOverlayScheme::vdEpoch(unsigned vd) const
{
    return vds[vd].epoch();
}

Cycle
NVOverlayScheme::advanceVd(unsigned vd, EpochWide target, bool lamport,
                           Cycle now)
{
    // Cores in the VD stall while the pipeline drains and the
    // non-speculative context is dumped to NVM (Sec. IV-B2).
    Cycle stall = advanceStallCycles;
    nvm.write(mnmParams.poolBase - 2 * pageBytes +
                  static_cast<Addr>(vd) * lineBytes,
              contextBytesPerCore * coresPerVd, now,
              NvmWriteKind::Context);
    stats.contextDumps += coresPerVd;
    NVO_TRACE(Epoch, ContextDump, obs::trackVd(vd), now,
              static_cast<std::uint64_t>(contextBytesPerCore) *
                  coresPerVd,
              0);

    NVO_TRACE(Epoch, EpochAdvance, obs::trackVd(vd), now, target,
              lamport ? 1 : 0);
    vds[vd].advance(target, lamport);
    sense->onAdvance(vd, target);
    ++stats.epochAdvances;
    if (lamport)
        ++stats.lamportAdvances;
    walkers[vd]->requestWalk();
    return stall;
}

Cycle
NVOverlayScheme::observeRemoteVersion(unsigned vd, EpochWide rv,
                                      Cycle now)
{
    if (rv <= vds[vd].epoch())
        return 0;
    return advanceVd(vd, rv, true, now);
}

Cycle
NVOverlayScheme::acceptVersion(unsigned vd, Addr line_addr,
                               EpochWide oid, SeqNo seq,
                               const LineData &content, EvictReason why,
                               Cycle now)
{
    (void)vd;
    return backend_->insertVersion(line_addr, oid, seq, content, now,
                                   why);
}

Cycle
NVOverlayScheme::onStore(unsigned core, unsigned vd, Addr line_addr,
                         Cycle now)
{
    (void)core;
    vds[vd].noteStore();
    // QoS back-pressure lands here, on the offending tenant's own
    // store stream: the storing core absorbs the stall that pays its
    // tenant's accumulated token debt, so co-tenants on other
    // addresses never feel it.
    Cycle tstall = 0;
    if (tm_) {
        const tenant::Asid asid = tenant::asidOf(line_addr);
        tm_->noteStore(asid);
        tstall = tm_->throttleStall(asid, now);
        now += tstall;
    }
    if (vds[vd].storesInEpoch() >= storesPerEpochVd) {
        // Backpressure: past high water the epoch must not advance —
        // each advance eventually certifies another epoch's worth of
        // deltas into an already-saturated send queue. Stall the core
        // instead; the epoch advances once the link drains.
        if (repl_ && repl_->congested(now))
            return tstall + repl_->stallCycles();
        return tstall + advanceVd(vd, vds[vd].epoch() + 1, false, now);
    }
    return tstall;
}

void
NVOverlayScheme::tick(Cycle now)
{
    if (repl_)
        repl_->tick(now);

    // Skew limiting (Sec. IV-D): the two-group wrap-around scheme
    // requires inter-VD skew below half the 16-bit epoch space, so
    // laggard VDs are forced forward before the leader can lap them
    // (an "external event" epoch advance in the paper's terms).
    EpochWide hi = 0;
    for (const auto &vd : vds)
        hi = std::max(hi, vd.epoch());
    if (hi > epoch::halfSpace / 2) {
        EpochWide floor = hi - epoch::halfSpace / 2;
        for (unsigned v = 0; v < vds.size(); ++v) {
            if (vds[v].epoch() < floor) {
                NVO_TRACE(Epoch, SkewForce, obs::trackVd(v), now,
                          floor, hi);
                advanceVd(v, floor, false, now);
            }
        }
    }

    for (unsigned v = 0; v < walkers.size(); ++v) {
        // Opportunistic walking: let the epoch make progress first so
        // demand evictions persist most of the previous epoch's
        // versions; the walker sweeps the stragglers mid-epoch.
        bool allow = vds[v].storesInEpoch() * 2 >= storesPerEpochVd;
        walkers[v]->tick(now, allow);
    }
}

Cycle
NVOverlayScheme::advanceAll(Cycle now)
{
    EpochWide target = 0;
    for (const auto &vd : vds)
        target = std::max(target, vd.epoch());
    ++target;
    Cycle stall = 0;
    for (unsigned v = 0; v < vds.size(); ++v)
        stall = std::max(stall, advanceVd(v, target, false, now));
    return stall;
}

Cycle
NVOverlayScheme::finalize(Cycle now)
{
    nvo_assert(hier != nullptr, "finalize before attach");

    // 1. Stop buffering and flush what is buffered.
    backend_->drainBuffers(now);
    backend_->setBufferBypass(true);

    // 2. Flush every dirty version out of the hierarchy.
    hier->flushAll(now);

    // 3. Close the final epoch on all VDs (common target so the
    //    recoverable epoch covers every version written so far).
    advanceAll(now);

    // 4. Walk and drain every VD; min-ver reports advance rec-epoch
    //    past all closed epochs and merge their tables.
    for (auto &walker : walkers)
        walker->drainFully(now);

    // 5. Backend flush (pending metadata, rec-epoch persist).
    Cycle done = backend_->finalize(now);

    // 6. Let the replication stream drain: every certified epoch
    //    applied on the standby and acked back.
    if (repl_) {
        done = std::max(done, repl_->drain(done));
        repl_->exportStats();
    }

    // 7. Final per-tenant counter export (occupancy snapshots the
    //    post-drain pool state).
    if (tm_)
        tm_->exportStats();
    return done;
}

void
NVOverlayScheme::crashFlush(Cycle now)
{
    backend_->drainBuffers(now);
    backend_->updateStats();
}

EpochWide
NVOverlayScheme::globalEpoch() const
{
    EpochWide e = 0;
    for (const auto &vd : vds)
        e = std::max(e, vd.epoch());
    return e;
}

std::uint64_t
NVOverlayScheme::epochsCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &vd : vds)
        total += vd.advances();
    return total;
}

void
NVOverlayScheme::updateStats()
{
    if (backend_)
        backend_->updateStats();
    if (repl_)
        repl_->exportStats();
    if (tm_)
        tm_->exportStats();
}

void
NVOverlayScheme::registerAudits(Auditor &auditor)
{
    auditor.add("nvo.epochs", [this] {
        // Two-group wrap-around scheme (Sec. IV-D): every pairwise
        // inter-VD skew must stay below half the 16-bit epoch space,
        // or narrow OID comparisons become ambiguous.
        EpochWide lo = vds.empty() ? 0 : vds[0].epoch();
        EpochWide hi = lo;
        for (const auto &vd : vds) {
            lo = std::min(lo, vd.epoch());
            hi = std::max(hi, vd.epoch());
        }
        NVO_AUDIT(hi - lo < epoch::halfSpace,
                  "inter-VD epoch skew reached half the OID space");
        NVO_AUDIT(sense->skewWithinBound(),
                  "sense tracker saw skew reach half the OID space");
        // A VD's certified min-ver can never run ahead of its own
        // epoch (min-ver is initialized from the epoch at scan time,
        // Sec. IV-C).
        for (const auto &vd : vds)
            NVO_AUDIT(backend_->minVerOf(vd.id()) <= vd.epoch(),
                      "min-ver ran ahead of its VD's epoch");
    }, Auditor::Tier::Light);
    auditor.add("nvo.walkers", [this] {
        for (unsigned v = 0; v < walkers.size(); ++v)
            walkers[v]->audit(vds[v].epoch());
    });
    auditor.add("nvo.backend", [this] { backend_->audit(); });
}

} // namespace nvo
