#include "nvoverlay/recovery.hh"

#include <sstream>

#include "common/log.hh"

namespace nvo
{

RecoveryManager::Result
RecoveryManager::recoverFiltered(bool tenant_only,
                                 tenant::Asid asid) const
{
    Result result;
    result.recEpoch = backend.recEpoch();
    result.image = std::make_unique<BackingStore>();

    constexpr Cycle nvmLineReadCycles = 510;
    constexpr Cycle tableStepCycles = 4;

    backend.forEachMasterEntry(
        [&](Addr line_addr, const MasterTable::Entry &entry) {
            if (tenant_only && tenant::asidOf(line_addr) != asid)
                return;
            nvo_assert(entry.epoch <= result.recEpoch,
                       "master maps a version beyond rec-epoch");
            LineData content;
            bool ok = backend.readMaster(line_addr, content);
            nvo_assert(ok);
            result.image->writeLine(line_addr, content);
            result.image->setLineMeta(line_addr, entry.epoch, 0);
            ++result.linesRestored;
            result.modelCycles += nvmLineReadCycles + tableStepCycles;
        });
    return result;
}

RecoveryManager::Result
RecoveryManager::recover() const
{
    return recoverFiltered(false, 0);
}

RecoveryManager::Result
RecoveryManager::recoverTenant(tenant::Asid asid) const
{
    return recoverFiltered(true, asid);
}

std::string
RecoveryManager::validateFiltered(const Result &result,
                                  const MnmBackend &backend,
                                  bool tenant_only, tenant::Asid asid)
{
    std::ostringstream err;
    std::uint64_t seen = 0;
    backend.forEachMasterEntry(
        [&](Addr line_addr, const MasterTable::Entry &entry) {
            if (tenant_only && tenant::asidOf(line_addr) != asid)
                return;
            ++seen;
            if (entry.epoch > result.recEpoch) {
                err << "line " << std::hex << line_addr
                    << " mapped at epoch " << std::dec << entry.epoch
                    << " > rec-epoch " << result.recEpoch << "; ";
                return;
            }
            LineData expect, got;
            backend.readMaster(line_addr, expect);
            result.image->readLine(line_addr, got);
            if (!(expect == got))
                err << "content mismatch at line " << std::hex
                    << line_addr << std::dec << "; ";
        });
    if (seen != result.linesRestored)
        err << "restored " << result.linesRestored << " of " << seen
            << " mapped lines; ";
    return err.str();
}

std::string
RecoveryManager::validate(const Result &result,
                          const MnmBackend &backend)
{
    return validateFiltered(result, backend, false, 0);
}

std::string
RecoveryManager::validateTenant(const Result &result,
                                const MnmBackend &backend,
                                tenant::Asid asid)
{
    return validateFiltered(result, backend, true, asid);
}

} // namespace nvo
