#include "nvoverlay/recovery.hh"

#include <sstream>

#include "common/log.hh"

namespace nvo
{

RecoveryManager::Result
RecoveryManager::recover() const
{
    Result result;
    result.recEpoch = backend.recEpoch();
    result.image = std::make_unique<BackingStore>();

    constexpr Cycle nvmLineReadCycles = 510;
    constexpr Cycle tableStepCycles = 4;

    backend.forEachMasterEntry(
        [&](Addr line_addr, const MasterTable::Entry &entry) {
            nvo_assert(entry.epoch <= result.recEpoch,
                       "master maps a version beyond rec-epoch");
            LineData content;
            bool ok = backend.readMaster(line_addr, content);
            nvo_assert(ok);
            result.image->writeLine(line_addr, content);
            result.image->setLineMeta(line_addr, entry.epoch, 0);
            ++result.linesRestored;
            result.modelCycles += nvmLineReadCycles + tableStepCycles;
        });
    return result;
}

std::string
RecoveryManager::validate(const Result &result,
                          const MnmBackend &backend)
{
    std::ostringstream err;
    std::uint64_t seen = 0;
    backend.forEachMasterEntry(
        [&](Addr line_addr, const MasterTable::Entry &entry) {
            ++seen;
            if (entry.epoch > result.recEpoch) {
                err << "line " << std::hex << line_addr
                    << " mapped at epoch " << std::dec << entry.epoch
                    << " > rec-epoch " << result.recEpoch << "; ";
                return;
            }
            LineData expect, got;
            backend.readMaster(line_addr, expect);
            result.image->readLine(line_addr, got);
            if (!(expect == got))
                err << "content mismatch at line " << std::hex
                    << line_addr << std::dec << "; ";
        });
    if (seen != result.linesRestored)
        err << "restored " << result.linesRestored << " of " << seen
            << " mapped lines; ";
    return err.str();
}

} // namespace nvo
