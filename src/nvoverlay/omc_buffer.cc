#include "nvoverlay/omc_buffer.hh"

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"

namespace nvo
{

OmcBuffer::OmcBuffer(const Params &params) : ways_(params.ways)
{
    nvo_assert(params.ways > 0);
    std::uint64_t num_sets =
        params.sizeBytes / params.ways / lineBytes;
    nvo_assert(isPow2(num_sets), "buffer sets must be a power of two");
    sets = static_cast<unsigned>(num_sets);
    slots.resize(static_cast<std::size_t>(sets) * ways_);
}

unsigned
OmcBuffer::setOf(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr >> lineBytesLog2) &
                                 (sets - 1));
}

OmcBuffer::InsertResult
OmcBuffer::insert(Addr line_addr, EpochWide epoch, unsigned cause)
{
    cap_.assertHeld();
    nvo_assert(lineAlign(line_addr) == line_addr);
    InsertResult result;
    Slot *base = &slots[static_cast<std::size_t>(setOf(line_addr)) *
                        ways_];

    Slot *free_slot = nullptr;
    Slot *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        Slot &s = base[w];
        if (s.valid && s.addr == line_addr) {
            if (s.epoch == epoch) {
                // Redundant same-epoch write back: absorbed.
                s.lru = ++lruClock;
                ++hitCount;
                result.hit = true;
                return result;
            }
            // Same address, different epoch: the old version is part
            // of a different snapshot and must reach NVM.
            result.evicted = Pending{s.addr, s.epoch, s.cause};
            s.epoch = epoch;
            s.cause = cause;
            s.lru = ++lruClock;
            ++missCount;
            return result;
        }
        if (!s.valid && !free_slot)
            free_slot = &s;
        if (s.valid && s.lru < victim->lru)
            victim = &s;
    }

    ++missCount;
    Slot *target = free_slot;
    if (!target) {
        result.evicted =
            Pending{victim->addr, victim->epoch, victim->cause};
        target = victim;
    } else {
        ++validCount;
    }
    target->valid = true;
    target->addr = line_addr;
    target->epoch = epoch;
    target->cause = cause;
    target->lru = ++lruClock;
    return result;
}

void
OmcBuffer::forEachPending(
    const std::function<void(const Pending &)> &fn) const
{
    cap_.assertHeld();
    for (const auto &s : slots)
        if (s.valid)
            fn(Pending{s.addr, s.epoch, s.cause});
}

void
OmcBuffer::audit() const
{
    cap_.assertHeld();
    if (!audit::enabled)
        return;
    std::uint64_t valid = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Slot &s = slots[i];
        if (!s.valid)
            continue;
        ++valid;
        NVO_AUDIT(lineAlign(s.addr) == s.addr,
                  "buffered pending write for an unaligned address");
        NVO_AUDIT(setOf(s.addr) == i / ways_,
                  "pending write buffered in the wrong set");
        NVO_AUDIT(s.lru <= lruClock,
                  "pending write stamped from the future");
        // Within the set, an (address, epoch) pair may appear once.
        const Slot *base = &slots[(i / ways_) * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const Slot *o = &base[w];
            if (o == &s || !o->valid)
                continue;
            NVO_AUDIT(o->addr != s.addr,
                      "one address buffered in two ways of a set");
        }
    }
    NVO_AUDIT(valid == validCount,
              "buffer occupancy counter diverged from the slots");
}

std::vector<OmcBuffer::Pending>
OmcBuffer::drainAll()
{
    cap_.assertHeld();
    std::vector<Pending> out;
    for (auto &s : slots) {
        if (s.valid) {
            out.push_back(Pending{s.addr, s.epoch, s.cause});
            s = Slot{};
        }
    }
    validCount = 0;
    return out;
}

} // namespace nvo
