/**
 * @file
 * Per-epoch overlay mapping table (paper Sec. V-C).
 *
 * One instance exists per (OMC partition, epoch): a volatile 4-level
 * radix tree keyed by the 48-bit physical address (9 bits per level,
 * bits 47..12) whose leaves describe one overlay page each — a bitmap
 * of the lines versioned in this epoch plus the NVM sub-page that
 * stores them compactly. Sparse pages occupy power-of-two sub-pages
 * and are relocated to the next size when they outgrow one
 * (Page Overlays Sec. 4.4 behaviour).
 */

#ifndef NVO_NVOVERLAY_EPOCH_TABLE_HH
#define NVO_NVOVERLAY_EPOCH_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_safety.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "nvoverlay/page_pool.hh"

namespace nvo
{

namespace obs
{
struct HistMetric;
} // namespace obs

class EpochTable
{
  public:
    struct Params
    {
        /** Initial sub-page capacity in lines (power of two). */
        unsigned initLines = 4;
        /** Capacity multiplier on overflow. */
        unsigned growthFactor = 4;
    };

    /** Sinks for the NVM traffic this table generates. */
    struct Sinks
    {
        /** Version data written to NVM (absorbed by the OMC buffer
         *  when one is present). */
        std::function<void(Addr nvm_addr, std::uint32_t bytes)> data;
        /** Sub-page relocation copies (always hit the device). */
        std::function<void(Addr nvm_addr, std::uint32_t bytes)> reloc;
        /** Persistent sub-page header metadata written to NVM. */
        std::function<void(std::uint32_t bytes)> meta;
    };

    /** Leaf descriptor for one overlay page. */
    struct PageEntry
    {
        Addr pageAddr = invalidAddr;
        std::uint64_t bitmap = 0;       ///< lines present in this epoch
        Addr subPage = invalidAddr;     ///< NVM storage
        std::uint8_t capacity = 0;      ///< sub-page capacity (lines)
        std::uint8_t used = 0;
        std::array<std::uint8_t, linesPerPage> lineSlot{};
        /** Seqno of the content stored in each slot: same-epoch
         *  re-insertions only overwrite with newer content (the
         *  interconnect delivers same-line writes in order; the
         *  walker's delayed drain must not clobber them). */
        std::array<SeqNo, linesPerPage> slotSeq{};
        /** Lines still referenced by the master table (GC refcount). */
        std::uint32_t liveMaster = 0;
        bool reclaimed = false;
    };

    EpochTable(EpochWide e, PagePool &page_pool, const Params &params);
    ~EpochTable();

    EpochTable(const EpochTable &) = delete;
    EpochTable &operator=(const EpochTable &) = delete;

    EpochWide epochId() const { return epoch_; }

    /**
     * Insert (or overwrite) the version of @p line_addr. Writes the
     * content into the pool and reports NVM traffic through
     * @p sinks. Returns false when the pool is exhausted (the caller
     * must run compaction or extend the pool and retry).
     */
    bool insert(Addr line_addr, SeqNo seq, const LineData &content,
                const Sinks &sinks);

    /** NVM address of this epoch's version of @p line_addr. */
    Addr lookupNvm(Addr line_addr) const;

    /** Read this epoch's version of @p line_addr. */
    bool readVersion(Addr line_addr, LineData &out) const;

    /** Visit every mapped version: fn(line_addr, nvm_addr). */
    void forEachVersion(
        const std::function<void(Addr, Addr)> &fn) const;

    /**
     * Reconstruct one overlay page from a persistent sub-page header
     * (post-crash rebuild of the volatile table, paper Sec. V-E:
     * "volatile OMC data structures are also rebuilt during the
     * recovery"). The header's slot map is authoritative.
     */
    void adoptSubPage(Addr sub_page,
                      const PagePool::SubPageHeader &header);

    /** Visit every overlay page entry. */
    void forEachPage(const std::function<void(PageEntry &)> &fn);

    PageEntry *pageEntry(Addr page_addr);
    const PageEntry *pageEntry(Addr page_addr) const;

    std::uint64_t
    versionCount() const
    {
        cap_.assertHeld();
        return versions;
    }
    std::uint64_t tableBytes() const;   ///< DRAM footprint of the tree
    std::uint64_t
    relocatedBytes() const
    {
        cap_.assertHeld();
        return relocBytes;
    }

    /**
     * Invariant sweep (NVO_AUDIT): every live overlay page maps into
     * an allocated pool sub-page whose persistent header agrees with
     * the volatile entry (source page, epoch, capacity, fill), the
     * line bitmap matches the slot count, and line->slot assignments
     * are injective within the sub-page capacity (Sec. V-C).
     */
    void audit() const;

  private:
    struct Node
    {
        std::array<void *, 512> child{};
    };

    static unsigned idxAt(Addr page_addr, unsigned level);

    PageEntry *findEntry(Addr page_addr) const;
    PageEntry *findOrCreateEntry(Addr page_addr);

    /** Grow @p pe's sub-page; returns false if the pool is full. */
    bool grow(PageEntry &pe, const Sinks &sinks);

    void destroy(Node *node, unsigned level);

    EpochWide epoch_;
    PagePool &pool;
    Params p;
    /** Walk-depth histogram (nodes visited + nodes allocated per
     *  findOrCreateEntry); shared across epochs via the registry's
     *  name dedup, so per-epoch construction stays cheap. */
    obs::HistMetric *hWalk_ = nullptr;
    /** Per-(partition, epoch) table: shards with its OMC. */
    ShardCap cap_;
    Node *root NVO_GUARDED_BY(cap_);
    std::uint64_t nodeCount NVO_GUARDED_BY(cap_) = 1;
    std::uint64_t versions NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t relocBytes NVO_GUARDED_BY(cap_) = 0;
    std::vector<std::unique_ptr<PageEntry>> entries
        NVO_GUARDED_BY(cap_);
};

} // namespace nvo

#endif // NVO_NVOVERLAY_EPOCH_TABLE_HH
