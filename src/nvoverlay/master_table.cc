#include "nvoverlay/master_table.hh"

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"
#include "obs/registry.hh"

namespace nvo
{

namespace
{
constexpr std::uint64_t innerNodeBytes = 512 * 8;
constexpr std::uint64_t leafNodeBytes = 64 * 8;
} // namespace

MasterTable::MasterTable(MetaWriteFn meta_write)
    : metaWrite(std::move(meta_write)),
      hWalk_(obs::metricRegistry().addHist("mnm.master_walk_depth")),
      root(new InnerNode), nodeBytes_(innerNodeBytes)
{
}

MasterTable::~MasterTable()
{
    destroy(root, 0);
}

void
MasterTable::destroy(InnerNode *node, unsigned level)
{
    for (void *c : node->child) {
        if (!c)
            continue;
        if (level < 3)
            destroy(static_cast<InnerNode *>(c), level + 1);
        else
            delete static_cast<LeafNode *>(c);
    }
    delete node;
}

unsigned
MasterTable::idxAt(Addr line_addr, unsigned level)
{
    // Levels 0..3: bits 47..39, 38..30, 29..21, 20..12 (9 bits each);
    // level 4: bits 11..6 (line within page).
    if (level < 4) {
        unsigned shift = 39 - level * 9;
        return static_cast<unsigned>((line_addr >> shift) & 0x1ff);
    }
    return lineInPage(line_addr);
}

void
MasterTable::emitMeta(std::uint32_t bytes)
{
    cap_.assertHeld();
    ++metaWriteCount;
    if (metaWrite)
        metaWrite(bytes);
}

std::optional<MasterTable::Entry>
MasterTable::insert(tenant::Key key, Addr nvm_addr, EpochWide e)
{
    cap_.assertHeld();
    const Addr line_addr = key.addr;
    nvo_assert(lineAlign(line_addr) == line_addr);
    InnerNode *node = root;
    unsigned allocated = 0;
    for (unsigned level = 0; level < 3; ++level) {
        void *&c = node->child[idxAt(line_addr, level)];
        if (!c) {
            c = new InnerNode;
            nodeBytes_ += innerNodeBytes;
            emitMeta(8);   // parent pointer persist
            ++allocated;
        }
        node = static_cast<InnerNode *>(c);
    }
    void *&lc = node->child[idxAt(line_addr, 3)];
    if (!lc) {
        lc = new LeafNode;
        nodeBytes_ += leafNodeBytes;
        emitMeta(8);
        ++allocated;
    }
    auto *leaf = static_cast<LeafNode *>(lc);
    unsigned li = idxAt(line_addr, 4);

    std::optional<Entry> replaced;
    if ((leaf->bitmap >> li) & 1ull)
        replaced = leaf->entry[li];
    else
        ++mapped;
    leaf->bitmap |= 1ull << li;
    leaf->entry[li] = Entry{nvm_addr, e};
    emitMeta(8);   // entry persist (48-bit addr + 16-bit epoch)
    // Fixed-depth radix: 4 nodes visited, plus one "cost" unit per
    // node allocated on the way down.
    NVO_METRIC(record(hWalk_, 4 + allocated));
    return replaced;
}

void
MasterTable::erase(tenant::Key key)
{
    cap_.assertHeld();
    const Addr line_addr = key.addr;
    InnerNode *node = root;
    for (unsigned level = 0; level < 3; ++level) {
        void *c = node->child[idxAt(line_addr, level)];
        if (!c)
            return;
        node = static_cast<InnerNode *>(c);
    }
    void *lc = node->child[idxAt(line_addr, 3)];
    if (!lc)
        return;
    auto *leaf = static_cast<LeafNode *>(lc);
    unsigned li = idxAt(line_addr, 4);
    if (!((leaf->bitmap >> li) & 1ull))
        return;
    leaf->bitmap &= ~(1ull << li);
    leaf->entry[li] = Entry{};
    --mapped;
}

const MasterTable::Entry *
MasterTable::lookup(Addr line_addr) const
{
    cap_.assertHeld();
    const InnerNode *node = root;
    for (unsigned level = 0; level < 3; ++level) {
        const void *c = node->child[idxAt(line_addr, level)];
        if (!c)
            return nullptr;
        node = static_cast<const InnerNode *>(c);
    }
    const void *lc = node->child[idxAt(line_addr, 3)];
    if (!lc)
        return nullptr;
    const auto *leaf = static_cast<const LeafNode *>(lc);
    unsigned li = idxAt(line_addr, 4);
    if (!((leaf->bitmap >> li) & 1ull))
        return nullptr;
    return &leaf->entry[li];
}

void
MasterTable::forEachRec(
    const InnerNode *node, unsigned level, Addr prefix,
    const std::function<void(Addr, const Entry &)> &fn) const
{
    unsigned shift = 39 - level * 9;
    for (unsigned i = 0; i < 512; ++i) {
        const void *c = node->child[i];
        if (!c)
            continue;
        Addr next = prefix | (static_cast<Addr>(i) << shift);
        if (level < 3) {
            forEachRec(static_cast<const InnerNode *>(c), level + 1,
                       next, fn);
        } else {
            const auto *leaf = static_cast<const LeafNode *>(c);
            for (unsigned li = 0; li < 64; ++li) {
                if (!((leaf->bitmap >> li) & 1ull))
                    continue;
                fn(next | (static_cast<Addr>(li) << lineBytesLog2),
                   leaf->entry[li]);
            }
        }
    }
}

void
MasterTable::forEach(
    const std::function<void(Addr, const Entry &)> &fn) const
{
    cap_.assertHeld();
    forEachRec(root, 0, 0, fn);
}

void
MasterTable::audit() const
{
    cap_.assertHeld();
    if (!audit::enabled)
        return;
    std::uint64_t walked = 0;
    forEach([&walked](Addr line_addr, const Entry &entry) {
        ++walked;
        NVO_AUDIT(lineAlign(line_addr) == line_addr,
                  "master table maps an unaligned address");
        NVO_AUDIT(entry.nvmAddr != invalidAddr,
                  "master entry without NVM storage");
    });
    NVO_AUDIT(walked == mapped,
              "mapped-line counter diverged from the tree");
}

} // namespace nvo
