#include "nvoverlay/snapshot_reader.hh"

#include <cstring>

#include "common/bitutil.hh"

namespace nvo
{

std::optional<SnapshotReader::Versioned>
SnapshotReader::readLine(Addr addr, EpochWide e) const
{
    Versioned out;
    if (!backend.readSnapshot(lineAlign(addr), e, out.data, &out.epoch))
        return std::nullopt;
    return out;
}

bool
SnapshotReader::read(Addr addr, void *out, unsigned len,
                     EpochWide e) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    unsigned copied = 0;
    while (copied < len) {
        Addr cur = addr + copied;
        Addr line = lineAlign(cur);
        auto v = readLine(line, e);
        if (!v)
            return false;
        unsigned off = static_cast<unsigned>(cur - line);
        unsigned chunk = std::min(len - copied, lineBytes - off);
        std::memcpy(dst + copied, v->data.bytes.data() + off, chunk);
        copied += chunk;
    }
    return true;
}

} // namespace nvo
