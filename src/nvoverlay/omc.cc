#include "nvoverlay/omc.hh"

#include <algorithm>
#include <utility>

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"
#include "fault/fault.hh"
#include "mem/persist_domain.hh"
#include "obs/ledger.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "tenant/tenant.hh"

namespace nvo
{

MnmBackend::MnmBackend(const Params &params, NvmModel &nvm_model,
                       RunStats &run_stats)
    : p(params), nvm(nvm_model), stats(run_stats),
      hInsertStall_(
          obs::metricRegistry().addHist("mnm.insert_stall_cycles")),
      hMergeRun_(obs::metricRegistry().addHist("mnm.merge_run_len")),
      hBufOcc_(obs::metricRegistry().addHist("mnm.buffer_occupancy")),
      minVers(params.numVds, 0)
{
    nvo_assert(p.numOmcs > 0 && p.numVds > 0);
    parts.resize(p.numOmcs);
    for (unsigned i = 0; i < p.numOmcs; ++i) {
        Addr base = p.poolBase + static_cast<Addr>(i) *
                                     p.poolBytesPerOmc;
        parts[i].pool =
            std::make_unique<PagePool>(base, p.poolBytesPerOmc);
        parts[i].pool->attachPersist(&nvm.persist());
        Part *part = &parts[i];
        parts[i].master = std::make_unique<MasterTable>(
            [this, part](std::uint32_t bytes) {
                part->pendingMetaBytes += bytes;
            });
        if (p.useBuffer)
            parts[i].buffer = std::make_unique<OmcBuffer>(p.buffer);
    }
}

unsigned
MnmBackend::omcOf(Addr line_addr) const
{
    cap_.assertHeld();
    return static_cast<unsigned>((line_addr >> lineBytesLog2) %
                                 parts.size());
}

EpochTable &
MnmBackend::getTable(Part &part, EpochWide e)
{
    auto it = part.tables.find(e);
    if (it == part.tables.end()) {
        it = part.tables
                 .emplace(e, std::make_unique<EpochTable>(
                                 e, *part.pool, p.table))
                 .first;
    }
    return *it->second;
}

Cycle
MnmBackend::deviceWrite(Addr nvm_addr, Cycle now,
                        obs::LedgerCause cause, tenant::Asid asid)
{
    // Transient device-write errors are retried with exponential
    // backoff; a persistent failure past the retry budget means the
    // DIMM is gone and recovery guarantees are off.
    Cycle stall = 0;
    unsigned attempts = 0;
    Cycle backoff = 1;
    while (NVO_FAULT_ERROR("omc.device_write")) {
        ++attempts;
        nvo_assert(attempts <= p.maxDeviceRetries,
                   "NVM write still failing after the retry budget");
        stats.extra["nvm_write_retries"] += 1;
        stall += backoff;
        now += backoff;
        backoff *= 2;
    }
    // Every NvmWriteKind::Data byte on the nvoverlay path funnels
    // through here, so attributing per cause — and per tenant — sums
    // exactly to the RunStats data-write total (the analyzer asserts
    // both partitions).
    NVO_LEDGER(dataWrite(cause, lineBytes, asid));
    if (tm_)
        tm_->noteDataBytes(asid, lineBytes);
    stall += nvm.persist()
                 .write(nvm_addr, lineBytes, now, NvmWriteKind::Data)
                 .stall;
    return stall;
}

Cycle
MnmBackend::flushPending(Part &part, const OmcBuffer::Pending &pending,
                         Cycle now)
{
    auto it = part.tables.find(pending.epoch);
    nvo_assert(it != part.tables.end(),
               "buffered version without its epoch table");
    Addr nvm_addr = it->second->lookupNvm(pending.addr);
    nvo_assert(nvm_addr != invalidAddr,
               "buffered version missing from its table");
    return deviceWrite(nvm_addr, now,
                       static_cast<obs::LedgerCause>(pending.cause),
                       tenant::asidOf(pending.addr));
}

Cycle
MnmBackend::insertVersion(Addr line_addr, EpochWide oid, SeqNo seq,
                          const LineData &content, Cycle now,
                          EvictReason why)
{
    cap_.assertHeld();
    unsigned oidx = omcOf(line_addr);
    Part &part = parts[oidx];
    const tenant::Asid asid = tenant::asidOf(line_addr);
    Cycle stall = 0;
    NVO_FAULT_POINT("omc.insert");
    NVO_TRACE(Omc, OmcInsert, obs::trackOmc(oidx), now, line_addr,
              oid);
    // Tenant policy: charge the token bucket and enforce the pool
    // quota before the version lands (the insert always proceeds —
    // over-quota tenants are throttled, never dropped).
    if (tm_)
        tm_->onInsert(asid, lineBytes, now);

    // Compaction pressure check (Sec. V-D / storage quota, Sec. V-F).
    if (p.compactionThreshold < 1.0 &&
        part.pool->utilization() >= p.compactionThreshold) {
        compact(now);
        ++stats.gcCompactions;
    }

    bool buffered = part.buffer && !bufferBypass;

    EpochTable::Sinks sinks;
    sinks.reloc = [&](Addr a, std::uint32_t) {
        stall += deviceWrite(a, now, obs::LedgerCause::SubpageReloc,
                             asid);
        stats.extra["subpage_reloc_bytes"] += lineBytes;
    };
    sinks.meta = [&](std::uint32_t bytes) {
        part.pendingMetaBytes += bytes;
    };
    if (!buffered) {
        sinks.data = [&](Addr a, std::uint32_t) {
            stall += deviceWrite(a, now, obs::causeOf(why), asid);
        };
    }
    // When buffered, the 64 B version write is deferred until the
    // buffer evicts the (addr, epoch) slot; sinks.data stays empty.

    EpochTable &table = getTable(part, oid);
    bool ok = table.insert(line_addr, seq, content, sinks);
    if (!ok) {
        // Pool exhausted: compact if enabled, else ask the OS for
        // more pages (paper Sec. V-D).
        if (p.compactionThreshold < 1.0) {
            compact(now);
            ++stats.gcCompactions;
            ok = table.insert(line_addr, seq, content, sinks);
        }
        if (!ok) {
            part.pool->extend(p.extendPages);
            stats.extra["pool_extensions"] += 1;
            ok = table.insert(line_addr, seq, content, sinks);
        }
        nvo_assert(ok, "pool exhausted even after extension");
    }
    NVO_LEDGER(
        insertVersion(oidx, line_addr, oid, obs::causeOf(why), now));

    // A version can land behind the recoverable epoch: the newest
    // dirty version transfers cache-to-cache on invalidation without
    // an OMC write (Fig. 6 optimization 2), so a line written in an
    // old epoch can outlive its source VD's certified min-ver inside
    // another VD and only reach us after rec-epoch passed its epoch.
    // mergeUpTo() never revisits merged epochs, so map the late
    // version into the master here — otherwise the recovered image
    // would silently miss it.
    if (recEpoch_ != 0 && oid <= recEpoch_) {
        const MasterTable::Entry *cur = part.master->lookup(line_addr);
        if (cur == nullptr || cur->epoch <= oid) {
            NVO_FAULT_POINT("omc.late_merge");
            Addr nvm_addr = table.lookupNvm(line_addr);
            nvo_assert(nvm_addr != invalidAddr);
            auto replaced = masterInsert(part, line_addr, nvm_addr,
                                         oid);
            EpochTable::PageEntry *pe =
                table.pageEntry(pageAlign(line_addr));
            nvo_assert(pe != nullptr);
            ++pe->liveMaster;
            if (replaced)
                unref(oidx, part, line_addr, *replaced, now);
            stats.extra["late_merges"] += 1;
            NVO_TRACE(Merge, LateMerge, obs::trackOmc(oidx), now,
                      line_addr, oid);
            NVO_LEDGER(merged(oidx, line_addr, oid, true, now));
            // The patch amends an already-published snapshot, so it
            // persists synchronously rather than waiting for the next
            // rec-epoch fence.
            nvm.persist().barrier();
            // A standby following the shipped stream has (or will
            // get) this epoch without the amendment — ship it too.
            if (replSink)
                replSink->onLateVersion(line_addr, oid, content, now);
        } else {
            // The master already maps a strictly newer epoch: the
            // late arrival is stale on arrival and will never be
            // reachable by recovery or time travel past its epoch's
            // merged tables. Terminate it now so it does not read as
            // a lifecycle leak.
            NVO_LEDGER(dropped(oidx, line_addr, oid, now));
        }
    }

    if (buffered) {
        auto result = part.buffer->insert(
            line_addr, oid,
            static_cast<unsigned>(obs::causeOf(why)));
        if (result.hit) {
            ++stats.omcBufferHits;
        } else {
            ++stats.omcBufferMisses;
            if (result.evicted) {
                NVO_TRACE(Omc, OmcBufferEvict, obs::trackOmc(oidx),
                          now, result.evicted->addr,
                          result.evicted->epoch);
                stall += flushPending(part, *result.evicted, now);
            }
        }
        NVO_TRACE(Omc, OmcOccupancy, obs::trackOmc(oidx), now,
                  part.buffer->occupancy(), 0);
        NVO_METRIC(record(hBufOcc_, part.buffer->occupancy()));
    }
    if (nvm.persist().armed()) {
        EpochWide &e = acked[line_addr];
        e = std::max(e, oid);
    }
    NVO_METRIC(record(hInsertStall_, stall));
    return stall;
}

EpochWide
MnmBackend::ackedEpoch(Addr line_addr) const
{
    cap_.assertHeld();
    auto it = acked.find(line_addr);
    return it == acked.end() ? 0 : it->second;
}

std::optional<MasterTable::Entry>
MnmBackend::masterInsert(Part &part, Addr line_addr, Addr nvm_addr,
                         EpochWide e)
{
    // masterInsert IS the sanctioned mutation point: every caller
    // pairs it with the ledger insert/merge hook, and the staged
    // undo lambdas replay state the ledger already accounted for.
    // The tenant::Key carries the ASID tag into the tree.
    const tenant::Key key = tenant::keyOf(line_addr);
    auto replaced = part.master->insert(   // nvo-lint: allow(ledger-hook)
        key, nvm_addr, e);
    PersistDomain &domain = nvm.persist();
    if (domain.armed()) {
        MasterTable *mt = part.master.get();
        if (replaced) {
            domain.stage(
                PersistDomain::Kind::Master,
                [mt, key, old = *replaced] {
                    mt->insert(   // nvo-lint: allow(ledger-hook)
                        key, old.nvmAddr, old.epoch);
                });
        } else {
            domain.stage(
                PersistDomain::Kind::Master,
                [mt, key] {
                    mt->erase(key);   // nvo-lint: allow(ledger-hook)
                });
        }
    }
    return replaced;
}

void
MnmBackend::unref(unsigned oidx, Part &part, Addr line_addr,
                  const MasterTable::Entry &old_entry, Cycle now)
{
    cap_.assertHeld();
    // Whatever the replaced entry mapped is unreachable from the
    // master now — record the lifecycle exit even when the version's
    // epoch table is long gone (dropMergedTables).
    NVO_LEDGER(dropped(oidx, line_addr, old_entry.epoch, now));
    auto it = part.tables.find(old_entry.epoch);
    if (it == part.tables.end())
        return;
    EpochTable::PageEntry *pe =
        it->second->pageEntry(pageAlign(line_addr));
    if (!pe || pe->reclaimed || pe->liveMaster == 0)
        return;
    --pe->liveMaster;
    if (pe->liveMaster == 0 && p.autoReclaim &&
        old_entry.epoch <= recEpoch_)
        reclaimSubPage(part, *pe);
}

void
MnmBackend::reclaimSubPage(Part &part, EpochTable::PageEntry &pe)
{
    // Every version buried here already exited the ledger: unref
    // terminated the master-superseded ones and the stale-arrival /
    // compaction paths handled the rest, so raw pool frees are safe.
    // The overlay page's tag credits the owning tenant's occupancy.
    const tenant::Asid asid = tenant::asidOf(pe.pageAddr);
    part.pool->dropHeader(pe.subPage);   // nvo-lint: allow(ledger-hook)
    part.pool->freeLines(pe.subPage, pe.capacity, asid);
    pe.reclaimed = true;
}

void
MnmBackend::flushMeta(Part &part, Cycle now)
{
    while (part.pendingMetaBytes > 0) {
        NVO_FAULT_POINT("omc.meta.flush");
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(part.pendingMetaBytes, lineBytes));
        Addr addr = p.poolBase +
                    static_cast<Addr>(parts.size()) *
                        p.poolBytesPerOmc +
                    (part.metaCursor % (1ull << 26));
        part.metaCursor += chunk;
        nvm.persist().write(addr, chunk, now, NvmWriteKind::Mapping);
        part.pendingMetaBytes -= chunk;
    }
}

void
MnmBackend::persistRecEpoch(Cycle now)
{
    NVO_FAULT_POINT("omc.rec_epoch.persist");
    Addr addr = p.poolBase - lineBytes;   // fixed known location
    nvm.persist().write(addr, 8, now, NvmWriteKind::Mapping);
    // The paper's ordering fence (Sec. V-B): every merge write must
    // be durable before the rec-epoch word names it recoverable.
    // Only the deliberately-buggy test configuration skips it.
    if (!p.testSkipRecBarrier)
        nvm.persist().barrier();
    durableRecEpoch_ = recEpoch_;
}

void
MnmBackend::mergeUpTo(EpochWide from, EpochWide upto, Cycle now)
{
    for (unsigned oidx = 0; oidx < parts.size(); ++oidx) {
        Part &part = parts[oidx];
        auto it = part.tables.upper_bound(from);
        while (it != part.tables.end() && it->first <= upto) {
            EpochTable &table = *it->second;
            NVO_FAULT_POINT("omc.merge.table");
            NVO_TRACE(Merge, TableMerge, obs::trackOmc(oidx), now,
                      it->first, 0);
            std::uint64_t run = 0;
            table.forEachVersion([&](Addr line_addr, Addr nvm_addr) {
                NVO_FAULT_POINT("omc.merge.version");
                ++run;
                if (p.testDropMerge && (++dropMergeTick % 5) == 0)
                    return;   // seeded bug: silently skip the merge
                auto replaced = masterInsert(part, line_addr, nvm_addr,
                                             table.epochId());
                EpochTable::PageEntry *pe =
                    table.pageEntry(pageAlign(line_addr));
                nvo_assert(pe != nullptr);
                ++pe->liveMaster;
                if (replaced)
                    unref(oidx, part, line_addr, *replaced, now);
                NVO_LEDGER(merged(oidx, line_addr, table.epochId(),
                                  false, now));
            });
            NVO_METRIC(record(hMergeRun_, run));
            ++mergeCount;
            if (p.dropMergedTables) {
                // DRAM pages of merged per-epoch tables can be
                // reclaimed immediately (paper Sec. V-D); dropping
                // the table forfeits time travel into this epoch.
                it = part.tables.erase(it);
            } else {
                ++it;
            }
        }
        flushMeta(part, now);
    }
}

void
MnmBackend::reportMinVer(unsigned vd, EpochWide min_ver, Cycle now)
{
    cap_.assertHeld();
    nvo_assert(vd < minVers.size());
    minVers[vd] = std::max(minVers[vd], min_ver);

    EpochWide smallest = minVers[0];
    for (EpochWide v : minVers)
        smallest = std::min(smallest, v);
    if (smallest == 0)
        return;   // some VD has not certified anything yet
    EpochWide candidate = smallest - 1;
    if (candidate <= recEpoch_)
        return;

    // rec-epoch moves first so GC sees the new bound while merge
    // replacements dereference stale versions.
    NVO_FAULT_POINT("omc.rec_epoch.advance");
    EpochWide old_rec = recEpoch_;
    NVO_TRACE(Merge, RecEpochAdvance, obs::trackSim, now, candidate,
              old_rec);
    recEpoch_ = candidate;
    // Ship the newly recoverable epochs' deltas before mergeUpTo
    // retires their tables — afterwards only the merged master (and
    // possibly reclaimed sub-pages) remains.
    if (replSink)
        replSink->onEpochsRecoverable(old_rec, candidate, now);
    mergeUpTo(old_rec, candidate, now);
    persistRecEpoch(now);
}

void
MnmBackend::drainBuffers(Cycle now)
{
    cap_.assertHeld();
    for (unsigned oidx = 0; oidx < parts.size(); ++oidx) {
        Part &part = parts[oidx];
        if (!part.buffer)
            continue;
        auto pendings = part.buffer->drainAll();
        NVO_TRACE(Omc, OmcBufferDrain, obs::trackOmc(oidx), now,
                  pendings.size(), 0);
        for (const auto &pending : pendings) {
            NVO_FAULT_POINT("omc.drain");
            flushPending(part, pending, now);
        }
    }
}

Cycle
MnmBackend::finalize(Cycle now)
{
    cap_.assertHeld();
    drainBuffers(now);
    setBufferBypass(true);
    for (auto &part : parts)
        flushMeta(part, now);
    persistRecEpoch(now);
    // Clean shutdown leaves nothing in flight, even versions newer
    // than the rec-epoch fence just issued.
    nvm.persist().barrier();
    updateStats();
    return std::max(now, nvm.drainCompletion());
}

void
MnmBackend::compact(Cycle now)
{
    cap_.assertHeld();
    for (unsigned oidx = 0; oidx < parts.size(); ++oidx) {
        Part &part = parts[oidx];
        // Oldest merged epoch still holding live versions.
        for (auto &kv : part.tables) {
            EpochWide e = kv.first;
            if (e > recEpoch_)
                break;
            EpochTable &table = *kv.second;
            bool any_live = false;
            table.forEachPage([&](EpochTable::PageEntry &pe) {
                if (!pe.reclaimed && pe.liveMaster > 0)
                    any_live = true;
            });
            bool any_present = false;
            table.forEachPage([&](EpochTable::PageEntry &pe) {
                if (!pe.reclaimed)
                    any_present = true;
            });
            if (!any_present)
                continue;
            if (e == recEpoch_)
                break;   // nothing newer to copy into
            NVO_FAULT_POINT("omc.compact");
            NVO_TRACE(Merge, Compaction, obs::trackOmc(oidx), now, e,
                      0);
            if (!any_live) {
                // Whole epoch stale: reclaim its sub-pages outright.
                table.forEachPage([&](EpochTable::PageEntry &pe) {
                    if (pe.reclaimed || pe.subPage == invalidAddr)
                        return;
                    reclaimSubPage(part, pe);
                });
                continue;
            }
            // Copy still-live versions forward to the newest merged
            // epoch, as if those addresses were written now.
            EpochTable &target = getTable(part, recEpoch_);
            // cur_asid tracks the tenant of the line being moved so
            // the copy (and any relocation it triggers — same page,
            // same tenant) is attributed to its owner.
            tenant::Asid cur_asid = 0;
            EpochTable::Sinks sinks;
            sinks.data = [&](Addr a, std::uint32_t) {
                deviceWrite(a, now, obs::LedgerCause::CompactionCopy,
                            cur_asid);
                stats.gcBytesCopied += lineBytes;
            };
            sinks.meta = [&](std::uint32_t bytes) {
                part.pendingMetaBytes += bytes;
            };
            std::vector<Addr> moved;
            table.forEachVersion([&](Addr line_addr, Addr) {
                const auto *entry = part.master->lookup(line_addr);
                if (!entry || entry->epoch != e)
                    return;
                LineData content;
                bool ok = table.readVersion(line_addr, content);
                nvo_assert(ok);
                moved.push_back(line_addr);
                (void)content;
            });
            // Fairness: serve tenants descending-occupancy first with
            // a rotating tie-break, so one hot tenant cannot
            // monopolize reclamation order across passes.
            if (tm_)
                tm_->orderForCompaction(moved);
            for (Addr line_addr : moved) {
                cur_asid = tenant::asidOf(line_addr);
                NVO_FAULT_POINT("omc.compact.copy");
                LineData content;
                table.readVersion(line_addr, content);
                bool ok = target.insert(line_addr, ~static_cast<SeqNo>(0),
                                        content, sinks);
                if (!ok)
                    return;   // target pool full; give up this pass
                NVO_LEDGER(insertVersion(
                    oidx, line_addr, recEpoch_,
                    obs::LedgerCause::CompactionCopy, now));
                Addr fresh = target.lookupNvm(line_addr);
                auto replaced = masterInsert(part, line_addr, fresh,
                                             recEpoch_);
                EpochTable::PageEntry *tpe =
                    target.pageEntry(pageAlign(line_addr));
                ++tpe->liveMaster;
                // The source version moved (not died); mark it first
                // so the unref of its replaced master entry — the
                // same (line, epoch) — stays a no-op.
                NVO_LEDGER(compacted(oidx, line_addr, e, recEpoch_,
                                     now));
                NVO_LEDGER(merged(oidx, line_addr, recEpoch_, false,
                                  now));
                if (replaced)
                    unref(oidx, part, line_addr, *replaced, now);
            }
            // Reclaim the source epoch's storage.
            table.forEachPage([&](EpochTable::PageEntry &pe) {
                if (pe.reclaimed || pe.subPage == invalidAddr)
                    return;
                nvo_assert(pe.liveMaster == 0,
                           "live version left after compaction");
                reclaimSubPage(part, pe);
            });
            flushMeta(part, now);
            break;   // one source epoch per pass
        }
    }
    // A compaction pass rewrote master entries of epochs at or below
    // the published rec-epoch; fence before anything can observe it.
    nvm.persist().barrier();
}

void
MnmBackend::dropVolatileTables()
{
    cap_.assertHeld();
    for (auto &part : parts)
        part.tables.clear();
}

void
MnmBackend::rebuildTables()
{
    cap_.assertHeld();
    for (auto &part : parts) {
        part.pool->forEachHeader(
            [&](Addr sub_page, const PagePool::SubPageHeader &hdr) {
                getTable(part, hdr.epoch)
                    .adoptSubPage(sub_page, hdr);
            });
        // GC refcounts come from what the master still maps.
        part.master->forEach(
            [&](Addr line_addr, const MasterTable::Entry &entry) {
                auto it = part.tables.find(entry.epoch);
                if (it == part.tables.end())
                    return;
                EpochTable::PageEntry *pe =
                    it->second->pageEntry(pageAlign(line_addr));
                if (pe && !pe->reclaimed)
                    ++pe->liveMaster;
            });
    }
}

void
MnmBackend::crashReset()
{
    cap_.assertHeld();
    // Volatile lifecycle bookkeeping dies with the run; the post-
    // crash epoch/provenance space would alias pre-crash entries.
    NVO_LEDGER(reset());
    // Power failure. Battery-backed buffer pendings defer only the
    // *timing* of device writes — the content already sits in the
    // pool image — so they are simply discarded; per-epoch DRAM
    // tables and unflushed metadata vanish with them.
    for (auto &part : parts) {
        if (part.buffer)
            part.buffer->drainAll();
        part.tables.clear();
    }
    // Truncate the modelled NVM back to the durable prefix, then
    // target the last fenced rec-epoch.
    nvm.persist().truncateToDurable();
    for (auto &part : parts)
        part.pendingMetaBytes = 0;
    recEpoch_ = durableRecEpoch_;
    // Walker certifications died with the frontend; re-seed min-vers
    // at the value the surviving rec-epoch implies so the rec-epoch
    // invariant (rec-epoch == min(min-vers) - 1) keeps holding.
    for (auto &v : minVers)
        v = recEpoch_ == 0 ? 0 : recEpoch_ + 1;
    bufferBypass = false;
    rebuildTables();
}

bool
MnmBackend::readMaster(Addr line_addr, LineData &out) const
{
    cap_.assertHeld();
    const Part &part = parts[omcOf(line_addr)];
    const auto *entry = part.master->lookup(line_addr);
    if (!entry)
        return false;
    part.pool->readLine(entry->nvmAddr, out);
    return true;
}

void
MnmBackend::forEachMasterEntry(
    const std::function<void(Addr, const MasterTable::Entry &)> &fn)
    const
{
    cap_.assertHeld();
    for (const auto &part : parts)
        part.master->forEach(fn);
}

bool
MnmBackend::readSnapshot(Addr line_addr, EpochWide e, LineData &out,
                         EpochWide *found_epoch) const
{
    cap_.assertHeld();
    const Part &part = parts[omcOf(line_addr)];
    // Fall-through: largest E' <= e whose table maps the address.
    auto it = part.tables.upper_bound(e);
    while (it != part.tables.begin()) {
        --it;
        if (it->second->readVersion(line_addr, out)) {
            if (found_epoch)
                *found_epoch = it->first;
            return true;
        }
        if (it == part.tables.begin())
            break;
    }
    // Tables may have been dropped after merging; fall back to the
    // master image when its version is old enough.
    const auto *entry = part.master->lookup(line_addr);
    if (entry && entry->epoch <= e) {
        part.pool->readLine(entry->nvmAddr, out);
        if (found_epoch)
            *found_epoch = entry->epoch;
        return true;
    }
    return false;
}

void
MnmBackend::updateStats()
{
    stats.masterTableBytes = masterNodeBytesTotal();
    stats.masterMappedLines = masterMappedLinesTotal();
    stats.epochTableBytes = epochTableBytesTotal();
    stats.poolPagesInUse = poolPagesInUseTotal();
}

void
MnmBackend::audit() const
{
    cap_.assertHeld();
    if (!audit::enabled)
        return;

    // rec-epoch protocol (Sec. V-B): the only writer is
    // reportMinVer, which sets it to min(min-vers) - 1, and min-vers
    // never regress; so the equality holds at every quiescent point
    // once all VDs have certified something.
    EpochWide smallest = minVers.empty() ? 0 : minVers[0];
    for (EpochWide v : minVers)
        smallest = std::min(smallest, v);
    if (smallest == 0)
        NVO_AUDIT(recEpoch_ == 0,
                  "rec-epoch advanced before every VD certified");
    else
        NVO_AUDIT(recEpoch_ == smallest - 1,
                  "rec-epoch diverged from min(min-vers) - 1");

    for (unsigned i = 0; i < parts.size(); ++i) {
        const Part &part = parts[i];
        part.pool->audit();
        part.master->audit();

        // Live sub-page extents, sorted for point lookups below.
        std::vector<std::pair<Addr, Addr>> extents;
        part.pool->forEachHeader(
            [&extents](Addr sub, const PagePool::SubPageHeader &hdr) {
                extents.emplace_back(
                    sub, sub + static_cast<Addr>(hdr.capacityLines) *
                                   lineBytes);
            });
        std::sort(extents.begin(), extents.end());
        auto in_live_sub_page = [&extents](Addr a) {
            auto it = std::upper_bound(
                extents.begin(), extents.end(),
                std::make_pair(a, ~static_cast<Addr>(0)));
            if (it == extents.begin())
                return false;
            --it;
            return a >= it->first && a + lineBytes <= it->second;
        };

        for (const auto &kv : part.tables) {
            NVO_AUDIT(kv.first == kv.second->epochId(),
                      "epoch table keyed under the wrong epoch");
            kv.second->audit();

            // Merge completeness: tables at or below rec-epoch were
            // folded into the master when rec-epoch advanced (or, for
            // versions arriving late behind rec-epoch, mapped by
            // insertVersion's late-merge path), and the master never
            // regresses to an older epoch. A violation here means a
            // version certified recoverable is invisible to recovery
            // — a silent snapshot hole.
            if (kv.first > recEpoch_)
                continue;
            kv.second->forEachVersion(
                [&part, &kv](Addr line_addr, Addr) {
                    const auto *entry =
                        part.master->lookup(line_addr);
                    NVO_AUDIT(entry != nullptr,
                              "merged version missing from the "
                              "master table");
                    NVO_AUDIT(!entry || entry->epoch >= kv.first,
                              "master maps an older epoch than a "
                              "merged table");
                });
        }

        part.master->forEach(
            [this, i, &part, &in_live_sub_page](
                Addr line_addr, const MasterTable::Entry &entry) {
                NVO_AUDIT(omcOf(line_addr) == i,
                          "master entry filed in the wrong OMC "
                          "partition");
                NVO_AUDIT(part.pool->pageAllocated(entry.nvmAddr),
                          "master entry points into an unallocated "
                          "pool page");
                NVO_AUDIT(in_live_sub_page(entry.nvmAddr),
                          "master entry points outside every live "
                          "sub-page");
                NVO_AUDIT(entry.epoch <= recEpoch_,
                          "master maps a version newer than the "
                          "recoverable epoch");
            });

        if (part.buffer) {
            part.buffer->audit();
            part.buffer->forEachPending(
                [&part](const OmcBuffer::Pending &pending) {
                    auto it = part.tables.find(pending.epoch);
                    NVO_AUDIT(it != part.tables.end(),
                              "buffered version lost its epoch "
                              "table");
                    NVO_AUDIT(it == part.tables.end() ||
                                  it->second->lookupNvm(
                                      pending.addr) != invalidAddr,
                              "buffered version missing from its "
                              "table");
                });
        }
    }
}

const MasterTable &
MnmBackend::master(unsigned omc) const
{
    cap_.assertHeld();
    return *parts[omc].master;
}

PagePool &
MnmBackend::pool(unsigned omc)
{
    cap_.assertHeld();
    return *parts[omc].pool;
}

EpochTable *
MnmBackend::epochTable(unsigned omc, EpochWide e)
{
    cap_.assertHeld();
    auto it = parts[omc].tables.find(e);
    return it == parts[omc].tables.end() ? nullptr : it->second.get();
}

std::uint64_t
MnmBackend::masterNodeBytesTotal() const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        total += part.master->nodeBytes();
    return total;
}

std::uint64_t
MnmBackend::masterMappedLinesTotal() const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        total += part.master->mappedLines();
    return total;
}

std::uint64_t
MnmBackend::epochTableBytesTotal() const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        for (const auto &kv : part.tables)
            total += kv.second->tableBytes();
    return total;
}

std::uint64_t
MnmBackend::poolPagesInUseTotal() const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        total += part.pool->pagesInUse();
    return total;
}

std::uint64_t
MnmBackend::poolPagesTotal() const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        total += part.pool->totalPages();
    return total;
}

std::uint64_t
MnmBackend::bufferOccupancyTotal() const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        if (part.buffer)
            total += part.buffer->occupancy();
    return total;
}

std::uint64_t
MnmBackend::poolLinesOf(tenant::Asid asid) const
{
    cap_.assertHeld();
    std::uint64_t total = 0;
    for (const auto &part : parts)
        total += part.pool->linesInUse(asid);
    return total;
}

} // namespace nvo
