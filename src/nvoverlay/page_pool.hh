/**
 * @file
 * NVM overlay-page buffer pool (paper Sec. V-C).
 *
 * A contiguous NVM region is carved into 4 KB pages tracked by a
 * bitmap. Sparse overlay pages are stored compactly in power-of-two
 * sub-pages (1..64 lines) handed out by a buddy allocator layered on
 * the page bitmap. Each allocated sub-page carries a small persistent
 * header (source page address, epoch, slot map) that makes the NVM
 * image self-describing, which is what lets recovery rebuild the
 * volatile per-epoch tables.
 */

#ifndef NVO_NVOVERLAY_PAGE_POOL_HH
#define NVO_NVOVERLAY_PAGE_POOL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "tenant/asid.hh"

namespace nvo
{

class PersistDomain;

namespace obs
{
struct HistMetric;
} // namespace obs

class PagePool
{
  public:
    /** Max sub-page order: 2^6 lines = one full page. */
    static constexpr unsigned maxOrder = 6;

    /** Persistent sub-page header (self-describing NVM image). */
    struct SubPageHeader
    {
        Addr srcPage = invalidAddr;   ///< physical page this overlays
        EpochWide epoch = 0;
        std::uint8_t capacityLines = 0;
        std::uint8_t usedLines = 0;
        /** slot -> line-in-page map (compact storage order). */
        std::array<std::uint8_t, linesPerPage> slotLine{};
    };

    PagePool(Addr base_addr, std::uint64_t size_bytes);

    /**
     * Journal durable-state mutations (bitmap, image, headers) into
     * @p domain so a simulated crash can unwind the unfenced suffix.
     * Pool state *is* the modelled NVM content, so every mutator
     * stages an undo record while the domain is armed.
     */
    void attachPersist(PersistDomain *domain) { pd = domain; }

    /**
     * Allocate a sub-page of at least @p lines lines (rounded up to a
     * power of two) on behalf of tenant @p asid (per-tenant occupancy
     * accounting; asid 0 is untenanted). Returns invalidAddr when the
     * pool is exhausted.
     */
    Addr allocLines(unsigned lines, tenant::Asid asid);

    /** Return a sub-page of @p lines lines to the allocator,
     *  crediting tenant @p asid's occupancy. */
    void freeLines(Addr addr, unsigned lines, tenant::Asid asid);

    /** Grow the pool by @p pages pages (the OS granting more space). */
    void extend(std::uint64_t pages);

    /** NVM image content access. */
    void writeLine(Addr nvm_addr, const LineData &content);
    void readLine(Addr nvm_addr, LineData &out) const;

    /** Persistent header bookkeeping. */
    void setHeader(Addr sub_page, const SubPageHeader &header);
    const SubPageHeader *header(Addr sub_page) const;
    /**
     * Mutable header access. Callers may update fields in place, so
     * while the persist domain is armed this stages a whole-header
     * undo snapshot before handing out the pointer.
     */
    SubPageHeader *header(Addr sub_page);
    void dropHeader(Addr sub_page);

    /** Visit all live sub-page headers (recovery rebuild). */
    void forEachHeader(
        const std::function<void(Addr, const SubPageHeader &)> &fn)
        const;

    std::uint64_t
    totalPages() const
    {
        cap_.assertHeld();
        return numPages;
    }
    std::uint64_t
    pagesInUse() const
    {
        cap_.assertHeld();
        return usedPages;
    }
    std::uint64_t
    bytesAllocated() const
    {
        cap_.assertHeld();
        return allocatedBytes;
    }

    /** Lines currently allocated on behalf of tenant @p asid. */
    std::uint64_t
    linesInUse(tenant::Asid asid) const
    {
        cap_.assertHeld();
        auto it = asidLines.find(asid);
        return it == asidLines.end() ? 0 : it->second;
    }

    /** Visit every tenant with allocated lines: fn(asid, lines). */
    void forEachAsidLines(
        const std::function<void(tenant::Asid, std::uint64_t)> &fn)
        const;

    /** Fraction of pool pages currently holding data. */
    double
    utilization() const
    {
        cap_.assertHeld();
        return numPages ? static_cast<double>(usedPages) / numPages
                        : 0.0;
    }

    /** Round @p lines up to an allocatable power of two. */
    static unsigned roundLines(unsigned lines);

    /** True when the page containing @p addr is marked allocated. */
    bool pageAllocated(Addr addr) const;

    /**
     * Invariant sweep (NVO_AUDIT): the allocator never double-maps a
     * sub-page. Free blocks are aligned, lie inside allocated pages,
     * and overlap neither each other nor any live sub-page header;
     * every byte of an in-use page is accounted exactly once
     * (allocated + free-listed == usedPages * pageBytes); the
     * used-page count matches the bitmap population.
     */
    void audit() const;

  private:
    /** Take one fresh page from the bitmap. */
    Addr allocPage();

    Addr base;
    /** Bitmap words probed per allocPage (scanHint effectiveness:
     *  p99 near 1 means the rotating hint works; a drifting p99
     *  means fragmentation is forcing long scans). */
    obs::HistMetric *hScan_ = nullptr;
    /** Future per-partition shard capability (ROADMAP item 1): the
     *  pool is per-OMC state and moves wholesale into one shard. */
    ShardCap cap_;
    /** Tenant line accounting shared by alloc/free and their staged
     *  undos (so a crash unwind restores per-tenant occupancy too). */
    void chargeAsid(tenant::Asid asid, std::int64_t lines)
        NVO_REQUIRES(cap_);

    std::uint64_t numPages NVO_GUARDED_BY(cap_);
    std::uint64_t usedPages NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t allocatedBytes NVO_GUARDED_BY(cap_) = 0;
    /** Lines allocated per tenant (key absent == 0). */
    std::map<tenant::Asid, std::uint64_t> asidLines
        NVO_GUARDED_BY(cap_);
    std::vector<std::uint64_t> bitmap NVO_GUARDED_BY(cap_);
    std::uint64_t scanHint NVO_GUARDED_BY(cap_) = 0;
    /** Free lists per order (order k = 2^k lines). */
    std::array<std::vector<Addr>, maxOrder + 1> freeLists
        NVO_GUARDED_BY(cap_);
    BackingStore image NVO_GUARDED_BY(cap_);
    std::unordered_map<Addr, SubPageHeader> headers
        NVO_GUARDED_BY(cap_);
    PersistDomain *pd = nullptr;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_PAGE_POOL_HH
