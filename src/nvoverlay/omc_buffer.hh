/**
 * @file
 * Battery-backed OMC write-back buffer (paper Sec. IV-E, Fig. 16).
 *
 * Sits between version insertion and the NVM device: a version write
 * for (address, epoch) already buffered is absorbed (redundant
 * same-epoch write backs never reach the device); a conflicting slot
 * forces the previous pending write out to NVM. Being battery backed,
 * buffered writes count as durable; a power failure flushes the
 * buffer (drainAll).
 */

#ifndef NVO_NVOVERLAY_OMC_BUFFER_HH
#define NVO_NVOVERLAY_OMC_BUFFER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/thread_safety.hh"
#include "common/types.hh"

namespace nvo
{

class OmcBuffer
{
  public:
    struct Params
    {
        std::uint64_t sizeBytes = 32ull * 1024 * 1024;
        unsigned ways = 16;
    };

    /** A pending NVM write held in the buffer. */
    struct Pending
    {
        Addr addr = invalidAddr;
        EpochWide epoch = 0;
        /** Lifecycle cause of the deferred write (obs::LedgerCause);
         *  carried opaquely so the eventual device write attributes
         *  to whatever inserted the version, not to the eviction. */
        unsigned cause = 0;
    };

    struct InsertResult
    {
        bool hit = false;               ///< absorbed a redundant write
        std::optional<Pending> evicted; ///< displaced pending write
    };

    explicit OmcBuffer(const Params &params);

    InsertResult insert(Addr line_addr, EpochWide epoch,
                        unsigned cause = 0);

    /** Flush everything (power failure or clean finalize). */
    std::vector<Pending> drainAll();

    std::uint64_t
    hits() const
    {
        cap_.assertHeld();
        return hitCount;
    }
    std::uint64_t
    misses() const
    {
        cap_.assertHeld();
        return missCount;
    }
    std::uint64_t
    occupancy() const
    {
        cap_.assertHeld();
        return validCount;
    }

    /** Visit every pending write without draining it. */
    void forEachPending(
        const std::function<void(const Pending &)> &fn) const;

    /**
     * Invariant sweep (NVO_AUDIT): the occupancy counter matches the
     * valid-slot population, pending addresses are line aligned and
     * hash to the set holding them, and no (address, epoch) pair is
     * buffered twice.
     */
    void audit() const;

  private:
    struct Slot
    {
        bool valid = false;
        Addr addr = invalidAddr;
        EpochWide epoch = 0;
        unsigned cause = 0;
        std::uint64_t lru = 0;
    };

    unsigned setOf(Addr line_addr) const;

    unsigned sets;
    unsigned ways_;
    /** Per-OMC buffer state shards with its partition. */
    ShardCap cap_;
    std::uint64_t lruClock NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t hitCount NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t missCount NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t validCount NVO_GUARDED_BY(cap_) = 0;
    std::vector<Slot> slots NVO_GUARDED_BY(cap_);
};

} // namespace nvo

#endif // NVO_NVOVERLAY_OMC_BUFFER_HH
