/**
 * @file
 * Persistent Master Mapping Table, Mmaster (paper Sec. V-C, Fig. 10).
 *
 * A five-level radix tree: the first four levels are identical to the
 * per-epoch tables (9 bits each, address bits 47..12); the fifth
 * level is indexed by bits 11..6 for cache-line-granularity mapping.
 * Every node is persisted on NVM; each entry update is one 8-byte
 * persistent write, reported through the metadata sink so the
 * experiments can account mapping-table write traffic (Fig. 12) and
 * table storage (Fig. 13).
 */

#ifndef NVO_NVOVERLAY_MASTER_TABLE_HH
#define NVO_NVOVERLAY_MASTER_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/thread_safety.hh"
#include "common/types.hh"
#include "tenant/asid.hh"

namespace nvo
{

namespace obs
{
struct HistMetric;
} // namespace obs

class MasterTable
{
  public:
    struct Entry
    {
        Addr nvmAddr = invalidAddr;
        EpochWide epoch = 0;
    };

    /** Sink for persistent metadata writes (bytes). */
    using MetaWriteFn = std::function<void(std::uint32_t)>;

    explicit MasterTable(MetaWriteFn meta_write = {});
    ~MasterTable();

    MasterTable(const MasterTable &) = delete;
    MasterTable &operator=(const MasterTable &) = delete;

    /**
     * Map @p key (an ASID-tagged line address) to @p nvm_addr
     * (version of epoch @p e). The tenant's subtree is selected by
     * the tag bits inside the key's address — see tenant/asid.hh.
     * Returns the replaced entry if one existed (its version becomes
     * stale and must be unreferenced for GC).
     */
    std::optional<Entry> insert(tenant::Key key, Addr nvm_addr,
                                EpochWide e);

    /**
     * Unmap @p key (crash-unwind helper for the persist domain).
     * Radix nodes stay allocated and no metadata write is emitted:
     * the undo restores modelled state, it is not protocol traffic.
     * No-op when the line is not mapped.
     */
    void erase(tenant::Key key);

    const Entry *lookup(Addr line_addr) const;

    /** Visit every mapped line: fn(line_addr, entry). */
    void forEach(
        const std::function<void(Addr, const Entry &)> &fn) const;

    /** Total persistent node storage (Fig. 13 numerator). */
    std::uint64_t
    nodeBytes() const
    {
        cap_.assertHeld();
        return nodeBytes_;
    }

    std::uint64_t
    mappedLines() const
    {
        cap_.assertHeld();
        return mapped;
    }

    /** Cumulative 8-byte entry/pointer writes issued. */
    std::uint64_t
    metaWrites() const
    {
        cap_.assertHeld();
        return metaWriteCount;
    }

    /**
     * Invariant sweep (NVO_AUDIT): the mapped-line counter matches
     * the tree's population and every mapped entry points at real
     * NVM storage (Fig. 10: entries are never left dangling).
     */
    void audit() const;

  private:
    struct InnerNode
    {
        std::array<void *, 512> child{};
    };

    struct LeafNode
    {
        std::uint64_t bitmap = 0;
        std::array<Entry, 64> entry{};
    };

    static unsigned idxAt(Addr line_addr, unsigned level);

    void emitMeta(std::uint32_t bytes);
    void destroy(InnerNode *node, unsigned level);
    void forEachRec(const InnerNode *node, unsigned level, Addr prefix,
                    const std::function<void(Addr, const Entry &)> &fn)
        const;

    MetaWriteFn metaWrite;
    /** Walk-depth histogram (nodes visited + nodes allocated per
     *  insert): a p99 above the 5-level floor means inserts are
     *  still growing the tree rather than filling existing leaves. */
    obs::HistMetric *hWalk_ = nullptr;
    /** The master shard is per-OMC state (ROADMAP item 1). */
    ShardCap cap_;
    InnerNode *root NVO_GUARDED_BY(cap_);
    std::uint64_t nodeBytes_ NVO_GUARDED_BY(cap_);
    std::uint64_t mapped NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t metaWriteCount NVO_GUARDED_BY(cap_) = 0;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_MASTER_TABLE_HH
