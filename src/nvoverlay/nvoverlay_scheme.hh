/**
 * @file
 * NVOverlay scheme facade: wires the CST frontend (versioned domains,
 * Lamport epoch synchronization, tag walkers) to the MNM backend
 * (OMCs). Implements both the Scheme interface the System drives and
 * the VersionCtrl interface the cache hierarchy calls into.
 */

#ifndef NVO_NVOVERLAY_NVOVERLAY_SCHEME_HH
#define NVO_NVOVERLAY_NVOVERLAY_SCHEME_HH

#include <memory>
#include <vector>

#include "baselines/scheme.hh"
#include "cache/version_ctrl.hh"
#include "common/config.hh"
#include "nvoverlay/epoch.hh"
#include "nvoverlay/omc.hh"
#include "nvoverlay/tag_walker.hh"
#include "nvoverlay/versioned_domain.hh"
#include "repl/replicator.hh"
#include "tenant/tenant.hh"

namespace nvo
{

class NVOverlayScheme : public Scheme, public VersionCtrl
{
  public:
    NVOverlayScheme(const Config &cfg, NvmModel &nvm_model,
                    RunStats &run_stats);
    ~NVOverlayScheme() override;

    // --- Scheme interface ---
    const char *name() const override { return "nvoverlay"; }
    void attach(Hierarchy &hierarchy) override;
    Cycle onStore(unsigned core, unsigned vd, Addr line_addr,
                  Cycle now) override;
    void tick(Cycle now) override;
    Cycle finalize(Cycle now) override;
    EpochWide globalEpoch() const override;
    std::uint64_t epochsCompleted() const override;
    void updateStats() override;

    /**
     * Register the NVOverlay protocol sweeps: inter-VD skew below
     * half the 16-bit epoch space (Sec. IV-D), per-VD min-ver never
     * ahead of the VD's epoch, the walkers' queue discipline, and
     * the full MNM backend audit.
     */
    void registerAudits(Auditor &auditor) override;

    // --- VersionCtrl interface ---
    EpochWide vdEpoch(unsigned vd) const override;
    Cycle observeRemoteVersion(unsigned vd, EpochWide rv,
                               Cycle now) override;
    Cycle acceptVersion(unsigned vd, Addr line_addr, EpochWide oid,
                        SeqNo seq, const LineData &content,
                        EvictReason why, Cycle now) override;

    // --- NVOverlay-specific controls ---

    /** Change the per-VD epoch length mid-run (bursty epochs). */
    void setStoresPerEpochVd(std::uint64_t stores)
    {
        storesPerEpochVd = stores;
    }

    std::uint64_t storesPerEpochVdValue() const
    {
        return storesPerEpochVd;
    }

    /** Force every VD to start a new epoch (watch-point snapshot). */
    Cycle advanceAll(Cycle now);

    /** Simulated power failure: battery-flush the OMC buffers. */
    void crashFlush(Cycle now);

    MnmBackend &backend() { return *backend_; }
    const MnmBackend &backend() const { return *backend_; }

    /** Replication bundle; nullptr unless `repl.enabled=1`. */
    repl::Replicator *replicator() { return repl_.get(); }

    /** Tenant policy bundle; nullptr unless `tenant.enabled=1`. */
    tenant::TenantManager *tenantManager() { return tm_.get(); }
    const VersionedDomain &domain(unsigned vd) const
    {
        return vds[vd];
    }
    TagWalker &walker(unsigned vd) { return *walkers[vd]; }
    unsigned numVds() const
    {
        return static_cast<unsigned>(vds.size());
    }
    const tenant::TenantManager *tenantManager() const
    {
        return tm_.get();
    }
    const EpochSenseTracker &senseTracker() const { return *sense; }

  private:
    Cycle advanceVd(unsigned vd, EpochWide target, bool lamport,
                    Cycle now);

    NvmModel &nvm;
    RunStats &stats;

    // Config-derived parameters.
    std::uint64_t storesPerEpochVd;
    Cycle advanceStallCycles;
    std::uint32_t contextBytesPerCore;
    bool walkerEnabled;
    unsigned walkerLinesPerTick;
    MnmBackend::Params mnmParams;
    bool replEnabled = false;
    repl::Replicator::Params replParams;
    bool tenantEnabled = false;
    tenant::TenantManager::Params tenantParams;

    std::vector<VersionedDomain> vds;
    std::vector<std::unique_ptr<TagWalker>> walkers;
    // Declared before backend_: the backend holds a raw pointer to
    // the manager, so the manager must outlive it.
    std::unique_ptr<tenant::TenantManager> tm_;
    std::unique_ptr<MnmBackend> backend_;
    // Declared after backend_: the replicator detaches its ReplSink
    // from the backend on destruction, so it must die first.
    std::unique_ptr<repl::Replicator> repl_;
    std::unique_ptr<EpochSenseTracker> sense;
    unsigned coresPerVd = 1;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_NVOVERLAY_SCHEME_HH
