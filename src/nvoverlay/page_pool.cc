#include "nvoverlay/page_pool.hh"

#include <algorithm>

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"
#include "fault/fault.hh"
#include "mem/persist_domain.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace nvo
{

PagePool::PagePool(Addr base_addr, std::uint64_t size_bytes)
    : base(base_addr),
      hScan_(obs::metricRegistry().addHist("mnm.pool_scan_dist")),
      numPages(size_bytes / pageBytes)
{
    nvo_assert(pageAlign(base_addr) == base_addr);
    nvo_assert(numPages > 0, "pool needs at least one page");
    bitmap.resize((numPages + 63) / 64, 0);
}

unsigned
PagePool::roundLines(unsigned lines)
{
    nvo_assert(lines >= 1 && lines <= linesPerPage);
    unsigned v = 1;
    while (v < lines)
        v <<= 1;
    return v;
}

Addr
PagePool::allocPage()
{
    cap_.assertHeld();
    for (std::uint64_t i = 0; i < bitmap.size(); ++i) {
        std::uint64_t idx = (scanHint + i) % bitmap.size();
        if (bitmap[idx] == ~0ull)
            continue;
        std::uint64_t word = bitmap[idx];
        unsigned bit = 0;
        while ((word >> bit) & 1ull)
            ++bit;
        std::uint64_t page = idx * 64 + bit;
        if (page >= numPages)
            continue;
        bitmap[idx] |= 1ull << bit;
        scanHint = idx;
        ++usedPages;
        NVO_METRIC(record(hScan_, i + 1));
        if (pd && pd->armed()) {
            pd->stage(PersistDomain::Kind::PoolBitmap,
                      [this, idx, bit] {
                          cap_.assertHeld();
                          bitmap[idx] &= ~(1ull << bit);
                          --usedPages;
                      });
        }
        NVO_TRACE_NOW(Pool, PoolPages, obs::trackSim, usedPages, 0);
        return base + page * pageBytes;
    }
    return invalidAddr;
}

void
PagePool::chargeAsid(tenant::Asid asid, std::int64_t lines)
{
    cap_.assertHeld();
    if (lines >= 0) {
        asidLines[asid] += static_cast<std::uint64_t>(lines);
        return;
    }
    auto it = asidLines.find(asid);
    nvo_assert(it != asidLines.end() &&
                   it->second >= static_cast<std::uint64_t>(-lines),
               "tenant line accounting went negative");
    it->second -= static_cast<std::uint64_t>(-lines);
    if (it->second == 0)
        asidLines.erase(it);
}

void
PagePool::forEachAsidLines(
    const std::function<void(tenant::Asid, std::uint64_t)> &fn) const
{
    cap_.assertHeld();
    for (const auto &kv : asidLines)
        fn(kv.first, kv.second);
}

Addr
PagePool::allocLines(unsigned lines, tenant::Asid asid)
{
    cap_.assertHeld();
    NVO_FAULT_POINT("pool.alloc");
    unsigned rounded = roundLines(lines);
    unsigned order = log2Exact(rounded);

    // Find the smallest order with a free block, splitting downward.
    unsigned from = order;
    while (from <= maxOrder && freeLists[from].empty())
        ++from;

    Addr block;
    bool from_free_list = from <= maxOrder;
    unsigned src_order = from_free_list ? from : maxOrder;
    if (!from_free_list) {
        block = allocPage();   // stages its own bitmap undo
        if (block == invalidAddr)
            return invalidAddr;
        from = maxOrder;
    } else {
        block = freeLists[from].back();
        freeLists[from].pop_back();
    }

    while (from > order) {
        --from;
        // Keep the low half, release the high half.
        freeLists[from].push_back(block +
                                  (static_cast<Addr>(1) << from) *
                                      lineBytes);
    }
    std::uint64_t bytes =
        static_cast<std::uint64_t>(rounded) * lineBytes;
    allocatedBytes += bytes;
    chargeAsid(asid, rounded);
    if (pd && pd->armed()) {
        // Reverse-order unwind guarantees the halves pushed above are
        // still at the back of their lists when this undo runs.
        pd->stage(PersistDomain::Kind::PoolBitmap,
                  [this, block, order, src_order, from_free_list,
                   bytes, asid, rounded] {
                      cap_.assertHeld();
                      for (unsigned o = order; o < src_order; ++o)
                          freeLists[o].pop_back();
                      if (from_free_list)
                          freeLists[src_order].push_back(block);
                      allocatedBytes -= bytes;
                      chargeAsid(asid,
                                 -static_cast<std::int64_t>(rounded));
                  });
    }
    NVO_TRACE_NOW(Pool, PoolAlloc, obs::trackSim, block, rounded);
    return block;
}

void
PagePool::freeLines(Addr addr, unsigned lines, tenant::Asid asid)
{
    cap_.assertHeld();
    NVO_FAULT_POINT("pool.free");
    unsigned rounded = roundLines(lines);
    unsigned order = log2Exact(rounded);
    freeLists[order].push_back(addr);
    std::uint64_t bytes =
        static_cast<std::uint64_t>(rounded) * lineBytes;
    allocatedBytes -= bytes;
    chargeAsid(asid, -static_cast<std::int64_t>(rounded));
    if (pd && pd->armed()) {
        pd->stage(PersistDomain::Kind::PoolBitmap,
                  [this, order, bytes, asid, rounded] {
                      cap_.assertHeld();
                      freeLists[order].pop_back();
                      allocatedBytes += bytes;
                      chargeAsid(asid, rounded);
                  });
    }
    NVO_TRACE_NOW(Pool, PoolFree, obs::trackSim, addr, rounded);
    // Note: no buddy coalescing; version compaction is the mechanism
    // that reclaims fragmented pools (paper Sec. V-D).
}

void
PagePool::extend(std::uint64_t pages)
{
    cap_.assertHeld();
    numPages += pages;
    bitmap.resize((numPages + 63) / 64, 0);
    if (pd && pd->armed()) {
        pd->stage(PersistDomain::Kind::PoolBitmap, [this, pages] {
            cap_.assertHeld();
            numPages -= pages;
            bitmap.resize((numPages + 63) / 64, 0);
        });
    }
    NVO_TRACE_NOW(Pool, PoolExtend, obs::trackSim, pages, 0);
}

void
PagePool::writeLine(Addr nvm_addr, const LineData &content)
{
    cap_.assertHeld();
    if (pd && pd->armed()) {
        LineData old;
        image.readLine(nvm_addr, old);
        pd->stage(PersistDomain::Kind::PoolData,
                  [this, nvm_addr, old] {
                      cap_.assertHeld();
                      image.writeLine(nvm_addr, old);
                  });
    }
    image.writeLine(nvm_addr, content);
}

void
PagePool::readLine(Addr nvm_addr, LineData &out) const
{
    cap_.assertHeld();
    image.readLine(nvm_addr, out);
}

void
PagePool::setHeader(Addr sub_page, const SubPageHeader &hdr)
{
    cap_.assertHeld();
    if (pd && pd->armed()) {
        auto it = headers.find(sub_page);
        if (it == headers.end()) {
            pd->stage(PersistDomain::Kind::PoolHeader,
                      [this, sub_page] {
                          cap_.assertHeld();
                          headers.erase(sub_page);
                      });
        } else {
            pd->stage(PersistDomain::Kind::PoolHeader,
                      [this, sub_page, old = it->second] {
                          cap_.assertHeld();
                          headers[sub_page] = old;
                      });
        }
    }
    headers[sub_page] = hdr;
}

const PagePool::SubPageHeader *
PagePool::header(Addr sub_page) const
{
    cap_.assertHeld();
    auto it = headers.find(sub_page);
    return it == headers.end() ? nullptr : &it->second;
}

PagePool::SubPageHeader *
PagePool::header(Addr sub_page)
{
    cap_.assertHeld();
    auto it = headers.find(sub_page);
    if (it == headers.end())
        return nullptr;
    // The caller may mutate fields in place; snapshot the whole
    // header so a crash restores it (over-stages on read-only use,
    // which only happens while a campaign has the domain armed).
    if (pd && pd->armed()) {
        pd->stage(PersistDomain::Kind::PoolHeader,
                  [this, sub_page, old = it->second] {
                      cap_.assertHeld();
                      headers[sub_page] = old;
                  });
    }
    return &it->second;
}

void
PagePool::dropHeader(Addr sub_page)
{
    cap_.assertHeld();
    if (pd && pd->armed()) {
        auto it = headers.find(sub_page);
        if (it != headers.end()) {
            pd->stage(PersistDomain::Kind::PoolHeader,
                      [this, sub_page, old = it->second] {
                          cap_.assertHeld();
                          headers[sub_page] = old;
                      });
        }
    }
    headers.erase(sub_page);
}

void
PagePool::forEachHeader(
    const std::function<void(Addr, const SubPageHeader &)> &fn) const
{
    cap_.assertHeld();
    for (const auto &kv : headers)
        fn(kv.first, kv.second);
}

bool
PagePool::pageAllocated(Addr addr) const
{
    cap_.assertHeld();
    if (addr < base)
        return false;
    std::uint64_t page = (addr - base) / pageBytes;
    if (page >= numPages)
        return false;
    return (bitmap[page / 64] >> (page % 64)) & 1ull;
}

void
PagePool::audit() const
{
    cap_.assertHeld();
    if (!audit::enabled)
        return;

    // Bitmap population backs the used-page counter.
    std::uint64_t pop = 0;
    for (std::uint64_t w : bitmap)
        pop += popcount64(w);
    NVO_AUDIT(pop == usedPages, "used-page count diverged from bitmap");
    NVO_AUDIT(usedPages <= numPages, "more pages used than exist");

    // Collect every extent the allocator considers spoken for: free
    // blocks awaiting reuse and live sub-page headers. None of them
    // may overlap — an overlap is a double-mapped sub-page, the
    // silent-corruption bug class of Sec. V-C.
    struct Extent
    {
        Addr lo;
        Addr hi;
        bool free;
    };
    std::vector<Extent> extents;
    std::uint64_t free_bytes = 0;
    for (unsigned order = 0; order <= maxOrder; ++order) {
        const std::uint64_t block_bytes =
            (static_cast<std::uint64_t>(1) << order) * lineBytes;
        for (Addr a : freeLists[order]) {
            NVO_AUDIT(pageAllocated(a),
                      "free block outside any allocated page");
            NVO_AUDIT((a - base) % block_bytes == 0,
                      "free block misaligned for its order");
            extents.push_back({a, a + block_bytes, true});
            free_bytes += block_bytes;
        }
    }
    for (const auto &kv : headers) {
        const SubPageHeader &hdr = kv.second;
        NVO_AUDIT(pageAllocated(kv.first),
                  "sub-page header outside any allocated page");
        NVO_AUDIT(hdr.capacityLines >= 1 &&
                      hdr.capacityLines <= linesPerPage,
                  "sub-page header with impossible capacity");
        NVO_AUDIT(hdr.usedLines <= hdr.capacityLines,
                  "sub-page header uses more lines than it holds");
        extents.push_back(
            {kv.first,
             kv.first + static_cast<Addr>(hdr.capacityLines) *
                            lineBytes,
             false});
    }
    std::sort(extents.begin(), extents.end(),
              [](const Extent &a, const Extent &b) {
                  return a.lo < b.lo;
              });
    for (std::size_t i = 1; i < extents.size(); ++i)
        NVO_AUDIT(extents[i - 1].hi <= extents[i].lo,
                  extents[i - 1].free || extents[i].free
                      ? "free list overlaps a mapped sub-page"
                      : "two sub-page headers map the same lines");

    // Every byte of an in-use page is either handed out or free:
    // allocPage() introduces whole pages as maxOrder blocks and
    // alloc/free keep the split exact.
    NVO_AUDIT(allocatedBytes + free_bytes == usedPages * pageBytes,
              "allocator byte accounting out of balance");

    // Per-tenant line tallies partition the allocated bytes exactly
    // (the stats-side exact-sum invariant's allocator twin).
    std::uint64_t asid_lines = 0;
    for (const auto &kv : asidLines)
        asid_lines += kv.second;
    NVO_AUDIT(asid_lines * lineBytes == allocatedBytes,
              "per-tenant line accounting out of balance");
}

} // namespace nvo
