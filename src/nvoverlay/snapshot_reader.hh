/**
 * @file
 * Time-travel snapshot access (paper Sec. V-E).
 *
 * Wraps the MNM backend's per-epoch tables with the fall-through
 * lookup semantics an MVCC-style debugger needs: the value of address
 * X at epoch E is the version from the largest E' <= E that mapped X.
 */

#ifndef NVO_NVOVERLAY_SNAPSHOT_READER_HH
#define NVO_NVOVERLAY_SNAPSHOT_READER_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "mem/backing_store.hh"
#include "nvoverlay/omc.hh"

namespace nvo
{

class SnapshotReader
{
  public:
    explicit SnapshotReader(const MnmBackend &backend_)
        : backend(backend_)
    {
    }

    struct Versioned
    {
        LineData data;
        EpochWide epoch;   ///< the E' that actually mapped the line
    };

    /** Snapshot value of the line containing @p addr at epoch @p e. */
    std::optional<Versioned> readLine(Addr addr, EpochWide e) const;

    /**
     * Read @p len bytes at @p addr (may span lines) as of epoch
     * @p e. Returns false if any covered line has no version at or
     * before @p e.
     */
    bool read(Addr addr, void *out, unsigned len, EpochWide e) const;

    /** Convenience typed read. */
    template <typename T>
    std::optional<T>
    readValue(Addr addr, EpochWide e) const
    {
        T value;
        if (!read(addr, &value, sizeof(T), e))
            return std::nullopt;
        return value;
    }

    /**
     * Tenant-scoped read: @p local_addr is tenant @p asid's own
     * (untagged) address; the tag routes the lookup into that
     * tenant's master/epoch subtrees. Co-tenant state is unreachable
     * by construction — no tag, no path.
     */
    std::optional<Versioned>
    readTenantLine(tenant::Asid asid, Addr local_addr,
                   EpochWide e) const
    {
        return readLine(tenant::tag(asid, local_addr), e);
    }

  private:
    const MnmBackend &backend;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_SNAPSHOT_READER_HH
