/**
 * @file
 * Per-VD cache tag walker (paper Sec. IV-C).
 *
 * After a VD advances its epoch, the walker scans the VD's cache tags
 * for dirty versions older than the new epoch, downgrades them, and
 * drains them to the OMC in the background with a per-tick line
 * budget (spreading the write-back bandwidth instead of bursting it —
 * the property Fig. 17 measures). Once a scan's versions are fully
 * drained the walker reports min-ver to the OMC, which drives the
 * recoverable-epoch protocol (Sec. V-B).
 */

#ifndef NVO_NVOVERLAY_TAG_WALKER_HH
#define NVO_NVOVERLAY_TAG_WALKER_HH

#include <deque>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvoverlay/omc.hh"

namespace nvo
{

class TagWalker
{
  public:
    struct Params
    {
        unsigned vd = 0;
        /** Versions drained to the OMC per tick. */
        unsigned linesPerTick = 64;
        /** Disable the walker entirely (Fig. 15b experiment). */
        bool enabled = true;
    };

    TagWalker(const Params &params, Hierarchy &hierarchy,
              MnmBackend &backend, RunStats &run_stats);

    /** The VD advanced its epoch: schedule a scan. */
    void requestWalk();

    /**
     * Background progress; returns NVM back-pressure stall absorbed
     * by the walker (never charged to cores). The walker is
     * opportunistic (paper Sec. IV-C): a pending scan only runs once
     * the caller allows it, so demand evictions claim most old
     * versions first and the walker sweeps the remainder.
     */
    Cycle tick(Cycle now, bool allow_scan = true);

    /** No scan pending and nothing left to drain. */
    bool idle() const { return !scanPending && drainQueue.empty(); }

    /** Drive the walker to completion (finalize / tests). */
    void drainFully(Cycle now);

    std::uint64_t walksCompleted() const { return walks; }

    /** Drain-rate knob for the adaptive policy engine: raise to burn
     *  down merge backlog faster, lower to restore the configured
     *  aggressiveness. */
    void setLinesPerTick(unsigned lines) { p.linesPerTick = lines; }
    unsigned linesPerTick() const { return p.linesPerTick; }

    /**
     * Invariant sweep (NVO_AUDIT), paper Sec. IV-C / V-B: a disabled
     * walker holds no work; queued versions are line aligned and
     * strictly older than the VD's current epoch (@p vd_epoch, passed
     * in by the scheme); a pending report never regresses below the
     * last min-ver reported (min-ver monotonicity — the certification
     * the rec-epoch protocol is built on).
     */
    void audit(EpochWide vd_epoch) const;

  private:
    Params p;
    Hierarchy &hier;
    MnmBackend &backend;
    RunStats &stats;

    bool scanPending = false;
    EpochWide pendingMinVer = 0;
    bool reportPending = false;
    /** Backend-certified min-ver seen after our last report; the
     *  certified value must only ever advance (audit anchor). */
    EpochWide lastReported = 0;
    std::deque<Hierarchy::WalkVersion> drainQueue;
    std::uint64_t walks = 0;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_TAG_WALKER_HH
