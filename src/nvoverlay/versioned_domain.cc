#include "nvoverlay/versioned_domain.hh"

#include "common/log.hh"

namespace nvo
{

void
VersionedDomain::advance(EpochWide target, bool lamport)
{
    cap_.assertHeld();
    nvo_assert(target > cur, "epoch advance must move forward");
    cur = target;
    storesThisEpoch = 0;
    ++advanceCount;
    if (lamport)
        ++lamportCount;
}

} // namespace nvo
