/**
 * @file
 * Epoch-number encoding and wrap-around handling (paper Sec. IV-D).
 *
 * Hardware tags carry 16-bit OIDs. The simulator core tracks epochs as
 * 64-bit values for convenience; this module provides the narrow
 * encoding, wrap-aware comparison, widening against a reference, and
 * the two-group epoch-sense scheme that bounds inter-VD skew to half
 * the version-number space.
 */

#ifndef NVO_NVOVERLAY_EPOCH_HH
#define NVO_NVOVERLAY_EPOCH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace nvo
{
namespace epoch
{

constexpr unsigned narrowBits = 16;
constexpr EpochWide halfSpace = 1ull << (narrowBits - 1);

/** Narrow a wide epoch to its 16-bit hardware tag. */
inline EpochId
narrow(EpochWide e)
{
    return static_cast<EpochId>(e & 0xffff);
}

/**
 * Wrap-aware comparison of two narrow epochs. Valid whenever the true
 * distance between them is less than half the space (which the
 * epoch-sense scheme guarantees). Returns <0, 0, >0.
 */
inline int
compareNarrow(EpochId a, EpochId b)
{
    auto diff = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(a - b));
    return diff < 0 ? -1 : (diff > 0 ? 1 : 0);
}

/**
 * Reconstruct the wide epoch nearest to @p ref whose narrow encoding
 * is @p n. Correct when |true - ref| < half the space.
 */
inline EpochWide
widen(EpochId n, EpochWide ref)
{
    auto delta = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(n - narrow(ref)));
    return ref + delta;
}

/** Epoch group (L = 0, U = 1) of a narrow epoch. */
inline unsigned
group(EpochId n)
{
    return (n >> (narrowBits - 1)) & 1u;
}

} // namespace epoch

/**
 * The two-group wrap-around scheme: the epoch space is split into
 * groups L and U; a persistent epoch-sense bit says which group is
 * logically ahead. The bit flips whenever a VD first advances into
 * the other group, recycling the numbers of the now-smaller group.
 * The tracker also verifies the invariant the scheme relies on:
 * inter-VD skew stays below half the space.
 */
class EpochSenseTracker
{
  public:
    explicit EpochSenseTracker(unsigned num_vds);

    /**
     * Record that @p vd advanced to @p new_epoch (wide). Returns true
     * when the epoch-sense bit flipped on this advance.
     */
    bool onAdvance(unsigned vd, EpochWide new_epoch);

    bool senseBit() const { return sense; }

    /** Largest pairwise skew observed so far. */
    EpochWide maxSkew() const { return maxSkew_; }

    /** True while all observed skews stayed below half the space. */
    bool skewWithinBound() const
    {
        return maxSkew_ < epoch::halfSpace;
    }

    std::uint64_t flips() const { return flipCount; }

  private:
    std::vector<EpochWide> vdEpochs;
    bool sense = false;
    unsigned leadGroup = 0;
    EpochWide maxSkew_ = 0;
    std::uint64_t flipCount = 0;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_EPOCH_HH
