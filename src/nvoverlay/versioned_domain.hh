/**
 * @file
 * Per-VD epoch state (paper Sec. III-C, IV-B). A Versioned Domain is
 * a 2-core cluster with its inclusive L2; all its cache controllers
 * share one cur-epoch register, modelled by this class. Epochs
 * advance either on a store-count trigger or by Lamport
 * synchronization when the VD observes a version from the future.
 */

#ifndef NVO_NVOVERLAY_VERSIONED_DOMAIN_HH
#define NVO_NVOVERLAY_VERSIONED_DOMAIN_HH

#include <cstdint>

#include "common/thread_safety.hh"
#include "common/types.hh"

namespace nvo
{

class VersionedDomain
{
  public:
    VersionedDomain(unsigned id, EpochWide initial_epoch = 1)
        : vdId(id), cur(initial_epoch)
    {
    }

    unsigned id() const { return vdId; }
    EpochWide
    epoch() const
    {
        cap_.assertHeld();
        return cur;
    }

    /** A store committed in this VD during the current epoch. */
    void
    noteStore()
    {
        cap_.assertHeld();
        ++storesThisEpoch;
    }

    std::uint64_t
    storesInEpoch() const
    {
        cap_.assertHeld();
        return storesThisEpoch;
    }

    /**
     * Advance to @p target (must be > current). Resets the per-epoch
     * store counter. @p lamport marks coherence-driven advances.
     */
    void advance(EpochWide target, bool lamport);

    std::uint64_t
    advances() const
    {
        cap_.assertHeld();
        return advanceCount;
    }
    std::uint64_t
    lamportAdvances() const
    {
        cap_.assertHeld();
        return lamportCount;
    }

  private:
    unsigned vdId;
    /** One VD = one future shard: the cur-epoch register and its
     *  counters are the canonical per-VD sharded state. */
    ShardCap cap_;
    EpochWide cur NVO_GUARDED_BY(cap_);
    std::uint64_t storesThisEpoch NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t advanceCount NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t lamportCount NVO_GUARDED_BY(cap_) = 0;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_VERSIONED_DOMAIN_HH
