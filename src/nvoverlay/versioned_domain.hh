/**
 * @file
 * Per-VD epoch state (paper Sec. III-C, IV-B). A Versioned Domain is
 * a 2-core cluster with its inclusive L2; all its cache controllers
 * share one cur-epoch register, modelled by this class. Epochs
 * advance either on a store-count trigger or by Lamport
 * synchronization when the VD observes a version from the future.
 */

#ifndef NVO_NVOVERLAY_VERSIONED_DOMAIN_HH
#define NVO_NVOVERLAY_VERSIONED_DOMAIN_HH

#include <cstdint>

#include "common/types.hh"

namespace nvo
{

class VersionedDomain
{
  public:
    VersionedDomain(unsigned id, EpochWide initial_epoch = 1)
        : vdId(id), cur(initial_epoch)
    {
    }

    unsigned id() const { return vdId; }
    EpochWide epoch() const { return cur; }

    /** A store committed in this VD during the current epoch. */
    void noteStore() { ++storesThisEpoch; }

    std::uint64_t storesInEpoch() const { return storesThisEpoch; }

    /**
     * Advance to @p target (must be > current). Resets the per-epoch
     * store counter. @p lamport marks coherence-driven advances.
     */
    void advance(EpochWide target, bool lamport);

    std::uint64_t advances() const { return advanceCount; }
    std::uint64_t lamportAdvances() const { return lamportCount; }

  private:
    unsigned vdId;
    EpochWide cur;
    std::uint64_t storesThisEpoch = 0;
    std::uint64_t advanceCount = 0;
    std::uint64_t lamportCount = 0;
};

} // namespace nvo

#endif // NVO_NVOVERLAY_VERSIONED_DOMAIN_HH
