#include "mem/dram_model.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace nvo
{

DramModel::DramModel(const Params &params, RunStats *run_stats)
    : p(params), stats(run_stats), chanFree(params.channels, 0)
{
    nvo_assert(params.channels > 0);
}

unsigned
DramModel::channelOf(Addr addr) const
{
    return static_cast<unsigned>((addr >> lineBytesLog2) % p.channels);
}

Cycle
DramModel::occupy(Addr addr, std::uint32_t bytes, Cycle now)
{
    unsigned chan = channelOf(addr);
    Cycle start = std::max(now, chanFree[chan]);
    std::uint32_t chunks = (bytes + lineBytes - 1) / lineBytes;
    Cycle done = start + p.accessLatency +
                 static_cast<Cycle>(chunks - 1) * p.occupancyPer64B;
    chanFree[chan] = start + chunks * p.occupancyPer64B;
    return done - now;
}

Cycle
DramModel::read(Addr addr, std::uint32_t bytes, Cycle now)
{
    if (stats)
        stats->dramReadBytes += bytes;
    return occupy(addr, bytes, now);
}

Cycle
DramModel::write(Addr addr, std::uint32_t bytes, Cycle now)
{
    if (stats)
        stats->dramWriteBytes += bytes;
    return occupy(addr, bytes, now);
}

} // namespace nvo
