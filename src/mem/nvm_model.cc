#include "mem/nvm_model.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "fault/fault.hh"
#include "mem/persist_domain.hh"
#include "obs/trace.hh"

namespace nvo
{

NvmModel::NvmModel(const Params &params, RunStats *run_stats)
    : p(params), stats(run_stats), bankFree(params.banks, 0)
{
    nvo_assert(params.banks > 0);
    nvo_assert(params.writeOccupancy > 0);
    // Buffer window expressed in drain time: how long the device may
    // run behind demand before issuers feel back-pressure.
    windowCycles = static_cast<Cycle>(
        static_cast<double>(p.bufferBytes) /
        (static_cast<double>(p.banks) * lineBytes /
         static_cast<double>(p.writeOccupancy)));
    persist_ = std::make_unique<PersistDomain>(*this);
}

NvmModel::~NvmModel() = default;

PersistDomain &
NvmModel::persist()
{
    return *persist_;
}

double
NvmModel::bytesPerCycle() const
{
    return static_cast<double>(p.banks) * lineBytes /
           static_cast<double>(p.writeOccupancy);
}

unsigned
NvmModel::bankOf(Addr addr) const
{
    // Interleave consecutive lines across banks.
    return static_cast<unsigned>((addr >> lineBytesLog2) % p.banks);
}

NvmModel::Issue
NvmModel::write(Addr addr, std::uint32_t bytes, Cycle now,
                NvmWriteKind kind)
{
    nvo_assert(bytes > 0);
    NVO_FAULT_POINT("nvm.write");

    // Bandwidth model: accumulate drain work on the aggregate device
    // clock; stall only when the backlog no longer fits the buffer.
    // Issuer clocks are only loosely synchronized (bound-and-weave
    // quanta), so back-pressure is computed against a monotonic
    // device-side view of time to avoid quantum-skew artifacts.
    deviceNow = std::max(deviceNow, now);
    Cycle work = std::max<Cycle>(
        1, (static_cast<Cycle>(bytes) * p.writeOccupancy) /
               (static_cast<Cycle>(p.banks) * lineBytes));
    busyUntil = std::max(busyUntil, deviceNow) + work;

    Cycle stall = 0;
    if (busyUntil > deviceNow + windowCycles) {
        stall = busyUntil - windowCycles - deviceNow;
        stallCycles += stall;
        now += stall;
        NVO_TRACE(Nvm, NvmStall, obs::trackNvm, now, stall,
                  busyUntil - deviceNow);
    }
    NVO_TRACE(Nvm, NvmBacklog, obs::trackNvm, now,
              busyUntil > deviceNow ? busyUntil - deviceNow : 0, 0);

    // Durability model: the write lands in its bank.
    Cycle completion = now;
    std::uint32_t chunks = (bytes + lineBytes - 1) / lineBytes;
    for (std::uint32_t i = 0; i < chunks; ++i) {
        unsigned bank = bankOf(addr + i * lineBytes);
        Cycle start = std::max(now, bankFree[bank]);
        Cycle done = start + p.writeOccupancy;
        bankFree[bank] = done;
        if (done > completion)
            completion = done;
        if (p.wearEnabled)
            ++wear_[(addr + i * lineBytes) / p.wearRegionBytes];
    }

    writeBytes += bytes;
    // The bandwidth time series records *drain* time (busyUntil), so
    // plotted bandwidth never exceeds device capacity even when the
    // DRAM buffer absorbs an issue burst (Fig. 17 semantics).
    if (stats)
        stats->addNvmWrite(kind, bytes, busyUntil);
    return Issue{stall, completion};
}

Cycle
NvmModel::read(Addr addr, std::uint32_t bytes, Cycle now)
{
    nvo_assert(bytes > 0);
    unsigned bank = bankOf(addr);
    Cycle start = std::max(now, bankFree[bank]);
    Cycle done = start + p.readLatency;
    readBytes += bytes;
    if (stats)
        stats->nvmReadBytes += bytes;
    return done - now;
}

void
NvmModel::exportWear(RunStats &run_stats) const
{
    if (!p.wearEnabled || wear_.empty())
        return;
    std::uint64_t maxWrites = 0;
    std::uint64_t totalWrites = 0;
    for (const auto &kv : wear_) {
        maxWrites = std::max(maxWrites, kv.second);
        totalWrites += kv.second;
    }
    std::uint64_t regions = wear_.size();
    // Mean scaled x1000 so the skew stays meaningful in integer
    // stats; ratio = max/mean x1000 (1000 = perfectly level wear).
    std::uint64_t meanX1000 = totalWrites * 1000 / regions;
    run_stats.extra["nvm_wear_regions"] = regions;
    run_stats.extra["nvm_wear_region_bytes"] = p.wearRegionBytes;
    run_stats.extra["nvm_wear_line_writes"] = totalWrites;
    run_stats.extra["nvm_wear_max_writes"] = maxWrites;
    run_stats.extra["nvm_wear_mean_writes_x1000"] = meanX1000;
    run_stats.extra["nvm_wear_ratio_x1000"] =
        meanX1000 ? maxWrites * 1000 * 1000 / meanX1000 : 0;
}

Cycle
NvmModel::drainCompletion() const
{
    Cycle latest = busyUntil;
    for (Cycle c : bankFree)
        latest = std::max(latest, c);
    return latest;
}

} // namespace nvo
