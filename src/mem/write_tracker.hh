/**
 * @file
 * Verification-only record of every committed store.
 *
 * The correctness theorem (DESIGN.md Sec. 2): per-line version epochs
 * are non-decreasing, so the recovered content of a line at
 * recoverable epoch Er must equal the content after the *last* store
 * to it with epoch <= Er. The tracker records, per line, the sequence
 * of (seq, wide epoch, content digest) triples so tests can compute
 * the expected image for any Er and compare digests.
 */

#ifndef NVO_MEM_WRITE_TRACKER_HH
#define NVO_MEM_WRITE_TRACKER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace nvo
{

class WriteTracker
{
  public:
    struct Entry
    {
        SeqNo seq;
        EpochWide epoch;
        std::uint64_t digest;   ///< content digest after the store
    };

    /** Record a committed store to @p line_addr. */
    void record(Addr line_addr, SeqNo seq, EpochWide epoch,
                std::uint64_t digest);

    /**
     * Expected digest of @p line_addr when recovering at epoch
     * @p er (inclusive); nullopt when the line has no store with
     * epoch <= er (its recovered content is unconstrained / absent).
     */
    std::optional<std::uint64_t> expectedDigest(Addr line_addr,
                                                EpochWide er) const;

    /**
     * Like expectedDigest, but returns the whole defining entry —
     * crash campaigns need the defining store's epoch to decide
     * whether a mismatch is a durability bug or a version the backend
     * never received.
     */
    std::optional<Entry> expectedEntry(Addr line_addr,
                                       EpochWide er) const;

    /** Check that per-line epochs never decrease (theorem premise). */
    bool epochsMonotonic() const;

    /** All tracked line addresses. */
    std::vector<Addr> trackedLines() const;

    /** Full per-line history (diagnostics). */
    const std::vector<Entry> *lineHistory(Addr line_addr) const
    {
        auto it = history.find(line_addr);
        return it == history.end() ? nullptr : &it->second;
    }

    std::uint64_t numStores() const { return storeCount; }

  private:
    std::unordered_map<Addr, std::vector<Entry>> history;
    std::uint64_t storeCount = 0;
};

} // namespace nvo

#endif // NVO_MEM_WRITE_TRACKER_HH
