/**
 * @file
 * Persistence-domain model: the explicit durable/volatile boundary of
 * the NVM subsystem.
 *
 * The paper's durable structures — the master mapping table, the
 * overlay data pages, and the page-pool bitmap (Sec. V-C) — are
 * modelled functionally in DRAM, so without help a simulated crash
 * cannot lose anything. The PersistDomain makes the boundary real:
 *
 *  - every durable-structure mutation is applied to the modelled
 *    state immediately (reads must see it) and *staged* as an undo
 *    record in an in-flight write queue;
 *  - a persist `barrier()` (the protocol's ordering points: rec-epoch
 *    persist, late-merge patches, compaction passes, clean shutdown)
 *    drains the queue into the durable array — records become
 *    unloseable;
 *  - a crash calls `truncateToDurable()`, which unwinds the in-flight
 *    suffix in reverse order, restoring exactly the durable prefix.
 *
 * Device writes of durable structures are routed through `write()`,
 * which forwards to the owning NvmModel's timing model; this is the
 * single sanctioned raw-NVM-write path for `src/nvoverlay/` (enforced
 * by nvo_lint's persist-domain rule).
 *
 * Staging costs one closure per mutation, so the domain is `arm()`ed
 * only for crash campaigns and tests (`persist.armed`); disarmed, the
 * hooks are one branch and all mutations count as durable instantly.
 */

#ifndef NVO_MEM_PERSIST_DOMAIN_HH
#define NVO_MEM_PERSIST_DOMAIN_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "mem/nvm_model.hh"

namespace nvo
{

class PersistDomain
{
  public:
    /** Which durable structure a staged record mutates. */
    enum class Kind : unsigned
    {
        PoolData = 0,   ///< overlay data page content
        PoolHeader,     ///< self-describing sub-page headers
        PoolBitmap,     ///< page bitmap / buddy allocator state
        Master,         ///< master mapping table entries
        RecEpoch,       ///< the persisted rec-epoch word
        NumKinds
    };

    using Undo = std::function<void()>;

    explicit PersistDomain(NvmModel &nvm_model) : nvm(nvm_model) {}

    /** Route a durable-structure device write to the NVM model. */
    NvmModel::Issue
    write(Addr addr, std::uint32_t bytes, Cycle now, NvmWriteKind kind)
    {
        return nvm.write(addr, bytes, now, kind);
    }

    /** Start journaling undo records (crash campaigns, tests). */
    void arm() { armed_ = true; }

    bool armed() const { return armed_; }

    /**
     * Record a durable-structure mutation that has been applied to
     * the modelled state but not yet fenced. @p undo must restore the
     * pre-mutation state assuming every later record was already
     * undone (records unwind in reverse staging order).
     */
    void stage(Kind kind, Undo undo);

    /** Persist fence: the whole in-flight queue becomes durable. */
    void barrier();

    /** Crash: unwind the in-flight suffix, newest record first. */
    void truncateToDurable();

    // --- Introspection (stats, tests) ---

    std::size_t inFlight() const { return queue.size(); }
    std::uint64_t stagedTotal() const { return staged_; }
    std::uint64_t durableTotal() const { return durable_; }
    std::uint64_t truncatedTotal() const { return truncated_; }
    std::uint64_t barriers() const { return barriers_; }

    std::uint64_t
    stagedByKind(Kind kind) const
    {
        return stagedKind[static_cast<unsigned>(kind)];
    }

  private:
    struct Record
    {
        Kind kind;
        Undo undo;
    };

    NvmModel &nvm;
    bool armed_ = false;
    std::vector<Record> queue;
    std::uint64_t staged_ = 0;
    std::uint64_t durable_ = 0;
    std::uint64_t truncated_ = 0;
    std::uint64_t barriers_ = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(Kind::NumKinds)>
        stagedKind{};
};

} // namespace nvo

#endif // NVO_MEM_PERSIST_DOMAIN_HH
