#include "mem/persist_domain.hh"

#include "common/log.hh"
#include "obs/trace.hh"

namespace nvo
{

void
PersistDomain::stage(Kind kind, Undo undo)
{
    if (!armed_)
        return;
    nvo_assert(undo, "persist: staged record needs an undo closure");
    ++staged_;
    ++stagedKind[static_cast<unsigned>(kind)];
    queue.push_back({kind, std::move(undo)});
}

void
PersistDomain::barrier()
{
    if (!armed_)
        return;
    NVO_TRACE_NOW(Fault, PersistBarrier, obs::trackNvm, queue.size(),
                  0);
    ++barriers_;
    durable_ += queue.size();
    queue.clear();
}

void
PersistDomain::truncateToDurable()
{
    NVO_TRACE_NOW(Fault, PersistTruncate, obs::trackNvm, queue.size(),
                  0);
    truncated_ += queue.size();
    // Newest first: each undo then sees the state exactly as it was
    // just after its own mutation ran.
    while (!queue.empty()) {
        queue.back().undo();
        queue.pop_back();
    }
}

} // namespace nvo
