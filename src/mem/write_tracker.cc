#include "mem/write_tracker.hh"

namespace nvo
{

void
WriteTracker::record(Addr line_addr, SeqNo seq, EpochWide epoch,
                     std::uint64_t digest)
{
    history[line_addr].push_back(Entry{seq, epoch, digest});
    ++storeCount;
}

std::optional<std::uint64_t>
WriteTracker::expectedDigest(Addr line_addr, EpochWide er) const
{
    auto entry = expectedEntry(line_addr, er);
    if (!entry)
        return std::nullopt;
    return entry->digest;
}

std::optional<WriteTracker::Entry>
WriteTracker::expectedEntry(Addr line_addr, EpochWide er) const
{
    auto it = history.find(line_addr);
    if (it == history.end())
        return std::nullopt;
    // Entries are appended in per-line commit order; epochs are
    // non-decreasing, so the last entry with epoch <= er is the
    // expected recovered content.
    const auto &entries = it->second;
    for (auto rit = entries.rbegin(); rit != entries.rend(); ++rit) {
        if (rit->epoch <= er)
            return *rit;
    }
    return std::nullopt;
}

bool
WriteTracker::epochsMonotonic() const
{
    for (const auto &kv : history) {
        EpochWide prev = 0;
        for (const auto &entry : kv.second) {
            if (entry.epoch < prev)
                return false;
            prev = entry.epoch;
        }
    }
    return true;
}

std::vector<Addr>
WriteTracker::trackedLines() const
{
    std::vector<Addr> out;
    out.reserve(history.size());
    for (const auto &kv : history)
        out.push_back(kv.first);
    return out;
}

} // namespace nvo
