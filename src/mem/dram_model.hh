/**
 * @file
 * Timing model for working-copy DRAM (Table II: DDR3-1333, 4 memory
 * channels). Far simpler than the NVM model: per-channel occupancy
 * plus a fixed access latency; DRAM bandwidth is never the bottleneck
 * in the paper's experiments.
 */

#ifndef NVO_MEM_DRAM_MODEL_HH
#define NVO_MEM_DRAM_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace nvo
{

class DramModel
{
  public:
    struct Params
    {
        unsigned channels = 4;
        Cycle accessLatency = 150;          ///< ~50 ns @ 3 GHz
        Cycle occupancyPer64B = 18;         ///< ~10.6 GB/s per channel
    };

    DramModel(const Params &params, RunStats *run_stats);

    /** Latency of a read of @p bytes at @p addr issued at @p now. */
    Cycle read(Addr addr, std::uint32_t bytes, Cycle now);

    /** Latency of a write (write backs are posted; latency rarely
     *  matters, but channel occupancy is still consumed). */
    Cycle write(Addr addr, std::uint32_t bytes, Cycle now);

  private:
    unsigned channelOf(Addr addr) const;
    Cycle occupy(Addr addr, std::uint32_t bytes, Cycle now);

    Params p;
    RunStats *stats;
    std::vector<Cycle> chanFree;
};

} // namespace nvo

#endif // NVO_MEM_DRAM_MODEL_HH
