/**
 * @file
 * Timing model for the NVDIMM subsystem (Table II: 16 banks per DIMM
 * at 133 ns write latency, behind 4 memory controllers).
 *
 * Two concerns are modelled separately:
 *
 *  - *Durability latency*: each write occupies an address-interleaved
 *    bank; `Issue::completion` is when the write is durable.
 *    Synchronous issuers (persist barriers) wait for it.
 *  - *Bandwidth back-pressure*: all writes drain through a shared
 *    write-back DRAM buffer in front of the device (the paper's
 *    methodology, Sec. VI-B). Device work accumulates in `busyUntil`;
 *    an issuer stalls only when the backlog exceeds the buffer
 *    window, i.e., under *sustained* oversubscription — which is what
 *    slows PiCL-L2 and the ART runs, while ordinary bursts are
 *    absorbed (Fig. 17).
 */

#ifndef NVO_MEM_NVM_MODEL_HH
#define NVO_MEM_NVM_MODEL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace nvo
{

class PersistDomain;

class NvmModel
{
  public:
    struct Params
    {
        /** Total banks across all NVDIMM controllers (Table II:
         *  16 banks per DIMM x 4 memory controllers). */
        unsigned banks = 64;
        /** Bank occupancy per 64 B write (cycles @ 3 GHz; 133 ns). */
        Cycle writeOccupancy = 400;
        /** Additional device read latency (cycles). */
        Cycle readLatency = 510;   // ~170 ns
        /** Write-back DRAM buffer in front of the device. */
        std::uint64_t bufferBytes = 32ull * 1024 * 1024;
        /** Endurance model: count per-region write traffic so wear
         *  skew (max/mean region writes) is observable. Off by
         *  default — the counters are the only effect, but keeping
         *  the flag off leaves write() at one extra branch. */
        bool wearEnabled = false;
        /** Wear-accounting region size in bytes. */
        std::uint64_t wearRegionBytes = 4096;
    };

    NvmModel(const Params &params, RunStats *run_stats);
    ~NvmModel();

    struct Issue
    {
        Cycle stall;        ///< back-pressure wait to enqueue
        Cycle completion;   ///< cycle at which the write is durable
    };

    /**
     * Issue a write of @p bytes starting at @p addr at time @p now.
     * Background issuers ignore `completion`; synchronous issuers
     * (persist barriers) wait for it. `stall` is nonzero only when
     * the drain backlog exceeds the buffer window.
     */
    Issue write(Addr addr, std::uint32_t bytes, Cycle now,
                NvmWriteKind kind);

    /** Read latency for @p bytes at @p addr issued at @p now. */
    Cycle read(Addr addr, std::uint32_t bytes, Cycle now);

    /** Cycle at which all issued writes are durable. */
    Cycle drainCompletion() const;

    /** Aggregate write bandwidth in bytes per cycle. */
    double bytesPerCycle() const;

    std::uint64_t totalWriteBytes() const { return writeBytes; }
    std::uint64_t totalReadBytes() const { return readBytes; }
    std::uint64_t totalStallCycles() const { return stallCycles; }

    /**
     * Export wear-leveling statistics into `stats.extra` as
     * `nvm_wear_*` keys (region count, max and mean line writes per
     * region, and the max/mean skew ratio x1000). No-op when the
     * wear model is off, so existing stats output is byte-unchanged.
     */
    void exportWear(RunStats &run_stats) const;

    /** Touched wear regions (tests). */
    std::size_t wearRegions() const { return wear_.size(); }

    /**
     * The persist boundary: durable structures stage undo records and
     * fence through this domain (see mem/persist_domain.hh).
     */
    PersistDomain &persist();
    const PersistDomain &persist() const { return *persist_; }

  private:
    unsigned bankOf(Addr addr) const;

    Params p;
    RunStats *stats;
    std::vector<Cycle> bankFree;
    /** Aggregate device-drain clock (bandwidth model). */
    Cycle busyUntil = 0;
    /** Monotonic device-side view of time (max over issuers). */
    Cycle deviceNow = 0;
    /** Backlog the buffer can hold, expressed in drain cycles. */
    Cycle windowCycles;
    std::uint64_t writeBytes = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t stallCycles = 0;
    /** Per-region line-write counts (ordered so the export and any
     *  iteration stay deterministic). Keyed by addr/wearRegionBytes. */
    std::map<std::uint64_t, std::uint64_t> wear_;
    std::unique_ptr<PersistDomain> persist_;
};

} // namespace nvo

#endif // NVO_MEM_NVM_MODEL_HH
