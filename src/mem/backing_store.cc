#include "mem/backing_store.hh"

#include "common/log.hh"

namespace nvo
{

std::uint64_t
LineData::digest() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (auto b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

BackingStore::Page *
BackingStore::findPage(Addr page_addr) const
{
    auto it = pages.find(page_addr);
    return it == pages.end() ? nullptr : it->second.get();
}

BackingStore::Page &
BackingStore::getPage(Addr page_addr)
{
    auto &slot = pages[page_addr];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

void
BackingStore::readLine(Addr line_addr, LineData &out) const
{
    nvo_assert(lineAlign(line_addr) == line_addr);
    const Page *page = findPage(pageAlign(line_addr));
    if (!page) {
        out.bytes.fill(0);
        return;
    }
    unsigned off = static_cast<unsigned>(line_addr & (pageBytes - 1));
    std::memcpy(out.bytes.data(), page->bytes.data() + off, lineBytes);
}

void
BackingStore::writeLine(Addr line_addr, const LineData &in)
{
    nvo_assert(lineAlign(line_addr) == line_addr);
    Page &page = getPage(pageAlign(line_addr));
    unsigned off = static_cast<unsigned>(line_addr & (pageBytes - 1));
    std::memcpy(page.bytes.data() + off, in.bytes.data(), lineBytes);
}

void
BackingStore::applyPatch(Addr addr, const void *data, unsigned size)
{
    nvo_assert(size > 0 && size <= lineBytes);
    nvo_assert(lineAlign(addr) == lineAlign(addr + size - 1),
               "patch crosses a line boundary");
    Page &page = getPage(pageAlign(addr));
    unsigned off = static_cast<unsigned>(addr & (pageBytes - 1));
    std::memcpy(page.bytes.data() + off, data, size);
}

void
BackingStore::setOidGranularity(unsigned lines_per_tag)
{
    nvo_assert(isPow2(lines_per_tag) &&
               lines_per_tag <= linesPerPage);
    nvo_assert(pages.empty(),
               "set the OID granularity before any writes");
    oidGran = lines_per_tag;
}

EpochWide
BackingStore::lineOid(Addr line_addr) const
{
    const Page *page = findPage(pageAlign(line_addr));
    if (!page)
        return 0;
    // The tag lives in the super block's first line slot.
    unsigned li = lineInPage(line_addr) & ~(oidGran - 1);
    return page->meta[li].oid;
}

SeqNo
BackingStore::lineSeq(Addr line_addr) const
{
    const Page *page = findPage(pageAlign(line_addr));
    return page ? page->meta[lineInPage(line_addr)].seq : 0;
}

void
BackingStore::setLineMeta(Addr line_addr, EpochWide oid, SeqNo seq)
{
    Page &page = getPage(pageAlign(line_addr));
    unsigned li = lineInPage(line_addr);
    page.meta[li].seq = seq;
    // Shared super-block tag: only moved forward (Sec. V-F).
    unsigned tag = li & ~(oidGran - 1);
    if (oid > page.meta[tag].oid || oidGran == 1)
        page.meta[tag].oid = oid;
}

std::vector<Addr>
BackingStore::pageAddrs() const
{
    std::vector<Addr> out;
    out.reserve(pages.size());
    for (const auto &kv : pages)
        out.push_back(kv.first);
    return out;
}

void
BackingStore::clear()
{
    pages.clear();
}

} // namespace nvo
