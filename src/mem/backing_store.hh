/**
 * @file
 * Byte-accurate sparse main-memory image.
 *
 * Holds the *working copy* of every simulated physical page, plus the
 * per-line metadata the paper keeps alongside DRAM data (Sec. IV-A4):
 * the 16-bit OID of the epoch that last wrote the line (stored in ECC
 * bits on real hardware) and, as a simulation aid, a monotonic store
 * sequence number used by verification.
 */

#ifndef NVO_MEM_BACKING_STORE_HH
#define NVO_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bitutil.hh"
#include "common/types.hh"

namespace nvo
{

/** Content of one cache line. */
struct LineData
{
    std::array<std::uint8_t, lineBytes> bytes{};

    bool operator==(const LineData &other) const
    {
        return bytes == other.bytes;
    }

    /** FNV-1a digest of the content, used by verification. */
    std::uint64_t digest() const;
};

class BackingStore
{
  public:
    BackingStore() = default;

    /**
     * OID tracking granularity in lines (power of two, default 1).
     * With n > 1, one OID tag covers a super block of n lines and is
     * only moved forward (paper Sec. V-F: lowers the DRAM tagging
     * overhead from 3.2% to <0.8% at n=4 at the cost of conservative
     * — and therefore still correct — epoch observations).
     */
    void setOidGranularity(unsigned lines_per_tag);
    unsigned oidGranularity() const { return oidGran; }

    /** Read one line; untouched lines read as zero. */
    void readLine(Addr line_addr, LineData &out) const;

    /** Overwrite one full line. */
    void writeLine(Addr line_addr, const LineData &in);

    /**
     * Apply a partial store of @p size bytes at byte address @p addr.
     * The store must not cross a line boundary.
     */
    void applyPatch(Addr addr, const void *data, unsigned size);

    /** Per-line OID tag (epoch of last write), as kept in DRAM ECC. */
    EpochWide lineOid(Addr line_addr) const;
    /** Seqno of the last committed store to the line (verification). */
    SeqNo lineSeq(Addr line_addr) const;
    void setLineMeta(Addr line_addr, EpochWide oid, SeqNo seq);

    /** Number of materialized pages (footprint check). */
    std::size_t numPages() const { return pages.size(); }

    /** Addresses of all materialized pages (recovery comparison). */
    std::vector<Addr> pageAddrs() const;

    /** Drop all content (simulated power loss of DRAM). */
    void clear();

  private:
    struct LineMeta
    {
        EpochWide oid = 0;
        SeqNo seq = 0;
    };

    struct Page
    {
        std::array<std::uint8_t, pageBytes> bytes{};
        std::array<LineMeta, linesPerPage> meta{};
    };

    Page *findPage(Addr page_addr) const;
    Page &getPage(Addr page_addr);

    unsigned oidGran = 1;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace nvo

#endif // NVO_MEM_BACKING_STORE_HH
