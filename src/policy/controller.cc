#include "policy/controller.hh"

#include <algorithm>

namespace nvo
{
namespace policy
{

std::int64_t
PidController::step(std::int64_t measured)
{
    std::int64_t err = p.setpoint - measured;
    integ_ = std::clamp(integ_ + err, p.integMin, p.integMax);
    std::int64_t out = (p.kpNum * err + p.kiNum * integ_) / kGainDen;
    out = std::clamp(out, p.outMin, p.outMax);
    lastErr_ = err;
    lastOut_ = out;
    return out;
}

bool
HysteresisController::step(std::int64_t measured)
{
    bool next = state_;
    if (!state_ && measured >= p.hi)
        next = true;
    else if (state_ && measured <= p.lo)
        next = false;
    if (next != state_)
        ++transitions_;
    state_ = next;
    return state_;
}

} // namespace policy
} // namespace nvo
