#include "policy/actuator.hh"

#include <algorithm>

#include "nvoverlay/nvoverlay_scheme.hh"
#include "obs/trace.hh"

namespace nvo
{
namespace policy
{

std::uint64_t
Actuator::setEpochLength(Cycle now, std::uint64_t stores,
                         std::uint64_t min_stores,
                         std::uint64_t max_stores)
{
    std::uint64_t clamped =
        std::clamp(stores, min_stores, max_stores);
    if (clamped == scheme_.storesPerEpochVdValue())
        return clamped;
    scheme_.setStoresPerEpochVd(clamped);
    ++epochSets_;
    NVO_TRACE(Policy, PolicyActuate, obs::trackSim, now,
              static_cast<std::uint64_t>(Knob::EpochLength), clamped);
    return clamped;
}

void
Actuator::setWalkerLinesPerTick(Cycle now, unsigned lines)
{
    if (scheme_.numVds() == 0 ||
        scheme_.walker(0).linesPerTick() == lines)
        return;
    for (unsigned vd = 0; vd < scheme_.numVds(); ++vd)
        scheme_.walker(vd).setLinesPerTick(lines);
    ++walkerSets_;
    NVO_TRACE(Policy, PolicyActuate, obs::trackSim, now,
              static_cast<std::uint64_t>(Knob::WalkerLinesPerTick),
              lines);
}

void
Actuator::triggerCompaction(Cycle now)
{
    scheme_.backend().compact(now);
    ++compactions_;
    NVO_TRACE(Policy, PolicyActuate, obs::trackSim, now,
              static_cast<std::uint64_t>(Knob::Compaction),
              compactions_);
}

void
Actuator::setTenantRate(Cycle now, tenant::Asid asid,
                        std::uint64_t bytes_per_kcycle)
{
    tenant::TenantManager *tm = scheme_.tenantManager();
    if (!tm)
        return;
    tm->setQosRate(asid, bytes_per_kcycle);
    ++tenantSets_;
    NVO_TRACE(Policy, PolicyActuate, obs::trackSim, now,
              static_cast<std::uint64_t>(Knob::TenantQosRate),
              (static_cast<std::uint64_t>(asid) << 48) |
                  (bytes_per_kcycle & 0xffffffffffffull));
}

} // namespace policy
} // namespace nvo
