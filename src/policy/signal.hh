/**
 * @file
 * SignalBus: the policy engine's single window onto the running
 * simulation.
 *
 * At every epoch boundary the bus samples one Frame of cumulative
 * counters (NVM write bytes, pool occupancy, OMC buffer occupancy,
 * merge backlog, per-ASID byte/stall tallies) from the scheme,
 * backend, and RunStats, then derives integer-valued Signals by
 * differencing against the previous frame. Controllers consume only
 * Signals — never wall-clock time, host state, or floating point — so
 * a run's decision sequence is a pure function of the simulated
 * execution and stays byte-identical across `par.shards` settings
 * (frames are sampled on the coordinator after the quantum barrier,
 * where the shard engine's state is bit-identical to the sequential
 * oracle; see docs/POLICY.md).
 */

#ifndef NVO_POLICY_SIGNAL_HH
#define NVO_POLICY_SIGNAL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "tenant/asid.hh"

namespace nvo
{

class NVOverlayScheme;
struct RunStats;

namespace policy
{

/** One sample of cumulative run state at an epoch boundary. */
struct Frame
{
    bool valid = false;
    std::uint64_t epoch = 0;
    Cycle cycle = 0;
    std::uint64_t nvmWriteBytes = 0;   ///< all kinds, cumulative
    std::uint64_t stores = 0;          ///< cumulative store count
    std::uint64_t poolPagesInUse = 0;
    std::uint64_t poolPagesTotal = 0;
    std::uint64_t bufferOccupancy = 0;
    std::uint64_t mergeBacklog = 0;    ///< globalEpoch - recEpoch
    std::uint64_t tenantStallCycles = 0;
    /** Cumulative per-ASID insert bytes, ascending-ASID order. */
    std::vector<std::pair<tenant::Asid, std::uint64_t>> tenantBytes;
};

/** Derived per-interval signals (integer arithmetic only). */
struct Signals
{
    /** False on the first boundary: no previous frame to diff. */
    bool valid = false;
    /** NVM write bandwidth over the interval, bytes per 1024 cycles
     *  (the TenantManager QoS unit). */
    std::int64_t bwBytesPerKCycle = 0;
    /** Pool occupancy, in 1/1000 of allocated pages. */
    std::int64_t occPermille = 0;
    /** Occupancy change since the previous boundary, permille. */
    std::int64_t occSlopePermille = 0;
    std::int64_t bufferOccupancy = 0;
    std::int64_t mergeBacklog = 0;
    /** Tenant throttle stall cycles over the interval. */
    std::int64_t stallCycles = 0;
    std::uint64_t deltaBytes = 0;
    std::uint64_t deltaCycles = 0;
    std::uint64_t deltaStores = 0;
    /** Per-ASID insert bytes over the interval (ascending ASID). */
    std::vector<std::pair<tenant::Asid, std::uint64_t>>
        tenantDeltaBytes;
};

class SignalBus
{
  public:
    SignalBus(NVOverlayScheme &scheme, const RunStats &stats)
        : scheme_(scheme), stats_(stats)
    {
    }

    /**
     * Sample the current frame and derive signals against the
     * previous one. The first call primes the history and returns
     * `valid == false`.
     */
    Signals sample(Cycle now);

    const Frame &lastFrame() const { return prev_; }

  private:
    Frame capture(Cycle now) const;

    NVOverlayScheme &scheme_;
    const RunStats &stats_;
    Frame prev_;
};

} // namespace policy
} // namespace nvo

#endif // NVO_POLICY_SIGNAL_HH
