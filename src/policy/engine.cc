#include "policy/engine.hh"

#include <algorithm>

#include "common/config.hh"
#include "common/stats.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "tenant/tenant.hh"

namespace nvo
{
namespace policy
{

const char *
toString(Ctrl c)
{
    switch (c) {
      case Ctrl::Epoch: return "epoch";
      case Ctrl::Walker: return "walker";
      case Ctrl::Compact: return "compact";
      case Ctrl::Tenant: return "tenant";
      default: return "?";
    }
}

Params
Params::fromConfig(const Config &cfg)
{
    Params p;
    p.bwBudget = cfg.getU64("nvm.write_bw_budget", 0);
    p.epochKp = static_cast<std::int64_t>(
        cfg.getU64("policy.epoch.kp", 8));
    p.epochKi = static_cast<std::int64_t>(
        cfg.getU64("policy.epoch.ki", 1));
    p.epochMin = cfg.getU64("policy.epoch.min", 16);
    p.epochMax = cfg.getU64("policy.epoch.max", 1024);
    p.walkerHi = static_cast<std::int64_t>(
        cfg.getU64("policy.walker.hi", 0));
    p.walkerLo = static_cast<std::int64_t>(
        cfg.getU64("policy.walker.lo", 1));
    p.walkerBoost = static_cast<unsigned>(
        cfg.getU64("policy.walker.boost_lines", 256));
    p.compactHi = static_cast<std::int64_t>(
        cfg.getU64("policy.compact.hi", 0));
    p.compactLo = static_cast<std::int64_t>(
        cfg.getU64("policy.compact.lo", 0));
    p.compactSlopeW = static_cast<std::int64_t>(
        cfg.getU64("policy.compact.slope_w", 4));
    p.tenantPace = cfg.getBool("policy.tenant.pace", false);
    p.tenantMinRate = cfg.getU64("policy.tenant.min_rate", 4096);
    return p;
}

namespace
{

PidParams
epochPidParams(const Params &p)
{
    PidParams pp;
    pp.setpoint = static_cast<std::int64_t>(p.bwBudget);
    pp.kpNum = p.epochKp;
    pp.kiNum = p.epochKi;
    // The output is a *relative* adjustment in 1/1024ths of the
    // current length (the plant's bandwidth response is roughly
    // exponential in epoch length, so a multiplicative step keeps
    // the loop gain flat across the operating range). One step never
    // moves the length by more than half, and the integrator is
    // bounded so a saturated stretch (e.g., a phase whose demand
    // cannot reach the budget) unwinds in a bounded number of epochs.
    pp.outMax = 512;
    pp.outMin = -pp.outMax;
    pp.integMax = p.epochKi > 0
                      ? (pp.outMax * kGainDen) / p.epochKi
                      : INT64_MAX;
    pp.integMin = -pp.integMax;
    return pp;
}

} // namespace

PolicyEngine::PolicyEngine(NVOverlayScheme &scheme,
                           const RunStats &stats, const Params &params)
    : scheme_(scheme), p_(params), bus_(scheme, stats), act_(scheme),
      epochPid_(epochPidParams(params)),
      walkerHys_({params.walkerHi, params.walkerLo, false}),
      compactHys_({params.compactHi, params.compactLo, false}),
      tenantHys_({static_cast<std::int64_t>(params.bwBudget),
                  static_cast<std::int64_t>(params.bwBudget -
                                            params.bwBudget / 8),
                  false})
{
    walkerNormal_ =
        scheme_.numVds() ? scheme_.walker(0).linesPerTick() : 0;
    g_[static_cast<std::size_t>(Ctrl::Epoch)].setpoint = p_.bwBudget;
    g_[static_cast<std::size_t>(Ctrl::Epoch)].output =
        scheme_.storesPerEpochVdValue();
    g_[static_cast<std::size_t>(Ctrl::Walker)].setpoint =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            p_.walkerHi, 0));
    g_[static_cast<std::size_t>(Ctrl::Walker)].output = walkerNormal_;
    g_[static_cast<std::size_t>(Ctrl::Compact)].setpoint =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            p_.compactHi, 0));
    g_[static_cast<std::size_t>(Ctrl::Tenant)].setpoint = p_.bwBudget;
    registerGauges();
}

void
PolicyEngine::registerGauges()
{
    auto &reg = obs::metricRegistry();
    struct Row
    {
        Ctrl c;
        bool enabled;
    };
    const Row rows[] = {
        {Ctrl::Epoch, p_.bwBudget > 0},
        {Ctrl::Walker, p_.walkerHi > 0},
        {Ctrl::Compact, p_.compactHi > 0},
        {Ctrl::Tenant, p_.tenantPace && p_.bwBudget > 0},
    };
    for (const Row &r : rows) {
        if (!r.enabled)
            continue;
        const std::string base =
            std::string("policy.") + toString(r.c);
        const GaugeSet *g = &g_[static_cast<std::size_t>(r.c)];
        reg.addGauge(base + ".setpoint",
                     [g] { return g->setpoint; });
        reg.addGauge(base + ".measured",
                     [g] { return g->measured; });
        reg.addGauge(base + ".output", [g] { return g->output; });
    }
}

void
PolicyEngine::onEpochBoundary(Cycle now)
{
    ++evals_;
    Signals s = bus_.sample(now);
    if (!s.valid)
        return;   // first boundary primes the frame history
    if (p_.bwBudget)
        stepEpochPacer(now, s);
    if (p_.walkerHi > 0)
        stepWalker(now, s);
    if (p_.compactHi > 0)
        stepCompact(now, s);
    if (p_.tenantPace && p_.bwBudget)
        stepTenantPacer(now, s);
}

void
PolicyEngine::stepEpochPacer(Cycle now, const Signals &s)
{
    // err = budget - measured. Over budget (err < 0) the output goes
    // negative and the subtraction below *lengthens* the epoch:
    // fewer advances per cycle means fewer context dumps, merges and
    // repeat walk write-backs, i.e., less metadata bandwidth. Under
    // budget the epoch shrinks, spending the headroom on snapshot
    // freshness.
    // Cycle-weighted EMA (window ~1M cycles): each boundary's sample
    // is weighted by the span it covers, so the filtered signal
    // tracks the time-mean bandwidth the budget is stated over —
    // boundary-equal weighting would overweight the dense short-epoch
    // samples and bias the loop.
    constexpr std::int64_t kEmaWindow = 1 << 20;
    if (bwEma_ < 0) {
        bwEma_ = s.bwBytesPerKCycle;
    } else {
        std::int64_t dc = std::min<std::int64_t>(
            static_cast<std::int64_t>(s.deltaCycles), kEmaWindow);
        bwEma_ += dc * (s.bwBytesPerKCycle - bwEma_) / kEmaWindow;
    }
    std::int64_t out = epochPid_.step(bwEma_);
    std::int64_t cur = static_cast<std::int64_t>(
        scheme_.storesPerEpochVdValue());
    // Multiplicative actuation: the step is out/1024 of the current
    // length, floored at one store so the loop cannot wedge at short
    // lengths where the integer product truncates to zero.
    std::int64_t delta = (out * cur) / 1024;
    if (delta == 0 && out != 0)
        delta = out > 0 ? 1 : -1;
    std::int64_t next = cur - delta;
    if (next < 0)
        next = 0;   // actuator clamps up to epochMin
    std::uint64_t applied = act_.setEpochLength(
        now, static_cast<std::uint64_t>(next), p_.epochMin,
        p_.epochMax);
    NVO_TRACE(Policy, PolicyDecision, obs::trackSim, now,
              static_cast<std::uint64_t>(Ctrl::Epoch), applied);
    GaugeSet &g = g_[static_cast<std::size_t>(Ctrl::Epoch)];
    g.measured =
        static_cast<std::uint64_t>(std::max<std::int64_t>(bwEma_, 0));
    g.output = applied;
}

void
PolicyEngine::stepWalker(Cycle now, const Signals &s)
{
    bool hot = walkerHys_.step(s.mergeBacklog);
    unsigned lines = hot ? p_.walkerBoost : walkerNormal_;
    act_.setWalkerLinesPerTick(now, lines);
    NVO_TRACE(Policy, PolicyDecision, obs::trackSim, now,
              static_cast<std::uint64_t>(Ctrl::Walker), lines);
    GaugeSet &g = g_[static_cast<std::size_t>(Ctrl::Walker)];
    g.measured = static_cast<std::uint64_t>(
        std::max<std::int64_t>(s.mergeBacklog, 0));
    g.output = lines;
}

void
PolicyEngine::stepCompact(Cycle now, const Signals &s)
{
    // Projected occupancy: where the pool is heading, not just where
    // it is — a fast-rising pool triggers compaction before the
    // threshold itself is crossed.
    std::int64_t projected =
        s.occPermille + p_.compactSlopeW * s.occSlopePermille;
    bool hot = compactHys_.step(projected);
    if (hot)
        act_.triggerCompaction(now);
    NVO_TRACE(Policy, PolicyDecision, obs::trackSim, now,
              static_cast<std::uint64_t>(Ctrl::Compact),
              hot ? 1u : 0u);
    GaugeSet &g = g_[static_cast<std::size_t>(Ctrl::Compact)];
    g.measured = static_cast<std::uint64_t>(
        std::max<std::int64_t>(projected, 0));
    g.output = hot ? 1 : 0;
}

void
PolicyEngine::stepTenantPacer(Cycle now, const Signals &s)
{
    tenant::TenantManager *tm = scheme_.tenantManager();
    if (!tm)
        return;
    bool over = tenantHys_.step(s.bwBytesPerKCycle);
    if (over) {
        std::uint64_t total = 0;
        for (const auto &kv : s.tenantDeltaBytes)
            total += kv.second;
        if (total) {
            // Demand-proportional split of the budget (JASS-style
            // pacing): each tenant keeps its share of the recent
            // traffic mix, floored so a quiet tenant is never
            // starved outright.
            for (const auto &kv : s.tenantDeltaBytes) {
                std::uint64_t rate =
                    p_.bwBudget * kv.second / total;
                act_.setTenantRate(
                    now, kv.first,
                    std::max(rate, p_.tenantMinRate));
            }
            tenantPaced_ = true;
        }
    } else if (tenantPaced_) {
        tm->forEachTenant(
            [this, now](tenant::Asid asid,
                        const tenant::TenantManager::PerTenant &) {
                act_.setTenantRate(now, asid, 0);
            });
        tenantPaced_ = false;
    }
    NVO_TRACE(Policy, PolicyDecision, obs::trackSim, now,
              static_cast<std::uint64_t>(Ctrl::Tenant),
              tenantPaced_ ? 1u : 0u);
    GaugeSet &g = g_[static_cast<std::size_t>(Ctrl::Tenant)];
    g.measured = static_cast<std::uint64_t>(
        std::max<std::int64_t>(s.bwBytesPerKCycle, 0));
    g.output = tenantPaced_ ? 1 : 0;
}

void
PolicyEngine::exportStats(RunStats &stats) const
{
    stats.extra["policy_evals"] = evals_;
    stats.extra["policy_epoch_sets"] = act_.epochSets();
    stats.extra["policy_epoch_len"] =
        scheme_.storesPerEpochVdValue();
    stats.extra["policy_walker_sets"] = act_.walkerSets();
    stats.extra["policy_compactions"] = act_.compactions();
    stats.extra["policy_tenant_sets"] = act_.tenantSets();
}

void
PolicyEngine::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.kv("evals", evals_);
    w.key("controllers").beginObject();
    struct Row
    {
        Ctrl c;
        bool enabled;
        std::uint64_t actuations;
    };
    const Row rows[] = {
        {Ctrl::Epoch, p_.bwBudget > 0, act_.epochSets()},
        {Ctrl::Walker, p_.walkerHi > 0, act_.walkerSets()},
        {Ctrl::Compact, p_.compactHi > 0, act_.compactions()},
        {Ctrl::Tenant, p_.tenantPace && p_.bwBudget > 0,
         act_.tenantSets()},
    };
    for (const Row &r : rows) {
        const GaugeSet &g = g_[static_cast<std::size_t>(r.c)];
        w.key(toString(r.c)).beginObject();
        w.kv("enabled", r.enabled);
        w.kv("setpoint", g.setpoint);
        w.kv("measured", g.measured);
        w.kv("output", g.output);
        w.kv("actuations", r.actuations);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace policy
} // namespace nvo
