#include "policy/signal.hh"

#include "common/stats.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/omc.hh"
#include "tenant/tenant.hh"

namespace nvo
{
namespace policy
{

Frame
SignalBus::capture(Cycle now) const
{
    Frame f;
    f.valid = true;
    f.epoch = scheme_.globalEpoch();
    f.cycle = now;
    f.nvmWriteBytes = stats_.totalNvmWriteBytes();
    f.stores = stats_.stores;
    const MnmBackend &be = scheme_.backend();
    f.poolPagesInUse = be.poolPagesInUseTotal();
    f.poolPagesTotal = be.poolPagesTotal();
    f.bufferOccupancy = be.bufferOccupancyTotal();
    std::uint64_t rec = be.recEpoch();
    f.mergeBacklog = f.epoch > rec ? f.epoch - rec : 0;
    if (const tenant::TenantManager *tm = scheme_.tenantManager()) {
        tm->forEachTenant([&f](tenant::Asid asid,
                               const tenant::TenantManager::PerTenant
                                   &t) {
            f.tenantBytes.emplace_back(asid, t.dataBytes);
            f.tenantStallCycles += t.throttleStallCycles;
        });
    }
    return f;
}

Signals
SignalBus::sample(Cycle now)
{
    Frame cur = capture(now);
    Signals s;
    if (prev_.valid && cur.cycle > prev_.cycle) {
        s.valid = true;
        s.deltaCycles = cur.cycle - prev_.cycle;
        s.deltaBytes = cur.nvmWriteBytes - prev_.nvmWriteBytes;
        s.deltaStores = cur.stores - prev_.stores;
        s.bwBytesPerKCycle = static_cast<std::int64_t>(
            s.deltaBytes * 1024 / s.deltaCycles);
        std::int64_t occ =
            cur.poolPagesTotal
                ? static_cast<std::int64_t>(cur.poolPagesInUse *
                                            1000 /
                                            cur.poolPagesTotal)
                : 0;
        std::int64_t prevOcc =
            prev_.poolPagesTotal
                ? static_cast<std::int64_t>(prev_.poolPagesInUse *
                                            1000 /
                                            prev_.poolPagesTotal)
                : 0;
        s.occPermille = occ;
        s.occSlopePermille = occ - prevOcc;
        s.bufferOccupancy =
            static_cast<std::int64_t>(cur.bufferOccupancy);
        s.mergeBacklog = static_cast<std::int64_t>(cur.mergeBacklog);
        s.stallCycles = static_cast<std::int64_t>(
            cur.tenantStallCycles - prev_.tenantStallCycles);
        // Per-tenant deltas: a tenant absent from the previous frame
        // contributes its full tally (it appeared this interval).
        std::size_t pi = 0;
        for (const auto &kv : cur.tenantBytes) {
            std::uint64_t before = 0;
            while (pi < prev_.tenantBytes.size() &&
                   prev_.tenantBytes[pi].first < kv.first)
                ++pi;
            if (pi < prev_.tenantBytes.size() &&
                prev_.tenantBytes[pi].first == kv.first)
                before = prev_.tenantBytes[pi].second;
            s.tenantDeltaBytes.emplace_back(kv.first,
                                            kv.second - before);
        }
    }
    prev_ = std::move(cur);
    return s;
}

} // namespace policy
} // namespace nvo
