/**
 * @file
 * PolicyEngine: closed-loop adaptive control of the snapshotting
 * protocol (docs/POLICY.md).
 *
 * Evaluated by the harness at every epoch boundary, the engine runs
 * up to four controllers over the SignalBus's derived signals:
 *
 *  - epoch pacer: a PI controller stretches/shrinks the per-VD epoch
 *    length to hold NVM write bandwidth at `nvm.write_bw_budget`
 *    (longer epochs -> fewer context dumps, merges and re-walks of
 *    the same line -> less metadata bandwidth, and vice versa);
 *  - walker governor: hysteresis on merge backlog (globalEpoch -
 *    recEpoch) boosts tag-walker drain rate when snapshots lag and
 *    restores the configured rate once the backlog is burned down;
 *  - compaction governor: hysteresis on pool occupancy plus a
 *    weighted occupancy slope triggers backend compaction passes
 *    while the projected occupancy stays above the high threshold;
 *  - tenant pacer (JASS-style): when aggregate bandwidth exceeds the
 *    budget, each tenant's QoS rate is overridden to its
 *    demand-proportional share of the budget; overrides clear once
 *    the aggregate falls back through the release threshold.
 *
 * Every decision is a pure function of sampled simulated state, so
 * runs are byte-identical across `par.shards` settings; with
 * `policy.enabled` unset nothing here is constructed and every
 * existing output stays byte-unchanged.
 */

#ifndef NVO_POLICY_ENGINE_HH
#define NVO_POLICY_ENGINE_HH

#include <cstdint>

#include "common/types.hh"
#include "policy/actuator.hh"
#include "policy/controller.hh"
#include "policy/signal.hh"

namespace nvo
{

class Config;
class NVOverlayScheme;
struct RunStats;

namespace obs
{
class JsonWriter;
} // namespace obs

namespace policy
{

/** Controller identifiers (`policy_decision` trace a0, gauge names). */
enum class Ctrl : std::uint64_t
{
    Epoch = 0,
    Walker,
    Compact,
    Tenant,
    NumCtrls
};

const char *toString(Ctrl c);

struct Params
{
    // --- Epoch pacer (off unless bwBudget > 0) ---
    /** NVM write-bandwidth budget, bytes per 1024 cycles. */
    std::uint64_t bwBudget = 0;
    /** PI gains over kGainDen; output is in stores-per-epoch. The
     *  defaults assume the plant slope of the metadata-dominated
     *  regime (docs/POLICY.md), roughly -3.5 B/Kcycle per unit of
     *  per-VD epoch length on the index workloads. */
    std::int64_t epochKp = 8;
    std::int64_t epochKi = 1;
    /** Epoch-length clamp, stores per VD. The cap confines the
     *  controller to the short-epoch regime where bandwidth falls
     *  monotonically as the epoch stretches; past ~1k stores/VD the
     *  response flattens and eventually inverts (stall amortization
     *  outweighs the metadata savings). */
    std::uint64_t epochMin = 16;
    std::uint64_t epochMax = 1024;
    // --- Walker governor (off unless walkerHi > 0) ---
    /** Merge-backlog engage/release thresholds, in epochs. */
    std::int64_t walkerHi = 0;
    std::int64_t walkerLo = 1;
    /** Boosted drain rate, lines per tick. */
    unsigned walkerBoost = 256;
    // --- Compaction governor (off unless compactHi > 0) ---
    /** Occupancy engage/release thresholds, permille of the pool. */
    std::int64_t compactHi = 0;
    std::int64_t compactLo = 0;
    /** Occupancy-slope weight in the projected-occupancy measure. */
    std::int64_t compactSlopeW = 4;
    // --- Tenant pacer (off unless tenantPace && bwBudget > 0) ---
    bool tenantPace = false;
    /** Floor for a paced tenant's rate, bytes per 1024 cycles. */
    std::uint64_t tenantMinRate = 4096;

    /** Read the policy.* keys (caller gates on policy.enabled). */
    static Params fromConfig(const Config &cfg);
};

class PolicyEngine
{
  public:
    PolicyEngine(NVOverlayScheme &scheme, const RunStats &stats,
                 const Params &params);

    /** One control step; called at every observed epoch boundary,
     *  after the series/exporter sampled the epoch as it ran. */
    void onEpochBoundary(Cycle now);

    /** Export audit counters into RunStats::extra (`policy_*`). */
    void exportStats(RunStats &stats) const;

    /** The `policy` section of the stats JSON (one object). */
    void writeJson(obs::JsonWriter &w) const;

    const Params &params() const { return p_; }
    std::uint64_t evals() const { return evals_; }
    const Actuator &actuator() const { return act_; }

  private:
    struct GaugeSet
    {
        std::uint64_t setpoint = 0;
        std::uint64_t measured = 0;
        std::uint64_t output = 0;
    };

    void stepEpochPacer(Cycle now, const Signals &s);
    void stepWalker(Cycle now, const Signals &s);
    void stepCompact(Cycle now, const Signals &s);
    void stepTenantPacer(Cycle now, const Signals &s);
    void registerGauges();

    NVOverlayScheme &scheme_;
    Params p_;
    SignalBus bus_;
    Actuator act_;
    PidController epochPid_;
    HysteresisController walkerHys_;
    HysteresisController compactHys_;
    HysteresisController tenantHys_;

    /** The configured walker rate, restored when the boost ends. */
    unsigned walkerNormal_ = 0;
    /** EMA-filtered bandwidth (B/Kcycle); -1 until primed. Short
     *  epochs make the per-boundary measurement extremely noisy
     *  (small cycle windows quantize hard), so the pacer controls the
     *  smoothed signal. */
    std::int64_t bwEma_ = -1;
    bool tenantPaced_ = false;
    std::uint64_t evals_ = 0;
    GaugeSet g_[static_cast<std::size_t>(Ctrl::NumCtrls)];
};

} // namespace policy
} // namespace nvo

#endif // NVO_POLICY_ENGINE_HH
