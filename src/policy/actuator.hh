/**
 * @file
 * Actuator: the single audited layer through which the policy engine
 * touches the running system.
 *
 * Controllers never reach into the scheme directly — every knob
 * change funnels through one of these methods, which clamps the
 * value, counts the actuation, and emits a `policy_actuate` trace
 * event. That keeps the engine's side effects enumerable (the audit
 * counters are exported into `RunStats::extra`) and gives Chrome
 * traces a complete record of when and how the controllers steered
 * the run.
 */

#ifndef NVO_POLICY_ACTUATOR_HH
#define NVO_POLICY_ACTUATOR_HH

#include <cstdint>

#include "common/types.hh"
#include "tenant/asid.hh"

namespace nvo
{

class NVOverlayScheme;

namespace policy
{

/** Knob identifiers (`policy_actuate` trace a0). */
enum class Knob : std::uint64_t
{
    EpochLength = 0,
    WalkerLinesPerTick,
    Compaction,
    TenantQosRate,
};

class Actuator
{
  public:
    explicit Actuator(NVOverlayScheme &scheme) : scheme_(scheme) {}

    /** Set the per-VD epoch length, clamped to [min, max]. Returns
     *  the value actually applied. */
    std::uint64_t setEpochLength(Cycle now, std::uint64_t stores,
                                 std::uint64_t min_stores,
                                 std::uint64_t max_stores);

    /** Set every VD walker's drain rate (no-op when unchanged). */
    void setWalkerLinesPerTick(Cycle now, unsigned lines);

    /** Run one backend compaction pass. */
    void triggerCompaction(Cycle now);

    /** Pace one tenant (0 clears the override). Requires a
     *  TenantManager; silently ignored otherwise. */
    void setTenantRate(Cycle now, tenant::Asid asid,
                       std::uint64_t bytes_per_kcycle);

    // --- Audit counters (exported via PolicyEngine::exportStats) ---
    std::uint64_t epochSets() const { return epochSets_; }
    std::uint64_t walkerSets() const { return walkerSets_; }
    std::uint64_t compactions() const { return compactions_; }
    std::uint64_t tenantSets() const { return tenantSets_; }

  private:
    NVOverlayScheme &scheme_;
    std::uint64_t epochSets_ = 0;
    std::uint64_t walkerSets_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t tenantSets_ = 0;
};

} // namespace policy
} // namespace nvo

#endif // NVO_POLICY_ACTUATOR_HH
