/**
 * @file
 * Deterministic feedback controllers for the adaptive policy engine.
 *
 * Every controller is a pure function of its own state and the
 * measured input — no clocks, no floating point, no randomness — so a
 * controller stepped with the same sequence of measurements produces
 * the same sequence of outputs on any host and under any shard count.
 * Gains are expressed as integer numerators over a fixed power-of-two
 * denominator (`kGainDen`), which keeps the arithmetic exact and the
 * step responses hand-computable in unit tests (see
 * docs/POLICY.md for the tuning guide and the determinism argument).
 */

#ifndef NVO_POLICY_CONTROLLER_HH
#define NVO_POLICY_CONTROLLER_HH

#include <cstdint>

namespace nvo
{
namespace policy
{

/** Fixed denominator for PI gains: gain = num / kGainDen. */
constexpr std::int64_t kGainDen = 64;

struct PidParams
{
    /** Target value of the measured signal. */
    std::int64_t setpoint = 0;
    /** Proportional gain numerator (over kGainDen). */
    std::int64_t kpNum = 0;
    /** Integral gain numerator (over kGainDen). */
    std::int64_t kiNum = 0;
    /** Output clamp (applied after the gain arithmetic). */
    std::int64_t outMin = INT64_MIN;
    std::int64_t outMax = INT64_MAX;
    /** Anti-windup clamp on the error accumulator. */
    std::int64_t integMin = INT64_MIN;
    std::int64_t integMax = INT64_MAX;
};

/**
 * Discrete PI controller in pure 64-bit integer arithmetic:
 *
 *   err    = setpoint - measured
 *   integ  = clamp(integ + err, integMin, integMax)
 *   output = clamp((kpNum*err + kiNum*integ) / kGainDen,
 *                  outMin, outMax)
 *
 * The division truncates toward zero (C++ semantics), which the unit
 * oracles in tests/test_policy.cc reproduce exactly.
 */
class PidController
{
  public:
    explicit PidController(const PidParams &params) : p(params) {}

    std::int64_t step(std::int64_t measured);

    void
    reset()
    {
        integ_ = 0;
        lastErr_ = 0;
        lastOut_ = 0;
    }

    std::int64_t integrator() const { return integ_; }
    std::int64_t lastError() const { return lastErr_; }
    std::int64_t lastOutput() const { return lastOut_; }
    const PidParams &params() const { return p; }

    /** Retarget without losing the accumulated error history. */
    void setSetpoint(std::int64_t sp) { p.setpoint = sp; }

  private:
    PidParams p;
    std::int64_t integ_ = 0;
    std::int64_t lastErr_ = 0;
    std::int64_t lastOut_ = 0;
};

struct HysteresisParams
{
    /** Engage when measured >= hi. */
    std::int64_t hi = 0;
    /** Release when measured <= lo (lo < hi for a real band). */
    std::int64_t lo = 0;
    bool initial = false;
};

/**
 * Two-threshold hysteresis (Schmitt trigger): engaged when the
 * measured signal rises to `hi`, released when it falls back to `lo`.
 * The dead band between the thresholds prevents actuation flapping
 * when the signal hovers near a single threshold.
 */
class HysteresisController
{
  public:
    explicit HysteresisController(const HysteresisParams &params)
        : p(params), state_(params.initial)
    {
    }

    bool step(std::int64_t measured);

    bool engaged() const { return state_; }
    const HysteresisParams &params() const { return p; }

    void
    reset()
    {
        state_ = p.initial;
        transitions_ = 0;
    }

    /** Engage/release edges seen since construction or reset(). */
    std::uint64_t transitions() const { return transitions_; }

  private:
    HysteresisParams p;
    bool state_;
    std::uint64_t transitions_ = 0;
};

} // namespace policy
} // namespace nvo

#endif // NVO_POLICY_CONTROLLER_HH
