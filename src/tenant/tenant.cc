#include "tenant/tenant.hh"

#include <algorithm>
#include <string>

#include "common/config.hh"
#include "obs/registry.hh"

namespace nvo
{
namespace tenant
{

namespace
{
/** Cap one store's throttle stall so token debt cannot produce a
 *  cycle count that dwarfs the simulated run. */
constexpr Cycle maxStallPerStore = 1u << 20;
} // namespace

TenantManager::Params
TenantManager::paramsFrom(const Config &cfg)
{
    Params p;
    p.quotaLines = cfg.getU64("tenant.quota_lines", 0);
    p.softFraction = cfg.getF64("tenant.soft_fraction", 0.85);
    p.qosBytesPerKCycle =
        cfg.getU64("tenant.qos_bytes_per_kcycle", 0);
    p.qosBurstBytes = cfg.getU64("tenant.qos_burst_bytes", 64 * 1024);
    p.quotaPenaltyBytes =
        cfg.getU64("tenant.quota_penalty_bytes", 4096);
    return p;
}

TenantManager::TenantManager(const Params &params, RunStats &run_stats)
    : p(params), stats(run_stats)
{
}

TenantManager::PerTenant &
TenantManager::slot(Asid asid)
{
    auto [it, created] = tenants.try_emplace(asid);
    if (created) {
        it->second.tokens =
            static_cast<std::int64_t>(p.qosBurstBytes);
        it->second.hStall = obs::metricRegistry().addHist(
            "tenant.qos_stall_cycles.asid" + std::to_string(asid));
    }
    return it->second;
}

const TenantManager::PerTenant *
TenantManager::tenant(Asid asid) const
{
    auto it = tenants.find(asid);
    return it == tenants.end() ? nullptr : &it->second;
}

void
TenantManager::refill(PerTenant &t, Cycle now)
{
    if (now <= t.lastRefill) {
        t.lastRefill = std::max(t.lastRefill, now);
        return;
    }
    if (std::uint64_t rate = rateOf(t)) {
        Cycle delta = now - t.lastRefill;
        std::int64_t earned =
            static_cast<std::int64_t>(delta * rate / 1024);
        t.tokens = std::min<std::int64_t>(
            static_cast<std::int64_t>(p.qosBurstBytes),
            t.tokens + earned);
    }
    t.lastRefill = now;
}

void
TenantManager::onInsert(Asid asid, std::uint32_t bytes, Cycle now)
{
    if (asid == 0)
        return;   // untenanted traffic is unmanaged
    PerTenant &t = slot(asid);
    ++t.inserts;
    refill(t, now);
    if (rateOf(t))
        t.tokens -= bytes;
    if (p.quotaLines && linesOf) {
        std::uint64_t lines = linesOf(asid);
        t.peakLines = std::max(t.peakLines, lines);
        if (lines >= p.quotaLines) {
            // Over the hard cap: never drop the version (that would
            // punch a silent hole in the tenant's snapshot) — price
            // the tenant out with penalty debt instead.
            ++t.quotaRejections;
            stats.extra["tenant_quota_rejections"] += 1;
            t.tokens -=
                static_cast<std::int64_t>(p.quotaPenaltyBytes);
        } else if (static_cast<double>(lines) >=
                   p.softFraction *
                       static_cast<double>(p.quotaLines)) {
            ++t.softWarnings;
        }
    }
}

void
TenantManager::noteDataBytes(Asid asid, std::uint64_t bytes)
{
    if (asid == 0)
        return;
    slot(asid).dataBytes += bytes;
}

void
TenantManager::noteStore(Asid asid)
{
    if (asid == 0)
        return;
    ++slot(asid).storeLines;
}

Cycle
TenantManager::throttleStall(Asid asid, Cycle now)
{
    if (asid == 0)
        return 0;
    auto it = tenants.find(asid);
    if (it == tenants.end())
        return 0;
    PerTenant &t = it->second;
    refill(t, now);
    if (t.tokens >= 0)
        return 0;
    // Convert the debt to cycles at the refill rate (a nominal
    // 1 byte/cycle when QoS is off and the debt is pure quota
    // penalty); the stall itself repays the debt.
    std::uint64_t qos = rateOf(t);
    std::uint64_t rate = qos ? qos : 1024;
    Cycle stall = static_cast<Cycle>(
        (static_cast<std::uint64_t>(-t.tokens) * 1024 + rate - 1) /
        rate);
    stall = std::min(stall, maxStallPerStore);
    t.tokens = 0;
    t.lastRefill = now + stall;
    t.throttleStallCycles += stall;
    stats.extra["tenant_throttle_stalls"] += stall;
    NVO_METRIC(record(t.hStall, stall));
    return stall;
}

void
TenantManager::orderForCompaction(std::vector<Addr> &lines)
{
    std::map<Asid, std::vector<Addr>> groups;
    for (Addr a : lines)
        groups[asidOf(a)].push_back(a);
    ++compactCursor;
    if (groups.size() <= 1)
        return;
    struct Group
    {
        Asid asid;
        std::uint64_t occ;
    };
    std::vector<Group> order;
    order.reserve(groups.size());
    for (const auto &kv : groups)
        order.push_back(
            {kv.first, linesOf ? linesOf(kv.first) : 0});
    std::uint64_t rot = compactCursor % (maxAsid + 1u);
    std::stable_sort(
        order.begin(), order.end(),
        [rot](const Group &a, const Group &b) {
            if (a.occ != b.occ)
                return a.occ > b.occ;
            return (a.asid + (maxAsid + 1u) - rot) % (maxAsid + 1u) <
                   (b.asid + (maxAsid + 1u) - rot) % (maxAsid + 1u);
        });
    lines.clear();
    for (const Group &g : order)
        for (Addr a : groups[g.asid])
            lines.push_back(a);
}

void
TenantManager::setQosRate(Asid asid, std::uint64_t bytes_per_kcycle)
{
    if (asid == 0)
        return;
    PerTenant &t = slot(asid);
    if (t.qosRateOverride == bytes_per_kcycle)
        return;
    t.qosRateOverride = bytes_per_kcycle;
    ++t.paceChanges;
}

void
TenantManager::forEachTenant(
    const std::function<void(Asid, const PerTenant &)> &fn) const
{
    for (const auto &kv : tenants)
        fn(kv.first, kv.second);
}

void
TenantManager::exportStats()
{
    for (const auto &kv : tenants) {
        const std::string prefix =
            "tenant." + std::to_string(kv.first) + ".";
        const PerTenant &t = kv.second;
        stats.extra[prefix + "inserts"] = t.inserts;
        stats.extra[prefix + "data_bytes"] = t.dataBytes;
        stats.extra[prefix + "store_lines"] = t.storeLines;
        stats.extra[prefix + "throttle_stalls"] =
            t.throttleStallCycles;
        stats.extra[prefix + "quota_rejections"] = t.quotaRejections;
        stats.extra[prefix + "soft_warnings"] = t.softWarnings;
        stats.extra[prefix + "peak_lines"] = t.peakLines;
        // Only paced tenants get the key, so runs without the policy
        // engine keep their stats output byte-identical.
        if (t.paceChanges)
            stats.extra[prefix + "pace_changes"] = t.paceChanges;
        if (linesOf)
            stats.extra[prefix + "pool_lines"] = linesOf(kv.first);
    }
}

} // namespace tenant
} // namespace nvo
