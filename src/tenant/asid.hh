/**
 * @file
 * Address-space identifiers (ASIDs) for multi-tenant snapshotting.
 *
 * One OMC/MNM serves many isolated address spaces by tagging every
 * physical address with a 12-bit ASID in bits 47..36 — above the
 * highest address any workload arena produces (SimHeap tops out below
 * 2^34) and inside the 48-bit prefix the master/epoch radix walks key
 * on (bits 47..12). A tagged address therefore lands in a per-tenant
 * subtree of every table automatically: the version key the paper
 * writes as (line, OID) becomes (asid, line, OID) with no extra
 * storage.
 *
 * ASID 0 is the identity tag: untenanted single-address-space runs
 * use addresses below the tag field unchanged, so the single-tenant
 * path is bit-identical to the pre-tenant code.
 */

#ifndef NVO_TENANT_ASID_HH
#define NVO_TENANT_ASID_HH

#include <cstdint>

#include "common/types.hh"

namespace nvo
{
namespace tenant
{

using Asid = std::uint16_t;

constexpr unsigned asidShift = 36;
constexpr unsigned asidBits = 12;
constexpr Asid maxAsid = (1u << asidBits) - 1;
constexpr Addr asidMask = static_cast<Addr>(maxAsid) << asidShift;

/** Tag @p addr with @p asid (addr must not already carry a tag). */
constexpr Addr
tag(Asid asid, Addr addr)
{
    return addr | (static_cast<Addr>(asid & maxAsid) << asidShift);
}

/** The ASID carried by @p addr (0 for untenanted addresses). */
constexpr Asid
asidOf(Addr addr)
{
    return static_cast<Asid>((addr >> asidShift) & maxAsid);
}

/** Strip the ASID tag, recovering the tenant-local address. */
constexpr Addr
untag(Addr addr)
{
    return addr & ~asidMask;
}

/**
 * ASID-carrying master-table key. The tenant dimension of the key is
 * derived from the tagged address, never passed separately, so a Key
 * cannot disagree with the address it maps — construct one with
 * keyOf() at every master-table or page-pool mutation site (the
 * asid-key lint rule bans raw un-tagged mutation calls outside
 * src/tenant/).
 */
struct Key
{
    Addr addr = invalidAddr;

    constexpr Asid asid() const { return asidOf(addr); }
    constexpr Addr line() const { return untag(addr); }
    constexpr bool operator==(const Key &o) const
    {
        return addr == o.addr;
    }
};

constexpr Key
keyOf(Addr tagged_addr)
{
    return Key{tagged_addr};
}

} // namespace tenant
} // namespace nvo

#endif // NVO_TENANT_ASID_HH
