/**
 * @file
 * Per-tenant resource policy for the multi-tenant MNM backend
 * (docs/MULTITENANCY.md).
 *
 * One OMC/MNM serving many ASID-tagged address spaces needs three
 * policies on top of the tag isolation the tables give for free:
 *
 *  - page-pool quotas: a hard per-tenant line cap plus a soft
 *    high-water mark. An over-cap tenant's versions are NEVER dropped
 *    (that would silently punch holes in its snapshots) — the tenant
 *    is priced out instead: each over-cap insert counts a rejection
 *    and charges penalty token debt so its cores stall until
 *    compaction reclaims its stale versions;
 *  - insert-bandwidth QoS: a token bucket per ASID refilled in bytes
 *    per 1024 cycles. Debt converts to stall cycles charged to the
 *    *offending tenant's* stores only (NVOverlayScheme::onStore), so
 *    one hot tenant back-pressures itself, not its co-tenants;
 *  - compaction fairness: when a compaction pass moves versions of
 *    several tenants, their groups are served in descending-occupancy
 *    order with a rotating tie-break cursor, so the tenant holding
 *    the most pool space is reclaimed first and ties round-robin.
 *
 * The manager also owns per-tenant observability: insert/byte/stall
 * counters exported into RunStats::extra as `tenant.<asid>.*` keys,
 * plus live `tenant_throttle_stalls` / `tenant_quota_rejections`
 * aggregates the EpochSeries probes sample.
 */

#ifndef NVO_TENANT_TENANT_HH
#define NVO_TENANT_TENANT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "tenant/asid.hh"

namespace nvo
{

class Config;

namespace obs
{
struct HistMetric;
} // namespace obs

namespace tenant
{

class TenantManager
{
  public:
    struct Params
    {
        /** Hard page-pool cap per tenant, in lines (0 = unlimited). */
        std::uint64_t quotaLines = 0;
        /** Soft high-water fraction of the hard cap. */
        double softFraction = 0.85;
        /** Token-bucket refill: per-tenant insert-bandwidth budget in
         *  bytes per 1024 cycles (0 = QoS throttling off). */
        std::uint64_t qosBytesPerKCycle = 0;
        /** Token-bucket burst depth in bytes. */
        std::uint64_t qosBurstBytes = 64 * 1024;
        /** Token debt charged per over-hard-cap insert. */
        std::uint64_t quotaPenaltyBytes = 4096;
    };

    /** Read the tenant.* keys (caller gates on tenant.enabled). */
    static Params paramsFrom(const Config &cfg);

    struct PerTenant
    {
        std::int64_t tokens = 0;
        Cycle lastRefill = 0;
        std::uint64_t inserts = 0;
        std::uint64_t dataBytes = 0;
        std::uint64_t storeLines = 0;
        std::uint64_t throttleStallCycles = 0;
        std::uint64_t quotaRejections = 0;
        std::uint64_t softWarnings = 0;
        std::uint64_t peakLines = 0;
        /** Per-tenant QoS rate override in bytes per 1024 cycles,
         *  set by the adaptive policy engine (JASS-style pacing).
         *  0 = no override: the global Params rate applies. */
        std::uint64_t qosRateOverride = 0;
        /** Times the policy engine (re)paced this tenant. */
        std::uint64_t paceChanges = 0;
        /** Per-ASID QoS stall distribution
         *  (`tenant.qos_stall_cycles.asid<N>`), registered lazily
         *  when the tenant first shows activity. */
        obs::HistMetric *hStall = nullptr;
    };

    /** Current pool occupancy of one tenant, in lines (summed across
     *  OMC partitions by the scheme that wires the manager up). */
    using OccupancyFn = std::function<std::uint64_t(Asid)>;

    TenantManager(const Params &params, RunStats &run_stats);

    void setOccupancyFn(OccupancyFn fn) { linesOf = std::move(fn); }

    /**
     * A version from @p asid reached the backend: charge @p bytes to
     * the token bucket and enforce the pool quota. The insert itself
     * always proceeds.
     */
    void onInsert(Asid asid, std::uint32_t bytes, Cycle now);

    /** Per-tenant NVM data-byte attribution (deviceWrite funnel). */
    void noteDataBytes(Asid asid, std::uint64_t bytes);

    /** One store line from a core of @p asid (write-amp denominator). */
    void noteStore(Asid asid);

    /**
     * Stall cycles the calling core of @p asid must absorb to pay its
     * accumulated token debt (0 when the tenant is within budget).
     */
    Cycle throttleStall(Asid asid, Cycle now);

    /**
     * Compaction fairness: reorder @p lines (tagged line addresses of
     * one source epoch) so tenants are served descending-occupancy
     * first with a rotating tie-break.
     */
    void orderForCompaction(std::vector<Addr> &lines);

    /**
     * Policy-engine actuation (per-tenant epoch pacing): cap
     * @p asid's insert bandwidth at @p bytes_per_kcycle, overriding
     * the global `tenant.qos_bytes_per_kcycle` for this tenant only.
     * 0 clears the override. QoS becomes active for the tenant even
     * when the global rate is 0, so the policy engine can pace
     * tenants in deployments that never configured static QoS.
     */
    void setQosRate(Asid asid, std::uint64_t bytes_per_kcycle);

    /** Visit tenants in ascending-ASID (deterministic) order. */
    void forEachTenant(
        const std::function<void(Asid, const PerTenant &)> &fn) const;

    /** Export per-tenant counters into RunStats::extra. */
    void exportStats();

    /** Tenant slot, or nullptr if @p asid never showed activity. */
    const PerTenant *tenant(Asid asid) const;

    std::size_t activeTenants() const { return tenants.size(); }
    const Params &params() const { return p; }

  private:
    PerTenant &slot(Asid asid);
    void refill(PerTenant &t, Cycle now);
    /** Effective QoS rate: the policy override when set, else the
     *  global configured rate (0 = QoS off for this tenant). */
    std::uint64_t
    rateOf(const PerTenant &t) const
    {
        return t.qosRateOverride ? t.qosRateOverride
                                 : p.qosBytesPerKCycle;
    }

    Params p;
    RunStats &stats;
    OccupancyFn linesOf;
    /** Ordered by ASID so exportStats emits deterministically. */
    std::map<Asid, PerTenant> tenants;
    std::uint64_t compactCursor = 0;
};

} // namespace tenant
} // namespace nvo

#endif // NVO_TENANT_TENANT_HH
