/**
 * @file
 * Interface between the cache hierarchy (CST frontend) and the
 * NVOverlay machinery (epoch management + MNM backend).
 *
 * The hierarchy never depends on nvoverlay/ headers; when a
 * VersionCtrl is installed the hierarchy runs the version access
 * protocol and routes version traffic through this interface, and
 * when none is installed it behaves as a plain MESI hierarchy (used
 * by all baseline schemes).
 */

#ifndef NVO_CACHE_VERSION_CTRL_HH
#define NVO_CACHE_VERSION_CTRL_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"

namespace nvo
{

class VersionCtrl
{
  public:
    virtual ~VersionCtrl() = default;

    /** Current epoch of versioned domain @p vd. */
    virtual EpochWide vdEpoch(unsigned vd) const = 0;

    /**
     * Lamport-clock observation: VD @p vd received a coherence
     * response carrying version @p rv. If rv is ahead of the VD's
     * epoch the VD advances (stalling its cores briefly and dumping
     * context); the returned cycles are charged to the requester.
     */
    virtual Cycle observeRemoteVersion(unsigned vd, EpochWide rv,
                                       Cycle now) = 0;

    /**
     * A version left VD @p vd toward the OMC (L2 eviction, coherence
     * write back, or tag walk). @p content is the sealed version
     * payload. Returns back-pressure stall cycles (NVM queue full).
     */
    virtual Cycle acceptVersion(unsigned vd, Addr line_addr,
                                EpochWide oid, SeqNo seq,
                                const LineData &content,
                                EvictReason why, Cycle now) = 0;
};

} // namespace nvo

#endif // NVO_CACHE_VERSION_CTRL_HH
