/**
 * @file
 * Generic set-associative tag/data array with LRU replacement.
 *
 * All cache levels (and the scheme-private tag arrays of the PiCL
 * baselines) are built on this container. Lookup is by full line
 * address; unlike the original Page Overlays design, NVOverlay looks
 * up by address only, never by (address, OID) pairs (paper
 * Sec. IV-A1), so one address occupies at most one slot per array.
 */

#ifndef NVO_CACHE_CACHE_ARRAY_HH
#define NVO_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/coherence.hh"
#include "common/bitutil.hh"
#include "common/types.hh"

namespace nvo
{

class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     */
    CacheArray(std::uint64_t size_bytes, unsigned ways);

    /** Find the line holding @p line_addr, or nullptr. Bumps LRU. */
    CacheLine *lookup(Addr line_addr);

    /** Find without touching replacement state. */
    CacheLine *probe(Addr line_addr);
    const CacheLine *probe(Addr line_addr) const;

    /**
     * Pick a slot for @p line_addr in its set: an invalid way if one
     * exists, else the LRU way. The caller must handle the returned
     * slot's previous content (the victim) before overwriting it.
     * @p line_addr must not already be present.
     */
    CacheLine *allocSlot(Addr line_addr);

    /** Invalidate (reset) a line previously returned by lookup. */
    void invalidate(CacheLine *line);

    unsigned numSets() const { return sets; }
    unsigned numWays() const { return ways_; }
    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(sets) * ways_ * lineBytes;
    }

    /** Number of currently valid lines. */
    unsigned numValid() const;

    /** Iterate over all lines of one set (tag-walker support). */
    CacheLine *setBase(unsigned set_idx);

    /** Visit every valid line. */
    void forEachValid(const std::function<void(CacheLine &)> &fn);
    void forEachValid(
        const std::function<void(const CacheLine &)> &fn) const;

    /**
     * Structural invariant sweep (NVO_AUDIT): every valid line sits
     * in the set its address hashes to, no address occupies two ways
     * of a set (NVOverlay looks up by address only, paper Sec. IV-A1),
     * and replacement stamps never run ahead of the LRU clock.
     */
    void audit() const;

  private:
    unsigned setOf(Addr line_addr) const;

    unsigned sets;
    unsigned ways_;
    std::uint64_t lruClock = 0;
    std::vector<CacheLine> lines;
};

} // namespace nvo

#endif // NVO_CACHE_CACHE_ARRAY_HH
