#include "cache/l1_cache.hh"

#include "common/audit.hh"

namespace nvo
{

L1Cache::L1Cache(const Params &params, unsigned core_id)
    : arr(params.sizeBytes, params.ways), lat(params.latency),
      core(core_id)
{
}

void
L1Cache::audit() const
{
    if (!audit::enabled)
        return;
    arr.audit();
    arr.forEachValid([](const CacheLine &line) {
        NVO_AUDIT(!line.sealed(), "sealed payload in an L1");
        NVO_AUDIT(line.sharers == 0, "sharer bits on an L1 line");
        NVO_AUDIT(!line.dirty || writable(line.state),
                  "dirty L1 line without write permission");
    });
}

} // namespace nvo
