#include "cache/l1_cache.hh"

namespace nvo
{

L1Cache::L1Cache(const Params &params, unsigned core_id)
    : arr(params.sizeBytes, params.ways), lat(params.latency),
      core(core_id)
{
}

} // namespace nvo
