#include "cache/l2_cache.hh"

#include "common/audit.hh"
#include "common/log.hh"

namespace nvo
{

L2Cache::L2Cache(const Params &params, unsigned vd_id,
                 unsigned cores_per_vd)
    : arr(params.sizeBytes, params.ways), lat(params.latency), vd(vd_id),
      localCores(cores_per_vd)
{
    nvo_assert(cores_per_vd <= 16, "sharer bitmask is 16 bits wide");
}

unsigned
L2Cache::localIdx(unsigned core_id) const
{
    unsigned idx = core_id % localCores;
    nvo_assert(core_id / localCores == vd, "core is not in this VD");
    return idx;
}

void
L2Cache::addSharer(CacheLine &line, unsigned local_idx)
{
    line.sharers |= static_cast<std::uint16_t>(1u << local_idx);
}

void
L2Cache::removeSharer(CacheLine &line, unsigned local_idx)
{
    line.sharers &= static_cast<std::uint16_t>(~(1u << local_idx));
}

bool
L2Cache::hasSharer(const CacheLine &line, unsigned local_idx)
{
    return (line.sharers >> local_idx) & 1u;
}

void
L2Cache::audit() const
{
    if (!audit::enabled)
        return;
    arr.audit();
    const std::uint16_t local_mask =
        static_cast<std::uint16_t>((1u << localCores) - 1);
    arr.forEachValid([local_mask](const CacheLine &line) {
        NVO_AUDIT((line.sharers & ~local_mask) == 0,
                  "sharer bit outside the VD's local L1s");
        NVO_AUDIT(!line.sealed() || line.dirty,
                  "sealed but clean L2 line");
    });
}

std::vector<unsigned>
L2Cache::sharerList(const CacheLine &line) const
{
    std::vector<unsigned> out;
    for (unsigned i = 0; i < localCores; ++i)
        if (hasSharer(line, i))
            out.push_back(i);
    return out;
}

} // namespace nvo
